// Package viampi is a reproduction, in pure Go, of "Impact of On-Demand
// Connection Management in MPI over VIA" (Wu, Liu, Wyckoff, Panda — IEEE
// Cluster 2002).
//
// The repository contains a deterministic discrete-event cluster simulator
// (internal/simnet, internal/fabric), an emulation of the Virtual Interface
// Architecture with cLAN-like and Berkeley-VIA-like device personalities
// (internal/via), the paper's three connection-management policies
// (internal/core), an MVICH-like MPI library (internal/mpi), the NAS
// Parallel Benchmark proxies and production-application communication
// patterns used in the evaluation (internal/npb, internal/apps), and a
// harness that regenerates every table and figure (internal/bench,
// cmd/figures). See README.md, DESIGN.md and EXPERIMENTS.md.
package viampi
