package viampi

// One Go benchmark per table and figure in the paper's evaluation section,
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Each benchmark iteration regenerates the artifact in quick mode (small
// classes, few sweep points) and reports key virtual-time metrics so
// `go test -bench=. -benchmem` doubles as a smoke evaluation. Run
// `go run ./cmd/figures -all` for the full-size reproduction.

import (
	"strconv"
	"testing"

	"viampi/internal/bench"
	"viampi/internal/mpi"
	"viampi/internal/npb"
	"viampi/internal/simnet"
	"viampi/internal/via"
)

func benchExperiment(b *testing.B, id string) {
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(bench.Options{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1_BviaLatencyVsVIs(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkTable1_AppDestinations(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2_VIUsage(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig2a_LatencyClan(b *testing.B)      { benchExperiment(b, "fig2a") }
func BenchmarkFig2b_LatencyBvia(b *testing.B)      { benchExperiment(b, "fig2b") }
func BenchmarkFig3a_BandwidthClan(b *testing.B)    { benchExperiment(b, "fig3a") }
func BenchmarkFig3b_BandwidthBvia(b *testing.B)    { benchExperiment(b, "fig3b") }
func BenchmarkFig4a_BarrierClan(b *testing.B)      { benchExperiment(b, "fig4a") }
func BenchmarkFig4b_BarrierBvia(b *testing.B)      { benchExperiment(b, "fig4b") }
func BenchmarkFig5a_AllreduceClan(b *testing.B)    { benchExperiment(b, "fig5a") }
func BenchmarkFig5b_AllreduceBvia(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFig6_NpbClan(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7_NpbBvia(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8a_InitTimeClan(b *testing.B)     { benchExperiment(b, "fig8a") }
func BenchmarkFig8b_InitTimeBvia(b *testing.B)     { benchExperiment(b, "fig8b") }
func BenchmarkTable3_NpbTimes(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkExtScale(b *testing.B)               { benchExperiment(b, "ext-scale") }
func BenchmarkExtDynamic(b *testing.B)             { benchExperiment(b, "ext-dynamic") }

// BenchmarkPingpong reports the simulated one-way latency per device and
// mechanism as a custom metric (virtual_us).
func BenchmarkPingpong(b *testing.B) {
	for _, device := range []string{"clan", "bvia"} {
		for _, mech := range []bench.Mechanism{bench.StaticPolling, bench.OnDemand} {
			b.Run(device+"/"+mech.Name, func(b *testing.B) {
				var lat simnet.Duration
				for i := 0; i < b.N; i++ {
					l, err := bench.Pingpong(device, mech, 4, 20, 0, 1)
					if err != nil {
						b.Fatal(err)
					}
					lat = l
				}
				b.ReportMetric(lat.Micros(), "virtual_us")
			})
		}
	}
}

// BenchmarkAblation_EagerThreshold sweeps the eager/rendezvous switch point
// (DESIGN.md decision 5): the paper observes the default 5000 is too low.
func BenchmarkAblation_EagerThreshold(b *testing.B) {
	for _, thresh := range []int{1000, 5000, 16000, 64000} {
		b.Run(strconv.Itoa(thresh), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				var innerErr error
				cfg := mpi.Config{
					Procs: 2, EagerThreshold: thresh, CreditCount: 24,
					Deadline: 600 * simnet.Second,
				}
				// 8 kB messages: eager iff thresh >= 8192.
				w, err := mpi.Run(cfg, func(r *mpi.Rank) {
					c := r.World()
					const n, size = 50, 8192
					if r.Rank() == 0 {
						start := r.Proc().Now()
						out := make([]byte, size)
						for i := 0; i < n; i++ {
							if err := c.Send(1, 0, out); err != nil {
								innerErr = err
								return
							}
						}
						ack := make([]byte, 4)
						if _, err := c.Recv(ack, 1, 1); err != nil {
							innerErr = err
							return
						}
						bw = float64(n*size) / r.Proc().Now().Sub(start).Seconds() / 1e6
					} else {
						in := make([]byte, size)
						for i := 0; i < n; i++ {
							if _, err := c.Recv(in, 0, 0); err != nil {
								innerErr = err
								return
							}
						}
						if err := c.Send(0, 1, []byte("ok")); err != nil {
							innerErr = err
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				if innerErr != nil {
					b.Fatal(innerErr)
				}
				_ = w
			}
			b.ReportMetric(bw, "virtual_MB/s")
		})
	}
}

// BenchmarkAblation_CreditCount sweeps the per-VI pre-posted buffer count:
// fewer credits stall the pipeline; more pin more memory (the Table 2
// trade-off).
func BenchmarkAblation_CreditCount(b *testing.B) {
	for _, credits := range []int{4, 8, 24, 64} {
		b.Run(strconv.Itoa(credits), func(b *testing.B) {
			var elapsed simnet.Duration
			for i := 0; i < b.N; i++ {
				cfg := mpi.Config{Procs: 2, CreditCount: credits, Deadline: 600 * simnet.Second}
				w, err := mpi.Run(cfg, func(r *mpi.Rank) {
					c := r.World()
					if r.Rank() == 0 {
						var reqs []*mpi.Request
						for i := 0; i < 100; i++ {
							q, err := c.Isend(1, 0, make([]byte, 256))
							if err != nil {
								return
							}
							reqs = append(reqs, q)
						}
						if err := r.Waitall(reqs...); err != nil {
							return
						}
					} else {
						in := make([]byte, 256)
						for i := 0; i < 100; i++ {
							if _, err := c.Recv(in, 0, 0); err != nil {
								return
							}
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = w.Elapsed
			}
			b.ReportMetric(elapsed.Micros(), "virtual_us")
		})
	}
}

// BenchmarkAblation_SpinBudget sweeps the spinwait budget on cLAN barriers —
// the paper's polling-vs-spinwait axis made continuous.
func BenchmarkAblation_SpinBudget(b *testing.B) {
	for _, spincount := range []int{0, 100, 10000} {
		spincount := spincount
		b.Run(strconv.Itoa(spincount), func(b *testing.B) {
			var lat simnet.Duration
			for i := 0; i < b.N; i++ {
				mech := bench.StaticSpinwait
				mech.Tune = func(c *via.CostModel) { c.DefaultSpinCount = spincount }
				l, err := bench.CollectiveLatency("clan", mech, 8, 20, bench.BarrierOp, 1)
				if err != nil {
					b.Fatal(err)
				}
				lat = l
			}
			b.ReportMetric(lat.Micros(), "virtual_us")
		})
	}
}

// BenchmarkAblation_BarrierAlgorithm compares the three barrier algorithms
// on latency (reported) — their connection footprints differ too (tree 2 <
// rd 4 < dissemination ~8 VIs at 16 ranks; see TestBarrierAlgConnectionFootprint).
func BenchmarkAblation_BarrierAlgorithm(b *testing.B) {
	for _, alg := range []string{"tree", "rd", "dissemination"} {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var per simnet.Duration
			for i := 0; i < b.N; i++ {
				cfg := mpi.Config{Procs: 16, BarrierAlg: alg, Deadline: 600 * simnet.Second}
				var elapsed simnet.Duration
				_, err := mpi.Run(cfg, func(r *mpi.Rank) {
					c := r.World()
					if err := c.Barrier(); err != nil {
						return
					}
					start := r.Proc().Now()
					for k := 0; k < 100; k++ {
						if err := c.Barrier(); err != nil {
							return
						}
					}
					if r.Rank() == 0 {
						elapsed = r.Proc().Now().Sub(start) / 100
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				per = elapsed
			}
			b.ReportMetric(per.Micros(), "virtual_us")
		})
	}
}

// BenchmarkAblation_DynamicCredits compares static pools against the
// paper's future-work dynamic flow control on pinned footprint (reported)
// for a lightly-loaded channel.
func BenchmarkAblation_DynamicCredits(b *testing.B) {
	for _, dyn := range []bool{false, true} {
		name := "static-pool"
		if dyn {
			name = "dynamic-pool"
		}
		dyn := dyn
		b.Run(name, func(b *testing.B) {
			var pinned int64
			for i := 0; i < b.N; i++ {
				cfg := mpi.Config{Procs: 2, DynamicCredits: dyn, Deadline: 600 * simnet.Second}
				w, err := mpi.Run(cfg, func(r *mpi.Rank) {
					c := r.World()
					other := 1 - r.Rank()
					out := []byte{1}
					in := make([]byte, 4)
					if _, err := c.Sendrecv(other, 0, out, other, 0, in); err != nil {
						return
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				pinned = w.Ranks[0].PinnedPeak
			}
			b.ReportMetric(float64(pinned)/1024, "pinned_kB")
		})
	}
}

// BenchmarkNPBKernels runs every proxy at class S as a throughput smoke.
func BenchmarkNPBKernels(b *testing.B) {
	procs := map[string]int{"CG": 8, "MG": 8, "IS": 8, "EP": 8, "SP": 9, "BT": 9, "FT": 8, "LU": 8}
	for _, k := range npb.Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				cfg := mpi.Config{Procs: procs[k.Name], Deadline: 600 * simnet.Second}
				res, _, err := npb.Run(k, npb.ClassS, cfg)
				if err != nil {
					b.Fatal(err)
				}
				secs = res.TimeSec
			}
			b.ReportMetric(secs*1e3, "virtual_ms")
		})
	}
}

// BenchmarkPingpongWallClock measures the real (host) time one full
// simulated ping-pong run costs — the wall-clock rail for the scheduler
// hot path. Virtual-time results are pinned elsewhere (BENCH_micro.json);
// this benchmark exists so a scheduler change that alters only wall-clock
// cost still shows up in `go test -bench`.
func BenchmarkPingpongWallClock(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Pingpong("clan", bench.OnDemand, 8, 50, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator event throughput via a
// dense all-to-all, to track harness overhead itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := mpi.Config{Procs: 16, Deadline: 600 * simnet.Second}
		w, err := mpi.Run(cfg, func(r *mpi.Rank) {
			c := r.World()
			n := c.Size()
			for round := 0; round < 5; round++ {
				if err := c.Alltoall(make([]byte, 128*n), make([]byte, 128*n), 128); err != nil {
					return
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = w
	}
}
