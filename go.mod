module viampi

go 1.22
