// Quickstart: launch 8 MPI ranks on the simulated cLAN cluster, pass a
// token around a ring, and compare the VI endpoints each process created
// under on-demand vs. static connection management — the paper's core
// resource argument in ~60 lines.
package main

import (
	"fmt"
	"log"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
)

func ring(r *mpi.Rank) {
	c := r.World()
	me, n := c.Rank(), c.Size()
	token := []byte(fmt.Sprintf("token-from-%d", me))
	in := make([]byte, 64)
	st, err := c.Sendrecv((me+1)%n, 0, token, (me+n-1)%n, 0, in)
	if err != nil {
		log.Fatalf("rank %d: %v", me, err)
	}
	if me == 0 {
		fmt.Printf("rank 0 received %q from rank %d at t=%.1f us\n",
			in[:st.Count], st.Source, r.Wtime()*1e6)
	}
}

func main() {
	for _, policy := range []string{"static-p2p", "ondemand"} {
		cfg := mpi.Config{
			Procs:    8,
			Device:   "clan",
			Policy:   policy,
			Deadline: 60 * simnet.Second,
		}
		w, err := mpi.Run(cfg, ring)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s avg VIs/process: %5.2f   utilization: %.2f   pinned: %d kB   init: %.2f ms\n",
			policy, w.AvgVIs(), w.AvgUtilization(),
			w.TotalPinnedPeak()/1024, w.AvgInit().Seconds()*1e3)
	}
}
