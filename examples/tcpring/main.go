// Tcpring runs the paper's mechanism on a real network: N tcpvia nodes on
// TCP loopback pass a token around a ring under both static and on-demand
// connection management, reporting wall-clock latency and — the paper's
// point — how many connections each policy actually built.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"viampi/internal/tcpvia"
)

func main() {
	var (
		np   = flag.Int("np", 6, "number of nodes")
		laps = flag.Int("laps", 50, "times the token circles the ring")
	)
	flag.Parse()

	for _, policy := range []string{"static", "ondemand"} {
		nodes := make([]*tcpvia.Node, *np)
		peers := make([]string, *np)
		for i := range nodes {
			n, err := tcpvia.Listen(tcpvia.Config{})
			if err != nil {
				log.Fatal(err)
			}
			nodes[i] = n
			peers[i] = n.Addr()
		}
		mgrs := make([]*tcpvia.Manager, *np)
		var wg sync.WaitGroup
		setup := time.Now()
		for i := range nodes {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				m, err := tcpvia.NewManager(tcpvia.ManagerConfig{
					Node: nodes[i], Rank: i, Peers: peers, Policy: policy,
					Timeout: 10 * time.Second,
				})
				if err != nil {
					log.Fatalf("manager %d: %v", i, err)
				}
				mgrs[i] = m
			}()
		}
		wg.Wait()
		setupTime := time.Since(setup)

		// Forwarders: every node passes the token to its right neighbour.
		for i := 1; i < *np; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lap := 0; lap < *laps; lap++ {
					tok, err := mgrs[i].Recv((i-1+*np)%*np, 10*time.Second)
					if err != nil {
						log.Fatalf("node %d: %v", i, err)
					}
					if err := mgrs[i].Send((i+1)%*np, tok); err != nil {
						log.Fatalf("node %d: %v", i, err)
					}
				}
			}()
		}

		start := time.Now()
		for lap := 0; lap < *laps; lap++ {
			if err := mgrs[0].Send(1, []byte(fmt.Sprintf("lap-%d", lap))); err != nil {
				log.Fatal(err)
			}
			if _, err := mgrs[0].Recv(*np-1, 10*time.Second); err != nil {
				log.Fatal(err)
			}
		}
		perHop := time.Since(start) / time.Duration(*laps**np)
		wg.Wait()

		conns := 0
		vis := 0
		for _, m := range mgrs {
			conns += m.Connections()
		}
		for _, n := range nodes {
			vis += n.Stats().VisCreated
		}
		fmt.Printf("%-9s setup %8v   per-hop latency %8v   connections %2d   VIs %2d (of %d possible)\n",
			policy, setupTime.Round(time.Microsecond), perHop.Round(time.Microsecond),
			conns/2, vis, *np*(*np-1))
		for _, m := range mgrs {
			m.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	}
}
