// Tcpring runs the paper's mechanism on a real network: N tcpvia nodes on
// TCP loopback pass a token around a ring under both static and on-demand
// connection management, reporting wall-clock latency and — the paper's
// point — how many connections each policy actually built.
//
// With -record it doubles as a demo of the live flight recorder: every
// node's connection and message events are kept in a bounded in-memory ring
// (wall-clock stamps) and dumped as capture bundles at exit — or on
// SIGINT/SIGTERM, or on a crash — for offline inspection with
// viampi-replay. -snapshot additionally tails periodic metrics JSON to a
// file while the run is live.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"viampi/internal/obs"
	"viampi/internal/obs/capture"
	"viampi/internal/tcpvia"
)

var (
	np       = flag.Int("np", 6, "number of nodes")
	laps     = flag.Int("laps", 50, "times the token circles the ring")
	record   = flag.String("record", "", "dump per-node flight-recorder bundles to `dir` (on exit, signal, or crash)")
	ringCap  = flag.Int("ring", 4096, "events retained per node's flight-recorder ring")
	snapshot = flag.String("snapshot", "", "append periodic metrics JSON snapshots to `file`")
	snapMs   = flag.Int("snapshot-ms", 200, "snapshot interval in milliseconds")
)

// flightLogs collects every live EventLog so one dump covers all nodes of
// the current policy round.
var (
	flightMu   sync.Mutex
	flightLogs map[string]*tcpvia.EventLog // bundle filename -> log
)

// dumpFlightRecorders writes each registered ring to its bundle file. Safe
// to call from the signal handler or the crash path.
func dumpFlightRecorders(reason string) {
	flightMu.Lock()
	defer flightMu.Unlock()
	if len(flightLogs) == 0 {
		return
	}
	for name, l := range flightLogs {
		path := *record + "/" + name
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight dump %s: %v\n", path, err)
			continue
		}
		kept, dropped, err := l.DumpRing(f)
		cerr := f.Close()
		if err != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "flight dump %s: %v %v\n", path, err, cerr)
			continue
		}
		fmt.Fprintf(os.Stderr, "flight recorder (%s): %s — %d events kept, %d evicted\n",
			reason, path, kept, dropped)
	}
	flightLogs = map[string]*tcpvia.EventLog{}
}

func main() {
	flag.Parse()

	if *record != "" {
		if err := os.MkdirAll(*record, 0o755); err != nil {
			log.Fatal(err)
		}
		flightLogs = map[string]*tcpvia.EventLog{}
		// Flush-on-signal: an interrupted run still leaves its bundles.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			s := <-sigs
			dumpFlightRecorders(s.String())
			os.Exit(1)
		}()
		// Flush-on-crash: a panic dumps the rings before dying.
		defer func() {
			if r := recover(); r != nil {
				dumpFlightRecorders("panic")
				panic(r)
			}
		}()
	}

	var snapOut io.Writer
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		snapOut = f
	}

	for _, policy := range []string{"static", "ondemand"} {
		nodes := make([]*tcpvia.Node, *np)
		peers := make([]string, *np)
		for i := range nodes {
			n, err := tcpvia.Listen(tcpvia.Config{})
			if err != nil {
				log.Fatal(err)
			}
			nodes[i] = n
			peers[i] = n.Addr()
		}
		logs := make([]*tcpvia.EventLog, *np)
		if *record != "" {
			for i := range logs {
				l, err := tcpvia.NewEventLog(capture.Header{
					World:  *np,
					Device: "tcpvia",
					Policy: policy,
					Label:  "tcpring",
					Config: fmt.Sprintf("np=%d laps=%d policy=%s rank=%d", *np, *laps, policy, i),
				}, *ringCap, nil)
				if err != nil {
					log.Fatal(err)
				}
				logs[i] = l
				flightMu.Lock()
				flightLogs[fmt.Sprintf("tcpring-%s-rank%d.bin", policy, i)] = l
				flightMu.Unlock()
			}
		}
		mgrs := make([]*tcpvia.Manager, *np)
		var wg sync.WaitGroup
		setup := time.Now()
		for i := range nodes {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				cfg := tcpvia.ManagerConfig{
					Node: nodes[i], Rank: i, Peers: peers, Policy: policy,
					Timeout: 10 * time.Second, Log: logs[i],
				}
				if i == 0 && snapOut != nil {
					cfg.Metrics = obs.NewRegistry()
					cfg.SnapshotEvery = time.Duration(*snapMs) * time.Millisecond
					cfg.SnapshotTo = snapOut
				}
				m, err := tcpvia.NewManager(cfg)
				if err != nil {
					log.Fatalf("manager %d: %v", i, err)
				}
				mgrs[i] = m
			}()
		}
		wg.Wait()
		setupTime := time.Since(setup)

		// Forwarders: every node passes the token to its right neighbour.
		for i := 1; i < *np; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lap := 0; lap < *laps; lap++ {
					tok, err := mgrs[i].Recv((i-1+*np)%*np, 10*time.Second)
					if err != nil {
						log.Fatalf("node %d: %v", i, err)
					}
					if err := mgrs[i].Send((i+1)%*np, tok); err != nil {
						log.Fatalf("node %d: %v", i, err)
					}
				}
			}()
		}

		start := time.Now()
		for lap := 0; lap < *laps; lap++ {
			if err := mgrs[0].Send(1, []byte(fmt.Sprintf("lap-%d", lap))); err != nil {
				log.Fatal(err)
			}
			if _, err := mgrs[0].Recv(*np-1, 10*time.Second); err != nil {
				log.Fatal(err)
			}
		}
		perHop := time.Since(start) / time.Duration(*laps**np)
		wg.Wait()

		conns := 0
		vis := 0
		for _, m := range mgrs {
			conns += m.Connections()
		}
		for _, n := range nodes {
			vis += n.Stats().VisCreated
		}
		fmt.Printf("%-9s setup %8v   per-hop latency %8v   connections %2d   VIs %2d (of %d possible)\n",
			policy, setupTime.Round(time.Microsecond), perHop.Round(time.Microsecond),
			conns/2, vis, *np*(*np-1))
		for _, m := range mgrs {
			m.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
		if *record != "" {
			dumpFlightRecorders("exit:" + policy)
		}
	}
}
