// Heat: a 2D Jacobi heat-diffusion solver on a Cartesian process grid —
// the canonical MPI teaching program, run on the simulated VIA cluster.
// It exercises three library layers at once: Cartesian topology helpers
// (MPI_Cart_create/Shift), derived datatypes (column halos via Vector),
// and on-demand connection management (each rank only ever connects to its
// four grid neighbours, whatever the job size).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
)

func main() {
	var (
		np    = flag.Int("np", 16, "process count")
		tile  = flag.Int("tile", 32, "per-rank tile edge (cells)")
		iters = flag.Int("iters", 50, "Jacobi iterations")
	)
	flag.Parse()

	dims, err := mpi.DimsCreate(*np, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mpi.Config{Procs: *np, Policy: "ondemand", Deadline: 600 * simnet.Second}
	var finalResidual float64
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		cart, err := c.CartCreate(dims, nil) // non-periodic: fixed boundaries
		if err != nil {
			log.Fatal(err)
		}
		n := *tile
		stride := n + 2 // tile plus halo ring
		grid := make([]float64, stride*stride)
		next := make([]float64, stride*stride)
		coords, err := cart.Coords(c.Rank())
		if err != nil {
			log.Fatal(err)
		}
		// Hot fixed boundary: the first interior column of the leftmost
		// rank column is clamped to 100 degrees.
		if coords[1] == 0 {
			for i := 0; i < stride; i++ {
				grid[i*stride+1] = 100
				next[i*stride+1] = 100
			}
		}

		// Column halo layout: n doubles, one per row, stride*8 bytes apart.
		colType, err := mpi.Vector(n, 8, stride*8)
		if err != nil {
			log.Fatal(err)
		}
		rowBytes := make([]byte, 8*n)
		colBytes := make([]byte, 8*n)
		asBytes := func(f []float64) []byte {
			b := make([]byte, 8*len(f))
			mpi.PutF64s(b, f)
			return b
		}

		north, south, err := shift(cart, 0)
		if err != nil {
			log.Fatal(err)
		}
		west, east, err := shift(cart, 1)
		if err != nil {
			log.Fatal(err)
		}

		for it := 0; it < *iters; it++ {
			// Halo exchange: rows north/south (contiguous), columns
			// east/west (strided through the Vector datatype).
			gb := asBytes(grid)
			exchange := func(dst, src int, tag int, out []byte, in []byte) {
				if dst < 0 && src < 0 {
					return
				}
				var reqs []*mpi.Request
				if src >= 0 {
					rq, err := c.Irecv(in, src, tag)
					if err != nil {
						log.Fatal(err)
					}
					reqs = append(reqs, rq)
				}
				if dst >= 0 {
					sq, err := c.Isend(dst, tag, out)
					if err != nil {
						log.Fatal(err)
					}
					reqs = append(reqs, sq)
				}
				if err := r.Waitall(reqs...); err != nil {
					log.Fatal(err)
				}
				if src >= 0 {
					copy(rowBytes, in)
				}
			}
			// North row out / south halo in.
			out := gb[(1*stride+1)*8 : (1*stride+1+n)*8]
			in := make([]byte, 8*n)
			exchange(north, south, 1, out, in)
			if south >= 0 {
				mpi.GetF64s(in, grid[(n+1)*stride+1:(n+1)*stride+1+n])
			}
			// South row out / north halo in.
			out = gb[(n*stride+1)*8 : (n*stride+1+n)*8]
			exchange(south, north, 2, out, in)
			if north >= 0 {
				mpi.GetF64s(in, grid[0*stride+1:0*stride+1+n])
			}
			// West column out / east halo in (strided pack).
			packed, err := colType.Pack(gb[(1*stride+1)*8:])
			if err != nil {
				log.Fatal(err)
			}
			exchange(west, east, 3, packed, colBytes)
			if east >= 0 {
				col := mpi.BytesF64(colBytes)
				for i := 0; i < n; i++ {
					grid[(i+1)*stride+n+1] = col[i]
				}
			}
			// East column out / west halo in.
			packed, err = colType.Pack(gb[(1*stride+n)*8:])
			if err != nil {
				log.Fatal(err)
			}
			exchange(east, west, 4, packed, colBytes)
			if west >= 0 {
				col := mpi.BytesF64(colBytes)
				for i := 0; i < n; i++ {
					grid[(i+1)*stride] = col[i]
				}
			}

			// Jacobi sweep (real arithmetic, plus modeled cost).
			var diff float64
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					if coords[1] == 0 && j == 1 {
						next[i*stride+j] = grid[i*stride+j] // fixed boundary column
						continue
					}
					v := 0.25 * (grid[(i-1)*stride+j] + grid[(i+1)*stride+j] +
						grid[i*stride+j-1] + grid[i*stride+j+1])
					diff += math.Abs(v - grid[i*stride+j])
					next[i*stride+j] = v
				}
			}
			grid, next = next, grid
			r.Compute(float64(n*n) * 12e-9) // ~12ns per cell update

			if it == *iters-1 {
				tot, err := c.AllreduceF64([]float64{diff}, mpi.SumF64)
				if err != nil {
					log.Fatal(err)
				}
				if c.Rank() == 0 {
					finalResidual = tot[0]
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat diffusion on %v grid of %d procs, %d iters, tile %dx%d\n",
		dims, *np, *iters, *tile, *tile)
	fmt.Printf("  final residual  : %.4f\n", finalResidual)
	fmt.Printf("  virtual time    : %.3f ms\n", w.Elapsed.Seconds()*1e3)
	fmt.Printf("  VIs per rank    : %.2f of %d possible (grid neighbours + allreduce tree)\n",
		w.AvgVIs(), *np-1)
}

// shift wraps Cart.Shift returning (negDir, posDir) neighbours.
func shift(cart *mpi.Cart, dim int) (lo, hi int, err error) {
	src, dst, err := cart.Shift(dim, 1)
	if err != nil {
		return -1, -1, err
	}
	return src, dst, nil
}
