// Stencil: a Sweep3D-style 2D wavefront computation — the workload family
// Table 1 shows touching only ~3.5 neighbours per process. Each rank owns a
// tile; four corner-started sweeps propagate dependencies across the grid.
// Under on-demand connection management only the compass-neighbour VIs ever
// exist, however large the job.
package main

import (
	"flag"
	"fmt"
	"log"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
)

func main() {
	var (
		np     = flag.Int("np", 16, "process count (must be a perfect square)")
		sweeps = flag.Int("sweeps", 4, "number of corner-started sweeps")
	)
	flag.Parse()
	q := 1
	for q*q < *np {
		q++
	}
	if q*q != *np {
		log.Fatalf("np = %d is not a perfect square", *np)
	}

	cfg := mpi.Config{Procs: *np, Policy: "ondemand", Deadline: 300 * simnet.Second}
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		me := c.Rank()
		row, col := me/q, me%q
		edge := make([]byte, 512)
		in := make([]byte, 512)

		// The four sweep directions: (drow, dcol) of the wavefront.
		dirs := [][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
		for s := 0; s < *sweeps; s++ {
			d := dirs[s%len(dirs)]
			upRow, upCol := row-d[0], col-d[1]
			dnRow, dnCol := row+d[0], col+d[1]
			// Wait for upstream dependencies (row then column neighbour).
			if upRow >= 0 && upRow < q {
				if _, err := c.Recv(in, upRow*q+col, s); err != nil {
					log.Fatal(err)
				}
			}
			if upCol >= 0 && upCol < q {
				if _, err := c.Recv(in, row*q+upCol, s); err != nil {
					log.Fatal(err)
				}
			}
			r.Compute(20e-6) // tile work
			// Release downstream.
			if dnRow >= 0 && dnRow < q {
				if err := c.Send(dnRow*q+col, s, edge); err != nil {
					log.Fatal(err)
				}
			}
			if dnCol >= 0 && dnCol < q {
				if err := c.Send(row*q+dnCol, s, edge); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep3d-style stencil on %dx%d grid, %d sweeps\n", q, q, *sweeps)
	fmt.Printf("  elapsed (virtual): %.3f ms\n", w.Elapsed.Seconds()*1e3)
	fmt.Printf("  avg VIs/process  : %.2f of %d possible (on-demand touches only neighbours)\n",
		w.AvgVIs(), *np-1)
	for _, rs := range w.Ranks[:min(4, len(w.Ranks))] {
		fmt.Printf("  rank %-2d: %d VIs, %d distinct destinations\n", rs.Rank, rs.VisCreated, rs.DistinctDests)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
