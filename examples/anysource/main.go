// Anysource: the paper's §3.5 corner case. A master receives results with
// MPI_ANY_SOURCE while workers finish in an order the master cannot know.
// Under on-demand connection management, the first wildcard receive forces
// the master to issue connection requests to every rank in the communicator
// — visible in its VI count — while each worker still holds a single VI.
package main

import (
	"fmt"
	"log"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
)

func main() {
	const np = 10
	cfg := mpi.Config{Procs: np, Policy: "ondemand", Deadline: 60 * simnet.Second}
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		if r.Rank() == 0 {
			order := []int{}
			for i := 0; i < np-1; i++ {
				buf := make([]byte, 32)
				st, err := c.Recv(buf, mpi.AnySource, mpi.AnyTag)
				if err != nil {
					log.Fatal(err)
				}
				order = append(order, st.Source)
			}
			fmt.Printf("master matched workers in completion order: %v\n", order)
		} else {
			// Workers "compute" for rank-dependent time, slowest first.
			r.Compute(float64(np-r.Rank()) * 100e-6)
			if err := c.Send(0, r.Rank(), []byte(fmt.Sprintf("result-%d", r.Rank()))); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master VIs: %d (ANY_SOURCE connected to all %d peers)\n",
		w.Ranks[0].VisCreated, np-1)
	fmt.Printf("worker VIs: %d (each only talks to the master)\n", w.Ranks[1].VisCreated)
}
