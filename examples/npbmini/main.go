// Npbmini: run one NPB proxy under all three connection mechanisms on both
// device personalities and print the comparison the paper's Figures 6-7
// make: on cLAN on-demand matches static polling; on Berkeley VIA it wins.
package main

import (
	"flag"
	"fmt"
	"log"

	"viampi/internal/mpi"
	"viampi/internal/npb"
	"viampi/internal/simnet"
	"viampi/internal/via"
)

func main() {
	var (
		name  = flag.String("bench", "CG", "NPB benchmark (CG MG IS EP SP BT FT LU)")
		class = flag.String("class", "W", "problem class (S W A B C)")
		np    = flag.Int("np", 8, "process count")
	)
	flag.Parse()
	kern, err := npb.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := npb.ParseClass(*class)
	if err != nil {
		log.Fatal(err)
	}

	type mech struct {
		label  string
		policy string
		wait   via.WaitMode
	}
	mechs := []mech{
		{"static-spinwait", "static-p2p", via.WaitSpin},
		{"static-polling", "static-p2p", via.WaitPoll},
		{"on-demand", "ondemand", via.WaitPoll},
	}
	for _, device := range []string{"clan", "bvia"} {
		procs := *np
		if device == "bvia" && procs > 8 {
			procs = 8 // BVIA ran one process per node on the 8-node testbed
		}
		if !kern.ValidProcs(procs) {
			log.Fatalf("%s does not support %d processes", kern.Name, procs)
		}
		fmt.Printf("%s.%c on %d procs, device %s:\n", kern.Name, cls, procs, device)
		for _, m := range mechs {
			if device == "bvia" && m.wait == via.WaitSpin {
				continue // BVIA wait is always a poll loop
			}
			cfg := mpi.Config{
				Procs: procs, Device: device, Policy: m.policy, WaitMode: m.wait,
				Deadline: 3600 * simnet.Second,
			}
			res, w, err := npb.Run(kern, cls, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %8.3f s   VIs/proc %5.2f   verified %v\n",
				m.label, res.TimeSec, w.AvgVIs(), res.Verified)
		}
	}
}
