# Single entry point for CI and builders: `make check` is the tier-1 gate.
GO ?= go

.PHONY: check fmt vet build test race analyze figures bench-snapshot bench-smoke fault-smoke

check: fmt vet build test race analyze bench-smoke fault-smoke

# gofmt -l prints offending files; any output is a failure.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# internal/tcpvia is the only package with real concurrency (goroutines,
# sockets, locks) — the race detector has something to find only there.
race:
	$(GO) test -race ./internal/tcpvia/...

# The invariant analyzers also run inside `go test` (the selfcheck); this
# target is the direct, human-readable form.
analyze:
	$(GO) run ./cmd/viampi-vet -root .

figures:
	$(GO) run ./cmd/figures -all -quick

# Full microbenchmark snapshot; the output is deterministic for a fixed
# seed, so regenerate and commit BENCH_micro.json when perf-relevant code
# changes, and the diff is the review artifact.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -out BENCH_micro.json

# Tiny subset proving the snapshot path works; part of `make check`.
bench-smoke:
	$(GO) run ./cmd/benchsnap -smoke > /dev/null

# Connection-fault matrix and eviction round-trip, run uncached: the fault
# injector and the VI-cap evictor must heal every run without losing or
# reordering a message.
fault-smoke:
	$(GO) test ./internal/mpi -run 'TestFaultMatrix|TestEviction' -count=1
