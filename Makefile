# Single entry point for CI and builders: `make check` is the tier-1 gate.
GO ?= go
# Worker-pool size for the batch-parallel sweep targets; every artifact is
# byte-identical at any -j, so the default is simply all host cores.
NPROC ?= $(shell nproc 2>/dev/null || echo 1)

.PHONY: check fmt vet build test race analyze fsm-dot fsm-dot-check figures bench-snapshot bench-smoke bench-sim bench-sim-snapshot bench-sim-smoke fault-smoke replay-smoke scale-smoke sweep-smoke

check: fmt vet build test race analyze fsm-dot-check bench-smoke bench-sim-smoke fault-smoke replay-smoke scale-smoke sweep-smoke

# gofmt -l prints offending files; any output is a failure.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# internal/tcpvia has real concurrency (goroutines, sockets, locks);
# internal/mpi and internal/core are single-threaded by design, so -race
# there proves the simulated stack never silently grows a second runnable
# goroutine (the one-runnable discipline the determinism rule encodes).
# internal/sweep is the batch runner — the one other package with real
# concurrency — so its worker pool and progress tracker run under -race too.
race:
	$(GO) test -race ./internal/tcpvia/... ./internal/mpi/... ./internal/core/... ./internal/sweep/...

# The invariant analyzers also run inside `go test` (the selfcheck); this
# target is the direct, human-readable form. The wall-time budget keeps the
# whole-program interprocedural pass (call graph + four fixpoint rules)
# honest: load dominates, so analysis must stay cheap enough to run on
# every `make check`.
ANALYZE_BUDGET ?= 120
analyze:
	@start=$$(date +%s); \
	$(GO) run ./cmd/viampi-vet -root . || exit $$?; \
	end=$$(date +%s); took=$$((end - start)); \
	if [ $$took -gt $(ANALYZE_BUDGET) ]; then \
		echo "make analyze: took $${took}s, budget $(ANALYZE_BUDGET)s — the analyzer pass is too slow for tier-1"; exit 1; \
	fi

# The connection-lifecycle diagram is generated from code (the fsm rule's
# extraction), not hand-drawn. Regenerate after changing the VI state
# machine; fsm-dot-check diffs the committed artifact so it cannot drift.
fsm-dot:
	$(GO) run ./cmd/viampi-vet -root . -fsm-dot > docs/connection-fsm.dot

fsm-dot-check:
	@tmp=$$(mktemp) || exit 1; \
	trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/viampi-vet -root . -fsm-dot > $$tmp || exit $$?; \
	cmp -s docs/connection-fsm.dot $$tmp || { \
		echo "fsm-dot-check: docs/connection-fsm.dot is stale — run 'make fsm-dot' and commit the diff"; exit 1; }; \
	echo "fsm-dot-check: committed diagram matches the extracted machine"

figures:
	$(GO) run ./cmd/figures -all -quick -j $(NPROC)

# Full microbenchmark snapshot; the output is deterministic for a fixed
# seed, so regenerate and commit BENCH_micro.json when perf-relevant code
# changes, and the diff is the review artifact.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -j $(NPROC) -out BENCH_micro.json

# Tiny subset proving the snapshot path works; part of `make check`.
bench-smoke:
	$(GO) run ./cmd/benchsnap -smoke -j $(NPROC) > /dev/null

# Scheduler-core wall-clock benchmarks: the measurement rail for the
# zero-allocation event loop. 0 allocs/op on BenchmarkSimCore is an
# invariant (also enforced statically by the hotalloc analyzer).
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkSimCore|BenchmarkPingpongWallClock' -benchmem ./internal/simnet ./

# Scheduler-core snapshot; events/virtual_ns are deterministic, wall fields
# are machine-dependent (see the note field in the JSON).
bench-sim-snapshot:
	$(GO) run ./cmd/benchsnap -simcore -out BENCH_simcore.json

# Millisecond-scale pass over the simcore rail; part of `make check`.
bench-sim-smoke:
	$(GO) run ./cmd/benchsnap -simcore -smoke > /dev/null
	$(GO) test -run '^$$' -bench BenchmarkSimCore -benchtime 1000x ./internal/simnet > /dev/null

# Thousand-rank worlds, run uncached with a hard wall-time lid: the 1024-
# and 2048-rank on-demand rings plus the O(n)-startup-events assertion.
# These only stay this fast because per-rank state is O(live connections)
# and the startup barrier is park/broadcast — a regression in either shows
# up here as a timeout, not a slow drift.
scale-smoke:
	$(GO) test ./internal/mpi -run 'TestOnDemandRing1024Sparse|TestOnDemandRing2048Sparse|TestStartupEventsLinear' -count=1 -timeout 120s

# Connection-fault matrix and eviction round-trip, run uncached: the fault
# injector and the VI-cap evictor must heal every run without losing or
# reordering a message.
fault-smoke:
	$(GO) test ./internal/mpi -run 'TestFaultMatrix|TestEviction' -count=1

# Capture/replay round trip on the real binaries: record a run, re-render
# the trace offline, require byte identity with the live artifact, then
# exercise -diff on both verdicts — same-Config runs (different seeds are
# byte-identical under fault-free CG, so the diff must exit 0) and
# different-policy runs (the diff must flag the divergence and exit 1).
replay-smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	trap 'rm -rf "$$tmp"' EXIT; \
	set -e; \
	$(GO) build -o $$tmp/mpirun-sim ./cmd/mpirun-sim; \
	$(GO) build -o $$tmp/viampi-replay ./cmd/viampi-replay; \
	$$tmp/mpirun-sim -np 8 -conn ondemand -seed 1 -record $$tmp/a.bin -trace $$tmp/live.json CG S > /dev/null; \
	$$tmp/viampi-replay -trace $$tmp/replay.json $$tmp/a.bin > /dev/null; \
	cmp -s $$tmp/live.json $$tmp/replay.json || { echo "replay-smoke: replayed trace differs from live artifact"; exit 1; }; \
	$$tmp/viampi-replay -summary $$tmp/a.bin > /dev/null; \
	$$tmp/mpirun-sim -np 8 -conn ondemand -seed 2 -record $$tmp/b.bin CG S > /dev/null; \
	$$tmp/viampi-replay -diff $$tmp/a.bin $$tmp/b.bin > /dev/null \
		|| { echo "replay-smoke: same-Config bundles reported divergent"; exit 1; }; \
	$$tmp/mpirun-sim -np 8 -conn static-p2p -seed 1 -record $$tmp/c.bin CG S > /dev/null; \
	if $$tmp/viampi-replay -diff $$tmp/a.bin $$tmp/c.bin > /dev/null; then \
		echo "replay-smoke: diff failed to flag divergent runs"; exit 1; \
	fi; \
	echo "replay-smoke: record -> replay byte-identical; diff verdicts correct"

# The batch runner's merge-determinism contract on the real binary: the same
# tiny grid rendered at -j1 and -j2 must be byte-identical (the in-tree
# TestMergeDeterminism proves it at the library layer; this proves the
# driver plumbing adds nothing nondeterministic on top).
sweep-smoke:
	@tmp=$$(mktemp -d) || exit 1; \
	trap 'rm -rf "$$tmp"' EXIT; \
	set -e; \
	$(GO) build -o $$tmp/figures ./cmd/figures; \
	$$tmp/figures -run ext-evict -quick -q -j 1 > $$tmp/j1.txt; \
	$$tmp/figures -run ext-evict -quick -q -j 2 > $$tmp/j2.txt; \
	cmp -s $$tmp/j1.txt $$tmp/j2.txt || { \
		echo "sweep-smoke: -j1 and -j2 artifacts differ — the merge leaked completion order"; exit 1; }; \
	echo "sweep-smoke: -j1 and -j2 artifacts byte-identical"
