// Command microbench runs ad-hoc microbenchmarks on the simulated cluster:
// point-to-point latency and bandwidth, barrier and allreduce latency, and
// MPI_Init time, under any device × connection-policy × wait-mode triple.
//
// Examples:
//
//	microbench -op latency -device clan -policy ondemand -size 4
//	microbench -op barrier -device bvia -procs 8 -policy static-p2p
//	microbench -op init -procs 32 -policy static-cs
package main

import (
	"flag"
	"fmt"
	"os"

	"viampi/internal/bench"
	"viampi/internal/via"
)

func main() {
	var (
		op     = flag.String("op", "latency", "latency | bandwidth | barrier | allreduce | init")
		device = flag.String("device", "clan", "clan | bvia")
		policy = flag.String("policy", "ondemand", "static-cs | static-p2p | ondemand")
		wait   = flag.String("wait", "polling", "polling | spinwait")
		procs  = flag.Int("procs", 8, "process count (collectives, init)")
		size   = flag.Int("size", 4, "message size in bytes")
		iters  = flag.Int("iters", 100, "iterations")
		extra  = flag.Int("extravis", 0, "extra idle VIs per port (Figure 1 style)")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	mech := bench.Mechanism{Name: *policy + "-" + *wait, Policy: *policy, Wait: via.WaitPoll}
	if *wait == "spinwait" {
		mech.Wait = via.WaitSpin
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch *op {
	case "latency":
		l, err := bench.Pingpong(*device, mech, *size, *iters, *extra, *seed)
		fail(err)
		fmt.Printf("one-way latency %d B on %s/%s: %.2f us\n", *size, *device, mech.Name, l.Micros())
	case "bandwidth":
		bw, err := bench.Bandwidth(*device, mech, *size, *iters, *seed)
		fail(err)
		fmt.Printf("bandwidth %d B on %s/%s: %.2f MB/s\n", *size, *device, mech.Name, bw)
	case "barrier":
		l, err := bench.CollectiveLatency(*device, mech, *procs, *iters, bench.BarrierOp, *seed)
		fail(err)
		fmt.Printf("barrier on %d procs, %s/%s: %.2f us\n", *procs, *device, mech.Name, l.Micros())
	case "allreduce":
		l, err := bench.CollectiveLatency(*device, mech, *procs, *iters, bench.AllreduceOp(*size), *seed)
		fail(err)
		fmt.Printf("allreduce %d B on %d procs, %s/%s: %.2f us\n", *size, *procs, *device, mech.Name, l.Micros())
	case "init":
		d, err := bench.InitTime(*device, mech, *procs, *seed)
		fail(err)
		fmt.Printf("MPI_Init on %d procs, %s/%s: %.3f ms\n", *procs, *device, mech.Name, d.Seconds()*1e3)
	default:
		fmt.Fprintf(os.Stderr, "unknown -op %q\n", *op)
		os.Exit(2)
	}
}
