// Command vibench benchmarks the VIA substrate directly — no MPI — in the
// spirit of the VIBe microbenchmark suite the paper cites for its Figure 1
// measurements. It reports, per device personality:
//
//   - VI creation and peer-to-peer connection setup time
//   - small-message one-way latency and its growth with open VIs
//   - send/receive vs. RDMA-write bandwidth at 64 kB
//
// Usage:
//
//	vibench                    # full sweep over clan, bvia, ib
//	vibench -device bvia       # one device
//	vibench -maxvis 256        # extend the VI-scaling curve
package main

import (
	"flag"
	"fmt"
	"os"

	"viampi/internal/fabric"
	"viampi/internal/simnet"
	"viampi/internal/sweep"
	"viampi/internal/via"
)

func main() {
	var (
		device = flag.String("device", "", "clan | bvia | ib (default: all)")
		maxVis = flag.Int("maxvis", 128, "largest open-VI count in the scaling curve")
		jobsN  = flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS); output is byte-identical at every -j")
		quiet  = flag.Bool("q", false, "suppress the progress/ETA line")
	)
	flag.Parse()
	devices := []string{"clan", "bvia", "ib"}
	if *device != "" {
		devices = []string{*device}
	}
	var visList []int
	for n := 1; n <= *maxVis; n *= 4 {
		visList = append(visList, n)
	}
	bwModes := []string{"send", "rdma"}

	// Every measurement is a hermetic two-process simulation, so the whole
	// report fans out as one job list; the index-ordered merge reassembles
	// the exact sequential output.
	var jobs []sweep.Job[string]
	for _, dev := range devices {
		dev := dev
		jobs = append(jobs, sweep.Job[string]{ID: dev + "/setup", Run: func() (string, error) { return setupLine(dev) }})
		for _, vis := range visList {
			vis := vis
			jobs = append(jobs, sweep.Job[string]{
				ID:  fmt.Sprintf("%s/lat/vis=%d", dev, vis),
				Run: func() (string, error) { return latLine(dev, vis) },
			})
		}
		for _, mode := range bwModes {
			mode := mode
			jobs = append(jobs, sweep.Job[string]{
				ID:  dev + "/bw/" + mode,
				Run: func() (string, error) { return bwLine(dev, mode) },
			})
		}
	}
	lines, err := sweep.Values(sweep.Run(sweep.Options{
		Workers: *jobsN, Progress: sweep.Stderr(*quiet), Label: "vibench"}, jobs))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	i := 0
	for _, dev := range devices {
		fmt.Printf("== device %s ==\n", dev)
		fmt.Print(lines[i])
		i++
		fmt.Printf("  one-way 4B latency by open VIs:\n")
		for range visList {
			fmt.Print(lines[i])
			i++
		}
		for range bwModes {
			fmt.Print(lines[i])
			i++
		}
		fmt.Println()
	}
}

func profile(dev string) (via.CostModel, fabric.Config, error) {
	switch dev {
	case "clan":
		return via.ClanCost(), via.ClanFabric(2, 1), nil
	case "bvia":
		return via.BviaCost(), via.BviaFabric(2, 1), nil
	case "ib":
		return via.IbCost(), via.IbFabric(2, 1), nil
	default:
		return via.CostModel{}, fabric.Config{}, fmt.Errorf("vibench: unknown device %q", dev)
	}
}

// side is one endpoint's script. The measuring side calls done once.
type side func(p *simnet.Proc, mine *via.Port, peer via.Addr, done func(simnet.Duration))

// bench runs a two-process VIA experiment.
func bench(dev string, a, b side) (simnet.Duration, error) {
	cost, fcfg, err := profile(dev)
	if err != nil {
		return 0, err
	}
	sim := simnet.New(1)
	sim.SetDeadline(simnet.Time(60 * simnet.Second))
	net := via.NewNetwork(sim, fcfg, cost)
	var result simnet.Duration
	addrs := make([]via.Addr, 2)
	ready := 0
	bodies := []side{a, b}
	for i := 0; i < 2; i++ {
		i := i
		sim.Spawn(fmt.Sprint("p", i), 0, func(p *simnet.Proc) {
			port, err := net.Open(p)
			if err != nil {
				sim.Failf("open: %v", err)
				return
			}
			addrs[i] = port.Addr()
			ready++
			for ready < 2 {
				p.Sleep(simnet.Microsecond)
			}
			bodies[i](p, port, addrs[1-i], func(d simnet.Duration) { result = d })
		})
	}
	if err := sim.Run(); err != nil {
		return 0, err
	}
	return result, nil
}

// prepare creates a VI with posted receives and connects it to the peer.
func prepare(p *simnet.Proc, port *via.Port, peer via.Addr, disc uint64, recvs, size, extraVis int) (*via.VI, error) {
	vi, err := port.CreateVi()
	if err != nil {
		return nil, err
	}
	for i := 0; i < recvs; i++ {
		if err := vi.PostRecv(&via.Descriptor{Buf: make([]byte, size)}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < extraVis; i++ {
		if _, err := port.CreateVi(); err != nil {
			return nil, err
		}
	}
	if err := port.ConnectPeerRequest(vi, peer, disc); err != nil {
		return nil, err
	}
	if err := port.ConnectPeerWait(vi, via.WaitPoll, -1); err != nil {
		return nil, err
	}
	return vi, nil
}

func must(p *simnet.Proc, err error) bool {
	if err != nil {
		p.Sim().Failf("vibench: %v", err)
		return false
	}
	return true
}

// setupLine measures connection setup time (initiator's view).
func setupLine(dev string) (string, error) {
	d, err := bench(dev,
		func(p *simnet.Proc, port *via.Port, peer via.Addr, done func(simnet.Duration)) {
			start := p.Now()
			if _, err := prepare(p, port, peer, 1, 4, 256, 0); err != nil {
				must(p, err)
				return
			}
			done(p.Now().Sub(start))
		},
		func(p *simnet.Proc, port *via.Port, peer via.Addr, _ func(simnet.Duration)) {
			if _, err := prepare(p, port, peer, 1, 4, 256, 0); err != nil {
				must(p, err)
			}
		})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("  VI create + peer connect : %8.1f us\n", d.Micros()), nil
}

// latLine measures one point of the latency-vs-open-VIs curve (pingpong;
// both sides open extras).
func latLine(dev string, vis int) (string, error) {
	const iters = 30
	extra := vis - 1
	d, err := bench(dev,
		func(p *simnet.Proc, port *via.Port, peer via.Addr, done func(simnet.Duration)) {
			vi, err := prepare(p, port, peer, 1, iters+2, 64, extra)
			if !must(p, err) {
				return
			}
			start := p.Now()
			for i := 0; i < iters; i++ {
				if !must(p, vi.PostSend(&via.Descriptor{Buf: []byte{1, 2, 3, 4}, Len: 4})) {
					return
				}
				if _, err := vi.RecvWait(via.WaitPoll, -1); !must(p, err) {
					return
				}
			}
			done(p.Now().Sub(start) / (2 * iters))
		},
		func(p *simnet.Proc, port *via.Port, peer via.Addr, _ func(simnet.Duration)) {
			vi, err := prepare(p, port, peer, 1, iters+2, 64, extra)
			if !must(p, err) {
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := vi.RecvWait(via.WaitPoll, -1); !must(p, err) {
					return
				}
				if !must(p, vi.PostSend(&via.Descriptor{Buf: []byte{9, 9, 9, 9}, Len: 4})) {
					return
				}
			}
		})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("    %4d VIs open           : %8.1f us\n", vis, d.Micros()), nil
}

// bwLine measures send vs. RDMA bandwidth at 64 kB.
func bwLine(dev, mode string) (string, error) {
	const size = 64 << 10
	const bwIters = 40
	d, err := bench(dev,
		func(p *simnet.Proc, port *via.Port, peer via.Addr, done func(simnet.Duration)) {
			vi, err := prepare(p, port, peer, 1, 4, size, 0)
			if !must(p, err) {
				return
			}
			// Learn the RDMA key out of band (first receive).
			var key uint64
			if mode == "rdma" {
				dk, err := vi.RecvWait(via.WaitPoll, -1)
				if !must(p, err) {
					return
				}
				for i := 0; i < 8; i++ {
					key |= uint64(dk.Buf[i]) << (8 * i)
				}
			}
			buf := make([]byte, size)
			start := p.Now()
			for i := 0; i < bwIters; i++ {
				var desc *via.Descriptor
				if mode == "rdma" {
					desc = &via.Descriptor{Buf: buf, Len: size, RdmaKey: key}
					if !must(p, vi.PostRdmaWrite(desc)) {
						return
					}
				} else {
					desc = &via.Descriptor{Buf: buf, Len: size}
					if !must(p, vi.PostSend(desc)) {
						return
					}
				}
				if _, err := vi.SendWait(via.WaitPoll, -1); !must(p, err) {
					return
				}
			}
			// Completion handshake: peer acks when it has everything.
			if _, err := vi.RecvWait(via.WaitPoll, -1); !must(p, err) {
				return
			}
			done(p.Now().Sub(start))
		},
		func(p *simnet.Proc, port *via.Port, peer via.Addr, _ func(simnet.Duration)) {
			recvs := 6
			if mode == "send" {
				recvs = bwIters + 4
			}
			vi, err := prepare(p, port, peer, 1, recvs, size, 0)
			if !must(p, err) {
				return
			}
			if mode == "rdma" {
				target := make([]byte, size)
				key, mem, err := port.RegisterRdmaTarget(target)
				if !must(p, err) {
					return
				}
				// The registration pins the target against the port-wide
				// budget for the whole run; give it back when the worker
				// finishes so repeated modes never accumulate.
				defer port.ReleaseRdmaTarget(key, mem)
				kb := make([]byte, 8)
				for i := 0; i < 8; i++ {
					kb[i] = byte(key >> (8 * i))
				}
				if !must(p, vi.PostSend(&via.Descriptor{Buf: kb, Len: 8})) {
					return
				}
				// RDMA writes are silent; wait for the stats to show
				// all the bytes, then ack.
				for port.Stats().RdmaBytes < int64(size*bwIters) {
					port.WaitActivityTimeout(via.WaitPoll, 200*simnet.Microsecond)
				}
			} else {
				for i := 0; i < bwIters; i++ {
					if _, err := vi.RecvWait(via.WaitPoll, -1); !must(p, err) {
						return
					}
				}
			}
			if !must(p, vi.PostSend(&via.Descriptor{Buf: []byte{0xAC}, Len: 1})) {
				return
			}
		})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("  %-4s bandwidth (64kB)    : %8.1f MB/s\n", mode, float64(size*bwIters)/d.Seconds()/1e6), nil
}
