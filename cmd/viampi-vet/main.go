// Command viampi-vet runs the invariant-enforcing analyzer suite
// (internal/analysis) over the module and reports violations with
// file:line positions.
//
// Usage:
//
//	viampi-vet [-root dir] [-rules layering,determinism,...] [-json]
//	viampi-vet [-root dir] -fsm-dot
//	viampi-vet -explain <rule>
//	viampi-vet -list | -rules
//
// Exit status is 0 when the tree is clean, 1 when violations were found,
// 2 on usage or load errors. Output is deterministic: diagnostics are
// sorted by (file, line, column, rule) in both text and -json modes, and
// all rendering goes through the analysis package (RenderText/RenderJSON),
// which the regression tests pin byte-for-byte; wall-clock timing (-json
// mode) goes to stderr so stdout stays byte-stable. The same analyzers also
// run inside `go test ./internal/analysis/...` (the selfcheck), so CI
// cannot drift from what this command reports. Policy entries that match
// nothing in the module are reported on stderr as stale — the selfcheck
// fails on them, so a suppression cannot outlive the code it excused.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"viampi/internal/analysis"
)

func main() {
	// A bare trailing -rules lists the rules (the flag package would demand
	// a value); -rules with a value keeps the subset behavior below.
	if n := len(os.Args); n > 1 && (os.Args[n-1] == "-rules" || os.Args[n-1] == "--rules") {
		printRules(os.Stdout)
		return
	}
	root := flag.String("root", ".", "module root to analyze (directory containing go.mod)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	fsmDot := flag.Bool("fsm-dot", false, "print the extracted connection state machine as Graphviz DOT and exit")
	explain := flag.String("explain", "", "print why the named rule exists and exit")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		printRules(os.Stdout)
		return
	}
	if *explain != "" {
		a := analysis.ByName(*explain)
		if a == nil {
			unknownRule(*explain)
		}
		// The header line is the same Doc string -list prints, so the two
		// can never disagree about what a rule does.
		fmt.Printf("%s — %s\n\n%s\n", a.Name, a.Doc, a.Explain)
		return
	}

	loadStart := time.Now()
	mod, err := analysis.LoadModule(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "viampi-vet: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)
	policy := analysis.DefaultPolicy()

	if *fsmDot {
		// The committed docs/connection-fsm.dot is this output; make check
		// diffs the two so the architecture diagram cannot drift from code.
		os.Stdout.WriteString(analysis.FSMDot(mod, policy))
		return
	}

	for _, w := range analysis.StalePolicy(mod, policy) {
		fmt.Fprintf(os.Stderr, "viampi-vet: stale policy: %s\n", w)
	}

	selected := analysis.Analyzers()
	if *rules != "" {
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				unknownRule(name)
			}
			selected = append(selected, a)
		}
	}

	analyzeStart := time.Now()
	var ds []analysis.Diagnostic
	for _, a := range selected {
		ds = append(ds, a.Run(mod, policy)...)
	}
	analysis.SortDiagnostics(ds)
	analyzeTime := time.Since(analyzeStart)

	if *jsonOut {
		out, err := analysis.RenderJSON(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "viampi-vet: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
		// Timing goes to stderr: stdout is pinned byte-deterministic by
		// the render tests, and wall-clock numbers never are.
		fmt.Fprintf(os.Stderr, "viampi-vet: timing load=%s analyze=%s rules=%d packages=%d sweeps=%d\n",
			loadTime.Round(time.Millisecond), analyzeTime.Round(time.Millisecond), len(selected), len(mod.Pkgs), mod.Interproc().Sweeps)
	} else {
		os.Stdout.WriteString(analysis.RenderText(ds))
		if len(ds) == 0 {
			fmt.Printf("viampi-vet: %d packages clean\n", len(mod.Pkgs))
		}
	}
	if len(ds) > 0 {
		os.Exit(1)
	}
}

// printRules writes the per-rule one-line summaries (shared with the
// -explain header via analysis.RuleSummaries).
func printRules(w *os.File) {
	for _, line := range analysis.RuleSummaries() {
		fmt.Fprintln(w, line)
	}
}

// unknownRule reports a bad -rules/-explain argument, lists what exists,
// and exits 2.
func unknownRule(name string) {
	fmt.Fprintf(os.Stderr, "viampi-vet: unknown rule %q; available rules:\n", strings.TrimSpace(name))
	for _, line := range analysis.RuleSummaries() {
		fmt.Fprintf(os.Stderr, "  %s\n", line)
	}
	os.Exit(2)
}
