// Command viampi-vet runs the invariant-enforcing analyzer suite
// (internal/analysis) over the module and reports violations with
// file:line positions.
//
// Usage:
//
//	viampi-vet [-root dir] [-rules layering,determinism,...] [-json]
//	viampi-vet -explain <rule>
//
// Exit status is 0 when the tree is clean, 1 when violations were found,
// 2 on usage or load errors. The same analyzers also run inside
// `go test ./internal/analysis/...` (the selfcheck), so CI cannot drift
// from what this command reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"viampi/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root to analyze (directory containing go.mod)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	explain := flag.String("explain", "", "print why the named rule exists and exit")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *explain != "" {
		a := analysis.ByName(*explain)
		if a == nil {
			fmt.Fprintf(os.Stderr, "viampi-vet: unknown rule %q (try -list)\n", *explain)
			os.Exit(2)
		}
		fmt.Printf("%s — %s\n\n%s\n", a.Name, a.Doc, a.Explain)
		return
	}

	mod, err := analysis.LoadModule(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "viampi-vet: %v\n", err)
		os.Exit(2)
	}
	policy := analysis.DefaultPolicy()

	selected := analysis.Analyzers()
	if *rules != "" {
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "viampi-vet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	var ds []analysis.Diagnostic
	for _, a := range selected {
		ds = append(ds, a.Run(mod, policy)...)
	}
	analysis.SortDiagnostics(ds)

	if *jsonOut {
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(ds))
		for _, d := range ds {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "viampi-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range ds {
			fmt.Println(d)
		}
		if len(ds) == 0 {
			fmt.Printf("viampi-vet: %d packages clean\n", len(mod.Pkgs))
		}
	}
	if len(ds) > 0 {
		os.Exit(1)
	}
}
