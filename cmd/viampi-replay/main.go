// Command viampi-replay re-renders, summarizes, and diffs capture bundles
// recorded with mpirun-sim -record (or dumped by the tcpvia flight
// recorder) — the offline half of the obs pipeline. Because every exporter
// is a pure function of the event stream, replaying a bundle through the
// same consumers reproduces the live run's artifacts byte for byte: the
// Perfetto trace, the metrics registry in any format, the phase table.
//
// Examples:
//
//	viampi-replay -summary run.bin
//	viampi-replay -trace trace.json run.bin
//	viampi-replay -metrics -phases run.bin
//	viampi-replay -csv metrics.csv -json metrics.json run.bin
//	viampi-replay -diff a.bin b.bin
//	viampi-replay -diff -j4 a1.bin b1.bin a2.bin b2.bin   # batch: diff pairs
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"viampi/internal/obs"
	"viampi/internal/obs/capture"
	"viampi/internal/sweep"
)

func main() {
	var (
		summary = flag.Bool("summary", false, "print the bundle header and per-kind event counts")
		traceTo = flag.String("trace", "", "re-render the Perfetto/Chrome trace-event JSON to `file`")
		metrics = flag.Bool("metrics", false, "print the metrics registry (text form)")
		csvTo   = flag.String("csv", "", "write the metrics registry as CSV to `file`")
		jsonTo  = flag.String("json", "", "write the metrics registry as JSON to `file`")
		phases  = flag.Bool("phases", false, "print the per-rank phase decomposition")
		diff    = flag.Bool("diff", false, "compare bundle pairs: first structural divergence and per-kind deltas")
		jobsN   = flag.Int("j", 0, "worker pool size for batch -diff (0 = GOMAXPROCS); output is byte-identical at every -j")
		quiet   = flag.Bool("q", false, "suppress the progress/ETA line")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() < 2 || flag.NArg()%2 != 0 {
			fmt.Fprintln(os.Stderr, "usage: viampi-replay -diff a.bin b.bin [a2.bin b2.bin ...]")
			os.Exit(2)
		}
		// Each pair loads and diffs on a worker; reports print in argument
		// order, so batch output is byte-identical at every -j.
		type pairReport struct {
			text      []byte
			identical bool
		}
		npairs := flag.NArg() / 2
		jobs := make([]sweep.Job[pairReport], npairs)
		for i := 0; i < npairs; i++ {
			pa, pb := flag.Arg(2*i), flag.Arg(2*i+1)
			jobs[i] = sweep.Job[pairReport]{
				ID: pa + " vs " + pb,
				Run: func() (pairReport, error) {
					a, err := loadBundle(pa)
					if err != nil {
						return pairReport{}, err
					}
					b, err := loadBundle(pb)
					if err != nil {
						return pairReport{}, err
					}
					d := capture.Diff(a, b)
					var buf bytes.Buffer
					if err := d.WriteText(&buf); err != nil {
						return pairReport{}, err
					}
					return pairReport{text: buf.Bytes(), identical: d.Identical()}, nil
				},
			}
		}
		reports, err := sweep.Values(sweep.Run(sweep.Options{
			Workers: *jobsN, Progress: sweep.Stderr(*quiet), Label: "replay/diff"}, jobs))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		allSame := true
		for i, r := range reports {
			if npairs > 1 {
				fmt.Printf("== %s ==\n", jobs[i].ID)
			}
			os.Stdout.Write(r.text)
			allSame = allSame && r.identical
		}
		if !allSame {
			os.Exit(1) // differing runs exit nonzero, like diff(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: viampi-replay [flags] bundle.bin")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if !*summary && *traceTo == "" && !*metrics && *csvTo == "" && *jsonTo == "" && !*phases {
		*summary = true // bare invocation: show what the bundle is
	}
	b := readBundle(flag.Arg(0))

	if *summary {
		writeSummary(os.Stdout, b)
	}

	// Feed the bundle through the same consumers a live run attaches; each
	// exporter's output is then byte-identical to what the run produced.
	bus := obs.NewBus()
	var flight *obs.Recorder
	var reg *obs.Registry
	if *traceTo != "" {
		flight = obs.NewRecorder()
		flight.Attach(bus)
	}
	if *metrics || *csvTo != "" || *jsonTo != "" {
		reg = obs.NewRegistry()
		obs.NewCollector(reg).Attach(bus)
	}
	b.EmitAll(bus)

	if *traceTo != "" {
		toFile(*traceTo, func(f *os.File) error { return flight.WritePerfetto(f) })
		fmt.Printf("wrote %d events to %s (open in ui.perfetto.dev)\n", flight.Len(), *traceTo)
	}
	if *metrics {
		reg.WriteText(os.Stdout)
	}
	if *csvTo != "" {
		toFile(*csvTo, func(f *os.File) error { reg.WriteCSV(f); return nil })
	}
	if *jsonTo != "" {
		toFile(*jsonTo, func(f *os.File) error { reg.WriteJSON(f); return nil })
	}
	if *phases {
		obs.WritePhaseTable(os.Stdout, b.PhaseRows())
	}
}

func readBundle(path string) *capture.Bundle {
	b, err := loadBundle(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return b
}

// loadBundle reads one capture bundle, returning errors instead of exiting
// so it can run on sweep workers.
func loadBundle(path string) (*capture.Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := capture.ReadBundle(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

func toFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeSummary prints the header and a per-kind census — the quick "what is
// this file" view.
func writeSummary(f *os.File, b *capture.Bundle) {
	h := b.Header
	fmt.Fprintf(f, "bundle: version=%d clock=%s digest=%s\n", h.Version, h.Clock, h.Digest())
	fmt.Fprintf(f, "run   : world=%d seed=%d device=%s policy=%s label=%q\n", h.World, h.Seed, h.Device, h.Policy, h.Label)
	if h.Config != "" {
		fmt.Fprintf(f, "config: %s\n", h.Config)
	}
	var counts [capture.NumKinds + 1]int64
	var span int64
	for _, e := range b.Events {
		counts[e.Kind]++
		if e.T > span {
			span = e.T
		}
	}
	fmt.Fprintf(f, "events: %d spanning %d ns (%s time)\n", len(b.Events), span, h.Clock)
	for k := 1; k <= capture.NumKinds; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(f, "  %-16s %10d\n", obs.Kind(k).String(), counts[k])
		}
	}
}
