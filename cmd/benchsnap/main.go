// Command benchsnap captures a microbenchmark snapshot of the simulated
// stack as JSON: ping-pong latency across the eager/rendezvous switch,
// streaming bandwidth, and MPI_Init time for the paper's mechanisms. The
// simulation is a pure function of its Config, so for a fixed seed the
// snapshot is byte-stable — the committed BENCH_micro.json is a regression
// anchor, and `-smoke` is the fast subset `make check` runs.
//
// Usage:
//
//	benchsnap -out BENCH_micro.json   # full snapshot (committed)
//	benchsnap -smoke                  # tiny subset to stdout, seconds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"viampi/internal/bench"
)

func main() {
	var (
		out   = flag.String("out", "", "output file (default stdout)")
		smoke = flag.Bool("smoke", false, "tiny subset (smoke test for make check)")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	sizes := []int{8, 1024, 4096, 16384}
	ppIters, bwIters := 50, 100
	if *smoke {
		sizes = []int{8, 16384}
		ppIters, bwIters = 4, 8
	}
	mechs := []bench.Mechanism{bench.StaticPolling, bench.OnDemand}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}

	fail := func(section string, err error) {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", section, err)
		os.Exit(1)
	}

	fmt.Fprintf(w, "{\n  \"device\": \"clan\",\n  \"seed\": %d,\n  \"smoke\": %v,\n", *seed, *smoke)

	fmt.Fprint(w, "  \"pingpong_one_way_ns\": [\n")
	first := true
	for _, mech := range mechs {
		for _, size := range sizes {
			lat, err := bench.Pingpong("clan", mech, size, ppIters, 0, *seed)
			if err != nil {
				fail("pingpong", err)
			}
			if !first {
				fmt.Fprint(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "    {\"mech\": %q, \"bytes\": %d, \"ns\": %d}", mech.Name, size, int64(lat))
		}
	}
	fmt.Fprint(w, "\n  ],\n")

	fmt.Fprint(w, "  \"bandwidth_mbps\": [\n")
	first = true
	for _, mech := range mechs {
		mbps, err := bench.Bandwidth("clan", mech, 16384, bwIters, *seed)
		if err != nil {
			fail("bandwidth", err)
		}
		if !first {
			fmt.Fprint(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "    {\"mech\": %q, \"bytes\": 16384, \"mbps\": %.3f}", mech.Name, mbps)
	}
	fmt.Fprint(w, "\n  ],\n")

	procs := []int{8, 16}
	if *smoke {
		procs = []int{4}
	}
	fmt.Fprint(w, "  \"init_avg_ns\": [\n")
	first = true
	for _, mech := range mechs {
		for _, np := range procs {
			d, err := bench.InitTime("clan", mech, np, *seed)
			if err != nil {
				fail("init", err)
			}
			if !first {
				fmt.Fprint(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "    {\"mech\": %q, \"np\": %d, \"ns\": %d}", mech.Name, np, int64(d))
		}
	}
	fmt.Fprint(w, "\n  ]\n}\n")
}
