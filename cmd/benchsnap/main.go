// Command benchsnap captures a microbenchmark snapshot of the simulated
// stack as JSON: ping-pong latency across the eager/rendezvous switch,
// streaming bandwidth, and MPI_Init time for the paper's mechanisms. The
// simulation is a pure function of its Config, so for a fixed seed the
// snapshot is byte-stable — the committed BENCH_micro.json is a regression
// anchor, and `-smoke` is the fast subset `make check` runs.
//
// With -simcore it instead snapshots the scheduler core itself: fixed-shape
// workloads from internal/bench timed against the host clock. There the
// event counts and virtual times are deterministic; the wall_ns and
// events_per_wall_sec fields are machine-dependent by nature and marked so
// in the output (BENCH_simcore.json is a record of one host, not a diff
// anchor).
//
// Usage:
//
//	benchsnap -out BENCH_micro.json        # full snapshot (committed)
//	benchsnap -smoke                       # tiny subset to stdout, seconds
//	benchsnap -simcore -out BENCH_simcore.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"viampi/internal/bench"
	"viampi/internal/sweep"
)

func main() {
	var (
		out     = flag.String("out", "", "output file (default stdout)")
		smoke   = flag.Bool("smoke", false, "tiny subset (smoke test for make check)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		simcore = flag.Bool("simcore", false, "scheduler-core wall-clock snapshot instead of the micro snapshot")
		jobs    = flag.Int("j", 0, "worker pool size for the snapshot grids (0 = GOMAXPROCS); output is byte-identical at every -j")
		quiet   = flag.Bool("q", false, "suppress the progress/ETA line")
	)
	flag.Parse()
	progress := sweep.Stderr(*quiet)

	sizes := []int{8, 1024, 4096, 16384}
	ppIters, bwIters := 50, 100
	if *smoke {
		sizes = []int{8, 16384}
		ppIters, bwIters = 4, 8
	}
	mechs := []bench.Mechanism{bench.StaticPolling, bench.OnDemand}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}

	fail := func(section string, err error) {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", section, err)
		os.Exit(1)
	}

	if *simcore {
		if err := simcoreSnapshot(w, *smoke); err != nil {
			fail("simcore", err)
		}
		return
	}

	fmt.Fprintf(w, "{\n  \"device\": \"clan\",\n  \"seed\": %d,\n  \"smoke\": %v,\n", *seed, *smoke)

	// Each snapshot section is an indexed job list rendering its own JSON
	// line; the batch runner's index-ordered merge keeps the file
	// byte-identical at every -j.
	run := func(section string, js []sweep.Job[string]) []string {
		lines, err := sweep.Values(sweep.Run(sweep.Options{
			Workers: *jobs, Progress: progress, Label: "benchsnap/" + section}, js))
		if err != nil {
			fail(section, err)
		}
		return lines
	}

	var ppJobs []sweep.Job[string]
	for _, mech := range mechs {
		for _, size := range sizes {
			mech, size := mech, size
			ppJobs = append(ppJobs, sweep.Job[string]{
				ID: fmt.Sprintf("pingpong/%s/%dB", mech.Name, size),
				Run: func() (string, error) {
					lat, err := bench.Pingpong("clan", mech, size, ppIters, 0, *seed)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("    {\"mech\": %q, \"bytes\": %d, \"ns\": %d}", mech.Name, size, int64(lat)), nil
				},
			})
		}
	}
	fmt.Fprintf(w, "  \"pingpong_one_way_ns\": [\n%s\n  ],\n", strings.Join(run("pingpong", ppJobs), ",\n"))

	var bwJobs []sweep.Job[string]
	for _, mech := range mechs {
		mech := mech
		bwJobs = append(bwJobs, sweep.Job[string]{
			ID: "bandwidth/" + mech.Name,
			Run: func() (string, error) {
				mbps, err := bench.Bandwidth("clan", mech, 16384, bwIters, *seed)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("    {\"mech\": %q, \"bytes\": 16384, \"mbps\": %.3f}", mech.Name, mbps), nil
			},
		})
	}
	fmt.Fprintf(w, "  \"bandwidth_mbps\": [\n%s\n  ],\n", strings.Join(run("bandwidth", bwJobs), ",\n"))

	procs := []int{8, 16}
	if *smoke {
		procs = []int{4}
	}
	var initJobs []sweep.Job[string]
	for _, mech := range mechs {
		for _, np := range procs {
			mech, np := mech, np
			initJobs = append(initJobs, sweep.Job[string]{
				ID: fmt.Sprintf("init/%s/np=%d", mech.Name, np),
				Run: func() (string, error) {
					d, err := bench.InitTime("clan", mech, np, *seed)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("    {\"mech\": %q, \"np\": %d, \"ns\": %d}", mech.Name, np, int64(d)), nil
				},
			})
		}
	}
	fmt.Fprintf(w, "  \"init_avg_ns\": [\n%s\n  ],\n", strings.Join(run("init", initJobs), ",\n"))

	if err := captureOverhead(w, *seed); err != nil {
		fail("capture-overhead", err)
	}
	fmt.Fprint(w, "}\n")
}

// captureOverhead times the CG replay with the obs bus counting events
// versus encoding them through a capture.Writer — the recording tax. The
// events / virtual_ns / bundle_bytes fields are deterministic; wall_ns,
// ns_per_event, and overhead_pct are machine-dependent (same convention as
// BENCH_simcore.json) and recorded as one host's measurement, not a diff
// anchor.
func captureOverhead(w io.Writer, seed int64) error {
	fmt.Fprint(w, "  \"capture_overhead_note\": \"events, virtual_ns, bundle_bytes, bytes_per_event are deterministic; wall_ns, ns_per_event, overhead_pct are machine-dependent\",\n")
	fmt.Fprint(w, "  \"capture_overhead\": [\n")
	// Interleaved best-of-N: the workload's wall time is goroutine-scheduler
	// noisy at the millisecond scale, so alternating the two variants and
	// keeping each one's minimum isolates the encoder's tax from drift.
	const reps = 9
	results := [2]bench.CaptureResult{}
	walls := [2]time.Duration{}
	for _, record := range []bool{false, true} { // warm-up both variants
		if _, err := bench.CaptureWorkload(record, seed); err != nil {
			return err
		}
	}
	for rep := 0; rep < reps; rep++ {
		for i, record := range []bool{false, true} {
			start := time.Now()
			r, err := bench.CaptureWorkload(record, seed)
			if err != nil {
				return err
			}
			if d := time.Since(start); rep == 0 || d < walls[i] {
				results[i], walls[i] = r, d
			}
		}
	}
	var base float64 // ns/event with recording off
	for i, record := range []bool{false, true} {
		res, wall := results[i], walls[i]
		perEvent := float64(wall.Nanoseconds()) / float64(res.Events)
		if i > 0 {
			fmt.Fprint(w, ",\n")
		}
		fmt.Fprintf(w, "    {\"name\": %q, \"recording\": %v, \"events\": %d, \"virtual_ns\": %d, \"wall_ns\": %d, \"ns_per_event\": %.1f",
			res.Name, record, res.Events, res.VirtualNS, wall.Nanoseconds(), perEvent)
		if record {
			fmt.Fprintf(w, ", \"bundle_bytes\": %d, \"bytes_per_event\": %.2f, \"overhead_pct\": %.1f",
				res.BundleBytes, float64(res.BundleBytes)/float64(res.Events), (perEvent/base-1)*100)
		} else {
			base = perEvent
		}
		fmt.Fprint(w, "}")
	}
	fmt.Fprint(w, "\n  ]\n")
	return nil
}

// simcoreWorkloads returns the fixed shapes timed by -simcore. The
// iteration counts are constants (not wall-time targeted) so the
// deterministic fields — events and virtual_ns — are identical on every
// host and every run. Smoke mode shrinks every shape 100× to prove the rail
// end-to-end in milliseconds.
func simcoreWorkloads(smoke bool) []func() (bench.SimCoreResult, error) {
	scale := 1
	bootOD, bootStatic := 1024, 256
	if smoke {
		scale = 100
		bootOD, bootStatic = 64, 16
	}
	return []func() (bench.SimCoreResult, error){
		func() (bench.SimCoreResult, error) { return bench.SimCoreSleepCycle(1, 2_000_000/scale) },
		func() (bench.SimCoreResult, error) { return bench.SimCoreSleepCycle(8, 250_000/scale) },
		func() (bench.SimCoreResult, error) { return bench.SimCoreParkWake(1_000_000 / scale) },
		func() (bench.SimCoreResult, error) { return bench.SimCoreEventChurn(2_000_000 / scale) },
		// Init-cost rail: boot-only MPI worlds (empty main). The on-demand
		// boot must stay O(procs) events; the static boot carries the dense
		// mesh's full connection storm for contrast.
		func() (bench.SimCoreResult, error) { return bench.InitBoot(bench.OnDemand, bootOD) },
		func() (bench.SimCoreResult, error) { return bench.InitBoot(bench.StaticPolling, bootStatic) },
	}
}

// seedBaseline records BenchmarkSimCore on the pre-rewrite scheduler
// (container/heap + *event + per-call closures), measured on the same host
// class the committed BENCH_simcore.json was generated on. It is embedded so
// the before/after ratio survives in one file.
const seedBaseline = `{
    "scheduler": "container/heap + []*event + closure timers",
    "benchmark": "BenchmarkSimCore",
    "ns_per_op": 487.5,
    "events_per_wall_sec": 2051421,
    "allocs_per_op": 2
  }`

// simcoreSnapshot times each workload against the host clock after one
// untimed warm-up run. Deterministic fields come straight from the workload
// result; wall fields carry a machine_dependent marker in the schema note.
func simcoreSnapshot(w io.Writer, smoke bool) error {
	fmt.Fprint(w, "{\n")
	fmt.Fprint(w, "  \"note\": \"events and virtual_ns are deterministic; wall_ns and events_per_wall_sec are machine-dependent\",\n")
	fmt.Fprint(w, "  \"workloads\": [\n")
	for i, wl := range simcoreWorkloads(smoke) {
		if _, err := wl(); err != nil { // warm-up
			return err
		}
		start := time.Now()
		res, err := wl()
		if err != nil {
			return err
		}
		wall := time.Since(start)
		if i > 0 {
			fmt.Fprint(w, ",\n")
		}
		perSec := float64(res.Events) / wall.Seconds()
		fmt.Fprintf(w, "    {\"name\": %q, \"events\": %d, \"virtual_ns\": %d, \"wall_ns\": %d, \"events_per_wall_sec\": %.0f}",
			res.Name, res.Events, res.VirtualNS, wall.Nanoseconds(), perSec)
	}
	fmt.Fprint(w, "\n  ],\n")
	if err := sweepWallClock(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "  \"seed_baseline\": %s\n}\n", seedBaseline)
	return nil
}

// sweepWallClock is the SweepWallClock rail: it times the quick ext-init
// grid through the batch runner at j=1 and j=GOMAXPROCS and reports both
// wall times and their ratio. The rail measures the *runner's* parallel
// speedup, not ext-init's absolute cost, so the quick grid (which the full
// grid's cells merely scale up) carries the signal while keeping snapshot
// regeneration in seconds — the full grid reaches 4096-rank worlds and
// would add tens of minutes per run. Both runs render identical tables
// (internal/bench's merge-determinism test asserts this); only the wall
// fields differ, and they are machine-dependent like every wall figure in
// this file. On a single-core host the two runs coincide and the speedup
// sits at ~1.0; on an N-core host the grid's independent cells should push
// it toward min(N, cells on the critical row).
func sweepWallClock(w io.Writer) error {
	maxJ := runtime.GOMAXPROCS(0)
	opt := bench.Options{Quick: true, Seed: 1}
	var walls [2]time.Duration
	for i, j := range []int{1, maxJ} {
		opt.Workers = j
		start := time.Now()
		if _, err := bench.ExtInit(opt); err != nil {
			return err
		}
		walls[i] = time.Since(start)
	}
	fmt.Fprintf(w, "  \"sweep_wall_clock\": {\"suite\": \"ext-init\", \"quick\": true, \"gomaxprocs\": %d, \"wall_ns_j1\": %d, \"wall_ns_jmax\": %d, \"speedup\": %.2f},\n",
		maxJ, walls[0].Nanoseconds(), walls[1].Nanoseconds(),
		float64(walls[0])/float64(walls[1]))
	return nil
}
