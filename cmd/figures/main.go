// Command figures regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	figures -list                 # show every experiment id
//	figures -run fig4a,table2     # run selected experiments
//	figures -all                  # run everything (the full evaluation)
//	figures -all -quick           # small classes / few points, seconds not minutes
//	figures -csv out/             # also write each table as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"viampi/internal/bench"
	"viampi/internal/mpi"
	"viampi/internal/obs"
	"viampi/internal/sweep"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		run    = flag.String("run", "", "comma-separated experiment ids to run")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "reduced sizes/iterations")
		csv    = flag.String("csv", "", "directory to write per-experiment CSV files")
		svg    = flag.String("svg", "", "directory to write per-experiment SVG charts")
		report = flag.String("report", "", "file to write a combined markdown report")
		seed   = flag.Int64("seed", 1, "simulation seed")
		traced = flag.String("trace", "", "write a Perfetto trace of every measurement run to `file`")
		jobs   = flag.Int("j", 0, "worker pool size for the sweep grids (0 = GOMAXPROCS); output is byte-identical at every -j")
		quiet  = flag.Bool("q", false, "suppress the progress/ETA line")
	)
	flag.Parse()

	var flight *obs.Recorder
	if *traced != "" {
		// The shared flight recorder is mutated by every measurement run, so
		// traced runs are pinned to one worker.
		*jobs = 1
		// One flight recorder spans all runs; each measurement run becomes
		// its own process group in the exported trace.
		flight = obs.NewRecorder()
		bench.Instrument = func(cfg *mpi.Config) {
			bus := obs.NewBus()
			flight.NextRun(fmt.Sprintf("%s/%s/np%d", cfg.Device, cfg.Policy, cfg.Procs))
			flight.Attach(bus)
			cfg.Obs = bus
		}
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []bench.Experiment
	switch {
	case *all:
		todo = bench.Experiments()
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	opt := bench.Options{Quick: *quick, Seed: *seed, Workers: *jobs, Progress: sweep.Stderr(*quiet)}
	var md *os.File
	if *report != "" {
		if dir := filepath.Dir(*report); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		var err error
		md, err = os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(md, "# Evaluation report (seed %d, quick=%v)\n\n", *seed, *quick)
		defer md.Close()
	}
	for _, e := range todo {
		fmt.Fprintf(os.Stderr, "running %s...\n", e.ID)
		tb, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tb.Render(os.Stdout)
		if md != nil {
			tb.RenderMarkdown(md)
		}
		if *svg != "" && strings.HasPrefix(tb.ID, "fig") {
			// Only figure-shaped experiments chart meaningfully; tables
			// stay tables.
			if err := os.MkdirAll(*svg, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*svg, tb.ID+".svg"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tb.RenderSVG(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: svg: %v (skipped)\n", tb.ID, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *csv != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csv, tb.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tb.RenderCSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if flight != nil {
		f, err := os.Create(*traced)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := flight.WritePerfetto(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", flight.Len(), *traced)
	}
}
