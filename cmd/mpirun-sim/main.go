// Command mpirun-sim launches an NPB proxy benchmark on the simulated
// cluster — the moral equivalent of mpirun on the paper's testbed.
//
// Examples:
//
//	mpirun-sim -np 16 CG A
//	mpirun-sim -np 8 -device bvia -conn static-p2p IS B
//	mpirun-sim -np 16 -conn ondemand -wait spinwait MG C
package main

import (
	"flag"
	"fmt"
	"os"

	"viampi/internal/mpi"
	"viampi/internal/npb"
	"viampi/internal/obs"
	"viampi/internal/obs/capture"
	"viampi/internal/simnet"
	"viampi/internal/trace"
	"viampi/internal/via"
)

func main() {
	var (
		np      = flag.Int("np", 8, "number of processes")
		device  = flag.String("device", "clan", "clan | bvia")
		conn    = flag.String("conn", "ondemand", "static-cs | static-p2p | ondemand")
		wait    = flag.String("wait", "polling", "polling | spinwait")
		seed    = flag.Int64("seed", 1, "simulation seed")
		matrix  = flag.Bool("matrix", false, "print the communication matrix after the run")
		profile = flag.Bool("profile", false, "print per-MPI-call time accounting after the run")
		traceTo = flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON `file`")
		metrics = flag.Bool("metrics", false, "print the metrics registry after the run")
		phases  = flag.Bool("phases", false, "print the per-rank phase decomposition after the run")
		record  = flag.String("record", "", "write the full event stream as a capture bundle to `file` (replay with viampi-replay)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: mpirun-sim [flags] <benchmark> <class>")
		fmt.Fprintln(os.Stderr, "benchmarks: CG MG IS EP SP BT FT LU; classes: S W A B C")
		os.Exit(2)
	}
	kern, err := npb.ByName(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	class, err := npb.ParseClass(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	wm := via.WaitPoll
	if *wait == "spinwait" {
		wm = via.WaitSpin
	}
	cfg := mpi.Config{
		Procs:    *np,
		Device:   *device,
		Policy:   *conn,
		WaitMode: wm,
		Seed:     *seed,
		Deadline: 8 * 3600 * simnet.Second,
	}
	var rec *trace.Recorder
	if *matrix {
		rec = trace.New(*np, false)
		cfg.Trace = rec
	}
	cfg.Profile = *profile

	var flight *obs.Recorder
	var reg *obs.Registry
	if *traceTo != "" || *metrics || *phases || *record != "" {
		cfg.Obs = obs.NewBus()
	}
	if *traceTo != "" {
		flight = obs.NewRecorder()
		flight.Attach(cfg.Obs)
	}
	if *metrics {
		reg = obs.NewRegistry()
		obs.NewCollector(reg).Attach(cfg.Obs)
	}
	var cw *capture.Writer
	var cf *os.File
	if *record != "" {
		var err error
		if cf, err = os.Create(*record); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cw, err = capture.NewWriter(cf, capture.Header{
			Clock:  capture.ClockVirtual,
			World:  *np,
			Seed:   *seed,
			Device: *device,
			Policy: *conn,
			Label:  flag.Arg(0) + "." + flag.Arg(1),
			Config: fmt.Sprintf("bench=%s class=%s np=%d device=%s conn=%s wait=%s seed=%d",
				flag.Arg(0), flag.Arg(1), *np, *device, *conn, *wait, *seed),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cw.Attach(cfg.Obs)
	}
	res, w, err := npb.Run(kern, class, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s.%c on %d procs (%s, %s, %s)\n", res.Name, res.Class, res.Procs, *device, *conn, *wait)
	fmt.Printf("  benchmark time     : %.3f s (virtual)\n", res.TimeSec)
	fmt.Printf("  verified           : %v\n", res.Verified)
	fmt.Printf("  MPI_Init (avg)     : %.3f ms\n", w.AvgInit().Seconds()*1e3)
	fmt.Printf("  VIs/process (avg)  : %.2f\n", w.AvgVIs())
	fmt.Printf("  VI utilization     : %.2f\n", w.AvgUtilization())
	fmt.Printf("  pinned memory total: %.1f kB\n", float64(w.TotalPinnedPeak())/1024)
	if rec != nil {
		fmt.Println()
		rec.RenderMatrix(os.Stdout)
		rec.Summary(os.Stdout)
	}
	if *profile {
		fmt.Println()
		w.WriteProfile(os.Stdout)
	}
	if *metrics {
		fmt.Println()
		reg.WriteText(os.Stdout)
	}
	if *phases {
		fmt.Println()
		w.WritePhases(os.Stdout)
	}
	if flight != nil {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := flight.WritePerfetto(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d events to %s (open in ui.perfetto.dev)\n", flight.Len(), *traceTo)
	}
	if cw != nil {
		err := cw.Close()
		if cerr := cf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %d events (%d bundle bytes) to %s\n", cw.Events(), cw.Bytes(), *record)
	}
}
