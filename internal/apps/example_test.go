package apps_test

import (
	"fmt"

	"viampi/internal/apps"
)

// Table 1 of the paper in three lines: the average number of distinct
// destinations per process stays tiny for most production applications.
func ExampleAvgDests() {
	for _, p := range []apps.Pattern{apps.Sweep3D(), apps.Sphot()} {
		fmt.Printf("%s at 64 procs: %.2f avg destinations\n", p.Name, apps.AvgDests(p, 64))
	}
	// Output:
	// Sweep3D at 64 procs: 3.50 avg destinations
	// Sphot at 64 procs: 0.98 avg destinations
}
