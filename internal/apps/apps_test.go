package apps

import (
	"testing"
	"testing/quick"
)

func TestGrid3Factors(t *testing.T) {
	cases := map[int][3]int{
		64:   {4, 4, 4},
		8:    {2, 2, 2},
		1024: {16, 8, 8},
		27:   {3, 3, 3},
	}
	for n, want := range cases {
		dx, dy, dz := grid3(n)
		if dx*dy*dz != n {
			t.Errorf("grid3(%d) = %d×%d×%d does not multiply out", n, dx, dy, dz)
		}
		if [3]int{dx, dy, dz} != want {
			t.Errorf("grid3(%d) = %v, want %v", n, [3]int{dx, dy, dz}, want)
		}
	}
}

func TestGrid2Factors(t *testing.T) {
	for _, n := range []int{64, 1024, 12, 7} {
		dx, dy := grid2(n)
		if dx*dy != n || dy > dx {
			t.Errorf("grid2(%d) = %d×%d", n, dx, dy)
		}
	}
	if dx, dy := grid2(64); dx != 8 || dy != 8 {
		t.Errorf("grid2(64) = %d×%d, want 8×8", dx, dy)
	}
}

// TestTable1Values checks our generated averages against the paper's Table 1
// (loose bands: the paper's own values are measurements of real codes; ours
// come from the documented decompositions).
func TestTable1Values(t *testing.T) {
	checks := []struct {
		p        Pattern
		size     int
		min, max float64
	}{
		{SPPM(), 64, 3.5, 6.0},      // paper: 5.5
		{SPPM(), 1024, 3.5, 6.0},    // paper: < 6
		{SMG2000(), 64, 25, 63},     // paper: 41.88
		{Sphot(), 64, 0.9, 1.0},     // paper: 0.98
		{Sphot(), 1024, 0.95, 1.0},  // paper: < 1
		{Sweep3D(), 64, 3.4, 3.6},   // paper: 3.5 (exact for 8x8)
		{Sweep3D(), 1024, 3.5, 4.0}, // paper: < 4
		{Samrai(), 64, 3.0, 7.0},    // paper: 4.94
		{CG(), 64, 3.5, 7.0},        // paper: 6.36
		{CG(), 1024, 4.0, 11.0},     // paper: < 11
	}
	for _, c := range checks {
		got := AvgDests(c.p, c.size)
		if got < c.min || got > c.max {
			t.Errorf("%s@%d: avg dests %.2f outside [%v, %v]", c.p.Name, c.size, got, c.min, c.max)
		}
	}
}

func TestSweep3DExactAt64(t *testing.T) {
	if got := AvgDests(Sweep3D(), 64); got != 3.5 {
		t.Errorf("Sweep3D@64 = %v, want exactly 3.5 (paper value)", got)
	}
}

func TestSphotExact(t *testing.T) {
	if got := AvgDests(Sphot(), 64); got != 63.0/64 {
		t.Errorf("Sphot@64 = %v, want 63/64", got)
	}
}

// Property: destinations are valid ranks, exclude self, and are sorted
// without duplicates, for every pattern and various sizes.
func TestPropertyDestsWellFormed(t *testing.T) {
	f := func(sizeRaw uint8, rankRaw uint8) bool {
		size := int(sizeRaw)%120 + 2
		rank := int(rankRaw) % size
		for _, p := range All() {
			ds := p.Dests(rank, size)
			for i, d := range ds {
				if d < 0 || d >= size || d == rank {
					return false
				}
				if i > 0 && ds[i-1] >= d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: pattern generation is deterministic.
func TestPropertyDeterministic(t *testing.T) {
	for _, p := range All() {
		a := AvgDests(p, 96)
		b := AvgDests(p, 96)
		if a != b {
			t.Errorf("%s not deterministic: %v vs %v", p.Name, a, b)
		}
	}
}

func TestSMGGrowsWithScale(t *testing.T) {
	// SMG2000's partner count grows with job size (coarse levels reach
	// farther); the others stay roughly flat.
	if small, big := AvgDests(SMG2000(), 64), AvgDests(SMG2000(), 512); big <= small {
		t.Errorf("SMG2000 avg did not grow: %v -> %v", small, big)
	}
	if small, big := AvgDests(SPPM(), 64), AvgDests(SPPM(), 1024); big > small+1 {
		t.Errorf("sPPM avg grew too much: %v -> %v", small, big)
	}
}

func TestCGGrid(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 32: {4, 8}, 64: {8, 8}, 1024: {32, 32}}
	for n, want := range cases {
		r, c := cgGrid(n)
		if r != want[0] || c != want[1] {
			t.Errorf("cgGrid(%d) = %d×%d, want %v", n, r, c, want)
		}
	}
}

func TestMaxDests(t *testing.T) {
	if m := MaxDests(Sphot(), 64); m != 1 {
		t.Errorf("Sphot max = %d", m)
	}
	if m := MaxDests(SMG2000(), 1024); m >= 1024 {
		t.Errorf("SMG2000 max = %d, must stay < size", m)
	}
}
