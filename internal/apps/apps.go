// Package apps models the communication patterns of the large-scale
// production applications in the paper's Table 1 (taken from Vetter &
// Mueller, "Communication Characteristics of Large-Scale Scientific
// Applications...", IPDPS 2002): sPPM, SMG2000, Sphot, Sweep3D, SAMRAI and
// NPB CG.
//
// Table 1 reports the average number of distinct *send destinations* per
// process — a directed count. These generators reproduce each application's
// documented decomposition and point-to-point pattern analytically, so the
// table can be regenerated at 64 and 1024 processes (and beyond) without
// simulating the full applications.
package apps

import (
	"math/rand"
	"sort"
)

// Pattern names an application and produces, for every rank, the set of
// ranks it sends point-to-point messages to during a run.
type Pattern struct {
	Name string
	// Dests returns the distinct destination ranks of rank in a job of the
	// given size, sorted ascending.
	Dests func(rank, size int) []int
}

// grid3 factors n into three near-equal dimensions (dx >= dy >= dz).
func grid3(n int) (dx, dy, dz int) {
	best := [3]int{n, 1, 1}
	bestScore := n * n
	for a := 1; a*a*a <= n*4; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m*2; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if c < b {
				continue
			}
			score := (c - a) * (c - a)
			if score < bestScore {
				bestScore = score
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// grid2 factors n into two near-equal dimensions (dx >= dy).
func grid2(n int) (dx, dy int) {
	for d := intSqrt(n); d >= 1; d-- {
		if n%d == 0 {
			return n / d, d
		}
	}
	return n, 1
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func dedupSorted(ds []int, self int) []int {
	seen := map[int]bool{}
	var out []int
	for _, d := range ds {
		if d != self && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Ints(out)
	return out
}

// SPPM is the sPPM gas-dynamics benchmark: a 3D block decomposition with a
// 6-point (face-neighbor) exchange, non-periodic boundaries.
func SPPM() Pattern {
	return Pattern{Name: "sPPM", Dests: func(rank, size int) []int {
		dx, dy, dz := grid3(size)
		x, y, z := coords3(rank, dx, dy, dz)
		var ds []int
		for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			nx, ny, nz := x+d[0], y+d[1], z+d[2]
			if nx < 0 || nx >= dx || ny < 0 || ny >= dy || nz < 0 || nz >= dz {
				continue
			}
			ds = append(ds, index3(nx, ny, nz, dx, dy))
		}
		return dedupSorted(ds, rank)
	}}
}

func coords3(rank, dx, dy, dz int) (x, y, z int) {
	x = rank % dx
	y = (rank / dx) % dy
	z = rank / (dx * dy)
	return
}

func index3(x, y, z, dx, dy int) int { return z*dx*dy + y*dx + x }

// SMG2000 is the semicoarsening multigrid solver. Each dimension coarsens
// independently, so over a full V-cycle a rank exchanges ghost data with
// partners offset by any power-of-two distance in each dimension
// independently (a 27-point stencil at every level combination). The
// resulting partner set is the big one in Table 1: ~42 of 63 possible at 64
// processes, approaching everyone at 1024.
func SMG2000() Pattern {
	return Pattern{Name: "SMG2000", Dests: func(rank, size int) []int {
		dx, dy, dz := grid3(size)
		x, y, z := coords3(rank, dx, dy, dz)
		offsets := func(pos, dim int) []int {
			os := []int{0}
			for d := 1; d < dim; d *= 2 {
				if pos-d >= 0 {
					os = append(os, -d)
				}
				if pos+d < dim {
					os = append(os, d)
				}
			}
			return os
		}
		var ds []int
		for _, ox := range offsets(x, dx) {
			for _, oy := range offsets(y, dy) {
				for _, oz := range offsets(z, dz) {
					if ox == 0 && oy == 0 && oz == 0 {
						continue
					}
					ds = append(ds, index3(x+ox, y+oy, z+oz, dx, dy))
				}
			}
		}
		return dedupSorted(ds, rank)
	}}
}

// Sphot is Monte Carlo photon transport: embarrassingly parallel workers
// that only report results to rank 0, so the average directed destination
// count is (n-1)/n — just under one.
func Sphot() Pattern {
	return Pattern{Name: "Sphot", Dests: func(rank, size int) []int {
		if rank == 0 {
			return nil
		}
		return []int{0}
	}}
}

// Sweep3D is the discrete-ordinates wavefront sweep: a 2D decomposition
// whose four corner-started sweeps touch all four compass neighbors over a
// full run (non-periodic).
func Sweep3D() Pattern {
	return Pattern{Name: "Sweep3D", Dests: func(rank, size int) []int {
		dx, dy := grid2(size)
		x, y := rank%dx, rank/dx
		var ds []int
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= dx || ny < 0 || ny >= dy {
				continue
			}
			ds = append(ds, ny*dx+nx)
		}
		return dedupSorted(ds, rank)
	}}
}

// Samrai models the SAMRAI structured-AMR framework: an irregular but
// sparse partner set. Patch adjacency is approximated by a deterministic
// random geometric sprinkle averaging ~5 partners per rank, matching the
// measured 4.94 at 64 processes.
func Samrai() Pattern {
	return Pattern{Name: "SAMRAI", Dests: func(rank, size int) []int {
		rng := rand.New(rand.NewSource(0x5a3faa1 + int64(rank)*7919 + int64(size)))
		// Locality: most partners near in rank space (neighboring patches),
		// a couple far (coarse-fine connections).
		var ds []int
		near := 4 + rng.Intn(4) // 4-7 near partners (patch face neighbours)
		for i := 0; i < near; i++ {
			off := 1 + rng.Intn(5)
			if rng.Intn(2) == 0 {
				off = -off
			}
			d := rank + off
			if d >= 0 && d < size {
				ds = append(ds, d)
			}
		}
		if size > 8 { // coarse-fine level connection
			ds = append(ds, rng.Intn(size))
		}
		return dedupSorted(ds, rank)
	}}
}

// CG is the NPB conjugate-gradient pattern: a 2D process grid where each
// rank exchanges with its transpose partner and performs recursive-halving
// reductions across its row (log2 of the row length partners).
func CG() Pattern {
	return Pattern{Name: "CG", Dests: func(rank, size int) []int {
		// NPB CG requires a power-of-two process count; extra ranks idle.
		p2 := 1
		for p2*2 <= size {
			p2 *= 2
		}
		if rank >= p2 {
			return nil
		}
		nprows, npcols := cgGrid(p2)
		row := rank / npcols
		col := rank % npcols
		var ds []int
		// Row-group recursive halving partners (XOR ladder).
		for bit := 1; bit < npcols; bit <<= 1 {
			ds = append(ds, row*npcols+(col^bit))
		}
		ds = append(ds, cgTranspose(rank, nprows, npcols))
		// Library MPI_Allreduce traffic (residual norms, timing): binomial
		// reduce-to-0 plus binomial broadcast, as MPICH implements it.
		ds = append(ds, binomialPartners(rank, p2)...)
		return dedupSorted(ds, rank)
	}}
}

// binomialPartners returns the directed send destinations of one
// reduce-to-0 + broadcast-from-0 pair over a binomial tree (MPICH-1's
// allreduce): the parent (reduce phase) and all children (bcast phase).
func binomialPartners(rank, size int) []int {
	var ds []int
	for mask := 1; mask < size; mask <<= 1 {
		if rank&mask != 0 {
			ds = append(ds, rank-mask) // parent
			break
		}
		if rank+mask < size {
			ds = append(ds, rank+mask) // child
		}
	}
	return ds
}

// cgTranspose is NPB cg.f's exch_proc: the transpose partner on a square
// grid, or the paired-halves partner when npcols = 2*nprows.
func cgTranspose(me, nprows, npcols int) int {
	if npcols == nprows {
		return (me%nprows)*nprows + me/nprows
	}
	return 2*((me/2%nprows)*nprows+me/2/nprows) + me%2
}

// cgGrid reproduces NPB CG's processor grid: for a power-of-4 size the grid
// is square; otherwise columns are twice the rows.
func cgGrid(size int) (nprows, npcols int) {
	log := 0
	for 1<<uint(log+1) <= size {
		log++
	}
	nprows = 1 << uint(log/2)
	npcols = size / nprows
	return
}

// All returns the Table 1 application patterns in paper order.
func All() []Pattern {
	return []Pattern{SPPM(), SMG2000(), Sphot(), Sweep3D(), Samrai(), CG()}
}

// AvgDests computes the average distinct-destination count across ranks —
// the Table 1 metric.
func AvgDests(p Pattern, size int) float64 {
	total := 0
	for r := 0; r < size; r++ {
		total += len(p.Dests(r, size))
	}
	return float64(total) / float64(size)
}

// MaxDests returns the largest per-rank destination count (the "< N" upper
// bounds in Table 1's 1024-process rows).
func MaxDests(p Pattern, size int) int {
	m := 0
	for r := 0; r < size; r++ {
		if d := len(p.Dests(r, size)); d > m {
			m = d
		}
	}
	return m
}
