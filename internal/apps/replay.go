package apps

import (
	"fmt"

	"viampi/internal/mpi"
)

// ReplayMain turns a communication pattern into an executable MPI program:
// for the given number of rounds, every rank sends msgBytes to each of its
// pattern destinations and receives from each rank that names it as a
// destination. Running a replay under the on-demand policy turns Table 1's
// analytic destination counts into measured VI counts on the full stack —
// the bridge between the paper's Table 1 and Table 2.
func ReplayMain(p Pattern, rounds, msgBytes int) func(r *mpi.Rank) {
	if msgBytes < 1 {
		msgBytes = 1
	}
	return func(r *mpi.Rank) {
		c := r.World()
		n := c.Size()
		me := c.Rank()
		dests := p.Dests(me, n)
		// Inverse pattern: who sends to me.
		var sources []int
		for s := 0; s < n; s++ {
			if s == me {
				continue
			}
			for _, d := range p.Dests(s, n) {
				if d == me {
					sources = append(sources, s)
					break
				}
			}
		}
		out := make([]byte, msgBytes)
		for round := 0; round < rounds; round++ {
			reqs := make([]*mpi.Request, 0, len(dests)+len(sources))
			for _, s := range sources {
				in := make([]byte, msgBytes)
				rq, err := c.Irecv(in, s, round)
				if err != nil {
					r.Proc().Sim().Failf("replay %s rank %d: %v", p.Name, me, err)
					return
				}
				reqs = append(reqs, rq)
			}
			for _, d := range dests {
				sq, err := c.Isend(d, round, out)
				if err != nil {
					r.Proc().Sim().Failf("replay %s rank %d: %v", p.Name, me, err)
					return
				}
				reqs = append(reqs, sq)
			}
			if err := r.Waitall(reqs...); err != nil {
				r.Proc().Sim().Failf("replay %s rank %d: %v", p.Name, me, err)
				return
			}
		}
	}
}

// Replay runs the pattern on a simulated cluster and returns the world
// statistics (VI counts, pinned memory, timings).
func Replay(p Pattern, cfg mpi.Config, rounds, msgBytes int) (*mpi.World, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("apps: Replay needs Procs set")
	}
	return mpi.Run(cfg, ReplayMain(p, rounds, msgBytes))
}
