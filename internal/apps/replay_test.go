package apps

import (
	"testing"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
	"viampi/internal/trace"
)

func replayCfg(procs int) mpi.Config {
	return mpi.Config{Procs: procs, Policy: "ondemand", Deadline: 300 * simnet.Second}
}

// TestReplayTracesMatchAnalytic: replaying a pattern and tracing it must
// measure exactly the analytic Table 1 destination averages.
func TestReplayTracesMatchAnalytic(t *testing.T) {
	const n = 16
	for _, p := range All() {
		rec := trace.New(n, false)
		cfg := replayCfg(n)
		cfg.Trace = rec
		if _, err := Replay(p, cfg, 2, 64); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got, want := rec.AvgDests(), AvgDests(p, n); got != want {
			t.Errorf("%s: traced avg dests %.3f != analytic %.3f", p.Name, got, want)
		}
	}
}

// TestReplayOnDemandVIsMatchNeighborhood: under on-demand, each rank's VI
// count equals the size of its undirected neighbourhood (out ∪ in).
func TestReplayOnDemandVIsMatchNeighborhood(t *testing.T) {
	const n = 16
	for _, p := range []Pattern{Sweep3D(), SPPM(), Sphot()} {
		w, err := Replay(p, replayCfg(n), 2, 64)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for rank, rs := range w.Ranks {
			want := map[int]bool{}
			for _, d := range p.Dests(rank, n) {
				want[d] = true
			}
			for s := 0; s < n; s++ {
				for _, d := range p.Dests(s, n) {
					if d == rank {
						want[s] = true
					}
				}
			}
			if rs.VisCreated != len(want) {
				t.Errorf("%s rank %d: VIs %d != neighbourhood %d", p.Name, rank, rs.VisCreated, len(want))
			}
		}
	}
}

// TestReplayStaticWastes: the same replays under static create N-1 VIs per
// rank regardless of the pattern — Table 2's waste, driven by Table 1's
// applications.
func TestReplayStaticWastes(t *testing.T) {
	const n = 12
	cfg := replayCfg(n)
	cfg.Policy = "static-p2p"
	w, err := Replay(Sweep3D(), cfg, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if w.AvgVIs() != n-1 {
		t.Fatalf("static avg VIs = %v", w.AvgVIs())
	}
	if w.AvgUtilization() > 0.5 {
		t.Fatalf("static utilization = %v, want low for Sweep3D", w.AvgUtilization())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(Sphot(), mpi.Config{}, 1, 1); err == nil {
		t.Fatal("missing Procs accepted")
	}
}
