package npb

import (
	"testing"
)

// TestAllKernelsClassW16 runs every kernel at class W with 16 ranks (the
// paper's smaller testbed size) under on-demand — a heavier integration
// pass than the class-S smoke, verifying payload integrity at realistic
// message sizes.
func TestAllKernelsClassW16(t *testing.T) {
	if testing.Short() {
		t.Skip("class W integration runs in full mode only")
	}
	for _, k := range Kernels() {
		k := k
		procs := 16
		if !k.ValidProcs(procs) {
			t.Fatalf("%s should accept 16 procs", k.Name)
		}
		t.Run(k.Name, func(t *testing.T) {
			res, w, err := Run(k, ClassW, npbCfg(procs, "ondemand"))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("verification failed (%d)", res.Failures)
			}
			if res.TimeSec <= 0 {
				t.Fatal("empty timed region")
			}
			if w.AvgUtilization() != 1.0 {
				t.Fatalf("on-demand utilization %v", w.AvgUtilization())
			}
			// Sanity: class W must take longer than class S did.
			resS, _, err := Run(k, ClassS, npbCfg(procs, "ondemand"))
			if err != nil {
				t.Fatal(err)
			}
			if res.TimeSec <= resS.TimeSec {
				t.Fatalf("W (%v s) not slower than S (%v s)", res.TimeSec, resS.TimeSec)
			}
		})
	}
}

// TestTable2RegressionValues locks the headline Table 2 on-demand VI counts
// at the paper's exact sizes (class W, 32/36 processes) — the cells the
// reproduction matches the paper on.
func TestTable2RegressionValues(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size regression runs in full mode only")
	}
	cases := []struct {
		bench string
		procs int
		want  float64
		band  float64 // +/- tolerance
	}{
		{"CG", 32, 5.75, 0.25}, // paper: 5.78
		{"IS", 32, 31, 0},      // paper: 31 (fully connected)
		{"EP", 32, 5, 0.25},    // paper: 4.75
		{"SP", 36, 11.83, 1.0}, // paper: 9.83 + our timing collectives
		{"BT", 36, 11.83, 1.0},
	}
	for _, cs := range cases {
		k, err := ByName(cs.bench)
		if err != nil {
			t.Fatal(err)
		}
		_, w, err := Run(k, ClassW, npbCfg(cs.procs, "ondemand"))
		if err != nil {
			t.Fatalf("%s.%d: %v", cs.bench, cs.procs, err)
		}
		got := w.AvgVIs()
		if got < cs.want-cs.band || got > cs.want+cs.band {
			t.Errorf("%s@%d on-demand VIs = %v, want %v ± %v",
				cs.bench, cs.procs, got, cs.want, cs.band)
		}
		if w.AvgUtilization() != 1.0 {
			t.Errorf("%s@%d utilization %v", cs.bench, cs.procs, w.AvgUtilization())
		}
	}
}

// TestKernelsSpinwaitVerify runs the collective-heavy kernels under
// spinwait, which exercises the wakeup-penalty paths end to end.
func TestKernelsSpinwaitVerify(t *testing.T) {
	for _, name := range []string{"IS", "MG", "FT"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := npbCfg(8, "static-p2p")
		cfg.WaitMode = 1 // via.WaitSpin
		res, _, err := Run(k, ClassS, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verified {
			t.Fatalf("%s: verify failed under spinwait", name)
		}
	}
}

// TestKernelsWithDynamicCredits runs kernels under the future-work dynamic
// flow control, confirming protocol correctness at growing pool sizes.
func TestKernelsWithDynamicCredits(t *testing.T) {
	for _, name := range []string{"CG", "IS", "LU"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := npbCfg(8, "ondemand")
		cfg.DynamicCredits = true
		res, _, err := Run(k, ClassS, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verified {
			t.Fatalf("%s: verify failed with dynamic credits", name)
		}
	}
}
