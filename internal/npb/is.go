package npb

import (
	"viampi/internal/mpi"
)

type isParams struct {
	totalKeys int // 2^n keys over the whole job
	buckets   int
	niter     int
	serialSec float64
}

var isTable = map[Class]isParams{
	ClassS: {1 << 16, 1 << 10, 10, 0.05},
	ClassW: {1 << 20, 1 << 10, 10, 0.6},
	ClassA: {1 << 23, 1 << 10, 10, 5},
	ClassB: {1 << 25, 1 << 10, 10, 22},
	ClassC: {1 << 27, 1 << 10, 10, 90},
}

// IS is the integer-sort proxy: per iteration an allreduce of the bucket
// histogram followed by the all-to-all-v redistribution of keys — the
// communication-bound benchmark of the set (the paper: "for the B class
// with 16 processes a total amount of 1920 MB must be transferred at each
// all-to-all exchange").
func IS() Kernel {
	return Kernel{
		Name:       "IS",
		ValidProcs: isPow2,
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := isTable[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				me := c.Rank()
				keysPerProc := p.totalKeys / n
				keyBytes := 4 * keysPerProc // int32 keys

				// Uniformly random keys redistribute ~evenly.
				blk := keyBytes / n
				scounts := make([]int, n)
				sdispl := make([]int, n)
				rcounts := make([]int, n)
				rdispl := make([]int, n)
				for j := 0; j < n; j++ {
					scounts[j] = blk
					sdispl[j] = j * blk
					rcounts[j] = blk
					rdispl[j] = j * blk
				}
				send := make([]byte, keyBytes)
				recv := make([]byte, keyBytes)
				hist := make([]int64, p.buckets)

				dt := computeSlice(p.serialSec, p.niter, n)

				err := timedRegion(r, c, res, func() error {
					for it := 0; it < p.niter; it++ {
						compute(r, dt, it) // local bucket counting
						for b := range hist {
							hist[b] = int64(me + it + b)
						}
						if _, err := c.AllreduceI64(hist, mpi.SumI64); err != nil {
							return err
						}
						for j := 0; j < n; j++ {
							if scounts[j] >= 24 {
								stamp(send[sdispl[j]:], me, it, j)
							}
						}
						if err := c.Alltoallv(send, scounts, sdispl, recv, rcounts, rdispl); err != nil {
							return err
						}
						for j := 0; j < n; j++ {
							if rcounts[j] >= 24 && j != me {
								check(res, recv[rdispl[j]:], j, it, me)
							}
						}
					}
					// Final full verification: ranks agree on total key count.
					tot, err := c.AllreduceI64([]int64{int64(keysPerProc)}, mpi.SumI64)
					if err != nil {
						return err
					}
					if tot[0] != int64(p.totalKeys) {
						res.Verified = false
						res.Failures++
					}
					return nil
				})
				fail(res, err)
			}
		},
	}
}
