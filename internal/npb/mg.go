package npb

import (
	"viampi/internal/mpi"
)

type mgParams struct {
	grid      int // finest grid is grid^3
	niter     int
	serialSec float64
}

var mgTable = map[Class]mgParams{
	ClassS: {32, 4, 0.3},
	ClassW: {128, 4, 9},
	ClassA: {256, 4, 70},
	ClassB: {256, 20, 330},
	ClassC: {512, 20, 4900},
}

// MG is the multigrid V-cycle proxy on a 3D periodic process grid. Each
// level exchanges ghost faces along all three axes (both directions posted
// nonblocking, as comm3's give3/take3 do — a blocking ring would deadlock);
// when the coarse grid becomes sparser than the process grid the partner
// distance doubles, which is what widens MG's partner set in Table 2. Each
// iteration ends with the residual-norm allreduce, and setup does the zran3
// broadcast and a barrier, matching the collectives the paper lists for MG.
func MG() Kernel {
	return Kernel{
		Name:       "MG",
		ValidProcs: isPow2,
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := mgTable[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				me := c.Rank()
				dx, dy, dz := mgProcGrid(n)
				dims := [3]int{dx, dy, dz}
				coord := [3]int{me % dx, (me / dx) % dy, me / (dx * dy)}

				levels := log2(p.grid) - 1 // down to a 2^1 grid
				minDim := dims[0]
				for _, d := range dims {
					if d < minDim {
						minDim = d
					}
				}
				faceCap := 8*p.grid*p.grid/minDim + 64
				var bufs [2][]byte
				var ins [2][]byte
				for i := range bufs {
					bufs[i] = make([]byte, faceCap)
					ins[i] = make([]byte, faceCap)
				}

				steps := p.niter * levels
				dt := computeSlice(p.serialSec, steps, n)

				err := timedRegion(r, c, res, func() error {
					// Setup collectives (zran3 seeds + sync).
					seed := make([]byte, 64)
					if err := c.Bcast(seed, 0); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					for it := 0; it < p.niter; it++ {
						for lvl := 0; lvl < levels; lvl++ {
							compute(r, dt, it*100+lvl)
							pts := p.grid >> uint(lvl)
							for axis := 0; axis < 3; axis++ {
								dist := 1
								if pts < dims[axis] {
									// Fewer grid points than processes along
									// this axis: active partners are farther.
									dist = dims[axis] / maxInt(1, pts)
									if dist >= dims[axis] {
										continue // collapsed onto one rank
									}
								}
								fy := maxInt(1, pts/dims[(axis+1)%3])
								fz := maxInt(1, pts/dims[(axis+2)%3])
								face := 8 * fy * fz
								if face > faceCap {
									face = faceCap
								}
								east := mgNeighbor(coord, dims, axis, dist, dx, dy)
								west := mgNeighbor(coord, dims, axis, -dist, dx, dy)
								if east == me {
									continue
								}
								// Travel-direction tags: eastward (dir 0) and
								// westward (dir 1).
								tagE := 20 + axis*2
								tagW := 21 + axis*2
								phase := it*100 + lvl
								var reqs []*mpi.Request
								rq1, err := c.Irecv(ins[0][:face], west, tagE)
								if err != nil {
									return err
								}
								rq2, err := c.Irecv(ins[1][:face], east, tagW)
								if err != nil {
									return err
								}
								stamp(bufs[0][:face], me, phase, axis*100)
								sq1, err := c.Isend(east, tagE, bufs[0][:face])
								if err != nil {
									return err
								}
								stamp(bufs[1][:face], me, phase, axis*100+1)
								sq2, err := c.Isend(west, tagW, bufs[1][:face])
								if err != nil {
									return err
								}
								reqs = append(reqs, rq1, rq2, sq1, sq2)
								if err := r.Waitall(reqs...); err != nil {
									return err
								}
								check(res, ins[0][:face], west, phase, axis*100)
								check(res, ins[1][:face], east, phase, axis*100+1)
							}
						}
						// Residual norm.
						if _, err := c.AllreduceF64([]float64{1}, mpi.SumF64); err != nil {
							return err
						}
					}
					return nil
				})
				fail(res, err)
			}
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mgProcGrid factors a power-of-two process count into near-equal dims.
func mgProcGrid(n int) (dx, dy, dz int) {
	dx, dy, dz = 1, 1, 1
	axis := 0
	for n > 1 {
		switch axis % 3 {
		case 0:
			dx *= 2
		case 1:
			dy *= 2
		case 2:
			dz *= 2
		}
		n /= 2
		axis++
	}
	return
}

// mgNeighbor returns the rank offset by off along axis with periodic wrap.
func mgNeighbor(coord, dims [3]int, axis, off, dx, dy int) int {
	c := coord
	c[axis] = ((c[axis]+off)%dims[axis] + dims[axis]) % dims[axis]
	return c[2]*dx*dy + c[1]*dx + c[0]
}
