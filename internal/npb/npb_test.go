package npb

import (
	"testing"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
)

func npbCfg(procs int, policy string) mpi.Config {
	return mpi.Config{
		Procs:    procs,
		Policy:   policy,
		Deadline: 3600 * simnet.Second,
	}
}

func TestParseClass(t *testing.T) {
	if c, err := ParseClass("a"); err != nil || c != ClassA {
		t.Fatalf("ParseClass(a) = %v, %v", c, err)
	}
	if _, err := ParseClass("Z"); err == nil {
		t.Fatal("expected error for class Z")
	}
	if _, err := ParseClass(""); err == nil {
		t.Fatal("expected error for empty class")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CG", "MG", "IS", "EP", "SP", "BT", "FT", "LU"} {
		k, err := ByName(name)
		if err != nil || k.Name != name {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("ZZ"); err == nil {
		t.Error("expected error for unknown kernel")
	}
}

func TestValidProcs(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		ok    bool
	}{
		{"CG", 16, true}, {"CG", 12, false},
		{"MG", 8, true}, {"MG", 6, false},
		{"IS", 32, true}, {"IS", 10, false},
		{"EP", 7, true},
		{"SP", 16, true}, {"SP", 8, false}, {"SP", 36, true},
		{"BT", 9, true}, {"BT", 10, false},
		{"FT", 4, true}, {"FT", 3, false},
		{"LU", 8, true}, {"LU", 5, false},
	}
	for _, c := range cases {
		k, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.ValidProcs(c.procs); got != c.ok {
			t.Errorf("%s.ValidProcs(%d) = %v, want %v", c.name, c.procs, got, c.ok)
		}
	}
}

// TestAllKernelsClassSVerify runs every kernel at class S under on-demand
// and checks completion and payload verification.
func TestAllKernelsClassSVerify(t *testing.T) {
	procsFor := map[string]int{
		"CG": 8, "MG": 8, "IS": 8, "EP": 8, "SP": 9, "BT": 9, "FT": 8, "LU": 8,
	}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, w, err := Run(k, ClassS, npbCfg(procsFor[k.Name], "ondemand"))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified || res.Failures != 0 {
				t.Fatalf("%s: verification failed (%d failures)", k.Name, res.Failures)
			}
			if res.TimeSec <= 0 {
				t.Fatalf("%s: no timed region (%v)", k.Name, res.TimeSec)
			}
			if w.Net.DroppedNoDescriptor > 0 {
				t.Fatalf("%s: descriptor drops", k.Name)
			}
		})
	}
}

// TestKernelsUnderStaticPolicies spot-checks kernels under the static
// managers and both devices.
func TestKernelsUnderStaticPolicies(t *testing.T) {
	for _, policy := range []string{"static-p2p", "static-cs"} {
		for _, name := range []string{"CG", "IS", "SP"} {
			k, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			procs := 8
			if name == "SP" {
				procs = 9
			}
			cfg := npbCfg(procs, policy)
			res, _, err := Run(k, ClassS, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, policy, err)
			}
			if !res.Verified {
				t.Fatalf("%s/%s: verify failed", name, policy)
			}
		}
	}
}

func TestKernelsOnBvia(t *testing.T) {
	for _, name := range []string{"CG", "IS", "EP"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := npbCfg(8, "ondemand")
		cfg.Device = "bvia"
		res, _, err := Run(k, ClassS, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Verified {
			t.Fatalf("%s: verify failed on bvia", name)
		}
	}
}

// TestTable2VIShapes checks the on-demand VI counts against the paper's
// Table 2 structure at 16 processes: IS fully connected, SP exactly its 8
// multi-partition partners, EP only the allreduce tree, CG a handful.
func TestTable2VIShapes(t *testing.T) {
	run := func(name string, procs int) *mpi.World {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_, w, err := Run(k, ClassS, npbCfg(procs, "ondemand"))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	// IS uses alltoall: every rank connects to all 15 others.
	w := run("IS", 16)
	if avg := w.AvgVIs(); avg != 15 {
		t.Errorf("IS@16 avg VIs = %v, want 15 (Table 2)", avg)
	}
	if u := w.AvgUtilization(); u != 1.0 {
		t.Errorf("IS@16 utilization = %v, want 1.0", u)
	}
	// SP: 8 multi-partition partners (paper: 8). Our timing barrier and
	// norm reduction add up to two recursive-doubling partners that are not
	// grid neighbours, so we accept [8, 10].
	w = run("SP", 16)
	if avg := w.AvgVIs(); avg < 8 || avg > 10 {
		t.Errorf("SP@16 avg VIs = %v, want ~8 (Table 2)", avg)
	}
	// EP: exactly the recursive-doubling allreduce partners (paper: 4 at 16).
	w = run("EP", 16)
	if avg := w.AvgVIs(); avg != 4 {
		t.Errorf("EP@16 avg VIs = %v, want 4 (Table 2)", avg)
	}
	// CG: ladder + transpose + tree (paper: 4.75 at 16).
	w = run("CG", 16)
	if avg := w.AvgVIs(); avg < 3 || avg > 7 {
		t.Errorf("CG@16 avg VIs = %v, want ~4.75 (Table 2)", avg)
	}
}

// TestStaticAlwaysFifteen: under static policies every rank creates N-1 VIs
// regardless of the application (the waste Table 2 quantifies).
func TestStaticAlwaysFifteen(t *testing.T) {
	k, err := ByName("EP")
	if err != nil {
		t.Fatal(err)
	}
	_, w, err := Run(k, ClassS, npbCfg(16, "static-p2p"))
	if err != nil {
		t.Fatal(err)
	}
	if avg := w.AvgVIs(); avg != 15 {
		t.Errorf("EP@16 static avg VIs = %v, want 15", avg)
	}
	if u := w.AvgUtilization(); u >= 0.5 {
		t.Errorf("EP@16 static utilization = %v, want low", u)
	}
}

func TestDeterministicRuns(t *testing.T) {
	k, err := ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := Run(k, ClassS, npbCfg(8, "ondemand"))
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(k, ClassS, npbCfg(8, "ondemand"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TimeSec != r2.TimeSec {
		t.Errorf("CG not deterministic: %v vs %v", r1.TimeSec, r2.TimeSec)
	}
}

func TestRunRejectsBadProcs(t *testing.T) {
	k, err := ByName("SP")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(k, ClassS, npbCfg(8, "ondemand")); err == nil {
		t.Fatal("SP with 8 procs should be rejected")
	}
}

func TestComputeSlice(t *testing.T) {
	if got := computeSlice(100, 10, 10); got != 1 {
		t.Fatalf("computeSlice = %v", got)
	}
	if got := computeSlice(100, 0, 10); got != 0 {
		t.Fatalf("computeSlice guard = %v", got)
	}
}

func TestHelperMath(t *testing.T) {
	if !isPow2(16) || isPow2(12) || isPow2(0) {
		t.Fatal("isPow2")
	}
	if !isSquare(36) || isSquare(8) {
		t.Fatal("isSquare")
	}
	if intSqrt(36) != 6 || intSqrt(35) != 5 {
		t.Fatal("intSqrt")
	}
	if log2(16) != 4 || log2(17) != 4 || log2(1) != 0 {
		t.Fatal("log2")
	}
}
