package npb

import (
	"viampi/internal/mpi"
)

type ftParams struct {
	nx, ny, nz int
	niter      int
	serialSec  float64
}

var ftTable = map[Class]ftParams{
	ClassS: {64, 64, 64, 6, 0.8},
	ClassW: {128, 128, 32, 6, 4},
	ClassA: {256, 256, 128, 6, 90},
	ClassB: {512, 256, 256, 20, 700},
	ClassC: {512, 512, 512, 20, 3000},
}

// FT is the 3D FFT proxy (an extension beyond the paper's reported set):
// per iteration, local 2D FFTs followed by a global transpose implemented
// as MPI_Alltoall of the full local volume — the heaviest all-to-all user
// in the suite — plus the running checksum allreduce.
func FT() Kernel {
	return Kernel{
		Name:       "FT",
		ValidProcs: isPow2,
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := ftTable[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				me := c.Rank()
				// 1D slab decomposition: each rank owns nz/n planes of
				// complex128 values; the transpose moves everything.
				localComplex := p.nx * p.ny * p.nz / n
				totalBytes := 16 * localComplex
				blk := totalBytes / n
				if blk < 32 {
					blk = 32
				}
				send := make([]byte, blk*n)
				recv := make([]byte, blk*n)

				dt := computeSlice(p.serialSec, p.niter*2, n)

				err := timedRegion(r, c, res, func() error {
					for it := 0; it < p.niter; it++ {
						compute(r, dt, 2*it) // local FFTs before transpose
						for j := 0; j < n; j++ {
							if j != me {
								stamp(send[j*blk:], me, it, j)
							}
						}
						if err := c.Alltoall(send, recv, blk); err != nil {
							return err
						}
						for j := 0; j < n; j++ {
							if j != me {
								check(res, recv[j*blk:], j, it, me)
							}
						}
						compute(r, dt, 2*it+1) // local FFTs after transpose
						if _, err := c.AllreduceF64([]float64{float64(it), 1}, mpi.SumF64); err != nil {
							return err
						}
					}
					return nil
				})
				fail(res, err)
			}
		},
	}
}
