// Package npb provides communication-faithful proxies of the NAS Parallel
// Benchmarks the paper evaluates (CG, MG, IS, EP, SP, BT) plus FT and LU.
//
// Each proxy reproduces its benchmark's communication structure exactly —
// the partners, message sizes, ordering and collective calls for a given
// class and process count — while the arithmetic phases are charged to
// virtual time from a per-class calibration of total serial compute seconds
// (anchored to the paper's Table 3 absolute CPU times; see calibration
// notes in EXPERIMENTS.md). Message payloads are stamped and verified at
// every receive, so a run also checks MPI correctness under whichever
// connection policy and device it executes on.
package npb

import (
	"encoding/binary"
	"fmt"

	"viampi/internal/mpi"
)

// Class is an NPB problem class.
type Class byte

// The standard NPB problem classes.
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// Classes lists all supported classes, smallest first.
func Classes() []Class { return []Class{ClassS, ClassW, ClassA, ClassB, ClassC} }

// ParseClass converts a string like "A" into a Class.
func ParseClass(s string) (Class, error) {
	if len(s) == 1 {
		for _, c := range Classes() {
			if byte(s[0]) == byte(c) || byte(s[0]) == byte(c)+32 {
				return c, nil
			}
		}
	}
	return 0, fmt.Errorf("npb: unknown class %q", s)
}

// Result is what a proxy reports after a run.
type Result struct {
	Name     string
	Class    Class
	Procs    int
	TimeSec  float64 // max over ranks of the timed-region virtual seconds
	Verified bool    // every stamped payload arrived intact and in order
	Failures int     // count of verification failures
}

// Kernel is one NPB proxy.
type Kernel struct {
	Name string
	// ValidProcs reports whether the benchmark supports this process count.
	ValidProcs func(procs int) bool
	// Main returns the per-rank entry point; all ranks share res (the
	// simulator is single-threaded, so plain writes are safe).
	Main func(class Class, res *Result) func(r *mpi.Rank)
}

// Kernels returns every proxy, in the paper's reporting order first (MG,
// IS, CG, SP, BT, EP) followed by the extensions (FT, LU).
func Kernels() []Kernel {
	return []Kernel{MG(), IS(), CG(), SP(), BT(), EP(), FT(), LU()}
}

// ByName looks a kernel up by its (case-sensitive) name.
func ByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("npb: unknown benchmark %q", name)
}

// Run executes a kernel on a fresh simulated cluster and returns its result.
func Run(k Kernel, class Class, cfg mpi.Config) (*Result, *mpi.World, error) {
	if !k.ValidProcs(cfg.Procs) {
		return nil, nil, fmt.Errorf("npb: %s does not support %d processes", k.Name, cfg.Procs)
	}
	res := &Result{Name: k.Name, Class: class, Procs: cfg.Procs, Verified: true}
	w, err := mpi.Run(cfg, k.Main(class, res))
	if err != nil {
		return nil, nil, err
	}
	return res, w, nil
}

// ---------------------------------------------------------------------------
// Shared helpers

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func isSquare(n int) bool {
	for q := 1; q*q <= n; q++ {
		if q*q == n {
			return true
		}
	}
	return false
}

func intSqrt(n int) int {
	q := 0
	for (q+1)*(q+1) <= n {
		q++
	}
	return q
}

func log2(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}

// stamp writes a deterministic tag into the head of a payload so the
// receiver can verify source, phase and iteration.
func stamp(buf []byte, a, b, c int) {
	if len(buf) < 24 {
		return
	}
	binary.LittleEndian.PutUint64(buf[0:], uint64(a))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b))
	binary.LittleEndian.PutUint64(buf[16:], uint64(c))
}

// check verifies a stamped payload, recording failures on res.
func check(res *Result, buf []byte, a, b, c int) {
	if len(buf) < 24 {
		return
	}
	ok := binary.LittleEndian.Uint64(buf[0:]) == uint64(a) &&
		binary.LittleEndian.Uint64(buf[8:]) == uint64(b) &&
		binary.LittleEndian.Uint64(buf[16:]) == uint64(c)
	if !ok {
		res.Verified = false
		res.Failures++
	}
}

// timedRegion runs body between barriers and reports the max elapsed
// virtual seconds across ranks into res (written by comm rank 0).
func timedRegion(r *mpi.Rank, c *mpi.Comm, res *Result, body func() error) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	t0 := r.Wtime()
	if err := body(); err != nil {
		return err
	}
	elapsed := r.Wtime() - t0
	// NPB collects the timing with a Reduce(MAX) to rank 0.
	out := make([]byte, 8)
	if err := c.Reduce(mpi.F64Bytes([]float64{elapsed}), out, mpi.MaxF64, 0); err != nil {
		return err
	}
	if c.Rank() == 0 {
		res.TimeSec = mpi.BytesF64(out)[0]
	}
	return nil
}

// fail records a fatal benchmark error.
func fail(res *Result, err error) {
	if err == nil {
		return
	}
	res.Verified = false
	res.Failures++
}

// computeSlice splits total serial seconds evenly per rank per step.
func computeSlice(serialSec float64, steps, procs int) float64 {
	if steps <= 0 || procs <= 0 {
		return 0
	}
	return serialSec / float64(steps) / float64(procs)
}

// compute charges one step of modeled work with a deterministic ±1%
// data-dependent imbalance (hash of rank and step). Real NPB kernels have
// exactly this kind of per-rank variation (bucket counts, boundary work);
// without it, a deterministic simulator can phase-lock back-to-back
// collectives into schedules that depend on initialization history, which
// would contaminate the static-vs-on-demand comparison.
func compute(r *mpi.Rank, dt float64, step int) {
	if dt <= 0 {
		return
	}
	h := uint32(r.Rank()*2654435761) + uint32(step*40503)
	h ^= h >> 13
	h *= 2246822519
	h ^= h >> 16
	f := 1 + 0.01*(float64(h%2048)/1024-1)
	r.Compute(dt * f)
}
