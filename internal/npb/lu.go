package npb

import (
	"viampi/internal/mpi"
)

type luParams struct {
	grid      int
	niter     int
	serialSec float64
}

var luTable = map[Class]luParams{
	ClassS: {12, 50, 0.8},
	ClassW: {33, 300, 110},
	ClassA: {64, 250, 2000},
	ClassB: {102, 250, 8000},
	ClassC: {162, 250, 32000},
}

// LU is the SSOR wavefront proxy (an extension beyond the paper's reported
// set): a 2D non-periodic process grid where each iteration pipelines the
// lower- and upper-triangular sweeps plane by plane — many small messages
// to the south/east (then north/west) neighbours — followed by a periodic
// residual allreduce. The fine-grained pipeline is the latency-sensitive
// counterpoint to IS's bandwidth-bound all-to-all.
func LU() Kernel {
	return Kernel{
		Name:       "LU",
		ValidProcs: isPow2,
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := luTable[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				me := c.Rank()
				// 2D grid: cols = rows or 2*rows.
				rows := 1 << uint(log2(n)/2)
				cols := n / rows
				row, col := me/cols, me%cols

				cell := maxInt(1, p.grid/maxInt(rows, cols))
				planeBytes := maxInt(32, 8*5*cell) // 5 variables per edge cell
				nplanes := maxInt(1, p.grid/4)     // pipelined k-planes (batched)

				north, south := -1, -1
				west, east := -1, -1
				if row > 0 {
					north = (row-1)*cols + col
				}
				if row < rows-1 {
					south = (row+1)*cols + col
				}
				if col > 0 {
					west = row*cols + col - 1
				}
				if col < cols-1 {
					east = row*cols + col + 1
				}

				out := make([]byte, planeBytes)
				in := make([]byte, planeBytes)

				dt := computeSlice(p.serialSec, p.niter*2*nplanes, n)

				err := timedRegion(r, c, res, func() error {
					for it := 0; it < p.niter; it++ {
						// Lower-triangular sweep: waves flow from northwest.
						for k := 0; k < nplanes; k++ {
							if north >= 0 {
								if _, err := c.Recv(in, north, 60); err != nil {
									return err
								}
								check(res, in, north, it, 60+k%7)
							}
							if west >= 0 {
								if _, err := c.Recv(in, west, 61); err != nil {
									return err
								}
								check(res, in, west, it, 61+k%7)
							}
							compute(r, dt, it*1000+k)
							if south >= 0 {
								stamp(out, me, it, 60+k%7)
								if err := c.Send(south, 60, out); err != nil {
									return err
								}
							}
							if east >= 0 {
								stamp(out, me, it, 61+k%7)
								if err := c.Send(east, 61, out); err != nil {
									return err
								}
							}
						}
						// Upper-triangular sweep: waves flow from southeast.
						for k := 0; k < nplanes; k++ {
							if south >= 0 {
								if _, err := c.Recv(in, south, 62); err != nil {
									return err
								}
								check(res, in, south, it, 62+k%7)
							}
							if east >= 0 {
								if _, err := c.Recv(in, east, 63); err != nil {
									return err
								}
								check(res, in, east, it, 63+k%7)
							}
							compute(r, dt, it*1000+500+k)
							if north >= 0 {
								stamp(out, me, it, 62+k%7)
								if err := c.Send(north, 62, out); err != nil {
									return err
								}
							}
							if west >= 0 {
								stamp(out, me, it, 63+k%7)
								if err := c.Send(west, 63, out); err != nil {
									return err
								}
							}
						}
						if it%20 == 0 {
							if _, err := c.AllreduceF64([]float64{1}, mpi.SumF64); err != nil {
								return err
							}
						}
					}
					return nil
				})
				fail(res, err)
			}
		},
	}
}
