package npb

import (
	"viampi/internal/mpi"
)

// cgParams are the NPB CG class definitions plus the serial-compute
// calibration (total single-processor seconds for the whole timed region,
// anchored to Table 3 of the paper: e.g. class B at 16 processes ran
// ~152 s, so serial ≈ 2440 s).
type cgParams struct {
	na        int // matrix order
	niter     int // outer iterations
	serialSec float64
}

var cgTable = map[Class]cgParams{
	ClassS: {1400, 15, 1.6},
	ClassW: {7000, 15, 12},
	ClassA: {14000, 15, 70},
	ClassB: {75000, 75, 2400},
	ClassC: {150000, 75, 9200},
}

const cgInnerIters = 25 // cgitmax in cg.f

// CG is the conjugate-gradient proxy: a 2D process grid (rows × cols, cols
// = rows or 2×rows) doing, per inner iteration, a recursive-halving sum
// ladder across each row, a transpose-partner exchange, and scalar dot
// products on the same ladder; per outer iteration a residual-norm
// allreduce.
func CG() Kernel {
	return Kernel{
		Name:       "CG",
		ValidProcs: isPow2,
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := cgTable[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				me := c.Rank()
				nprows := 1 << uint(log2(n)/2)
				npcols := n / nprows
				row, col := me/npcols, me%npcols

				segElems := p.na / nprows
				segBytes := 8 * segElems
				seg := make([]byte, segBytes)
				in := make([]byte, segBytes)
				scalar := make([]byte, 24+8)
				scalarIn := make([]byte, 24+8)
				transpose := cgTransposePartner(me, nprows, npcols)

				dt := computeSlice(p.serialSec, p.niter*cgInnerIters, n)

				err := timedRegion(r, c, res, func() error {
					for it := 0; it < p.niter; it++ {
						for sub := 0; sub < cgInnerIters; sub++ {
							phase := it*cgInnerIters + sub
							// Local matvec.
							compute(r, dt, phase)
							// Sum w across the row: recursive halving.
							for bit := 1; bit < npcols; bit <<= 1 {
								partner := row*npcols + (col ^ bit)
								stamp(seg, me, phase, bit)
								if _, err := c.Sendrecv(partner, 10+bit, seg, partner, 10+bit, in); err != nil {
									return err
								}
								check(res, in, partner, phase, bit)
							}
							// Transpose exchange.
							if transpose != me {
								stamp(seg, me, phase, 777)
								if _, err := c.Sendrecv(transpose, 7, seg, transpose, 7, in); err != nil {
									return err
								}
								check(res, in, transpose, phase, 777)
							}
							// Two dot products on the row ladder (scalars).
							for d := 0; d < 2; d++ {
								for bit := 1; bit < npcols; bit <<= 1 {
									partner := row*npcols + (col ^ bit)
									stamp(scalar, me, phase, 900+d*10+bit)
									if _, err := c.Sendrecv(partner, 50+d, scalar, partner, 50+d, scalarIn); err != nil {
										return err
									}
									check(res, scalarIn, partner, phase, 900+d*10+bit)
								}
							}
						}
						// Residual norm across all ranks.
						if _, err := c.AllreduceF64([]float64{float64(it)}, mpi.SumF64); err != nil {
							return err
						}
					}
					return nil
				})
				fail(res, err)
			}
		},
	}
}

// cgTransposePartner mirrors NPB cg.f's exch_proc.
func cgTransposePartner(me, nprows, npcols int) int {
	if npcols == nprows {
		return (me%nprows)*nprows + me/nprows
	}
	return 2*((me/2%nprows)*nprows+me/2/nprows) + me%2
}
