package npb

import (
	"viampi/internal/mpi"
)

type adiParams struct {
	grid      int // problem is grid^3
	niter     int
	serialSec float64
}

var spTable = map[Class]adiParams{
	ClassS: {12, 100, 1.2},
	ClassW: {36, 400, 120},
	ClassA: {64, 400, 1600},
	ClassB: {102, 400, 8400},
	ClassC: {162, 400, 33600},
}

var btTable = map[Class]adiParams{
	ClassS: {12, 60, 1.5},
	ClassW: {24, 200, 150},
	ClassA: {64, 200, 2900},
	ClassB: {102, 200, 13100},
	ClassC: {162, 200, 52400},
}

// SP is the scalar-pentadiagonal ADI proxy; BT the block-tridiagonal one.
// Both use the NPB multi-partition scheme on a square process grid: per
// iteration, copy_faces exchanges with all eight surrounding ranks
// (compass + diagonals, periodic) and then three line-solve sweeps send
// partial solutions forward and back along rows and columns. That yields
// the 8 distinct partners per rank that Table 2 reports for SP/BT at 16
// processes.
func SP() Kernel { return adiKernel("SP", spTable, 5) }

// BT is the block-tridiagonal ADI proxy (larger per-face blocks than SP).
func BT() Kernel { return adiKernel("BT", btTable, 25) }

func adiKernel(name string, table map[Class]adiParams, blockWords int) Kernel {
	return Kernel{
		Name:       name,
		ValidProcs: isSquare,
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := table[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				me := c.Rank()
				q := intSqrt(n)
				row, col := me/q, me%q

				cell := p.grid / q // cells per rank per grid dimension
				if cell < 1 {
					cell = 1
				}
				faceBytes := 8 * blockWords * cell * cell
				lineBytes := 8 * blockWords * cell
				if faceBytes < 32 {
					faceBytes = 32
				}
				if lineBytes < 32 {
					lineBytes = 32
				}

				at := func(rr, cc int) int { return ((rr+q)%q)*q + (cc+q)%q }
				// Eight surrounding partners (periodic), deduplicated for
				// tiny grids.
				type nb struct{ rank, slot int }
				var nbs []nb
				seen := map[int]bool{}
				slot := 0
				for dr := -1; dr <= 1; dr++ {
					for dc := -1; dc <= 1; dc++ {
						if dr == 0 && dc == 0 {
							continue
						}
						pr := at(row+dr, col+dc)
						if pr != me && !seen[pr] {
							seen[pr] = true
							nbs = append(nbs, nb{pr, slot})
						}
						slot++
					}
				}

				faceOut := make([][]byte, len(nbs))
				faceIn := make([][]byte, len(nbs))
				for i := range nbs {
					faceOut[i] = make([]byte, faceBytes)
					faceIn[i] = make([]byte, faceBytes)
				}
				lineOut := make([]byte, lineBytes)
				lineIn := make([]byte, lineBytes)

				// copy_faces uses persistent requests, as NPB SP/BT do:
				// the templates are built once and restarted per iteration.
				persistent := make([]*mpi.PersistentRequest, 0, 2*len(nbs))
				for i, b := range nbs {
					pr, err := c.RecvInit(faceIn[i], b.rank, 30)
					if err != nil {
						fail(res, err)
						return
					}
					persistent = append(persistent, pr)
				}
				for i, b := range nbs {
					ps, err := c.SendInit(b.rank, 30, faceOut[i])
					if err != nil {
						fail(res, err)
						return
					}
					persistent = append(persistent, ps)
				}

				dt := computeSlice(p.serialSec, p.niter*4, n) // faces + 3 sweeps

				err := timedRegion(r, c, res, func() error {
					for it := 0; it < p.niter; it++ {
						// copy_faces: all-neighbor exchange via the
						// persistent templates (MPI_Startall / Waitall).
						compute(r, dt, it*4)
						for i := range nbs {
							stamp(faceOut[i], me, it, 30)
						}
						if err := mpi.Startall(persistent...); err != nil {
							return err
						}
						if err := r.WaitallPersistent(persistent...); err != nil {
							return err
						}
						for i, b := range nbs {
							check(res, faceIn[i], b.rank, it, 30)
						}

						// Three ADI sweeps: x along rows, y along columns,
						// z along rows again — forward then backward
						// substitution pipelines (non-periodic, so no cycle).
						for sweep := 0; sweep < 3; sweep++ {
							compute(r, dt, it*4+1+sweep)
							var fwdPrev, fwdNext int
							if sweep == 1 { // column sweep
								fwdPrev, fwdNext = at(row-1, col), at(row+1, col)
								if row == 0 {
									fwdPrev = -1
								}
								if row == q-1 {
									fwdNext = -1
								}
							} else { // row sweeps
								fwdPrev, fwdNext = at(row, col-1), at(row, col+1)
								if col == 0 {
									fwdPrev = -1
								}
								if col == q-1 {
									fwdNext = -1
								}
							}
							tag := 40 + sweep
							// Forward substitution.
							if fwdPrev >= 0 {
								if _, err := c.Recv(lineIn, fwdPrev, tag); err != nil {
									return err
								}
								check(res, lineIn, fwdPrev, it, tag)
							}
							if fwdNext >= 0 {
								stamp(lineOut, me, it, tag)
								if err := c.Send(fwdNext, tag, lineOut); err != nil {
									return err
								}
							}
							// Backward substitution.
							if fwdNext >= 0 {
								if _, err := c.Recv(lineIn, fwdNext, tag+10); err != nil {
									return err
								}
								check(res, lineIn, fwdNext, it, tag+10)
							}
							if fwdPrev >= 0 {
								stamp(lineOut, me, it, tag+10)
								if err := c.Send(fwdPrev, tag+10, lineOut); err != nil {
									return err
								}
							}
						}
					}
					// Solution verification norms (NPB uses MPI_Reduce).
					out := make([]byte, 8)
					if err := c.Reduce(mpi.F64Bytes([]float64{1}), out, mpi.SumF64, 0); err != nil {
						return err
					}
					return nil
				})
				fail(res, err)
			}
		},
	}
}
