package npb

import (
	"viampi/internal/mpi"
)

type epParams struct {
	serialSec float64
}

var epTable = map[Class]epParams{
	ClassS: {1},
	ClassW: {12},
	ClassA: {180},
	ClassB: {720},
	ClassC: {2880},
}

// EP is the embarrassingly-parallel proxy: pure local computation followed
// by three small allreduces (the Gaussian-pair sums and the ring-bin
// counts). Its Table 2 VI footprint under on-demand is just the allreduce
// tree — the paper's illustration of the static mechanism's waste.
func EP() Kernel {
	return Kernel{
		Name:       "EP",
		ValidProcs: func(procs int) bool { return procs > 0 },
		Main: func(class Class, res *Result) func(r *mpi.Rank) {
			p := epTable[class]
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				// Split the computation into slices so virtual time
				// interleaves across ranks realistically.
				const slices = 16
				dt := computeSlice(p.serialSec, slices, n)
				err := timedRegion(r, c, res, func() error {
					for s := 0; s < slices; s++ {
						compute(r, dt, s)
					}
					if _, err := c.AllreduceF64([]float64{1, 2}, mpi.SumF64); err != nil {
						return err
					}
					if _, err := c.AllreduceF64([]float64{3}, mpi.MaxF64); err != nil {
						return err
					}
					counts, err := c.AllreduceI64(make([]int64, 10), mpi.SumI64)
					if err != nil {
						return err
					}
					_ = counts
					return nil
				})
				fail(res, err)
			}
		},
	}
}
