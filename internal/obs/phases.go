package obs

import (
	"fmt"
	"io"
)

// Phase decomposition: where a rank's virtual time went. This is the report
// that explains Figs 6–8 — an application that is "communication bound" or a
// mechanism whose cost is all connect time shows up directly as a column.
type Phase int

// The phases a rank's elapsed time decomposes into. Other is the residual
// (bootstrap, host copy charges, NIC service waits not attributable to a
// specific blocked reason).
const (
	PhaseCompute Phase = iota
	PhaseEager
	PhaseRendezvous
	PhaseConnect
	PhaseCreditStall
	PhaseProgress
	PhaseOther
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseEager:
		return "eager"
	case PhaseRendezvous:
		return "rendezvous"
	case PhaseConnect:
		return "connect"
	case PhaseCreditStall:
		return "credit-stall"
	case PhaseProgress:
		return "progress-poll"
	case PhaseOther:
		return "other"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Phases accumulates per-phase virtual nanoseconds for one rank. A nil
// *Phases ignores charges (observability off).
type Phases struct {
	Ns [NumPhases]int64
}

// Add charges d nanoseconds to phase p. Safe on a nil receiver.
func (ph *Phases) Add(p Phase, d int64) {
	if ph == nil || d <= 0 {
		return
	}
	ph.Ns[p] += d
}

// Total returns the sum of all charged phases.
func (ph *Phases) Total() int64 {
	if ph == nil {
		return 0
	}
	var t int64
	for _, v := range ph.Ns {
		t += v
	}
	return t
}

// PhaseRow is one rank's line in the phase report.
type PhaseRow struct {
	Rank    int
	Elapsed int64 // the rank's total virtual nanoseconds (the denominator)
	P       *Phases
}

// WritePhaseTable renders the per-rank phase decomposition: one row per
// rank, a column per phase (milliseconds and percent of elapsed), with
// "other" computed as the residual so the row always sums to Elapsed.
func WritePhaseTable(w io.Writer, rows []PhaseRow) {
	fmt.Fprintf(w, "%-5s %10s", "rank", "elapsed")
	for p := PhaseCompute; p < NumPhases; p++ {
		fmt.Fprintf(w, " %18s", p.String())
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-5d %8.2fms", row.Rank, float64(row.Elapsed)/1e6)
		for p := PhaseCompute; p < NumPhases; p++ {
			ns := row.P.Ns[p]
			if p == PhaseOther {
				if resid := row.Elapsed - row.P.Total() + row.P.Ns[PhaseOther]; resid > 0 {
					ns = resid
				}
			}
			pct := 0.0
			if row.Elapsed > 0 {
				pct = 100 * float64(ns) / float64(row.Elapsed)
			}
			fmt.Fprintf(w, " %10.2fms %5.1f%%", float64(ns)/1e6, pct)
		}
		fmt.Fprintln(w)
	}
}
