package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBusFanOutInOrder(t *testing.T) {
	b := NewBus()
	var got []int64
	b.Subscribe(func(e Event) { got = append(got, e.A) })
	b.Subscribe(func(e Event) { got = append(got, -e.A) })
	b.Emit(Event{Kind: EvGauge, A: 1})
	b.Emit(Event{Kind: EvGauge, A: 2})
	want := []int64{1, -1, 2, -2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestDisabledEmitZeroAlloc pins the nil-sink fast path: with observability
// off (nil bus) an emission must not allocate at all.
func TestDisabledEmitZeroAlloc(t *testing.T) {
	var b *Bus
	allocs := testing.AllocsPerRun(100, func() {
		b.Emit(Event{T: 1, Kind: EvEagerSend, Rank: 3, Peer: 7, A: 1024, Name: "x"})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f times per call; want 0", allocs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	g := NewRegistry()
	h := g.Hist("lat", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.counts[0] != 2 || h.counts[1] != 2 || h.counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [2 2 1]", h.counts)
	}
	if h.min != 5 || h.max != 1000 {
		t.Fatalf("min/max = %d/%d, want 5/1000", h.min, h.max)
	}
}

func TestRegistryDumpsAreDeterministic(t *testing.T) {
	build := func() *Registry {
		g := NewRegistry()
		g.Inc("zeta", 2)
		g.Inc("alpha", 1)
		g.SetGauge("g2", 5)
		g.SetGauge("g1", 9)
		g.SetGauge("g1", 3)
		g.Hist("h", []int64{10}).Observe(7)
		return g
	}
	var a, b, c bytes.Buffer
	build().WriteJSON(&a)
	build().WriteJSON(&b)
	if a.String() != b.String() {
		t.Fatalf("two identical registries render different JSON:\n%s\n%s", a.String(), b.String())
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("WriteJSON output is not valid JSON:\n%s", a.String())
	}
	build().WriteText(&c)
	txt := c.String()
	if strings.Index(txt, "alpha") > strings.Index(txt, "zeta") {
		t.Fatalf("text dump not sorted:\n%s", txt)
	}
	if !strings.Contains(txt, "(max 9)") {
		t.Fatalf("gauge max not tracked:\n%s", txt)
	}
}

func TestCollectorMatchesMessagesAndConnects(t *testing.T) {
	g := NewRegistry()
	c := NewCollector(g)
	b := NewBus()
	c.Attach(b)

	b.Emit(Event{T: 100, Kind: EvConnRequest, Rank: 0, Peer: 1, A: 42})
	b.Emit(Event{T: 400, Kind: EvConnUp, Rank: 0, Peer: 1, A: 42})
	b.Emit(Event{T: 1000, Kind: EvMsgSend, Rank: 0, Peer: 1, A: 64, C: 0})
	b.Emit(Event{T: 4000, Kind: EvMsgRecv, Rank: 1, Peer: 0, A: 64, C: 0})
	// Self-send: no latency sample.
	b.Emit(Event{T: 5000, Kind: EvMsgSend, Rank: 1, Peer: 1, A: 8, C: 0})

	if n := c.connect.Count(); n != 1 {
		t.Fatalf("connect samples = %d, want 1", n)
	}
	if c.connect.sum != 300 {
		t.Fatalf("connect time = %d, want 300", c.connect.sum)
	}
	if n := c.latency.Count(); n != 1 {
		t.Fatalf("latency samples = %d, want 1", n)
	}
	if c.latency.sum != 3000 {
		t.Fatalf("latency = %d, want 3000", c.latency.sum)
	}
	if got := g.Counter("events.msg.send"); got != 2 {
		t.Fatalf("events.msg.send = %d, want 2", got)
	}
}

func TestPerfettoExportIsValidJSON(t *testing.T) {
	r := NewRecorder()
	b := NewBus()
	r.Attach(b)
	b.Emit(Event{T: 1000, Kind: EvCallBegin, Rank: 0, Peer: -1, Name: "Send"})
	b.Emit(Event{T: 1500, Kind: EvConnRequest, Rank: 0, Peer: 1, A: 7})
	b.Emit(Event{T: 2500, Kind: EvConnUp, Rank: 0, Peer: 1, A: 7})
	b.Emit(Event{T: 3000, Kind: EvMsgSend, Rank: 0, Peer: 1, A: 64, B: 9, C: 0})
	b.Emit(Event{T: 4000, Kind: EvMsgRecv, Rank: 1, Peer: 0, A: 64, B: 9, C: 0})
	b.Emit(Event{T: 5000, Kind: EvCallEnd, Rank: 0, Peer: -1, Name: "Send"})
	r.NextRun("second")
	b.Emit(Event{T: 100, Kind: EvGauge, Rank: 1, Name: "pinned_bytes", A: 4096})

	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	for _, want := range []string{"M", "B", "E", "b", "e", "s", "f", "C"} {
		if phases[want] == 0 {
			t.Errorf("no %q phase events in export (got %v)", want, phases)
		}
	}
}

func TestRecorderRuns(t *testing.T) {
	r := NewRecorder()
	r.NextRun("relabel-empty") // must not create a ghost run
	b := NewBus()
	r.Attach(b)
	b.Emit(Event{T: 1, Kind: EvGauge, A: 1})
	r.NextRun("two")
	b.Emit(Event{T: 2, Kind: EvGauge, A: 2})
	b.Emit(Event{T: 3, Kind: EvGauge, A: 3})
	if len(r.runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(r.runs))
	}
	if r.runs[0].label != "relabel-empty" || len(r.runs[0].events) != 1 {
		t.Fatalf("run 0 = %+v", r.runs[0])
	}
	if r.Len() != 3 || len(r.Events()) != 2 {
		t.Fatalf("Len=%d Events=%d", r.Len(), len(r.Events()))
	}
}

func TestPhaseTableResidual(t *testing.T) {
	p := &Phases{}
	p.Add(PhaseCompute, 600)
	p.Add(PhaseConnect, 300)
	var buf bytes.Buffer
	WritePhaseTable(&buf, []PhaseRow{{Rank: 0, Elapsed: 1000, P: p}})
	out := buf.String()
	if !strings.Contains(out, "compute") || !strings.Contains(out, "credit-stall") {
		t.Fatalf("missing phase columns:\n%s", out)
	}
	// 600 + 300 charged of 1000 elapsed: residual 100 ns lands in "other".
	if !strings.Contains(out, "60.0%") || !strings.Contains(out, "30.0%") || !strings.Contains(out, "10.0%") {
		t.Fatalf("unexpected percentages:\n%s", out)
	}
}
