package capture

import (
	"bytes"
	"strings"
	"testing"

	"viampi/internal/obs"
)

func mkBundle(evs ...obs.Event) *Bundle {
	return &Bundle{Header: testHeader(), Events: evs}
}

func ev(t int64, k obs.Kind, rank, peer int32, a int64) obs.Event {
	return obs.Event{T: t, Kind: k, Rank: rank, Peer: peer, A: a}
}

// TestDiffIdentical: a bundle against itself is identical in every sense.
func TestDiffIdentical(t *testing.T) {
	b := mkBundle(randomEvents(1, 500)...)
	d := Diff(b, b)
	if !d.Identical() || d.First != nil || !d.TimeEqual {
		t.Fatalf("self-diff not identical: %+v", d)
	}
	var out bytes.Buffer
	if err := d.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict: identical") {
		t.Fatalf("report: %s", out.String())
	}
}

// TestDiffTimingOnly: same events shifted in time — structurally equal, not
// identical, and the per-kind mean shift is reported.
func TestDiffTimingOnly(t *testing.T) {
	evs := randomEvents(2, 200)
	shifted := make([]obs.Event, len(evs))
	for i, e := range evs {
		e.T += 1000
		shifted[i] = e
	}
	d := Diff(mkBundle(evs...), mkBundle(shifted...))
	if d.First != nil {
		t.Fatalf("structural divergence reported for a pure time shift: %+v", d.First)
	}
	if d.TimeEqual || d.Identical() {
		t.Fatal("time shift not detected")
	}
	for _, kd := range d.Kinds {
		if kd.Aligned > 0 && kd.MeanDtNs() != 1000 {
			t.Fatalf("kind %s: mean dT = %d, want 1000", kd.Kind, kd.MeanDtNs())
		}
	}
	var out bytes.Buffer
	if err := d.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "structurally equal, timing differs") {
		t.Fatalf("report: %s", out.String())
	}
}

// TestDiffFirstDivergence: a payload change in the middle of the stream is
// located exactly — index, occurrence, and field.
func TestDiffFirstDivergence(t *testing.T) {
	a := mkBundle(
		ev(10, obs.EvConnRequest, 0, 1, 1),
		ev(20, obs.EvConnRequest, 0, 2, 2),
		ev(30, obs.EvMsgSend, 0, 1, 64),
		ev(40, obs.EvConnRequest, 0, 3, 3),
	)
	b := mkBundle(
		ev(10, obs.EvConnRequest, 0, 1, 1),
		ev(20, obs.EvConnRequest, 0, 2, 2),
		ev(30, obs.EvMsgSend, 0, 1, 64),
		ev(40, obs.EvConnRequest, 0, 5, 3), // third conn.request went elsewhere
	)
	d := Diff(a, b)
	f := d.First
	if f == nil {
		t.Fatal("no divergence found")
	}
	if f.Index != 3 || f.Kind != obs.EvConnRequest || f.Rank != 0 || f.Seq != 2 || f.Field != "peer" {
		t.Fatalf("divergence: %+v", f)
	}
	var out bytes.Buffer
	if err := d.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "first divergence: event 3, kind=conn.request rank=0 occurrence=2 field=peer") {
		t.Fatalf("report: %s", out.String())
	}
}

// TestDiffMissingAndExtra: events present on only one side are reported with
// the right direction.
func TestDiffMissingAndExtra(t *testing.T) {
	common := ev(10, obs.EvMsgSend, 1, 2, 64)
	onlyA := ev(20, obs.EvEvict, 1, -1, 4)
	d := Diff(mkBundle(common, onlyA), mkBundle(common))
	if d.First == nil || d.First.Field != "missing in B" || d.First.Kind != obs.EvEvict {
		t.Fatalf("missing-in-B: %+v", d.First)
	}
	d = Diff(mkBundle(common), mkBundle(common, onlyA))
	if d.First == nil || d.First.Field != "only in B" || d.First.Kind != obs.EvEvict || d.First.Index != 1 {
		t.Fatalf("only-in-B: %+v", d.First)
	}
	if d.TotalA != 1 || d.TotalB != 2 {
		t.Fatalf("totals: %d vs %d", d.TotalA, d.TotalB)
	}
}

// TestDiffCounts: per-kind counts and aligned totals follow min(countA,countB).
func TestDiffCounts(t *testing.T) {
	a := mkBundle(
		ev(1, obs.EvMsgSend, 0, 1, 1),
		ev(2, obs.EvMsgSend, 0, 1, 1),
		ev(3, obs.EvMsgRecv, 1, 0, 1),
	)
	b := mkBundle(
		ev(1, obs.EvMsgSend, 0, 1, 1),
		ev(4, obs.EvCreditStall, 0, -1, 2),
	)
	d := Diff(a, b)
	byKind := map[obs.Kind]KindDelta{}
	for _, kd := range d.Kinds {
		byKind[kd.Kind] = kd
	}
	if kd := byKind[obs.EvMsgSend]; kd.CountA != 2 || kd.CountB != 1 || kd.Aligned != 1 {
		t.Fatalf("msg.send delta: %+v", kd)
	}
	if kd := byKind[obs.EvMsgRecv]; kd.CountA != 1 || kd.CountB != 0 || kd.Aligned != 0 {
		t.Fatalf("msg.recv delta: %+v", kd)
	}
	if kd := byKind[obs.EvCreditStall]; kd.CountA != 0 || kd.CountB != 1 {
		t.Fatalf("credit.stall delta: %+v", kd)
	}
	// Kinds emitted by neither side never appear.
	if _, present := byKind[obs.EvRdma]; present {
		t.Fatal("unemitted kind present in deltas")
	}
}
