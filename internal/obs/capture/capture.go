// Package capture is the persistent form of the obs flight recorder: a
// versioned, compact binary encoding of the full event stream, written live
// by a bus subscriber and read back as a stream — so a run's complete
// observable record (when connections were set up, evicted, re-established,
// and what each message paid) survives the process and can be re-rendered,
// summarized, or diffed against another run without re-running anything.
//
// A bundle is one file:
//
//	magic   "VIAC"                        4 bytes
//	version u8                            schema version (currently 1)
//	clock   u8                            0 = virtual time, 1 = wall clock
//	world   uvarint                       ranks in the job
//	seed    varint                        simulation seed (0 for wall runs)
//	device, policy, label, config         4 × (uvarint length + bytes)
//	digest  8 bytes                       sha256(config)[:8], reader-verified
//	events  repeated records              see below
//	end     0x00 + uvarint event count    truncation check
//
// Each event record is one kind byte (1..NumKinds; 0 is the end marker)
// followed by varints: the timestamp as a delta from the previous event
// (signed, so slightly out-of-order wall-clock stamps survive), rank, peer,
// and the A/B/C payloads (all signed), then the label reference — 0 for no
// name, an existing 1-based intern-table index, or table-length+1 to declare
// a new string inline (uvarint length + bytes), which both sides append to
// their table. Typical simulated events encode in 9–14 bytes.
//
// Versioning rules: the kind space is append-only (values are never reused
// or renumbered — the same rule obs.Kind already obeys for its exported
// names), so any version-1 reader can decode any version-1 bundle; a record
// carrying a kind byte above the reader's known range means the bundle came
// from a newer build and is reported as such, not skipped. Any change that
// alters existing field meaning bumps the version byte, and readers reject
// versions they do not know.
//
// Like its parent package, capture is a shared leaf: pure functions of the
// byte stream, no clocks, no goroutines, importable from any layer. The
// Writer's per-event path is allocation-free at steady state (registered in
// the viampi-vet hotalloc policy), so recording costs a bounded, predictable
// slice of the event rate.
package capture

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"viampi/internal/obs"
)

// Version is the current bundle schema version.
const Version = 1

// NumKinds is the highest event kind this build encodes or decodes.
const NumKinds = int(obs.EvRunEnd)

// Clock identifies the time source of a bundle's event stamps.
type Clock uint8

// The two clock sources: simulated virtual time (deterministic, the default
// for every simnet run) and host wall-clock time (the tcpvia twin).
const (
	ClockVirtual Clock = iota
	ClockWall
)

func (c Clock) String() string {
	switch c {
	case ClockVirtual:
		return "virtual"
	case ClockWall:
		return "wall"
	default:
		return "unknown"
	}
}

// Header is the bundle preamble: enough run identity to interpret, compare,
// and label the event stream without any side channel.
type Header struct {
	Version uint8 // schema version; NewWriter stamps the current one
	Clock   Clock
	World   int    // ranks in the job
	Seed    int64  // simulation seed (informational for wall-clock runs)
	Device  string // cost model / provider ("clan", "bvia", "ib", "tcp")
	Policy  string // connection policy the run used
	Label   string // free-form run label ("CG.S", "tcpring")
	Config  string // full config text; Digest() is computed over it
}

// Digest returns the hex form of the 8-byte config digest embedded in the
// bundle (the first 8 bytes of sha256(Config)).
func (h Header) Digest() string {
	d := configDigest(h.Config)
	return fmt.Sprintf("%x", d[:])
}

func configDigest(config string) [8]byte {
	sum := sha256.Sum256([]byte(config))
	var d [8]byte
	copy(d[:], sum[:8])
	return d
}

// Decode/encode error classes. Reader errors wrap these, so callers can
// distinguish "not a bundle" from "a bundle that ends mid-record".
var (
	ErrBadMagic  = errors.New("capture: not a bundle (bad magic)")
	ErrVersion   = errors.New("capture: unsupported bundle version")
	ErrTruncated = errors.New("capture: truncated bundle (no end marker)")
	ErrCorrupt   = errors.New("capture: corrupt bundle")
)

// errBadKind is the Writer-side guard: an event kind outside the encodable
// range would produce a bundle no reader accepts.
var errBadKind = fmt.Errorf("%w: event kind outside the encodable range", ErrCorrupt)

const (
	flushAt   = 32 << 10 // flush the encode buffer to the sink at this size
	maxString = 1 << 20  // sanity bound on decoded string lengths
)

// Writer encodes bus events into an io.Writer. Create it with NewWriter
// (which writes the header immediately), feed it via Attach or Consume, and
// Close it to seal the bundle with the end marker and event count.
type Writer struct {
	out    io.Writer
	buf    []byte
	names  map[string]uint64
	lastT  int64
	events int64
	flushd int64 // bytes handed to out so far
	err    error
	bus    *obs.Bus
	sub    obs.Sub
}

// NewWriter writes the bundle header for h to out and returns a Writer for
// the event stream. h.Version is stamped with the current schema version.
func NewWriter(out io.Writer, h Header) (*Writer, error) {
	w := &Writer{
		out:   out,
		buf:   make([]byte, 0, flushAt+512),
		names: make(map[string]uint64),
	}
	w.buf = append(w.buf, 'V', 'I', 'A', 'C', Version, byte(h.Clock))
	w.buf = binary.AppendUvarint(w.buf, uint64(h.World))
	w.buf = binary.AppendVarint(w.buf, h.Seed)
	for _, s := range []string{h.Device, h.Policy, h.Label, h.Config} {
		w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
		w.buf = append(w.buf, s...)
	}
	d := configDigest(h.Config)
	w.buf = append(w.buf, d[:]...)
	w.flush()
	if w.err != nil {
		return nil, w.err
	}
	return w, nil
}

// Attach subscribes the writer to b. A nil bus is ignored. Close detaches
// again, so a sealed bundle never keeps consuming bus events.
func (w *Writer) Attach(b *obs.Bus) {
	if b == nil {
		return
	}
	w.bus, w.sub = b, b.Subscribe(w.Consume)
}

// Consume encodes one event. It is the recording hot path: at steady state
// (label table warm, buffer grown) it allocates nothing.
func (w *Writer) Consume(e obs.Event) {
	if w.err != nil {
		return
	}
	if e.Kind == 0 || int(e.Kind) > NumKinds {
		w.err = errBadKind
		return
	}
	w.buf = append(w.buf, byte(e.Kind))
	w.buf = binary.AppendVarint(w.buf, e.T-w.lastT)
	w.lastT = e.T
	w.buf = binary.AppendVarint(w.buf, int64(e.Rank))
	w.buf = binary.AppendVarint(w.buf, int64(e.Peer))
	w.buf = binary.AppendVarint(w.buf, e.A)
	w.buf = binary.AppendVarint(w.buf, e.B)
	w.buf = binary.AppendVarint(w.buf, e.C)
	if e.Name == "" {
		w.buf = append(w.buf, 0)
	} else if idx, ok := w.names[e.Name]; ok {
		w.buf = binary.AppendUvarint(w.buf, idx)
	} else {
		w.internName(e.Name)
	}
	w.events++
	if len(w.buf) >= flushAt {
		w.flush()
	}
}

// internName registers a new label and encodes its inline declaration — the
// cold half of the name path, entered once per distinct label.
func (w *Writer) internName(name string) {
	idx := uint64(len(w.names)) + 1
	w.names[name] = idx
	w.buf = binary.AppendUvarint(w.buf, idx)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(name)))
	w.buf = append(w.buf, name...)
}

func (w *Writer) flush() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	n, err := w.out.Write(w.buf)
	w.flushd += int64(n)
	w.err = err
	w.buf = w.buf[:0]
}

// Close seals the bundle: end marker, total event count, final flush, and
// unsubscription from any bus the writer was Attached to (events emitted
// after Close would corrupt a sealed bundle). The underlying io.Writer is
// not closed. Close reports the first error the writer encountered anywhere.
func (w *Writer) Close() error {
	if w.bus != nil {
		w.bus.Unsubscribe(w.sub)
		w.bus = nil
	}
	if w.err == nil {
		w.buf = append(w.buf, 0)
		w.buf = binary.AppendUvarint(w.buf, uint64(w.events))
		w.flush()
	}
	return w.err
}

// Events returns the number of events encoded so far.
func (w *Writer) Events() int64 { return w.events }

// Bytes returns the number of bundle bytes produced so far (header
// included, buffered bytes counted).
func (w *Writer) Bytes() int64 { return w.flushd + int64(len(w.buf)) }

// Err returns the writer's sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Reader streams events back out of a bundle without materializing the run.
type Reader struct {
	br    *bufio.Reader
	h     Header
	names []string
	lastT int64
	n     int64
	done  bool
}

// NewReader decodes the bundle header from r and returns a Reader positioned
// at the first event.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w (%v)", ErrBadMagic, err)
	}
	if string(magic[:]) != "VIAC" {
		return nil, ErrBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: header ends before version", ErrTruncated)
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: bundle is version %d, this build reads version %d", ErrVersion, ver, Version)
	}
	clk, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: header ends before clock", ErrTruncated)
	}
	if Clock(clk) > ClockWall {
		return nil, fmt.Errorf("%w: unknown clock source %d", ErrCorrupt, clk)
	}
	rd := &Reader{br: br, h: Header{Version: ver, Clock: Clock(clk)}}
	world, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: header ends in world size", ErrTruncated)
	}
	rd.h.World = int(world)
	if rd.h.Seed, err = binary.ReadVarint(br); err != nil {
		return nil, fmt.Errorf("%w: header ends in seed", ErrTruncated)
	}
	for _, dst := range []*string{&rd.h.Device, &rd.h.Policy, &rd.h.Label, &rd.h.Config} {
		if *dst, err = rd.readString(); err != nil {
			return nil, fmt.Errorf("header string: %w", err)
		}
	}
	var digest [8]byte
	if _, err := io.ReadFull(br, digest[:]); err != nil {
		return nil, fmt.Errorf("%w: header ends in config digest", ErrTruncated)
	}
	if digest != configDigest(rd.h.Config) {
		return nil, fmt.Errorf("%w: config digest mismatch (header damaged)", ErrCorrupt)
	}
	return rd, nil
}

// Header returns the decoded bundle header.
func (r *Reader) Header() Header { return r.h }

// Next returns the next event. It returns io.EOF after the end marker has
// been read and verified; a stream that stops without the marker yields
// ErrTruncated, and impossible values yield ErrCorrupt.
func (r *Reader) Next() (obs.Event, error) {
	if r.done {
		return obs.Event{}, io.EOF
	}
	kind, err := r.br.ReadByte()
	if err != nil {
		return obs.Event{}, fmt.Errorf("%w after %d events", ErrTruncated, r.n)
	}
	if kind == 0 {
		return obs.Event{}, r.finish()
	}
	if int(kind) > NumKinds {
		return obs.Event{}, fmt.Errorf("%w: kind %d beyond this build's range %d (newer bundle?)", ErrCorrupt, kind, NumKinds)
	}
	var e obs.Event
	e.Kind = obs.Kind(kind)
	fields := [6]int64{}
	for i := range fields {
		if fields[i], err = binary.ReadVarint(r.br); err != nil {
			return obs.Event{}, fmt.Errorf("%w: event %d ends mid-record", ErrTruncated, r.n)
		}
	}
	r.lastT += fields[0]
	e.T = r.lastT
	e.Rank = int32(fields[1])
	e.Peer = int32(fields[2])
	e.A, e.B, e.C = fields[3], fields[4], fields[5]
	idx, err := binary.ReadUvarint(r.br)
	if err != nil {
		return obs.Event{}, fmt.Errorf("%w: event %d ends in label reference", ErrTruncated, r.n)
	}
	switch {
	case idx == 0:
	case idx <= uint64(len(r.names)):
		e.Name = r.names[idx-1]
	case idx == uint64(len(r.names))+1:
		s, err := r.readString()
		if err != nil {
			return obs.Event{}, fmt.Errorf("label declaration: %w", err)
		}
		r.names = append(r.names, s)
		e.Name = s
	default:
		return obs.Event{}, fmt.Errorf("%w: label index %d with only %d interned", ErrCorrupt, idx, len(r.names))
	}
	r.n++
	return e, nil
}

// finish validates the trailer behind the end marker.
func (r *Reader) finish() error {
	r.done = true
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("%w: end marker without event count", ErrTruncated)
	}
	if int64(count) != r.n {
		return fmt.Errorf("%w: trailer says %d events, stream held %d", ErrCorrupt, count, r.n)
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after the end marker", ErrCorrupt)
	}
	return io.EOF
}

func (r *Reader) readString() (string, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return "", ErrTruncated
	}
	if n > maxString {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", ErrTruncated
	}
	return string(buf), nil
}

// Bundle is a fully-decoded capture: header plus the ordered event stream.
// Reader is the streaming form; Bundle is the convenient one for tools that
// need random access (replay rendering, diffing).
type Bundle struct {
	Header Header
	Events []obs.Event
}

// ReadBundle decodes a whole bundle from r.
func ReadBundle(r io.Reader) (*Bundle, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Header: rd.Header()}
	for {
		e, err := rd.Next()
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return nil, err
		}
		b.Events = append(b.Events, e)
	}
}

// EmitAll replays the bundle's events onto a bus in recorded order — the
// bridge back into every existing obs consumer (Recorder, Collector,
// trace.Recorder): attach them, EmitAll, and render exactly what the live
// run would have rendered.
func (b *Bundle) EmitAll(bus *obs.Bus) {
	for _, e := range b.Events {
		bus.Emit(e)
	}
}

// PhaseRows rebuilds the phase-table inputs from the run-epilogue events:
// one EvPhase per (rank, phase) carrying charged nanoseconds, and EvRunEnd
// carrying the elapsed time every row is normalized against. Feeding the
// result to obs.WritePhaseTable reproduces the live run's table.
func (b *Bundle) PhaseRows() []obs.PhaseRow {
	var elapsed int64
	perRank := make(map[int32]*obs.Phases)
	var ranks []int
	for _, e := range b.Events {
		switch e.Kind {
		case obs.EvPhase:
			p := perRank[e.Rank]
			if p == nil {
				p = &obs.Phases{}
				perRank[e.Rank] = p
				ranks = append(ranks, int(e.Rank))
			}
			if e.A >= 0 && e.A < int64(obs.NumPhases) {
				p.Ns[e.A] = e.B
			}
		case obs.EvRunEnd:
			elapsed = e.T
		default:
			// Protocol events carry no phase accounting.
		}
	}
	sort.Ints(ranks)
	rows := make([]obs.PhaseRow, 0, len(ranks))
	for _, rk := range ranks {
		rows = append(rows, obs.PhaseRow{Rank: rk, Elapsed: elapsed, P: perRank[int32(rk)]})
	}
	return rows
}

// Ring is a bounded event buffer with the same Consume interface as Writer:
// it keeps the most recent capacity events in memory and encodes them as a
// bundle only on demand. This is the wall-clock / soak mode — a long-running
// tcpvia process can afford a few megabytes of ring but not an unbounded
// file, and a flush-on-signal or flush-on-crash dump of the last N events is
// exactly what a postmortem needs.
type Ring struct {
	h    Header
	buf  []obs.Event
	next int
	n    int64
	bus  *obs.Bus
	sub  obs.Sub
}

// NewRing returns a ring holding the last capacity events (minimum 1).
func NewRing(h Header, capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{h: h, buf: make([]obs.Event, capacity)}
}

// Attach subscribes the ring to b. A nil bus is ignored.
func (r *Ring) Attach(b *obs.Bus) {
	if b == nil {
		return
	}
	r.bus, r.sub = b, b.Subscribe(r.Consume)
}

// Detach unsubscribes the ring; retained events stay dumpable.
func (r *Ring) Detach() {
	if r.bus != nil {
		r.bus.Unsubscribe(r.sub)
		r.bus = nil
	}
}

// Consume stores one event, evicting the oldest when full. Allocation-free.
func (r *Ring) Consume(e obs.Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.n++
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r.n < int64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns how many events have been evicted to stay within bounds.
func (r *Ring) Dropped() int64 {
	if r.n < int64(len(r.buf)) {
		return 0
	}
	return r.n - int64(len(r.buf))
}

// DumpTo encodes the retained events, oldest first, as a complete bundle.
// The ring is not consumed and can keep recording afterwards.
func (r *Ring) DumpTo(w io.Writer) error {
	cw, err := NewWriter(w, r.h)
	if err != nil {
		return err
	}
	start := 0
	if r.n >= int64(len(r.buf)) {
		start = r.next
	}
	for i := 0; i < r.Len(); i++ {
		cw.Consume(r.buf[(start+i)%len(r.buf)])
	}
	return cw.Close()
}
