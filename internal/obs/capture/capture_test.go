package capture

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"viampi/internal/obs"
)

func testHeader() Header {
	return Header{
		Clock:  ClockVirtual,
		World:  8,
		Seed:   42,
		Device: "clan",
		Policy: "ondemand",
		Label:  "CG.S",
		Config: "bench=CG class=S np=8 device=clan conn=ondemand wait=polling seed=42",
	}
}

// randomEvents generates a reproducible stream exercising every field shape:
// all kinds, negative payloads, repeated and fresh labels, zero and large
// time deltas, and occasional backwards wall-clock stamps.
func randomEvents(seed int64, n int) []obs.Event {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"", "MPI_Send", "MPI_Recv", "pinned_bytes", "compute", "x"}
	evs := make([]obs.Event, n)
	t := int64(0)
	for i := range evs {
		switch rng.Intn(8) {
		case 0: // same instant
		case 1:
			t -= rng.Int63n(50) // slightly out of order (wall-clock capture)
		default:
			t += rng.Int63n(100_000)
		}
		name := names[rng.Intn(len(names))]
		if rng.Intn(64) == 0 {
			name = string(rune('a'+rng.Intn(26))) + "-fresh" // grow the intern table
		}
		evs[i] = obs.Event{
			T:    t,
			Kind: obs.Kind(1 + rng.Intn(NumKinds)),
			Rank: int32(rng.Intn(16)),
			Peer: int32(rng.Intn(17) - 1),
			A:    rng.Int63n(1<<40) - (1 << 39),
			B:    rng.Int63n(1 << 30),
			C:    int64(i),
			Name: name,
		}
	}
	return evs
}

func encode(t *testing.T, h Header, evs []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, e := range evs {
		w.Consume(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Fatalf("Bytes() = %d, buffer holds %d", w.Bytes(), buf.Len())
	}
	return buf.Bytes()
}

// TestRoundTrip is the encode/decode property test: for several sizes and
// seeds, every decoded event must equal its original exactly, and the header
// must survive unchanged.
func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 20000} {
		for seed := int64(1); seed <= 3; seed++ {
			evs := randomEvents(seed, n)
			raw := encode(t, testHeader(), evs)
			b, err := ReadBundle(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("n=%d seed=%d: ReadBundle: %v", n, seed, err)
			}
			want := testHeader()
			want.Version = Version // stamped by NewWriter
			if b.Header != want {
				t.Fatalf("n=%d seed=%d: header changed: %+v", n, seed, b.Header)
			}
			if len(b.Events) != len(evs) {
				t.Fatalf("n=%d seed=%d: %d events decoded, want %d", n, seed, len(b.Events), n)
			}
			for i := range evs {
				if b.Events[i] != evs[i] {
					t.Fatalf("n=%d seed=%d: event %d: got %+v want %+v", n, seed, i, b.Events[i], evs[i])
				}
			}
		}
	}
}

// TestEncodeDeterministic: the same stream encodes to the same bytes.
func TestEncodeDeterministic(t *testing.T) {
	evs := randomEvents(9, 5000)
	a := encode(t, testHeader(), evs)
	b := encode(t, testHeader(), evs)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same stream differ")
	}
}

// TestHeaderRoundTripWall checks the wall-clock header variant and the
// digest accessor.
func TestHeaderRoundTripWall(t *testing.T) {
	h := Header{Clock: ClockWall, World: 4, Device: "tcp", Policy: "static-p2p", Label: "tcpring"}
	raw := encode(t, h, nil)
	b, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if b.Header.Clock != ClockWall || b.Header.Clock.String() != "wall" {
		t.Fatalf("clock = %v", b.Header.Clock)
	}
	if got, want := b.Header.Digest(), h.Digest(); got != want || len(got) != 16 {
		t.Fatalf("digest round-trip: got %q want %q", got, want)
	}
}

// TestTruncation cuts a valid bundle at every interesting prefix length and
// requires a classified error — never a silent success, never a panic.
func TestTruncation(t *testing.T) {
	evs := randomEvents(4, 200)
	raw := encode(t, testHeader(), evs)
	for cut := 0; cut < len(raw); cut++ {
		if cut > 300 && cut < len(raw)-300 && cut%97 != 0 {
			continue // sample the middle, cover both ends densely
		}
		_, err := ReadBundle(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: truncated bundle decoded without error", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: unclassified error %v", cut, err)
		}
	}
}

// TestCorruption flips bytes across the whole bundle: every read must either
// fail with a classified error or — when the flip lands in a value varint —
// still decode cleanly; what it must never do is panic or mislabel the file.
func TestCorruption(t *testing.T) {
	evs := randomEvents(5, 100)
	raw := encode(t, testHeader(), evs)
	for pos := 0; pos < len(raw); pos += 7 {
		mut := bytes.Clone(raw)
		mut[pos] ^= 0xff
		b, err := ReadBundle(bytes.NewReader(mut))
		if err == nil {
			// A flip inside an event payload varint is legitimately
			// undetectable; the decode must still be shaped sanely.
			if len(b.Events) > len(evs) {
				t.Fatalf("pos=%d: corrupt decode grew the stream: %d events", pos, len(b.Events))
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("pos=%d: unclassified error %v", pos, err)
		}
	}
}

// TestCorruptionSpecific pins the individual guards: magic, version, clock,
// digest, kind range, label index, trailer count, trailing garbage.
func TestCorruptionSpecific(t *testing.T) {
	evs := []obs.Event{{T: 10, Kind: obs.EvMsgSend, Rank: 1, Peer: 2, A: 64, C: 0, Name: "m"}}
	raw := encode(t, testHeader(), evs)

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion},
		{"clock", func(b []byte) []byte { b[5] = 9; return b }, ErrCorrupt},
		{"digest", func(b []byte) []byte {
			b[bytes.Index(b, []byte("bench="))] ^= 1 // config text no longer matches its digest
			return b
		}, ErrCorrupt},
		{"kind", func(b []byte) []byte {
			b[headerLen(b)] = 0xef // first event's kind byte far beyond NumKinds
			return b
		}, ErrCorrupt},
		{"trailer", func(b []byte) []byte { b[len(b)-1] = 7; return b }, ErrCorrupt}, // event count lie
		{"trailing", func(b []byte) []byte { return append(b, 0xaa) }, ErrCorrupt},
		{"empty", func(b []byte) []byte { return nil }, ErrBadMagic},
	}
	for _, tc := range cases {
		_, err := ReadBundle(bytes.NewReader(tc.mut(bytes.Clone(raw))))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// headerLen returns where the event stream starts in a testHeader() bundle:
// NewWriter flushes exactly the header, so an event-free writer's byte count
// is the header length.
func headerLen([]byte) int {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, testHeader()); err != nil {
		panic(err)
	}
	return buf.Len()
}

// TestBadLabelIndex hand-builds a record whose label reference skips ahead
// of the intern table.
func TestBadLabelIndex(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Replace the end marker with one event whose name index is 5 (table
	// is empty, so only 0 or 1 are legal).
	evt := []byte{byte(obs.EvGauge), 2, 2, 2, 0, 0, 0, 5}
	mut := append(append(bytes.Clone(raw[:len(raw)-2]), evt...), 0, 1)
	_, err = ReadBundle(bytes.NewReader(mut))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad label index: got %v, want ErrCorrupt", err)
	}
}

// TestWriterRejectsBadKind: events outside the encodable range poison the
// writer instead of producing an undecodable file.
func TestWriterRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.Consume(obs.Event{Kind: obs.Kind(NumKinds + 1)})
	if w.Err() == nil || w.Close() == nil {
		t.Fatal("out-of-range kind accepted")
	}
}

// TestReaderStreamsAfterEOF: Next keeps returning io.EOF once finished.
func TestReaderStreamsAfterEOF(t *testing.T) {
	raw := encode(t, testHeader(), randomEvents(2, 3))
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d events, want 3", n)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}
}

// TestRing checks retention, eviction accounting, and that a dump decodes to
// exactly the newest events in order.
func TestRing(t *testing.T) {
	evs := randomEvents(3, 100)
	r := NewRing(testHeader(), 16)
	for _, e := range evs[:10] {
		r.Consume(e)
	}
	if r.Len() != 10 || r.Dropped() != 0 {
		t.Fatalf("partial fill: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	for _, e := range evs[10:] {
		r.Consume(e)
	}
	if r.Len() != 16 || r.Dropped() != 84 {
		t.Fatalf("full: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	var buf bytes.Buffer
	if err := r.DumpTo(&buf); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	b, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode dump: %v", err)
	}
	want := evs[84:]
	if len(b.Events) != len(want) {
		t.Fatalf("dump holds %d events, want %d", len(b.Events), len(want))
	}
	for i := range want {
		if b.Events[i] != want[i] {
			t.Fatalf("dump event %d: got %+v want %+v", i, b.Events[i], want[i])
		}
	}
	// The ring keeps recording after a dump.
	r.Consume(evs[0])
	if r.Dropped() != 85 {
		t.Fatalf("post-dump consume: dropped=%d", r.Dropped())
	}
}

// TestConsumeSteadyStateAllocs pins the hot-path contract: once the intern
// table is warm and the buffer grown, Consume allocates nothing.
func TestConsumeSteadyStateAllocs(t *testing.T) {
	w, err := NewWriter(io.Discard, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	e := obs.Event{T: 1, Kind: obs.EvMsgSend, Rank: 1, Peer: 2, A: 64, Name: "MPI_Send"}
	w.Consume(e) // warm the intern table
	allocs := testing.AllocsPerRun(2000, func() {
		e.T += 100
		w.Consume(e)
	})
	if allocs != 0 {
		t.Fatalf("Consume allocates %.1f/op at steady state, want 0", allocs)
	}
	r := NewRing(testHeader(), 64)
	allocs = testing.AllocsPerRun(2000, func() {
		r.Consume(e)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Consume allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkConsume is the micro rail behind the capture-overhead snapshot:
// ns/event and bytes/event for the encoder alone.
func BenchmarkConsume(b *testing.B) {
	w, err := NewWriter(io.Discard, testHeader())
	if err != nil {
		b.Fatal(err)
	}
	e := obs.Event{T: 1, Kind: obs.EvMsgSend, Rank: 1, Peer: 2, A: 64, Name: "MPI_Send"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.T += 100
		w.Consume(e)
	}
	b.SetBytes(w.Bytes() / int64(b.N))
}
