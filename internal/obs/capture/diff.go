package capture

import (
	"fmt"
	"io"

	"viampi/internal/obs"
)

// Run diffing. Two bundles of the same workload are aligned event-by-event:
// the k-th occurrence of (rank, kind) in one stream pairs with the k-th
// occurrence of the same (rank, kind) in the other. That alignment is stable
// under timing shifts — if a different seed or policy makes rank 3's second
// connect happen later, it is still rank 3's second connect — so the diff
// can separate *structural* divergence (different events happened, or the
// same events carried different payloads) from *timing* divergence (the same
// events at different timestamps), and point at the exact first event where
// two runs stopped being the same run.

// Divergence locates the first aligned position where the two streams
// structurally disagree.
type Divergence struct {
	Index int      // position in the stream that exhibits it (A's, or B's for extra events)
	Kind  obs.Kind // kind of the divergent event
	Rank  int32
	Seq   int    // occurrence index of (rank, kind) at the divergence, 0-based
	Field string // "peer", "a", "b", "c", "name", "missing in B", "only in B"
	EvA   *obs.Event
	EvB   *obs.Event // nil when the event has no counterpart
}

// KindDelta aggregates one event kind across both runs: how many each side
// emitted, and the mean timestamp shift over the aligned pairs.
type KindDelta struct {
	Kind    obs.Kind
	CountA  int64
	CountB  int64
	Aligned int64
	SumDtNs int64 // sum of (tB - tA) over aligned pairs
}

// MeanDtNs returns the mean timestamp shift B-relative-to-A in nanoseconds.
func (k KindDelta) MeanDtNs() int64 {
	if k.Aligned == 0 {
		return 0
	}
	return k.SumDtNs / k.Aligned
}

// DiffResult is the full comparison of two bundles.
type DiffResult struct {
	HdrA, HdrB Header
	TotalA     int64
	TotalB     int64
	First      *Divergence // nil when the streams align structurally
	Kinds      []KindDelta // ascending kind order; only kinds either side emitted
	TimeEqual  bool        // aligned pairs also share identical timestamps
}

// Identical reports whether the two bundles describe the same run record:
// same events, same payloads, same timestamps.
func (d *DiffResult) Identical() bool {
	return d.First == nil && d.TimeEqual && d.TotalA == d.TotalB
}

// alignKey is the pairing identity: which endpoint emitted which kind.
type alignKey struct {
	rank int32
	kind obs.Kind
}

// Diff aligns two bundles and reports where and how they differ.
func Diff(a, b *Bundle) *DiffResult {
	d := &DiffResult{
		HdrA:      a.Header,
		HdrB:      b.Header,
		TotalA:    int64(len(a.Events)),
		TotalB:    int64(len(b.Events)),
		TimeEqual: true,
	}

	// Index B: per (rank, kind), the stream positions in order of occurrence.
	bIdx := make(map[alignKey][]int, 64)
	for i, e := range b.Events {
		k := alignKey{e.Rank, e.Kind}
		bIdx[k] = append(bIdx[k], i)
	}

	// Per-kind aggregates live in a dense array so emission order never
	// depends on map iteration.
	var agg [NumKinds + 1]KindDelta
	for _, e := range b.Events {
		agg[e.Kind].CountB++
	}

	// Walk A in stream order, pairing each event with its same-occurrence
	// counterpart in B.
	occ := make(map[alignKey]int, 64)
	for i := range a.Events {
		ea := &a.Events[i]
		agg[ea.Kind].CountA++
		k := alignKey{ea.Rank, ea.Kind}
		seq := occ[k]
		occ[k] = seq + 1
		peers := bIdx[k]
		if seq >= len(peers) {
			if d.First == nil {
				d.First = &Divergence{Index: i, Kind: ea.Kind, Rank: ea.Rank, Seq: seq, Field: "missing in B", EvA: ea}
			}
			continue
		}
		eb := &b.Events[peers[seq]]
		agg[ea.Kind].Aligned++
		agg[ea.Kind].SumDtNs += eb.T - ea.T
		if eb.T != ea.T {
			d.TimeEqual = false
		}
		if d.First == nil {
			if f := payloadDiff(ea, eb); f != "" {
				d.First = &Divergence{Index: i, Kind: ea.Kind, Rank: ea.Rank, Seq: seq, Field: f, EvA: ea, EvB: eb}
			}
		}
	}

	// Events B emitted beyond A's occurrence counts have no counterpart; the
	// first such position is the divergence if A's walk found none.
	if d.First == nil {
		occB := make(map[alignKey]int, 64)
		for i := range b.Events {
			eb := &b.Events[i]
			k := alignKey{eb.Rank, eb.Kind}
			seq := occB[k]
			occB[k] = seq + 1
			if seq >= occ[k] {
				d.First = &Divergence{Index: i, Kind: eb.Kind, Rank: eb.Rank, Seq: seq, Field: "only in B", EvB: eb}
				break
			}
		}
	}

	for kind := 1; kind <= NumKinds; kind++ {
		if agg[kind].CountA == 0 && agg[kind].CountB == 0 {
			continue
		}
		agg[kind].Kind = obs.Kind(kind)
		d.Kinds = append(d.Kinds, agg[kind])
	}
	return d
}

// payloadDiff names the first payload field two aligned events disagree on,
// or "" when they match. Timestamps are deliberately not payload: timing
// shifts are reported in aggregate, not as divergence.
func payloadDiff(a, b *obs.Event) string {
	switch {
	case a.Peer != b.Peer:
		return "peer"
	case a.A != b.A:
		return "a"
	case a.B != b.B:
		return "b"
	case a.C != b.C:
		return "c"
	case a.Name != b.Name:
		return "name"
	}
	return ""
}

// WriteText renders the diff as a fixed-layout report: header identity,
// verdict, first divergence (if any), then the per-kind table. Deterministic
// for fixed inputs.
func (d *DiffResult) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("bundle A: world=%d seed=%d device=%s policy=%s label=%q clock=%s events=%d\n",
		d.HdrA.World, d.HdrA.Seed, d.HdrA.Device, d.HdrA.Policy, d.HdrA.Label, d.HdrA.Clock, d.TotalA)
	ew.printf("bundle B: world=%d seed=%d device=%s policy=%s label=%q clock=%s events=%d\n",
		d.HdrB.World, d.HdrB.Seed, d.HdrB.Device, d.HdrB.Policy, d.HdrB.Label, d.HdrB.Clock, d.TotalB)
	switch {
	case d.Identical():
		ew.printf("verdict: identical (same events, payloads, and timestamps)\n")
	case d.First == nil:
		ew.printf("verdict: structurally equal, timing differs\n")
	default:
		ew.printf("verdict: diverged\n")
		f := d.First
		ew.printf("first divergence: event %d, kind=%s rank=%d occurrence=%d field=%s\n",
			f.Index, f.Kind, f.Rank, f.Seq, f.Field)
		if f.EvA != nil {
			ew.printf("  A: %s\n", fmtEvent(f.EvA))
		}
		if f.EvB != nil {
			ew.printf("  B: %s\n", fmtEvent(f.EvB))
		}
	}
	ew.printf("%-16s %10s %10s %10s %14s\n", "kind", "count A", "count B", "aligned", "mean dT (ns)")
	for _, kd := range d.Kinds {
		ew.printf("%-16s %10d %10d %10d %14d\n",
			kd.Kind.String(), kd.CountA, kd.CountB, kd.Aligned, kd.MeanDtNs())
	}
	return ew.err
}

func fmtEvent(e *obs.Event) string {
	return fmt.Sprintf("t=%d %s rank=%d peer=%d a=%d b=%d c=%d name=%q",
		e.T, e.Kind, e.Rank, e.Peer, e.A, e.B, e.C, e.Name)
}

// errWriter accumulates the first write error so the report body stays free
// of per-line error plumbing (same shape as obs's perfettoWriter).
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...interface{}) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
