package obs

import (
	"bytes"
	"strings"
	"testing"
)

// goldenKindNames pins the wire-stable name of every event kind. Adding a
// kind without extending this table (and the String/consume/writeEvent
// switches the exhaustive analyzer guards) fails here.
var goldenKindNames = map[Kind]string{
	EvProcStart:    "proc.start",
	EvProcEnd:      "proc.end",
	EvViCreate:     "vi.create",
	EvConnRequest:  "conn.request",
	EvConnAccept:   "conn.accept",
	EvConnReject:   "conn.reject",
	EvConnUp:       "conn.up",
	EvFifoPark:     "fifo.park",
	EvFifoDrain:    "fifo.drain",
	EvEagerSend:    "proto.eager",
	EvRts:          "proto.rts",
	EvCts:          "proto.cts",
	EvRdma:         "proto.rdma",
	EvFin:          "proto.fin",
	EvCreditGrant:  "credit.grant",
	EvCreditStall:  "credit.stall",
	EvUnexpected:   "umq.append",
	EvFrameEnqueue: "frame.enqueue",
	EvFrameDeliver: "frame.deliver",
	EvMsgSend:      "msg.send",
	EvMsgRecv:      "msg.recv",
	EvCallBegin:    "call.begin",
	EvCallEnd:      "call.end",
	EvGauge:        "gauge",
	EvDisconnect:   "conn.disconnect",
	EvEvict:        "conn.evict",
	EvConnRetry:    "conn.retry",
	EvReconnect:    "conn.reconnect",
	EvPhase:        "phase",
	EvRunEnd:       "run.end",
}

// TestKindStringCoversEveryKind walks the full contiguous kind range and
// checks every member has a distinct, pinned, non-"unknown" name, and that
// values outside the range fall back to "unknown".
func TestKindStringCoversEveryKind(t *testing.T) {
	if len(goldenKindNames) != int(EvRunEnd) {
		t.Fatalf("golden table has %d names, kind range has %d members", len(goldenKindNames), int(EvRunEnd))
	}
	seen := map[string]Kind{}
	for k := EvProcStart; k <= EvRunEnd; k++ {
		name := k.String()
		if name == "unknown" {
			t.Errorf("kind %d stringifies to \"unknown\"; backfill the String switch", int(k))
			continue
		}
		if want := goldenKindNames[k]; name != want {
			t.Errorf("kind %d: String() = %q, want %q", int(k), name, want)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", int(prev), int(k), name)
		}
		seen[name] = k
	}
	if Kind(0).String() != "unknown" {
		t.Errorf("Kind(0).String() = %q, want \"unknown\"", Kind(0).String())
	}
	if out := (EvRunEnd + 1).String(); out != "unknown" {
		t.Errorf("out-of-range kind stringifies to %q, want \"unknown\"", out)
	}
}

// perfettoSilentKinds are the kinds writeEvent deliberately drops: process
// lifetime is implied by the spans, and per-frame events are metrics-only
// (their volume would drown the timeline).
var perfettoSilentKinds = map[Kind]bool{
	EvProcStart:    true,
	EvProcEnd:      true,
	EvFrameEnqueue: true,
	EvFrameDeliver: true,
	EvPhase:        true,
	EvRunEnd:       true,
}

// TestPerfettoWriteEventCoversEveryKind feeds one event of every kind
// through the trace exporter and checks each either emits a line or is on
// the documented silent list — a new kind cannot silently vanish from
// traces.
func TestPerfettoWriteEventCoversEveryKind(t *testing.T) {
	for k := EvProcStart; k <= EvRunEnd; k++ {
		var buf bytes.Buffer
		pw := &perfettoWriter{w: &buf, first: true}
		// Peer differs from Rank so EvMsgSend draws its flow arrow.
		writeEvent(pw, 0, Event{T: 1000, Kind: k, Rank: 1, Peer: 2, Name: "x"})
		if pw.err != nil {
			t.Fatalf("kind %s: writeEvent error: %v", k, pw.err)
		}
		got := buf.String()
		if perfettoSilentKinds[k] {
			if got != "" {
				t.Errorf("kind %s is on the silent list but emitted %q", k, got)
			}
			continue
		}
		if got == "" {
			t.Errorf("kind %s emitted nothing and is not on the documented silent list", k)
			continue
		}
		if !strings.Contains(got, `"ph":`) {
			t.Errorf("kind %s emitted a line without a trace phase: %q", k, got)
		}
	}
}
