package obs

import (
	"bytes"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of everything and a histogram
// whose percentiles land in three different buckets: two observations in
// le_10, one in le_100, one in le_1000, one overflow.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Inc("msgs", 7)
	reg.SetGauge("depth", 5)
	reg.SetGauge("depth", 2)
	h := reg.Hist("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 7, 50, 500, 1500} {
		h.Observe(v)
	}
	return reg
}

// TestMetricsTextGolden pins the text emission byte-for-byte: existing
// columns in their original order, percentiles appended after max.
func TestMetricsTextGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WriteText(&buf)
	want := strings.Join([]string{
		"counter msgs                                    7",
		"gauge   depth                                   2 (max 5)",
		"hist    lat                          n=5 min=5 mean=412.4 max=1500 p50=100 p90=1500 p99=1500",
		"                                       <=10           2",
		"                                       <=100          1",
		"                                       <=1000         1",
		"                                       +Inf          1",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("text emission drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsCSVGolden pins the CSV emission: p50/p90/p99 rows sit between
// max and the bucket rows, every pre-existing row unchanged.
func TestMetricsCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WriteCSV(&buf)
	want := strings.Join([]string{
		"kind,name,field,value",
		"counter,msgs,value,7",
		"gauge,depth,cur,2",
		"gauge,depth,max,5",
		"hist,lat,count,5",
		"hist,lat,sum,2062",
		"hist,lat,min,5",
		"hist,lat,max,1500",
		"hist,lat,p50,100",
		"hist,lat,p90,1500",
		"hist,lat,p99,1500",
		"hist,lat,le_10,2",
		"hist,lat,le_100,1",
		"hist,lat,le_1000,1",
		"hist,lat,le_inf,1",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("CSV emission drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsJSONGolden pins the JSON emission: percentile fields follow
// max, ahead of the bucket array.
func TestMetricsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WriteJSON(&buf)
	want := `{"counters":{"msgs":7},"gauges":{"depth":{"cur":2,"max":5}},` +
		`"histograms":{"lat":{"count":5,"sum":2062,"min":5,"max":1500,` +
		`"p50":100,"p90":1500,"p99":1500,"buckets":[{"le":10,"n":2},` +
		`{"le":100,"n":1},{"le":1000,"n":1},{"le":"inf","n":1}]}}}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("JSON emission drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestQuantile covers the estimator's edges: empty, single observation
// capped at the observed max, exact bucket walks, and the overflow bucket.
func TestQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(50); got != 0 {
		t.Errorf("nil histogram Quantile = %d, want 0", got)
	}
	h := &Histogram{bounds: []int64{10, 100}, counts: make([]int64, 3)}
	if got := h.Quantile(50); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}
	h.Observe(42)
	if got := h.Quantile(50); got != 42 {
		t.Errorf("single-value p50 = %d, want 42 (bucket bound capped at max)", got)
	}
	if got := h.Quantile(100); got != 42 {
		t.Errorf("single-value p100 = %d, want 42", got)
	}
	// 90 fast, 10 slow: p50/p90 in the first bucket, p99 in overflow.
	h2 := &Histogram{bounds: []int64{10, 100}, counts: make([]int64, 3)}
	for i := 0; i < 90; i++ {
		h2.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(200)
	}
	if got := h2.Quantile(50); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h2.Quantile(90); got != 10 {
		t.Errorf("p90 = %d, want 10", got)
	}
	if got := h2.Quantile(99); got != 200 {
		t.Errorf("p99 = %d, want 200 (overflow bucket reports max)", got)
	}
}
