package obs

// Recorder is a bus subscriber that retains the full event log, optionally
// split into named runs (cmd/figures records every measurement run of an
// experiment into one recorder; each run becomes a Perfetto process).
type Recorder struct {
	runs []run
	bus  *Bus
	sub  Sub
}

type run struct {
	label  string
	events []Event
}

// NewRecorder returns a recorder with one open (unnamed) run.
func NewRecorder() *Recorder {
	return &Recorder{runs: []run{{}}}
}

// Attach subscribes the recorder to b. A nil bus is ignored.
func (r *Recorder) Attach(b *Bus) {
	if b == nil {
		return
	}
	r.bus, r.sub = b, b.Subscribe(r.record)
}

// Detach unsubscribes the recorder from the bus it was attached to; the
// recorded runs remain readable.
func (r *Recorder) Detach() {
	if r.bus != nil {
		r.bus.Unsubscribe(r.sub)
		r.bus = nil
	}
}

func (r *Recorder) record(e Event) {
	cur := &r.runs[len(r.runs)-1]
	cur.events = append(cur.events, e)
}

// NextRun closes the current run and starts a new one labelled label.
// If the current run is empty it is relabelled instead, so the first
// NextRun before any traffic does not leave a ghost run.
func (r *Recorder) NextRun(label string) {
	cur := &r.runs[len(r.runs)-1]
	if len(cur.events) == 0 {
		cur.label = label
		return
	}
	r.runs = append(r.runs, run{label: label})
}

// Events returns the events of the current (last) run.
func (r *Recorder) Events() []Event {
	return r.runs[len(r.runs)-1].events
}

// Len returns the total number of recorded events across runs.
func (r *Recorder) Len() int {
	n := 0
	for _, ru := range r.runs {
		n += len(ru.events)
	}
	return n
}
