package obs

// Collector folds bus events into a Registry: per-kind counters, sampled
// gauges, and the derived histograms (message latency from send→recv pairs,
// connect time from request→up pairs, egress serialization wait).
type Collector struct {
	reg *Registry

	// In-flight matching state. Keys are composed rank pairs; maps are
	// lookup/insert/delete only — never ranged — so no order can leak.
	msgSent   map[msgKey]int64 // (src,dst,seq) -> send timestamp
	connStart map[uint64]int64 // (rank,peer) -> request timestamp
	latency   *Histogram
	connect   *Histogram
	egress    *Histogram
	reconn    *Histogram

	bus *Bus
	sub Sub
}

type msgKey struct {
	src, dst int32
	seq      int64
}

// Default histogram bucket bounds in nanoseconds: 1 µs … 100 ms by decades
// with a 1-2-5 ladder, wide enough for both the cLAN's ~25 µs latencies and
// static-cs's multi-ms connects.
func timeBuckets() []int64 {
	return []int64{
		1_000, 2_000, 5_000,
		10_000, 20_000, 50_000,
		100_000, 200_000, 500_000,
		1_000_000, 2_000_000, 5_000_000,
		10_000_000, 20_000_000, 50_000_000, 100_000_000,
	}
}

// NewCollector returns a collector writing into reg.
func NewCollector(reg *Registry) *Collector {
	c := &Collector{
		reg:       reg,
		msgSent:   map[msgKey]int64{},
		connStart: map[uint64]int64{},
	}
	c.latency = reg.Hist("msg.latency_ns", timeBuckets())
	c.connect = reg.Hist("conn.setup_ns", timeBuckets())
	c.egress = reg.Hist("frame.egress_wait_ns", timeBuckets())
	c.reconn = reg.Hist("conn.reconnect_ns", timeBuckets())
	return c
}

// Attach subscribes the collector to b. A nil bus is ignored.
func (c *Collector) Attach(b *Bus) {
	if b == nil {
		return
	}
	c.bus, c.sub = b, b.Subscribe(c.consume)
}

// Detach unsubscribes the collector; the registry keeps its counts.
func (c *Collector) Detach() {
	if c.bus != nil {
		c.bus.Unsubscribe(c.sub)
		c.bus = nil
	}
}

func pairKey(rank, peer int32) uint64 {
	return uint64(uint32(rank))<<32 | uint64(uint32(peer))
}

func (c *Collector) consume(e Event) {
	c.reg.Inc("events."+e.Kind.String(), 1)
	switch e.Kind {
	case EvMsgSend:
		if e.Peer != e.Rank { // self-sends never cross the wire
			c.msgSent[msgKey{e.Rank, e.Peer, e.C}] = e.T
		}
		c.reg.Inc("msg.bytes_sent", e.A)
	case EvMsgRecv:
		k := msgKey{e.Peer, e.Rank, e.C}
		if t0, ok := c.msgSent[k]; ok {
			delete(c.msgSent, k)
			c.latency.Observe(e.T - t0)
		}
	case EvConnRequest, EvConnAccept:
		c.connStart[pairKey(e.Rank, e.Peer)] = e.T
	case EvConnUp:
		k := pairKey(e.Rank, e.Peer)
		if t0, ok := c.connStart[k]; ok {
			delete(c.connStart, k)
			c.connect.Observe(e.T - t0)
		}
	case EvFrameEnqueue:
		c.egress.Observe(e.B)
		c.reg.Inc("frame.bytes", e.A)
	case EvFifoPark:
		c.reg.SetGauge("fifo.depth", e.A)
	case EvFifoDrain:
		c.reg.Inc("fifo.drained_total", e.A)
	case EvCreditGrant:
		c.reg.Inc("credit.granted", e.A)
	case EvEagerSend, EvRts, EvCts, EvFin:
		c.reg.Inc("credit.granted", e.B) // piggybacked returns
	case EvCreditStall:
		c.reg.SetGauge("flowq.depth", e.A)
	case EvUnexpected:
		c.reg.SetGauge("umq.depth", e.A)
	case EvDisconnect:
		c.reg.Inc("conn.disconnects", 1)
	case EvEvict:
		c.reg.Inc("conn.evictions", 1)
	case EvConnRetry:
		c.reg.Inc("conn.retries", 1)
	case EvReconnect:
		c.reconn.Observe(e.A)
	case EvGauge:
		c.reg.SetGauge(e.Name, e.A)
	case EvProcStart, EvProcEnd, EvViCreate, EvConnReject, EvRdma,
		EvFrameDeliver, EvCallBegin, EvCallEnd, EvPhase, EvRunEnd:
		// Counted by the generic events.* counter above; no derived metric.
	}
}
