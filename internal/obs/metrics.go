package obs

import (
	"fmt"
	"io"
	"sort"
)

// Registry holds named counters, gauges and fixed-bucket histograms. It is
// single-threaded like the rest of the simulation (callers outside the
// simulated world, e.g. tcpvia, guard it with their own locks). A nil
// *Registry ignores all updates, mirroring the nil-bus fast path.
type Registry struct {
	counters map[string]int64
	gauges   map[string]*gaugeVal
	hists    map[string]*Histogram
}

type gaugeVal struct {
	cur int64
	max int64
}

// Histogram counts observations into fixed upper-bound buckets (the last
// bucket is implicit +Inf). Bounds are set at creation and never change, so
// two runs bucket identically.
type Histogram struct {
	bounds []int64 // ascending upper bounds
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64
	n      int64
	min    int64
	max    int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]*gaugeVal{},
		hists:    map[string]*Histogram{},
	}
}

// Inc adds delta to the named counter.
func (g *Registry) Inc(name string, delta int64) {
	if g == nil {
		return
	}
	g.counters[name] += delta
}

// Counter returns the named counter's value (0 if absent).
func (g *Registry) Counter(name string) int64 {
	if g == nil {
		return 0
	}
	return g.counters[name]
}

// SetGauge records the named gauge's current value and tracks its maximum.
func (g *Registry) SetGauge(name string, v int64) {
	if g == nil {
		return
	}
	gv := g.gauges[name]
	if gv == nil {
		gv = &gaugeVal{}
		g.gauges[name] = gv
	}
	gv.cur = v
	if v > gv.max {
		gv.max = v
	}
}

// Gauge returns the named gauge's (current, max) values.
func (g *Registry) Gauge(name string) (cur, max int64) {
	if g == nil {
		return 0, 0
	}
	if gv := g.gauges[name]; gv != nil {
		return gv.cur, gv.max
	}
	return 0, 0
}

// Hist returns the named histogram, creating it with the given bucket upper
// bounds on first use (later bounds arguments are ignored).
func (g *Registry) Hist(name string, bounds []int64) *Histogram {
	if g == nil {
		return nil
	}
	h := g.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		g.hists[name] = h
	}
	return h
}

// Observe adds one observation. Safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns a deterministic upper-bound estimate of the p-th
// percentile (0 < p <= 100): the upper bound of the bucket holding the
// ceil(n*p/100)-th observation, capped at the observed maximum (which makes
// the overflow bucket exact and keeps single-value histograms sensible).
// Integer arithmetic only, so every run reports identical percentiles.
// Returns 0 when empty or nil.
func (h *Histogram) Quantile(p int) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	target := (h.n*int64(p) + 99) / 100
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) || h.bounds[i] > h.max {
				return h.max
			}
			return h.bounds[i]
		}
	}
	return h.max
}

// sortedKeys collects and sorts map keys — the deterministic-iteration
// idiom the maporder analyzer recognizes.
func sortedCounterKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedGaugeKeys(m map[string]*gaugeVal) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedHistKeys(m map[string]*Histogram) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteText renders the registry as a human-readable table, sorted by name.
func (g *Registry) WriteText(w io.Writer) {
	for _, k := range sortedCounterKeys(g.counters) {
		fmt.Fprintf(w, "counter %-28s %12d\n", k, g.counters[k])
	}
	for _, k := range sortedGaugeKeys(g.gauges) {
		gv := g.gauges[k]
		fmt.Fprintf(w, "gauge   %-28s %12d (max %d)\n", k, gv.cur, gv.max)
	}
	for _, k := range sortedHistKeys(g.hists) {
		h := g.hists[k]
		fmt.Fprintf(w, "hist    %-28s n=%d min=%d mean=%.1f max=%d p50=%d p90=%d p99=%d\n",
			k, h.n, h.min, h.Mean(), h.max, h.Quantile(50), h.Quantile(90), h.Quantile(99))
		for i, b := range h.bounds {
			if h.counts[i] > 0 {
				fmt.Fprintf(w, "        %-28s   <=%-12d %d\n", "", b, h.counts[i])
			}
		}
		if h.counts[len(h.bounds)] > 0 {
			fmt.Fprintf(w, "        %-28s   +Inf          %d\n", "", h.counts[len(h.bounds)])
		}
	}
}

// WriteCSV renders the registry as rows of kind,name,field,value.
func (g *Registry) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "kind,name,field,value")
	for _, k := range sortedCounterKeys(g.counters) {
		fmt.Fprintf(w, "counter,%s,value,%d\n", k, g.counters[k])
	}
	for _, k := range sortedGaugeKeys(g.gauges) {
		gv := g.gauges[k]
		fmt.Fprintf(w, "gauge,%s,cur,%d\n", k, gv.cur)
		fmt.Fprintf(w, "gauge,%s,max,%d\n", k, gv.max)
	}
	for _, k := range sortedHistKeys(g.hists) {
		h := g.hists[k]
		fmt.Fprintf(w, "hist,%s,count,%d\n", k, h.n)
		fmt.Fprintf(w, "hist,%s,sum,%d\n", k, h.sum)
		fmt.Fprintf(w, "hist,%s,min,%d\n", k, h.min)
		fmt.Fprintf(w, "hist,%s,max,%d\n", k, h.max)
		fmt.Fprintf(w, "hist,%s,p50,%d\n", k, h.Quantile(50))
		fmt.Fprintf(w, "hist,%s,p90,%d\n", k, h.Quantile(90))
		fmt.Fprintf(w, "hist,%s,p99,%d\n", k, h.Quantile(99))
		for i, b := range h.bounds {
			fmt.Fprintf(w, "hist,%s,le_%d,%d\n", k, b, h.counts[i])
		}
		fmt.Fprintf(w, "hist,%s,le_inf,%d\n", k, h.counts[len(h.bounds)])
	}
}

// WriteJSON renders the registry as deterministic JSON (keys sorted; the
// encoding is hand-written so output bytes are a pure function of content).
func (g *Registry) WriteJSON(w io.Writer) {
	fmt.Fprint(w, "{\"counters\":{")
	for i, k := range sortedCounterKeys(g.counters) {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "%q:%d", k, g.counters[k])
	}
	fmt.Fprint(w, "},\"gauges\":{")
	for i, k := range sortedGaugeKeys(g.gauges) {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		gv := g.gauges[k]
		fmt.Fprintf(w, "%q:{\"cur\":%d,\"max\":%d}", k, gv.cur, gv.max)
	}
	fmt.Fprint(w, "},\"histograms\":{")
	for i, k := range sortedHistKeys(g.hists) {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		h := g.hists[k]
		fmt.Fprintf(w, "%q:{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"buckets\":[",
			k, h.n, h.sum, h.min, h.max, h.Quantile(50), h.Quantile(90), h.Quantile(99))
		for j, b := range h.bounds {
			if j > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "{\"le\":%d,\"n\":%d}", b, h.counts[j])
		}
		if len(h.bounds) > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, "{\"le\":\"inf\",\"n\":%d}]}", h.counts[len(h.bounds)])
	}
	fmt.Fprintln(w, "}}")
}
