// Package obs is the virtual-time flight recorder: a typed event bus every
// simulation layer emits into, a metrics registry folded from those events,
// and exporters (Chrome trace-event / Perfetto JSON, phase decomposition)
// that make the paper's quantities — VIs created vs. used, where init time
// goes, credit stalls, FIFO parking — visible for any run.
//
// The package is a shared leaf like internal/trace: any layer may import it,
// it imports only the standard library, and it contains no clocks of its own.
// Every event carries the simnet virtual timestamp its emitter observed, so
// the whole layer is a pure function of the run's Config. When observability
// is off the bus handle is nil and Emit is a nil-receiver no-op costing one
// branch and zero allocations — the same fast path as the mpi profiler.
package obs

// Kind identifies an event type on the bus.
type Kind uint8

// Event kinds. The A/B/C payload fields are kind-specific; unused fields
// are zero. Rank is the emitting endpoint (world rank for mpi events, port
// endpoint for via/fabric events — identical under block placement), Peer
// the other party or -1.
const (
	// EvProcStart / EvProcEnd bracket a simulated process's lifetime.
	// Name = process name.
	EvProcStart Kind = iota + 1
	EvProcEnd

	// Connection lifecycle (via, core).
	EvViCreate    // A = VIs created on this port so far
	EvConnRequest // A = pair discriminator
	EvConnAccept  // A = pair discriminator
	EvConnReject  // A = pair discriminator
	EvConnUp      // A = pair discriminator
	EvFifoPark    // pre-posted send parked; A = FIFO depth after parking
	EvFifoDrain   // FIFO drained on channel-up; A = entries drained

	// Protocol events (mpi).
	EvEagerSend   // A = payload bytes, B = piggybacked credits
	EvRts         // A = message bytes, B = piggybacked credits
	EvCts         // A = message bytes, B = piggybacked credits
	EvRdma        // A = bytes RDMA-written
	EvFin         // B = piggybacked credits
	EvCreditGrant // explicit credit return; A = credits granted
	EvCreditStall // send parked awaiting credits; A = flow-queue depth
	EvUnexpected  // unexpected-queue append; A = queue depth after

	// Fabric events.
	EvFrameEnqueue // A = wire bytes, B = egress serialization wait (ns)
	EvFrameDeliver // A = wire bytes

	// User messages (one per point-to-point send; what trace.Recorder
	// consumes). A = bytes, B = tag, C = per-(src,dst) sequence number.
	EvMsgSend
	EvMsgRecv // A = bytes, B = tag, C = per-(src,dst) sequence number

	// MPI call spans (outermost entry point only). Name = call name.
	EvCallBegin
	EvCallEnd

	// EvGauge samples a named quantity at event time. Name = gauge name,
	// A = value (e.g. pinned bytes, posted descriptors).
	EvGauge

	// Teardown / reconnect lifecycle (via, core). Appended after EvGauge so
	// existing exported kind values stay wire-stable.
	EvDisconnect // remote side closed the connection; Peer = closing endpoint
	EvEvict      // channel evicted under the VI cap; A = live channels before
	EvConnRetry  // connection request re-issued; A = attempt number
	EvReconnect  // channel re-established after teardown; A = latency (ns)

	// Run epilogue (mpi). Appended so existing kind values stay wire-stable.
	// EvPhase reports one rank's charged time in one phase after finalize:
	// Name = phase name, A = phase index, B = charged nanoseconds. EvRunEnd
	// closes the stream once per run: T = the run's elapsed virtual time,
	// A = world size. Together they let a capture bundle re-render the phase
	// table offline, without re-running the simulation.
	EvPhase
	EvRunEnd
)

// String returns the kind's wire-stable name (used in exports).
func (k Kind) String() string {
	switch k {
	case EvProcStart:
		return "proc.start"
	case EvProcEnd:
		return "proc.end"
	case EvViCreate:
		return "vi.create"
	case EvConnRequest:
		return "conn.request"
	case EvConnAccept:
		return "conn.accept"
	case EvConnReject:
		return "conn.reject"
	case EvConnUp:
		return "conn.up"
	case EvFifoPark:
		return "fifo.park"
	case EvFifoDrain:
		return "fifo.drain"
	case EvEagerSend:
		return "proto.eager"
	case EvRts:
		return "proto.rts"
	case EvCts:
		return "proto.cts"
	case EvRdma:
		return "proto.rdma"
	case EvFin:
		return "proto.fin"
	case EvCreditGrant:
		return "credit.grant"
	case EvCreditStall:
		return "credit.stall"
	case EvUnexpected:
		return "umq.append"
	case EvFrameEnqueue:
		return "frame.enqueue"
	case EvFrameDeliver:
		return "frame.deliver"
	case EvMsgSend:
		return "msg.send"
	case EvMsgRecv:
		return "msg.recv"
	case EvCallBegin:
		return "call.begin"
	case EvCallEnd:
		return "call.end"
	case EvGauge:
		return "gauge"
	case EvDisconnect:
		return "conn.disconnect"
	case EvEvict:
		return "conn.evict"
	case EvConnRetry:
		return "conn.retry"
	case EvReconnect:
		return "conn.reconnect"
	case EvPhase:
		return "phase"
	case EvRunEnd:
		return "run.end"
	default:
		return "unknown"
	}
}

// Event is one record on the bus. The struct is passed by value and holds
// no pointers (Name aliases static strings), so emitting does not allocate.
type Event struct {
	T    int64 // virtual time in nanoseconds
	Kind Kind
	Rank int32 // emitting rank / endpoint
	Peer int32 // peer rank / endpoint, -1 when not applicable
	A    int64 // kind-specific (bytes, depth, discriminator, value)
	B    int64 // kind-specific (tag, credits, wait ns)
	C    int64 // kind-specific (sequence number)
	Name string
}

// Bus fans events out to subscribers. It is single-threaded like everything
// else in the simulation: subscribers run synchronously in emission order.
// A nil *Bus is the disabled state — Emit on it is a no-op.
type Bus struct {
	subs []func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Sub identifies one subscription on a Bus, for Unsubscribe. Subscription
// slots are never reused, so a stale Sub at worst re-clears a nil slot.
type Sub int

// Subscribe registers fn to receive every subsequent event and returns the
// handle that detaches it again. Every subscriber must keep the handle: a
// subscription without an Unsubscribe path pins its closure (and whatever
// sink it feeds) for the life of the bus.
func (b *Bus) Subscribe(fn func(Event)) Sub {
	b.subs = append(b.subs, fn)
	return Sub(len(b.subs) - 1)
}

// Unsubscribe detaches the subscription s. Safe on a nil bus and idempotent:
// the slot is nilled, not compacted, so other handles stay valid.
func (b *Bus) Unsubscribe(s Sub) {
	if b == nil || int(s) < 0 || int(s) >= len(b.subs) {
		return
	}
	b.subs[int(s)] = nil
}

// Emit delivers e to all subscribers. Safe (and free) on a nil bus.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	for _, fn := range b.subs {
		if fn == nil {
			continue
		}
		fn(e)
	}
}
