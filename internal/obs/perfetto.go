package obs

import (
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event / Perfetto JSON export. Every run in the recorder
// becomes a trace process (pid = run index), every rank a thread, MPI calls
// duration spans, connection setups async spans, user messages flow arrows,
// gauges counter tracks, and the remaining protocol/FIFO/credit events
// instants. The output is deterministic: event order is bus order, metadata
// is sorted, and timestamps are fixed-precision — byte-identical across runs
// with the same Config.

// perfettoWriter accumulates the first write error so the exporter body can
// stay free of per-line error plumbing.
type perfettoWriter struct {
	w     io.Writer
	err   error
	first bool
}

func (pw *perfettoWriter) emit(format string, args ...interface{}) {
	if pw.err != nil {
		return
	}
	if !pw.first {
		if _, pw.err = io.WriteString(pw.w, ",\n"); pw.err != nil {
			return
		}
	}
	pw.first = false
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// us renders a virtual-time nanosecond stamp as trace-event microseconds.
func us(tNs int64) string { return fmt.Sprintf("%d.%03d", tNs/1000, tNs%1000) }

// WritePerfetto writes the whole recorder (all runs) as Chrome trace-event
// JSON loadable by Perfetto or chrome://tracing.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	pw := &perfettoWriter{w: w, first: true}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for pid, ru := range r.runs {
		writeRun(pw, pid, ru)
	}
	if pw.err != nil {
		return pw.err
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

func writeRun(pw *perfettoWriter, pid int, ru run) {
	label := ru.label
	if label == "" {
		label = fmt.Sprintf("run %d", pid)
	}
	pw.emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`, pid, label)

	// Thread metadata: one line per rank seen, sorted.
	seen := map[int]bool{}
	for _, e := range ru.events {
		seen[int(e.Rank)] = true
	}
	ranks := make([]int, 0, len(seen))
	for rk := range seen {
		ranks = append(ranks, rk)
	}
	sort.Ints(ranks)
	for _, rk := range ranks {
		pw.emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"rank %d"}}`, pid, rk, rk)
	}

	for _, e := range ru.events {
		writeEvent(pw, pid, e)
	}
}

func writeEvent(pw *perfettoWriter, pid int, e Event) {
	switch e.Kind {
	case EvCallBegin:
		pw.emit(`{"ph":"B","pid":%d,"tid":%d,"ts":%s,"cat":"mpi","name":%q}`,
			pid, e.Rank, us(e.T), e.Name)
	case EvCallEnd:
		pw.emit(`{"ph":"E","pid":%d,"tid":%d,"ts":%s,"cat":"mpi","name":%q}`,
			pid, e.Rank, us(e.T), e.Name)
	case EvConnRequest, EvConnAccept:
		pw.emit(`{"ph":"b","pid":%d,"tid":%d,"ts":%s,"cat":"conn","id":"c%d:%d","name":"connect %d-%d"}`,
			pid, e.Rank, us(e.T), e.Rank, e.A, e.Rank, e.Peer)
	case EvConnUp:
		pw.emit(`{"ph":"e","pid":%d,"tid":%d,"ts":%s,"cat":"conn","id":"c%d:%d","name":"connect %d-%d"}`,
			pid, e.Rank, us(e.T), e.Rank, e.A, e.Rank, e.Peer)
	case EvMsgSend:
		if e.Peer == e.Rank {
			return // self-sends never cross the wire; no arrow to draw
		}
		pw.emit(`{"ph":"s","pid":%d,"tid":%d,"ts":%s,"cat":"msg","id":"m%d-%d-%d","name":"msg"}`,
			pid, e.Rank, us(e.T), e.Rank, e.Peer, e.C)
	case EvMsgRecv:
		pw.emit(`{"ph":"f","bp":"e","pid":%d,"tid":%d,"ts":%s,"cat":"msg","id":"m%d-%d-%d","name":"msg"}`,
			pid, e.Rank, us(e.T), e.Peer, e.Rank, e.C)
	case EvGauge:
		pw.emit(`{"ph":"C","pid":%d,"tid":%d,"ts":%s,"cat":"gauge","name":"%s/r%d","args":{"value":%d}}`,
			pid, e.Rank, us(e.T), e.Name, e.Rank, e.A)
	case EvViCreate, EvConnReject, EvFifoPark, EvFifoDrain,
		EvEagerSend, EvRts, EvCts, EvRdma, EvFin,
		EvCreditGrant, EvCreditStall, EvUnexpected,
		EvDisconnect, EvEvict, EvConnRetry, EvReconnect:
		pw.emit(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"cat":"proto","name":%q,"args":{"peer":%d,"a":%d,"b":%d}}`,
			pid, e.Rank, us(e.T), e.Kind.String(), e.Peer, e.A, e.B)
	case EvProcStart, EvProcEnd, EvFrameEnqueue, EvFrameDeliver, EvPhase, EvRunEnd:
		// Process lifetime is implied by the spans; frame events are
		// metrics-only (their volume would drown the timeline); the run
		// epilogue records (phase totals, elapsed) are table/summary inputs,
		// not timeline marks.
	}
}
