package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"viampi/internal/simnet"
	"viampi/internal/via"
)

// runRanks spawns n processes, each with a VIA port, waits for the address
// exchange, and runs body per rank. It returns the network for inspection.
func runRanks(t *testing.T, n int, cost via.CostModel,
	body func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr)) *via.Network {
	t.Helper()
	s := simnet.New(1)
	s.SetDeadline(simnet.Time(60 * simnet.Second))
	fcfg := via.ClanFabric(n, 1)
	if cost.Name == "bvia" {
		fcfg = via.BviaFabric(n, 1)
	}
	net := via.NewNetwork(s, fcfg, cost)
	addrs := make([]via.Addr, n)
	ready := 0
	for r := 0; r < n; r++ {
		r := r
		s.Spawn(fmt.Sprintf("rank%d", r), 0, func(p *simnet.Proc) {
			port, err := net.Open(p)
			if err != nil {
				t.Error(err)
				return
			}
			addrs[r] = port.Addr()
			ready++
			for ready < n {
				p.Sleep(simnet.Microsecond)
			}
			body(p, port, r, addrs)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return net
}

func managerConfig(rank, n int, port *via.Port, addrs []via.Addr) Config {
	return Config{Rank: rank, Size: n, Port: port, Addrs: addrs, Mode: via.WaitPoll}
}

func TestPairDisc(t *testing.T) {
	if PairDisc(3, 7) != PairDisc(7, 3) {
		t.Fatal("PairDisc not symmetric")
	}
	if PairDisc(0, 1) == PairDisc(0, 2) {
		t.Fatal("PairDisc collides")
	}
	f := func(a, b, c, d uint16) bool {
		if (a == c && b == d) || (a == d && b == c) {
			return true
		}
		if a == b || c == d {
			return true
		}
		return PairDisc(int(a), int(b)) != PairDisc(int(c), int(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testStaticFullMesh(t *testing.T, policy string) {
	const n = 6
	net := runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		mgr, err := NewManager(policy, managerConfig(rank, n, port, addrs))
		if err != nil {
			t.Error(err)
			return
		}
		if err := mgr.Init(); err != nil {
			t.Errorf("rank %d init: %v", rank, err)
			return
		}
		if mgr.PendingConnections() != 0 {
			t.Errorf("rank %d: %d pending after init", rank, mgr.PendingConnections())
		}
		for r := 0; r < n; r++ {
			if r == rank {
				continue
			}
			ch, err := mgr.Channel(r)
			if err != nil || !ch.Up || ch.Vi.State() != via.ViConnected {
				t.Errorf("rank %d channel to %d: err=%v up=%v", rank, r, err, ch != nil && ch.Up)
			}
		}
	})
	for _, port := range net.Ports() {
		if got := port.Stats().VisCreated; got != n-1 {
			t.Errorf("VisCreated = %d, want %d", got, n-1)
		}
	}
}

func TestStaticPeerToPeerFullMesh(t *testing.T)   { testStaticFullMesh(t, "static-p2p") }
func TestStaticClientServerFullMesh(t *testing.T) { testStaticFullMesh(t, "static-cs") }

func TestOnDemandInitCreatesNothing(t *testing.T) {
	const n = 4
	net := runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		mgr, err := NewOnDemand(managerConfig(rank, n, port, addrs))
		if err != nil {
			t.Error(err)
			return
		}
		if err := mgr.Init(); err != nil {
			t.Error(err)
		}
	})
	for _, port := range net.Ports() {
		if got := port.Stats().VisCreated; got != 0 {
			t.Errorf("VisCreated = %d after on-demand init, want 0", got)
		}
	}
}

// TestOnDemandLazyConnectAndFifoDrain exercises the full §3.4 path: rank 0
// parks three sends before the connection exists; they must drain in order
// once it establishes, and rank 1 must receive them in order.
func TestOnDemandLazyConnectAndFifoDrain(t *testing.T) {
	const n = 2
	var drained []int
	received := []byte{}
	runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		cfg := managerConfig(rank, n, port, addrs)
		cfg.PrepareChannel = func(ch *Channel) {
			for i := 0; i < 8; i++ {
				if err := ch.Vi.PostRecv(&via.Descriptor{Buf: make([]byte, 64)}); err != nil {
					t.Error(err)
				}
			}
		}
		cfg.OnChannelUp = func(ch *Channel) {
			for _, item := range ch.DrainParked() {
				v := item.(int)
				drained = append(drained, v)
				if err := ch.Vi.PostSend(&via.Descriptor{Buf: []byte{byte(v)}, Len: 1}); err != nil {
					t.Error(err)
				}
			}
		}
		mgr, err := NewOnDemand(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := mgr.Init(); err != nil {
			t.Error(err)
			return
		}
		if rank == 0 {
			ch, err := mgr.Channel(1)
			if err != nil {
				t.Error(err)
				return
			}
			if ch.Up {
				t.Error("channel up before handshake possible")
			}
			for i := 1; i <= 3; i++ {
				ch.Park(i)
			}
			for !ch.Up {
				mgr.Poll()
				if ch.Up {
					break
				}
				port.WaitActivity(via.WaitPoll)
			}
			if ch.Parked() != 0 {
				t.Errorf("%d sends still parked after Up", ch.Parked())
			}
			p.Sleep(simnet.D(2e6)) // let deliveries finish
		} else {
			// Passive side: discover the connection purely via Poll.
			var ch *Channel
			for ch == nil || !ch.Up {
				mgr.Poll()
				ch = mgr.PeekChannel(0)
				if ch != nil && ch.Up {
					break
				}
				port.WaitActivity(via.WaitPoll)
			}
			for len(received) < 3 {
				if d := ch.Vi.RecvDone(); d != nil {
					received = append(received, d.Buf[0])
				} else {
					port.WaitActivity(via.WaitPoll)
				}
			}
		}
	})
	if len(drained) != 3 || drained[0] != 1 || drained[1] != 2 || drained[2] != 3 {
		t.Fatalf("drained = %v, want [1 2 3]", drained)
	}
	if string(received) != "\x01\x02\x03" {
		t.Fatalf("received = %v, want [1 2 3]", received)
	}
}

func TestOnDemandPassivePrepareBeforeData(t *testing.T) {
	// The passive side's PrepareChannel must run (pre-posting receives)
	// before any data can arrive, or the via layer would kill the
	// connection with DroppedNoDescriptor.
	const n = 2
	net := runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		cfg := managerConfig(rank, n, port, addrs)
		prepared := false
		cfg.PrepareChannel = func(ch *Channel) {
			prepared = true
			for i := 0; i < 4; i++ {
				if err := ch.Vi.PostRecv(&via.Descriptor{Buf: make([]byte, 64)}); err != nil {
					t.Error(err)
				}
			}
		}
		cfg.OnChannelUp = func(ch *Channel) {
			if !prepared {
				t.Error("OnChannelUp before PrepareChannel")
			}
			for range ch.DrainParked() {
			}
		}
		mgr, err := NewOnDemand(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if rank == 0 {
			ch, err := mgr.Channel(1)
			if err != nil {
				t.Error(err)
				return
			}
			for !ch.Up {
				mgr.Poll()
				if ch.Up {
					break
				}
				port.WaitActivity(via.WaitPoll)
			}
			if err := ch.Vi.PostSend(&via.Descriptor{Buf: []byte("x"), Len: 1}); err != nil {
				t.Error(err)
			}
			p.Sleep(simnet.D(2e6))
		} else {
			end := p.Now().Add(simnet.D(5e6))
			for p.Now() < end {
				mgr.Poll()
				port.WaitActivityTimeout(via.WaitPoll, 100*simnet.Microsecond)
			}
			ch := mgr.PeekChannel(0)
			if ch == nil || !ch.Up {
				t.Error("passive side never adopted the connection")
			}
		}
	})
	if net.DroppedNoDescriptor != 0 {
		t.Fatalf("DroppedNoDescriptor = %d, want 0", net.DroppedNoDescriptor)
	}
}

func TestOnDemandConnectAll(t *testing.T) {
	const n = 5
	runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		cfg := managerConfig(rank, n, port, addrs)
		mgr, err := NewOnDemand(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := mgr.ConnectAll(); err != nil {
			t.Error(err)
			return
		}
		for mgr.PendingConnections() > 0 {
			mgr.Poll()
			if mgr.PendingConnections() == 0 {
				break
			}
			port.WaitActivity(via.WaitPoll)
		}
		if got := port.Stats().VisCreated; got != n-1 {
			t.Errorf("rank %d: VisCreated = %d, want %d", rank, got, n-1)
		}
	})
}

// TestOnDemandRingUsesTwoVIs is the Table 2 "Ring" row: a ring exchange
// under on-demand creates exactly 2 VIs per process.
func TestOnDemandRingUsesTwoVIs(t *testing.T) {
	const n = 8
	net := runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		cfg := managerConfig(rank, n, port, addrs)
		cfg.PrepareChannel = func(ch *Channel) {
			for i := 0; i < 4; i++ {
				if err := ch.Vi.PostRecv(&via.Descriptor{Buf: make([]byte, 64)}); err != nil {
					t.Error(err)
				}
			}
		}
		cfg.OnChannelUp = func(ch *Channel) {
			for _, it := range ch.DrainParked() {
				b := it.([]byte)
				if err := ch.Vi.PostSend(&via.Descriptor{Buf: b, Len: len(b)}); err != nil {
					t.Error(err)
				}
			}
		}
		mgr, err := NewOnDemand(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		right := (rank + 1) % n
		ch, err := mgr.Channel(right)
		if err != nil {
			t.Error(err)
			return
		}
		ch.Park([]byte{byte(rank)})
		// Progress until we have received from the left neighbour and our
		// send has drained.
		var gotLeft bool
		for !gotLeft || ch.Parked() > 0 {
			mgr.Poll()
			if lch := mgr.PeekChannel((rank + n - 1) % n); lch != nil && lch.Up {
				if d := lch.Vi.RecvDone(); d != nil {
					if d.Buf[0] != byte((rank+n-1)%n) {
						t.Errorf("rank %d got %d from left", rank, d.Buf[0])
					}
					gotLeft = true
				}
			}
			if !gotLeft || ch.Parked() > 0 {
				port.WaitActivityTimeout(via.WaitPoll, 50*simnet.Microsecond)
			}
		}
		p.Sleep(simnet.D(3e6)) // let stragglers finish before ports go away
	})
	for r, port := range net.Ports() {
		if got := port.Stats().VisCreated; got != 2 {
			t.Errorf("rank %d: VisCreated = %d, want 2", r, got)
		}
		if got := port.VisUsed(); got != 2 {
			t.Errorf("rank %d: VisUsed = %d, want 2", r, got)
		}
	}
}

// TestInitTimeOrdering checks the Figure 8 shape: on-demand init is cheapest,
// static peer-to-peer next, serialized client-server worst.
func TestInitTimeOrdering(t *testing.T) {
	const n = 8
	times := map[string]simnet.Duration{}
	for _, policy := range Policies() {
		policy := policy
		var max simnet.Duration
		runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
			mgr, err := NewManager(policy, managerConfig(rank, n, port, addrs))
			if err != nil {
				t.Error(err)
				return
			}
			d, err := InitTimer(p, mgr)
			if err != nil {
				t.Errorf("%s rank %d: %v", policy, rank, err)
				return
			}
			if d > max {
				max = d
			}
			p.Sleep(simnet.Second) // keep port alive for stragglers
		})
		times[policy] = max
	}
	if !(times["ondemand"] < times["static-p2p"]) {
		t.Errorf("ondemand init %v not < static-p2p %v", times["ondemand"], times["static-p2p"])
	}
	if !(times["static-p2p"] < times["static-cs"]) {
		t.Errorf("static-p2p init %v not < static-cs %v", times["static-p2p"], times["static-cs"])
	}
}

func TestManagerNamesAndFinalize(t *testing.T) {
	const n = 4
	want := map[string]bool{"static-cs": true, "static-p2p": true, "ondemand": true}
	runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		for _, policy := range Policies() {
			if !want[policy] {
				t.Errorf("unexpected policy %q", policy)
			}
		}
		mgr, err := NewManager("ondemand", managerConfig(rank, n, port, addrs))
		if err != nil {
			t.Error(err)
			return
		}
		if mgr.Name() != "ondemand" {
			t.Errorf("name = %q", mgr.Name())
		}
		if err := mgr.ConnectAll(); err != nil {
			t.Error(err)
			return
		}
		for mgr.PendingConnections() > 0 {
			mgr.Poll()
			if mgr.PendingConnections() == 0 {
				break
			}
			port.WaitActivity(via.WaitPoll)
		}
		p.Sleep(simnet.D(2e6)) // let remote handshakes finish before teardown
		mgr.Finalize()
		for r := 0; r < n; r++ {
			if r == rank {
				continue
			}
			if ch := mgr.PeekChannel(r); ch == nil || ch.Vi.State() != via.ViClosed {
				t.Errorf("rank %d channel to %d not closed after Finalize", rank, r)
			}
		}
	})
}

func TestStaticManagerNames(t *testing.T) {
	const n = 2
	runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
		cs, err := NewStaticClientServer(managerConfig(rank, n, port, addrs))
		if err != nil {
			t.Error(err)
			return
		}
		if cs.Name() != "static-cs" || cs.ConnectAll() != nil {
			t.Error("static-cs surface")
		}
		p2p, err := NewStaticPeerToPeer(managerConfig(rank, n, port, addrs))
		if err != nil {
			t.Error(err)
			return
		}
		if p2p.Name() != "static-p2p" || p2p.ConnectAll() != nil {
			t.Error("static-p2p surface")
		}
	})
}

func TestConfigValidation(t *testing.T) {
	_, err := NewOnDemand(Config{Rank: 0, Size: 0})
	if err == nil {
		t.Fatal("expected error for size 0")
	}
	_, err = NewManager("bogus", Config{})
	if err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestChannelFifoSemantics(t *testing.T) {
	ch := &Channel{Rank: 1}
	for i := 0; i < 5; i++ {
		ch.Park(i)
	}
	if ch.Parked() != 5 {
		t.Fatalf("Parked = %d", ch.Parked())
	}
	out := ch.DrainParked()
	for i, v := range out {
		if v.(int) != i {
			t.Fatalf("drain order %v", out)
		}
	}
	if ch.Parked() != 0 {
		t.Fatal("fifo not emptied")
	}
	if got := ch.DrainParked(); len(got) != 0 {
		t.Fatal("second drain not empty")
	}
}

// Property (Table 2 core claim): under on-demand, the number of VIs a rank
// creates equals its number of distinct communication partners.
func TestPropertyOnDemandVIsEqualPartners(t *testing.T) {
	f := func(edges []uint8) bool {
		const n = 6
		// Build a random undirected communication set.
		want := make([]map[int]bool, n)
		for i := range want {
			want[i] = map[int]bool{}
		}
		var pairs [][2]int
		for _, e := range edges {
			a, b := int(e>>4)%n, int(e&0xf)%n
			if a == b || want[a][b] {
				continue
			}
			want[a][b], want[b][a] = true, true
			pairs = append(pairs, [2]int{a, b})
		}
		okRes := true
		net := runRanks(t, n, via.ClanCost(), func(p *simnet.Proc, port *via.Port, rank int, addrs []via.Addr) {
			cfg := managerConfig(rank, n, port, addrs)
			cfg.PrepareChannel = func(ch *Channel) {
				for i := 0; i < 4; i++ {
					if err := ch.Vi.PostRecv(&via.Descriptor{Buf: make([]byte, 16)}); err != nil {
						okRes = false
					}
				}
			}
			cfg.OnChannelUp = func(ch *Channel) {
				for _, it := range ch.DrainParked() {
					_ = it
					if err := ch.Vi.PostSend(&via.Descriptor{Buf: []byte{1}, Len: 1}); err != nil {
						okRes = false
					}
				}
			}
			mgr, err := NewOnDemand(cfg)
			if err != nil {
				okRes = false
				return
			}
			// The lower rank of each pair initiates.
			for _, pr := range pairs {
				if pr[0] == rank {
					ch, err := mgr.Channel(pr[1])
					if err != nil {
						okRes = false
						return
					}
					ch.Park(struct{}{})
				}
			}
			// Progress for a fixed window of virtual time.
			end := p.Now().Add(simnet.D(20e6))
			for p.Now() < end {
				mgr.Poll()
				port.WaitActivityTimeout(via.WaitPoll, 200*simnet.Microsecond)
			}
		})
		for r, port := range net.Ports() {
			if port.Stats().VisCreated != len(want[r]) {
				return false
			}
		}
		return okRes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
