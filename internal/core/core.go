// Package core implements the paper's contribution: connection management
// policies for MPI over VIA.
//
// Three managers are provided behind one interface:
//
//   - StaticClientServer: MVICH's original scheme using VIA's client-server
//     connection model. Every pair is connected during MPI_Init; each
//     process first connects (as client) to all lower ranks in order, then
//     accepts (as server) all higher ranks *in rank order regardless of
//     arrival order* — the serialization the paper blames for its very slow
//     startup (Figure 8a).
//
//   - StaticPeerToPeer: the fully-connected mesh built with the symmetric
//     peer-to-peer model. All N-1 requests are issued first, then progressed
//     concurrently, avoiding the client-server serialization.
//
//   - OnDemand: the paper's mechanism. No VI exists until a pair first
//     communicates. A VI endpoint is created and a peer-to-peer request
//     issued from the first send (or receive targeting the peer); sends
//     posted before the connection completes are parked in the channel's
//     FIFO (paper §3.4) and drained in order when it establishes; incoming
//     requests are discovered by polling inside the progress engine (§3.3,
//     no extra thread); a receive from MPI_ANY_SOURCE connects to everyone
//     in the communicator (§3.5).
//
// The managers only manage connections; eager-buffer setup and the actual
// draining of parked sends belong to the MPI layer and are reached through
// the PrepareChannel / OnChannelUp hooks.
package core

import (
	"errors"
	"fmt"
	"sort"

	"viampi/internal/obs"
	"viampi/internal/simnet"
	"viampi/internal/via"
)

// PairDisc returns the canonical VIA discriminator for a connection between
// two ranks: both sides must issue their requests under the same value.
func PairDisc(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Channel is the per-peer connection state: one VI plus the pre-posted send
// FIFO that preserves MPI's non-overtaking order for sends issued before the
// connection exists.
type Channel struct {
	Rank int     // peer rank
	Vi   *via.VI // endpoint; may be mid-handshake
	Up   bool    // true once the connection is established and the FIFO drained

	// Evicting marks a channel the MPI layer is gracefully draining under
	// the VI cap; it still counts toward the cap's pending frees but must
	// not be picked as a victim again.
	Evicting bool

	// UserData carries the MPI layer's per-channel state (credits, eager
	// buffer pool).
	UserData interface{}

	fifo []interface{}

	// Handshake/retry state owned by the managers. Zero times mean
	// "unset": channels only exist after the t=0 bootstrap, so no real
	// stamp collides with the sentinel.
	lastUsed  simnet.Time // last send/recv touch (the LRU eviction key)
	remote    via.Addr    // reissue target
	disc      uint64      // reissue discriminator
	attempts  int         // connection attempts so far
	deadline  simnet.Time // current attempt times out at this instant
	retryAt   simnet.Time // backed-off reissue due at this instant
	reconnect simnet.Time // re-establishment started (EvReconnect latency)
}

// Touch stamps the channel as used now (the LRU eviction key).
func (c *Channel) Touch(now simnet.Time) { c.lastUsed = now }

// Park appends a pre-posted send to the channel's FIFO (paper §3.4).
func (c *Channel) Park(item interface{}) {
	c.fifo = append(c.fifo, item)
	if c.Vi != nil {
		p := c.Vi.Port()
		p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvFifoPark,
			Rank: int32(p.Addr().Ep), Peer: int32(c.Rank), A: int64(len(c.fifo))})
	}
}

// obsDrain reports a non-empty FIFO drain on the bus.
func (c *Channel) obsDrain(n int) {
	if c.Vi == nil {
		return
	}
	p := c.Vi.Port()
	p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvFifoDrain,
		Rank: int32(p.Addr().Ep), Peer: int32(c.Rank), A: int64(n)})
}

// Parked returns the number of parked sends.
func (c *Channel) Parked() int { return len(c.fifo) }

// DrainParked removes and returns all parked sends in FIFO order.
func (c *Channel) DrainParked() []interface{} {
	f := c.fifo
	c.fifo = nil
	if len(f) > 0 {
		c.obsDrain(len(f))
	}
	return f
}

// Config wires a manager to one process's VIA port and the MPI callbacks.
type Config struct {
	Rank  int
	Size  int
	Port  *via.Port
	Addrs []via.Addr   // rank -> VIA address, from the out-of-band bootstrap
	Mode  via.WaitMode // completion wait mode for blocking phases

	// NewVi, when set, creates VIs for channels (e.g. bound to a completion
	// queue). Defaults to Port.CreateVi.
	NewVi func() (*via.VI, error)
	// PrepareChannel runs as soon as the channel's VI exists (before the
	// connection completes): the MPI layer pre-posts its eager receive
	// descriptors here, so no message can ever beat the buffers.
	PrepareChannel func(ch *Channel)
	// OnChannelUp runs when the connection is established; the MPI layer
	// drains the parked sends here, in order.
	OnChannelUp func(ch *Channel)

	// MaxVIs, when positive, caps the channels an OnDemand manager keeps
	// live; crossing the cap LRU-evicts an idle channel via StartEvict.
	// The cap is soft: when nothing passes CanEvict the new connection
	// proceeds over the cap (refusing it would deadlock the transfer).
	MaxVIs int
	// CanEvict reports whether ch is quiescent enough for graceful
	// eviction; StartEvict begins the MPI-layer drain handshake. Both
	// must be set for MaxVIs to take effect.
	CanEvict   func(ch *Channel) bool
	StartEvict func(ch *Channel)

	// ConnTimeout bounds one connection attempt; 0 arms no timers (the
	// default — timing-neutral for fault-free runs). ConnRetryMax caps
	// attempts (default 8); ConnBackoff seeds the exponential backoff
	// between attempts (default 200 µs).
	ConnTimeout  simnet.Duration
	ConnRetryMax int
	ConnBackoff  simnet.Duration

	// EpRanks optionally shares one endpoint→rank table (the inverse of
	// Addrs) across every rank's manager. When nil the manager builds its
	// own — O(Size) memory per rank, which is the difference between O(n)
	// and O(n²) job-wide footprint at 1k+ ranks.
	EpRanks map[int]int
}

func (c Config) validate() error {
	switch {
	case c.Size <= 0 || c.Rank < 0 || c.Rank >= c.Size:
		return fmt.Errorf("core: bad rank/size %d/%d", c.Rank, c.Size)
	case c.Port == nil:
		return fmt.Errorf("core: nil port")
	case len(c.Addrs) != c.Size:
		return fmt.Errorf("core: %d addrs for %d ranks", len(c.Addrs), c.Size)
	}
	return nil
}

// Manager is a connection management policy.
type Manager interface {
	// Name identifies the policy ("static-cs", "static-p2p", "ondemand").
	Name() string
	// Init establishes whatever connections the policy makes eagerly.
	// Called from MPI_Init after the address bootstrap.
	Init() error
	// Channel returns the channel to rank, creating it (and initiating a
	// connection) if the policy allows lazy creation. The returned channel
	// may not be Up yet.
	Channel(rank int) (*Channel, error)
	// PeekChannel returns the channel to rank or nil; it never creates.
	PeekChannel(rank int) *Channel
	// ConnectAll initiates connections to every rank (the ANY_SOURCE rule).
	ConnectAll() error
	// Poll makes connection progress: it adopts incoming requests and
	// promotes completed handshakes to Up (invoking OnChannelUp). It is
	// called from the MPI progress engine and must never block.
	Poll()
	// PendingConnections reports channels still mid-handshake.
	PendingConnections() int
	// ReleaseChannel forgets the channel to rank after the MPI layer has
	// torn it down (evicted or disconnected); a later Channel(rank) makes
	// a fresh connection.
	ReleaseChannel(rank int)
	// Finalize tears down all channels.
	Finalize()
}

// base carries the state shared by all managers. Channel state is sparse:
// the map answers by-rank lookups in O(1) and the order slice (kept sorted
// by peer rank) drives every scan, so both memory and scan cost are
// O(live channels) instead of O(world size). The sorted order reproduces the
// dense array's rank-ascending iteration exactly — handshake progress,
// promotion, eviction tie-breaks and finalize all see the same sequence a
// by-rank table walk produced, and no map is ever ranged over.
type base struct {
	cfg      Config
	channels map[int]*Channel // by peer rank; lookups only, never iterated
	order    []*Channel       // live channels sorted by Rank; all scans use this
	epToRank map[int]int
	everUp   map[int]bool // rank ever had an established channel (reconnect metric)
}

func newBase(cfg Config) (*base, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &base{
		cfg:      cfg,
		channels: make(map[int]*Channel),
		epToRank: cfg.EpRanks,
		everUp:   make(map[int]bool),
	}
	if b.epToRank == nil {
		b.epToRank = make(map[int]int, cfg.Size)
		for r, a := range cfg.Addrs {
			b.epToRank[a.Ep] = r
		}
	}
	return b, nil
}

func (b *base) PeekChannel(rank int) *Channel { return b.channels[rank] }

// insertOrdered adds ch to the rank-sorted scan list.
func (b *base) insertOrdered(ch *Channel) {
	i := sort.Search(len(b.order), func(k int) bool { return b.order[k].Rank >= ch.Rank })
	b.order = append(b.order, nil)
	copy(b.order[i+1:], b.order[i:])
	b.order[i] = ch
}

// newChannel creates the VI for rank and runs PrepareChannel.
func (b *base) newChannel(rank int) (*Channel, error) {
	if rank < 0 || rank >= b.cfg.Size || rank == b.cfg.Rank {
		return nil, fmt.Errorf("core: bad peer rank %d (self %d, size %d)", rank, b.cfg.Rank, b.cfg.Size)
	}
	newVi := b.cfg.NewVi
	if newVi == nil {
		newVi = b.cfg.Port.CreateVi
	}
	vi, err := newVi()
	if err != nil {
		return nil, err
	}
	ch := &Channel{Rank: rank, Vi: vi}
	b.channels[rank] = ch
	b.insertOrdered(ch)
	if b.cfg.PrepareChannel != nil {
		b.cfg.PrepareChannel(ch)
	}
	return ch, nil
}

// markUp promotes a connected channel and hands it to the MPI layer.
func (b *base) markUp(ch *Channel) {
	ch.Up = true
	ch.deadline, ch.retryAt, ch.attempts = 0, 0, 0
	if ch.reconnect != 0 {
		p := b.cfg.Port
		p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvReconnect,
			Rank: int32(b.cfg.Rank), Peer: int32(ch.Rank),
			A: int64(p.Owner().Now().Sub(ch.reconnect))})
		ch.reconnect = 0
	}
	b.everUp[ch.Rank] = true
	if b.cfg.OnChannelUp != nil {
		b.cfg.OnChannelUp(ch)
	}
}

// ReleaseChannel implements Manager.
func (b *base) ReleaseChannel(rank int) {
	delete(b.channels, rank)
	for i, ch := range b.order {
		if ch.Rank == rank {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

// retryMax and backoff resolve the retry knobs' defaults.
func (b *base) retryMax() int {
	if b.cfg.ConnRetryMax > 0 {
		return b.cfg.ConnRetryMax
	}
	return 8
}

func (b *base) backoff(attempts int) simnet.Duration {
	d := b.cfg.ConnBackoff
	if d <= 0 {
		d = 200 * simnet.Microsecond
	}
	if attempts > 1 {
		d <<= uint(attempts - 1)
	}
	return d
}

// issue starts (or restarts) the peer-to-peer handshake for ch, arming the
// attempt timeout when one is configured.
func (b *base) issue(ch *Channel, remote via.Addr, disc uint64) error {
	ch.remote, ch.disc = remote, disc
	ch.attempts++
	if err := b.cfg.Port.ConnectPeerRequest(ch.Vi, remote, disc); err != nil {
		return err
	}
	ch.retryAt = 0
	if b.cfg.ConnTimeout > 0 {
		ch.deadline = b.cfg.Port.Owner().Now().Add(b.cfg.ConnTimeout)
		b.cfg.Port.NotifyAfter(b.cfg.ConnTimeout)
	}
	return nil
}

// scheduleRetry books a backed-off reissue for a failed attempt, or fails
// the run loudly once the attempt budget is spent — parked sends must never
// be stranded silently.
func (b *base) scheduleRetry(ch *Channel, why string) {
	if ch.attempts >= b.retryMax() {
		b.cfg.Port.Owner().Sim().Failf(
			"core: rank %d→%d connection %s after %d attempts; %d parked sends stranded",
			b.cfg.Rank, ch.Rank, why, ch.attempts, ch.Parked())
		return
	}
	d := b.backoff(ch.attempts)
	ch.deadline = 0
	ch.retryAt = b.cfg.Port.Owner().Now().Add(d)
	b.cfg.Port.NotifyAfter(d)
}

// reissue re-sends the connection request after a NACK or timeout.
func (b *base) reissue(ch *Channel) {
	p := b.cfg.Port
	p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnRetry,
		Rank: int32(b.cfg.Rank), Peer: int32(ch.Rank), A: int64(ch.attempts)})
	if err := b.issue(ch, ch.remote, ch.disc); err != nil {
		p.Owner().Sim().Failf("core: rank %d→%d reissue: %v", b.cfg.Rank, ch.Rank, err)
	}
}

// progressHandshakes drives retry/timeout for channels mid-handshake. A VI
// back in ViIdle with attempts on record means the peer NACKed (or a timeout
// cancelled the attempt); without this the parked sends would be stranded
// forever.
func (b *base) progressHandshakes() {
	now := b.cfg.Port.Owner().Now()
	for _, ch := range b.order {
		if ch.Up || ch.attempts == 0 {
			continue
		}
		switch ch.Vi.State() {
		case via.ViIdle:
			if ch.retryAt == 0 {
				b.scheduleRetry(ch, "rejected")
			} else if now.Sub(ch.retryAt) >= 0 {
				b.reissue(ch)
			}
		case via.ViConnecting:
			if ch.deadline != 0 && now.Sub(ch.deadline) >= 0 {
				// Cancel can race with a just-completed establishment;
				// losing that race leaves the VI connected, which is fine.
				if err := b.cfg.Port.CancelConnect(ch.Vi); err != nil {
					continue
				}
				b.scheduleRetry(ch, "timed out")
			}
		case via.ViConnected, via.ViError, via.ViDisconnected, via.ViClosed:
			// Connected channels are promoted by promoteConnected; dead
			// states are adopted by the MPI teardown scan, not retried here.
		}
	}
}

// connectWithRetry is the blocking client-side connect used by the static
// client-server policy, with NACK/timeout retry and exponential backoff.
func (b *base) connectWithRetry(ch *Channel, remote via.Addr, disc uint64) error {
	p := b.cfg.Port
	for {
		ch.remote, ch.disc = remote, disc
		ch.attempts++
		if err := p.ConnectPeerRequest(ch.Vi, remote, disc); err != nil {
			return err
		}
		timeout := simnet.Duration(-1)
		if b.cfg.ConnTimeout > 0 {
			timeout = b.cfg.ConnTimeout
		}
		err := p.ConnectPeerWait(ch.Vi, b.cfg.Mode, timeout)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, via.ErrTimeout):
			if cerr := p.CancelConnect(ch.Vi); cerr != nil {
				// The handshake completed while we were timing out.
				if ch.Vi.State() == via.ViConnected {
					return nil
				}
				return cerr
			}
		case errors.Is(err, via.ErrRejected):
			// Retry below.
		default:
			return err
		}
		if ch.attempts >= b.retryMax() {
			return fmt.Errorf("core: rank %d→%d connection failed after %d attempts: %w",
				b.cfg.Rank, ch.Rank, ch.attempts, err)
		}
		p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnRetry,
			Rank: int32(b.cfg.Rank), Peer: int32(ch.Rank), A: int64(ch.attempts)})
		p.Owner().Sleep(b.backoff(ch.attempts))
	}
}

// promoteConnected flips channels whose handshake completed.
func (b *base) promoteConnected() {
	for _, ch := range b.order {
		if !ch.Up && ch.Vi.State() == via.ViConnected {
			b.markUp(ch)
		}
	}
}

func (b *base) PendingConnections() int {
	n := 0
	for _, ch := range b.order {
		if !ch.Up {
			n++
		}
	}
	return n
}

func (b *base) Finalize() {
	for _, ch := range b.order {
		if ch.Vi.State() != via.ViClosed {
			ch.Vi.Close()
		}
	}
}

// waitAllUp blocks until no handshakes remain, polling connection progress.
func (b *base) waitAllUp(poll func()) {
	for b.PendingConnections() > 0 {
		poll()
		if b.PendingConnections() == 0 {
			return
		}
		b.cfg.Port.WaitActivity(b.cfg.Mode)
	}
}

// ---------------------------------------------------------------------------
// Static peer-to-peer

// StaticPeerToPeer builds the fully-connected mesh with concurrent
// peer-to-peer handshakes during Init.
type StaticPeerToPeer struct{ *base }

// NewStaticPeerToPeer creates the manager.
func NewStaticPeerToPeer(cfg Config) (*StaticPeerToPeer, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &StaticPeerToPeer{base: b}, nil
}

// Name implements Manager.
func (m *StaticPeerToPeer) Name() string { return "static-p2p" }

// Init issues all N-1 peer requests, then progresses them together.
func (m *StaticPeerToPeer) Init() error {
	for r := 0; r < m.cfg.Size; r++ {
		if r == m.cfg.Rank {
			continue
		}
		ch, err := m.newChannel(r)
		if err != nil {
			return err
		}
		if err := m.issue(ch, m.cfg.Addrs[r], PairDisc(m.cfg.Rank, r)); err != nil {
			return err
		}
	}
	m.waitAllUp(m.Poll)
	return nil
}

// Channel implements Manager; with a static mesh every channel exists.
func (m *StaticPeerToPeer) Channel(rank int) (*Channel, error) {
	ch := m.channels[rank]
	if ch == nil {
		return nil, fmt.Errorf("core: static-p2p has no channel to rank %d", rank)
	}
	return ch, nil
}

// ConnectAll implements Manager (a no-op for a static mesh).
func (m *StaticPeerToPeer) ConnectAll() error { return nil }

// Poll implements Manager.
func (m *StaticPeerToPeer) Poll() {
	m.progressHandshakes()
	m.promoteConnected()
}

// ---------------------------------------------------------------------------
// Static client-server

// StaticClientServer reproduces MVICH's original serialized client-server
// startup: for each pair the lower rank is the server; servers accept
// expected peers strictly in rank order.
type StaticClientServer struct{ *base }

// NewStaticClientServer creates the manager.
func NewStaticClientServer(cfg Config) (*StaticClientServer, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &StaticClientServer{base: b}, nil
}

// Name implements Manager.
func (m *StaticClientServer) Name() string { return "static-cs" }

// Init connects as client to all lower ranks (in order), then serves all
// higher ranks strictly in rank order. The in-order accepts are the
// serialization measured in Figure 8a.
func (m *StaticClientServer) Init() error {
	me := m.cfg.Rank
	for r := 0; r < me; r++ {
		ch, err := m.newChannel(r)
		if err != nil {
			return err
		}
		if err := m.connectWithRetry(ch, m.cfg.Addrs[r], PairDisc(me, r)); err != nil {
			return fmt.Errorf("core: rank %d connect to %d: %w", me, r, err)
		}
		m.markUp(ch)
	}
	for r := me + 1; r < m.cfg.Size; r++ {
		req, err := m.cfg.Port.ConnectWaitDisc(PairDisc(me, r), m.cfg.Mode, -1)
		if err != nil {
			return fmt.Errorf("core: rank %d accept from %d: %w", me, r, err)
		}
		ch, err := m.newChannel(r)
		if err != nil {
			return err
		}
		if err := m.cfg.Port.Accept(req, ch.Vi); err != nil {
			return err
		}
		for !ch.Up {
			m.Poll()
			if ch.Up {
				break
			}
			m.cfg.Port.WaitActivity(m.cfg.Mode)
		}
	}
	m.waitAllUp(m.Poll)
	return nil
}

// Channel implements Manager.
func (m *StaticClientServer) Channel(rank int) (*Channel, error) {
	ch := m.channels[rank]
	if ch == nil {
		return nil, fmt.Errorf("core: static-cs has no channel to rank %d", rank)
	}
	return ch, nil
}

// ConnectAll implements Manager (no-op for a static mesh).
func (m *StaticClientServer) ConnectAll() error { return nil }

// Poll implements Manager.
func (m *StaticClientServer) Poll() {
	m.progressHandshakes()
	m.promoteConnected()
}

// ---------------------------------------------------------------------------
// On-demand

// OnDemand is the paper's lazy connection manager.
type OnDemand struct{ *base }

// NewOnDemand creates the manager.
func NewOnDemand(cfg Config) (*OnDemand, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &OnDemand{base: b}, nil
}

// Name implements Manager.
func (m *OnDemand) Name() string { return "ondemand" }

// Init does nothing: no VI is created until a pair communicates.
func (m *OnDemand) Init() error { return nil }

// liveChannels counts existing channels and how many are mid-eviction.
func (m *OnDemand) liveChannels() (live, evicting int) {
	live = len(m.order)
	for _, ch := range m.order {
		if ch.Evicting {
			evicting++
		}
	}
	return
}

// evictForCap starts graceful evictions until the cap has room for one more
// channel, counting in-flight evictions as pending frees (the teardown
// handshake is asynchronous). The cap is soft: with no evictable victim the
// new connection proceeds over the cap rather than deadlock.
func (m *OnDemand) evictForCap() {
	if m.cfg.MaxVIs <= 0 || m.cfg.CanEvict == nil || m.cfg.StartEvict == nil {
		return
	}
	live, evicting := m.liveChannels()
	for live+1-evicting > m.cfg.MaxVIs {
		var victim *Channel
		for _, ch := range m.order {
			if !ch.Up || ch.Evicting || !m.cfg.CanEvict(ch) {
				continue
			}
			// Strict < ties break toward the lowest rank (scan order),
			// keeping victim choice deterministic.
			if victim == nil || ch.lastUsed.Sub(victim.lastUsed) < 0 {
				victim = ch
			}
		}
		if victim == nil {
			return
		}
		victim.Evicting = true
		evicting++
		p := m.cfg.Port
		p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvEvict,
			Rank: int32(m.cfg.Rank), Peer: int32(victim.Rank), A: int64(live)})
		m.cfg.StartEvict(victim)
	}
}

// Channel returns the channel to rank, lazily creating the VI and issuing
// the peer-to-peer request on first use. The caller must treat a !Up channel
// by parking its send in the FIFO.
func (m *OnDemand) Channel(rank int) (*Channel, error) {
	if ch := m.channels[rank]; ch != nil {
		return ch, nil
	}
	m.evictForCap()
	ch, err := m.newChannel(rank)
	if err != nil {
		return nil, err
	}
	if m.everUp[rank] {
		ch.reconnect = m.cfg.Port.Owner().Now()
	}
	if err := m.issue(ch, m.cfg.Addrs[rank], PairDisc(m.cfg.Rank, rank)); err != nil {
		return nil, err
	}
	// The via layer may have matched an already-arrived request instantly;
	// promotion still happens in Poll to keep ordering single-pathed.
	return ch, nil
}

// ConnectAll initiates a connection to every rank in the communicator — the
// MPI_ANY_SOURCE rule (§3.5): the receiver must be reachable by whichever
// sender matches.
func (m *OnDemand) ConnectAll() error {
	for r := 0; r < m.cfg.Size; r++ {
		if r == m.cfg.Rank {
			continue
		}
		if _, err := m.Channel(r); err != nil {
			return err
		}
	}
	return nil
}

// Poll adopts incoming connection requests (creating the local VI and
// issuing the matching peer request) and promotes completed handshakes.
// It runs inside the MPI progress engine: a connection request is just
// another species of non-blocking request (§3.3).
func (m *OnDemand) Poll() {
	// Snapshot: ConnectPeerRequest consumes entries from the live slice.
	for {
		reqs := m.cfg.Port.PendingPeerRequests()
		if len(reqs) == 0 {
			break
		}
		req := reqs[0]
		rank, ok := m.epToRank[req.From.Ep]
		if !ok {
			m.cfg.Port.Reject(req)
			continue
		}
		if ch := m.channels[rank]; ch != nil {
			if !ch.Up && ch.Vi.State() == via.ViIdle {
				// Our own attempt was NACKed (fault injection) and sits
				// between backoff retries; the peer's crossing request IS
				// the retry — match it directly instead of rejecting, or
				// both sides NACK each other forever.
				if err := m.issue(ch, req.From, req.Disc); err != nil {
					m.cfg.Port.Reject(req)
				}
				continue
			}
			// Otherwise a request from a rank we already have a channel
			// for is stale or mismatched (crossing requests under the
			// canonical discriminator are matched inside via; an evicted
			// peer's reconnect can also race our unfinished teardown).
			// Reject it — the peer retries with backoff.
			m.cfg.Port.Reject(req)
			continue
		}
		m.evictForCap()
		ch, err := m.newChannel(rank)
		if err != nil {
			m.cfg.Port.Reject(req)
			continue
		}
		if m.everUp[rank] {
			ch.reconnect = m.cfg.Port.Owner().Now()
		}
		// Matches the pending incoming request immediately.
		if err := m.issue(ch, req.From, req.Disc); err != nil {
			m.cfg.Port.Reject(req) // consume it; never spin on a bad request
		}
	}
	m.progressHandshakes()
	m.promoteConnected()
}

// NewManager builds a manager by policy name.
func NewManager(policy string, cfg Config) (Manager, error) {
	switch policy {
	case "static-cs":
		return NewStaticClientServer(cfg)
	case "static-p2p":
		return NewStaticPeerToPeer(cfg)
	case "ondemand":
		return NewOnDemand(cfg)
	default:
		return nil, fmt.Errorf("core: unknown connection policy %q", policy)
	}
}

// Policies lists the available connection policies.
func Policies() []string { return []string{"static-cs", "static-p2p", "ondemand"} }

// InitTimer measures the virtual time spent in a manager's Init — the
// quantity plotted in Figure 8.
func InitTimer(p *simnet.Proc, m Manager) (simnet.Duration, error) {
	start := p.Now()
	err := m.Init()
	return p.Now().Sub(start), err
}
