package mpi

import "fmt"

// Collective operations, implemented with the MPICH-1.2-era algorithms the
// paper's MVICH used: binomial trees for barrier/bcast/reduce,
// reduce+bcast for allreduce, gather+bcast for allgather, and pairwise
// linear exchange for alltoall. All collective traffic runs in the
// communicator's hidden collective context, so it can never match user
// point-to-point receives.

// Internal tags distinguishing collective operations. Each gets a spaced
// range because recursive doubling uses tag, tag+1 and tag+2 internally.
const (
	tagBarrierUp     = 10
	tagAllreduce     = 20
	tagBcast         = 30
	tagReduce        = 40
	tagGather        = 50
	tagScatter       = 60
	tagAllgather     = 70
	tagAlltoall      = 80
	tagScan          = 90
	tagDissemination = 300 // one tag per dissemination round
)

// Barrier blocks until every rank in the communicator has entered it.
//
// The default algorithm is recursive doubling over the hypercube (partner =
// rank XOR 2^k), with non-power-of-2 stragglers folded onto the power-of-2
// core — matching the log2(N) partner counts the paper's Table 2 measures
// for MVICH's barrier (4 at 16 processes, 5 at 32) and the extra steps at
// non-power-of-2 sizes that cause the fluctuation under Figure 4.
// Config.BarrierAlg selects "dissemination" (log rounds, 2*log partners) or
// "tree" (binomial combine + broadcast, ~2 partners) for the connection-
// footprint ablation.
func (c *Comm) Barrier() error {
	defer c.r.prof.enter("Barrier")()
	switch c.r.cfg.BarrierAlg {
	case "", "rd":
		token := make([]byte, 8)
		return c.recursiveDoubling(token, BorI64, tagBarrierUp)
	case "dissemination":
		return c.disseminationBarrier()
	case "tree":
		return c.treeBarrier()
	default:
		return fmt.Errorf("mpi: unknown barrier algorithm %q", c.r.cfg.BarrierAlg)
	}
}

// disseminationBarrier: in round k every rank signals (rank+2^k) mod N and
// waits for (rank-2^k) mod N. Works for any N in ceil(log2 N) rounds, at
// the cost of up to 2*log distinct partners.
func (c *Comm) disseminationBarrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.myrank
	token := make([]byte, 1)
	in := make([]byte, 1)
	round := 0
	for mask := 1; mask < n; mask <<= 1 {
		to := (me + mask) % n
		from := (me - mask + n) % n
		tag := tagDissemination + round
		sq, err := c.isendCtx(ModeStandard, to, tag, token, c.cctx)
		if err != nil {
			return err
		}
		rq, err := c.irecvCtx(in, from, tag, c.cctx)
		if err != nil {
			return err
		}
		if err := c.r.Waitall(sq, rq); err != nil {
			return err
		}
		round++
	}
	return nil
}

// treeBarrier: binomial combine to rank 0 followed by a binomial broadcast.
// Cheapest in connections (each rank talks only to its tree parent and
// children) but deepest in latency — the other end of the ablation axis.
func (c *Comm) treeBarrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.myrank
	token := make([]byte, 1)
	in := make([]byte, 1)
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			if err := c.csend(me-mask, tagBarrierUp, token); err != nil {
				return err
			}
			break
		}
		if me+mask < n {
			if _, err := c.crecv(in, me+mask, tagBarrierUp); err != nil {
				return err
			}
		}
	}
	return c.bcastCtx(token, 0, tagBarrierUp+1)
}

// recursiveDoubling runs the fold + XOR-exchange + unfold pattern shared by
// Barrier and Allreduce. buf is combined in place on every rank.
func (c *Comm) recursiveDoubling(buf []byte, op Op, tag int) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	me := c.myrank
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	rem := n - p2
	tmp := make([]byte, len(buf))

	// Fold: ranks beyond the power-of-2 core hand their contribution down.
	if me >= p2 {
		if err := c.csend(me-p2, tag, buf); err != nil {
			return err
		}
		// Wait for the final result.
		_, err := c.crecv(buf, me-p2, tag+1)
		return err
	}
	if me < rem {
		if _, err := c.crecv(tmp, me+p2, tag); err != nil {
			return err
		}
		op.Combine(buf, tmp)
	}
	// Hypercube exchange.
	for mask := 1; mask < p2; mask <<= 1 {
		partner := me ^ mask
		if err := c.csendrecv(partner, tag+2, buf, tmp); err != nil {
			return err
		}
		op.Combine(buf, tmp)
	}
	// Unfold.
	if me < rem {
		return c.csend(me+p2, tag+1, buf)
	}
	return nil
}

// Bcast broadcasts buf from root to every rank (binomial tree).
func (c *Comm) Bcast(buf []byte, root int) error {
	defer c.r.prof.enter("Bcast")()
	return c.bcastCtx(buf, root, tagBcast)
}

func (c *Comm) bcastCtx(buf []byte, root, tag int) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	if root < 0 || root >= n {
		return fmt.Errorf("mpi: Bcast root %d of %d", root, n)
	}
	relative := (c.myrank - root + n) % n
	mask := 1
	for mask < n {
		if relative&mask != 0 {
			src := (relative - mask + root) % n
			if _, err := c.crecv(buf, (src+n)%n, tag); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < n {
			dst := (relative + mask + root) % n
			if err := c.csend(dst, tag, buf); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce combines every rank's sendbuf with op into recvbuf at root
// (binomial tree). recvbuf is only written at root and must be len(sendbuf).
func (c *Comm) Reduce(sendbuf, recvbuf []byte, op Op, root int) error {
	defer c.r.prof.enter("Reduce")()
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("mpi: Reduce root %d of %d", root, n)
	}
	accum := append([]byte(nil), sendbuf...)
	tmp := make([]byte, len(sendbuf))
	relative := (c.myrank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if relative&mask != 0 {
			dst := (relative - mask + root) % n
			if err := c.csend((dst+n)%n, tagReduce, accum); err != nil {
				return err
			}
			break
		}
		if relative+mask < n {
			src := (relative + mask + root) % n
			if _, err := c.crecv(tmp, src, tagReduce); err != nil {
				return err
			}
			op.Combine(accum, tmp)
		}
	}
	if c.myrank == root {
		copy(recvbuf, accum)
	}
	return nil
}

// Allreduce combines every rank's sendbuf into recvbuf on all ranks. The
// default is recursive doubling — the log2(N)-partner pattern whose
// per-rank VI counts the paper's Table 2 measures for MVICH (4 at 16
// processes, 5 at 32). Config.AllreduceAlg selects "reduce-bcast" (binomial
// reduce to rank 0 plus broadcast — fewer connections, higher latency) for
// the ablation.
func (c *Comm) Allreduce(sendbuf, recvbuf []byte, op Op) error {
	defer c.r.prof.enter("Allreduce")()
	if len(recvbuf) < len(sendbuf) {
		return fmt.Errorf("mpi: Allreduce recvbuf %d < sendbuf %d", len(recvbuf), len(sendbuf))
	}
	switch c.r.cfg.AllreduceAlg {
	case "", "rd":
		copy(recvbuf, sendbuf)
		return c.recursiveDoubling(recvbuf[:len(sendbuf)], op, tagAllreduce)
	case "reduce-bcast":
		if err := c.Reduce(sendbuf, recvbuf, op, 0); err != nil {
			return err
		}
		return c.Bcast(recvbuf[:len(sendbuf)], 0)
	default:
		return fmt.Errorf("mpi: unknown allreduce algorithm %q", c.r.cfg.AllreduceAlg)
	}
}

// AllreduceF64 is a convenience wrapper reducing float64 slices.
func (c *Comm) AllreduceF64(in []float64, op Op) ([]float64, error) {
	sb := F64Bytes(in)
	rb := make([]byte, len(sb))
	if err := c.Allreduce(sb, rb, op); err != nil {
		return nil, err
	}
	return BytesF64(rb), nil
}

// AllreduceI64 is a convenience wrapper reducing int64 slices.
func (c *Comm) AllreduceI64(in []int64, op Op) ([]int64, error) {
	sb := I64Bytes(in)
	rb := make([]byte, len(sb))
	if err := c.Allreduce(sb, rb, op); err != nil {
		return nil, err
	}
	return BytesI64(rb), nil
}

// Gather collects each rank's equal-size sendbuf into recvbuf at root
// (linear, as in MPICH-1). recvbuf must be Size()*len(sendbuf) at root.
func (c *Comm) Gather(sendbuf, recvbuf []byte, root int) error {
	defer c.r.prof.enter("Gather")()
	n := c.Size()
	sz := len(sendbuf)
	if c.myrank != root {
		return c.csend(root, tagGather, sendbuf)
	}
	if len(recvbuf) < n*sz {
		return fmt.Errorf("mpi: Gather recvbuf %d < %d", len(recvbuf), n*sz)
	}
	copy(recvbuf[root*sz:], sendbuf)
	reqs := make([]*Request, 0, n-1)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		req, err := c.irecvCtx(recvbuf[i*sz:(i+1)*sz], i, tagGather, c.cctx)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.r.Waitall(reqs...)
}

// Scatter distributes equal-size chunks of sendbuf at root to every rank's
// recvbuf (linear, as in MPICH-1).
func (c *Comm) Scatter(sendbuf, recvbuf []byte, root int) error {
	defer c.r.prof.enter("Scatter")()
	n := c.Size()
	sz := len(recvbuf)
	if c.myrank != root {
		_, err := c.crecv(recvbuf, root, tagScatter)
		return err
	}
	if len(sendbuf) < n*sz {
		return fmt.Errorf("mpi: Scatter sendbuf %d < %d", len(sendbuf), n*sz)
	}
	for i := 0; i < n; i++ {
		if i == root {
			copy(recvbuf, sendbuf[i*sz:(i+1)*sz])
			continue
		}
		if err := c.csend(i, tagScatter, sendbuf[i*sz:(i+1)*sz]); err != nil {
			return err
		}
	}
	return nil
}

// Allgather concatenates each rank's equal-size sendbuf into recvbuf on all
// ranks: recursive doubling when the size is a power of two (log2(N)
// partners, doubling block runs), otherwise gather-to-0 plus broadcast.
func (c *Comm) Allgather(sendbuf, recvbuf []byte) error {
	defer c.r.prof.enter("Allgather")()
	n := c.Size()
	sz := len(sendbuf)
	if len(recvbuf) < n*sz {
		return fmt.Errorf("mpi: Allgather recvbuf %d < %d", len(recvbuf), n*sz)
	}
	if n&(n-1) != 0 {
		if err := c.Gather(sendbuf, recvbuf, 0); err != nil {
			return err
		}
		return c.Bcast(recvbuf[:n*sz], 0)
	}
	me := c.myrank
	copy(recvbuf[me*sz:(me+1)*sz], sendbuf)
	for mask := 1; mask < n; mask <<= 1 {
		partner := me ^ mask
		myBase := me &^ (mask - 1)
		pBase := partner &^ (mask - 1)
		out := recvbuf[myBase*sz : (myBase+mask)*sz]
		in := recvbuf[pBase*sz : (pBase+mask)*sz]
		if err := c.csendrecv(partner, tagAllgather, out, in); err != nil {
			return err
		}
	}
	return nil
}

// AllgatherI64 gathers one int64 block per rank.
func (c *Comm) AllgatherI64(in []int64, out []int64) error {
	sb := I64Bytes(in)
	rb := make([]byte, len(sb)*c.Size())
	if err := c.Allgather(sb, rb); err != nil {
		return err
	}
	copy(out, BytesI64(rb))
	return nil
}

// Alltoall exchanges equal-size blocks: rank i's block j lands in rank j's
// slot i. Pairwise linear exchange with all receives pre-posted.
func (c *Comm) Alltoall(sendbuf, recvbuf []byte, blockSize int) error {
	n := c.Size()
	if len(sendbuf) < n*blockSize || len(recvbuf) < n*blockSize {
		return fmt.Errorf("mpi: Alltoall buffers too small for %d x %d", n, blockSize)
	}
	counts := make([]int, n)
	sdispl := make([]int, n)
	rdispl := make([]int, n)
	for i := 0; i < n; i++ {
		counts[i] = blockSize
		sdispl[i] = i * blockSize
		rdispl[i] = i * blockSize
	}
	return c.Alltoallv(sendbuf, counts, sdispl, recvbuf, counts, rdispl)
}

// Alltoallv is the vector all-to-all: rank i sends sendbuf[sdispl[j]:+scounts[j]]
// to rank j, receiving into recvbuf[rdispl[j]:+rcounts[j]].
func (c *Comm) Alltoallv(sendbuf []byte, scounts, sdispl []int,
	recvbuf []byte, rcounts, rdispl []int) error {
	defer c.r.prof.enter("Alltoallv")()
	n := c.Size()
	me := c.myrank
	copy(recvbuf[rdispl[me]:rdispl[me]+rcounts[me]], sendbuf[sdispl[me]:sdispl[me]+scounts[me]])
	reqs := make([]*Request, 0, 2*(n-1))
	// Post all receives first, then sends, staggered (rank+i) to spread load.
	for i := 1; i < n; i++ {
		src := (me - i + n) % n
		req, err := c.irecvCtx(recvbuf[rdispl[src]:rdispl[src]+rcounts[src]], src, tagAlltoall, c.cctx)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for i := 1; i < n; i++ {
		dst := (me + i) % n
		req, err := c.isendCtx(ModeStandard, dst, tagAlltoall, sendbuf[sdispl[dst]:sdispl[dst]+scounts[dst]], c.cctx)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.r.Waitall(reqs...)
}

// Scan computes the inclusive prefix reduction: rank i's recvbuf holds the
// combination of sendbufs from ranks 0..i (linear chain).
func (c *Comm) Scan(sendbuf, recvbuf []byte, op Op) error {
	defer c.r.prof.enter("Scan")()
	copy(recvbuf, sendbuf)
	if c.myrank > 0 {
		tmp := make([]byte, len(sendbuf))
		if _, err := c.crecv(tmp, c.myrank-1, tagScan); err != nil {
			return err
		}
		// Combine with the prefix from the left: result = prefix op mine.
		op.Combine(tmp, sendbuf)
		copy(recvbuf, tmp)
	}
	if c.myrank < c.Size()-1 {
		return c.csend(c.myrank+1, tagScan, recvbuf[:len(sendbuf)])
	}
	return nil
}

// ReduceScatterBlock reduces equal blocks then scatters one block per rank:
// implemented as Reduce to rank 0 followed by Scatter, as MPICH-1 did.
func (c *Comm) ReduceScatterBlock(sendbuf, recvbuf []byte, op Op) error {
	n := c.Size()
	full := make([]byte, len(sendbuf))
	if err := c.Reduce(sendbuf, full, op, 0); err != nil {
		return err
	}
	return c.Scatter(full, recvbuf[:len(sendbuf)/n], 0)
}

// csend is a blocking collective-context send.
func (c *Comm) csend(dst, tag int, data []byte) error {
	req, err := c.isendCtx(ModeStandard, dst, tag, data, c.cctx)
	if err != nil {
		return err
	}
	return c.r.Wait(req)
}

// csendrecv is a blocking collective-context symmetric exchange with one
// partner: send out, receive into in, same tag.
func (c *Comm) csendrecv(partner, tag int, out, in []byte) error {
	sq, err := c.isendCtx(ModeStandard, partner, tag, out, c.cctx)
	if err != nil {
		return err
	}
	rq, err := c.irecvCtx(in, partner, tag, c.cctx)
	if err != nil {
		return err
	}
	return c.r.Waitall(sq, rq)
}

// crecv is a blocking collective-context receive.
func (c *Comm) crecv(buf []byte, src, tag int) (Status, error) {
	req, err := c.irecvCtx(buf, src, tag, c.cctx)
	if err != nil {
		return Status{}, err
	}
	if err := c.r.Wait(req); err != nil {
		return Status{}, err
	}
	return req.status, nil
}
