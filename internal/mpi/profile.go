package mpi

import (
	"fmt"
	"io"
	"sort"

	"viampi/internal/simnet"
)

// Profiling layer (the moral equivalent of PMPI): when Config.Profile is
// set, every blocking MPI entry point records its call count and virtual
// time per rank. The paper's analysis style — "IS is communication bound",
// "MG calls barrier, allreduce and bcast" — comes straight out of this kind
// of accounting.

// CallStat is one entry point's accumulated profile on one rank.
type CallStat struct {
	Calls int64
	Time  simnet.Duration
}

// profiler accumulates per-call statistics for one rank. Only the
// outermost MPI entry point on the call stack records (a Waitall inside
// Alltoall is charged to Alltoall, not double-counted).
type profiler struct {
	proc  *simnet.Proc
	stats map[string]*CallStat
	depth int
}

// enter starts timing an entry point; the returned func stops it.
// A nil profiler (profiling disabled) costs one branch.
func (p *profiler) enter(name string) func() {
	if p == nil {
		return func() {}
	}
	p.depth++
	if p.depth > 1 {
		return func() { p.depth-- }
	}
	start := p.proc.Now()
	return func() {
		p.depth--
		st := p.stats[name]
		if st == nil {
			st = &CallStat{}
			p.stats[name] = st
		}
		st.Calls++
		st.Time += p.proc.Now().Sub(start)
	}
}

// Profile returns this rank's per-call statistics (nil unless
// Config.Profile was set).
func (r *Rank) Profile() map[string]*CallStat {
	if r.prof == nil {
		return nil
	}
	return r.prof.stats
}

// WriteProfile renders a rank-aggregated profile: per entry point, total
// calls and virtual time across all ranks, sorted by time.
func (w *World) WriteProfile(out io.Writer) {
	agg := map[string]*CallStat{}
	for _, rs := range w.Ranks {
		for name, st := range rs.Profile {
			a := agg[name]
			if a == nil {
				a = &CallStat{}
				agg[name] = a
			}
			a.Calls += st.Calls
			a.Time += st.Time
		}
	}
	if len(agg) == 0 {
		fmt.Fprintln(out, "profile: empty (run with Config.Profile = true)")
		return
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return agg[names[i]].Time > agg[names[j]].Time })
	fmt.Fprintf(out, "%-12s %10s %14s %12s\n", "call", "count", "total time", "avg")
	for _, n := range names {
		st := agg[n]
		avg := simnet.Duration(0)
		if st.Calls > 0 {
			avg = st.Time / simnet.Duration(st.Calls)
		}
		fmt.Fprintf(out, "%-12s %10d %14s %12s\n", n, st.Calls, st.Time, avg)
	}
}
