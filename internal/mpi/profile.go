package mpi

import (
	"fmt"
	"io"
	"sort"

	"viampi/internal/obs"
	"viampi/internal/simnet"
)

// Profiling layer (the moral equivalent of PMPI): when Config.Profile is
// set, every blocking MPI entry point records its call count and virtual
// time per rank. The paper's analysis style — "IS is communication bound",
// "MG calls barrier, allreduce and bcast" — comes straight out of this kind
// of accounting.

// CallStat is one entry point's accumulated profile on one rank.
type CallStat struct {
	Calls int64
	Time  simnet.Duration
}

// profiler accumulates per-call statistics for one rank. Only the
// outermost MPI entry point on the call stack records (a Waitall inside
// Alltoall is charged to Alltoall, not double-counted). When an
// observability bus is attached, outermost entry points also become
// call-span events (rendered as slices on the rank's trace track); stats
// stay nil unless Config.Profile asked for the table.
type profiler struct {
	proc  *simnet.Proc
	stats map[string]*CallStat
	depth int
	rank  int32
	bus   *obs.Bus
}

// enter starts timing an entry point; the returned func stops it.
// A nil profiler (profiling disabled) costs one branch.
func (p *profiler) enter(name string) func() {
	if p == nil {
		return func() {}
	}
	p.depth++
	if p.depth > 1 {
		return func() { p.depth-- }
	}
	start := p.proc.Now()
	p.bus.Emit(obs.Event{T: int64(start), Kind: obs.EvCallBegin,
		Rank: p.rank, Peer: -1, Name: name})
	return func() {
		p.depth--
		end := p.proc.Now()
		p.bus.Emit(obs.Event{T: int64(end), Kind: obs.EvCallEnd,
			Rank: p.rank, Peer: -1, Name: name})
		if p.stats == nil {
			return
		}
		st := p.stats[name]
		if st == nil {
			st = &CallStat{}
			p.stats[name] = st
		}
		st.Calls++
		st.Time += end.Sub(start)
	}
}

// Profile returns this rank's per-call statistics (nil unless
// Config.Profile was set).
func (r *Rank) Profile() map[string]*CallStat {
	if r.prof == nil {
		return nil
	}
	return r.prof.stats
}

// WriteProfile renders a rank-aggregated profile: per entry point, total
// calls and virtual time across all ranks (sorted by time), plus the
// per-rank spread — the fastest and slowest single-rank totals and the
// imbalance ratio max/avg (1.00 = perfectly balanced; ranks that never
// issued the call count as zero time, so a point-to-point call concentrated
// on one rank shows its concentration here).
func (w *World) WriteProfile(out io.Writer) {
	nr := len(w.Ranks)
	byCall := map[string][]simnet.Duration{} // per-rank time, indexed by rank
	calls := map[string]int64{}
	for i, rs := range w.Ranks {
		for name, st := range rs.Profile {
			v := byCall[name]
			if v == nil {
				v = make([]simnet.Duration, nr)
				byCall[name] = v
			}
			v[i] = st.Time
			calls[name] += st.Calls
		}
	}
	if len(byCall) == 0 {
		fmt.Fprintln(out, "profile: empty (run with Config.Profile = true)")
		return
	}
	total := map[string]simnet.Duration{}
	names := make([]string, 0, len(byCall))
	for n, v := range byCall {
		names = append(names, n)
		for _, t := range v {
			total[n] += t
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if total[names[i]] != total[names[j]] {
			return total[names[i]] > total[names[j]]
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(out, "%-12s %10s %14s %12s %12s %12s %7s\n",
		"call", "count", "total time", "avg", "rank min", "rank max", "imbal")
	for _, n := range names {
		v := byCall[n]
		min, max := v[0], v[0]
		for _, t := range v[1:] {
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
		}
		avg := simnet.Duration(0)
		if calls[n] > 0 {
			avg = total[n] / simnet.Duration(calls[n])
		}
		imbal := 1.0
		if total[n] > 0 {
			imbal = float64(max) * float64(nr) / float64(total[n])
		}
		fmt.Fprintf(out, "%-12s %10d %14s %12s %12s %12s %7.2f\n",
			n, calls[n], total[n], avg, min, max, imbal)
	}
}
