package mpi

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileAccounting(t *testing.T) {
	cfg := testCfg(4)
	cfg.Profile = true
	w := runWorld(t, cfg, func(r *Rank) {
		c := r.World()
		for i := 0; i < 10; i++ {
			if err := c.Barrier(); err != nil {
				t.Error(err)
				return
			}
		}
		if r.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 100)); err != nil {
				t.Error(err)
			}
		} else if r.Rank() == 1 {
			buf := make([]byte, 128)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
	p0 := w.Ranks[0].Profile
	if p0 == nil {
		t.Fatal("no profile collected")
	}
	if p0["Barrier"] == nil || p0["Barrier"].Calls != 10 {
		t.Fatalf("Barrier profile = %+v", p0["Barrier"])
	}
	if p0["Barrier"].Time <= 0 {
		t.Fatal("Barrier time not accounted")
	}
	if p0["Send"] == nil || p0["Send"].Calls != 1 {
		t.Fatalf("Send profile = %+v", p0["Send"])
	}
	// Nested Wait inside Barrier/Send must NOT appear separately.
	if p0["Wait"] != nil || p0["Waitall"] != nil {
		t.Fatalf("nested calls leaked into profile: %+v %+v", p0["Wait"], p0["Waitall"])
	}
	var buf bytes.Buffer
	w.WriteProfile(&buf)
	out := buf.String()
	if !strings.Contains(out, "Barrier") || !strings.Contains(out, "call") {
		t.Fatalf("WriteProfile output:\n%s", out)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	w := runWorld(t, testCfg(2), func(r *Rank) {
		if err := r.World().Barrier(); err != nil {
			t.Error(err)
		}
	})
	if w.Ranks[0].Profile != nil {
		t.Fatal("profile collected without Config.Profile")
	}
	var buf bytes.Buffer
	w.WriteProfile(&buf)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("empty profile rendering: %s", buf.String())
	}
}
