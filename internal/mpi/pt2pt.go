package mpi

import "fmt"

// Isend starts a standard-mode nonblocking send of data to dst (comm rank)
// with the given tag.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	return c.isendCtx(ModeStandard, dst, tag, data, c.ctx)
}

// IsendMode starts a nonblocking send in the given MPI communication mode.
func (c *Comm) IsendMode(mode SendMode, dst, tag int, data []byte) (*Request, error) {
	return c.isendCtx(mode, dst, tag, data, c.ctx)
}

// Send is the blocking standard-mode send.
func (c *Comm) Send(dst, tag int, data []byte) error {
	defer c.r.prof.enter("Send")()
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	return c.r.Wait(req)
}

// Ssend is the blocking synchronous-mode send: it completes only after the
// matching receive has started (always rendezvous).
func (c *Comm) Ssend(dst, tag int, data []byte) error {
	defer c.r.prof.enter("Ssend")()
	req, err := c.IsendMode(ModeSynchronous, dst, tag, data)
	if err != nil {
		return err
	}
	return c.r.Wait(req)
}

// Issend starts a nonblocking synchronous-mode send.
func (c *Comm) Issend(dst, tag int, data []byte) (*Request, error) {
	return c.isendCtx(ModeSynchronous, dst, tag, data, c.ctx)
}

// Rsend is the blocking ready-mode send. The transfer is identical to
// standard mode; the caller asserts a matching receive is already posted.
func (c *Comm) Rsend(dst, tag int, data []byte) error {
	defer c.r.prof.enter("Rsend")()
	req, err := c.IsendMode(ModeReady, dst, tag, data)
	if err != nil {
		return err
	}
	return c.r.Wait(req)
}

// Bsend is the buffered-mode send: it copies data into library-owned storage
// and completes locally at once; the transfer is driven by the progress
// engine and drained at Finalize. It is the only *local* send mode (§3.6).
func (c *Comm) Bsend(dst, tag int, data []byte) error {
	defer c.r.prof.enter("Bsend")()
	cp := append([]byte(nil), data...)
	req, err := c.isendCtx(ModeStandard, dst, tag, cp, c.ctx)
	if err != nil {
		return err
	}
	if !req.done {
		c.r.detached = append(c.r.detached, req)
	}
	return nil
}

func (c *Comm) isendCtx(mode SendMode, dst, tag int, data []byte, ctx int32) (*Request, error) {
	r := c.r
	if dst < 0 || dst >= c.Size() {
		return nil, fmt.Errorf("mpi: Isend to rank %d of %d", dst, c.Size())
	}
	world := c.ranks[dst]
	req := &Request{r: r, dstWorld: world, mode: mode, data: data}

	r.obsSend(world, len(data), tag)
	if world == r.rank {
		// Self-send: move bytes through the matching engine directly.
		h := hdr{kind: pktEager, srcRank: int32(c.myrank), tag: int32(tag),
			ctx: ctx, size: int32(len(data))}
		if rq := r.matchPRQ(h); rq != nil {
			r.deliverEager(rq, h, data)
		} else {
			cp := append([]byte(nil), data...)
			r.umq = append(r.umq, &umsg{h: h, payload: cp})
		}
		req.complete()
		return req, nil
	}

	cs, err := r.channel(world)
	if err != nil {
		return nil, err
	}
	cs.userSends++
	if len(data) <= r.cfg.EagerThreshold && mode != ModeSynchronous {
		r.post(cs, &pkt{
			hdr: hdr{kind: pktEager, srcRank: int32(c.myrank), tag: int32(tag),
				ctx: ctx, size: int32(len(data))},
			payload: data,
			onEmit:  req.complete, // standard mode: local completion once buffered
		})
		return req, nil
	}

	// Rendezvous (long messages, and every synchronous send).
	r.nextReq++
	id := r.nextReq
	r.sendReqs[id] = req
	cs.pendingRdv++
	r.post(cs, &pkt{hdr: hdr{kind: pktRts, srcRank: int32(c.myrank), tag: int32(tag),
		ctx: ctx, size: int32(len(data)), sreq: id}})
	return req, nil
}

// Irecv starts a nonblocking receive into buf from src (comm rank or
// AnySource) with the given tag (or AnyTag).
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	return c.irecvCtx(buf, src, tag, c.ctx)
}

// Recv is the blocking receive.
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	defer c.r.prof.enter("Recv")()
	req, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	if err := c.r.Wait(req); err != nil {
		return Status{}, err
	}
	return req.status, nil
}

func (c *Comm) irecvCtx(buf []byte, src, tag int, ctx int32) (*Request, error) {
	r := c.r
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return nil, fmt.Errorf("mpi: Irecv from rank %d of %d", src, c.Size())
	}
	req := &Request{r: r, isRecv: true, buf: buf, src: src, tag: tag, ctx: ctx}

	// Paper §3.5: a receive from ANY_SOURCE forces connections to everyone
	// in the communicator; §4: a specific-source receive initiates the
	// connection to that source (the receiver side of on-demand setup).
	if src == AnySource {
		for _, w := range c.ranks {
			if w == r.rank {
				continue
			}
			if _, err := r.channel(w); err != nil {
				return nil, err
			}
		}
	} else if c.ranks[src] != r.rank {
		if _, err := r.channel(c.ranks[src]); err != nil {
			return nil, err
		}
	}

	if u := r.matchUMQ(req); u != nil {
		switch u.h.kind {
		case pktEager:
			r.deliverEager(req, u.h, u.payload)
		case pktRts:
			r.acceptRendezvous(req, u.h, u.cs)
		default:
			req.failf("mpi: unexpected queue held %s packet", pktKindString(u.h.kind))
		}
		return req, nil
	}
	r.prq = append(r.prq, req)
	return req, nil
}

// matchUMQ finds and removes the first unexpected message matching req.
func (r *Rank) matchUMQ(req *Request) *umsg {
	for i, u := range r.umq {
		if matches(req, u.h) {
			r.umq = append(r.umq[:i], r.umq[i+1:]...)
			if u.cs != nil && u.h.kind == pktRts {
				u.cs.umqRefs-- // self-send/eager entries never touch cs again
			}
			return u
		}
	}
	return nil
}

// Sendrecv performs a combined blocking send and receive, progressing both
// operations together (safe against head-to-head exchanges).
func (c *Comm) Sendrecv(dst, stag int, sdata []byte, src, rtag int, rbuf []byte) (Status, error) {
	defer c.r.prof.enter("Sendrecv")()
	sreq, err := c.Isend(dst, stag, sdata)
	if err != nil {
		return Status{}, err
	}
	rreq, err := c.Irecv(rbuf, src, rtag)
	if err != nil {
		return Status{}, err
	}
	if err := c.r.Waitall(sreq, rreq); err != nil {
		return Status{}, err
	}
	return rreq.status, nil
}

// Wait blocks until the request completes, driving progress (MPI_Wait).
func (r *Rank) Wait(q *Request) error {
	defer r.prof.enter("Wait")()
	r.waitProgress(func() bool { return q.done })
	return q.err
}

// Test makes one progress pass and reports whether the request completed.
func (r *Rank) Test(q *Request) (bool, error) {
	r.progress()
	return q.done, q.err
}

// Waitall blocks until every request completes, returning the first error.
func (r *Rank) Waitall(reqs ...*Request) error {
	defer r.prof.enter("Waitall")()
	r.waitProgress(func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
	for _, q := range reqs {
		if q.err != nil {
			return q.err
		}
	}
	return nil
}

// Iprobe makes one progress pass and reports whether a matching message is
// waiting, without receiving it.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	r := c.r
	r.progress()
	probe := &Request{src: src, tag: tag, ctx: c.ctx}
	for _, u := range r.umq {
		if matches(probe, u.h) {
			return Status{Source: int(u.h.srcRank), Tag: int(u.h.tag), Count: int(u.h.size)}, true
		}
	}
	return Status{}, false
}

// Probe blocks until a matching message is waiting (MPI_Probe).
func (c *Comm) Probe(src, tag int) Status {
	defer c.r.prof.enter("Probe")()
	var st Status
	c.r.waitProgress(func() bool {
		s, ok := c.Iprobe(src, tag)
		if ok {
			st = s
		}
		return ok
	})
	return st
}
