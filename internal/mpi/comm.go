package mpi

import "fmt"

// Comm is a communicator: an ordered group of ranks plus an isolated
// matching context. Point-to-point traffic uses ctx; collectives use the
// adjacent cctx so they can never match user receives (MPICH's hidden
// collective context).
type Comm struct {
	r      *Rank
	ctx    int32
	cctx   int32
	ranks  []int // comm rank -> world rank
	myrank int   // this process's rank within the comm
}

// newComm builds a communicator from a world-rank list. Every participating
// rank must call it with the same list and base context.
func newComm(r *Rank, ranks []int, baseCtx int32) *Comm {
	c := &Comm{r: r, ctx: baseCtx, cctx: baseCtx + 1, ranks: ranks, myrank: -1}
	if r.rank < len(ranks) && ranks[r.rank] == r.rank {
		// Identity-mapped position (always true for the world communicator,
		// whose table is shared across all ranks): skipping the scan keeps
		// communicator construction O(1) per rank instead of O(n²) job-wide.
		c.myrank = r.rank
		return c
	}
	for i, w := range ranks {
		if w == r.rank {
			c.myrank = i
		}
	}
	return c
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myrank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(rank int) int { return c.ranks[rank] }

// Dup creates a duplicate communicator with a fresh context (collective).
func (c *Comm) Dup() (*Comm, error) {
	ctx, err := c.allocContext()
	if err != nil {
		return nil, err
	}
	return newComm(c.r, append([]int(nil), c.ranks...), ctx), nil
}

// Split partitions the communicator by color, ordering each part by (key,
// rank) as MPI_Comm_split does. Ranks passing a negative color get nil.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Allgather everyone's (color, key).
	mine := []int64{int64(color), int64(key)}
	all := make([]int64, 2*c.Size())
	if err := c.AllgatherI64(mine, all); err != nil {
		return nil, err
	}
	ctx, err := c.allocContext()
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	if 2*color+1 >= ctxBlock {
		return nil, fmt.Errorf("mpi: Split color %d exceeds the %d-color limit", color, ctxBlock/2)
	}
	type member struct{ key, rank int }
	var members []member
	for rank := 0; rank < c.Size(); rank++ {
		if int(all[2*rank]) == color {
			members = append(members, member{int(all[2*rank+1]), rank})
		}
	}
	// Stable order by (key, original rank).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.key < a.key || (b.key == a.key && b.rank < a.rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	ranks := make([]int, len(members))
	for i, m := range members {
		ranks[i] = c.ranks[m.rank]
	}
	// Each color gets a distinct context carved from the agreed block.
	return newComm(c.r, ranks, ctx+2*int32(color)), nil
}

// ctxBlock is the number of context ids reserved per allocation; Split
// carves (ctx, cctx) pairs for up to ctxBlock/2 colors out of one block.
const ctxBlock = 64

// allocContext collectively agrees on a fresh block of context ids: the max
// of everyone's local counter. It costs one allreduce on the parent comm.
func (c *Comm) allocContext() (int32, error) {
	out, err := c.AllreduceI64([]int64{int64(c.r.ctxCounter)}, MaxI64)
	if err != nil {
		return 0, err
	}
	base := int32(out[0])
	c.r.ctxCounter = base + ctxBlock
	return base, nil
}
