package mpi

import (
	"bytes"
	"testing"
)

// FuzzPacketDecode checks that decode never panics and that
// encode(decode(x)) is stable for valid packets.
func FuzzPacketDecode(f *testing.F) {
	f.Add(encode(hdr{kind: pktEager, srcRank: 1, tag: 2, ctx: 3, size: 4}, []byte("hello")))
	f.Add(encode(hdr{kind: pktRts, size: 1 << 20, sreq: 42}, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := decode(data)
		if err != nil {
			return // short packets are rejected; that is the contract
		}
		// Round-trip through encode: the decoded header and payload must
		// survive (padding bytes are canonicalized to zero by encode, so we
		// compare decoded forms, not raw bytes).
		h2, p2, err := decode(encode(h, payload))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2 != h || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip mismatch: %+v/%x vs %+v/%x", h2, p2, h, payload)
		}
	})
}

// FuzzMatching checks the matcher against arbitrary header fields: a posted
// request with explicit source and tag must only match exactly, and
// wildcards must match anything within the context.
func FuzzMatching(f *testing.F) {
	f.Add(int32(0), int32(0), int32(0), 0, 0, int32(0))
	f.Add(int32(3), int32(7), int32(1), -1, -1, int32(1))
	f.Fuzz(func(t *testing.T, src, tag, ctx int32, wantSrc, wantTag int, wantCtx int32) {
		req := &Request{src: wantSrc, tag: wantTag, ctx: wantCtx}
		h := hdr{srcRank: src, tag: tag, ctx: ctx}
		got := matches(req, h)
		want := ctx == wantCtx &&
			(wantSrc == AnySource || int32(wantSrc) == src) &&
			(wantTag == AnyTag || int32(wantTag) == tag)
		if got != want {
			t.Fatalf("matches(%+v, %+v) = %v, want %v", req, h, got, want)
		}
	})
}
