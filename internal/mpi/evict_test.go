package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"viampi/internal/obs"
	"viampi/internal/simnet"
	"viampi/internal/sweep"
	"viampi/internal/via"
)

// TestEvictionFIFOOrder runs a phased shift pattern under a VI cap far below
// N-1: every phase talks to a fresh peer, so channels are continually
// evicted and re-established. Message payloads encode (src, phase, iter) and
// receivers verify them exactly — any reordering or loss across an
// evict→reconnect cycle fails loudly. The collector counters prove the cap
// actually forced evictions and reconnects rather than the test passing
// vacuously.
func TestEvictionFIFOOrder(t *testing.T) {
	const (
		n      = 6
		maxVIs = 2
		phases = n - 1
		iters  = 5
	)
	bus := obs.NewBus()
	reg := obs.NewRegistry()
	obs.NewCollector(reg).Attach(bus)
	cfg := Config{Procs: n, Policy: "ondemand", MaxVIs: maxVIs,
		Deadline: 120 * simnet.Second, Seed: 7, Obs: bus}
	_, err := Run(cfg, func(r *Rank) {
		c := r.World()
		me := r.Rank()
		buf := make([]byte, 12)
		out := make([]byte, 12)
		for ph := 1; ph <= phases; ph++ {
			dst := (me + ph) % n
			src := (me - ph + n) % n
			for i := 0; i < iters; i++ {
				binary.LittleEndian.PutUint32(out[0:], uint32(me))
				binary.LittleEndian.PutUint32(out[4:], uint32(ph))
				binary.LittleEndian.PutUint32(out[8:], uint32(i))
				if _, err := c.Sendrecv(dst, ph, out, src, ph, buf); err != nil {
					r.Abort(1, err.Error())
				}
				gotSrc := int(binary.LittleEndian.Uint32(buf[0:]))
				gotPh := int(binary.LittleEndian.Uint32(buf[4:]))
				gotIt := int(binary.LittleEndian.Uint32(buf[8:]))
				if gotSrc != src || gotPh != ph || gotIt != i {
					r.Abort(1, fmt.Sprintf("rank %d phase %d iter %d: got (%d,%d,%d)",
						me, ph, i, gotSrc, gotPh, gotIt))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev := reg.Counter("conn.evictions"); ev == 0 {
		t.Error("no evictions recorded: cap never engaged")
	}
	if rc := reg.Counter("events.conn.reconnect"); rc == 0 {
		t.Error("no reconnects recorded: eviction never round-tripped")
	}
}

// TestEvictionRandomProgramEquivalence requires the random program suite to
// produce bit-identical per-rank checksums with and without a VI cap: the
// eviction/reconnect machinery must be invisible to MPI semantics.
func TestEvictionRandomProgramEquivalence(t *testing.T) {
	const n = 6
	for seed := int64(1); seed <= 3; seed++ {
		prog := randProgram(seed, n)
		run := func(cap int) [][]byte {
			results := make([][]byte, n)
			cfg := Config{Procs: n, Policy: "ondemand", MaxVIs: cap,
				Deadline: 120 * simnet.Second, Seed: seed}
			if _, err := Run(cfg, func(r *Rank) { results[r.Rank()] = prog(r) }); err != nil {
				t.Fatalf("seed %d cap %d: %v", seed, cap, err)
			}
			return results
		}
		uncapped, capped := run(0), run(3)
		for rk := range uncapped {
			if !bytes.Equal(uncapped[rk], capped[rk]) {
				t.Fatalf("seed %d: rank %d differs under MaxVIs=3", seed, rk)
			}
		}
	}
}

// TestFaultMatrix replays the random program suite under injected
// connection-establishment faults — drops, NACK refusals, delays, and all
// three combined — across every connection policy, requiring per-rank
// checksums identical to the fault-free reference. Establishment retries
// must heal every fault without losing or reordering a single parked send.
func TestFaultMatrix(t *testing.T) {
	const n = 6
	plans := []struct {
		name string
		plan func() *via.FaultPlan
	}{
		{"drop", func() *via.FaultPlan { return &via.FaultPlan{DropConnReq: 0.3} }},
		{"refuse", func() *via.FaultPlan { return &via.FaultPlan{RefuseConnReq: 0.3} }},
		{"delay", func() *via.FaultPlan {
			return &via.FaultPlan{DelayConnReq: 0.5, ConnReqDelay: 300 * simnet.Microsecond}
		}},
		{"combined", func() *via.FaultPlan {
			return &via.FaultPlan{DropConnReq: 0.2, RefuseConnReq: 0.2,
				DelayConnReq: 0.3, ConnReqDelay: 200 * simnet.Microsecond}
		}},
	}
	seeds := []int64{1, 2}
	policies := []string{"static-cs", "static-p2p", "ondemand"}

	// matrixRun executes one cell — a full world under one (seed, policy,
	// fault plan) — and returns the per-rank checksums. Each job builds its
	// own program closure and result slice, so cells are hermetic and the
	// whole matrix fans out over the batch runner.
	matrixRun := func(seed int64, pol string, plan *via.FaultPlan) ([][]byte, error) {
		prog := randProgram(seed, n)
		results := make([][]byte, n)
		cfg := Config{Procs: n, Policy: pol, Deadline: 120 * simnet.Second,
			Seed: seed, Faults: plan}
		if _, err := Run(cfg, func(r *Rank) { results[r.Rank()] = prog(r) }); err != nil {
			return nil, err
		}
		return results, nil
	}

	// Stage 1: fault-free references, one per (seed, policy).
	var refJobs []sweep.Job[[][]byte]
	for _, seed := range seeds {
		for _, pol := range policies {
			seed, pol := seed, pol
			refJobs = append(refJobs, sweep.Job[[][]byte]{
				ID:  fmt.Sprintf("ref/seed=%d/%s", seed, pol),
				Run: func() ([][]byte, error) { return matrixRun(seed, pol, nil) },
			})
		}
	}
	refs, err := sweep.Values(sweep.Run(sweep.Options{}, refJobs))
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	// Stage 2: every fault plan against its reference.
	var faultJobs []sweep.Job[struct{}]
	for i, seed := range seeds {
		for j, pol := range policies {
			ref := refs[i*len(policies)+j]
			for _, pl := range plans {
				seed, pol, pl := seed, pol, pl
				faultJobs = append(faultJobs, sweep.Job[struct{}]{
					ID: fmt.Sprintf("seed=%d/%s/%s", seed, pol, pl.name),
					Run: func() (struct{}, error) {
						results, err := matrixRun(seed, pol, pl.plan())
						if err != nil {
							return struct{}{}, err
						}
						for rk := range results {
							if !bytes.Equal(ref[rk], results[rk]) {
								return struct{}{}, fmt.Errorf("seed %d %s %s: rank %d checksum differs from fault-free run",
									seed, pol, pl.name, rk)
							}
						}
						return struct{}{}, nil
					},
				})
			}
		}
	}
	for _, r := range sweep.Run(sweep.Options{}, faultJobs) {
		if r.Err != nil {
			t.Error(r.Err)
		}
	}
}

// TestFaultRetrySucceeds pins the NACK-then-retry path directly: the target
// endpoint refuses all connections during a window covering the first
// attempt, so establishment succeeds only through timeout/backoff retry.
func TestFaultRetrySucceeds(t *testing.T) {
	bus := obs.NewBus()
	reg := obs.NewRegistry()
	obs.NewCollector(reg).Attach(bus)
	plan := &via.FaultPlan{Unavailable: []via.FaultWindow{
		{Ep: 1, From: 0, To: simnet.Time(5 * simnet.Millisecond)},
	}}
	msg := []byte("made it through the outage")
	cfg := Config{Procs: 2, Policy: "ondemand", Faults: plan,
		Deadline: 120 * simnet.Second, Seed: 3, Obs: bus}
	world, err := Run(cfg, func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Send(1, 9, msg); err != nil {
				r.Abort(1, err.Error())
			}
		} else {
			// Stay out of MPI until the outage ends: posting the receive
			// earlier would initiate a reverse connection from the healthy
			// endpoint and heal the fault without any retry.
			r.Proc().Sleep(6 * simnet.Millisecond)
			buf := make([]byte, 64)
			st, err := c.Recv(buf, 0, 9)
			if err != nil {
				r.Abort(1, err.Error())
			}
			if !bytes.Equal(buf[:st.Count], msg) {
				r.Abort(1, "payload corrupted across retries")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if world.Net.ConnReqsRefused == 0 {
		t.Error("no refusals recorded: the unavailability window never engaged")
	}
	if reg.Counter("conn.retries") == 0 {
		t.Error("no retries recorded: establishment should have needed at least one")
	}
}
