package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"viampi/internal/simnet"
)

// randProgram generates a deterministic, valid MPI program from a seed: a
// sequence of steps where every rank participates in a randomly chosen
// collective, a randomly matched point-to-point round, or local compute.
// Every rank folds everything it observes into a checksum; the program is
// valid by construction (sends and receives are paired by the generator).
//
// Running the same seed under every connection policy and device and
// demanding identical checksums is the strongest whole-stack equivalence
// test in the suite: connection management must be semantically invisible.
func randProgram(seed int64, n int) func(r *Rank) []byte {
	type step struct {
		kind  int // 0: collective, 1: pt2pt round, 2: compute
		op    int
		pairs [][2]int // pt2pt: disjoint (src, dst) pairs
		size  int
		tag   int
	}
	rng := rand.New(rand.NewSource(seed))
	var steps []step
	nsteps := 6 + rng.Intn(6)
	for s := 0; s < nsteps; s++ {
		switch rng.Intn(3) {
		case 0:
			steps = append(steps, step{kind: 0, op: rng.Intn(5), size: 8 << rng.Intn(4)})
		case 1:
			perm := rng.Perm(n)
			var pairs [][2]int
			for i := 0; i+1 < len(perm); i += 2 {
				pairs = append(pairs, [2]int{perm[i], perm[i+1]})
			}
			steps = append(steps, step{kind: 1, pairs: pairs,
				size: 1 + rng.Intn(9000), tag: rng.Intn(8)})
		default:
			steps = append(steps, step{kind: 2})
		}
	}

	return func(r *Rank) []byte {
		c := r.World()
		me := c.Rank()
		sum := []byte{byte(me)}
		fold := func(b []byte) {
			h := byte(0)
			for _, x := range b {
				h = h*31 + x
			}
			sum = append(sum, h)
		}
		for si, st := range steps {
			switch st.kind {
			case 0:
				switch st.op {
				case 0:
					if err := c.Barrier(); err != nil {
						r.Proc().Sim().Failf("barrier: %v", err)
						return nil
					}
				case 1:
					out, err := c.AllreduceI64([]int64{int64(me + si)}, SumI64)
					if err != nil {
						r.Proc().Sim().Failf("allreduce: %v", err)
						return nil
					}
					fold(I64Bytes(out))
				case 2:
					buf := make([]byte, st.size)
					if me == si%c.Size() {
						for i := range buf {
							buf[i] = byte(i + si)
						}
					}
					if err := c.Bcast(buf, si%c.Size()); err != nil {
						r.Proc().Sim().Failf("bcast: %v", err)
						return nil
					}
					fold(buf)
				case 3:
					all := make([]byte, st.size*c.Size())
					mine := bytes.Repeat([]byte{byte(me + si)}, st.size)
					if err := c.Allgather(mine, all); err != nil {
						r.Proc().Sim().Failf("allgather: %v", err)
						return nil
					}
					fold(all)
				default:
					nb := c.Size() * 16
					sendb := make([]byte, nb)
					recvb := make([]byte, nb)
					for i := range sendb {
						sendb[i] = byte(me * (si + 2))
					}
					if err := c.Alltoall(sendb, recvb, 16); err != nil {
						r.Proc().Sim().Failf("alltoall: %v", err)
						return nil
					}
					fold(recvb)
				}
			case 1:
				for _, pr := range st.pairs {
					if pr[0] == me {
						msg := bytes.Repeat([]byte{byte(pr[0]*7 + si)}, st.size)
						if err := c.Send(pr[1], st.tag, msg); err != nil {
							r.Proc().Sim().Failf("send: %v", err)
							return nil
						}
					}
					if pr[1] == me {
						in := make([]byte, st.size+8)
						stt, err := c.Recv(in, pr[0], st.tag)
						if err != nil {
							r.Proc().Sim().Failf("recv: %v", err)
							return nil
						}
						fold(in[:stt.Count])
					}
				}
			default:
				r.Compute(float64(me+1) * 3e-6)
			}
		}
		return sum
	}
}

// TestRandomProgramPolicyEquivalence runs several random programs under
// every policy and device and requires bit-identical per-rank checksums.
func TestRandomProgramPolicyEquivalence(t *testing.T) {
	const n = 6
	for seed := int64(1); seed <= 4; seed++ {
		prog := randProgram(seed, n)
		var ref [][]byte
		var refName string
		for _, dev := range []string{"clan", "bvia"} {
			for _, pol := range []string{"static-cs", "static-p2p", "ondemand"} {
				results := make([][]byte, n)
				cfg := Config{Procs: n, Device: dev, Policy: pol,
					Deadline: 120 * simnet.Second, Seed: seed}
				if _, err := Run(cfg, func(r *Rank) {
					results[r.Rank()] = prog(r)
				}); err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, dev, pol, err)
				}
				name := fmt.Sprintf("%s/%s", dev, pol)
				if ref == nil {
					ref, refName = results, name
					continue
				}
				for rk := range results {
					if !bytes.Equal(ref[rk], results[rk]) {
						t.Fatalf("seed %d: rank %d differs between %s and %s:\n%v\n%v",
							seed, rk, refName, name, ref[rk], results[rk])
					}
				}
			}
		}
	}
}

// TestRandomProgramDynamicCreditsEquivalence repeats the check with dynamic
// flow control enabled.
func TestRandomProgramDynamicCreditsEquivalence(t *testing.T) {
	const n = 5
	prog := randProgram(99, n)
	run := func(dyn bool) [][]byte {
		results := make([][]byte, n)
		cfg := Config{Procs: n, Deadline: 120 * simnet.Second, DynamicCredits: dyn}
		if _, err := Run(cfg, func(r *Rank) { results[r.Rank()] = prog(r) }); err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(false), run(true)
	for rk := range a {
		if !bytes.Equal(a[rk], b[rk]) {
			t.Fatalf("rank %d differs with dynamic credits", rk)
		}
	}
}
