package mpi

import (
	"encoding/binary"
	"math"
)

// Op is a reduction operator combining src into dst elementwise. Both
// buffers hold the same number of elements of the op's datatype.
type Op struct {
	Name    string
	Combine func(dst, src []byte)
}

// f64 reduction helpers.
func f64Op(name string, f func(a, b float64) float64) Op {
	return Op{Name: name, Combine: func(dst, src []byte) {
		for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(f(a, b)))
		}
	}}
}

func i64Op(name string, f func(a, b int64) int64) Op {
	return Op{Name: name, Combine: func(dst, src []byte) {
		for i := 0; i+8 <= len(dst) && i+8 <= len(src); i += 8 {
			a := int64(binary.LittleEndian.Uint64(dst[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(f(a, b)))
		}
	}}
}

// Predefined reduction operators (MPI_SUM, MPI_MAX, MPI_MIN, ... on
// float64 and int64 element types).
var (
	SumF64  = f64Op("sum-f64", func(a, b float64) float64 { return a + b })
	MaxF64  = f64Op("max-f64", math.Max)
	MinF64  = f64Op("min-f64", math.Min)
	ProdF64 = f64Op("prod-f64", func(a, b float64) float64 { return a * b })

	SumI64 = i64Op("sum-i64", func(a, b int64) int64 { return a + b })
	MaxI64 = i64Op("max-i64", func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	MinI64 = i64Op("min-i64", func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
	BorI64  = i64Op("bor-i64", func(a, b int64) int64 { return a | b })
	BandI64 = i64Op("band-i64", func(a, b int64) int64 { return a & b })
)

// F64Bytes encodes a float64 slice into a fresh byte buffer.
func F64Bytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	PutF64s(b, v)
	return b
}

// PutF64s encodes v into b (which must be at least 8*len(v) bytes).
func PutF64s(b []byte, v []float64) {
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
}

// BytesF64 decodes a byte buffer into float64s.
func BytesF64(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	GetF64s(b, v)
	return v
}

// GetF64s decodes b into v.
func GetF64s(b []byte, v []float64) {
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// I64Bytes encodes an int64 slice into a fresh byte buffer.
func I64Bytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// BytesI64 decodes a byte buffer into int64s.
func BytesI64(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}
