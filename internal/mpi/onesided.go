package mpi

import (
	"fmt"

	"viampi/internal/via"
)

// One-sided communication (MPI-2 style) over the VIA RDMA-write substrate:
// a window exposes a registered buffer to every rank; Put writes into a
// remote window with no receiver involvement; Fence closes an access epoch
// with a counting protocol plus barrier. VIA provides RDMA write but not
// RDMA read, so Get is intentionally absent — exactly the constraint early
// MPI-2 implementations over VI hardware faced.

// Win is a window: a buffer exposed for remote Put access.
type Win struct {
	c    *Comm
	buf  []byte
	keys []uint64 // comm rank -> RDMA key for that rank's window
	key  uint64
	mem  via.MemHandle
	// puts counts Put operations issued to each comm rank this epoch.
	puts  []int64
	freed bool
}

// winFlushTag is reserved in the collective context for fence flushes.
const winFlushTag = 400

// WinCreate collectively exposes buf on every rank and returns the window.
// Every rank must call it with its own buffer (sizes may differ).
func (c *Comm) WinCreate(buf []byte) (*Win, error) {
	key, mem, err := c.r.port.RegisterRdmaTarget(buf)
	if err != nil {
		return nil, err
	}
	keys := make([]int64, c.Size())
	if err := c.AllgatherI64([]int64{int64(key)}, keys); err != nil {
		// The registration pins memory against the port-wide budget; a
		// failed key exchange must not leave it pinned forever.
		c.r.port.ReleaseRdmaTarget(key, mem)
		return nil, err
	}
	w := &Win{c: c, buf: buf, key: key, mem: mem, puts: make([]int64, c.Size())}
	w.keys = make([]uint64, c.Size())
	for i, k := range keys {
		w.keys[i] = uint64(k)
	}
	return w, nil
}

// Put writes data into target's window at the given byte offset. Local
// completion is immediate (the data is snapshotted); remote completion is
// guaranteed only after the next Fence.
func (w *Win) Put(target, offset int, data []byte) error {
	if w.freed {
		return fmt.Errorf("mpi: Put on freed window")
	}
	if target < 0 || target >= w.c.Size() {
		return fmt.Errorf("mpi: Put target %d of %d", target, w.c.Size())
	}
	r := w.c.r
	world := w.c.ranks[target]
	if world == r.rank {
		if offset+len(data) > len(w.buf) {
			return fmt.Errorf("mpi: Put beyond local window")
		}
		copy(w.buf[offset:], data)
		return nil
	}
	cs, err := r.channel(world)
	if err != nil {
		return err
	}
	// One-sided access needs the connection up; drive progress until the
	// on-demand handshake completes.
	r.waitProgress(func() bool { return cs.ch.Up })
	d := &via.Descriptor{Buf: data, Len: len(data), RdmaKey: w.keys[target], RdmaOffset: offset}
	if err := cs.ch.Vi.PostRdmaWrite(d); err != nil {
		return err
	}
	w.puts[target]++
	return nil
}

// Fence closes the current access epoch: after it returns, every Put issued
// by any rank before its Fence is visible in the target windows. Protocol:
// an alltoall of per-target Put counts, a one-byte flush message chasing the
// RDMA writes on each used connection (VIA orders sends behind RDMA writes
// on the same VI), reception of the expected flushes, and a barrier.
func (w *Win) Fence() error {
	if w.freed {
		return fmt.Errorf("mpi: Fence on freed window")
	}
	c := w.c
	n := c.Size()
	sc := I64Bytes(w.puts)
	rc := make([]byte, 8*n)
	counts := make([]int, n)
	displ := make([]int, n)
	for i := 0; i < n; i++ {
		counts[i] = 8
		displ[i] = 8 * i
	}
	if err := c.Alltoallv(sc, counts, displ, rc, counts, displ); err != nil {
		return err
	}
	expect := BytesI64(rc) // expect[i] > 0 ⇒ rank i Put here and will flush
	flush := []byte{0xF}
	var reqs []*Request
	for i := 0; i < n; i++ {
		if i == c.myrank {
			continue
		}
		if expect[i] > 0 {
			in := make([]byte, 4)
			rq, err := c.irecvCtx(in, i, winFlushTag, c.cctx)
			if err != nil {
				return err
			}
			reqs = append(reqs, rq)
		}
		if w.puts[i] > 0 {
			sq, err := c.isendCtx(ModeStandard, i, winFlushTag, flush, c.cctx)
			if err != nil {
				return err
			}
			reqs = append(reqs, sq)
		}
	}
	if err := c.r.Waitall(reqs...); err != nil {
		return err
	}
	for i := range w.puts {
		w.puts[i] = 0
	}
	return c.Barrier()
}

// Free collectively releases the window (a final Fence is implied).
func (w *Win) Free() error {
	if w.freed {
		return nil
	}
	if err := w.Fence(); err != nil {
		return err
	}
	w.freed = true
	return w.c.r.port.ReleaseRdmaTarget(w.key, w.mem)
}

// Buf returns the locally exposed buffer.
func (w *Win) Buf() []byte { return w.buf }
