package mpi

import "fmt"

// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start):
// half-channels that an iterative code sets up once and restarts every
// iteration. The real NPB SP and BT use persistent communication for their
// face exchanges; the proxies exercise this path when built against it.

// PersistentRequest is an inactive communication template; Start activates
// it, producing the same lifecycle as an ordinary nonblocking request.
type PersistentRequest struct {
	c      *Comm
	isRecv bool
	buf    []byte // recv landing buffer, or send payload
	peer   int
	tag    int
	mode   SendMode

	active *Request
}

// SendInit creates a persistent standard-mode send template.
func (c *Comm) SendInit(dst, tag int, data []byte) (*PersistentRequest, error) {
	if dst < 0 || dst >= c.Size() {
		return nil, fmt.Errorf("mpi: SendInit to rank %d of %d", dst, c.Size())
	}
	return &PersistentRequest{c: c, buf: data, peer: dst, tag: tag, mode: ModeStandard}, nil
}

// RecvInit creates a persistent receive template.
func (c *Comm) RecvInit(buf []byte, src, tag int) (*PersistentRequest, error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return nil, fmt.Errorf("mpi: RecvInit from rank %d of %d", src, c.Size())
	}
	return &PersistentRequest{c: c, isRecv: true, buf: buf, peer: src, tag: tag}, nil
}

// Start activates the template. Starting an already-active request is an
// error (the previous activation must complete first).
func (p *PersistentRequest) Start() error {
	if p.active != nil && !p.active.done {
		return fmt.Errorf("mpi: Start on active persistent request")
	}
	var err error
	if p.isRecv {
		p.active, err = p.c.Irecv(p.buf, p.peer, p.tag)
	} else {
		p.active, err = p.c.IsendMode(p.mode, p.peer, p.tag, p.buf)
	}
	return err
}

// Request returns the current activation (nil before the first Start).
// Wait/Test on it as with any nonblocking request.
func (p *PersistentRequest) Request() *Request { return p.active }

// Startall activates a set of persistent requests (MPI_Startall).
func Startall(ps ...*PersistentRequest) error {
	for _, p := range ps {
		if err := p.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitallPersistent waits for every listed persistent request's current
// activation.
func (r *Rank) WaitallPersistent(ps ...*PersistentRequest) error {
	reqs := make([]*Request, 0, len(ps))
	for _, p := range ps {
		if p.active != nil {
			reqs = append(reqs, p.active)
		}
	}
	return r.Waitall(reqs...)
}
