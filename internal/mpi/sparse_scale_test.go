package mpi

import (
	"testing"

	"viampi/internal/simnet"
	"viampi/internal/via"
)

// scaleTune keeps thousand-rank worlds cheap on real memory: 4 credits of
// 112-byte eager buffers per VI instead of the default 24×5048B. Virtual
// behaviour is unchanged in kind — the tests below assert counts and
// footprints, not timings.
func scaleTune(cfg *Config) {
	cfg.CreditCount = 4
	cfg.EagerThreshold = 64
}

// runScaleRing runs an n-rank on-demand neighbour ring and returns the
// world stats. Each rank talks to exactly two peers, so per-rank state
// must stay O(2) no matter how large n grows.
func runScaleRing(t *testing.T, n int) *World {
	t.Helper()
	cfg := Config{Procs: n, Policy: "ondemand",
		Deadline: 300 * simnet.Second,
		TuneCost: func(c *via.CostModel) { c.MaxVIsPerPort = 16 }}
	scaleTune(&cfg)
	w, err := Run(cfg, func(r *Rank) {
		c := r.World()
		me := c.Rank()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatalf("on-demand %d-rank ring: %v", n, err)
	}
	return w
}

// assertSparseRing checks the tentpole invariant at scale: every rank's
// connection footprint — VIs created, live channels, and allocated channel
// slots — tracks the 2-neighbour partner set, not the world size.
func assertSparseRing(t *testing.T, w *World, n int) {
	t.Helper()
	totalSlots := 0
	for _, rs := range w.Ranks {
		if rs.VisCreated > 2 {
			t.Fatalf("rank %d created %d VIs for a 2-neighbour ring", rs.Rank, rs.VisCreated)
		}
		if rs.PeakChans > 2 {
			t.Fatalf("rank %d held %d simultaneous channels for a 2-neighbour ring", rs.Rank, rs.PeakChans)
		}
		totalSlots += rs.PeakChans
	}
	// O(live) job-wide: 2n slots for the ring, where the old dense layout
	// would have allocated n slots per rank — n² in total.
	if totalSlots > 2*n {
		t.Fatalf("job allocated %d channel slots, want ≤ %d (O(live), not O(n²))", totalSlots, 2*n)
	}
}

// TestOnDemandRing1024Sparse is the headline scale smoke: a 1024-rank
// on-demand ring where per-rank channel state must stay proportional to
// the live connection count. Before the sparse refactor each rank carried
// a 1024-entry channel table and two 1024-entry sequence arrays; now it
// carries two.
func TestOnDemandRing1024Sparse(t *testing.T) {
	const n = 1024
	assertSparseRing(t, runScaleRing(t, n), n)
}

// TestOnDemandRing2048Sparse doubles the world to the acceptance size: the
// 2048-rank ring must complete inside the tier-1 suite in seconds of wall
// time with the same O(live) per-rank footprint.
func TestOnDemandRing2048Sparse(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-rank ring skipped in -short mode")
	}
	const n = 2048
	assertSparseRing(t, runScaleRing(t, n), n)
}

// TestStartupEventsLinear pins the MPI_Init fix: with the park/broadcast
// barrier, booting an n-rank world costs O(1) simulator events per rank.
// Each rank samples the global event counter as it enters main — the
// single-runnable discipline makes the read race-free — and the high-water
// mark must stay a small constant multiple of n (measured ≈3n; the old
// sleep-poll grid admitted no such bound once arrivals staggered).
func TestStartupEventsLinear(t *testing.T) {
	const n = 1024
	cfg := Config{Procs: n, Policy: "ondemand", Deadline: 60 * simnet.Second}
	scaleTune(&cfg)
	atEntry := make([]uint64, n)
	if _, err := Run(cfg, func(r *Rank) {
		atEntry[r.Rank()] = r.Proc().Sim().EventCount
	}); err != nil {
		t.Fatal(err)
	}
	var peak uint64
	for _, c := range atEntry {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		t.Fatal("no rank sampled a nonzero event count; instrumentation is broken")
	}
	if peak > 8*n {
		t.Fatalf("startup dispatched %d events for %d ranks, want ≤ %d (O(n) boot)", peak, n, 8*n)
	}
}

// TestBarrierWakeBeatsSleepPoll compares the two startup-barrier shapes at
// the simnet level under staggered arrival — the regime the old code got
// wrong. n-1 procs arrive at t=0 and one straggler arrives 1ms late. The
// sleep-poll barrier re-arms a 5µs timer per waiter per poll (≈200 events
// each just to wait out the straggler); the park/broadcast barrier costs
// one park and one wake per waiter. Both release waiters at the same
// virtual instant; the event bill differs by orders of magnitude.
func TestBarrierWakeBeatsSleepPoll(t *testing.T) {
	const n = 64
	const straggle = simnet.Millisecond

	run := func(barrier func(p *simnet.Proc, opened *int, waiting *[]*simnet.Proc)) uint64 {
		sim := simnet.New(42)
		sim.SetDeadline(simnet.Time(0).Add(10 * simnet.Second))
		opened := 0
		var waiting []*simnet.Proc
		for i := 0; i < n; i++ {
			start := simnet.Time(0)
			if i == n-1 {
				start = start.Add(straggle)
			}
			sim.Spawn("p", start, func(p *simnet.Proc) {
				barrier(p, &opened, &waiting)
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if opened != n {
			t.Fatalf("barrier lost procs: %d of %d arrived", opened, n)
		}
		return sim.EventCount
	}

	sleepPoll := run(func(p *simnet.Proc, opened *int, _ *[]*simnet.Proc) {
		*opened++
		for *opened < n {
			p.Sleep(5 * simnet.Microsecond)
		}
	})
	parkWake := run(func(p *simnet.Proc, opened *int, waiting *[]*simnet.Proc) {
		*opened++
		if *opened < n {
			*waiting = append(*waiting, p)
			p.Park()
		} else {
			for _, q := range *waiting {
				q.WakeAfter(5 * simnet.Microsecond)
			}
		}
	})

	if parkWake*10 > sleepPoll {
		t.Fatalf("park/broadcast barrier used %d events vs sleep-poll's %d; want ≥10× drop",
			parkWake, sleepPoll)
	}
}
