package mpi

import (
	"testing"

	"viampi/internal/simnet"
)

// TestPlacementPolicies: with a bandwidth-heavy ring, block placement keeps
// most transfers on the node (loopback skips the switch hop and the
// receive-port serialization), while round-robin pushes every hop across
// the wire — so block must be faster. For tiny messages the two placements
// are nearly identical on cLAN (NIC loopback is barely cheaper than the
// wire), which is itself the faithful behaviour.
func TestPlacementPolicies(t *testing.T) {
	const n = 16 // 4 nodes x 4 procs on clan
	ring := func(r *Rank) {
		c := r.World()
		me := c.Rank()
		out := make([]byte, 32<<10)
		in := make([]byte, 33<<10)
		for i := 0; i < 10; i++ {
			if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
				t.Error(err)
				return
			}
		}
	}
	elapsed := map[string]simnet.Duration{}
	for _, pl := range []string{"block", "roundrobin"} {
		cfg := testCfg(n)
		cfg.Placement = pl
		w := runWorld(t, cfg, ring)
		elapsed[pl] = w.Elapsed
	}
	if float64(elapsed["block"]) >= float64(elapsed["roundrobin"])*0.95 {
		t.Errorf("block bulk ring (%v) not clearly faster than round-robin (%v)",
			elapsed["block"], elapsed["roundrobin"])
	}
}

func TestPlacementValidation(t *testing.T) {
	cfg := testCfg(2)
	cfg.Placement = "diagonal"
	if _, err := Run(cfg, func(r *Rank) {}); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// TestPlacementEquivalence: placement must not change program results.
func TestPlacementEquivalence(t *testing.T) {
	prog := randProgram(7, 6)
	results := map[string][]byte{}
	for _, pl := range []string{"block", "roundrobin"} {
		out := make([][]byte, 6)
		cfg := testCfg(6)
		cfg.Placement = pl
		runWorld(t, cfg, func(r *Rank) { out[r.Rank()] = prog(r) })
		flat := []byte{}
		for _, b := range out {
			flat = append(flat, b...)
		}
		results[pl] = flat
	}
	if string(results["block"]) != string(results["roundrobin"]) {
		t.Fatal("placement changed program results")
	}
}
