package mpi

import (
	"encoding/binary"
	"fmt"
)

// Packet kinds exchanged between MPI peers over a VIA channel.
const (
	pktEager  byte = iota + 1 // header + payload, fits under the eager threshold
	pktRts                    // rendezvous request-to-send (no payload)
	pktCts                    // rendezvous clear-to-send (carries the RDMA key)
	pktFin                    // rendezvous finished (data has been RDMA-written)
	pktCredit                 // explicit flow-control credit return

	// Graceful channel teardown (VI-cap eviction). BYE asks the peer to
	// quiesce and acknowledge; ACK confirms both sides are drained and the
	// sender may close the VI; NACK refuses (the peer has traffic in
	// flight) and the would-be evictor abandons the eviction.
	pktBye
	pktByeAck
	pktByeNack
)

func pktKindString(k byte) string {
	switch k {
	case pktEager:
		return "eager"
	case pktRts:
		return "rts"
	case pktCts:
		return "cts"
	case pktFin:
		return "fin"
	case pktCredit:
		return "credit"
	case pktBye:
		return "bye"
	case pktByeAck:
		return "bye-ack"
	case pktByeNack:
		return "bye-nack"
	default:
		return fmt.Sprintf("pkt(%d)", k)
	}
}

// hdrSize is the fixed wire header length in bytes.
const hdrSize = 48

// hdr is the MPI packet header. srcRank and tag/ctx implement MPICH-style
// (context, source, tag) matching; credits piggybacks flow-control returns
// on every packet; sreq/rreq correlate the rendezvous three-way handshake.
type hdr struct {
	kind    byte
	srcRank int32 // sender's rank within the communicator identified by ctx
	tag     int32
	ctx     int32 // communicator context id
	size    int32 // eager: payload bytes; RTS: total message bytes
	credits int32 // freed receive buffers being returned to the sender
	sreq    int64 // sender-side request id (RTS/CTS)
	rreq    int64 // receiver-side request id (CTS/FIN)
	rkey    uint64
}

// encode appends the header and payload into a fresh buffer.
func encode(h hdr, payload []byte) []byte {
	b := make([]byte, hdrSize+len(payload))
	b[0] = h.kind
	le := binary.LittleEndian
	le.PutUint32(b[4:], uint32(h.srcRank))
	le.PutUint32(b[8:], uint32(h.tag))
	le.PutUint32(b[12:], uint32(h.ctx))
	le.PutUint32(b[16:], uint32(h.size))
	le.PutUint32(b[20:], uint32(h.credits))
	le.PutUint64(b[24:], uint64(h.sreq))
	le.PutUint64(b[32:], uint64(h.rreq))
	le.PutUint64(b[40:], h.rkey)
	copy(b[hdrSize:], payload)
	return b
}

// decode parses a wire buffer into its header and payload view.
func decode(b []byte) (hdr, []byte, error) {
	if len(b) < hdrSize {
		return hdr{}, nil, fmt.Errorf("mpi: short packet (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	h := hdr{
		kind:    b[0],
		srcRank: int32(le.Uint32(b[4:])),
		tag:     int32(le.Uint32(b[8:])),
		ctx:     int32(le.Uint32(b[12:])),
		size:    int32(le.Uint32(b[16:])),
		credits: int32(le.Uint32(b[20:])),
		sreq:    int64(le.Uint64(b[24:])),
		rreq:    int64(le.Uint64(b[32:])),
		rkey:    le.Uint64(b[40:]),
	}
	return h, b[hdrSize:], nil
}
