package mpi_test

import (
	"fmt"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
)

// Allreduce across 4 simulated ranks under on-demand connection management.
func ExampleComm_Allreduce() {
	w, err := mpi.Run(mpi.Config{Procs: 4, Deadline: 10 * simnet.Second}, func(r *mpi.Rank) {
		sum, err := r.World().AllreduceF64([]float64{float64(r.Rank())}, mpi.SumF64)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if r.Rank() == 0 {
			fmt.Printf("sum of ranks = %.0f\n", sum[0])
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("VIs per rank (recursive doubling): %.0f\n", w.AvgVIs())
	// Output:
	// sum of ranks = 6
	// VIs per rank (recursive doubling): 2
}

// One-sided Put through a window, visible after the fence.
func ExampleWin() {
	_, err := mpi.Run(mpi.Config{Procs: 2, Deadline: 10 * simnet.Second}, func(r *mpi.Rank) {
		c := r.World()
		buf := make([]byte, 8)
		w, err := c.WinCreate(buf)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if r.Rank() == 0 {
			if err := w.Put(1, 0, []byte("rdma!")); err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		if err := w.Fence(); err != nil {
			fmt.Println("error:", err)
			return
		}
		if r.Rank() == 1 {
			fmt.Printf("window holds %q\n", buf[:5])
		}
		if err := w.Free(); err != nil {
			fmt.Println("error:", err)
		}
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// window holds "rdma!"
}
