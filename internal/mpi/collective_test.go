package mpi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"viampi/internal/simnet"
)

// sizes to exercise: 1, powers of two, and awkward non-powers.
var collectiveSizes = []int{1, 2, 3, 4, 5, 7, 8, 12, 16}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		n := n
		entered := make([]simnet.Time, n)
		exited := make([]simnet.Time, n)
		runWorld(t, testCfg(n), func(r *Rank) {
			me := r.Rank()
			// Stagger arrivals.
			r.Proc().Sleep(simnet.Duration(me) * simnet.Millisecond)
			entered[me] = r.Proc().Now()
			if err := r.World().Barrier(); err != nil {
				t.Error(err)
				return
			}
			exited[me] = r.Proc().Now()
		})
		var lastEnter simnet.Time
		for _, e := range entered {
			if e > lastEnter {
				lastEnter = e
			}
		}
		for i, x := range exited {
			if x < lastEnter {
				t.Errorf("n=%d: rank %d exited barrier at %v before last entry %v", n, i, x, lastEnter)
			}
		}
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range collectiveSizes {
		n := n
		for _, root := range []int{0, n - 1, n / 2} {
			root := root
			runWorld(t, testCfg(n), func(r *Rank) {
				c := r.World()
				buf := make([]byte, 100)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = byte(i ^ root)
					}
				}
				if err := c.Bcast(buf, root); err != nil {
					t.Error(err)
					return
				}
				for i := range buf {
					if buf[i] != byte(i^root) {
						t.Errorf("n=%d root=%d rank=%d: bcast corrupted at %d", n, root, c.Rank(), i)
						return
					}
				}
			})
		}
	}
}

func TestBcastLargeRendezvous(t *testing.T) {
	const n = 6
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		buf := make([]byte, 200000)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i * 7)
			}
		}
		if err := c.Bcast(buf, 0); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < len(buf); i += 997 {
			if buf[i] != byte(i*7) {
				t.Errorf("rank %d: large bcast corrupted at %d", c.Rank(), i)
				return
			}
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range collectiveSizes {
		n := n
		runWorld(t, testCfg(n), func(r *Rank) {
			c := r.World()
			me := float64(c.Rank())
			in := []float64{me + 1, me * me, -me}
			wantSum := make([]float64, 3)
			for i := 0; i < n; i++ {
				wantSum[0] += float64(i) + 1
				wantSum[1] += float64(i) * float64(i)
				wantSum[2] += -float64(i)
			}
			// Reduce to a non-zero root.
			root := (n - 1) / 2
			rb := make([]byte, 24)
			if err := c.Reduce(F64Bytes(in), rb, SumF64, root); err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == root {
				got := BytesF64(rb)
				for i := range wantSum {
					if got[i] != wantSum[i] {
						t.Errorf("n=%d Reduce[%d] = %v, want %v", n, i, got[i], wantSum[i])
					}
				}
			}
			// Allreduce max.
			got, err := c.AllreduceF64([]float64{me}, MaxF64)
			if err != nil {
				t.Error(err)
				return
			}
			if got[0] != float64(n-1) {
				t.Errorf("n=%d Allreduce max = %v, want %d", n, got[0], n-1)
			}
		})
	}
}

func TestAllreduceI64Ops(t *testing.T) {
	const n = 7
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := int64(c.Rank())
		sum, err := c.AllreduceI64([]int64{me, 1}, SumI64)
		if err != nil {
			t.Error(err)
			return
		}
		if sum[0] != int64(n*(n-1)/2) || sum[1] != n {
			t.Errorf("sum = %v", sum)
		}
		min, err := c.AllreduceI64([]int64{me + 5}, MinI64)
		if err != nil || min[0] != 5 {
			t.Errorf("min = %v err=%v", min, err)
		}
		bor, err := c.AllreduceI64([]int64{1 << uint(c.Rank())}, BorI64)
		if err != nil || bor[0] != (1<<n)-1 {
			t.Errorf("bor = %v err=%v", bor, err)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		n := n
		runWorld(t, testCfg(n), func(r *Rank) {
			c := r.World()
			me := c.Rank()
			// Gather 4-byte blocks to root 1 (if present).
			root := 1 % n
			blk := []byte{byte(me), byte(me + 1), byte(me + 2), byte(me + 3)}
			full := make([]byte, 4*n)
			if err := c.Gather(blk, full, root); err != nil {
				t.Error(err)
				return
			}
			if me == root {
				for i := 0; i < n; i++ {
					if full[4*i] != byte(i) || full[4*i+3] != byte(i+3) {
						t.Errorf("n=%d gather block %d wrong: % x", n, i, full[4*i:4*i+4])
					}
				}
			}
			// Scatter back from root.
			if me == root {
				for i := 0; i < n; i++ {
					full[4*i] = byte(100 + i)
				}
			}
			out := make([]byte, 4)
			if err := c.Scatter(full, out, root); err != nil {
				t.Error(err)
				return
			}
			if out[0] != byte(100+me) {
				t.Errorf("n=%d rank %d scatter got %d", n, me, out[0])
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{2, 6, 11} {
		n := n
		runWorld(t, testCfg(n), func(r *Rank) {
			c := r.World()
			me := c.Rank()
			out := make([]byte, 8*n)
			if err := c.Allgather([]byte{byte(me), byte(me * 2), 0, 0, 0, 0, 0, 0}, out); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if out[8*i] != byte(i) || out[8*i+1] != byte(i*2) {
					t.Errorf("n=%d rank %d: allgather block %d = % x", n, me, i, out[8*i:8*i+2])
					return
				}
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		n := n
		runWorld(t, testCfg(n), func(r *Rank) {
			c := r.World()
			me := c.Rank()
			const bs = 16
			send := make([]byte, bs*n)
			for j := 0; j < n; j++ {
				for k := 0; k < bs; k++ {
					send[j*bs+k] = byte(me*16 + j) // block destined for rank j
				}
			}
			recv := make([]byte, bs*n)
			if err := c.Alltoall(send, recv, bs); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < n; j++ {
				want := byte(j*16 + me)
				for k := 0; k < bs; k++ {
					if recv[j*bs+k] != want {
						t.Errorf("n=%d rank %d: block from %d = %d, want %d", n, me, j, recv[j*bs+k], want)
						return
					}
				}
			}
		})
	}
}

func TestAlltoallvUnevenLarge(t *testing.T) {
	// Mixed eager and rendezvous blocks in one exchange.
	const n = 4
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		scounts := make([]int, n)
		sdispl := make([]int, n)
		rcounts := make([]int, n)
		rdispl := make([]int, n)
		total := 0
		for j := 0; j < n; j++ {
			scounts[j] = 100 + 3000*((me+j)%3) // 100, 3100 or 6100 bytes
			sdispl[j] = total
			total += scounts[j]
		}
		send := make([]byte, total)
		for j := 0; j < n; j++ {
			for k := 0; k < scounts[j]; k++ {
				send[sdispl[j]+k] = byte(me + j*3 + k)
			}
		}
		rtotal := 0
		for j := 0; j < n; j++ {
			rcounts[j] = 100 + 3000*((j+me)%3)
			rdispl[j] = rtotal
			rtotal += rcounts[j]
		}
		recv := make([]byte, rtotal)
		if err := c.Alltoallv(send, scounts, sdispl, recv, rcounts, rdispl); err != nil {
			t.Error(err)
			return
		}
		for j := 0; j < n; j++ {
			for k := 0; k < rcounts[j]; k += 61 {
				if recv[rdispl[j]+k] != byte(j+me*3+k) {
					t.Errorf("rank %d block from %d corrupted at %d", me, j, k)
					return
				}
			}
		}
	})
}

func TestScan(t *testing.T) {
	const n = 6
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := int64(c.Rank())
		out := make([]byte, 8)
		if err := c.Scan(I64Bytes([]int64{me + 1}), out, SumI64); err != nil {
			t.Error(err)
			return
		}
		want := int64((me + 1) * (me + 2) / 2)
		if got := BytesI64(out)[0]; got != want {
			t.Errorf("rank %d scan = %d, want %d", me, got, want)
		}
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const n = 4
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		in := make([]int64, n)
		for j := range in {
			in[j] = int64(me + j)
		}
		out := make([]byte, 8)
		if err := c.ReduceScatterBlock(I64Bytes(in), out, SumI64); err != nil {
			t.Error(err)
			return
		}
		want := int64(n*(n-1)/2 + n*me)
		if got := BytesI64(out)[0]; got != want {
			t.Errorf("rank %d reduce-scatter = %d, want %d", me, got, want)
		}
	})
}

func TestCommSplit(t *testing.T) {
	const n = 8
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		sub, err := c.Split(me%2, -me) // negative key reverses order within color
		if err != nil {
			t.Error(err)
			return
		}
		if sub.Size() != n/2 {
			t.Errorf("sub size = %d", sub.Size())
			return
		}
		// Highest world rank of my parity should be rank 0 in sub.
		sum, err := sub.AllreduceI64([]int64{int64(me)}, SumI64)
		if err != nil {
			t.Error(err)
			return
		}
		want := int64(0)
		for i := me % 2; i < n; i += 2 {
			want += int64(i)
		}
		if sum[0] != want {
			t.Errorf("split allreduce = %d, want %d", sum[0], want)
		}
		// Key ordering check.
		if me == n-1 && sub.Rank() != 0 {
			t.Errorf("rank %d has sub-rank %d, want 0 (reverse key)", me, sub.Rank())
		}
	})
}

func TestCommDupIsolation(t *testing.T) {
	const n = 4
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		d, err := c.Dup()
		if err != nil {
			t.Error(err)
			return
		}
		// A message sent on d must not match a receive on c.
		if r.Rank() == 0 {
			if err := d.Send(1, 0, []byte("dup")); err != nil {
				t.Error(err)
			}
			if err := c.Send(1, 0, []byte("wld")); err != nil {
				t.Error(err)
			}
		} else if r.Rank() == 1 {
			buf := make([]byte, 8)
			st, err := c.Recv(buf, 0, 0)
			if err != nil || string(buf[:st.Count]) != "wld" {
				t.Errorf("world recv got %q, err %v", buf[:st.Count], err)
			}
			st, err = d.Recv(buf, 0, 0)
			if err != nil || string(buf[:st.Count]) != "dup" {
				t.Errorf("dup recv got %q, err %v", buf[:st.Count], err)
			}
		}
	})
}

// Property: Allreduce(sum) over random vectors equals the serial sum,
// regardless of rank count.
func TestPropertyAllreduceMatchesSerial(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		rng := rand.New(rand.NewSource(seed))
		vecs := make([][]float64, n)
		want := make([]float64, 4)
		for i := range vecs {
			vecs[i] = make([]float64, 4)
			for j := range vecs[i] {
				vecs[i][j] = float64(rng.Intn(1000)) / 8
				want[j] += vecs[i][j]
			}
		}
		ok := true
		cfg := testCfg(n)
		w, err := Run(cfg, func(r *Rank) {
			got, err := r.World().AllreduceF64(vecs[r.Rank()], SumF64)
			if err != nil {
				ok = false
				return
			}
			for j := range want {
				if got[j] != want[j] {
					ok = false
				}
			}
		})
		return err == nil && ok && w != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierSpinwaitPenalty reproduces the Figure 4a effect: on cLAN,
// spinwait barriers are slower than polling barriers because some processes
// overrun the spin budget and pay the blocking-wait wakeup.
func TestBarrierSpinwaitPenalty(t *testing.T) {
	barrierTime := func(mode int) simnet.Duration {
		cfg := testCfg(8)
		cfg.WaitMode = 0
		if mode == 1 {
			cfg.WaitMode = 1 // via.WaitSpin
		}
		var elapsed simnet.Duration
		runWorld(t, cfg, func(r *Rank) {
			c := r.World()
			if err := c.Barrier(); err != nil { // warm up connections
				t.Error(err)
				return
			}
			start := r.Proc().Now()
			for i := 0; i < 50; i++ {
				if err := c.Barrier(); err != nil {
					t.Error(err)
					return
				}
			}
			if r.Rank() == 0 {
				elapsed = r.Proc().Now().Sub(start) / 50
			}
		})
		return elapsed
	}
	poll := barrierTime(0)
	spin := barrierTime(1)
	if spin <= poll {
		t.Errorf("spinwait barrier %v not slower than polling %v", spin, poll)
	}
}

// TestBviaBarrierOnDemandBeatsStatic reproduces the headline Figure 4b
// effect: on Berkeley VIA, the barrier is faster under on-demand because
// fewer open VIs mean less firmware doorbell scanning per message.
func TestBviaBarrierOnDemandBeatsStatic(t *testing.T) {
	barrierTime := func(policy string) simnet.Duration {
		cfg := testCfg(8)
		cfg.Device = "bvia"
		cfg.Policy = policy
		var elapsed simnet.Duration
		runWorld(t, cfg, func(r *Rank) {
			c := r.World()
			if err := c.Barrier(); err != nil {
				t.Error(err)
				return
			}
			start := r.Proc().Now()
			for i := 0; i < 50; i++ {
				if err := c.Barrier(); err != nil {
					t.Error(err)
					return
				}
			}
			if r.Rank() == 0 {
				elapsed = r.Proc().Now().Sub(start) / 50
			}
		})
		return elapsed
	}
	od := barrierTime("ondemand")
	st := barrierTime("static-p2p")
	if od >= st {
		t.Errorf("BVIA on-demand barrier %v not faster than static %v", od, st)
	}
}

func TestBytesConversionHelpers(t *testing.T) {
	v := []float64{1.5, -2.25, 1e300}
	got := BytesF64(F64Bytes(v))
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("f64 round trip: %v", got)
		}
	}
	iv := []int64{-1, 0, 1 << 62}
	igot := BytesI64(I64Bytes(iv))
	for i := range iv {
		if igot[i] != iv[i] {
			t.Fatalf("i64 round trip: %v", igot)
		}
	}
	if !bytes.Equal(F64Bytes(nil), []byte{}) && F64Bytes(nil) != nil {
		t.Fatal("nil handling")
	}
}

func TestOpsCombine(t *testing.T) {
	a := F64Bytes([]float64{1, 5, -3})
	b := F64Bytes([]float64{2, 4, -4})
	SumF64.Combine(a, b)
	if got := BytesF64(a); got[0] != 3 || got[1] != 9 || got[2] != -7 {
		t.Fatalf("sum = %v", got)
	}
	a = F64Bytes([]float64{1, 5})
	MaxF64.Combine(a, F64Bytes([]float64{2, 4}))
	if got := BytesF64(a); got[0] != 2 || got[1] != 5 {
		t.Fatalf("max = %v", got)
	}
	ia := I64Bytes([]int64{6})
	BandI64.Combine(ia, I64Bytes([]int64{3}))
	if BytesI64(ia)[0] != 2 {
		t.Fatal("band")
	}
	pa := F64Bytes([]float64{3})
	ProdF64.Combine(pa, F64Bytes([]float64{-2}))
	if BytesF64(pa)[0] != -6 {
		t.Fatal("prod")
	}
	ma := F64Bytes([]float64{3})
	MinF64.Combine(ma, F64Bytes([]float64{-2}))
	if BytesF64(ma)[0] != -2 {
		t.Fatal("min")
	}
	xa := I64Bytes([]int64{9})
	MaxI64.Combine(xa, I64Bytes([]int64{4}))
	if BytesI64(xa)[0] != 9 {
		t.Fatal("maxi")
	}
}
