package mpi

import (
	"testing"

	"viampi/internal/simnet"
)

func TestPersistentSendRecv(t *testing.T) {
	const iters = 20
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			buf := make([]byte, 8)
			ps, err := c.SendInit(1, 3, buf)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				buf[0] = byte(i) // persistent semantics: buffer re-read at each Start
				if err := ps.Start(); err != nil {
					t.Error(err)
					return
				}
				if err := r.Wait(ps.Request()); err != nil {
					t.Error(err)
					return
				}
			}
			// Late matching message for the double-start check below.
			r.Proc().Sleep(simnet.D(2e6))
			if err := c.Send(1, 9, []byte("late")); err != nil {
				t.Error(err)
			}
		} else {
			in := make([]byte, 8)
			pr, err := c.RecvInit(in, 0, 3)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				if err := pr.Start(); err != nil {
					t.Error(err)
					return
				}
				if err := r.Wait(pr.Request()); err != nil {
					t.Error(err)
					return
				}
				if in[0] != byte(i) {
					t.Errorf("iteration %d got %d", i, in[0])
					return
				}
			}
			// Restarting while active is rejected: a receive with no
			// matching message yet cannot have completed.
			late := make([]byte, 8)
			p9, err := c.RecvInit(late, 0, 9)
			if err != nil {
				t.Error(err)
				return
			}
			if err := p9.Start(); err != nil {
				t.Error(err)
				return
			}
			if err := p9.Start(); err == nil {
				t.Error("double Start accepted on pending receive")
			}
			if err := r.Wait(p9.Request()); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestStartallPersistentExchange(t *testing.T) {
	const n = 4
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		left, right := (me+n-1)%n, (me+1)%n
		out := []byte{byte(me)}
		inL := make([]byte, 4)
		inR := make([]byte, 4)
		sl, err := c.SendInit(left, 1, out)
		if err != nil {
			t.Error(err)
			return
		}
		sr, err := c.SendInit(right, 2, out)
		if err != nil {
			t.Error(err)
			return
		}
		rl, err := c.RecvInit(inL, left, 2)
		if err != nil {
			t.Error(err)
			return
		}
		rr, err := c.RecvInit(inR, right, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for it := 0; it < 10; it++ {
			if err := Startall(rl, rr, sl, sr); err != nil {
				t.Error(err)
				return
			}
			if err := r.WaitallPersistent(rl, rr, sl, sr); err != nil {
				t.Error(err)
				return
			}
			if inL[0] != byte(left) || inR[0] != byte(right) {
				t.Errorf("iteration %d: got %d/%d", it, inL[0], inR[0])
				return
			}
		}
	})
}

func TestPersistentValidation(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if _, err := c.SendInit(9, 0, nil); err == nil {
			t.Error("bad dst accepted")
		}
		if _, err := c.RecvInit(nil, 9, 0); err == nil {
			t.Error("bad src accepted")
		}
		if _, err := c.RecvInit(nil, AnySource, 0); err != nil {
			t.Error("AnySource rejected")
		}
	})
}
