package mpi

import (
	"testing"

	"viampi/internal/simnet"
)

// TestAblationSendFifoRequired demonstrates the paper's §3.4 failure mode:
// without the pre-posted send FIFO, a send issued before the on-demand
// connection completes is discarded by the VIA layer and the receiver waits
// forever. The run must fail (deadlock) with the discard visible in the
// network counters — and the identical program must succeed with the FIFO.
func TestAblationSendFifoRequired(t *testing.T) {
	program := func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			// First-ever message on this pair: under on-demand the channel
			// cannot be up yet, so without the FIFO this send is discarded.
			if _, err := c.Isend(1, 0, []byte("lost?")); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 16)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Error(err)
			}
		}
	}

	broken := Config{Procs: 2, Policy: "ondemand", Deadline: 5 * simnet.Second,
		UnsafeNoSendFifo: true}
	if _, err := Run(broken, program); err == nil {
		t.Fatal("without the send FIFO the message must be lost and the run must fail")
	}

	working := Config{Procs: 2, Policy: "ondemand", Deadline: 5 * simnet.Second}
	w, err := Run(working, program)
	if err != nil {
		t.Fatalf("with the FIFO the same program must succeed: %v", err)
	}
	if w.Net.DiscardedSends != 0 {
		t.Fatalf("FIFO path discarded %d sends", w.Net.DiscardedSends)
	}
}
