package mpi

import "fmt"

// Datatype describes a non-contiguous memory layout in bytes — the MPI
// derived-datatype facility reduced to its pack/unpack essence. A Datatype
// is a list of (offset, length) extents relative to a base pointer; Send
// and Recv variants pack on the way out and unpack on the way in, which is
// exactly how MPICH's ADI handled non-contiguous data on VIA-class
// networks (no scatter/gather DMA).
type Datatype struct {
	blocks []extent
	size   int // packed bytes
	span   int // bytes from base to the end of the last block
}

type extent struct{ off, len int }

// Contiguous describes n contiguous bytes.
func Contiguous(n int) Datatype {
	if n <= 0 {
		return Datatype{}
	}
	return Datatype{blocks: []extent{{0, n}}, size: n, span: n}
}

// Vector describes count blocks of blocklen bytes, the start of each
// separated by stride bytes (MPI_Type_vector with byte elements).
func Vector(count, blocklen, stride int) (Datatype, error) {
	if count < 0 || blocklen < 0 {
		return Datatype{}, fmt.Errorf("mpi: Vector(%d, %d, %d): negative shape", count, blocklen, stride)
	}
	if count > 0 && blocklen > 0 && stride < blocklen {
		return Datatype{}, fmt.Errorf("mpi: Vector stride %d overlaps blocklen %d", stride, blocklen)
	}
	var d Datatype
	for i := 0; i < count; i++ {
		if blocklen == 0 {
			continue
		}
		d.blocks = append(d.blocks, extent{i * stride, blocklen})
		d.size += blocklen
		if end := i*stride + blocklen; end > d.span {
			d.span = end
		}
	}
	return d, nil
}

// Indexed describes blocks of given lengths at given byte displacements
// (MPI_Type_indexed). Displacements must be non-decreasing and
// non-overlapping.
func Indexed(lengths, displs []int) (Datatype, error) {
	if len(lengths) != len(displs) {
		return Datatype{}, fmt.Errorf("mpi: Indexed needs equal-length slices")
	}
	var d Datatype
	prevEnd := 0
	for i := range lengths {
		if lengths[i] < 0 || displs[i] < 0 {
			return Datatype{}, fmt.Errorf("mpi: Indexed block %d negative", i)
		}
		if lengths[i] == 0 {
			continue
		}
		if displs[i] < prevEnd {
			return Datatype{}, fmt.Errorf("mpi: Indexed block %d overlaps previous", i)
		}
		d.blocks = append(d.blocks, extent{displs[i], lengths[i]})
		d.size += lengths[i]
		prevEnd = displs[i] + lengths[i]
		if prevEnd > d.span {
			d.span = prevEnd
		}
	}
	return d, nil
}

// Size returns the packed byte count.
func (d Datatype) Size() int { return d.size }

// Span returns the extent in the source/destination buffer the layout
// touches (base to end of last block).
func (d Datatype) Span() int { return d.span }

// Pack gathers the layout's bytes from buf into a fresh contiguous buffer.
func (d Datatype) Pack(buf []byte) ([]byte, error) {
	if len(buf) < d.span {
		return nil, fmt.Errorf("mpi: Pack buffer %d < span %d", len(buf), d.span)
	}
	out := make([]byte, 0, d.size)
	for _, b := range d.blocks {
		out = append(out, buf[b.off:b.off+b.len]...)
	}
	return out, nil
}

// Unpack scatters packed bytes into buf according to the layout.
func (d Datatype) Unpack(buf, packed []byte) error {
	if len(buf) < d.span {
		return fmt.Errorf("mpi: Unpack buffer %d < span %d", len(buf), d.span)
	}
	if len(packed) < d.size {
		return fmt.Errorf("mpi: Unpack packed %d < size %d", len(packed), d.size)
	}
	off := 0
	for _, b := range d.blocks {
		copy(buf[b.off:b.off+b.len], packed[off:off+b.len])
		off += b.len
	}
	return nil
}

// SendTyped packs buf through the datatype and sends it (blocking,
// standard mode).
func (c *Comm) SendTyped(dst, tag int, buf []byte, d Datatype) error {
	packed, err := d.Pack(buf)
	if err != nil {
		return err
	}
	return c.Send(dst, tag, packed)
}

// RecvTyped receives into buf through the datatype (blocking). The sender's
// packed size must equal the datatype's Size.
func (c *Comm) RecvTyped(buf []byte, src, tag int, d Datatype) (Status, error) {
	packed := make([]byte, d.size)
	st, err := c.Recv(packed, src, tag)
	if err != nil {
		return st, err
	}
	if st.Count != d.size {
		return st, fmt.Errorf("mpi: RecvTyped got %d bytes, layout needs %d", st.Count, d.size)
	}
	return st, d.Unpack(buf, packed)
}
