package mpi

import (
	"bytes"
	"testing"
)

func TestWinPutFence(t *testing.T) {
	const n = 4
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		// Each rank exposes n slots of 8 bytes; every rank Puts its id into
		// its slot in every window (an all-to-all via one-sided writes).
		buf := make([]byte, 8*n)
		w, err := c.WinCreate(buf)
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte{byte(me + 1)}, 8)
		for target := 0; target < n; target++ {
			if err := w.Put(target, 8*me, payload); err != nil {
				t.Error(err)
				return
			}
		}
		if err := w.Fence(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			for j := 0; j < 8; j++ {
				if buf[8*i+j] != byte(i+1) {
					t.Errorf("rank %d slot %d byte %d = %d", me, i, j, buf[8*i+j])
					return
				}
			}
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
	})
}

func TestWinEpochsOrdered(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		buf := make([]byte, 16)
		w, err := c.WinCreate(buf)
		if err != nil {
			t.Error(err)
			return
		}
		for epoch := 1; epoch <= 5; epoch++ {
			if r.Rank() == 0 {
				if err := w.Put(1, 0, []byte{byte(epoch)}); err != nil {
					t.Error(err)
					return
				}
			}
			if err := w.Fence(); err != nil {
				t.Error(err)
				return
			}
			if r.Rank() == 1 && buf[0] != byte(epoch) {
				t.Errorf("epoch %d: window holds %d", epoch, buf[0])
				return
			}
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
	})
}

func TestWinLargePut(t *testing.T) {
	// A put bigger than the MTU fragments through the RDMA path.
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		buf := make([]byte, 200000)
		w, err := c.WinCreate(buf)
		if err != nil {
			t.Error(err)
			return
		}
		if r.Rank() == 0 {
			big := make([]byte, 150000)
			for i := range big {
				big[i] = byte(i * 13)
			}
			if err := w.Put(1, 1000, big); err != nil {
				t.Error(err)
				return
			}
		}
		if err := w.Fence(); err != nil {
			t.Error(err)
			return
		}
		if r.Rank() == 1 {
			for i := 0; i < 150000; i += 997 {
				if buf[1000+i] != byte(i*13) {
					t.Errorf("offset %d corrupted", i)
					return
				}
			}
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
	})
}

func TestWinValidation(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		w, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			t.Error(err)
			return
		}
		if err := w.Put(9, 0, []byte{1}); err == nil {
			t.Error("bad target accepted")
		}
		if err := w.Put(r.Rank(), 7, []byte{1, 2}); err == nil {
			t.Error("out-of-bounds self put accepted")
		}
		if err := w.Free(); err != nil {
			t.Error(err)
			return
		}
		if err := w.Put(0, 0, []byte{1}); err == nil {
			t.Error("put on freed window accepted")
		}
		if err := w.Fence(); err == nil {
			t.Error("fence on freed window accepted")
		}
		if err := w.Free(); err != nil {
			t.Error("double free should be a no-op")
		}
	})
}

// TestWinOnDemandFootprint: one-sided traffic drives on-demand connections
// exactly like two-sided traffic — a rank that only Puts to one neighbour
// holds one VI.
func TestWinOnDemandFootprint(t *testing.T) {
	const n = 6
	w := runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		win, err := c.WinCreate(make([]byte, 64))
		if err != nil {
			t.Error(err)
			return
		}
		if err := win.Put((me+1)%n, 0, []byte{byte(me)}); err != nil {
			t.Error(err)
			return
		}
		if err := win.Fence(); err != nil {
			t.Error(err)
			return
		}
		if err := win.Free(); err != nil {
			t.Error(err)
		}
	})
	// Ring puts + fence flushes + allgather/alltoall in WinCreate/Fence...
	// the alltoall in Fence connects everyone, so expect N-1 here.
	for _, rs := range w.Ranks {
		if rs.VisCreated != n-1 {
			t.Errorf("rank %d VIs = %d, want %d (fence alltoall connects all)", rs.Rank, rs.VisCreated, n-1)
		}
	}
}

// TestWinPinnedBalanced: window lifecycle against the pinned-memory budget.
// WinCreate pins the exposed buffer; Free must give every byte back, and
// repeated cycles must not accumulate. The WinCreate error path (a failed
// key exchange must release the registration it just made) is enforced
// statically by the paired analyzer selfcheck — deleting that release fails
// `go test ./internal/analysis`.
func TestWinPinnedBalanced(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		// Warm-up cycle: the collectives inside WinCreate/Free bring up
		// on-demand connections whose eager pools pin memory for the life of
		// the channel; the balance assertion is about the window pin only.
		w0, err := c.WinCreate(make([]byte, 4096))
		if err != nil {
			t.Error(err)
			return
		}
		if err := w0.Free(); err != nil {
			t.Error(err)
			return
		}
		base := r.port.Memory().Pinned()
		for cycle := 0; cycle < 3; cycle++ {
			w, err := c.WinCreate(make([]byte, 4096))
			if err != nil {
				t.Error(err)
				return
			}
			if r.port.Memory().Pinned() <= base {
				t.Errorf("cycle %d: window buffer not pinned (pinned=%d base=%d)",
					cycle, r.port.Memory().Pinned(), base)
			}
			if err := w.Free(); err != nil {
				t.Error(err)
				return
			}
			if got := r.port.Memory().Pinned(); got != base {
				t.Errorf("cycle %d: pinned=%d after Free, want baseline %d — the window registration leaked",
					cycle, got, base)
				return
			}
		}
	})
}
