package mpi

import "fmt"

// Cartesian process topologies (MPI_Cart_create family): rank <-> grid
// coordinate mapping and neighbour shifts, the bookkeeping every stencil
// code needs. The topology is a pure naming layer over a communicator; it
// creates no connections by itself, so under on-demand management VIs still
// appear only when neighbours first exchange halos.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
}

// CartCreate builds a Cartesian view of the communicator. The product of
// dims must equal the communicator size; periodic selects wraparound per
// dimension (len(periodic) == len(dims), or nil for all-false).
func (c *Comm) CartCreate(dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mpi: CartCreate with no dimensions")
	}
	p := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: CartCreate dimension %d", d)
		}
		p *= d
	}
	if p != c.Size() {
		return nil, fmt.Errorf("mpi: CartCreate dims product %d != size %d", p, c.Size())
	}
	if periodic == nil {
		periodic = make([]bool, len(dims))
	}
	if len(periodic) != len(dims) {
		return nil, fmt.Errorf("mpi: CartCreate periodic length %d != dims %d", len(periodic), len(dims))
	}
	return &Cart{
		comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// DimsCreate factors nnodes into ndims balanced dimensions, largest first
// (MPI_Dims_create with all dimensions free).
func DimsCreate(nnodes, ndims int) ([]int, error) {
	if nnodes <= 0 || ndims <= 0 {
		return nil, fmt.Errorf("mpi: DimsCreate(%d, %d)", nnodes, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Collect prime factors, then distribute them largest-first onto the
	// currently smallest dimension — the standard balancing heuristic.
	var factors []int
	n := nnodes
	for f := 2; f*f <= n; {
		if n%f == 0 {
			factors = append(factors, f)
			n /= f
		} else {
			f++
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	for i := len(factors) - 1; i >= 0; i-- {
		minI := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[minI] {
				minI = j
			}
		}
		dims[minI] *= factors[i]
	}
	// Sort descending (insertion; ndims is tiny).
	for i := 1; i < ndims; i++ {
		for j := i; j > 0 && dims[j] > dims[j-1]; j-- {
			dims[j], dims[j-1] = dims[j-1], dims[j]
		}
	}
	return dims, nil
}

// Comm returns the underlying communicator.
func (t *Cart) Comm() *Comm { return t.comm }

// Dims returns the grid shape.
func (t *Cart) Dims() []int { return append([]int(nil), t.dims...) }

// Coords returns the grid coordinates of a rank (row-major, dimension 0
// slowest — the MPI convention).
func (t *Cart) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= t.comm.Size() {
		return nil, fmt.Errorf("mpi: Coords of rank %d", rank)
	}
	coords := make([]int, len(t.dims))
	for i := len(t.dims) - 1; i >= 0; i-- {
		coords[i] = rank % t.dims[i]
		rank /= t.dims[i]
	}
	return coords, nil
}

// Rank returns the rank at the given coordinates, applying periodicity;
// out-of-range coordinates on a non-periodic dimension return -1 (the MPI
// "proc null").
func (t *Cart) Rank(coords []int) (int, error) {
	if len(coords) != len(t.dims) {
		return -1, fmt.Errorf("mpi: Rank with %d coords for %d dims", len(coords), len(t.dims))
	}
	rank := 0
	for i, c := range coords {
		d := t.dims[i]
		if c < 0 || c >= d {
			if !t.periodic[i] {
				return -1, nil
			}
			c = ((c % d) + d) % d
		}
		rank = rank*d + c
	}
	return rank, nil
}

// Shift returns the source and destination ranks for a displacement along
// one dimension (MPI_Cart_shift): src sends to me, I send to dst. Either
// may be -1 at a non-periodic boundary.
func (t *Cart) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(t.dims) {
		return -1, -1, fmt.Errorf("mpi: Shift dimension %d of %d", dim, len(t.dims))
	}
	me, err := t.Coords(t.comm.Rank())
	if err != nil {
		return -1, -1, err
	}
	up := append([]int(nil), me...)
	up[dim] += disp
	dst, err = t.Rank(up)
	if err != nil {
		return -1, -1, err
	}
	down := append([]int(nil), me...)
	down[dim] -= disp
	src, err = t.Rank(down)
	return src, dst, err
}
