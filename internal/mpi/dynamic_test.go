package mpi

import (
	"bytes"
	"testing"

	"viampi/internal/simnet"
)

// dynCfg returns a 2-rank config with dynamic flow control enabled.
func dynCfg() Config {
	return Config{Procs: 2, DynamicCredits: true, InitialCredits: 4,
		Deadline: 60 * simnet.Second}
}

func TestDynamicCreditsValidation(t *testing.T) {
	cfg := dynCfg()
	cfg.InitialCredits = 2
	if _, err := Run(cfg, func(r *Rank) {}); err == nil {
		t.Error("InitialCredits below 4 must be rejected")
	}
	cfg = dynCfg()
	cfg.InitialCredits = 100
	if _, err := Run(cfg, func(r *Rank) {}); err == nil {
		t.Error("InitialCredits above CreditCount must be rejected")
	}
}

// TestDynamicCreditsCorrectness: heavy bidirectional traffic stays correct
// and ordered while the pools grow.
func TestDynamicCreditsCorrectness(t *testing.T) {
	const n = 200
	runWorld(t, dynCfg(), func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		var reqs []*Request
		for i := 0; i < n; i++ {
			q, err := c.Isend(other, 0, []byte{byte(i), byte(i >> 8)})
			if err != nil {
				t.Error(err)
				return
			}
			reqs = append(reqs, q)
		}
		for i := 0; i < n; i++ {
			buf := make([]byte, 4)
			st, err := c.Recv(buf, other, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if int(buf[0])|int(buf[1])<<8 != i || st.Count != 2 {
				t.Errorf("message %d out of order/corrupt", i)
				return
			}
		}
		if err := r.Waitall(reqs...); err != nil {
			t.Error(err)
		}
	})
}

// TestDynamicCreditsPinnedFootprint: a light exchange leaves the pool at
// its initial size; a heavy one grows it toward CreditCount. Both stay
// below or equal to the static-pool footprint.
func TestDynamicCreditsPinnedFootprint(t *testing.T) {
	light := func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		out := []byte{1}
		in := make([]byte, 4)
		if _, err := c.Sendrecv(other, 0, out, other, 0, in); err != nil {
			t.Error(err)
		}
	}
	heavy := func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		var reqs []*Request
		for i := 0; i < 300; i++ {
			q, err := c.Isend(other, 0, []byte{1})
			if err != nil {
				t.Error(err)
				return
			}
			reqs = append(reqs, q)
		}
		in := make([]byte, 4)
		for i := 0; i < 300; i++ {
			if _, err := c.Recv(in, other, 0); err != nil {
				t.Error(err)
				return
			}
		}
		if err := r.Waitall(reqs...); err != nil {
			t.Error(err)
		}
	}

	wLight := runWorld(t, dynCfg(), light)
	wHeavy := runWorld(t, dynCfg(), heavy)
	wStatic := runWorld(t, Config{Procs: 2, Deadline: 60 * simnet.Second}, heavy)

	if wLight.Ranks[0].PinnedPeak >= wHeavy.Ranks[0].PinnedPeak {
		t.Errorf("light pool (%d) not below heavy pool (%d)",
			wLight.Ranks[0].PinnedPeak, wHeavy.Ranks[0].PinnedPeak)
	}
	if wHeavy.Ranks[0].PinnedPeak > wStatic.Ranks[0].PinnedPeak {
		t.Errorf("dynamic pool (%d) exceeded the static pool (%d)",
			wHeavy.Ranks[0].PinnedPeak, wStatic.Ranks[0].PinnedPeak)
	}
	// Light: pool stays at 4 buffers vs static 24 — about 6x smaller.
	if wLight.Ranks[0].PinnedPeak*4 > wStatic.Ranks[0].PinnedPeak {
		t.Errorf("light dynamic footprint %d not well below static %d",
			wLight.Ranks[0].PinnedPeak, wStatic.Ranks[0].PinnedPeak)
	}
}

// TestDynamicCreditsThroughputConverges: after warmup, dynamic flow control
// reaches the same streaming throughput as the full static pool (within a
// few percent).
func TestDynamicCreditsThroughputConverges(t *testing.T) {
	stream := func(cfg Config) simnet.Duration {
		var elapsed simnet.Duration
		runWorld(t, cfg, func(r *Rank) {
			c := r.World()
			const n = 400
			if r.Rank() == 0 {
				// Warmup to let the pool grow.
				for i := 0; i < 100; i++ {
					if err := c.Send(1, 9, []byte("w")); err != nil {
						t.Error(err)
						return
					}
				}
				start := r.Proc().Now()
				var reqs []*Request
				for i := 0; i < n; i++ {
					q, err := c.Isend(1, 0, make([]byte, 1024))
					if err != nil {
						t.Error(err)
						return
					}
					reqs = append(reqs, q)
				}
				if err := r.Waitall(reqs...); err != nil {
					t.Error(err)
					return
				}
				ack := make([]byte, 4)
				if _, err := c.Recv(ack, 1, 1); err != nil {
					t.Error(err)
					return
				}
				elapsed = r.Proc().Now().Sub(start)
			} else {
				in := make([]byte, 1100)
				for i := 0; i < 100; i++ {
					if _, err := c.Recv(in, 0, 9); err != nil {
						t.Error(err)
						return
					}
				}
				for i := 0; i < n; i++ {
					if _, err := c.Recv(in, 0, 0); err != nil {
						t.Error(err)
						return
					}
				}
				if err := c.Send(0, 1, []byte("ok")); err != nil {
					t.Error(err)
				}
			}
		})
		return elapsed
	}
	dyn := stream(dynCfg())
	static := stream(Config{Procs: 2, Deadline: 60 * simnet.Second})
	if float64(dyn) > float64(static)*1.05 {
		t.Errorf("dynamic throughput %v more than 5%% behind static %v", dyn, static)
	}
}

// TestDynamicCreditsEquivalence: results identical with and without dynamic
// flow control.
func TestDynamicCreditsEquivalence(t *testing.T) {
	program := func(out *[]byte) func(r *Rank) {
		return func(r *Rank) {
			c := r.World()
			me := c.Rank()
			sum := byte(me)
			for round := 0; round < 5; round++ {
				b := []byte{sum}
				in := make([]byte, 4)
				if _, err := c.Sendrecv((me+1)%c.Size(), round, b, (me+c.Size()-1)%c.Size(), round, in); err != nil {
					t.Error(err)
					return
				}
				sum = sum*17 + in[0]
			}
			all := make([]byte, c.Size())
			if err := c.Allgather([]byte{sum}, all); err != nil {
				t.Error(err)
				return
			}
			if me == 0 {
				*out = all
			}
		}
	}
	var a, b []byte
	cfgA := Config{Procs: 6, Deadline: 60 * simnet.Second}
	runWorld(t, cfgA, program(&a))
	cfgB := Config{Procs: 6, DynamicCredits: true, Deadline: 60 * simnet.Second}
	runWorld(t, cfgB, program(&b))
	if !bytes.Equal(a, b) {
		t.Fatalf("results differ: %v vs %v", a, b)
	}
}
