package mpi

import "fmt"

// AnySource matches a message from any sender (MPI_ANY_SOURCE).
// AnyTag matches any tag (MPI_ANY_TAG).
const (
	AnySource = -1
	AnyTag    = -1
)

// SendMode selects the MPI point-to-point send mode.
type SendMode int

// The four MPI communication modes (§3.6 of the paper). Standard completes
// locally once the eager data is buffered (or, above the threshold, when the
// rendezvous finishes); Synchronous always completes only after the matching
// receive started (rendezvous); Ready requires a matching receive to be
// already posted; Buffered always completes locally.
const (
	ModeStandard SendMode = iota
	ModeSynchronous
	ModeReady
	ModeBuffered
)

func (m SendMode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeSynchronous:
		return "synchronous"
	case ModeReady:
		return "ready"
	case ModeBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("SendMode(%d)", int(m))
	}
}

// Status describes a completed receive.
type Status struct {
	Source int // matched sender's rank in the communicator
	Tag    int
	Count  int // bytes received
}

// Request is a nonblocking operation handle (MPI_Request).
type Request struct {
	r      *Rank
	id     int64
	isRecv bool
	done   bool
	err    error

	// receive fields
	buf    []byte
	src    int // wanted source (comm rank) or AnySource
	tag    int // wanted tag or AnyTag
	ctx    int32
	status Status

	// rendezvous receive state
	rkey    uint64
	rmem    int64 // via.MemHandle, kept as int64 to avoid the import here
	rdvSize int

	// send fields
	data     []byte
	dstWorld int // destination world rank
	mode     SendMode
	sentRts  bool
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Err returns the request's error, if any (e.g. truncation). Only valid
// after completion.
func (q *Request) Err() error { return q.err }

// Status returns the receive status. Only valid after completion of a
// receive request.
func (q *Request) Status() Status { return q.status }

func (q *Request) complete() {
	q.done = true
}

func (q *Request) failf(format string, args ...interface{}) {
	if q.err == nil {
		q.err = fmt.Errorf(format, args...)
	}
	q.done = true
}
