package mpi

import (
	"testing"

	"viampi/internal/simnet"
)

func TestGathervScatterv(t *testing.T) {
	const n = 5
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		root := 2
		// Rank i contributes i+1 bytes of value 100+i.
		mine := make([]byte, me+1)
		for j := range mine {
			mine[j] = byte(100 + me)
		}
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			counts[i] = i + 1
			displs[i] = total
			total += counts[i]
		}
		full := make([]byte, total)
		if err := c.Gatherv(mine, full, counts, displs, root); err != nil {
			t.Error(err)
			return
		}
		if me == root {
			for i := 0; i < n; i++ {
				for j := 0; j < counts[i]; j++ {
					if full[displs[i]+j] != byte(100+i) {
						t.Errorf("gatherv block %d corrupted", i)
						return
					}
				}
			}
			// Mutate and scatter back.
			for i := 0; i < n; i++ {
				for j := 0; j < counts[i]; j++ {
					full[displs[i]+j] = byte(200 + i)
				}
			}
		}
		out := make([]byte, me+1)
		if err := c.Scatterv(full, counts, displs, out, root); err != nil {
			t.Error(err)
			return
		}
		for j := range out {
			if out[j] != byte(200+me) {
				t.Errorf("rank %d scatterv got %d", me, out[j])
				return
			}
		}
	})
}

func TestAllgatherv(t *testing.T) {
	const n = 4
	runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		counts := []int{2, 4, 6, 8}
		displs := []int{0, 2, 6, 12}
		mine := make([]byte, counts[me])
		for j := range mine {
			mine[j] = byte(me*10 + j)
		}
		out := make([]byte, 20)
		if err := c.Allgatherv(mine, out, counts, displs); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			for j := 0; j < counts[i]; j++ {
				if out[displs[i]+j] != byte(i*10+j) {
					t.Errorf("rank %d: allgatherv block %d byte %d = %d", me, i, j, out[displs[i]+j])
					return
				}
			}
		}
	})
}

func TestWaitany(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Proc().Sleep(simnet.D(2e6))
			if err := c.Send(1, 5, []byte("b")); err != nil { // tag 5 arrives first
				t.Error(err)
			}
			r.Proc().Sleep(simnet.D(2e6))
			if err := c.Send(1, 4, []byte("a")); err != nil {
				t.Error(err)
			}
		} else {
			b1 := make([]byte, 4)
			b2 := make([]byte, 4)
			q1, err := c.Irecv(b1, 0, 4)
			if err != nil {
				t.Error(err)
				return
			}
			q2, err := c.Irecv(b2, 0, 5)
			if err != nil {
				t.Error(err)
				return
			}
			idx, err := r.Waitany(q1, q2)
			if err != nil {
				t.Error(err)
				return
			}
			if idx != 1 {
				t.Errorf("Waitany returned %d, want 1 (tag 5 first)", idx)
			}
			if err := r.Waitall(q1, q2); err != nil {
				t.Error(err)
			}
		}
	})
	// Empty argument list.
	runWorld(t, testCfg(1), func(r *Rank) {
		if idx, err := r.Waitany(); idx != -1 || err != nil {
			t.Errorf("empty Waitany = %d, %v", idx, err)
		}
	})
}

func TestWaitsomeAndTestall(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Proc().Sleep(simnet.D(1e6))
			for tag := 0; tag < 3; tag++ {
				if err := c.Send(1, tag, []byte{byte(tag)}); err != nil {
					t.Error(err)
				}
			}
		} else {
			bufs := make([][]byte, 3)
			reqs := make([]*Request, 3)
			for tag := 0; tag < 3; tag++ {
				bufs[tag] = make([]byte, 4)
				q, err := c.Irecv(bufs[tag], 0, tag)
				if err != nil {
					t.Error(err)
					return
				}
				reqs[tag] = q
			}
			if done, _ := r.Testall(reqs...); done {
				t.Error("Testall true before sends")
			}
			got, err := r.Waitsome(reqs...)
			if err != nil || len(got) == 0 {
				t.Errorf("Waitsome = %v, %v", got, err)
				return
			}
			if err := r.Waitall(reqs...); err != nil {
				t.Error(err)
				return
			}
			if done, err := r.Testall(reqs...); !done || err != nil {
				t.Errorf("Testall after Waitall = %v, %v", done, err)
			}
		}
	})
}
