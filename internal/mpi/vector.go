package mpi

import "fmt"

// Vector (v-variant) collectives and additional request-completion helpers.

// Gatherv collects variable-size blocks at root: rank i's sendbuf lands at
// recvbuf[displs[i]:displs[i]+counts[i]]. counts and displs are only
// consulted at the root, as in MPI.
func (c *Comm) Gatherv(sendbuf, recvbuf []byte, counts, displs []int, root int) error {
	n := c.Size()
	if c.myrank != root {
		return c.csend(root, tagGather, sendbuf)
	}
	if len(counts) < n || len(displs) < n {
		return fmt.Errorf("mpi: Gatherv needs %d counts/displs", n)
	}
	copy(recvbuf[displs[root]:displs[root]+counts[root]], sendbuf)
	reqs := make([]*Request, 0, n-1)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		req, err := c.irecvCtx(recvbuf[displs[i]:displs[i]+counts[i]], i, tagGather, c.cctx)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return c.r.Waitall(reqs...)
}

// Scatterv distributes variable-size blocks from root; each rank receives
// its own block into recvbuf (whose length determines the expected count).
func (c *Comm) Scatterv(sendbuf []byte, counts, displs []int, recvbuf []byte, root int) error {
	n := c.Size()
	if c.myrank != root {
		_, err := c.crecv(recvbuf, root, tagScatter)
		return err
	}
	if len(counts) < n || len(displs) < n {
		return fmt.Errorf("mpi: Scatterv needs %d counts/displs", n)
	}
	for i := 0; i < n; i++ {
		blk := sendbuf[displs[i] : displs[i]+counts[i]]
		if i == root {
			copy(recvbuf, blk)
			continue
		}
		if err := c.csend(i, tagScatter, blk); err != nil {
			return err
		}
	}
	return nil
}

// Allgatherv gathers variable-size blocks everywhere: gather to rank 0 then
// broadcast the packed result (counts/displs must be identical on all
// ranks, as MPI requires).
func (c *Comm) Allgatherv(sendbuf, recvbuf []byte, counts, displs []int) error {
	if err := c.Gatherv(sendbuf, recvbuf, counts, displs, 0); err != nil {
		return err
	}
	total := 0
	for i := 0; i < c.Size(); i++ {
		end := displs[i] + counts[i]
		if end > total {
			total = end
		}
	}
	return c.Bcast(recvbuf[:total], 0)
}

// Waitany blocks until at least one of the requests completes and returns
// its index (MPI_Waitany). With an empty slice it returns -1.
func (r *Rank) Waitany(reqs ...*Request) (int, error) {
	if len(reqs) == 0 {
		return -1, nil
	}
	idx := -1
	r.waitProgress(func() bool {
		for i, q := range reqs {
			if q.done {
				idx = i
				return true
			}
		}
		return false
	})
	return idx, reqs[idx].err
}

// Waitsome blocks until at least one request completes and returns the
// indices of all completed requests (MPI_Waitsome).
func (r *Rank) Waitsome(reqs ...*Request) ([]int, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	var done []int
	r.waitProgress(func() bool {
		done = done[:0]
		for i, q := range reqs {
			if q.done {
				done = append(done, i)
			}
		}
		return len(done) > 0
	})
	for _, i := range done {
		if reqs[i].err != nil {
			return done, reqs[i].err
		}
	}
	return done, nil
}

// Testall makes one progress pass and reports whether every request has
// completed (MPI_Testall).
func (r *Rank) Testall(reqs ...*Request) (bool, error) {
	r.progress()
	for _, q := range reqs {
		if !q.done {
			return false, nil
		}
	}
	for _, q := range reqs {
		if q.err != nil {
			return true, q.err
		}
	}
	return true, nil
}
