package mpi

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"viampi/internal/obs"
)

// pingpongWorld runs a 2-rank ping-pong with the flight recorder attached
// and returns the recorder, ready for export.
func pingpongWorld(t *testing.T, cfg Config) *obs.Recorder {
	t.Helper()
	bus := obs.NewBus()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	cfg.Obs = bus
	runWorld(t, cfg, func(r *Rank) {
		c := r.World()
		buf := make([]byte, 64)
		for i := 0; i < 4; i++ {
			if r.Rank() == 0 {
				if err := c.Send(1, 0, []byte("ping")); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Recv(buf, 1, 0); err != nil {
					t.Error(err)
					return
				}
			} else {
				if _, err := c.Recv(buf, 0, 0); err != nil {
					t.Error(err)
					return
				}
				if err := c.Send(0, 0, []byte("pong")); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	return rec
}

// TestPerfettoExportPingpong drives a 2-rank on-demand ping-pong through
// the exporter and checks the output is valid Chrome trace-event JSON with
// the structures a timeline needs: thread metadata per rank, MPI call
// spans, an async connection span, and matched message flow arrows.
func TestPerfettoExportPingpong(t *testing.T) {
	cfg := testCfg(2)
	cfg.Policy = "ondemand"
	rec := pingpongWorld(t, cfg)
	if rec.Len() == 0 {
		t.Fatal("recorder captured no events")
	}

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}

	count := map[string]int{} // "ph/cat" -> occurrences
	flows := map[string][2]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		cat, _ := ev["cat"].(string)
		count[ph+"/"+cat]++
		if cat == "msg" {
			id, _ := ev["id"].(string)
			f := flows[id]
			if ph == "s" {
				f[0]++
			} else if ph == "f" {
				f[1]++
			}
			flows[id] = f
		}
	}
	// Both ranks must be named threads.
	if count["M/"] < 3 { // process_name + two thread_name records
		t.Fatalf("missing metadata records: %v", count)
	}
	if count["B/mpi"] == 0 || count["B/mpi"] != count["E/mpi"] {
		t.Fatalf("unbalanced MPI call spans: B=%d E=%d", count["B/mpi"], count["E/mpi"])
	}
	// On-demand must show at least one connection setup async span.
	if count["b/conn"] == 0 || count["e/conn"] == 0 {
		t.Fatalf("no connection async span in on-demand trace: %v", count)
	}
	// Every flow arrow must have exactly one start and one finish.
	if len(flows) != 8 { // 4 pings + 4 pongs
		t.Fatalf("flow arrow count = %d, want 8", len(flows))
	}
	for id, f := range flows {
		if f[0] != 1 || f[1] != 1 {
			t.Fatalf("flow %s has %d starts and %d finishes", id, f[0], f[1])
		}
	}
}

// TestPerfettoStaticHasNoLateConnects sanity-checks the policy contrast the
// trace is meant to expose: a static-mesh run still records connection
// spans, but all of them begin before the first user message is sent.
func TestPerfettoStaticHasNoLateConnects(t *testing.T) {
	cfg := testCfg(2)
	cfg.Policy = "static-p2p"
	rec := pingpongWorld(t, cfg)
	firstSend := int64(-1)
	lastConnStart := int64(-1)
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.EvMsgSend:
			if firstSend < 0 {
				firstSend = e.T
			}
		case obs.EvConnRequest:
			lastConnStart = e.T
		}
	}
	if firstSend < 0 || lastConnStart < 0 {
		t.Fatal("trace missing sends or connection requests")
	}
	if lastConnStart > firstSend {
		t.Fatalf("static policy opened a connection at t=%d after the first send at t=%d", lastConnStart, firstSend)
	}
}

// TestWriteProfileSpreadColumns pins the per-rank spread columns: a
// point-to-point call issued by one of two ranks must show imbalance 2.00
// and a zero rank-min, while the header names every column.
func TestWriteProfileSpreadColumns(t *testing.T) {
	cfg := testCfg(2)
	cfg.Profile = true
	w := runWorld(t, cfg, func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 32)); err != nil {
				t.Error(err)
			}
		} else {
			if _, err := c.Recv(make([]byte, 64), 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
	var buf bytes.Buffer
	w.WriteProfile(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	header := lines[0]
	for _, col := range []string{"call", "count", "total time", "avg", "rank min", "rank max", "imbal"} {
		if !strings.Contains(header, col) {
			t.Fatalf("header missing %q:\n%s", col, out)
		}
	}
	var sendLine string
	for _, ln := range lines[1:] {
		if strings.HasPrefix(ln, "Send") {
			sendLine = ln
		}
	}
	if sendLine == "" {
		t.Fatalf("no Send row:\n%s", out)
	}
	// Only rank 0 called Send, so max = total and imbal = max*2/total = 2.00.
	if !strings.HasSuffix(sendLine, "2.00") {
		t.Fatalf("Send imbalance not 2.00:\n%s", sendLine)
	}
	fields := strings.Fields(sendLine)
	// call count total avg min max imbal — rank min must be the zero duration.
	if fields[4] != "0s" {
		t.Fatalf("Send rank-min = %q, want 0s:\n%s", fields[4], sendLine)
	}
}

// TestWritePhasesTable checks the per-rank phase decomposition renders one
// row per rank and accounts time into the connect column under on-demand.
func TestWritePhasesTable(t *testing.T) {
	cfg := testCfg(2)
	cfg.Policy = "ondemand"
	bus := obs.NewBus()
	cfg.Obs = bus
	w := runWorld(t, cfg, func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 32)); err != nil {
				t.Error(err)
			}
		} else {
			if _, err := c.Recv(make([]byte, 64), 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
	var buf bytes.Buffer
	w.WritePhases(&buf)
	out := buf.String()
	if !strings.Contains(out, "connect") || !strings.Contains(out, "rank") {
		t.Fatalf("phase table header:\n%s", out)
	}
	rows := 0
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(ln), "0") || strings.HasPrefix(strings.TrimSpace(ln), "1") {
			rows++
		}
	}
	if rows < 2 {
		t.Fatalf("expected a row per rank:\n%s", out)
	}
}

// TestWritePhasesEmptyWithoutBus pins the disabled-path rendering.
func TestWritePhasesEmptyWithoutBus(t *testing.T) {
	w := runWorld(t, testCfg(2), func(r *Rank) {})
	var buf bytes.Buffer
	w.WritePhases(&buf)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("phase rendering without a bus: %s", buf.String())
	}
}
