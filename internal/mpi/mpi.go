// Package mpi is a single-threaded, polling-progress MPI subset layered on
// the emulated VIA provider, mirroring the structure of MVICH (MPICH's ADI
// over VIPL) that the paper modifies.
//
// The package provides the pieces the paper's experiments exercise: the four
// point-to-point communication modes with an eager/rendezvous protocol
// switch at 5000 bytes, credit-based flow control over pre-posted per-VI
// receive buffers, MPICH-style (context, source, tag) matching including
// MPI_ANY_SOURCE and MPI_ANY_TAG, nonblocking requests with a weak-progress
// device-check loop, MPICH-1.2 collective algorithms, and pluggable
// connection management (static client-server, static peer-to-peer, or the
// paper's on-demand policy) selected per run.
//
// Programs are Go functions receiving a *Rank; Run launches one simulated
// process per rank on the virtual cluster and returns per-rank resource and
// timing statistics used by the experiment harness.
package mpi

import (
	"encoding/binary"
	"fmt"
	"io"

	"viampi/internal/core"
	"viampi/internal/fabric"
	"viampi/internal/obs"
	"viampi/internal/simnet"
	"viampi/internal/trace"
	"viampi/internal/via"
)

// Config describes one MPI job on the simulated cluster.
type Config struct {
	Procs int // number of ranks (required)

	// Device selects the VIA personality: "clan" (default) or "bvia".
	Device string
	// ProcsPerNode sets process placement; 0 defaults to 4 on clan (the
	// paper's quad-CPU nodes) and 1 on bvia (its Berkeley VIA limitation).
	ProcsPerNode int

	// Policy selects connection management: "static-cs", "static-p2p" or
	// "ondemand" (default).
	Policy string

	// Placement maps ranks onto nodes: "block" (default — ranks 0..p-1 on
	// node 0, the usual mpirun behaviour) or "roundrobin" (rank r on node
	// r mod nodes — neighbours land on different nodes, trading loopback
	// for wire traffic).
	Placement string

	// WaitMode selects polling (default) or spinwait completion.
	WaitMode via.WaitMode

	// EagerThreshold is the eager/rendezvous protocol switch in bytes
	// (default 5000, the MVICH value the paper cites).
	EagerThreshold int
	// CreditCount is the number of pre-posted receive buffers (and thus
	// flow-control credits) per VI; default 24, which with the 5 kB eager
	// buffers pins ~120 kB per VI as in MVICH.
	CreditCount int

	// DynamicCredits implements the paper's stated future work (§6):
	// "combination of on-demand connection establishment and dynamic
	// flow-control on each VI connection". Each channel starts with
	// InitialCredits pre-posted buffers and doubles its pool toward
	// CreditCount as traffic warrants, so the pinned footprint tracks
	// per-peer traffic instead of the worst case.
	DynamicCredits bool
	// InitialCredits is the starting pool size under DynamicCredits
	// (default 4, the minimum the credit-reservation rule needs).
	InitialCredits int

	// MaxVIs caps the VI connections each rank keeps live (0 = unlimited,
	// the paper's behaviour). Only meaningful under the "ondemand" policy:
	// crossing the cap gracefully evicts the least-recently-used idle
	// channel and re-establishes it transparently on next use. The cap is
	// soft — when no channel is quiescent the new connection proceeds.
	MaxVIs int

	// Faults injects deterministic connection-establishment faults (drops,
	// delays, NACKs, unavailability windows); see via.FaultPlan. Setting it
	// defaults ConnTimeout to 2 ms so dropped requests are retried.
	Faults *via.FaultPlan
	// ConnTimeout bounds one connection attempt before it is cancelled and
	// retried with backoff; 0 arms no timers (the default — timing-neutral
	// for fault-free runs). ConnRetries caps attempts (default 8).
	ConnTimeout simnet.Duration
	ConnRetries int

	Seed     int64
	Deadline simnet.Duration // abort guard on virtual time; 0 = none

	// UnsafeNoSendFifo disables the paper's pre-posted send FIFO (§3.4):
	// sends issued before a connection completes are posted straight to the
	// VIA send queue, where the architecture discards them. This exists
	// ONLY as an ablation — it demonstrates the message loss the FIFO
	// prevents and must never be set otherwise.
	UnsafeNoSendFifo bool

	// TuneCost and TuneFabric allow experiments to perturb the device
	// model after defaults are applied.
	TuneCost   func(*via.CostModel)
	TuneFabric func(*fabric.Config)

	// Trace, when set, records every point-to-point message (user and
	// collective-internal) for communication-pattern analysis. It is fed
	// from the observability bus (an Obs bus is created implicitly when
	// only Trace is set).
	Trace *trace.Recorder

	// Obs, when set, is the observability event bus: every layer (simnet,
	// fabric, via, core, mpi) stamps structured events onto it in virtual
	// time. Attach an obs.Recorder for Perfetto export or an obs.Collector
	// for metrics before calling Run. Nil disables all instrumentation at
	// zero per-event cost.
	Obs *obs.Bus

	// Profile enables per-call time accounting (PMPI-style); results are
	// returned in RankStats.Profile and rendered by World.WriteProfile.
	Profile bool

	// BarrierAlg selects the barrier algorithm: "rd" (default, recursive
	// doubling), "dissemination", or "tree" (binomial combine+broadcast).
	// AllreduceAlg selects "rd" (default) or "reduce-bcast". These exist
	// for the connection-footprint vs. latency ablation.
	BarrierAlg   string
	AllreduceAlg string

	cost via.CostModel // resolved by normalize
}

func (c *Config) eagerBufSize() int { return hdrSize + c.EagerThreshold }

// normalize applies defaults and resolves the device profile.
func (c *Config) normalize() (fabric.Config, error) {
	if c.Procs <= 0 {
		return fabric.Config{}, fmt.Errorf("mpi: Procs must be positive, got %d", c.Procs)
	}
	if c.Device == "" {
		c.Device = "clan"
	}
	if c.Policy == "" {
		c.Policy = "ondemand"
	}
	if c.EagerThreshold == 0 {
		c.EagerThreshold = 5000
	}
	if c.CreditCount == 0 {
		c.CreditCount = 24
	}
	if c.CreditCount < 4 {
		return fabric.Config{}, fmt.Errorf("mpi: CreditCount %d too small (min 4)", c.CreditCount)
	}
	if c.InitialCredits == 0 {
		c.InitialCredits = 4
	}
	if c.DynamicCredits && (c.InitialCredits < 4 || c.InitialCredits > c.CreditCount) {
		return fabric.Config{}, fmt.Errorf("mpi: InitialCredits %d outside [4, CreditCount=%d]",
			c.InitialCredits, c.CreditCount)
	}
	if c.MaxVIs < 0 {
		return fabric.Config{}, fmt.Errorf("mpi: MaxVIs must be non-negative, got %d", c.MaxVIs)
	}
	if c.MaxVIs != 0 && c.Policy != "ondemand" {
		return fabric.Config{}, fmt.Errorf("mpi: MaxVIs requires the ondemand policy, got %q", c.Policy)
	}
	if c.Faults != nil && c.ConnTimeout == 0 {
		c.ConnTimeout = 2 * simnet.Millisecond
	}
	var fcfg fabric.Config
	switch c.Placement {
	case "", "block", "roundrobin":
	default:
		return fabric.Config{}, fmt.Errorf("mpi: unknown placement %q", c.Placement)
	}
	switch c.Device {
	case "clan":
		if c.ProcsPerNode == 0 {
			c.ProcsPerNode = 4
		}
		nodes := (c.Procs + c.ProcsPerNode - 1) / c.ProcsPerNode
		fcfg = via.ClanFabric(nodes, c.ProcsPerNode)
		c.cost = via.ClanCost()
	case "bvia":
		if c.ProcsPerNode == 0 {
			c.ProcsPerNode = 1
		}
		nodes := (c.Procs + c.ProcsPerNode - 1) / c.ProcsPerNode
		fcfg = via.BviaFabric(nodes, c.ProcsPerNode)
		c.cost = via.BviaCost()
	case "ib":
		if c.ProcsPerNode == 0 {
			c.ProcsPerNode = 4
		}
		nodes := (c.Procs + c.ProcsPerNode - 1) / c.ProcsPerNode
		fcfg = via.IbFabric(nodes, c.ProcsPerNode)
		c.cost = via.IbCost()
	default:
		return fabric.Config{}, fmt.Errorf("mpi: unknown device %q", c.Device)
	}
	if c.TuneCost != nil {
		c.TuneCost(&c.cost)
	}
	if c.TuneFabric != nil {
		c.TuneFabric(&fcfg)
	}
	return fcfg, nil
}

// RankStats captures one rank's resource usage and timings — the raw
// material for the paper's Table 2, Table 3 and Figures 6-8.
type RankStats struct {
	Rank          int
	InitTime      simnet.Duration
	AppTime       simnet.Duration // time spent inside the user main
	VisCreated    int
	VisUsed       int
	Utilization   float64 // VisUsed / VisCreated (0 when none created)
	DistinctDests int     // peers this rank addressed user sends to
	PeakChans     int     // high-water mark of simultaneously live channels
	PinnedPeak    int64   // peak registered memory in bytes
	MsgsSent      int64   // VIA-level messages (incl. protocol packets)
	BytesSent     int64
	WaitWakeups   int64
	ComputeTime   simnet.Duration
	Profile       map[string]*CallStat // nil unless Config.Profile
	Phases        *obs.Phases          // nil unless observability is on
}

// World is the result of a run.
type World struct {
	Cfg     Config
	Elapsed simnet.Duration // virtual time when the last rank finished
	Ranks   []RankStats
	Net     *via.Network // post-run network counters (drops, discards)
}

// AvgVIs returns the mean VIs created per rank (Table 2's first column).
func (w *World) AvgVIs() float64 {
	t := 0.0
	for _, rs := range w.Ranks {
		t += float64(rs.VisCreated)
	}
	return t / float64(len(w.Ranks))
}

// AvgUtilization returns the mean per-rank resource utilization.
func (w *World) AvgUtilization() float64 {
	t := 0.0
	for _, rs := range w.Ranks {
		t += rs.Utilization
	}
	return t / float64(len(w.Ranks))
}

// AvgInit returns the mean MPI_Init duration (Figure 8 reports the average
// across processes).
func (w *World) AvgInit() simnet.Duration {
	var t simnet.Duration
	for _, rs := range w.Ranks {
		t += rs.InitTime
	}
	return t / simnet.Duration(len(w.Ranks))
}

// MaxAppTime returns the longest per-rank application time (the NPB
// "CPU time" analogue).
func (w *World) MaxAppTime() simnet.Duration {
	var m simnet.Duration
	for _, rs := range w.Ranks {
		if rs.AppTime > m {
			m = rs.AppTime
		}
	}
	return m
}

// TotalPinnedPeak sums peak pinned memory across ranks.
func (w *World) TotalPinnedPeak() int64 {
	var t int64
	for _, rs := range w.Ranks {
		t += rs.PinnedPeak
	}
	return t
}

// WritePhases renders the per-rank phase decomposition — where each rank's
// virtual time went (compute, eager, rendezvous, connect, credit stalls,
// progress polling). Empty unless observability was enabled for the run.
func (w *World) WritePhases(out io.Writer) {
	rows := make([]obs.PhaseRow, 0, len(w.Ranks))
	for _, rs := range w.Ranks {
		if rs.Phases == nil {
			continue
		}
		rows = append(rows, obs.PhaseRow{Rank: rs.Rank, Elapsed: int64(w.Elapsed), P: rs.Phases})
	}
	if len(rows) == 0 {
		fmt.Fprintln(out, "phases: empty (run with Config.Obs or Config.Trace set)")
		return
	}
	obs.WritePhaseTable(out, rows)
}

// Run executes main on cfg.Procs simulated ranks and returns the collected
// statistics. It is the analogue of mpirun: it boots the virtual cluster,
// performs the out-of-band process-table exchange, runs MPI_Init under the
// configured connection policy, invokes main, and finalizes.
func Run(cfg Config, main func(r *Rank)) (*World, error) {
	fcfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sim := simnet.New(cfg.Seed)
	if cfg.Deadline > 0 {
		sim.SetDeadline(simnet.Time(cfg.Deadline))
	}
	bus := cfg.Obs
	if bus == nil && cfg.Trace != nil {
		// Tracing rides on the event bus; create a private one.
		bus = obs.NewBus()
	}
	sim.SetObs(bus)
	if cfg.Trace != nil {
		cfg.Trace.Attach(bus)
	}
	net := via.NewNetwork(sim, fcfg, cfg.cost)
	if cfg.Faults != nil {
		if cfg.Faults.Seed == 0 {
			cfg.Faults.Seed = cfg.Seed
		}
		net.SetFaults(cfg.Faults)
	}

	n := cfg.Procs
	world := &World{Cfg: cfg, Ranks: make([]RankStats, n), Net: net}
	addrs := make([]via.Addr, n)
	worldRanks := identity(n)       // one identity table shared by every rank's world comm
	epRanks := make(map[int]int, n) // shared endpoint→rank table, built by the last opener
	opened := 0
	var waiting []*simnet.Proc // ranks parked on the startup barrier

	for i := 0; i < n; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("rank%d", i), 0, func(p *simnet.Proc) {
			var port *via.Port
			var err error
			if cfg.Placement == "roundrobin" {
				port, err = net.OpenOnNode(p, i%fcfg.Nodes)
			} else {
				port, err = net.Open(p)
			}
			if err != nil {
				sim.Failf("mpi: rank %d open: %v", i, err)
				return
			}
			addrs[i] = port.Addr()
			opened++
			if opened < n {
				// Startup barrier: the out-of-band bootstrap may not begin
				// until every rank has published its address. Early arrivals
				// park once and the last opener wakes them all — O(1)
				// simulator events per rank regardless of how staggered the
				// opens are, where the old 5µs sleep-poll loop burned
				// O(wait/5µs) events per waiting rank. The release lands on
				// the +5µs instant the poll grid used, so virtual timings
				// (and every committed artifact derived from them) are
				// unchanged.
				waiting = append(waiting, p)
				p.Park()
			} else {
				for w, a := range addrs {
					epRanks[a.Ep] = w
				}
				for _, q := range waiting {
					q.WakeAfter(5 * simnet.Microsecond)
				}
			}
			r := &Rank{
				proc: p, port: port, cfg: &cfg,
				rank: i, size: n,
				addrs:    addrs,
				viToChan: make(map[*via.VI]*chanState),
				sendReqs: make(map[int64]*Request),
				recvReqs: make(map[int64]*Request),
			}
			r.cq = via.NewCQ(port)
			r.ctxCounter = 2 // world uses contexts 0 (pt2pt) and 1 (collective)
			r.bus = sim.Obs()
			if r.bus != nil {
				r.phases = &obs.Phases{}
				r.sendSeq = make(map[int]int64)
				r.recvSeq = make(map[int]int64)
			}
			if cfg.Profile || r.bus != nil {
				r.prof = &profiler{proc: p, rank: int32(i), bus: r.bus}
				if cfg.Profile {
					r.prof.stats = map[string]*CallStat{}
				}
			}

			r.bootstrap(addrs)

			mcfg := core.Config{
				Rank: i, Size: n, Port: port, Addrs: addrs, Mode: cfg.WaitMode,
				EpRanks:        epRanks,
				NewVi:          func() (*via.VI, error) { return port.CreateViCQ(r.cq) },
				PrepareChannel: r.prepareChannel,
				OnChannelUp:    r.onChannelUp,
				MaxVIs:         cfg.MaxVIs,
				CanEvict:       r.canEvict,
				StartEvict:     r.startEvict,
				ConnTimeout:    cfg.ConnTimeout,
				ConnRetryMax:   cfg.ConnRetries,
			}
			mgr, err := core.NewManager(cfg.Policy, mcfg)
			if err != nil {
				sim.Failf("mpi: rank %d: %v", i, err)
				return
			}
			r.mgr = mgr
			connStart := p.Now()
			if err := mgr.Init(); err != nil {
				sim.Failf("mpi: rank %d init: %v", i, err)
				return
			}
			r.phases.Add(obs.PhaseConnect, int64(p.Now().Sub(connStart)))
			r.initTime = simnet.Duration(p.Now())
			r.world = newComm(r, worldRanks, 0)

			r.appStart = p.Now()
			main(r)
			appTime := p.Now().Sub(r.appStart)

			r.finalize()

			st := port.Stats()
			dests := 0
			for _, cs := range r.active {
				if cs.userSends > 0 {
					dests++
				}
			}
			// A rank that never created a VI has used none of nothing:
			// report 0, not the perfect 1.0 the old default claimed (it
			// inflated AvgUtilization for worlds with idle ranks).
			util := 0.0
			if st.VisCreated > 0 {
				util = float64(port.VisUsed()) / float64(st.VisCreated)
			}
			world.Ranks[i] = RankStats{
				Rank:          i,
				InitTime:      r.initTime,
				AppTime:       appTime,
				VisCreated:    st.VisCreated,
				VisUsed:       port.VisUsed(),
				Utilization:   util,
				DistinctDests: dests,
				PeakChans:     r.peakLive,
				PinnedPeak:    port.Memory().PeakPinned(),
				MsgsSent:      st.MsgsSent,
				BytesSent:     st.BytesSent,
				WaitWakeups:   st.WaitWakeups,
				ComputeTime:   p.BusyTime(),
			}
			if r.prof != nil {
				world.Ranks[i].Profile = r.prof.stats
			}
			world.Ranks[i].Phases = r.phases
			if r.bus != nil {
				// Run-epilogue phase records: one event per phase with the
				// rank's charged nanoseconds, so a capture bundle carries
				// everything the phase table needs (the "other" residual is
				// computed at render time from Elapsed, not stored).
				for ph := obs.PhaseCompute; ph < obs.NumPhases; ph++ {
					r.bus.Emit(obs.Event{T: int64(p.Now()), Kind: obs.EvPhase, Rank: int32(i), Peer: -1,
						A: int64(ph), B: r.phases.Ns[ph], Name: ph.String()})
				}
			}
		})
	}
	if err := sim.Run(); err != nil {
		return nil, err
	}
	world.Elapsed = simnet.Duration(sim.Now())
	// Close the observable record: the run's elapsed virtual time and world
	// size, emitted exactly once after the last rank finishes.
	bus.Emit(obs.Event{T: int64(world.Elapsed), Kind: obs.EvRunEnd, Rank: -1, Peer: -1, A: int64(n)})
	if net.DroppedNoDescriptor > 0 {
		return world, fmt.Errorf("mpi: flow control violated: %d receives had no descriptor", net.DroppedNoDescriptor)
	}
	return world, nil
}

func identity(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// bootstrap is the out-of-band process-table handshake (MVICH got this from
// mpirun over TCP): every rank reports to rank 0, which releases the job.
func (r *Rank) bootstrap(addrs []via.Addr) {
	const (
		helloTag = 0x68 // 'h'
		goTag    = 0x67 // 'g'
	)
	msg := make([]byte, 5)
	binary.LittleEndian.PutUint32(msg[1:], uint32(r.rank))
	if r.rank == 0 {
		seen := 1
		for seen < r.size {
			from, data, ok := r.port.RecvOob()
			if !ok {
				r.port.WaitActivity(r.cfg.WaitMode)
				continue
			}
			_ = from
			if data[0] == helloTag {
				seen++
			}
		}
		for i := 1; i < r.size; i++ {
			r.port.SendOob(addrs[i], []byte{goTag})
		}
		return
	}
	msg[0] = helloTag
	r.port.SendOob(addrs[0], msg)
	for {
		_, data, ok := r.port.RecvOob()
		if ok && data[0] == goTag {
			return
		}
		if !ok {
			r.port.WaitActivity(r.cfg.WaitMode)
		}
	}
}

// finalize drains outstanding protocol obligations, runs an out-of-band
// barrier (so every rank keeps making VIA progress until all are done — no
// VIA connections are created by MPI_Finalize itself), and tears down.
func (r *Rank) finalize() {
	if r.finalized {
		return
	}
	r.finalized = true

	// Phase 1: drain local obligations, making progress for peers too.
	r.waitProgress(func() bool {
		if len(r.sendReqs) > 0 || len(r.recvReqs) > 0 {
			return false
		}
		for _, q := range r.detached {
			if !q.done {
				return false
			}
		}
		for _, cs := range r.active {
			if len(cs.flowQ) > 0 || cs.ch.Parked() > 0 || cs.closing || len(cs.pendingClose) > 0 {
				return false
			}
		}
		return true
	})

	// Phase 2: out-of-band barrier with continued VIA progress.
	const (
		finTag  = 0x66 // 'f'
		doneTag = 0x64 // 'd'
	)
	addrs := r.addrs
	if r.rank == 0 {
		seen := 1
		for seen < r.size {
			r.progress()
			if _, data, ok := r.port.RecvOob(); ok {
				if data[0] == finTag {
					seen++
				}
				continue
			}
			r.port.WaitActivityTimeout(r.cfg.WaitMode, 200*simnet.Microsecond)
		}
		for i := 1; i < r.size; i++ {
			r.port.SendOob(addrs[i], []byte{doneTag})
		}
	} else {
		r.port.SendOob(addrs[0], []byte{finTag})
		for {
			r.progress()
			if _, data, ok := r.port.RecvOob(); ok && data[0] == doneTag {
				break
			}
			r.port.WaitActivityTimeout(r.cfg.WaitMode, 200*simnet.Microsecond)
		}
	}
}
