package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"viampi/internal/simnet"
)

// testCfg returns a small default config with a safety deadline.
func testCfg(procs int) Config {
	return Config{Procs: procs, Deadline: 120 * simnet.Second}
}

// runWorld runs main and fails the test on any launch or drain error.
func runWorld(t *testing.T, cfg Config, main func(r *Rank)) *World {
	t.Helper()
	w, err := Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunTrivial(t *testing.T) {
	w := runWorld(t, testCfg(4), func(r *Rank) {})
	if len(w.Ranks) != 4 {
		t.Fatalf("ranks = %d", len(w.Ranks))
	}
	if w.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Procs: 0}, func(r *Rank) {}); err == nil {
		t.Error("expected error for 0 procs")
	}
	if _, err := Run(Config{Procs: 2, Device: "quantum"}, func(r *Rank) {}); err == nil {
		t.Error("expected error for unknown device")
	}
	if _, err := Run(Config{Procs: 2, Policy: "psychic"}, func(r *Rank) {}); err == nil {
		t.Error("expected error for unknown policy")
	}
	if _, err := Run(Config{Procs: 2, CreditCount: 2}, func(r *Rank) {}); err == nil {
		t.Error("expected error for tiny credit count")
	}
}

func allSetups() []Config {
	var cfgs []Config
	for _, dev := range []string{"clan", "bvia"} {
		for _, pol := range []string{"static-cs", "static-p2p", "ondemand"} {
			c := testCfg(2)
			c.Device = dev
			c.Policy = pol
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

func TestSendRecvAllPoliciesAndDevices(t *testing.T) {
	for _, cfg := range allSetups() {
		cfg := cfg
		t.Run(cfg.Device+"/"+cfg.Policy, func(t *testing.T) {
			msg := []byte("payload-42")
			runWorld(t, cfg, func(r *Rank) {
				c := r.World()
				if r.Rank() == 0 {
					if err := c.Send(1, 7, msg); err != nil {
						t.Error(err)
					}
				} else {
					buf := make([]byte, 64)
					st, err := c.Recv(buf, 0, 7)
					if err != nil {
						t.Error(err)
						return
					}
					if st.Source != 0 || st.Tag != 7 || st.Count != len(msg) {
						t.Errorf("status = %+v", st)
					}
					if !bytes.Equal(buf[:st.Count], msg) {
						t.Errorf("data = %q", buf[:st.Count])
					}
				}
			})
		})
	}
}

func TestEagerRendezvousSizesIntegrity(t *testing.T) {
	sizes := []int{0, 1, 64, 4999, 5000, 5001, 10000, 100000, 300000}
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		for i, sz := range sizes {
			data := make([]byte, sz)
			for j := range data {
				data[j] = byte(i + j*31)
			}
			if r.Rank() == 0 {
				if err := c.Send(1, i, data); err != nil {
					t.Error(err)
					return
				}
			} else {
				buf := make([]byte, sz+8)
				st, err := c.Recv(buf, 0, i)
				if err != nil {
					t.Error(err)
					return
				}
				if st.Count != sz || !bytes.Equal(buf[:sz], data) {
					t.Errorf("size %d corrupted (count %d)", sz, st.Count)
					return
				}
			}
		}
	})
}

func TestNonOvertakingSameTag(t *testing.T) {
	const n = 40
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				req, err := c.Isend(1, 5, []byte{byte(i)})
				if err != nil {
					t.Error(err)
					return
				}
				_ = req
			}
			// Drain happens at finalize.
		} else {
			for i := 0; i < n; i++ {
				buf := make([]byte, 4)
				st, err := c.Recv(buf, 0, 5)
				if err != nil {
					t.Error(err)
					return
				}
				if st.Count != 1 || buf[0] != byte(i) {
					t.Errorf("message %d carried %d: overtaking", i, buf[0])
					return
				}
			}
		}
	})
}

func TestMixedEagerRendezvousOrderPreserved(t *testing.T) {
	// Alternate small (eager) and large (rendezvous) messages on one tag;
	// matching order must still be send order.
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		sizes := []int{10, 9000, 20, 8000, 30}
		if r.Rank() == 0 {
			for i, sz := range sizes {
				data := make([]byte, sz)
				data[0] = byte(i)
				if err := c.Send(1, 1, data); err != nil {
					t.Error(err)
					return
				}
			}
		} else {
			for i, sz := range sizes {
				buf := make([]byte, 10000)
				st, err := c.Recv(buf, 0, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if st.Count != sz || buf[0] != byte(i) {
					t.Errorf("msg %d: count=%d first=%d", i, st.Count, buf[0])
					return
				}
			}
		}
	})
}

func TestUnexpectedMessages(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(1, i, []byte{byte(10 + i)}); err != nil {
					t.Error(err)
					return
				}
			}
		} else {
			// Let them all arrive unexpected, then receive in reverse tag order.
			r.Proc().Sleep(simnet.D(5e6))
			for i := 4; i >= 0; i-- {
				buf := make([]byte, 4)
				st, err := c.Recv(buf, 0, i)
				if err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(10+i) || st.Tag != i {
					t.Errorf("tag %d got %d", i, buf[0])
				}
			}
		}
	})
}

func TestAnySourceAndAnyTag(t *testing.T) {
	const workers = 5
	w := runWorld(t, testCfg(workers+1), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < workers; i++ {
				buf := make([]byte, 8)
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					t.Error(err)
					return
				}
				if int(buf[0]) != st.Source || st.Tag != 100+st.Source {
					t.Errorf("mismatched status %+v buf %d", st, buf[0])
				}
				seen[st.Source] = true
			}
			if len(seen) != workers {
				t.Errorf("saw %d distinct sources, want %d", len(seen), workers)
			}
		} else {
			if err := c.Send(0, 100+r.Rank(), []byte{byte(r.Rank())}); err != nil {
				t.Error(err)
			}
		}
	})
	// The ANY_SOURCE rule: under on-demand, rank 0 must have connected to
	// every rank in the communicator (§3.5).
	if got := w.Ranks[0].VisCreated; got != workers {
		t.Errorf("rank 0 VIs = %d, want %d (ANY_SOURCE connects to all)", got, workers)
	}
}

func TestTruncationError(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 100)); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 10)
			if _, err := c.Recv(buf, 0, 0); err == nil {
				t.Error("expected truncation error")
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		out := []byte{byte(r.Rank() + 50)}
		in := make([]byte, 4)
		st, err := c.Sendrecv(other, 3, out, other, 3, in)
		if err != nil {
			t.Error(err)
			return
		}
		if st.Count != 1 || in[0] != byte(other+50) {
			t.Errorf("got %d from %d", in[0], st.Source)
		}
	})
}

func TestSsendWaitsForReceiver(t *testing.T) {
	const delay = 20 * simnet.Millisecond
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			start := r.Proc().Now()
			if err := c.Ssend(1, 0, []byte("sync")); err != nil {
				t.Error(err)
				return
			}
			if took := r.Proc().Now().Sub(start); took < delay {
				t.Errorf("Ssend completed in %v, before the receive was posted (%v)", took, delay)
			}
		} else {
			r.Proc().Sleep(delay)
			buf := make([]byte, 8)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestBsendCompletesLocally(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			buf := []byte("buffered!")
			if err := c.Bsend(1, 0, buf); err != nil {
				t.Error(err)
				return
			}
			copy(buf, "XXXXXXXXX") // library copied; receiver must see original
		} else {
			in := make([]byte, 16)
			st, err := c.Recv(in, 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if string(in[:st.Count]) != "buffered!" {
				t.Errorf("got %q", in[:st.Count])
			}
		}
	})
}

func TestFlowControlManySmallMessages(t *testing.T) {
	// Far more in-flight sends than credits; receiver sleeps first so the
	// unexpected queue and credit machinery both get exercised.
	const n = 300
	w := runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < n; i++ {
				req, err := c.Isend(1, 0, []byte{byte(i), byte(i >> 8)})
				if err != nil {
					t.Error(err)
					return
				}
				reqs = append(reqs, req)
			}
			if err := r.Waitall(reqs...); err != nil {
				t.Error(err)
			}
		} else {
			r.Proc().Sleep(simnet.D(3e6))
			for i := 0; i < n; i++ {
				buf := make([]byte, 4)
				if _, err := c.Recv(buf, 0, 0); err != nil {
					t.Error(err)
					return
				}
				if int(buf[0])|int(buf[1])<<8 != i {
					t.Errorf("message %d out of order", i)
					return
				}
			}
		}
	})
	if w.Net.DroppedNoDescriptor != 0 {
		t.Fatalf("flow control dropped %d", w.Net.DroppedNoDescriptor)
	}
}

// TestSymmetricSaturationNoDeadlock floods both directions far beyond the
// credit count before either side receives: the credit-return path must
// bypass the blocked flow queues (regression test for mutual starvation).
func TestSymmetricSaturationNoDeadlock(t *testing.T) {
	const n = 400
	cfg := testCfg(2)
	cfg.CreditCount = 8
	runWorld(t, cfg, func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		var reqs []*Request
		for i := 0; i < n; i++ {
			q, err := c.Isend(other, 0, []byte{byte(i)})
			if err != nil {
				t.Error(err)
				return
			}
			reqs = append(reqs, q)
		}
		buf := make([]byte, 4)
		for i := 0; i < n; i++ {
			if _, err := c.Recv(buf, other, 0); err != nil {
				t.Error(err)
				return
			}
			if buf[0] != byte(i) {
				t.Errorf("message %d out of order", i)
				return
			}
		}
		if err := r.Waitall(reqs...); err != nil {
			t.Error(err)
		}
	})
}

func TestSelfSendRecv(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		me := r.Rank()
		req, err := c.Isend(me, 9, []byte{0xAB})
		if err != nil {
			t.Error(err)
			return
		}
		if !req.Done() {
			t.Error("self send not locally complete")
		}
		buf := make([]byte, 4)
		st, err := c.Recv(buf, me, 9)
		if err != nil {
			t.Error(err)
			return
		}
		if buf[0] != 0xAB || st.Source != me {
			t.Errorf("self recv got %x from %d", buf[0], st.Source)
		}
	})
}

func TestProbeAndIprobe(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Proc().Sleep(simnet.D(1e6))
			if err := c.Send(1, 42, make([]byte, 123)); err != nil {
				t.Error(err)
			}
		} else {
			if _, ok := c.Iprobe(0, 42); ok {
				t.Error("Iprobe true before send")
			}
			st := c.Probe(0, 42)
			if st.Count != 123 || st.Tag != 42 {
				t.Errorf("probe status %+v", st)
			}
			// The message is still there.
			buf := make([]byte, 128)
			st2, err := c.Recv(buf, 0, 42)
			if err != nil || st2.Count != 123 {
				t.Errorf("recv after probe: %v %+v", err, st2)
			}
		}
	})
}

func TestTestAndWaitall(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			r.Proc().Sleep(simnet.D(2e6))
			if err := c.Send(1, 0, []byte("x")); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 4)
			req, err := c.Irecv(buf, 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if done, _ := r.Test(req); done {
				t.Error("Test true before message sent")
			}
			if err := r.Wait(req); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestIssendAndRsend(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			q, err := c.Issend(1, 0, []byte("sync-nb"))
			if err != nil {
				t.Error(err)
				return
			}
			if q.Done() {
				t.Error("Issend complete before matching receive")
			}
			if err := r.Wait(q); err != nil {
				t.Error(err)
			}
			if q.Err() != nil {
				t.Error(q.Err())
			}
			// Ready-mode send: receiver posted its Irecv already.
			if err := c.Rsend(1, 1, []byte("ready")); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 16)
			rq, err := c.Irecv(buf, 0, 1) // pre-post for the Rsend
			if err != nil {
				t.Error(err)
				return
			}
			buf2 := make([]byte, 16)
			st, err := c.Recv(buf2, 0, 0)
			if err != nil || string(buf2[:st.Count]) != "sync-nb" {
				t.Errorf("issend recv: %v %q", err, buf2[:st.Count])
			}
			if err := r.Wait(rq); err != nil {
				t.Error(err)
			}
			if rq.Status().Count != 5 {
				t.Errorf("rsend count = %d", rq.Status().Count)
			}
		}
	})
}

func TestAccessors(t *testing.T) {
	const n = 3
	w := runWorld(t, testCfg(n), func(r *Rank) {
		if r.Size() != n || r.World().Size() != n {
			t.Error("Size mismatch")
		}
		if r.World().WorldRank(1) != 1 {
			t.Error("WorldRank")
		}
		if r.Port() == nil || r.Manager() == nil || r.Proc() == nil {
			t.Error("nil accessors")
		}
		if r.Manager().Name() != "ondemand" {
			t.Errorf("manager name %q", r.Manager().Name())
		}
		if r.InitTime() <= 0 {
			t.Error("InitTime not recorded")
		}
	})
	if w.TotalPinnedPeak() != 0 {
		t.Errorf("pinned %d for a run with no traffic", w.TotalPinnedPeak())
	}
}

func TestAbort(t *testing.T) {
	cfg := testCfg(4)
	_, err := Run(cfg, func(r *Rank) {
		if r.Rank() == 2 {
			r.Proc().Sleep(simnet.D(1e6))
			r.Abort(77, "fatal input error")
		}
		// Everyone else blocks forever; Abort must still end the job.
		buf := make([]byte, 4)
		_, _ = r.World().Recv(buf, AnySource, AnyTag)
	})
	if err == nil {
		t.Fatal("Abort did not fail the run")
	}
	if !strings.Contains(err.Error(), "Abort(77)") || !strings.Contains(err.Error(), "fatal input") {
		t.Fatalf("abort error = %v", err)
	}
}

func TestWtimeAdvances(t *testing.T) {
	runWorld(t, testCfg(1), func(r *Rank) {
		t0 := r.Wtime()
		r.Compute(0.001)
		if r.Wtime()-t0 < 0.001 {
			t.Errorf("Wtime advanced %v, want >= 1ms", r.Wtime()-t0)
		}
	})
}

func TestRingStatsByPolicy(t *testing.T) {
	ring := func(r *Rank) {
		c := r.World()
		n, me := c.Size(), c.Rank()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			t.Error(err)
			return
		}
		if in[0] != byte((me+n-1)%n) {
			t.Errorf("rank %d got %d", me, in[0])
		}
	}
	const n = 8
	for _, pol := range []string{"static-p2p", "ondemand"} {
		cfg := testCfg(n)
		cfg.Policy = pol
		w := runWorld(t, cfg, ring)
		for _, rs := range w.Ranks {
			switch pol {
			case "ondemand":
				if rs.VisCreated != 2 || rs.VisUsed != 2 {
					t.Errorf("%s rank %d: created=%d used=%d, want 2/2", pol, rs.Rank, rs.VisCreated, rs.VisUsed)
				}
				if rs.Utilization != 1.0 {
					t.Errorf("%s rank %d: utilization %v", pol, rs.Rank, rs.Utilization)
				}
			case "static-p2p":
				if rs.VisCreated != n-1 {
					t.Errorf("%s rank %d: created=%d, want %d", pol, rs.Rank, rs.VisCreated, n-1)
				}
				if rs.VisUsed != 2 {
					t.Errorf("%s rank %d: used=%d, want 2", pol, rs.Rank, rs.VisUsed)
				}
			}
			if rs.DistinctDests != 1 {
				t.Errorf("%s rank %d: dests=%d, want 1", pol, rs.Rank, rs.DistinctDests)
			}
		}
		// Pinned memory scales with created VIs.
		perVI := int64(cfg.eagerBufSize()) // one buffer; pool is CreditCount of them
		_ = perVI
		if pol == "ondemand" && w.Ranks[0].PinnedPeak >= w.Ranks[0].PinnedPeak*int64(n-1)/2 && n > 3 {
			// sanity guard only; precise check below
			_ = pol
		}
	}
}

func TestPinnedMemoryScalesWithPolicy(t *testing.T) {
	const n = 8
	pinned := map[string]int64{}
	for _, pol := range []string{"static-p2p", "ondemand"} {
		cfg := testCfg(n)
		cfg.Policy = pol
		w := runWorld(t, cfg, func(r *Rank) {
			c := r.World()
			me := c.Rank()
			out := []byte{1}
			in := make([]byte, 4)
			if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
				t.Error(err)
			}
		})
		pinned[pol] = w.Ranks[0].PinnedPeak
	}
	// Static pins (n-1)/2 = 3.5x the on-demand pools.
	if pinned["static-p2p"] <= 3*pinned["ondemand"] {
		t.Errorf("static pinned %d not >> ondemand %d", pinned["static-p2p"], pinned["ondemand"])
	}
}

func TestInitTimeByPolicyShape(t *testing.T) {
	// Figure 8: on-demand < static-p2p < static-cs.
	const n = 12
	times := map[string]simnet.Duration{}
	for _, pol := range []string{"static-cs", "static-p2p", "ondemand"} {
		cfg := testCfg(n)
		cfg.Policy = pol
		w := runWorld(t, cfg, func(r *Rank) {})
		times[pol] = w.AvgInit()
	}
	if !(times["ondemand"] < times["static-p2p"] && times["static-p2p"] < times["static-cs"]) {
		t.Errorf("init times out of shape: %v", times)
	}
}

func TestDetachedBsendDrainedAtFinalize(t *testing.T) {
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Bsend(1, 0, []byte("late")); err != nil {
				t.Error(err)
			}
			// Exit immediately; finalize must push it out.
		} else {
			buf := make([]byte, 8)
			st, err := c.Recv(buf, 0, 0)
			if err != nil || string(buf[:st.Count]) != "late" {
				t.Errorf("bsend at exit: %v %q", err, buf[:st.Count])
			}
		}
	})
}

func TestManyRanksSmoke(t *testing.T) {
	const n = 32
	w := runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		me := c.Rank()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			t.Error(err)
		}
	})
	if len(w.Ranks) != n {
		t.Fatal("missing ranks")
	}
}

func TestWorldAggregates(t *testing.T) {
	const n = 4
	w := runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			if err := c.Send(1, 0, []byte("a")); err != nil {
				t.Error(err)
			}
		} else if r.Rank() == 1 {
			buf := make([]byte, 4)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
	if got := w.AvgVIs(); got != 0.5 { // two ranks with 1 VI, two with 0
		t.Errorf("AvgVIs = %v, want 0.5", got)
	}
	// Ranks 0 and 1 used their single VI (utilization 1.0); ranks 2 and 3
	// never created one and must report 0, not a fictitious perfect score.
	for _, rs := range w.Ranks {
		want := 1.0
		if rs.Rank >= 2 {
			want = 0
		}
		if rs.Utilization != want {
			t.Errorf("rank %d utilization = %v, want %v", rs.Rank, rs.Utilization, want)
		}
	}
	if w.AvgUtilization() != 0.5 {
		t.Errorf("AvgUtilization = %v, want 0.5 (idle ranks count as 0)", w.AvgUtilization())
	}
	if w.AvgInit() <= 0 || w.MaxAppTime() < 0 {
		t.Error("aggregate timings not populated")
	}
}

func TestRendezvousManyLarge(t *testing.T) {
	// Several interleaved rendezvous transfers in both directions.
	const n = 6
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		other := 1 - r.Rank()
		var reqs []*Request
		bufs := make([][]byte, n)
		for i := 0; i < n; i++ {
			out := make([]byte, 50000+i)
			for j := range out {
				out[j] = byte(j * (i + 1 + r.Rank()))
			}
			sq, err := c.Isend(other, i, out)
			if err != nil {
				t.Error(err)
				return
			}
			bufs[i] = make([]byte, 50010)
			rq, err := c.Irecv(bufs[i], other, i)
			if err != nil {
				t.Error(err)
				return
			}
			reqs = append(reqs, sq, rq)
		}
		if err := r.Waitall(reqs...); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			want := make([]byte, 50000+i)
			for j := range want {
				want[j] = byte(j * (i + 1 + other))
			}
			if !bytes.Equal(bufs[i][:len(want)], want) {
				t.Errorf("rendezvous %d corrupted", i)
				return
			}
		}
	})
}

func TestPolicyEquivalenceProperty(t *testing.T) {
	// The same program must compute identical results under every policy ×
	// device combination (connection management is invisible to semantics).
	results := map[string][]byte{}
	for _, dev := range []string{"clan", "bvia"} {
		for _, pol := range []string{"static-cs", "static-p2p", "ondemand"} {
			cfg := testCfg(6)
			cfg.Device = dev
			cfg.Policy = pol
			var final []byte
			runWorld(t, cfg, func(r *Rank) {
				c := r.World()
				me := c.Rank()
				n := c.Size()
				// Rotating exchange: accumulate a checksum of everything seen.
				sum := byte(me)
				for round := 0; round < 3; round++ {
					out := []byte{sum}
					in := make([]byte, 4)
					if _, err := c.Sendrecv((me+1+round)%n, round, out, (me+n-1-round+2*n)%n, round, in); err != nil {
						t.Error(err)
						return
					}
					sum = sum*31 + in[0]
				}
				all := make([]byte, n)
				if err := c.Allgather([]byte{sum}, all); err != nil {
					t.Error(err)
					return
				}
				if me == 0 {
					final = all
				}
			})
			key := dev + "/" + pol
			results[key] = final
		}
	}
	var ref []byte
	var refKey string
	for k, v := range results {
		if ref == nil {
			ref, refKey = v, k
			continue
		}
		if !bytes.Equal(ref, v) {
			t.Errorf("results differ: %s=%v vs %s=%v", refKey, ref, k, v)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	h := hdr{kind: pktCts, srcRank: 3, tag: -1, ctx: 7, size: 123456,
		credits: 9, sreq: 1 << 40, rreq: -5, rkey: 0xdeadbeef}
	payload := []byte("0123456789")
	b := encode(h, payload)
	h2, p2, err := decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h || !bytes.Equal(p2, payload) {
		t.Fatalf("round trip mismatch: %+v %q", h2, p2)
	}
	if _, _, err := decode(b[:10]); err == nil {
		t.Fatal("short packet not rejected")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []SendMode{ModeStandard, ModeSynchronous, ModeReady, ModeBuffered} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
	for _, k := range []byte{pktEager, pktRts, pktCts, pktFin, pktCredit, 99} {
		if pktKindString(k) == "" {
			t.Error("empty kind string")
		}
	}
}

func TestDistinctDestsCount(t *testing.T) {
	const n = 6
	w := runWorld(t, testCfg(n), func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			for d := 1; d <= 3; d++ {
				if err := c.Send(d, 0, []byte("x")); err != nil {
					t.Error(err)
				}
			}
		} else if r.Rank() <= 3 {
			buf := make([]byte, 4)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
	if w.Ranks[0].DistinctDests != 3 {
		t.Errorf("rank 0 dests = %d, want 3", w.Ranks[0].DistinctDests)
	}
	if w.Ranks[5].DistinctDests != 0 {
		t.Errorf("rank 5 dests = %d, want 0", w.Ranks[5].DistinctDests)
	}
}

func ExampleRun() {
	w, err := Run(Config{Procs: 2, Deadline: 10 * simnet.Second}, func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			_ = c.Send(1, 0, []byte("hello"))
		} else {
			buf := make([]byte, 8)
			st, _ := c.Recv(buf, 0, 0)
			fmt.Printf("rank 1 got %q from %d\n", buf[:st.Count], st.Source)
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ranks: %d\n", len(w.Ranks))
	// Output:
	// rank 1 got "hello" from 0
	// ranks: 2
}
