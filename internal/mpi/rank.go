package mpi

import (
	"fmt"
	"sort"

	"viampi/internal/core"
	"viampi/internal/obs"
	"viampi/internal/simnet"
	"viampi/internal/via"
)

// chanState is the MPI layer's per-peer state riding on a core.Channel:
// credit-based flow control and the queue of packets waiting for credits.
type chanState struct {
	peer      int // world rank of the peer
	ch        *core.Channel
	credits   int // send credits toward the peer
	freed     int // receive buffers freed since the last credit return
	posted    int // receive buffers in our local pool (grows when dynamic)
	flowQ     []*pkt
	userSends int64 // application messages addressed to this peer

	memHandles []via.MemHandle // eager-pool registrations, released at teardown

	// Graceful-teardown state (VI-cap eviction / remote disconnect).
	closing      bool   // BYE handshake in progress; new sends are held
	evict        bool   // we initiated the BYE (cap eviction)
	pendingClose []*pkt // packets held while closing, re-posted after
	pendingRdv   int    // rendezvous handshakes in flight on this channel
	umqRefs      int    // unexpected RTS entries still referencing this channel
}

// pkt is an outbound packet, possibly parked awaiting credits.
type pkt struct {
	hdr     hdr
	payload []byte
	onEmit  func() // runs when the packet is actually posted to the VI
}

// Rank is one MPI process: the user-facing handle passed to the program's
// main function and the home of the progress engine.
type Rank struct {
	proc *simnet.Proc
	port *via.Port
	cq   *via.CQ
	mgr  core.Manager
	cfg  *Config

	rank int // world rank
	size int

	world *Comm

	// Per-peer channel state is sparse: active holds the live channels
	// sorted by peer rank (the only representation — there is no dense
	// by-rank table), so a rank's footprint and its per-poll scan cost are
	// O(live connections), not O(world size). The sort order reproduces the
	// rank-ascending walk MVICH's device check does over its per-destination
	// table, so progress behaviour is independent of creation order.
	active   []*chanState // live channels sorted by peer rank
	peakLive int          // high-water mark of len(active) (RankStats.PeakChans)
	viToChan map[*via.VI]*chanState
	addrs    []via.Addr // shared bootstrap table (world rank -> VIA address)

	prq []*Request // posted receive queue, post order
	umq []*umsg    // unexpected message queue, arrival order

	nextReq  int64
	sendReqs map[int64]*Request // awaiting CTS
	recvReqs map[int64]*Request // awaiting FIN
	detached []*Request         // buffered-mode sends owned by the library

	ctxCounter int32

	initTime simnet.Duration
	appStart simnet.Time
	prof     *profiler

	// Observability (all nil/unused when the bus is off). The sequence
	// counters are sparse maps keyed by peer so tracing costs O(peers
	// talked to), not O(world size); map reads/writes on the hot send and
	// receive paths allocate nothing in steady state (hotalloc-pinned).
	bus     *obs.Bus
	phases  *obs.Phases
	sendSeq map[int]int64 // per-peer user-message sequence, send side
	recvSeq map[int]int64 // per-peer user-message sequence, receive side

	finalized bool
}

// umsg is an entry in the unexpected message queue.
type umsg struct {
	h       hdr
	payload []byte // eager only (copied out of the pool buffer)
	cs      *chanState
}

// Rank returns this process's rank in the world communicator.
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of processes.
func (r *Rank) Size() int { return r.size }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.world }

// Wtime returns elapsed virtual time in seconds (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.proc.Now().Seconds() }

// Compute charges d seconds of application computation to virtual time.
// NPB proxies use this to model their arithmetic phases.
func (r *Rank) Compute(seconds float64) {
	d := simnet.Duration(seconds * 1e9)
	r.proc.Compute(d)
	r.phases.Add(obs.PhaseCompute, int64(d))
}

// nowNs is the current virtual time as an event timestamp.
func (r *Rank) nowNs() int64 { return int64(r.proc.Now()) }

// obsSend stamps a user-level message send on the bus with its per-pair
// sequence number; the receive side assigns the same sequence on arrival, so
// the pair forms one flow in the trace.
func (r *Rank) obsSend(world, bytes, tag int) {
	if r.bus == nil {
		return
	}
	seq := r.sendSeq[world]
	r.sendSeq[world]++
	r.bus.Emit(obs.Event{T: r.nowNs(), Kind: obs.EvMsgSend,
		Rank: int32(r.rank), Peer: int32(world), A: int64(bytes), B: int64(tag), C: seq})
}

// obsRecv stamps the first wire appearance of a user message (its eager or
// RTS packet). VI delivery is FIFO per pair, so arrival order matches send
// order and the per-pair counters line up.
func (r *Rank) obsRecv(cs *chanState, h hdr) {
	if r.bus == nil {
		return
	}
	seq := r.recvSeq[cs.peer]
	r.recvSeq[cs.peer]++
	r.bus.Emit(obs.Event{T: r.nowNs(), Kind: obs.EvMsgRecv,
		Rank: int32(r.rank), Peer: int32(cs.peer), A: int64(h.size), B: int64(h.tag), C: seq})
}

// obsGauge reports an instantaneous per-rank quantity (e.g. pinned bytes).
func (r *Rank) obsGauge(name string, v int64) {
	if r.bus == nil {
		return
	}
	r.bus.Emit(obs.Event{T: r.nowNs(), Kind: obs.EvGauge,
		Rank: int32(r.rank), Peer: -1, Name: name, A: v})
}

// Proc exposes the underlying simulated process (for harness integration).
func (r *Rank) Proc() *simnet.Proc { return r.proc }

// Port exposes the underlying VIA port (for harness statistics).
func (r *Rank) Port() *via.Port { return r.port }

// Manager exposes the connection manager (for harness statistics).
func (r *Rank) Manager() core.Manager { return r.mgr }

// InitTime returns the virtual duration of this rank's MPI_Init (bootstrap
// plus eager connection setup), the quantity in Figure 8.
func (r *Rank) InitTime() simnet.Duration { return r.initTime }

// Abort terminates the whole job immediately (MPI_Abort): Run returns an
// error carrying the code and message, and no further communication
// happens.
func (r *Rank) Abort(code int, msg string) {
	r.proc.Sim().Failf("mpi: rank %d called Abort(%d): %s", r.rank, code, msg)
	// Stop executing user code in this rank; the simulator unwinds the
	// whole job via the recorded failure.
	panic(abortPanic{code})
}

// abortPanic marks an intentional job abort so Run's recovery (in simnet)
// reports the Failf message rather than a spurious process panic.
type abortPanic struct{ code int }

// ---------------------------------------------------------------------------
// Channel lifecycle (hooks given to the connection manager)

// prepareChannel pre-posts the eager receive pool on a fresh VI, before the
// connection can complete — so data can never arrive without a descriptor.
func (r *Rank) prepareChannel(ch *core.Channel) {
	peer := ch.Rank
	initial := r.cfg.CreditCount
	if r.cfg.DynamicCredits {
		initial = r.cfg.InitialCredits
	}
	cs := &chanState{peer: peer, ch: ch, credits: initial}
	ch.UserData = cs
	i := sort.Search(len(r.active), func(k int) bool { return r.active[k].peer >= peer })
	r.active = append(r.active, nil)
	copy(r.active[i+1:], r.active[i:])
	r.active[i] = cs
	if len(r.active) > r.peakLive {
		r.peakLive = len(r.active)
	}
	r.viToChan[ch.Vi] = cs
	r.growPool(cs, initial)
}

// growPool registers and pre-posts n more eager receive buffers on cs.
func (r *Rank) growPool(cs *chanState, n int) {
	bufSize := r.cfg.eagerBufSize()
	h, err := r.port.Memory().Register(int64(bufSize * n))
	if err != nil {
		r.proc.Sim().Failf("mpi: rank %d cannot pin eager pool for peer %d: %v", r.rank, cs.peer, err)
		return
	}
	cs.memHandles = append(cs.memHandles, h)
	for i := 0; i < n; i++ {
		d := &via.Descriptor{Buf: make([]byte, bufSize)}
		if err := cs.ch.Vi.PostRecv(d); err != nil {
			r.proc.Sim().Failf("mpi: rank %d prepost to peer %d: %v", r.rank, cs.peer, err)
			return
		}
	}
	cs.posted += n
	r.obsGauge("pinned_bytes", r.port.Memory().Pinned())
}

// onChannelUp drains the paper's pre-posted send FIFO in order (§3.4).
func (r *Rank) onChannelUp(ch *core.Channel) {
	cs := ch.UserData.(*chanState)
	for _, item := range ch.DrainParked() {
		r.post(cs, item.(*pkt))
	}
}

// channel returns the chanState for a world-rank peer, creating the
// connection on demand (policy permitting).
func (r *Rank) channel(peer int) (*chanState, error) {
	if peer == r.rank {
		return nil, fmt.Errorf("mpi: rank %d addressing itself over the network", r.rank)
	}
	ch, err := r.mgr.Channel(peer)
	if err != nil {
		return nil, err
	}
	ch.Touch(r.proc.Now())
	return ch.UserData.(*chanState), nil
}

// ---------------------------------------------------------------------------
// Graceful teardown (VI-cap eviction and remote disconnect)

// canEvict reports whether ch is quiescent enough to evict gracefully: no
// parked, queued or held traffic, no rendezvous mid-flight, no unexpected
// RTS still referencing the channel, an empty VIA send queue, and enough
// credits to send BYE while keeping the reserved credit.
func (r *Rank) canEvict(ch *core.Channel) bool {
	cs, _ := ch.UserData.(*chanState)
	return cs != nil && ch.Up && !cs.closing &&
		ch.Parked() == 0 && len(cs.flowQ) == 0 && len(cs.pendingClose) == 0 &&
		cs.pendingRdv == 0 && cs.umqRefs == 0 &&
		cs.credits >= 2 && ch.Vi.SendQueueLen() == 0
}

// startEvict opens the teardown handshake for a cap eviction.
func (r *Rank) startEvict(ch *core.Channel) {
	cs := ch.UserData.(*chanState)
	cs.closing, cs.evict = true, true
	r.emit(cs, &pkt{hdr: hdr{kind: pktBye, srcRank: int32(r.rank)}})
}

// quiescent is the responder-side check for accepting a peer's BYE: the
// same drain conditions, but only one credit is needed (for the ACK — this
// channel is about to die, so the reservation rule no longer applies).
func (r *Rank) quiescent(cs *chanState) bool {
	return cs.ch.Parked() == 0 && len(cs.flowQ) == 0 && len(cs.pendingClose) == 0 &&
		cs.pendingRdv == 0 && cs.umqRefs == 0 &&
		cs.credits >= 1 && cs.ch.Vi.SendQueueLen() == 0
}

// teardownChannel dismantles a drained channel: close the VI (sending DISC),
// release the eager pool's pinned memory, forget the channel in both the MPI
// tables and the connection manager, and re-post any sends that arrived
// during the handshake on a fresh connection.
func (r *Rank) teardownChannel(cs *chanState) {
	held := cs.pendingClose
	cs.pendingClose = nil
	cs.closing = false
	delete(r.viToChan, cs.ch.Vi)
	for i, c := range r.active {
		if c == cs {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	cs.ch.Vi.Close()
	for _, h := range cs.memHandles {
		if err := r.port.Memory().Deregister(h); err != nil {
			r.proc.Sim().Failf("mpi: rank %d release eager pool for %d: %v", r.rank, cs.peer, err)
		}
	}
	cs.memHandles = nil
	r.obsGauge("pinned_bytes", r.port.Memory().Pinned())
	r.mgr.ReleaseChannel(cs.peer)
	if len(held) > 0 {
		ncs, err := r.channel(cs.peer)
		if err != nil {
			r.proc.Sim().Failf("mpi: rank %d reconnect to %d: %v", r.rank, cs.peer, err)
			return
		}
		for _, p := range held {
			r.post(ncs, p)
		}
	}
}

// handleDisconnect adopts a VI the remote side closed. During a BYE
// handshake (either role) the DISC is the expected final step; outside one,
// a disconnect with traffic in flight is a protocol violation.
func (r *Rank) handleDisconnect(cs *chanState) {
	if !cs.closing && (cs.pendingRdv > 0 || len(cs.flowQ) > 0 || cs.ch.Parked() > 0) {
		r.proc.Sim().Failf("mpi: rank %d: peer %d disconnected with traffic in flight", r.rank, cs.peer)
		return
	}
	r.teardownChannel(cs)
}

// ---------------------------------------------------------------------------
// Outbound path

// post sends a packet on a channel, parking it in the FIFO if the connection
// is not up yet, or in the flow queue if credits are exhausted.
func (r *Rank) post(cs *chanState, p *pkt) {
	if cs.closing && p.hdr.kind < pktBye {
		// A BYE handshake is in flight: hold the packet and replay it on
		// the reconnected channel (or here, if the peer NACKs the BYE).
		cs.pendingClose = append(cs.pendingClose, p)
		return
	}
	if !cs.ch.Up {
		if r.cfg.UnsafeNoSendFifo {
			// Ablation path: post to the unconnected VI and let VIA discard
			// it — the bug class the FIFO exists to prevent.
			buf := encode(p.hdr, p.payload)
			d := &via.Descriptor{Buf: buf, Len: len(buf)}
			_ = cs.ch.Vi.PostSend(d)
			if p.onEmit != nil {
				p.onEmit()
			}
			return
		}
		cs.ch.Park(p)
		return
	}
	if len(cs.flowQ) > 0 || cs.credits < r.creditNeed(p) {
		cs.flowQ = append(cs.flowQ, p)
		if r.bus != nil {
			r.bus.Emit(obs.Event{T: r.nowNs(), Kind: obs.EvCreditStall,
				Rank: int32(r.rank), Peer: int32(cs.peer), A: int64(len(cs.flowQ))})
		}
		return
	}
	r.emit(cs, p)
}

// creditNeed returns how many credits must remain for this packet to go out.
// Data and control need 2 (the last credit is reserved so a credit-return
// can always be sent, making flow control deadlock-free); credit returns
// need only 1.
func (r *Rank) creditNeed(p *pkt) int {
	if p.hdr.kind == pktCredit {
		return 1
	}
	return 2
}

// emit actually posts the packet to the VI.
func (r *Rank) emit(cs *chanState, p *pkt) {
	p.hdr.credits = int32(cs.freed)
	cs.freed = 0
	buf := encode(p.hdr, p.payload)
	r.port.ChargeHost(simnet.Duration(len(p.payload)) * r.cfg.cost.HostCopyPerByte)
	d := &via.Descriptor{Buf: buf, Len: len(buf)}
	if err := cs.ch.Vi.PostSend(d); err != nil {
		r.proc.Sim().Failf("mpi: rank %d post to %d: %v", r.rank, cs.peer, err)
		return
	}
	if d.Status == via.StatusNotConnected {
		// Should be impossible: we only emit on Up channels. Seeing it means
		// the pre-posted send FIFO was bypassed — the exact bug the paper's
		// design rules out.
		r.proc.Sim().Failf("mpi: rank %d emitted on unconnected VI to %d (FIFO bypass)", r.rank, cs.peer)
		return
	}
	cs.credits--
	if r.bus != nil {
		var k obs.Kind
		switch p.hdr.kind {
		case pktEager:
			k = obs.EvEagerSend
		case pktRts:
			k = obs.EvRts
		case pktCts:
			k = obs.EvCts
		case pktFin:
			k = obs.EvFin
		default:
			k = obs.EvCreditGrant
		}
		if k == obs.EvCreditGrant {
			r.bus.Emit(obs.Event{T: r.nowNs(), Kind: k,
				Rank: int32(r.rank), Peer: int32(cs.peer), A: int64(p.hdr.credits)})
		} else {
			r.bus.Emit(obs.Event{T: r.nowNs(), Kind: k,
				Rank: int32(r.rank), Peer: int32(cs.peer), A: int64(p.hdr.size), B: int64(p.hdr.credits)})
		}
	}
	if p.onEmit != nil {
		p.onEmit()
	}
}

// ---------------------------------------------------------------------------
// Progress engine (MPID_DeviceCheck)

// progress makes one non-blocking pass over all communication state: it is
// MVICH's MPID_DeviceCheck. Connection requests are progressed here too —
// the paper's "a peer-to-peer connection request can be considered as
// another type of nonblocking communication request" (§3.3). The wrapper
// only charges the pass to the progress phase; the pass itself lives in
// progressStep so the per-poll work stays closure-free (both functions are
// zero-allocation hot paths, policy.HotPaths).
func (r *Rank) progress() {
	if r.phases == nil {
		r.progressStep()
		return
	}
	start := r.proc.Now()
	r.progressStep()
	r.phases.Add(obs.PhaseProgress, int64(r.proc.Now().Sub(start)))
}

// progressStep is the single device-check pass.
func (r *Rank) progressStep() {
	// Adopt remote teardowns before connection progress: a peer's DISC must
	// release the channel here before its reconnect request (which the
	// per-pair FIFO guarantees arrives after the DISC) can be accepted.
	// Collect first — teardownChannel splices r.active.
	var down []*chanState
	for _, cs := range r.active {
		if cs.ch.Vi.State() == via.ViDisconnected {
			down = append(down, cs)
		}
	}
	for _, cs := range down {
		r.handleDisconnect(cs)
	}

	r.mgr.Poll()

	// Reap send completions so VIA queues don't grow without bound. All
	// channel scans run in peer-rank order (active is kept sorted — MVICH's
	// device check walks its per-destination table by rank), so progress
	// behaviour is identical whether channels were created eagerly or on
	// demand, and each poll costs O(live channels), not O(world size).
	for _, cs := range r.active {
		for cs.ch.Vi.SendDone() != nil {
		}
	}

	// Drain arrivals.
	for {
		vi, d := r.cq.Done()
		if d == nil {
			break
		}
		cs, ok := r.viToChan[vi]
		if !ok {
			// A torn-down channel can leave teardown control frames in the
			// CQ: with crossing BYEs the peer's BYE and DISC are both
			// delivered before this drain runs, and the DISC scan removes
			// the channel first. Quiescence guarantees nothing else can be
			// in flight — anything but a BYE-family frame here is a bug.
			if h, _, err := decode(d.Buf[:d.XferLen]); err != nil || h.kind < pktBye {
				r.proc.Sim().Failf("mpi: rank %d arrival on unknown VI", r.rank)
				return
			}
			continue
		}
		if d.Status != via.StatusSuccess {
			continue // descriptor failed with the connection; ignore
		}
		r.handlePacket(cs, d.Buf[:d.XferLen])
		// Recycle the pool buffer immediately.
		if err := vi.PostRecv(d); err == nil {
			cs.freed++
		}
	}

	// Flow-queue drain and credit returns. Closing channels are skipped:
	// their flow queue is empty by the quiescence checks, and granting
	// credits on a dying channel would only race its teardown.
	for _, cs := range r.active {
		if !cs.ch.Up || cs.closing {
			continue
		}
		for len(cs.flowQ) > 0 && cs.credits >= r.creditNeed(cs.flowQ[0]) {
			p := cs.flowQ[0]
			cs.flowQ = cs.flowQ[1:]
			r.emit(cs, p)
		}
		if cs.freed >= cs.posted/2 && cs.credits >= 1 {
			// Dynamic flow control (paper §6 future work): traffic on this
			// channel keeps consuming the pool — double it, granting the
			// new buffers to the sender with this credit return.
			if r.cfg.DynamicCredits && cs.posted < r.cfg.CreditCount {
				grow := cs.posted
				if cs.posted+grow > r.cfg.CreditCount {
					grow = r.cfg.CreditCount - cs.posted
				}
				r.growPool(cs, grow)
				cs.freed += grow
			}
			// Emit directly, bypassing the flow queue: when our own data is
			// blocked waiting for the peer's credits, the explicit return
			// must still go out or both sides starve (the last credit is
			// reserved for exactly this packet).
			r.sendCreditReturn(cs)
		}
	}
}

// sendCreditReturn emits an explicit credit-return packet. Kept out of
// progressStep: it fires at most once per pool half-drain, and the packet
// construction would otherwise be the only allocation on the per-poll path.
func (r *Rank) sendCreditReturn(cs *chanState) {
	r.emit(cs, &pkt{hdr: hdr{kind: pktCredit, srcRank: int32(r.rank)}})
}

// waitProgress blocks until cond holds, interleaving progress with the
// configured completion wait mode (polling vs. spinwait).
func (r *Rank) waitProgress(cond func() bool) {
	for {
		r.progress()
		if cond() {
			return
		}
		if r.phases == nil {
			r.port.WaitActivity(r.cfg.WaitMode)
			continue
		}
		// Charge the blocked interval to the phase explaining why we block.
		ph := r.blockedPhase()
		start := r.proc.Now()
		r.port.WaitActivity(r.cfg.WaitMode)
		r.phases.Add(ph, int64(r.proc.Now().Sub(start)))
	}
}

// blockedPhase classifies why this rank is about to block: a pending
// handshake, exhausted credits, an in-flight rendezvous, or plain eager
// completion waiting (checked in that order of specificity).
func (r *Rank) blockedPhase() obs.Phase {
	if r.mgr.PendingConnections() > 0 {
		return obs.PhaseConnect
	}
	for _, cs := range r.active {
		if len(cs.flowQ) > 0 {
			return obs.PhaseCreditStall
		}
	}
	if len(r.sendReqs) > 0 || len(r.recvReqs) > 0 {
		return obs.PhaseRendezvous
	}
	return obs.PhaseEager
}

// ---------------------------------------------------------------------------
// Inbound path

func (r *Rank) handlePacket(cs *chanState, wire []byte) {
	h, payload, err := decode(wire)
	if err != nil {
		r.proc.Sim().Failf("mpi: rank %d: %v", r.rank, err)
		return
	}
	cs.credits += int(h.credits)
	cs.ch.Touch(r.proc.Now())
	switch h.kind {
	case pktEager:
		r.obsRecv(cs, h)
		if req := r.matchPRQ(h); req != nil {
			r.deliverEager(req, h, payload)
		} else {
			cp := append([]byte(nil), payload...)
			r.umq = append(r.umq, &umsg{h: h, payload: cp, cs: cs})
			r.obsUnexpected()
		}
	case pktRts:
		r.obsRecv(cs, h)
		if req := r.matchPRQ(h); req != nil {
			r.acceptRendezvous(req, h, cs)
		} else {
			r.umq = append(r.umq, &umsg{h: h, cs: cs})
			cs.umqRefs++
			r.obsUnexpected()
		}
	case pktCts:
		req, ok := r.sendReqs[h.sreq]
		if !ok {
			r.proc.Sim().Failf("mpi: rank %d CTS for unknown sreq %d", r.rank, h.sreq)
			return
		}
		delete(r.sendReqs, h.sreq)
		r.rendezvousData(cs, req, h)
	case pktFin:
		req, ok := r.recvReqs[h.rreq]
		if !ok {
			r.proc.Sim().Failf("mpi: rank %d FIN for unknown rreq %d", r.rank, h.rreq)
			return
		}
		delete(r.recvReqs, h.rreq)
		cs.pendingRdv--
		if err := r.port.ReleaseRdmaTarget(req.rkey, via.MemHandle(req.rmem)); err != nil {
			r.proc.Sim().Failf("mpi: rank %d release rdma: %v", r.rank, err)
		}
		r.obsGauge("pinned_bytes", r.port.Memory().Pinned())
		r.port.ChargeHost(simnet.Duration(req.rdvSize) * r.cfg.cost.HostCopyPerByte / 8)
		req.status.Count = req.rdvSize
		req.complete()
	case pktCredit:
		// Credits were already added above; nothing else to do.
	case pktBye:
		if cs.closing {
			// Crossing BYEs: both sides chose each other as victim; each
			// treats the peer's BYE as the acknowledgement.
			r.teardownChannel(cs)
			return
		}
		if r.quiescent(cs) {
			cs.closing = true
			r.emit(cs, &pkt{hdr: hdr{kind: pktByeAck, srcRank: int32(r.rank)}})
		} else {
			r.post(cs, &pkt{hdr: hdr{kind: pktByeNack, srcRank: int32(r.rank)}})
		}
	case pktByeAck:
		// The peer is drained; closing the VI sends the DISC that drives
		// its own teardown.
		r.teardownChannel(cs)
	case pktByeNack:
		// The peer had traffic in flight: abandon the eviction and release
		// the sends held during the handshake.
		cs.closing, cs.evict = false, false
		cs.ch.Evicting = false
		held := cs.pendingClose
		cs.pendingClose = nil
		for _, p := range held {
			r.post(cs, p)
		}
	default:
		r.proc.Sim().Failf("mpi: rank %d unknown packet kind %s", r.rank, pktKindString(h.kind))
	}
}

// obsUnexpected reports the unexpected-queue depth after an append.
func (r *Rank) obsUnexpected() {
	if r.bus == nil {
		return
	}
	r.bus.Emit(obs.Event{T: r.nowNs(), Kind: obs.EvUnexpected,
		Rank: int32(r.rank), Peer: -1, A: int64(len(r.umq))})
}

// matchPRQ finds and removes the first posted receive matching the header.
func (r *Rank) matchPRQ(h hdr) *Request {
	for i, req := range r.prq {
		if matches(req, h) {
			r.prq = append(r.prq[:i], r.prq[i+1:]...)
			return req
		}
	}
	return nil
}

// matches implements MPICH (context, source, tag) matching.
func matches(req *Request, h hdr) bool {
	if req.ctx != h.ctx {
		return false
	}
	if req.src != AnySource && int32(req.src) != h.srcRank {
		return false
	}
	if req.tag != AnyTag && int32(req.tag) != h.tag {
		return false
	}
	return true
}

// deliverEager copies an eager payload into the matched receive.
func (r *Rank) deliverEager(req *Request, h hdr, payload []byte) {
	n := int(h.size)
	if n > len(req.buf) {
		req.failf("mpi: truncation: %d-byte message into %d-byte buffer (src %d tag %d)",
			n, len(req.buf), h.srcRank, h.tag)
		return
	}
	copy(req.buf, payload[:n])
	r.port.ChargeHost(simnet.Duration(n) * r.cfg.cost.HostCopyPerByte)
	req.status = Status{Source: int(h.srcRank), Tag: int(h.tag), Count: n}
	req.complete()
}

// acceptRendezvous registers the receive buffer for RDMA and sends CTS.
func (r *Rank) acceptRendezvous(req *Request, h hdr, cs *chanState) {
	n := int(h.size)
	if n > len(req.buf) {
		req.failf("mpi: truncation: %d-byte rendezvous into %d-byte buffer", n, len(req.buf))
		return
	}
	key, mem, err := r.port.RegisterRdmaTarget(req.buf[:n])
	if err != nil {
		req.failf("mpi: cannot register rendezvous buffer: %v", err)
		return
	}
	req.rkey, req.rmem, req.rdvSize = key, int64(mem), n
	r.obsGauge("pinned_bytes", r.port.Memory().Pinned())
	req.status = Status{Source: int(h.srcRank), Tag: int(h.tag), Count: n}
	r.nextReq++
	id := r.nextReq
	r.recvReqs[id] = req
	cs.pendingRdv++
	r.post(cs, &pkt{hdr: hdr{
		kind: pktCts, srcRank: int32(r.rank), ctx: h.ctx,
		sreq: h.sreq, rreq: id, rkey: key, size: h.size,
	}})
}

// rendezvousData RDMA-writes the payload and sends FIN; the send request
// completes when FIN is posted.
func (r *Rank) rendezvousData(cs *chanState, req *Request, h hdr) {
	d := &via.Descriptor{Buf: req.data, Len: len(req.data), RdmaKey: h.rkey}
	if err := cs.ch.Vi.PostRdmaWrite(d); err != nil {
		req.failf("mpi: rdma write: %v", err)
		return
	}
	if r.bus != nil {
		r.bus.Emit(obs.Event{T: r.nowNs(), Kind: obs.EvRdma,
			Rank: int32(r.rank), Peer: int32(cs.peer), A: int64(len(req.data))})
	}
	r.post(cs, &pkt{
		hdr: hdr{kind: pktFin, srcRank: int32(r.rank), ctx: h.ctx, rreq: h.rreq},
		onEmit: func() {
			cs.pendingRdv--
			req.complete()
		},
	})
}
