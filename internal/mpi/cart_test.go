package mpi

import (
	"testing"
	"testing/quick"
)

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n, d int
		want []int
	}{
		{16, 2, []int{4, 4}},
		{12, 2, []int{4, 3}},
		{64, 3, []int{4, 4, 4}},
		{24, 3, []int{4, 3, 2}},
		{7, 2, []int{7, 1}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.n, c.d)
		if err != nil {
			t.Fatal(err)
		}
		p := 1
		for _, v := range got {
			p *= v
		}
		if p != c.n {
			t.Errorf("DimsCreate(%d,%d) = %v: product %d", c.n, c.d, got, p)
		}
		for i, v := range got {
			if v != c.want[i] {
				t.Errorf("DimsCreate(%d,%d) = %v, want %v", c.n, c.d, got, c.want)
				break
			}
		}
	}
	if _, err := DimsCreate(0, 2); err == nil {
		t.Error("DimsCreate(0,2) accepted")
	}
}

func TestCartCoordsRankRoundTrip(t *testing.T) {
	runWorld(t, testCfg(12), func(r *Rank) {
		c := r.World()
		cart, err := c.CartCreate([]int{3, 4}, []bool{true, false})
		if err != nil {
			t.Error(err)
			return
		}
		for rank := 0; rank < 12; rank++ {
			co, err := cart.Coords(rank)
			if err != nil {
				t.Error(err)
				return
			}
			back, err := cart.Rank(co)
			if err != nil || back != rank {
				t.Errorf("round trip %d -> %v -> %d", rank, co, back)
				return
			}
		}
		// Periodic dim 0 wraps; non-periodic dim 1 nulls.
		if rk, _ := cart.Rank([]int{-1, 0}); rk != 8 {
			t.Errorf("periodic wrap = %d, want 8", rk)
		}
		if rk, _ := cart.Rank([]int{0, -1}); rk != -1 {
			t.Errorf("non-periodic edge = %d, want -1", rk)
		}
	})
}

func TestCartValidation(t *testing.T) {
	runWorld(t, testCfg(6), func(r *Rank) {
		c := r.World()
		if _, err := c.CartCreate([]int{4, 2}, nil); err == nil {
			t.Error("wrong product accepted")
		}
		if _, err := c.CartCreate(nil, nil); err == nil {
			t.Error("empty dims accepted")
		}
		if _, err := c.CartCreate([]int{6}, []bool{true, false}); err == nil {
			t.Error("periodic length mismatch accepted")
		}
		cart, err := c.CartCreate([]int{2, 3}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, err := cart.Shift(5, 1); err == nil {
			t.Error("bad shift dim accepted")
		}
	})
}

// TestCartShiftExchange does a full halo shift along both dimensions of a
// periodic grid and checks the data lands where the topology says.
func TestCartShiftExchange(t *testing.T) {
	const px, py = 3, 2
	runWorld(t, testCfg(px*py), func(r *Rank) {
		c := r.World()
		cart, err := c.CartCreate([]int{px, py}, []bool{true, true})
		if err != nil {
			t.Error(err)
			return
		}
		for dim := 0; dim < 2; dim++ {
			src, dst, err := cart.Shift(dim, 1)
			if err != nil {
				t.Error(err)
				return
			}
			out := []byte{byte(c.Rank())}
			in := make([]byte, 4)
			st, err := c.Sendrecv(dst, dim, out, src, dim, in)
			if err != nil {
				t.Error(err)
				return
			}
			if int(in[0]) != src || st.Source != src {
				t.Errorf("dim %d: got %d from %d, want %d", dim, in[0], st.Source, src)
				return
			}
		}
	})
}

// Property: Shift's src and dst are inverses — my dst's src along the same
// dimension is me (on a fully periodic grid).
func TestPropertyCartShiftInverse(t *testing.T) {
	f := func(dimsRaw [2]uint8, disp int8) bool {
		px := int(dimsRaw[0])%4 + 1
		py := int(dimsRaw[1])%4 + 1
		ok := true
		cfg := testCfg(px * py)
		_, err := Run(cfg, func(r *Rank) {
			c := r.World()
			cart, err := c.CartCreate([]int{px, py}, []bool{true, true})
			if err != nil {
				ok = false
				return
			}
			for dim := 0; dim < 2; dim++ {
				src, dst, err := cart.Shift(dim, int(disp))
				if err != nil {
					ok = false
					return
				}
				// Compute dst's shift from dst's coordinates directly.
				co, _ := cart.Coords(dst)
				co[dim] -= int(disp)
				back, _ := cart.Rank(co)
				if back != c.Rank() {
					ok = false
				}
				_ = src
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
