package mpi

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestContiguous(t *testing.T) {
	d := Contiguous(4)
	if d.Size() != 4 || d.Span() != 4 {
		t.Fatalf("size/span = %d/%d", d.Size(), d.Span())
	}
	p, err := d.Pack([]byte{1, 2, 3, 4, 5})
	if err != nil || !bytes.Equal(p, []byte{1, 2, 3, 4}) {
		t.Fatalf("pack: %v %v", p, err)
	}
	if z := Contiguous(0); z.Size() != 0 {
		t.Fatal("zero contiguous")
	}
}

func TestVectorPackUnpack(t *testing.T) {
	// A 4x4 byte matrix's second column: count=4, blocklen=1, stride=4.
	d, err := Vector(4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := []byte{
		0, 10, 0, 0,
		0, 11, 0, 0,
		0, 12, 0, 0,
		0, 13, 0, 0,
	}
	col, err := d.Pack(m[1:]) // base at the column head
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(col, []byte{10, 11, 12, 13}) {
		t.Fatalf("col = %v", col)
	}
	dst := make([]byte, 16)
	if err := d.Unpack(dst[1:], col); err != nil {
		t.Fatal(err)
	}
	if dst[1] != 10 || dst[5] != 11 || dst[9] != 12 || dst[13] != 13 {
		t.Fatalf("unpacked matrix wrong: %v", dst)
	}
	if dst[0] != 0 || dst[2] != 0 {
		t.Fatal("unpack disturbed gaps")
	}
}

func TestVectorValidation(t *testing.T) {
	if _, err := Vector(2, 4, 3); err == nil {
		t.Error("overlapping stride accepted")
	}
	if _, err := Vector(-1, 1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if d, err := Vector(3, 0, 8); err != nil || d.Size() != 0 {
		t.Error("zero blocklen should be an empty layout")
	}
}

func TestIndexed(t *testing.T) {
	d, err := Indexed([]int{2, 3}, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 5 || d.Span() != 8 {
		t.Fatalf("size/span = %d/%d", d.Size(), d.Span())
	}
	src := []byte{1, 2, 9, 9, 9, 3, 4, 5}
	p, err := d.Pack(src)
	if err != nil || !bytes.Equal(p, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("pack: %v %v", p, err)
	}
	if _, err := Indexed([]int{2, 2}, []int{0, 1}); err == nil {
		t.Error("overlap accepted")
	}
	if _, err := Indexed([]int{1}, []int{0, 1}); err == nil {
		t.Error("mismatched slices accepted")
	}
}

func TestPackBufferTooSmall(t *testing.T) {
	d, err := Vector(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Pack(make([]byte, 3)); err == nil {
		t.Error("short pack accepted")
	}
	if err := d.Unpack(make([]byte, 3), make([]byte, 4)); err == nil {
		t.Error("short unpack accepted")
	}
	if err := d.Unpack(make([]byte, 8), make([]byte, 1)); err == nil {
		t.Error("short packed accepted")
	}
}

// Property: Unpack(Pack(x)) restores exactly the layout's bytes and leaves
// gap bytes untouched, for random vector shapes.
func TestPropertyPackUnpackRoundTrip(t *testing.T) {
	f := func(countRaw, blockRaw, padRaw uint8, data []byte) bool {
		count := int(countRaw)%8 + 1
		block := int(blockRaw)%8 + 1
		stride := block + int(padRaw)%8
		d, err := Vector(count, block, stride)
		if err != nil {
			return false
		}
		src := make([]byte, d.Span()+4)
		for i := range src {
			if i < len(data) {
				src[i] = data[i]
			} else {
				src[i] = byte(i * 37)
			}
		}
		packed, err := d.Pack(src)
		if err != nil || len(packed) != d.Size() {
			return false
		}
		dst := bytes.Repeat([]byte{0xEE}, len(src))
		if err := d.Unpack(dst, packed); err != nil {
			return false
		}
		// Blocks restored, gaps untouched.
		for i := 0; i < count; i++ {
			for j := 0; j < block; j++ {
				if dst[i*stride+j] != src[i*stride+j] {
					return false
				}
			}
			for j := block; j < stride && i*stride+j < d.Span(); j++ {
				if dst[i*stride+j] != 0xEE {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTypedSendRecvColumnExchange moves a matrix column between ranks — the
// halo-exchange use case derived datatypes exist for.
func TestTypedSendRecvColumnExchange(t *testing.T) {
	const n = 8 // 8x8 matrix
	col, err := Vector(n, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	runWorld(t, testCfg(2), func(r *Rank) {
		c := r.World()
		m := make([]byte, n*n)
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				m[i*n+3] = byte(40 + i) // column 3
			}
			if err := c.SendTyped(1, 0, m[3:], col); err != nil {
				t.Error(err)
			}
		} else {
			if _, err := c.RecvTyped(m[5:], 0, 0, col); err != nil { // into column 5
				t.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if m[i*n+5] != byte(40+i) {
					t.Errorf("row %d: got %d", i, m[i*n+5])
					return
				}
			}
		}
	})
}
