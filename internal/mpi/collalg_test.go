package mpi

import (
	"testing"

	"viampi/internal/simnet"
)

// TestBarrierAlgorithmsSynchronize verifies the synchronization property for
// every barrier algorithm at power-of-2 and odd sizes.
func TestBarrierAlgorithmsSynchronize(t *testing.T) {
	for _, alg := range []string{"rd", "dissemination", "tree"} {
		for _, n := range []int{2, 5, 8, 9} {
			alg, n := alg, n
			t.Run(alg, func(t *testing.T) {
				entered := make([]simnet.Time, n)
				exited := make([]simnet.Time, n)
				cfg := testCfg(n)
				cfg.BarrierAlg = alg
				runWorld(t, cfg, func(r *Rank) {
					me := r.Rank()
					r.Proc().Sleep(simnet.Duration(me*137) * simnet.Microsecond)
					entered[me] = r.Proc().Now()
					if err := r.World().Barrier(); err != nil {
						t.Error(err)
						return
					}
					exited[me] = r.Proc().Now()
				})
				var last simnet.Time
				for _, e := range entered {
					if e > last {
						last = e
					}
				}
				for i, x := range exited {
					if x < last {
						t.Errorf("%s n=%d: rank %d left at %v before last entry %v", alg, n, i, x, last)
					}
				}
			})
		}
	}
	// Unknown algorithm errors out.
	cfg := testCfg(2)
	cfg.BarrierAlg = "voodoo"
	if _, err := Run(cfg, func(r *Rank) {
		if err := r.World().Barrier(); err == nil {
			t.Error("unknown barrier alg accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceAlgorithmsAgree(t *testing.T) {
	for _, alg := range []string{"rd", "reduce-bcast"} {
		for _, n := range []int{3, 8} {
			cfg := testCfg(n)
			cfg.AllreduceAlg = alg
			runWorld(t, cfg, func(r *Rank) {
				c := r.World()
				me := float64(c.Rank())
				got, err := c.AllreduceF64([]float64{me, me * 2}, SumF64)
				if err != nil {
					t.Errorf("%s: %v", alg, err)
					return
				}
				want := float64(n*(n-1)) / 2
				if got[0] != want || got[1] != 2*want {
					t.Errorf("%s n=%d: got %v, want %v", alg, n, got, want)
				}
			})
		}
	}
}

// TestBarrierAlgConnectionFootprint: under on-demand, the tree barrier
// creates fewer VIs than recursive doubling, which creates fewer than
// dissemination — the connection/latency trade-off the variants exist for.
func TestBarrierAlgConnectionFootprint(t *testing.T) {
	const n = 16
	vis := map[string]float64{}
	for _, alg := range []string{"tree", "rd", "dissemination"} {
		cfg := testCfg(n)
		cfg.BarrierAlg = alg
		w := runWorld(t, cfg, func(r *Rank) {
			for i := 0; i < 5; i++ {
				if err := r.World().Barrier(); err != nil {
					t.Error(err)
					return
				}
			}
		})
		vis[alg] = w.AvgVIs()
	}
	if !(vis["tree"] < vis["rd"] && vis["rd"] < vis["dissemination"]) {
		t.Errorf("footprint ordering broken: %v", vis)
	}
	if vis["rd"] != 4 {
		t.Errorf("rd barrier VIs = %v, want 4 (Table 2)", vis["rd"])
	}
}
