package mpi

import (
	"strings"
	"testing"

	"viampi/internal/simnet"
	"viampi/internal/via"
)

// TestViHardLimitStaticFailsOnDemandRuns reproduces the paper's scalability
// point 2: "the number of connections supported in a specific VIA system
// serves as a hard limit to scaling". With a NIC that supports fewer VIs
// than N-1, the static mechanism cannot even initialize, while on-demand
// runs any application whose real partner set fits.
func TestViHardLimitStaticFailsOnDemandRuns(t *testing.T) {
	const n = 12
	limit := func(c *via.CostModel) { c.MaxVIsPerPort = 6 } // < N-1 = 11

	ring := func(r *Rank) {
		c := r.World()
		me := c.Rank()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			t.Error(err)
		}
	}

	static := Config{Procs: n, Policy: "static-p2p", TuneCost: limit,
		Deadline: 30 * simnet.Second}
	if _, err := Run(static, ring); err == nil {
		t.Fatal("static init must fail when MaxVIs < N-1")
	} else if !strings.Contains(err.Error(), "VI limit") {
		t.Fatalf("unexpected error: %v", err)
	}

	ondemand := Config{Procs: n, Policy: "ondemand", TuneCost: limit,
		Deadline: 30 * simnet.Second}
	w, err := Run(ondemand, ring)
	if err != nil {
		t.Fatalf("on-demand must run a 2-neighbour app under the VI limit: %v", err)
	}
	for _, rs := range w.Ranks {
		if rs.VisCreated > 6 {
			t.Fatalf("rank %d created %d VIs, above the NIC limit", rs.Rank, rs.VisCreated)
		}
	}
}

// TestViHardLimit64Ranks extends the sweep to 64 ranks — the largest
// cluster size in the paper's scaling discussion. The static mesh would
// need 63 VIs per port; a 16-VI NIC supports an on-demand ring (2
// neighbours) and an on-demand 8-ary hypercube-style exchange (6 partners)
// at n=64 without ever crossing the limit. The zero-allocation scheduler
// rewrite makes this size cheap enough for the tier-1 suite (64 ranks ≈
// 130k events in well under a second of wall time; see EXPERIMENTS.md).
func TestViHardLimit64Ranks(t *testing.T) {
	const n = 64
	limit := func(c *via.CostModel) { c.MaxVIsPerPort = 16 } // ≪ N-1 = 63

	ring := func(r *Rank) {
		c := r.World()
		me := c.Rank()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			t.Error(err)
		}
	}

	static := Config{Procs: n, Policy: "static-p2p", TuneCost: limit,
		Deadline: 120 * simnet.Second}
	if _, err := Run(static, ring); err == nil {
		t.Fatal("static init must fail at 64 ranks on a 16-VI NIC")
	} else if !strings.Contains(err.Error(), "VI limit") {
		t.Fatalf("unexpected error: %v", err)
	}

	ondemand := Config{Procs: n, Policy: "ondemand", TuneCost: limit,
		Deadline: 120 * simnet.Second}
	w, err := Run(ondemand, ring)
	if err != nil {
		t.Fatalf("on-demand 64-rank ring must run under a 16-VI limit: %v", err)
	}
	for _, rs := range w.Ranks {
		if rs.VisCreated > 2 {
			t.Fatalf("rank %d created %d VIs for a 2-neighbour ring", rs.Rank, rs.VisCreated)
		}
	}

	// Six-partner exchange (the hypercube dimension count at n=64): still
	// well under the 16-VI NIC limit with on-demand, per-rank footprint
	// tracks the real partner set, not N-1.
	cube := Config{Procs: n, Policy: "ondemand", TuneCost: limit,
		Deadline: 120 * simnet.Second}
	w, err = Run(cube, func(r *Rank) {
		c := r.World()
		me := c.Rank()
		in := make([]byte, 4)
		for d := 0; d < 6; d++ {
			peer := me ^ (1 << d)
			if _, err := c.Sendrecv(peer, d, []byte{byte(me)}, peer, d, in); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("on-demand 64-rank hypercube exchange: %v", err)
	}
	for _, rs := range w.Ranks {
		if rs.VisCreated > 6 {
			t.Fatalf("rank %d created %d VIs for a 6-partner exchange", rs.Rank, rs.VisCreated)
		}
	}
}

// TestOnDemandExceedingLimitStillFails: on-demand is not magic — an
// application that genuinely needs more partners than the NIC supports
// fails when it crosses the limit, not before.
func TestOnDemandExceedingLimitStillFails(t *testing.T) {
	const n = 12
	cfg := Config{Procs: n, Policy: "ondemand", Deadline: 30 * simnet.Second,
		TuneCost: func(c *via.CostModel) { c.MaxVIsPerPort = 4 }}
	_, err := Run(cfg, func(r *Rank) {
		c := r.World()
		if r.Rank() == 0 {
			// Rank 0 tries to reach 11 distinct peers over a 4-VI NIC.
			for d := 1; d < n; d++ {
				if err := c.Send(d, 0, []byte("x")); err != nil {
					r.Proc().Sim().Failf("expected VI exhaustion: %v", err)
					return
				}
			}
		} else {
			buf := make([]byte, 4)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				return
			}
		}
	})
	if err == nil {
		t.Fatal("expected failure once the partner set exceeds the NIC limit")
	}
}

// TestPinnedMemoryLimitGatesStaticInit reproduces the memory side of the
// paper's argument: the static mesh must pin CreditCount eager buffers for
// every one of its N-1 VIs during MPI_Init, so a tight registered-memory
// limit stops static startup while on-demand stays under it.
func TestPinnedMemoryLimitGatesStaticInit(t *testing.T) {
	const n = 16
	cfg := Config{Procs: n, Deadline: 30 * simnet.Second}
	fcfg, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	_ = fcfg
	perVI := int64(cfg.eagerBufSize() * cfg.CreditCount)
	budget := perVI * 4 // room for 4 channels, not 15

	tune := func(c *via.CostModel) { c.MaxPinnedBytes = budget }
	ring := func(r *Rank) {
		c := r.World()
		me := c.Rank()
		out := []byte{1}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			t.Error(err)
		}
	}

	static := Config{Procs: n, Policy: "static-p2p", TuneCost: tune, Deadline: 30 * simnet.Second}
	if _, err := Run(static, ring); err == nil {
		t.Fatal("static init must fail when the pinned-memory budget cannot hold N-1 pools")
	}

	od := Config{Procs: n, Policy: "ondemand", TuneCost: tune, Deadline: 30 * simnet.Second}
	if _, err := Run(od, ring); err != nil {
		t.Fatalf("on-demand ring must fit in the same pinned budget: %v", err)
	}
}
