// Package tcpvia is a real-network twin of the simulated via package: the
// same Virtual Interface Architecture semantics — connected VI endpoints,
// pre-posted receive descriptors, send-on-unconnected-VI discards, a
// peer-to-peer connection model with discriminator matching — implemented
// over TCP sockets and wall-clock time.
//
// The calibration notes for this reproduction flag that, absent VIA
// hardware, the system "would approximate with sockets only"; this package
// is that approximation, built so the paper's connection-management
// mechanisms (static vs. on-demand, pre-posted send FIFOs) can be exercised
// and measured on a live network. The discrete-event via package remains
// the substrate for the paper's figures (its timing is controllable); this
// one demonstrates the mechanism where timing is real.
//
// Concurrency model: one reader goroutine per TCP connection feeds VI
// receive queues; all state is guarded by a per-node mutex with condition
// variables for blocking waits. Unlike the simulated stack there is no
// global scheduler — this is ordinary concurrent Go.
package tcpvia

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Errors returned by the tcpvia layer.
var (
	ErrClosed       = errors.New("tcpvia: node or VI closed")
	ErrBadState     = errors.New("tcpvia: operation invalid in current VI state")
	ErrTimeout      = errors.New("tcpvia: operation timed out")
	ErrRejected     = errors.New("tcpvia: connection request rejected")
	ErrTooManyVIs   = errors.New("tcpvia: VI limit exceeded")
	ErrNoDescriptor = errors.New("tcpvia: message arrived with no posted receive descriptor")
)

// ViState mirrors the VIA connection state machine.
type ViState int

// VI endpoint states.
const (
	Idle ViState = iota
	Connecting
	Connected
	Errored
	Closed
)

func (s ViState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Connecting:
		return "connecting"
	case Connected:
		return "connected"
	case Errored:
		return "error"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("ViState(%d)", int(s))
	}
}

// SendStatus reports what happened to a posted send.
type SendStatus int

// Send outcomes. Discarded mirrors VIA's silent drop of sends posted to an
// unconnected VI — the hazard on-demand connection management must handle.
const (
	Sent SendStatus = iota
	Discarded
)

// Config tunes a Node.
type Config struct {
	ListenAddr string // e.g. "127.0.0.1:0"
	MaxVIs     int    // 0 = unlimited

	// StrictDescriptors selects VIA-faithful receive semantics: a message
	// arriving on a VI with no posted receive descriptor breaks the
	// connection, exactly as the simulated via package (and real VIA
	// reliable delivery) behaves. When false (the default), the connection
	// reader instead waits for a descriptor, letting TCP's own
	// backpressure throttle the sender — the pragmatic choice on a stream
	// transport, standing in for the credit flow control an MPI layer
	// would provide.
	StrictDescriptors bool
}

// Stats counts a node's resource usage (the Table 2 quantities, live).
type Stats struct {
	VisCreated     int
	VisConnected   int
	VisUsed        int
	MsgsSent       int64
	BytesSent      int64
	MsgsRecv       int64
	BytesRecv      int64
	DiscardedSends int64
}

// PeerRequest is an incoming, not-yet-accepted connection request.
type PeerRequest struct {
	From string // remote node's listen address
	Disc uint64

	conn   net.Conn
	viID   uint32
	node   *Node
	doneMu sync.Mutex
	done   bool
}

// wire message kinds
const (
	kHello byte = iota + 1 // dialer -> acceptor: disc, src vi id, src listen addr
	kAccept
	kReject
	kBusy // crossing-dial tie-break: use the other connection
	kData
	kClose
)

// VI is a Virtual Interface endpoint over one TCP connection.
type VI struct {
	node *Node
	id   uint32

	state    ViState
	remote   string // remote listen address (once connecting/connected)
	disc     uint64
	conn     net.Conn
	remoteVi uint32

	recvQ   [][]byte // posted receive buffers, FIFO
	doneQ   []int    // completed receive lengths, FIFO (parallel to consumed bufs)
	doneBuf [][]byte

	// writeMu serializes frame writes: net.Conn gives no atomicity across
	// concurrent writers, and message order on the wire must match post
	// order.
	writeMu sync.Mutex

	usedTx, usedRx bool
}

// Node is a process's endpoint: it owns a listener, its VIs, and the
// pending-request queue.
type Node struct {
	mu   sync.Mutex
	cond *sync.Cond

	cfg      Config
	ln       net.Listener
	addr     string
	vis      map[uint32]*VI
	nextVi   uint32
	pending  []*PeerRequest
	outgoing map[uint64]*VI // disc -> dialing VI (for crossing tie-break)
	closed   bool

	stats Stats
	wg    sync.WaitGroup
}

// Listen creates a node listening for peer connections.
func Listen(cfg Config) (*Node, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		ln:       ln,
		addr:     ln.Addr().String(),
		vis:      make(map[uint32]*VI),
		outgoing: make(map[uint64]*VI),
	}
	n.cond = sync.NewCond(&n.mu)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address (its VIA network address).
func (n *Node) Addr() string { return n.addr }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.VisUsed = 0
	for _, vi := range n.vis {
		if vi.usedTx || vi.usedRx {
			s.VisUsed++
		}
	}
	return s
}

// Close shuts the node down, closing every VI and the listener.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	vis := make([]*VI, 0, len(n.vis))
	for _, vi := range n.vis {
		vis = append(vis, vi)
	}
	n.cond.Broadcast()
	n.mu.Unlock()

	for _, vi := range vis {
		vi.Close()
	}
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

// CreateVi creates an idle VI endpoint.
func (n *Node) CreateVi() (*VI, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if n.cfg.MaxVIs > 0 {
		live := 0
		for _, v := range n.vis {
			if v.state != Closed {
				live++
			}
		}
		if live >= n.cfg.MaxVIs {
			return nil, fmt.Errorf("%w (%d)", ErrTooManyVIs, n.cfg.MaxVIs)
		}
	}
	n.nextVi++
	vi := &VI{node: n, id: n.nextVi, state: Idle}
	n.vis[vi.id] = vi
	n.stats.VisCreated++
	return vi, nil
}

// acceptLoop handles inbound TCP connections: each starts with a HELLO and
// either matches a crossing dial, is accepted by a waiting server, or is
// queued as a pending peer request.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleInbound(conn)
		}()
	}
}

func (n *Node) handleInbound(conn net.Conn) {
	kind, payload, err := readFrame(conn)
	if err != nil || kind != kHello {
		conn.Close()
		return
	}
	if len(payload) < 12 {
		conn.Close()
		return
	}
	disc := binary.LittleEndian.Uint64(payload)
	viID := binary.LittleEndian.Uint32(payload[8:])
	from := string(payload[12:])

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	// A VI already connected under this (disc, peer): the HELLO is the late
	// half of a crossing dial. Answer kBusy so the dialer observes its VI
	// is connected and succeeds instead of timing out on an orphaned
	// connection.
	for _, vi := range n.vis {
		if vi.disc == disc && vi.remote == from && vi.state == Connected {
			n.mu.Unlock()
			writeFrame(conn, kBusy, nil)
			conn.Close()
			return
		}
	}
	// Crossing dial tie-break: if we are dialing the same discriminator to
	// the same peer, the connection dialed by the smaller address survives.
	if out, ok := n.outgoing[disc]; ok && out.remote == from && out.state == Connecting {
		if n.addr < from {
			// Our dial wins; tell the peer to use it.
			n.mu.Unlock()
			writeFrame(conn, kBusy, nil)
			conn.Close()
			return
		}
		// Their dial wins: adopt this connection for our dialing VI.
		delete(n.outgoing, disc)
		out.adoptLocked(conn, viID)
		n.stats.VisConnected++
		n.mu.Unlock()
		writeFrame(conn, kAccept, u32(out.id))
		out.startReader()
		return
	}
	req := &PeerRequest{From: from, Disc: disc, conn: conn, viID: viID, node: n}
	n.pending = append(n.pending, req)
	n.cond.Broadcast()
	n.mu.Unlock()
}

// PendingRequest returns (and removes) an incoming connection request,
// optionally filtered by discriminator (disc == 0 matches any; use
// WaitRequest for blocking). It returns nil when none is queued.
func (n *Node) PendingRequest(disc uint64) *PeerRequest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pendingLocked(disc)
}

func (n *Node) pendingLocked(disc uint64) *PeerRequest {
	for i, r := range n.pending {
		if disc == 0 || r.Disc == disc {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return r
		}
	}
	return nil
}

// WaitRequest blocks until a request (matching disc, or any if disc == 0)
// arrives or the timeout elapses.
func (n *Node) WaitRequest(disc uint64, timeout time.Duration) (*PeerRequest, error) {
	deadline := time.Now().Add(timeout)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if r := n.pendingLocked(disc); r != nil {
			return r, nil
		}
		if n.closed {
			return nil, ErrClosed
		}
		if time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		n.waitLocked(deadline)
	}
}

// waitLocked waits on the node condition with a deadline, using a timer to
// break the wait.
func (n *Node) waitLocked(deadline time.Time) {
	t := time.AfterFunc(time.Until(deadline)+time.Millisecond, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer t.Stop()
	n.cond.Wait()
}

// Accept completes a pending request on vi. The VI may be Idle, or
// Connecting with a matching (disc, peer) — the latter is a crossing dial
// resolving through the request queue; the VI adopts the inbound connection
// and the outstanding dial completes benignly when it observes the state.
func (n *Node) Accept(req *PeerRequest, vi *VI) error {
	req.doneMu.Lock()
	defer req.doneMu.Unlock()
	if req.done {
		return ErrClosed
	}

	n.mu.Lock()
	switch {
	case vi.state == Idle:
		vi.remote = req.From
		vi.disc = req.Disc
	case vi.state == Connecting && vi.disc == req.Disc && vi.remote == req.From:
		delete(n.outgoing, req.Disc)
	default:
		n.mu.Unlock()
		return fmt.Errorf("%w: Accept in state %v", ErrBadState, vi.state)
	}
	req.done = true
	vi.adoptLocked(req.conn, req.viID)
	n.stats.VisConnected++
	n.mu.Unlock()

	if err := writeFrame(req.conn, kAccept, u32(vi.id)); err != nil {
		return err
	}
	vi.startReader()
	return nil
}

// Reject refuses a pending request and closes its connection.
func (req *PeerRequest) Reject() {
	req.doneMu.Lock()
	defer req.doneMu.Unlock()
	if req.done {
		return
	}
	req.done = true
	writeFrame(req.conn, kReject, nil)
	req.conn.Close()
}

// ConnectPeer connects vi to the VI listening at remote under disc,
// blocking up to timeout. Crossing dials (both sides calling ConnectPeer
// simultaneously with the same discriminator) resolve to a single
// connection deterministically.
func (n *Node) ConnectPeer(vi *VI, remote string, disc uint64, timeout time.Duration) error {
	n.mu.Lock()
	if vi.state != Idle {
		n.mu.Unlock()
		return fmt.Errorf("%w: ConnectPeer in state %v", ErrBadState, vi.state)
	}
	// A matching request may already be queued: adopt it directly.
	for i, r := range n.pending {
		if r.Disc == disc && r.From == remote {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.mu.Unlock()
			return n.Accept(r, vi)
		}
	}
	vi.state = Connecting
	vi.remote = remote
	vi.disc = disc
	n.outgoing[disc] = vi
	n.mu.Unlock()

	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", remote)
	if err != nil {
		n.failDial(vi, disc)
		return err
	}
	hello := make([]byte, 12+len(n.addr))
	binary.LittleEndian.PutUint64(hello, disc)
	binary.LittleEndian.PutUint32(hello[8:], vi.id)
	copy(hello[12:], n.addr)
	if err := writeFrame(conn, kHello, hello); err != nil {
		conn.Close()
		n.failDial(vi, disc)
		return err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	kind, payload, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		n.failDial(vi, disc)
		if vi.State() == Connected {
			return nil // crossing resolved through another connection
		}
		return fmt.Errorf("tcpvia: handshake: %w", err)
	}
	switch kind {
	case kAccept:
		n.mu.Lock()
		delete(n.outgoing, disc)
		if vi.state == Connected {
			// Crossing already resolved in our favour on the inbound path.
			n.mu.Unlock()
			conn.Close()
			return nil
		}
		vi.adoptLocked(conn, binary.LittleEndian.Uint32(payload))
		n.stats.VisConnected++
		n.mu.Unlock()
		vi.startReader()
		return nil
	case kBusy:
		// The peer kept our crossing inbound connection instead; wait for
		// the inbound path to finish adopting it.
		conn.Close()
		deadline := time.Now().Add(timeout)
		n.mu.Lock()
		for vi.state == Connecting && !time.Now().After(deadline) {
			n.waitLocked(deadline)
		}
		ok := vi.state == Connected
		n.mu.Unlock()
		if !ok {
			n.failDial(vi, disc)
			return ErrTimeout
		}
		return nil
	case kReject:
		conn.Close()
		n.failDial(vi, disc)
		if vi.State() == Connected {
			return nil
		}
		return ErrRejected
	default:
		conn.Close()
		n.failDial(vi, disc)
		if vi.State() == Connected {
			return nil
		}
		return fmt.Errorf("tcpvia: unexpected handshake frame %d", kind)
	}
}

func (n *Node) failDial(vi *VI, disc uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.outgoing[disc] == vi {
		delete(n.outgoing, disc)
	}
	if vi.state == Connecting {
		vi.state = Idle
		vi.remote = ""
	}
}

// adoptLocked binds a TCP connection to the VI (node lock held).
func (vi *VI) adoptLocked(conn net.Conn, remoteVi uint32) {
	vi.conn = conn
	vi.remoteVi = remoteVi
	vi.state = Connected
	vi.node.cond.Broadcast()
}

// startReader launches the connection reader feeding the VI's receive
// descriptors.
func (vi *VI) startReader() {
	vi.node.wg.Add(1)
	go func() {
		defer vi.node.wg.Done()
		vi.readLoop()
	}()
}

func (vi *VI) readLoop() {
	n := vi.node
	for {
		kind, payload, err := readFrame(vi.conn)
		if err != nil {
			n.mu.Lock()
			if vi.state == Connected {
				vi.state = Errored
			}
			n.cond.Broadcast()
			n.mu.Unlock()
			return
		}
		switch kind {
		case kData:
			n.mu.Lock()
			if !n.cfg.StrictDescriptors {
				// Wait for a descriptor; not reading the socket applies TCP
				// backpressure to the sender.
				for len(vi.recvQ) == 0 && vi.state == Connected && !n.closed {
					n.cond.Wait()
				}
			}
			if vi.state != Connected || n.closed {
				n.mu.Unlock()
				return
			}
			if len(vi.recvQ) == 0 {
				// VIA reliable delivery: no posted descriptor kills the
				// connection.
				vi.state = Errored
				n.cond.Broadcast()
				n.mu.Unlock()
				vi.conn.Close()
				return
			}
			buf := vi.recvQ[0]
			vi.recvQ = vi.recvQ[1:]
			cp := copy(buf, payload)
			vi.doneBuf = append(vi.doneBuf, buf)
			vi.doneQ = append(vi.doneQ, cp)
			vi.usedRx = true
			n.stats.MsgsRecv++
			n.stats.BytesRecv += int64(len(payload))
			n.cond.Broadcast()
			n.mu.Unlock()
		case kClose:
			n.mu.Lock()
			if vi.state == Connected {
				vi.state = Closed
			}
			n.cond.Broadcast()
			n.mu.Unlock()
			vi.conn.Close()
			return
		default:
			// Ignore unknown frames for forward compatibility.
		}
	}
}

// State returns the VI's connection state.
func (vi *VI) State() ViState {
	vi.node.mu.Lock()
	defer vi.node.mu.Unlock()
	return vi.state
}

// ID returns the VI id, unique within its node.
func (vi *VI) ID() uint32 { return vi.id }

// PostRecv posts a receive buffer. As in VIA, receives must be posted
// before the matching message arrives.
func (vi *VI) PostRecv(buf []byte) error {
	n := vi.node
	n.mu.Lock()
	defer n.mu.Unlock()
	switch vi.state {
	case Idle, Connecting, Connected:
		vi.recvQ = append(vi.recvQ, buf)
		n.cond.Broadcast() // a reader may be waiting for a descriptor
		return nil
	default:
		return fmt.Errorf("%w: PostRecv in state %v", ErrBadState, vi.state)
	}
}

// PostSend transmits data on the VI. A send posted to an unconnected VI is
// *discarded* (VIA semantics) and reported as such.
func (vi *VI) PostSend(data []byte) (SendStatus, error) {
	n := vi.node
	n.mu.Lock()
	if vi.state != Connected {
		n.stats.DiscardedSends++
		st := vi.state
		n.mu.Unlock()
		if st == Errored || st == Closed {
			return Discarded, fmt.Errorf("%w: send in state %v", ErrBadState, st)
		}
		return Discarded, nil
	}
	conn := vi.conn
	vi.usedTx = true
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(len(data))
	n.mu.Unlock()
	vi.writeMu.Lock()
	err := writeFrame(conn, kData, data)
	vi.writeMu.Unlock()
	if err != nil {
		return Discarded, err
	}
	return Sent, nil
}

// RecvDone polls for a completed receive, returning the filled buffer and
// length, or ok == false.
func (vi *VI) RecvDone() (buf []byte, length int, ok bool) {
	n := vi.node
	n.mu.Lock()
	defer n.mu.Unlock()
	return vi.recvDoneLocked()
}

func (vi *VI) recvDoneLocked() ([]byte, int, bool) {
	if len(vi.doneQ) == 0 {
		return nil, 0, false
	}
	b, l := vi.doneBuf[0], vi.doneQ[0]
	vi.doneBuf = vi.doneBuf[1:]
	vi.doneQ = vi.doneQ[1:]
	return b, l, true
}

// RecvWait blocks until a receive completes or the timeout elapses.
func (vi *VI) RecvWait(timeout time.Duration) ([]byte, int, error) {
	n := vi.node
	deadline := time.Now().Add(timeout)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if b, l, ok := vi.recvDoneLocked(); ok {
			return b, l, nil
		}
		switch vi.state {
		case Errored:
			return nil, 0, ErrNoDescriptor
		case Closed:
			return nil, 0, ErrClosed
		case Idle, Connecting, Connected:
			// Live states: keep waiting for a completion or the deadline.
		}
		if time.Now().After(deadline) {
			return nil, 0, ErrTimeout
		}
		n.waitLocked(deadline)
	}
}

// Close disconnects the VI, notifying the peer.
func (vi *VI) Close() {
	n := vi.node
	n.mu.Lock()
	if vi.state == Closed {
		n.mu.Unlock()
		return
	}
	wasConnected := vi.state == Connected
	conn := vi.conn
	vi.state = Closed
	n.cond.Broadcast()
	n.mu.Unlock()
	if wasConnected && conn != nil {
		writeFrame(conn, kClose, nil)
		conn.Close()
	}
}

// ---------------------------------------------------------------------------
// Framing

// writeFrame emits [kind u8][len u32 le][payload].
func writeFrame(conn net.Conn, kind byte, payload []byte) error {
	hdr := make([]byte, 5+len(payload))
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	copy(hdr[5:], payload)
	_, err := conn.Write(hdr)
	return err
}

const maxFrame = 64 << 20

func readFrame(conn net.Conn) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > maxFrame {
		return 0, nil, fmt.Errorf("tcpvia: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func u32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}
