package tcpvia

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

const tmo = 5 * time.Second

func newNode(t *testing.T) *Node {
	t.Helper()
	n, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// connectNodes wires a VI pair between two nodes: a dials, b accepts.
func connectNodes(t *testing.T, a, b *Node, disc uint64) (*VI, *VI) {
	t.Helper()
	viA, err := a.CreateVi()
	if err != nil {
		t.Fatal(err)
	}
	viB, err := b.CreateVi()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		req, err := b.WaitRequest(disc, tmo)
		if err != nil {
			done <- err
			return
		}
		done <- b.Accept(req, viB)
	}()
	if err := a.ConnectPeer(viA, b.Addr(), disc, tmo); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return viA, viB
}

func TestConnectAndTransfer(t *testing.T) {
	a, b := newNode(t), newNode(t)
	viA, viB := connectNodes(t, a, b, 77)
	if viA.State() != Connected || viB.State() != Connected {
		t.Fatalf("states: %v %v", viA.State(), viB.State())
	}
	if err := viB.PostRecv(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	st, err := viA.PostSend([]byte("over tcp"))
	if err != nil || st != Sent {
		t.Fatalf("send: %v %v", st, err)
	}
	buf, ln, err := viB.RecvWait(tmo)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:ln]) != "over tcp" {
		t.Fatalf("got %q", buf[:ln])
	}
}

func TestSendOnUnconnectedDiscarded(t *testing.T) {
	a := newNode(t)
	vi, err := a.CreateVi()
	if err != nil {
		t.Fatal(err)
	}
	st, err := vi.PostSend([]byte("lost"))
	if err != nil || st != Discarded {
		t.Fatalf("want silent discard, got %v %v", st, err)
	}
	if a.Stats().DiscardedSends != 1 {
		t.Fatalf("DiscardedSends = %d", a.Stats().DiscardedSends)
	}
}

func TestRecvWithoutDescriptorBreaksConnection(t *testing.T) {
	// VIA-strict mode: no descriptor means a broken connection.
	a, err := Listen(Config{StrictDescriptors: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Listen(Config{StrictDescriptors: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	viA, viB := connectNodes(t, a, b, 1)
	if _, err := viA.PostSend([]byte("boom")); err != nil {
		t.Fatal(err)
	}
	// viB has no posted receive: its reader must error the VI.
	deadline := time.Now().Add(tmo)
	for viB.State() != Errored && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if viB.State() != Errored {
		t.Fatalf("state = %v, want errored", viB.State())
	}
	if _, _, err := viB.RecvWait(100 * time.Millisecond); err != ErrNoDescriptor {
		t.Fatalf("RecvWait err = %v", err)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	a, b := newNode(t), newNode(t)
	viA, viB := connectNodes(t, a, b, 2)
	const n = 100
	for i := 0; i < n; i++ {
		if err := viB.PostRecv(make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := viA.PostSend([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		buf, ln, err := viB.RecvWait(tmo)
		if err != nil || ln != 2 {
			t.Fatal(err)
		}
		if got := int(buf[0]) | int(buf[1])<<8; got != i {
			t.Fatalf("message %d carried %d", i, got)
		}
	}
}

func TestCrossingDialsResolveToOneConnection(t *testing.T) {
	for round := 0; round < 5; round++ {
		a, b := newNode(t), newNode(t)
		viA, err := a.CreateVi()
		if err != nil {
			t.Fatal(err)
		}
		viB, err := b.CreateVi()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = a.ConnectPeer(viA, b.Addr(), 9, tmo) }()
		go func() { defer wg.Done(); errs[1] = b.ConnectPeer(viB, a.Addr(), 9, tmo) }()
		wg.Wait()
		if errs[0] != nil || errs[1] != nil {
			t.Fatalf("round %d: %v %v", round, errs[0], errs[1])
		}
		if viA.State() != Connected || viB.State() != Connected {
			t.Fatalf("round %d states: %v %v", round, viA.State(), viB.State())
		}
		// Data flows across whichever connection won.
		if err := viB.PostRecv(make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		if _, err := viA.PostSend([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := viB.RecvWait(tmo); err != nil {
			t.Fatalf("round %d recv: %v", round, err)
		}
		a.Close()
		b.Close()
	}
}

func TestRejectedRequest(t *testing.T) {
	a, b := newNode(t), newNode(t)
	vi, err := a.CreateVi()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		req, err := b.WaitRequest(5, tmo)
		if err == nil {
			req.Reject()
		}
	}()
	if err := a.ConnectPeer(vi, b.Addr(), 5, tmo); err != ErrRejected {
		t.Fatalf("err = %v, want rejected", err)
	}
	if vi.State() != Idle {
		t.Fatalf("state after reject = %v", vi.State())
	}
}

func TestViLimit(t *testing.T) {
	n, err := Listen(Config{MaxVIs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 2; i++ {
		if _, err := n.CreateVi(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.CreateVi(); err == nil {
		t.Fatal("expected VI limit error")
	}
}

func TestCloseNotifiesPeer(t *testing.T) {
	a, b := newNode(t), newNode(t)
	viA, viB := connectNodes(t, a, b, 3)
	viA.Close()
	deadline := time.Now().Add(tmo)
	for viB.State() != Closed && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if viB.State() != Closed {
		t.Fatalf("peer state = %v, want closed", viB.State())
	}
}

func TestLargeMessage(t *testing.T) {
	a, b := newNode(t), newNode(t)
	viA, viB := connectNodes(t, a, b, 4)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := viB.PostRecv(make([]byte, len(big))); err != nil {
		t.Fatal(err)
	}
	if _, err := viA.PostSend(big); err != nil {
		t.Fatal(err)
	}
	buf, ln, err := viB.RecvWait(tmo)
	if err != nil || ln != len(big) {
		t.Fatalf("recv: %d %v", ln, err)
	}
	if !bytes.Equal(buf[:ln], big) {
		t.Fatal("large message corrupted")
	}
}

// --------------------------------------------------------------------------
// Manager tests: the paper's mechanisms on a live network.

// group starts n nodes with managers under policy.
func group(t *testing.T, n int, policy string) []*Manager {
	t.Helper()
	nodes := make([]*Node, n)
	peers := make([]string, n)
	for i := range nodes {
		nodes[i] = newNode(t)
		peers[i] = nodes[i].Addr()
	}
	mgrs := make([]*Manager, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range nodes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewManager(ManagerConfig{
				Node: nodes[i], Rank: i, Peers: peers, Policy: policy,
				Timeout: tmo,
			})
			mgrs[i], errs[i] = m, err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("manager %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, m := range mgrs {
			m.Close()
		}
	})
	return mgrs
}

func TestStaticManagerFullMesh(t *testing.T) {
	const n = 4
	mgrs := group(t, n, "static")
	for i, m := range mgrs {
		if got := m.Connections(); got != n-1 {
			t.Errorf("rank %d connections = %d, want %d", i, got, n-1)
		}
		if vis := m.node.Stats().VisCreated; vis != n-1 {
			t.Errorf("rank %d VIs = %d, want %d", i, vis, n-1)
		}
	}
}

// TestOnDemandManagerRing is the paper's core claim on real sockets: a ring
// under on-demand creates only the two connections each rank uses.
func TestOnDemandManagerRing(t *testing.T) {
	const n = 6
	mgrs := group(t, n, "ondemand")
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, m := range mgrs {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Send((i+1)%n, []byte(fmt.Sprintf("from-%d", i))); err != nil {
				errs[i] = err
				return
			}
			got, err := m.Recv((i+n-1)%n, tmo)
			if err != nil {
				errs[i] = err
				return
			}
			want := fmt.Sprintf("from-%d", (i+n-1)%n)
			if string(got) != want {
				errs[i] = fmt.Errorf("rank %d got %q want %q", i, got, want)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range mgrs {
		if got := m.node.Stats().VisCreated; got > 2 {
			t.Errorf("rank %d created %d VIs, want <= 2 under on-demand", i, got)
		}
		if got := m.Connections(); got != 2 {
			t.Errorf("rank %d connections = %d, want 2", i, got)
		}
	}
}

// TestOnDemandFifoPreservesOrder: sends issued before the handshake finishes
// must arrive in order (the §3.4 FIFO on a real network).
func TestOnDemandFifoPreservesOrder(t *testing.T) {
	mgrs := group(t, 2, "ondemand")
	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			mgrs[0].Send(1, []byte{byte(i)}) // first send triggers the dial
		}
	}()
	for i := 0; i < n; i++ {
		got, err := mgrs[1].Recv(0, tmo)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("message %d carried %v", i, got)
		}
	}
}

// TestManagerBidirectionalStress exchanges messages both ways on every pair
// concurrently under on-demand.
func TestManagerBidirectionalStress(t *testing.T) {
	const n = 4
	const msgs = 40
	mgrs := group(t, n, "ondemand")
	var wg sync.WaitGroup
	errCh := make(chan error, n*n*2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			i, j := i, j
			wg.Add(2)
			go func() {
				defer wg.Done()
				for k := 0; k < msgs; k++ {
					if err := mgrs[i].Send(j, []byte{byte(i), byte(j), byte(k)}); err != nil {
						errCh <- err
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for k := 0; k < msgs; k++ {
					got, err := mgrs[j].Recv(i, tmo)
					if err != nil {
						errCh <- fmt.Errorf("recv %d<-%d: %w", j, i, err)
						return
					}
					if len(got) != 3 || got[0] != byte(i) || got[2] != byte(k) {
						errCh <- fmt.Errorf("bad payload %v", got)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Full communication graph: everyone connected to everyone.
	for i, m := range mgrs {
		if got := m.Connections(); got != n-1 {
			t.Errorf("rank %d connections = %d", i, got)
		}
	}
}

func TestManagerConfigValidation(t *testing.T) {
	node := newNode(t)
	if _, err := NewManager(ManagerConfig{Node: node, Rank: 5, Peers: []string{node.Addr()}}); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := NewManager(ManagerConfig{Node: node, Rank: 0, Peers: []string{node.Addr()}, Policy: "psychic"}); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestNoGoroutineLeaks: after closing every node, all readers, acceptors
// and adopt loops must have exited.
func TestNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		a, err := Listen(Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Listen(Config{})
		if err != nil {
			t.Fatal(err)
		}
		viA, viB := connectNodes(t, a, b, 11)
		if err := viB.PostRecv(make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		if _, err := viA.PostSend([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := viB.RecvWait(tmo); err != nil {
			t.Fatal(err)
		}
		a.Close()
		b.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked: %d -> %d\n%s", base, got, buf[:n])
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []ViState{Idle, Connecting, Connected, Errored, Closed, ViState(99)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
}
