package tcpvia

import (
	"fmt"
	"io"
	"sync"
	"time"

	"viampi/internal/obs"
	"viampi/internal/obs/capture"
)

// EventLog is the wall-clock half of the flight recorder: the capture
// package itself is a pure single-threaded leaf, and this stack is genuinely
// concurrent, so the real-socket twin tees its events through a lock here.
// Timestamps are host nanoseconds since the log's creation (the bundle's
// header says ClockWall, so consumers know the stamps mean elapsed wall
// time, not virtual time).
//
// Two sinks, independently optional:
//
//   - a streaming capture.Writer, for bounded-length runs that want the
//     complete record on disk as it happens;
//   - a bounded capture.Ring, for long-lived processes that want the last N
//     events dumped on demand — on a signal, on a crash, at exit.
type EventLog struct {
	base time.Time

	// mu is a leaf lock: it guards the two capture sinks only, and nothing
	// under it calls back into the stack.
	mu     sync.Mutex
	ring   *capture.Ring
	stream *capture.Writer
}

// NewEventLog builds a wall-clock log. ringCap > 0 keeps the most recent
// ringCap events in memory for DumpRing; stream, when non-nil, receives the
// full encoded bundle live (seal it with CloseStream before reading the
// file). The header's clock source is forced to wall time.
func NewEventLog(h capture.Header, ringCap int, stream io.Writer) (*EventLog, error) {
	h.Clock = capture.ClockWall
	l := &EventLog{base: time.Now()}
	if ringCap > 0 {
		l.ring = capture.NewRing(h, ringCap)
	}
	if stream != nil {
		w, err := capture.NewWriter(stream, h)
		if err != nil {
			return nil, err
		}
		l.stream = w
	}
	if l.ring == nil && l.stream == nil {
		return nil, fmt.Errorf("tcpvia: event log needs a ring capacity or a stream")
	}
	return l, nil
}

// Emit records one event, stamped with elapsed wall-clock nanoseconds.
// Safe on a nil log and from any goroutine.
func (l *EventLog) Emit(kind obs.Kind, rank, peer int32, a, b, c int64, name string) {
	if l == nil {
		return
	}
	e := obs.Event{
		T:    time.Since(l.base).Nanoseconds(),
		Kind: kind,
		Rank: rank,
		Peer: peer,
		A:    a, B: b, C: c,
		Name: name,
	}
	l.mu.Lock()
	if l.ring != nil {
		l.ring.Consume(e)
	}
	if l.stream != nil {
		l.stream.Consume(e)
	}
	l.mu.Unlock()
}

// DumpRing writes the retained ring events as a complete bundle — the
// flush-on-signal / flush-on-crash path. Returns the number of events
// dumped and how many older ones had been evicted. No-op on a nil log or a
// log without a ring.
func (l *EventLog) DumpRing(w io.Writer) (kept int, dropped int64, err error) {
	if l == nil {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ring == nil {
		return 0, 0, nil
	}
	return l.ring.Len(), l.ring.Dropped(), l.ring.DumpTo(w)
}

// CloseStream seals the streaming bundle (end marker + event count) and
// reports the stream's totals. Further Emits still feed the ring, if any.
func (l *EventLog) CloseStream() (events, bytes int64, err error) {
	if l == nil {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stream == nil {
		return 0, 0, nil
	}
	events, bytes = l.stream.Events(), l.stream.Bytes()
	err = l.stream.Close()
	l.stream = nil
	return events, bytes, err
}
