package tcpvia

import (
	"fmt"
	"io"
	"sync"
	"time"

	"viampi/internal/obs"
)

// Manager applies the paper's connection-management policies to a group of
// tcpvia nodes identified by rank: "static" builds the full mesh up front;
// "ondemand" creates a VI and dials lazily on first use, parking sends in a
// per-channel FIFO until the connection is up (paper §3.4) and adopting
// incoming requests as they arrive (§3.3, here with a goroutine instead of
// the single-threaded poll, since this stack is genuinely concurrent).
type Manager struct {
	node   *Node
	rank   int
	peers  []string // rank -> listen address
	policy string

	mu       sync.Mutex
	channels map[int]*Channel
	recvPool int
	bufSize  int
	timeout  time.Duration
	closed   bool
	adoptWG  sync.WaitGroup

	// metricsMu guards metrics alone (the registry is not goroutine-safe
	// and this stack is genuinely concurrent). It is a leaf lock: never
	// held while acquiring mu or a channel lock.
	metricsMu sync.Mutex
	metrics   *obs.Registry

	// log is the optional wall-clock flight recorder; EventLog serializes
	// itself, so emissions need no manager lock.
	log *EventLog

	snapStop chan struct{}
	snapWG   sync.WaitGroup
}

// count bumps a named counter on the attached registry (nil = no metrics).
func (m *Manager) count(name string, n int64) {
	if m.metrics == nil {
		return
	}
	m.metricsMu.Lock()
	m.metrics.Inc(name, n)
	m.metricsMu.Unlock()
}

// logEvent tees a protocol event into the flight recorder (nil = no log).
func (m *Manager) logEvent(kind obs.Kind, peer int, a, b int64) {
	m.log.Emit(kind, int32(m.rank), int32(peer), a, b, 0, "")
}

// Channel is the per-peer state: the VI plus the pre-posted send FIFO.
type Channel struct {
	Rank int
	Vi   *VI

	mu    sync.Mutex
	up    bool
	fifo  [][]byte
	upped chan struct{}
}

// Up reports whether the channel's connection is established and drained.
func (c *Channel) Up() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.up
}

// ManagerConfig configures NewManager.
type ManagerConfig struct {
	Node     *Node
	Rank     int
	Peers    []string // rank -> address (Peers[Rank] must equal Node.Addr())
	Policy   string   // "static" or "ondemand"
	RecvPool int      // receive buffers pre-posted per VI (default 32)
	BufSize  int      // receive buffer size (default 64 KiB)
	Timeout  time.Duration

	// Metrics, when set, receives connection and FIFO counters
	// ("tcpvia.conn.up", "tcpvia.fifo.parked", ...). The manager
	// serializes its own access; readers should dump after Close.
	Metrics *obs.Registry

	// Log, when set, receives every connection, FIFO, and message event
	// with wall-clock stamps — the live twin of the simulator's capture
	// bundle. The EventLog serializes itself.
	Log *EventLog

	// SnapshotEvery, with SnapshotTo and Metrics all set, writes a JSON
	// metrics snapshot to SnapshotTo at that interval (and once more at
	// Close) — cheap liveness observability for long-running processes.
	SnapshotEvery time.Duration
	SnapshotTo    io.Writer
}

// NewManager wires a node into a ranked group under the chosen policy.
// Static managers return only after the full mesh is connected.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.RecvPool == 0 {
		cfg.RecvPool = 32
	}
	if cfg.BufSize == 0 {
		cfg.BufSize = 64 << 10
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Peers) {
		return nil, fmt.Errorf("tcpvia: rank %d outside peer table", cfg.Rank)
	}
	m := &Manager{
		node:     cfg.Node,
		rank:     cfg.Rank,
		peers:    cfg.Peers,
		policy:   cfg.Policy,
		channels: make(map[int]*Channel),
		recvPool: cfg.RecvPool,
		metrics:  cfg.Metrics,
		log:      cfg.Log,
	}
	m.bufSize = cfg.BufSize
	m.timeout = cfg.Timeout
	switch cfg.Policy {
	case "static":
		if err := m.connectAll(); err != nil {
			return nil, err
		}
	case "ondemand":
		// Adopt incoming requests in the background.
		m.adoptWG.Add(1)
		go m.adoptLoop()
	default:
		return nil, fmt.Errorf("tcpvia: unknown policy %q", cfg.Policy)
	}
	if cfg.SnapshotEvery > 0 && cfg.SnapshotTo != nil && cfg.Metrics != nil {
		m.snapStop = make(chan struct{})
		m.snapWG.Add(1)
		go m.snapshotLoop(cfg.SnapshotEvery, cfg.SnapshotTo)
	}
	return m, nil
}

// snapshotLoop periodically dumps the metrics registry as one JSON document
// per tick — a heartbeat a human (or a scraper) can tail.
func (m *Manager) snapshotLoop(every time.Duration, out io.Writer) {
	defer m.snapWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.snapStop:
			// One final snapshot so the tail of the file reflects the full run.
			m.snapshot(out)
			return
		case <-t.C:
			m.snapshot(out)
		}
	}
}

// snapshot writes one metrics JSON document under the metrics leaf lock.
func (m *Manager) snapshot(out io.Writer) {
	m.metricsMu.Lock()
	m.metrics.WriteJSON(out)
	m.metricsMu.Unlock()
}

// pairDisc is the canonical discriminator for a rank pair (never 0, since 0
// is the "match any" wildcard in WaitRequest).
func pairDisc(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b) | 1<<63
}

// connectAll builds the full mesh: lower rank dials, higher rank accepts —
// the static policy.
func (m *Manager) connectAll() error {
	var wg sync.WaitGroup
	errs := make([]error, len(m.peers))
	for r := range m.peers {
		if r == m.rank {
			continue
		}
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.establish(r)
			errs[r] = err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// adoptLoop services incoming connection requests under on-demand.
func (m *Manager) adoptLoop() {
	defer m.adoptWG.Done()
	for {
		req, err := m.node.WaitRequest(0, time.Hour)
		if err != nil {
			return // node closed
		}
		rank := m.rankOf(req.From)
		if rank < 0 {
			req.Reject()
			m.count("tcpvia.conn.rejected", 1)
			m.logEvent(obs.EvConnReject, -1, 0, 0)
			continue
		}
		ch := m.channel(rank)
		if ch.Vi == nil || ch.Vi.State() == Connected {
			req.Reject()
			m.logEvent(obs.EvConnReject, rank, int64(pairDisc(m.rank, rank)), 0)
			continue
		}
		// Accept adopts onto an Idle VI, or resolves a crossing dial onto a
		// Connecting one; anything else is answered so the peer's dialer
		// never hangs.
		if err := m.node.Accept(req, ch.Vi); err != nil {
			req.Reject()
			m.logEvent(obs.EvConnReject, rank, int64(pairDisc(m.rank, rank)), 0)
			continue
		}
		m.logEvent(obs.EvConnAccept, rank, int64(pairDisc(m.rank, rank)), 0)
		m.markUp(ch)
	}
}

func (m *Manager) rankOf(addr string) int {
	for r, a := range m.peers {
		if a == addr {
			return r
		}
	}
	return -1
}

// channel returns (creating if needed) the channel struct and its prepared
// VI for a peer.
func (m *Manager) channel(rank int) *Channel {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ch, ok := m.channels[rank]; ok {
		return ch
	}
	vi, err := m.node.CreateVi()
	if err != nil {
		// Surface the error through a dead channel; sends will report it.
		ch := &Channel{Rank: rank, upped: make(chan struct{})}
		m.channels[rank] = ch
		return ch
	}
	for i := 0; i < m.recvPool; i++ {
		_ = vi.PostRecv(make([]byte, m.bufSize))
	}
	ch := &Channel{Rank: rank, Vi: vi, upped: make(chan struct{})}
	m.channels[rank] = ch
	m.logEvent(obs.EvViCreate, rank, int64(len(m.channels)), 0)
	return ch
}

// establish creates the channel and synchronously connects it (static path,
// and the dialing side of on-demand).
func (m *Manager) establish(rank int) (*Channel, error) {
	ch := m.channel(rank)
	if ch.Vi == nil {
		return nil, ErrTooManyVIs
	}
	ch.mu.Lock()
	if ch.up {
		ch.mu.Unlock()
		return ch, nil
	}
	ch.mu.Unlock()
	m.logEvent(obs.EvConnRequest, rank, int64(pairDisc(m.rank, rank)), 0)
	err := m.node.ConnectPeer(ch.Vi, m.peers[rank], pairDisc(m.rank, rank), m.timeout)
	if err != nil && ch.Vi.State() != Connected {
		return nil, err
	}
	m.markUp(ch)
	return ch, nil
}

// markUp flips the channel and drains its FIFO in order (paper §3.4). The
// channel lock is held across the drain so sends racing the transition
// queue behind the parked messages instead of overtaking them.
func (m *Manager) markUp(ch *Channel) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.up {
		return
	}
	for _, data := range ch.fifo {
		ch.Vi.PostSend(data)
	}
	if len(ch.fifo) > 0 {
		m.count("tcpvia.fifo.drained", int64(len(ch.fifo)))
		m.logEvent(obs.EvFifoDrain, ch.Rank, int64(len(ch.fifo)), 0)
	}
	ch.fifo = nil
	ch.up = true
	m.count("tcpvia.conn.up", 1)
	m.logEvent(obs.EvConnUp, ch.Rank, int64(pairDisc(m.rank, ch.Rank)), 0)
	close(ch.upped)
}

// Send transmits data to a peer rank. Under on-demand, the first send
// triggers connection establishment; sends racing the handshake are parked
// in the FIFO and drained in order, so no message is ever discarded.
func (m *Manager) Send(rank int, data []byte) error {
	if rank == m.rank {
		return fmt.Errorf("tcpvia: self-send not supported at this layer")
	}
	ch := m.channel(rank)
	if ch.Vi == nil {
		return ErrTooManyVIs
	}
	ch.mu.Lock()
	if !ch.up {
		// Park a copy (the caller may reuse its buffer immediately).
		cp := append([]byte(nil), data...)
		first := len(ch.fifo) == 0 && m.policy == "ondemand"
		ch.fifo = append(ch.fifo, cp)
		depth := len(ch.fifo)
		ch.mu.Unlock()
		m.count("tcpvia.fifo.parked", 1)
		m.logEvent(obs.EvFifoPark, rank, int64(depth), int64(len(data)))
		if first {
			go func() {
				if _, err := m.establish(rank); err != nil {
					_ = err // the FIFO stays parked; Recv/timeouts surface it
				}
			}()
		}
		return nil
	}
	ch.mu.Unlock()
	st, err := ch.Vi.PostSend(data)
	if err != nil {
		return err
	}
	if st == Discarded {
		return fmt.Errorf("tcpvia: send discarded in state %v", ch.Vi.State())
	}
	m.count("tcpvia.msgs.sent", 1)
	m.logEvent(obs.EvMsgSend, rank, int64(len(data)), 0)
	return nil
}

// Recv blocks for the next message from a peer rank.
func (m *Manager) Recv(rank int, timeout time.Duration) ([]byte, error) {
	ch := m.channel(rank)
	if ch.Vi == nil {
		return nil, ErrTooManyVIs
	}
	if m.policy == "ondemand" && !ch.Up() {
		// Receiver-side connect (paper §4): a receive for a specific source
		// initiates the connection if the sender has not already.
		select {
		case <-ch.upped:
		default:
			go m.establish(rank)
		}
	}
	buf, ln, err := ch.Vi.RecvWait(timeout)
	if err != nil {
		return nil, err
	}
	out := make([]byte, ln)
	copy(out, buf[:ln])
	// Recycle the pool buffer.
	_ = ch.Vi.PostRecv(buf)
	m.logEvent(obs.EvMsgRecv, rank, int64(ln), 0)
	return out, nil
}

// Connections reports how many channels are established — the Table 2
// quantity on the live network.
func (m *Manager) Connections() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ch := range m.channels {
		if ch.Up() {
			n++
		}
	}
	return n
}

// Close tears down all channels and stops the snapshot loop (writing one
// final snapshot).
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	if m.snapStop != nil {
		close(m.snapStop)
	}
	chans := make([]*Channel, 0, len(m.channels))
	for _, ch := range m.channels {
		chans = append(chans, ch)
	}
	m.mu.Unlock()
	m.snapWG.Wait()
	for _, ch := range chans {
		if ch.Vi != nil {
			ch.Vi.Close()
		}
	}
}
