package tcpvia

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"viampi/internal/obs"
	"viampi/internal/obs/capture"
)

func wallHeader(rank int) capture.Header {
	return capture.Header{
		World:  2,
		Device: "tcpvia",
		Policy: "ondemand",
		Label:  "eventlog.test",
		Config: "test",
		Seed:   int64(rank),
	}
}

func TestEventLogRequiresASink(t *testing.T) {
	if _, err := NewEventLog(wallHeader(0), 0, nil); err == nil {
		t.Fatal("sinkless event log accepted")
	}
}

// TestEventLogStream runs a two-rank on-demand exchange with flight
// recorders attached and checks the sealed bundles decode to the protocol
// story: VI creation, the dial (or its adoption), channel-up, and the data
// transfer, all stamped with wall-clock time.
func TestEventLogStream(t *testing.T) {
	nodes := []*Node{newNode(t), newNode(t)}
	peers := []string{nodes[0].Addr(), nodes[1].Addr()}
	logs := make([]*EventLog, 2)
	streams := make([]*bytes.Buffer, 2)
	mgrs := make([]*Manager, 2)
	for i := range mgrs {
		streams[i] = &bytes.Buffer{}
		log, err := NewEventLog(wallHeader(i), 0, streams[i])
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = log
		m, err := NewManager(ManagerConfig{
			Node: nodes[i], Rank: i, Peers: peers, Policy: "ondemand",
			Timeout: tmo, Log: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		mgrs[i] = m
	}
	t.Cleanup(func() {
		for _, m := range mgrs {
			m.Close()
		}
	})

	if err := mgrs[0].Send(1, []byte("recorded")); err != nil {
		t.Fatal(err)
	}
	if got, err := mgrs[1].Recv(0, tmo); err != nil || string(got) != "recorded" {
		t.Fatalf("recv: %q %v", got, err)
	}

	for i, log := range logs {
		if _, _, err := log.CloseStream(); err != nil {
			t.Fatalf("sealing log %d: %v", i, err)
		}
	}
	bundles := make([]*capture.Bundle, 2)
	for i, s := range streams {
		b, err := capture.ReadBundle(bytes.NewReader(s.Bytes()))
		if err != nil {
			t.Fatalf("decoding bundle %d: %v", i, err)
		}
		if b.Header.Clock != capture.ClockWall {
			t.Fatalf("bundle %d clock = %v, want wall", i, b.Header.Clock)
		}
		bundles[i] = b
	}

	kinds := func(b *capture.Bundle) map[obs.Kind]int {
		m := map[obs.Kind]int{}
		for _, e := range b.Events {
			m[e.Kind]++
		}
		return m
	}
	k0, k1 := kinds(bundles[0]), kinds(bundles[1])
	// The sender parked its first message behind the dial; the receiver saw
	// the request arrive (adoption or its own receiver-side dial) and the
	// payload.
	if k0[obs.EvViCreate] == 0 || k0[obs.EvFifoPark] == 0 || k0[obs.EvConnUp] == 0 || k0[obs.EvFifoDrain] == 0 {
		t.Fatalf("sender story incomplete: %v", k0)
	}
	if k1[obs.EvViCreate] == 0 || k1[obs.EvConnUp] == 0 || k1[obs.EvMsgRecv] == 0 {
		t.Fatalf("receiver story incomplete: %v", k1)
	}
	if k0[obs.EvConnRequest]+k1[obs.EvConnAccept] == 0 {
		t.Fatalf("no dial recorded on either side: %v / %v", k0, k1)
	}
	// Wall-clock stamps are monotone within one log (a single mutex orders
	// every emission).
	for i, b := range bundles {
		last := int64(-1)
		for j, e := range b.Events {
			if e.T < last {
				t.Fatalf("bundle %d event %d: time went backwards (%d < %d)", i, j, e.T, last)
			}
			last = e.T
		}
		for _, e := range b.Events {
			if int(e.Rank) != i {
				t.Fatalf("bundle %d carries an event from rank %d", i, e.Rank)
			}
		}
	}
}

// TestEventLogRingDump: the bounded postmortem mode retains exactly the most
// recent events and dumps them as a complete, decodable bundle.
func TestEventLogRingDump(t *testing.T) {
	const cap, total = 64, 500
	log, err := NewEventLog(wallHeader(0), cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		log.Emit(obs.EvMsgSend, 0, 1, int64(i), 0, 0, "")
	}
	var out bytes.Buffer
	kept, dropped, err := log.DumpRing(&out)
	if err != nil {
		t.Fatal(err)
	}
	if kept != cap || dropped != total-cap {
		t.Fatalf("kept %d dropped %d, want %d / %d", kept, dropped, cap, total-cap)
	}
	b, err := capture.ReadBundle(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != cap {
		t.Fatalf("dumped %d events", len(b.Events))
	}
	for i, e := range b.Events {
		if e.A != int64(total-cap+i) {
			t.Fatalf("event %d carries A=%d, want %d (oldest-first order)", i, e.A, total-cap+i)
		}
	}
}

// TestEventLogConcurrentEmit hammers one log from many goroutines; under
// -race this is the data-race check, and the ring must retain exactly its
// capacity afterwards.
func TestEventLogConcurrentEmit(t *testing.T) {
	const workers, each = 8, 200
	log, err := NewEventLog(wallHeader(0), 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				log.Emit(obs.EvMsgSend, int32(w), -1, int64(i), 0, 0, "")
			}
		}()
	}
	wg.Wait()
	var out bytes.Buffer
	kept, dropped, err := log.DumpRing(&out)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 128 || dropped != workers*each-128 {
		t.Fatalf("kept %d dropped %d", kept, dropped)
	}
	if _, err := capture.ReadBundle(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("post-stress dump not decodable: %v", err)
	}
}

// TestNilEventLogIsInert: every method is a no-op on nil, so the manager can
// call unconditionally.
func TestNilEventLogIsInert(t *testing.T) {
	var log *EventLog
	log.Emit(obs.EvMsgSend, 0, 1, 0, 0, 0, "")
	if kept, dropped, err := log.DumpRing(&bytes.Buffer{}); kept != 0 || dropped != 0 || err != nil {
		t.Fatal("nil DumpRing not inert")
	}
	if ev, by, err := log.CloseStream(); ev != 0 || by != 0 || err != nil {
		t.Fatal("nil CloseStream not inert")
	}
}

// TestManagerMetricsSnapshots: the periodic snapshot loop writes JSON
// documents carrying the tcpvia counters, including one final snapshot at
// Close.
func TestManagerMetricsSnapshots(t *testing.T) {
	nodes := []*Node{newNode(t), newNode(t)}
	peers := []string{nodes[0].Addr(), nodes[1].Addr()}
	var snaps bytes.Buffer
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	mgrs := make([]*Manager, 2)
	for i := range mgrs {
		cfg := ManagerConfig{
			Node: nodes[i], Rank: i, Peers: peers, Policy: "ondemand",
			Timeout: tmo, Metrics: regs[i],
		}
		if i == 0 {
			cfg.SnapshotEvery = 5 * time.Millisecond
			cfg.SnapshotTo = &snaps
		}
		m, err := NewManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mgrs[i] = m
	}
	if err := mgrs[0].Send(1, []byte("tick")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgrs[1].Recv(0, tmo); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	for _, m := range mgrs {
		m.Close() // stops the loop after one final snapshot
	}
	got := snaps.String()
	if strings.Count(got, "{") < 2 {
		t.Fatalf("expected multiple snapshots, got:\n%s", got)
	}
	if !strings.Contains(got, "tcpvia.conn.up") {
		t.Fatalf("snapshots missing tcpvia counters:\n%s", got)
	}
}
