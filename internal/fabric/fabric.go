// Package fabric models the physical cluster: nodes with shared NIC ports
// connected through a full-crossbar switch, plus a slow out-of-band
// management network used for job bootstrap (the role Ethernet/rsh played for
// MVICH's process startup).
//
// The model charges three costs to every frame: transmit serialization on the
// source node's NIC port, wire + switch propagation, and receive
// serialization on the destination node's port. Processes on the same node
// share their node's port in both directions, which reproduces the NIC
// contention that multi-process-per-node MPI runs see. Same-node traffic
// takes a loopback path with its own (lower) latency and no switch hop.
//
// fabric knows nothing about VIA: it moves opaque frames between endpoints in
// virtual time. The via package layers endpoint/doorbell/descriptor
// semantics on top.
package fabric

import (
	"fmt"

	"viampi/internal/obs"
	"viampi/internal/simnet"
)

// Config describes the simulated cluster hardware.
type Config struct {
	Nodes           int             // number of physical nodes
	ProcsPerNode    int             // process slots per node (block placement)
	BandwidthBps    float64         // NIC port bandwidth, bytes per second, each direction
	WireLatency     simnet.Duration // NIC->switch->NIC propagation (one way)
	SwitchLatency   simnet.Duration // added per switch traversal
	SameNodeLatency simnet.Duration // loopback latency for intra-node frames
	MgmtLatency     simnet.Duration // out-of-band (Ethernet/TCP) one-way latency
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("fabric: Nodes must be positive, got %d", c.Nodes)
	case c.ProcsPerNode <= 0:
		return fmt.Errorf("fabric: ProcsPerNode must be positive, got %d", c.ProcsPerNode)
	case c.BandwidthBps <= 0:
		return fmt.Errorf("fabric: BandwidthBps must be positive, got %g", c.BandwidthBps)
	case c.WireLatency < 0 || c.SwitchLatency < 0 || c.SameNodeLatency < 0 || c.MgmtLatency < 0:
		return fmt.Errorf("fabric: latencies must be non-negative")
	}
	return nil
}

// MaxProcs returns the total process slots in the cluster.
func (c Config) MaxProcs() int { return c.Nodes * c.ProcsPerNode }

// Frame is an opaque unit of transfer between endpoints. Size is the wire
// size in bytes used for serialization; Payload is whatever the upper layer
// wants delivered (no marshalling happens inside the simulator).
type Frame struct {
	Src     int // source endpoint id
	Dst     int // destination endpoint id
	Size    int
	Payload interface{}
}

// Handler consumes frames delivered to an endpoint.
type Handler func(f Frame)

// endpoint is a process's attachment point to its node's NIC.
type endpoint struct {
	id      int
	node    int
	handler Handler
}

// port tracks the serialization state of one node's NIC direction.
type port struct {
	freeAt simnet.Time
	bytes  int64 // total bytes serialized, for stats
}

// reserve books size bytes onto the port starting no earlier than now and
// returns the completion time.
func (p *port) reserve(now simnet.Time, size int, bps float64) simnet.Time {
	start := now
	if p.freeAt > start {
		start = p.freeAt
	}
	d := simnet.Duration(float64(size) / bps * 1e9)
	p.freeAt = start.Add(d)
	p.bytes += int64(size)
	return p.freeAt
}

// Cluster is the simulated hardware instance.
type Cluster struct {
	sim *simnet.Sim
	cfg Config
	eps []*endpoint
	tx  []port // per node
	rx  []port // per node

	// FramesDelivered counts frames handed to endpoint handlers.
	FramesDelivered uint64
	// MgmtFrames counts out-of-band deliveries.
	MgmtFrames uint64
}

// New creates a cluster on sim. It panics on invalid configuration: cluster
// shape is programmer input, not runtime data.
func New(sim *simnet.Sim, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cluster{
		sim: sim,
		cfg: cfg,
		tx:  make([]port, cfg.Nodes),
		rx:  make([]port, cfg.Nodes),
	}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Sim returns the simulation driving the cluster.
func (c *Cluster) Sim() *simnet.Sim { return c.sim }

// Attach creates a new endpoint on the next free process slot (block
// placement: slot i lands on node i/ProcsPerNode) and returns its id.
// handler is invoked in scheduler context each time a frame arrives.
func (c *Cluster) Attach(handler Handler) (int, error) {
	return c.AttachNode(len(c.eps)/c.cfg.ProcsPerNode, handler)
}

// AttachNode creates a new endpoint pinned to a specific node — the hook
// for placement policies other than block (e.g. round-robin). Nodes are
// capacity-checked against ProcsPerNode.
func (c *Cluster) AttachNode(node int, handler Handler) (int, error) {
	id := len(c.eps)
	if id >= c.cfg.MaxProcs() {
		return -1, fmt.Errorf("fabric: cluster full (%d slots)", c.cfg.MaxProcs())
	}
	if node < 0 || node >= c.cfg.Nodes {
		return -1, fmt.Errorf("fabric: node %d of %d", node, c.cfg.Nodes)
	}
	used := 0
	for _, ep := range c.eps {
		if ep.node == node {
			used++
		}
	}
	if used >= c.cfg.ProcsPerNode {
		return -1, fmt.Errorf("fabric: node %d full (%d slots)", node, c.cfg.ProcsPerNode)
	}
	c.eps = append(c.eps, &endpoint{id: id, node: node, handler: handler})
	return id, nil
}

// NodeOf returns the node hosting endpoint id.
func (c *Cluster) NodeOf(id int) int { return c.eps[id].node }

// Endpoints returns the number of attached endpoints.
func (c *Cluster) Endpoints() int { return len(c.eps) }

// Send injects a frame into the network at the current virtual time after
// extra (the sender-side processing delay computed by the device model, e.g.
// NIC doorbell service). Delivery order between a fixed (src,dst) pair is
// FIFO as long as extra is non-decreasing per pair — the via layer guarantees
// this by serializing through each NIC's service loop.
func (c *Cluster) Send(f Frame, extra simnet.Duration) {
	if f.Src < 0 || f.Src >= len(c.eps) || f.Dst < 0 || f.Dst >= len(c.eps) {
		panic(fmt.Sprintf("fabric: Send with bad endpoints src=%d dst=%d (have %d)", f.Src, f.Dst, len(c.eps)))
	}
	src, dst := c.eps[f.Src], c.eps[f.Dst]
	c.sim.After(extra, func() {
		now := c.sim.Now()
		// Egress serialization wait: how long the frame queued behind
		// earlier traffic before its node's transmit port was free.
		wait := c.tx[src.node].freeAt.Sub(now)
		if wait < 0 {
			wait = 0
		}
		c.sim.Obs().Emit(obs.Event{T: int64(now), Kind: obs.EvFrameEnqueue,
			Rank: int32(f.Src), Peer: int32(f.Dst), A: int64(f.Size), B: int64(wait)})
		txDone := c.tx[src.node].reserve(now, f.Size, c.cfg.BandwidthBps)
		var arriveAt simnet.Time
		if src.node == dst.node {
			arriveAt = txDone.Add(c.cfg.SameNodeLatency)
		} else {
			arriveAt = txDone.Add(c.cfg.WireLatency + c.cfg.SwitchLatency)
		}
		// Receive-side serialization (ingress DMA shares the port).
		var deliverAt simnet.Time
		if src.node == dst.node {
			deliverAt = arriveAt
		} else {
			deliverAt = c.rx[dst.node].reserve(arriveAt, f.Size, c.cfg.BandwidthBps)
		}
		c.sim.At(deliverAt, func() {
			c.FramesDelivered++
			c.sim.Obs().Emit(obs.Event{T: int64(c.sim.Now()), Kind: obs.EvFrameDeliver,
				Rank: int32(f.Dst), Peer: int32(f.Src), A: int64(f.Size)})
			dst.handler(f)
		})
	})
}

// SendMgmt delivers a frame over the out-of-band management network: fixed
// latency, no NIC serialization. Used for job bootstrap (rank/address
// exchange), mirroring MVICH's TCP-based process manager.
func (c *Cluster) SendMgmt(f Frame) {
	if f.Src < 0 || f.Src >= len(c.eps) || f.Dst < 0 || f.Dst >= len(c.eps) {
		panic(fmt.Sprintf("fabric: SendMgmt with bad endpoints src=%d dst=%d", f.Src, f.Dst))
	}
	dst := c.eps[f.Dst]
	c.sim.After(c.cfg.MgmtLatency, func() {
		c.MgmtFrames++
		dst.handler(f)
	})
}

// TxBytes returns total bytes serialized out of node n.
func (c *Cluster) TxBytes(n int) int64 { return c.tx[n].bytes }

// RxBytes returns total bytes serialized into node n.
func (c *Cluster) RxBytes(n int) int64 { return c.rx[n].bytes }
