package fabric

import (
	"testing"
	"testing/quick"

	"viampi/internal/simnet"
)

func testConfig() Config {
	return Config{
		Nodes:           4,
		ProcsPerNode:    2,
		BandwidthBps:    100e6, // 100 MB/s -> 10 ns per byte
		WireLatency:     5 * simnet.Microsecond,
		SwitchLatency:   1 * simnet.Microsecond,
		SameNodeLatency: 2 * simnet.Microsecond,
		MgmtLatency:     100 * simnet.Microsecond,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.ProcsPerNode = 0 },
		func(c *Config) { c.BandwidthBps = 0 },
		func(c *Config) { c.WireLatency = -1 },
	}
	for i, mut := range cases {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAttachPlacement(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	for i := 0; i < 8; i++ {
		id, err := c.Attach(func(Frame) {})
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("id = %d, want %d", id, i)
		}
		if got, want := c.NodeOf(id), i/2; got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", id, got, want)
		}
	}
	if _, err := c.Attach(func(Frame) {}); err == nil {
		t.Fatal("expected cluster-full error")
	}
}

// attachN attaches n sink endpoints and returns a slice to collect frames per endpoint.
func attachN(t *testing.T, c *Cluster, n int) [][]Frame {
	t.Helper()
	got := make([][]Frame, n)
	for i := 0; i < n; i++ {
		i := i
		if _, err := c.Attach(func(f Frame) { got[i] = append(got[i], f) }); err != nil {
			t.Fatal(err)
		}
	}
	return got
}

func TestCrossNodeLatency(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	var deliveredAt simnet.Time
	if _, err := c.Attach(func(Frame) {}); err != nil { // ep 0, node 0
		t.Fatal(err)
	}
	if _, err := c.Attach(func(Frame) {}); err != nil { // ep 1, node 0
		t.Fatal(err)
	}
	if _, err := c.Attach(func(f Frame) { deliveredAt = s.Now() }); err != nil { // ep 2, node 1
		t.Fatal(err)
	}
	c.Send(Frame{Src: 0, Dst: 2, Size: 1000}, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// tx 1000B@100MB/s = 10µs, wire 5µs + switch 1µs, rx 10µs → 26µs
	want := simnet.Time(26 * simnet.Microsecond)
	if deliveredAt != want {
		t.Fatalf("deliveredAt = %v, want %v", deliveredAt, want)
	}
}

func TestSameNodeLatencySkipsSwitch(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	var deliveredAt simnet.Time
	if _, err := c.Attach(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(func(f Frame) { deliveredAt = s.Now() }); err != nil {
		t.Fatal(err)
	}
	c.Send(Frame{Src: 0, Dst: 1, Size: 1000}, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// tx 10µs + loopback 2µs = 12µs (no rx serialization on loopback)
	want := simnet.Time(12 * simnet.Microsecond)
	if deliveredAt != want {
		t.Fatalf("deliveredAt = %v, want %v", deliveredAt, want)
	}
}

func TestTxSerialization(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	got := attachN(t, c, 4)
	// Two 1000-byte frames from ep0 (node 0) to eps on different nodes must
	// serialize on node 0's tx port: second arrives 10µs after the first.
	var times []simnet.Time
	c2 := func(f Frame) { times = append(times, s.Now()) }
	_ = got
	c.eps[2].handler = c2
	c.eps[3].handler = c2 // same node 1 — also shares rx port
	c.Send(Frame{Src: 0, Dst: 2, Size: 1000}, 0)
	c.Send(Frame{Src: 0, Dst: 3, Size: 1000}, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(times))
	}
	// First: tx ends 10µs, +6µs wire/switch, rx ends 26µs.
	// Second: tx ends 20µs, arrives 26µs, rx busy until 26, rx ends 36µs.
	if times[0] != simnet.Time(26*simnet.Microsecond) || times[1] != simnet.Time(36*simnet.Microsecond) {
		t.Fatalf("times = %v, want [26µs 36µs]", times)
	}
}

func TestFIFOPerPair(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	var order []int
	if _, err := c.Attach(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(func(f Frame) { order = append(order, f.Payload.(int)) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Send(Frame{Src: 0, Dst: 2, Size: 64, Payload: i}, 0)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v: not FIFO", order)
		}
	}
}

func TestMgmtDelivery(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	var at simnet.Time
	if _, err := c.Attach(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(func(Frame) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(func(f Frame) { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	c.SendMgmt(Frame{Src: 0, Dst: 2, Size: 1 << 20}) // size ignored on mgmt net
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != simnet.Time(100*simnet.Microsecond) {
		t.Fatalf("mgmt delivered at %v, want 100µs", at)
	}
	if c.MgmtFrames != 1 {
		t.Fatalf("MgmtFrames = %d, want 1", c.MgmtFrames)
	}
}

func TestByteAccounting(t *testing.T) {
	s := simnet.New(1)
	c := New(s, testConfig())
	attachN(t, c, 4)
	c.Send(Frame{Src: 0, Dst: 2, Size: 500}, 0)
	c.Send(Frame{Src: 0, Dst: 3, Size: 300}, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if c.TxBytes(0) != 800 {
		t.Fatalf("TxBytes(0) = %d, want 800", c.TxBytes(0))
	}
	if c.RxBytes(1) != 800 {
		t.Fatalf("RxBytes(1) = %d, want 800", c.RxBytes(1))
	}
}

// Property: total delivery latency for an isolated frame is exactly the
// analytic sum, for any size and any distinct node pair.
func TestPropertyIsolatedFrameLatency(t *testing.T) {
	cfg := testConfig()
	f := func(sz uint16, srcSlot, dstSlot uint8) bool {
		src := int(srcSlot) % cfg.MaxProcs()
		dst := int(dstSlot) % cfg.MaxProcs()
		if src == dst {
			return true
		}
		size := int(sz)%65536 + 1
		s := simnet.New(1)
		c := New(s, cfg)
		var at simnet.Time
		for i := 0; i < cfg.MaxProcs(); i++ {
			i := i
			if _, err := c.Attach(func(f Frame) {
				if i == dst {
					at = s.Now()
				}
			}); err != nil {
				return false
			}
		}
		c.Send(Frame{Src: src, Dst: dst, Size: size}, 0)
		if err := s.Run(); err != nil {
			return false
		}
		ser := simnet.Duration(float64(size) / cfg.BandwidthBps * 1e9)
		var want simnet.Time
		if c.NodeOf(src) == c.NodeOf(dst) {
			want = simnet.Time(ser + cfg.SameNodeLatency)
		} else {
			want = simnet.Time(2*ser + cfg.WireLatency + cfg.SwitchLatency)
		}
		return at == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames between a pair always deliver in send order, even with
// random sizes and extra delays that are non-decreasing.
func TestPropertyPairFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		s := simnet.New(1)
		c := New(s, testConfig())
		var order []int
		if _, err := c.Attach(func(Frame) {}); err != nil {
			return false
		}
		if _, err := c.Attach(func(Frame) {}); err != nil {
			return false
		}
		if _, err := c.Attach(func(f Frame) { order = append(order, f.Payload.(int)) }); err != nil {
			return false
		}
		for i, sz := range sizes {
			c.Send(Frame{Src: 0, Dst: 2, Size: int(sz) + 1, Payload: i}, 0)
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(order) != len(sizes) {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
