// Package trace records communication activity during a simulated MPI run:
// who talked to whom, how much, and when. The paper's whole argument rests
// on communication locality (Table 1's distinct-destination counts, Table
// 2's VI utilization); this package makes that locality visible for any
// program, as a matrix, per-rank destination sets, and summary statistics.
package trace

import (
	"fmt"
	"io"
	"sort"

	"viampi/internal/obs"
)

// Event is one recorded point-to-point message.
type Event struct {
	TimeNs int64
	Src    int
	Dst    int
	Bytes  int
	Tag    int
}

// Recorder accumulates events for a job of Size ranks. It is safe for use
// from the single-threaded simulator (no locking).
type Recorder struct {
	size   int
	msgs   [][]int64 // [src][dst] message counts
	bytes  [][]int64
	events []Event
	keep   bool // retain individual events (memory-heavy)
	bus    *obs.Bus
	sub    obs.Sub
}

// New creates a Recorder; keepEvents retains the full event log (for
// timelines) rather than just the matrices.
func New(size int, keepEvents bool) *Recorder {
	r := &Recorder{size: size, keep: keepEvents}
	r.msgs = make([][]int64, size)
	r.bytes = make([][]int64, size)
	for i := range r.msgs {
		r.msgs[i] = make([]int64, size)
		r.bytes[i] = make([]int64, size)
	}
	return r
}

// Attach subscribes the recorder to an observability bus: every user-level
// message send event (obs.EvMsgSend) becomes one Record call, so a recorder
// fed from the bus builds exactly the matrices the direct API builds.
// Safe on a nil bus (no-op).
func (r *Recorder) Attach(b *obs.Bus) {
	if b == nil {
		return
	}
	r.bus, r.sub = b, b.Subscribe(func(e obs.Event) {
		if e.Kind == obs.EvMsgSend {
			r.Record(e.T, int(e.Rank), int(e.Peer), int(e.A), int(e.B))
		}
	})
}

// Detach unsubscribes the recorder from its bus; the matrices remain.
func (r *Recorder) Detach() {
	if r.bus != nil {
		r.bus.Unsubscribe(r.sub)
		r.bus = nil
	}
}

// Record notes one message.
func (r *Recorder) Record(timeNs int64, src, dst, bytes, tag int) {
	if src < 0 || src >= r.size || dst < 0 || dst >= r.size {
		return
	}
	r.msgs[src][dst]++
	r.bytes[src][dst] += int64(bytes)
	if r.keep {
		r.events = append(r.events, Event{timeNs, src, dst, bytes, tag})
	}
}

// Size returns the job size.
func (r *Recorder) Size() int { return r.size }

// Events returns the retained event log (nil unless keepEvents).
func (r *Recorder) Events() []Event { return r.events }

// Messages returns the message count from src to dst.
func (r *Recorder) Messages(src, dst int) int64 { return r.msgs[src][dst] }

// Bytes returns the byte count from src to dst.
func (r *Recorder) Bytes(src, dst int) int64 { return r.bytes[src][dst] }

// Dests returns the sorted distinct destinations of a rank — the Table 1
// metric for one process.
func (r *Recorder) Dests(rank int) []int {
	var ds []int
	for d, n := range r.msgs[rank] {
		if n > 0 && d != rank {
			ds = append(ds, d)
		}
	}
	sort.Ints(ds)
	return ds
}

// AvgDests returns the average distinct-destination count across ranks.
func (r *Recorder) AvgDests() float64 {
	total := 0
	for i := 0; i < r.size; i++ {
		total += len(r.Dests(i))
	}
	return float64(total) / float64(r.size)
}

// MaxDests returns the largest per-rank destination count.
func (r *Recorder) MaxDests() int {
	m := 0
	for i := 0; i < r.size; i++ {
		if d := len(r.Dests(i)); d > m {
			m = d
		}
	}
	return m
}

// TotalMessages sums all recorded messages.
func (r *Recorder) TotalMessages() int64 {
	var t int64
	for i := range r.msgs {
		for _, n := range r.msgs[i] {
			t += n
		}
	}
	return t
}

// TotalBytes sums all recorded bytes.
func (r *Recorder) TotalBytes() int64 {
	var t int64
	for i := range r.bytes {
		for _, n := range r.bytes[i] {
			t += n
		}
	}
	return t
}

// Density is the fraction of ordered rank pairs that exchanged at least one
// message — 1.0 for a fully-connected pattern like alltoall.
func (r *Recorder) Density() float64 {
	if r.size < 2 {
		return 0
	}
	used := 0
	for i := 0; i < r.size; i++ {
		used += len(r.Dests(i))
	}
	return float64(used) / float64(r.size*(r.size-1))
}

// RenderMatrix writes an ASCII heat map of the message-count matrix:
// '.' none, then '1'..'9' for increasing decades of messages.
func (r *Recorder) RenderMatrix(w io.Writer) {
	fmt.Fprintf(w, "communication matrix (%d ranks, rows=src, cols=dst; log10 scale)\n", r.size)
	fmt.Fprint(w, "     ")
	for d := 0; d < r.size; d++ {
		fmt.Fprintf(w, "%d", d%10)
	}
	fmt.Fprintln(w)
	for s := 0; s < r.size; s++ {
		fmt.Fprintf(w, "%4d ", s)
		for d := 0; d < r.size; d++ {
			fmt.Fprint(w, cellChar(r.msgs[s][d]))
		}
		fmt.Fprintln(w)
	}
}

func cellChar(n int64) string {
	if n <= 0 {
		return "."
	}
	decade := 1
	for n >= 10 {
		n /= 10
		decade++
	}
	if decade > 9 {
		decade = 9
	}
	return fmt.Sprint(decade)
}

// Summary writes aggregate statistics.
func (r *Recorder) Summary(w io.Writer) {
	fmt.Fprintf(w, "messages: %d, bytes: %d\n", r.TotalMessages(), r.TotalBytes())
	fmt.Fprintf(w, "avg distinct destinations/rank: %.2f (max %d of %d possible)\n",
		r.AvgDests(), r.MaxDests(), r.size-1)
	fmt.Fprintf(w, "pair density: %.2f\n", r.Density())
}
