package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAndCounts(t *testing.T) {
	r := New(4, true)
	r.Record(10, 0, 1, 100, 7)
	r.Record(20, 0, 1, 50, 7)
	r.Record(30, 1, 2, 25, 8)
	r.Record(40, 9, 1, 1, 0) // out of range: ignored
	if r.Messages(0, 1) != 2 || r.Bytes(0, 1) != 150 {
		t.Fatalf("0->1: %d msgs %d bytes", r.Messages(0, 1), r.Bytes(0, 1))
	}
	if r.TotalMessages() != 3 || r.TotalBytes() != 175 {
		t.Fatalf("totals: %d %d", r.TotalMessages(), r.TotalBytes())
	}
	if len(r.Events()) != 3 {
		t.Fatalf("events: %d", len(r.Events()))
	}
}

func TestDests(t *testing.T) {
	r := New(5, false)
	r.Record(0, 2, 4, 1, 0)
	r.Record(0, 2, 0, 1, 0)
	r.Record(0, 2, 4, 1, 0)
	r.Record(0, 2, 2, 1, 0) // self: excluded
	ds := r.Dests(2)
	if len(ds) != 2 || ds[0] != 0 || ds[1] != 4 {
		t.Fatalf("dests = %v", ds)
	}
	if r.MaxDests() != 2 {
		t.Fatalf("max = %d", r.MaxDests())
	}
	if got := r.AvgDests(); got != 2.0/5 {
		t.Fatalf("avg = %v", got)
	}
}

func TestDensity(t *testing.T) {
	r := New(3, false)
	if r.Density() != 0 {
		t.Fatal("empty density")
	}
	for s := 0; s < 3; s++ {
		for d := 0; d < 3; d++ {
			if s != d {
				r.Record(0, s, d, 1, 0)
			}
		}
	}
	if r.Density() != 1.0 {
		t.Fatalf("full density = %v", r.Density())
	}
}

func TestRenderMatrixAndSummary(t *testing.T) {
	r := New(3, false)
	for i := 0; i < 123; i++ {
		r.Record(0, 0, 1, 10, 0)
	}
	r.Record(0, 1, 2, 10, 0)
	var buf bytes.Buffer
	r.RenderMatrix(&buf)
	out := buf.String()
	if !strings.Contains(out, ".3.") { // 123 msgs => decade 3
		t.Fatalf("matrix missing decade cell:\n%s", out)
	}
	buf.Reset()
	r.Summary(&buf)
	if !strings.Contains(buf.String(), "messages: 124") {
		t.Fatalf("summary:\n%s", buf.String())
	}
}

func TestCellChar(t *testing.T) {
	cases := map[int64]string{0: ".", 1: "1", 9: "1", 10: "2", 99: "2", 100: "3", 1e12: "9"}
	for n, want := range cases {
		if got := cellChar(n); got != want {
			t.Errorf("cellChar(%d) = %s, want %s", n, got, want)
		}
	}
}

// Property: matrices agree with an independently-maintained reference.
func TestPropertyMatrixConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		r := New(8, false)
		ref := map[[2]int]int64{}
		for _, v := range raw {
			s, d := int(v)%8, int(v>>8)%8
			r.Record(0, s, d, 1, 0)
			ref[[2]int{s, d}]++
		}
		for k, n := range ref {
			if r.Messages(k[0], k[1]) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
