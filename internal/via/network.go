package via

import (
	"fmt"

	"viampi/internal/fabric"
	"viampi/internal/simnet"
)

// Network is a VIA provider instance spanning the whole simulated cluster.
// Each MPI process opens one Port on it.
type Network struct {
	sim     *simnet.Sim
	cluster *fabric.Cluster
	cost    CostModel
	nodes   []*nodeState
	ports   []*Port

	faults *FaultPlan

	// DroppedNoDescriptor counts messages that arrived on a VI with no
	// posted receive descriptor (a flow-control violation in the upper
	// layer; the VI enters the error state).
	DroppedNoDescriptor int
	// DiscardedSends counts sends posted to unconnected VIs.
	DiscardedSends int
	// ConnReqsDropped / ConnReqsDelayed / ConnReqsRefused count injected
	// connection-establishment faults (zero unless a FaultPlan is set).
	ConnReqsDropped int
	ConnReqsDelayed int
	ConnReqsRefused int
}

// SetFaults installs a deterministic connection-fault plan (nil disables).
func (n *Network) SetFaults(f *FaultPlan) { n.faults = f }

// nodeState is the per-physical-node NIC service state shared by all ports
// (processes) on that node.
type nodeState struct {
	txFree  simnet.Time
	rxFree  simnet.Time
	openVIs int // open VI endpoints across all ports on this node
}

// NewNetwork creates a VIA provider over a fresh fabric cluster.
func NewNetwork(sim *simnet.Sim, fcfg fabric.Config, cost CostModel) *Network {
	n := &Network{
		sim:     sim,
		cluster: fabric.New(sim, fcfg),
		cost:    cost,
		nodes:   make([]*nodeState, fcfg.Nodes),
	}
	for i := range n.nodes {
		n.nodes[i] = &nodeState{}
	}
	return n
}

// Sim returns the driving simulation.
func (n *Network) Sim() *simnet.Sim { return n.sim }

// Cluster returns the underlying fabric.
func (n *Network) Cluster() *fabric.Cluster { return n.cluster }

// Cost returns the device cost model.
func (n *Network) Cost() CostModel { return n.cost }

// Ports returns all opened ports in open order.
func (n *Network) Ports() []*Port { return n.ports }

// Open attaches a new port (one per process) owned by proc, using block
// placement. The owner is the only process that may invoke blocking
// operations on the port.
func (n *Network) Open(owner *simnet.Proc) (*Port, error) {
	return n.open(owner, -1)
}

// OpenOnNode attaches a new port pinned to a specific node — the hook for
// non-block placement policies.
func (n *Network) OpenOnNode(owner *simnet.Proc, node int) (*Port, error) {
	return n.open(owner, node)
}

func (n *Network) open(owner *simnet.Proc, node int) (*Port, error) {
	p := &Port{
		net:         n,
		owner:       owner,
		mem:         NewMemoryRegistry(n.cost.MaxPinnedBytes),
		outgoing:    make(map[connKey]*VI),
		rdmaTargets: make(map[uint64][]byte),
	}
	var ep int
	var err error
	if node < 0 {
		ep, err = n.cluster.Attach(p.handleFrame)
	} else {
		ep, err = n.cluster.AttachNode(node, p.handleFrame)
	}
	if err != nil {
		return nil, err
	}
	p.ep = ep
	p.node = n.cluster.NodeOf(ep)
	n.ports = append(n.ports, p)
	return p, nil
}

// serviceTx books NIC transmit service for one frame on node nd and returns
// the completion time. Per-VI doorbell scan cost models BVIA firmware.
func (n *Network) serviceTx(nd int) simnet.Time {
	ns := n.nodes[nd]
	start := n.sim.Now()
	if ns.txFree > start {
		start = ns.txFree
	}
	d := n.cost.NicTxBase + simnet.Duration(ns.openVIs)*n.cost.NicTxPerVI
	ns.txFree = start.Add(d)
	return ns.txFree
}

// serviceRx books NIC receive service for one frame on node nd starting at
// the frame's arrival (now) and returns the delivery time.
func (n *Network) serviceRx(nd int) simnet.Time {
	ns := n.nodes[nd]
	start := n.sim.Now()
	if ns.rxFree > start {
		start = ns.rxFree
	}
	d := n.cost.NicRxBase + simnet.Duration(ns.openVIs)*n.cost.NicRxPerVI
	ns.rxFree = start.Add(d)
	return ns.rxFree
}

// sendFrame pushes a wire message from port p into the fabric after NIC
// transmit service, returning the time the NIC finished accepting it (which
// is when the associated descriptor completes locally).
func (n *Network) sendFrame(p *Port, dstEp int, m *wireMsg, payloadLen int) simnet.Time {
	txDone := n.serviceTx(p.node)
	size := payloadLen + n.cost.FrameHeaderBytes
	var extra simnet.Duration
	if m.kind == kindConnReq && n.faults != nil {
		if n.faults.dropReq(p.ep, dstEp, n.sim.Now()) {
			// The NIC accepted the frame (service time is booked and the
			// descriptor completes); the wire lost it.
			n.ConnReqsDropped++
			return txDone
		}
		if d := n.faults.delayReq(p.ep, dstEp, n.sim.Now()); d > 0 {
			// Per-pair FIFO survives the extra delay: nothing else can be
			// in flight on this pair before the connection establishes.
			n.ConnReqsDelayed++
			extra = d
		}
	}
	n.sim.At(txDone, func() {
		n.cluster.Send(fabric.Frame{Src: p.ep, Dst: dstEp, Size: size, Payload: m}, extra)
	})
	return txDone
}

// OpenVIsOnNode reports open VI endpoints on node nd (for tests/harness).
func (n *Network) OpenVIsOnNode(nd int) int { return n.nodes[nd].openVIs }

// TotalOpenVIs reports open VI endpoints across the cluster.
func (n *Network) TotalOpenVIs() int {
	t := 0
	for _, ns := range n.nodes {
		t += ns.openVIs
	}
	return t
}

func (n *Network) String() string {
	return fmt.Sprintf("via.Network(%s, %d ports, %d open VIs)",
		n.cost.Name, len(n.ports), n.TotalOpenVIs())
}
