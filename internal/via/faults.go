package via

import "viampi/internal/simnet"

// Connection-establishment fault injection. The paper assumes connection
// requests always arrive and are always accepted; a production transport
// cannot. FaultPlan lets a run drop or delay kindConnReq frames, refuse them
// with NACKs, and declare transient per-endpoint unavailability windows —
// all as a pure function of (Seed, frame coordinates, virtual time). No
// random stream is consumed and no state is kept, so injecting faults can
// never reorder anything else: two runs with the same Config (plan
// included) remain byte-identical, and the dual-run determinism harness
// covers a faulted configuration.

// FaultWindow marks endpoint Ep as refusing connections during [From, To):
// every kindConnReq arriving there in the window is NACKed, modelling a
// peer that is temporarily not accepting connections.
type FaultWindow struct {
	Ep   int
	From simnet.Time
	To   simnet.Time
}

// FaultPlan configures deterministic connection-establishment faults.
// Probabilities are in [0, 1]; a zero value injects nothing.
type FaultPlan struct {
	// Seed decorrelates the plan from other seeded machinery. The mpi
	// layer defaults it to the run's Config.Seed when left zero.
	Seed int64

	// DropConnReq is the probability a kindConnReq frame is lost after NIC
	// transmit service (the NIC accepted it; the wire ate it).
	DropConnReq float64
	// DelayConnReq is the probability a kindConnReq is held for
	// ConnReqDelay before entering the fabric. Delaying only REQ frames is
	// safe for per-pair FIFO delivery: no data frame can precede
	// establishment on the pair.
	DelayConnReq float64
	ConnReqDelay simnet.Duration
	// RefuseConnReq is the probability an arriving kindConnReq is answered
	// with a NACK instead of being queued or matched.
	RefuseConnReq float64
	// Unavailable lists transient per-endpoint refusal windows, applied
	// before the probabilistic refusal roll.
	Unavailable []FaultWindow
}

// roll hashes (seed, salt, src, dst, now) into [0, 1) with a
// splitmix64-style finalizer. Distinct salts decorrelate the drop, delay
// and refuse decisions for the same frame; the time input makes a retry of
// the same request re-roll, so transient faults stay transient.
func (f *FaultPlan) roll(salt, src, dst uint64, now simnet.Time) float64 {
	x := uint64(f.Seed) ^ (salt * 0x9e3779b97f4a7c15)
	x += src*0xbf58476d1ce4e5b9 + dst*0x94d049bb133111eb + uint64(now)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// dropReq decides whether a REQ from src to dst leaving now is lost.
func (f *FaultPlan) dropReq(src, dst int, now simnet.Time) bool {
	return f.DropConnReq > 0 &&
		f.roll(1, uint64(src), uint64(dst), now) < f.DropConnReq
}

// delayReq returns the extra fabric delay for a REQ from src to dst, or 0.
func (f *FaultPlan) delayReq(src, dst int, now simnet.Time) simnet.Duration {
	if f.DelayConnReq > 0 && f.ConnReqDelay > 0 &&
		f.roll(2, uint64(src), uint64(dst), now) < f.DelayConnReq {
		return f.ConnReqDelay
	}
	return 0
}

// refuseReq decides whether a REQ from src arriving at dst now is NACKed.
func (f *FaultPlan) refuseReq(src, dst int, now simnet.Time) bool {
	for _, w := range f.Unavailable {
		if w.Ep == dst && now.Sub(w.From) >= 0 && now.Sub(w.To) < 0 {
			return true
		}
	}
	return f.RefuseConnReq > 0 &&
		f.roll(3, uint64(src), uint64(dst), now) < f.RefuseConnReq
}
