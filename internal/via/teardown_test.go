package via

import (
	"bytes"
	"errors"
	"testing"

	"viampi/internal/simnet"
)

// Regression: VI.Close must notify port activity like enterError does. A
// waiter parked in RecvWait would otherwise sleep forever when the VI is
// closed out from under it (e.g. by a timer-driven teardown) — the sim
// deadline in pair() turns that hang into a test failure.
func TestCloseWakesRecvWaiter(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, 64)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
				return
			}
			p.Sim().After(simnet.Millisecond, vi.Close)
			got, err := vi.RecvWait(WaitPoll, -1)
			switch {
			case err != nil:
				if !errors.Is(err, ErrBadState) {
					t.Errorf("RecvWait err = %v, want ErrBadState", err)
				}
			case got.Status != StatusDisconnected:
				t.Errorf("RecvWait status = %v, want Disconnected", got.Status)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			// Keep the peer alive past the close so its DISC has a target.
			p.Sleep(2 * simnet.Millisecond)
		})
}

// A Close on one side delivers kindDisc: the peer's VI transitions to
// ViDisconnected and its blocked waiters observe the teardown.
func TestDiscDelivery(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			p.Sleep(100 * simnet.Microsecond)
			vi.Close()
			if vi.State() != ViClosed {
				t.Errorf("closer state = %v, want ViClosed", vi.State())
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, 64)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
				return
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			switch {
			case err != nil:
				if !errors.Is(err, ErrBadState) {
					t.Errorf("RecvWait err = %v, want ErrBadState", err)
				}
			case got.Status != StatusDisconnected:
				t.Errorf("RecvWait status = %v, want Disconnected", got.Status)
			}
			if vi.State() != ViDisconnected {
				t.Errorf("peer state = %v, want ViDisconnected", vi.State())
			}
		})
}

// A NACK must fully reset the initiator's handshake state — remote
// endpoint, remote VI, discriminator, held frames — so the same VI can be
// reused for a fresh request (here under a different discriminator) without
// matching anything stale. Pins the kindConnNack reset audit.
func TestNackResetThenReuse(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	msg := []byte("after the retry")
	addrs := make([]Addr, 2)
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			addrs[0] = port.Addr()
			p.Sleep(10 * simnet.Microsecond)
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, addrs[1], 11); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != ErrRejected {
				t.Errorf("first connect err = %v, want ErrRejected", err)
				return
			}
			if vi.State() != ViIdle {
				t.Errorf("post-NACK state = %v, want ViIdle", vi.State())
			}
			// Reuse the same VI under a different discriminator.
			if err := port.ConnectPeerRequest(vi, addrs[1], 22); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			d := &Descriptor{Buf: make([]byte, 64)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
				return
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got.Buf[:got.XferLen], msg) {
				t.Errorf("received %q, want %q", got.Buf[:got.XferLen], msg)
			}
		},
		func(p *simnet.Proc, port *Port) {
			addrs[1] = port.Addr()
			// Refuse the first request, accept the second.
			for len(port.PendingPeerRequests()) == 0 {
				port.WaitActivity(WaitPoll)
			}
			req := port.PendingPeerRequests()[0]
			if req.Disc != 11 {
				t.Errorf("first disc = %d, want 11", req.Disc)
			}
			port.Reject(req)
			for len(port.PendingPeerRequests()) == 0 {
				port.WaitActivity(WaitPoll)
			}
			req = port.PendingPeerRequests()[0]
			if req.Disc != 22 {
				t.Errorf("second disc = %d, want 22", req.Disc)
			}
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, req.From, req.Disc); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			d := &Descriptor{Buf: append([]byte(nil), msg...), Len: len(msg)}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
				return
			}
			if _, err := vi.SendWait(WaitPoll, -1); err != nil {
				t.Error(err)
			}
		})
}

// Close while a fragmented send is still in flight: the local descriptor
// completes StatusDisconnected, but frames already accepted by the NIC
// deliver — the peer receives the full message, then the DISC.
func TestCloseDuringInFlightSend(t *testing.T) {
	cost := ClanCost()
	cost.MTU = 1000
	e := newEnv(2, 1, cost)
	msg := make([]byte, 8000)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: msg, Len: len(msg)}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
				return
			}
			vi.Close()
			if d.Status != StatusDisconnected {
				t.Errorf("send status = %v, want Disconnected", d.Status)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, len(msg))}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
				return
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if got.XferLen != len(msg) || !bytes.Equal(got.Buf[:len(msg)], msg) {
				t.Error("in-flight message corrupted by sender close")
			}
			d2 := &Descriptor{Buf: make([]byte, 64)}
			if err := vi.PostRecv(d2); err != nil {
				t.Error(err)
				return
			}
			got2, err := vi.RecvWait(WaitPoll, -1)
			switch {
			case err != nil:
				if !errors.Is(err, ErrBadState) {
					t.Errorf("post-DISC RecvWait err = %v, want ErrBadState", err)
				}
			case got2.Status != StatusDisconnected:
				t.Errorf("post-DISC status = %v, want Disconnected", got2.Status)
			}
			if vi.State() != ViDisconnected {
				t.Errorf("post-DISC state = %v, want ViDisconnected", vi.State())
			}
		})
}

// CancelConnect abandons an outstanding request: the VI returns to ViIdle
// and a late ACK for the cancelled attempt cannot resurrect it.
func TestCancelConnectAbandonsRequest(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	addrs := make([]Addr, 2)
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			addrs[0] = port.Addr()
			p.Sleep(10 * simnet.Microsecond)
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, addrs[1], 33); err != nil {
				t.Error(err)
				return
			}
			if err := port.CancelConnect(vi); err != nil {
				t.Error(err)
				return
			}
			if vi.State() != ViIdle {
				t.Errorf("post-cancel state = %v, want ViIdle", vi.State())
			}
			// Give the peer time to (wrongly) match the cancelled request.
			p.Sleep(time10ms())
			if vi.State() != ViIdle {
				t.Errorf("late handshake resurrected cancelled VI: %v", vi.State())
			}
		},
		func(p *simnet.Proc, port *Port) {
			addrs[1] = port.Addr()
			// Try to complete the handshake the initiator cancelled.
			for len(port.PendingPeerRequests()) == 0 {
				if !port.WaitActivityTimeout(WaitPoll, time10ms()) {
					return // request never arrived (cancelled before send): fine
				}
			}
			req := port.PendingPeerRequests()[0]
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			_ = port.ConnectPeerRequest(vi, req.From, req.Disc)
		})
}

func time10ms() simnet.Duration { return 10 * simnet.Millisecond }
