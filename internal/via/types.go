package via

import (
	"errors"
	"fmt"
)

// Status is the completion status of a descriptor.
type Status int

// Descriptor completion statuses.
const (
	StatusPending      Status = iota // not yet complete
	StatusSuccess                    // transfer completed
	StatusNotConnected               // send posted to an unconnected VI: discarded (VIPL semantics)
	StatusDisconnected               // connection went away before completion
	StatusErrorState                 // VI entered the error state (e.g. receive with no posted descriptor)
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusSuccess:
		return "success"
	case StatusNotConnected:
		return "not-connected"
	case StatusDisconnected:
		return "disconnected"
	case StatusErrorState:
		return "error-state"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ViState is the connection state of a VI endpoint.
type ViState int

// VI endpoint states, mirroring the VIPL connection state machine.
const (
	ViIdle       ViState = iota // created, not connected
	ViConnecting                // peer/client request outstanding
	ViConnected
	ViError        // reliable-delivery violation (receive with no descriptor)
	ViDisconnected // remote side went away
	ViClosed
)

func (s ViState) String() string {
	switch s {
	case ViIdle:
		return "idle"
	case ViConnecting:
		return "connecting"
	case ViConnected:
		return "connected"
	case ViError:
		return "error"
	case ViDisconnected:
		return "disconnected"
	case ViClosed:
		return "closed"
	default:
		return fmt.Sprintf("ViState(%d)", int(s))
	}
}

// Errors returned by the via layer.
var (
	ErrTooManyVIs     = errors.New("via: VI limit for this port exceeded")
	ErrPinnedLimit    = errors.New("via: registered-memory limit exceeded")
	ErrBadState       = errors.New("via: operation invalid in current VI state")
	ErrRejected       = errors.New("via: connection request rejected")
	ErrTimeout        = errors.New("via: operation timed out")
	ErrClosed         = errors.New("via: port or VI closed")
	ErrUnknownRdmaKey = errors.New("via: unknown RDMA target key")
	ErrNotRegistered  = errors.New("via: buffer not in a registered region")
)

// Addr is the network address of a port (a process's NIC handle).
type Addr struct {
	Ep int // fabric endpoint id
}

// PeerRequest describes an incoming connection request that has not yet been
// matched by a local request (peer-to-peer model) or accepted (client-server
// model).
type PeerRequest struct {
	From     Addr
	Disc     uint64 // connection discriminator
	RemoteVi int    // requester's VI id
}

// Descriptor is a work request posted to a VI queue. Exactly one of the
// send/receive/RDMA uses applies per descriptor. The Buf slice must lie in a
// registered memory region of the posting port.
type Descriptor struct {
	Buf []byte // data to send, or receive landing buffer
	Len int    // bytes to send; for receives, set on completion

	// RDMA write fields (send-queue descriptors only).
	RdmaKey    uint64 // remote target key from RegisterRdmaTarget
	RdmaOffset int    // byte offset within the remote target

	Status  Status
	XferLen int // bytes actually transferred

	// UserPtr lets upper layers attach context (e.g. the MPI request).
	UserPtr interface{}

	vi   *VI
	rdma bool
}

// Done reports whether the descriptor has completed (any status).
func (d *Descriptor) Done() bool { return d.Status != StatusPending }

// VI returns the endpoint this descriptor was posted to, nil before posting.
func (d *Descriptor) VI() *VI { return d.vi }

// wire message kinds
const (
	kindConnReq byte = iota + 1
	kindConnAck
	kindConnNack
	kindDisc
	kindData
	kindRdma
	kindOob
)

// wireMsg is the payload carried inside a fabric frame.
type wireMsg struct {
	kind   byte
	srcEp  int
	srcVi  int
	dstVi  int
	disc   uint64
	seq    uint64 // per-VI data sequence, for assertions
	offset int    // fragment offset within the message
	total  int    // total message length
	data   []byte // fragment payload (copied at post time)

	rdmaKey uint64 // RDMA target key
	rdmaOff int    // base offset of the RDMA write
}
