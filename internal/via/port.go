package via

import (
	"fmt"

	"viampi/internal/fabric"
	"viampi/internal/obs"
	"viampi/internal/simnet"
)

// WaitMode selects how blocking completion waits behave.
type WaitMode int

const (
	// WaitPoll spins forever: the waiter observes completions immediately
	// and never pays a wakeup penalty ("polling" in the paper).
	WaitPoll WaitMode = iota
	// WaitSpin polls for the device's spin budget, then falls back to a
	// blocking (interrupt-based) wait that pays CostModel.WaitWakeup when
	// satisfied ("spinwait", MVICH's default on cLAN with spincount=100).
	// On devices where wait itself is a poll loop (BVIA), WaitSpin behaves
	// exactly like WaitPoll.
	WaitSpin
)

func (m WaitMode) String() string {
	if m == WaitSpin {
		return "spinwait"
	}
	return "polling"
}

type connKey struct {
	remoteEp int
	disc     uint64
}

// PortStats aggregates per-process resource usage for the scalability tables.
type PortStats struct {
	VisCreated   int
	VisConnected int
	MsgsSent     int64
	MsgsRecv     int64
	BytesSent    int64
	BytesRecv    int64
	RdmaBytes    int64
	ConnReqsSent int
	WaitWakeups  int64 // blocking waits that overran the spin budget
}

// Port is a process's handle on the VIA provider (cf. VipOpenNic). All
// blocking calls must be made by the owning process.
type Port struct {
	net   *Network
	ep    int
	node  int
	owner *simnet.Proc
	mem   *MemoryRegistry

	vis    []*VI
	nextVi int

	outgoing        map[connKey]*VI // VIs with an outstanding REQ
	pendingIncoming []*PeerRequest  // unmatched incoming REQs

	activity     bool
	parkedInWait bool
	debt         simnet.Duration
	closed       bool

	rdmaTargets map[uint64][]byte
	nextRdmaKey uint64

	oobQ []oobMsg

	stats PortStats
}

// oobMsg is a queued out-of-band (management network) message.
type oobMsg struct {
	from Addr
	data []byte
}

// Addr returns the port's network address for use in connection requests.
func (p *Port) Addr() Addr { return Addr{Ep: p.ep} }

// Owner returns the owning process.
func (p *Port) Owner() *simnet.Proc { return p.owner }

// Node returns the physical node hosting this port.
func (p *Port) Node() int { return p.node }

// Memory returns the port's registered-memory accounting.
func (p *Port) Memory() *MemoryRegistry { return p.mem }

// Stats returns a snapshot of the port's resource counters.
func (p *Port) Stats() PortStats { return p.stats }

// Network returns the provider this port belongs to.
func (p *Port) Network() *Network { return p.net }

// Obs returns the simulation's observability bus (nil when disabled).
func (p *Port) Obs() *obs.Bus { return p.net.sim.Obs() }

// NowNs is the current virtual time as an event timestamp.
func (p *Port) NowNs() int64 { return int64(p.net.sim.Now()) }

// ChargeHost accumulates host CPU cost against the owning process. The debt
// is flushed (converted into simulated compute time) once it crosses a small
// threshold or before the process blocks, keeping event counts manageable.
func (p *Port) ChargeHost(d simnet.Duration) {
	p.debt += d
	if p.debt >= 2*simnet.Microsecond {
		p.FlushDebt()
	}
}

// FlushDebt charges all accumulated host cost as compute time now.
func (p *Port) FlushDebt() {
	if p.debt > 0 {
		d := p.debt
		p.debt = 0
		p.owner.Compute(d)
	}
}

// notifyActivity records that something observable happened on the port and
// wakes the owner if it is blocked in WaitActivity.
func (p *Port) notifyActivity() {
	p.activity = true
	if p.parkedInWait {
		p.owner.Wake()
	}
}

// WaitActivity blocks the owner until activity occurs on the port (a
// completion, a connection event, or an incoming request). Under WaitSpin on
// an interrupt-wait device, overrunning the spin budget costs a wakeup
// penalty, reproducing the paper's spinwait behaviour.
func (p *Port) WaitActivity(mode WaitMode) {
	p.waitActivity(mode, -1)
}

// WaitActivityTimeout is WaitActivity with a timeout; it reports false if the
// timeout elapsed with no activity.
func (p *Port) WaitActivityTimeout(mode WaitMode, d simnet.Duration) bool {
	return p.waitActivity(mode, d)
}

func (p *Port) waitActivity(mode WaitMode, timeout simnet.Duration) bool {
	p.FlushDebt()
	if p.activity {
		p.activity = false
		return true
	}
	start := p.owner.Now()
	p.parkedInWait = true
	var woken bool
	if timeout < 0 {
		p.owner.Park()
		woken = true
	} else {
		woken = p.owner.ParkTimeout(timeout)
	}
	p.parkedInWait = false
	p.activity = false
	if woken && mode == WaitSpin && !p.net.cost.WaitIsSpin {
		if p.owner.Now().Sub(start) > p.net.cost.SpinBudget() {
			p.stats.WaitWakeups++
			p.owner.Compute(p.net.cost.WaitWakeup)
		}
	}
	return woken
}

// CreateVi creates a new VI endpoint on this port.
func (p *Port) CreateVi() (*VI, error) { return p.CreateViCQ(nil) }

// CreateViCQ creates a VI whose receive completions are also delivered to cq.
func (p *Port) CreateViCQ(cq *CQ) (*VI, error) {
	if p.closed {
		return nil, ErrClosed
	}
	live := 0
	for _, v := range p.vis {
		if v != nil && v.state != ViClosed {
			live++
		}
	}
	if live >= p.net.cost.MaxVIsPerPort {
		return nil, fmt.Errorf("%w: %d", ErrTooManyVIs, p.net.cost.MaxVIsPerPort)
	}
	p.ChargeHost(p.net.cost.CreateViCost)
	vi := &VI{port: p, id: p.nextVi, recvCQ: cq}
	p.nextVi++
	p.vis = append(p.vis, vi)
	p.net.nodes[p.node].openVIs++
	p.stats.VisCreated++
	p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvViCreate,
		Rank: int32(p.ep), Peer: -1, A: int64(p.stats.VisCreated)})
	return vi, nil
}

// RegisterRdmaTarget registers buf as an RDMA write target and returns the
// key a remote peer can address it with (carried in rendezvous CTS
// messages). The buffer counts against the pinned-memory limit.
func (p *Port) RegisterRdmaTarget(buf []byte) (uint64, MemHandle, error) {
	h, err := p.mem.Register(int64(len(buf)))
	if err != nil {
		return 0, 0, err
	}
	p.nextRdmaKey++
	key := p.nextRdmaKey
	p.rdmaTargets[key] = buf
	return key, h, nil
}

// ReleaseRdmaTarget removes an RDMA target and unpins its buffer.
func (p *Port) ReleaseRdmaTarget(key uint64, h MemHandle) error {
	if _, ok := p.rdmaTargets[key]; !ok {
		return ErrUnknownRdmaKey
	}
	delete(p.rdmaTargets, key)
	return p.mem.Deregister(h)
}

// ConnectPeerRequest issues a non-blocking peer-to-peer connection request
// from vi to the VI at remote identified by disc (cf. VipConnectPeerRequest).
// The VI transitions to ViConnecting and later to ViConnected when the
// matching request from the other side is seen; completion is observed by
// polling vi.State or via WaitActivity.
func (p *Port) ConnectPeerRequest(vi *VI, remote Addr, disc uint64) error {
	if vi.port != p {
		return fmt.Errorf("via: VI belongs to a different port")
	}
	if vi.state != ViIdle {
		return fmt.Errorf("%w: ConnectPeerRequest in state %v", ErrBadState, vi.state)
	}
	p.owner.Compute(p.net.cost.ConnectLocalCost) // OS involvement
	vi.state = ViConnecting
	vi.remoteEp = remote.Ep
	vi.disc = disc
	p.stats.ConnReqsSent++
	p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnRequest,
		Rank: int32(p.ep), Peer: int32(remote.Ep), A: int64(disc)})

	// If the matching request already arrived, complete the rendezvous now.
	for i, req := range p.pendingIncoming {
		if req.From.Ep == remote.Ep && req.Disc == disc {
			p.pendingIncoming = append(p.pendingIncoming[:i], p.pendingIncoming[i+1:]...)
			p.establishAfter(vi, req.RemoteVi, p.net.cost.ConnectProcCost, true)
			return nil
		}
	}
	p.outgoing[connKey{remote.Ep, disc}] = vi
	p.net.sendFrame(p, remote.Ep, &wireMsg{
		kind: kindConnReq, srcEp: p.ep, srcVi: vi.id, disc: disc,
	}, 64)
	return nil
}

// CancelConnect abandons an outstanding peer-to-peer connection request:
// the VI returns to ViIdle with all held handshake state cleared, and the
// outgoing entry is removed so a late ACK or crossing REQ for the abandoned
// attempt is ignored. The connection managers' timeout/retry path uses this
// before re-issuing a request.
func (p *Port) CancelConnect(vi *VI) error {
	if vi.port != p {
		return fmt.Errorf("via: VI belongs to a different port")
	}
	if vi.state != ViConnecting {
		return fmt.Errorf("%w: CancelConnect in state %v", ErrBadState, vi.state)
	}
	delete(p.outgoing, connKey{vi.remoteEp, vi.disc})
	vi.resetHandshake()
	return nil
}

// NotifyAfter schedules an activity notification after d, waking the owner
// if it is blocked in WaitActivity by then. Retry deadlines use this so a
// parked process re-examines its handshakes when a timeout expires; the
// sticky activity flag makes a spurious notification harmless.
func (p *Port) NotifyAfter(d simnet.Duration) {
	p.net.sim.After(d, p.notifyActivity)
}

// ConnectPeerWait blocks until vi leaves ViConnecting, with a timeout
// (negative = infinite). It returns nil once connected.
func (p *Port) ConnectPeerWait(vi *VI, mode WaitMode, timeout simnet.Duration) error {
	deadline := simnet.Time(-1)
	if timeout >= 0 {
		deadline = p.owner.Now().Add(timeout)
	}
	for vi.state == ViConnecting {
		if deadline >= 0 {
			left := deadline.Sub(p.owner.Now())
			if left <= 0 || !p.WaitActivityTimeout(mode, left) {
				return ErrTimeout
			}
		} else {
			p.WaitActivity(mode)
		}
	}
	switch vi.state {
	case ViConnected:
		return nil
	case ViIdle:
		return ErrRejected
	default:
		return fmt.Errorf("%w: %v", ErrBadState, vi.state)
	}
}

// ConnectRequest is the client side of the client-server model: it issues a
// request and blocks until the server accepts or rejects.
func (p *Port) ConnectRequest(vi *VI, remote Addr, disc uint64, mode WaitMode) error {
	if err := p.ConnectPeerRequest(vi, remote, disc); err != nil {
		return err
	}
	return p.ConnectPeerWait(vi, mode, -1)
}

// PendingPeerRequests returns incoming, not-yet-matched connection requests.
// The on-demand progress engine polls this to notice peers that want to
// talk (the slice is live; use ConnectPeerRequest or Accept to consume).
func (p *Port) PendingPeerRequests() []*PeerRequest {
	return p.pendingIncoming
}

// ConnectWaitDisc blocks until an incoming request with the given
// discriminator arrives, and returns it without consuming it from any VI:
// the server side of the client-server model. MVICH's static client-server
// implementation waits for each expected discriminator *in rank order*,
// which is what serializes its startup (paper §5.6); callers reproduce that
// by invoking this with successive discriminators.
func (p *Port) ConnectWaitDisc(disc uint64, mode WaitMode, timeout simnet.Duration) (*PeerRequest, error) {
	deadline := simnet.Time(-1)
	if timeout >= 0 {
		deadline = p.owner.Now().Add(timeout)
	}
	for {
		for i, req := range p.pendingIncoming {
			if req.Disc == disc {
				p.pendingIncoming = append(p.pendingIncoming[:i], p.pendingIncoming[i+1:]...)
				return req, nil
			}
		}
		if deadline >= 0 {
			left := deadline.Sub(p.owner.Now())
			if left <= 0 || !p.WaitActivityTimeout(mode, left) {
				return nil, ErrTimeout
			}
		} else {
			p.WaitActivity(mode)
		}
	}
}

// Accept completes an incoming request on vi (server side).
func (p *Port) Accept(req *PeerRequest, vi *VI) error {
	if vi.port != p {
		return fmt.Errorf("via: VI belongs to a different port")
	}
	if vi.state != ViIdle {
		return fmt.Errorf("%w: Accept in state %v", ErrBadState, vi.state)
	}
	p.owner.Compute(p.net.cost.ConnectLocalCost)
	vi.state = ViConnecting
	vi.remoteEp = req.From.Ep
	vi.disc = req.Disc
	p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnAccept,
		Rank: int32(p.ep), Peer: int32(req.From.Ep), A: int64(req.Disc)})
	p.establishAfter(vi, req.RemoteVi, p.net.cost.ConnectProcCost, true)
	return nil
}

// Reject refuses an incoming request, consuming it from the pending list if
// it is still there.
func (p *Port) Reject(req *PeerRequest) {
	for i, r := range p.pendingIncoming {
		if r == req {
			p.pendingIncoming = append(p.pendingIncoming[:i], p.pendingIncoming[i+1:]...)
			break
		}
	}
	p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnReject,
		Rank: int32(p.ep), Peer: int32(req.From.Ep), A: int64(req.Disc)})
	p.net.sendFrame(p, req.From.Ep, &wireMsg{
		kind: kindConnNack, srcEp: p.ep, disc: req.Disc, dstVi: req.RemoteVi,
	}, 64)
}

// establishAfter moves vi to ViConnected after d, and optionally sends the
// ACK that lets the remote side complete.
func (p *Port) establishAfter(vi *VI, remoteVi int, d simnet.Duration, sendAck bool) {
	p.net.sim.After(d, func() {
		if vi.state != ViConnecting {
			return
		}
		vi.remoteVi = remoteVi
		vi.state = ViConnected
		p.stats.VisConnected++
		p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnUp,
			Rank: int32(p.ep), Peer: int32(vi.remoteEp), A: int64(vi.disc)})
		if sendAck {
			p.net.sendFrame(p, vi.remoteEp, &wireMsg{
				kind: kindConnAck, srcEp: p.ep, srcVi: vi.id, disc: vi.disc, dstVi: remoteVi,
			}, 64)
		}
		vi.deliverHeld()
		p.notifyActivity()
	})
}

// handleFrame is the fabric delivery callback: it books NIC receive service
// and then dispatches the wire message.
func (p *Port) handleFrame(f fabric.Frame) {
	m := f.Payload.(*wireMsg)
	if m.kind == kindOob {
		// Management-network traffic does not touch the VIA NIC.
		p.dispatch(m)
		return
	}
	deliverAt := p.net.serviceRx(p.node)
	p.net.sim.At(deliverAt, func() { p.dispatch(m) })
}

func (p *Port) dispatch(m *wireMsg) {
	if p.closed {
		return
	}
	switch m.kind {
	case kindConnReq:
		if f := p.net.faults; f != nil && f.refuseReq(m.srcEp, p.ep, p.net.sim.Now()) {
			// Injected refusal: the endpoint is (transiently) not accepting
			// connections; NACK so the initiator's retry machinery engages.
			p.net.ConnReqsRefused++
			p.net.sendFrame(p, m.srcEp, &wireMsg{
				kind: kindConnNack, srcEp: p.ep, disc: m.disc, dstVi: m.srcVi,
			}, 64)
			return
		}
		key := connKey{m.srcEp, m.disc}
		if vi, ok := p.outgoing[key]; ok && vi.state == ViConnecting {
			// Crossing peer requests: both sides establish.
			delete(p.outgoing, key)
			p.establishAfter(vi, m.srcVi, p.net.cost.ConnectProcCost, true)
			return
		}
		p.pendingIncoming = append(p.pendingIncoming, &PeerRequest{
			From: Addr{Ep: m.srcEp}, Disc: m.disc, RemoteVi: m.srcVi,
		})
		p.notifyActivity()
	case kindConnAck:
		key := connKey{m.srcEp, m.disc}
		if vi, ok := p.outgoing[key]; ok && vi.state == ViConnecting {
			delete(p.outgoing, key)
			vi.remoteVi = m.srcVi
			vi.state = ViConnected
			p.stats.VisConnected++
			p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvConnUp,
				Rank: int32(p.ep), Peer: int32(vi.remoteEp), A: int64(vi.disc)})
			vi.deliverHeld()
			p.notifyActivity()
		}
	case kindConnNack:
		key := connKey{m.srcEp, m.disc}
		if vi, ok := p.outgoing[key]; ok && vi.state == ViConnecting {
			delete(p.outgoing, key)
			// Full reset: remoteVi, the discriminator and any held
			// pre-connection frames must all go, or a reused VI could
			// match a descriptor from the rejected attempt.
			vi.resetHandshake()
			p.notifyActivity()
		}
	case kindDisc:
		if vi := p.lookupVi(m.dstVi); vi != nil && vi.state == ViConnected {
			vi.state = ViDisconnected
			vi.failPending(StatusDisconnected)
			p.Obs().Emit(obs.Event{T: p.NowNs(), Kind: obs.EvDisconnect,
				Rank: int32(p.ep), Peer: int32(m.srcEp)})
			p.notifyActivity()
		}
	case kindData:
		if vi := p.lookupVi(m.dstVi); vi != nil {
			vi.handleData(m)
		}
	case kindRdma:
		if buf, ok := p.rdmaTargets[m.rdmaKey]; ok {
			copy(buf[m.rdmaOff+m.offset:], m.data)
			p.stats.RdmaBytes += int64(len(m.data))
		} else {
			p.net.sim.Failf("via: RDMA write to unknown key %d at port %d", m.rdmaKey, p.ep)
		}
	case kindOob:
		p.oobQ = append(p.oobQ, oobMsg{from: Addr{Ep: m.srcEp}, data: m.data})
		p.notifyActivity()
	}
}

// SendOob delivers data to dst over the out-of-band management network
// (Ethernet/TCP in the real system) — used for job bootstrap, never for MPI
// traffic. It bypasses NIC service and link serialization.
func (p *Port) SendOob(dst Addr, data []byte) {
	cp := append([]byte(nil), data...)
	p.net.cluster.SendMgmt(fabric.Frame{
		Src: p.ep, Dst: dst.Ep, Size: len(cp),
		Payload: &wireMsg{kind: kindOob, srcEp: p.ep, data: cp},
	})
}

// RecvOob polls for an out-of-band message; ok is false when none is queued.
func (p *Port) RecvOob() (from Addr, data []byte, ok bool) {
	if len(p.oobQ) == 0 {
		return Addr{}, nil, false
	}
	m := p.oobQ[0]
	p.oobQ = p.oobQ[1:]
	return m.from, m.data, true
}

func (p *Port) lookupVi(id int) *VI {
	if id < 0 || id >= len(p.vis) {
		return nil
	}
	return p.vis[id]
}

// Close tears down all VIs on the port and marks it closed.
func (p *Port) Close() {
	if p.closed {
		return
	}
	for _, vi := range p.vis {
		if vi != nil && vi.state != ViClosed {
			vi.Close()
		}
	}
	p.closed = true
}

// VisUsed counts VIs that carried at least one data message in either
// direction — the numerator of the paper's resource-utilization metric.
func (p *Port) VisUsed() int {
	n := 0
	for _, vi := range p.vis {
		if vi != nil && (vi.usedTx || vi.usedRx) {
			n++
		}
	}
	return n
}
