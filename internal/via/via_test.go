package via

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"viampi/internal/simnet"
)

// env bundles a simulation and a VIA network for tests.
type env struct {
	sim *simnet.Sim
	net *Network
}

func newEnv(nodes, ppn int, cost CostModel) *env {
	s := simnet.New(1)
	fcfg := ClanFabric(nodes, ppn)
	fcfg.Nodes = nodes
	fcfg.ProcsPerNode = ppn
	n := NewNetwork(s, fcfg, cost)
	return &env{sim: s, net: n}
}

// pair spawns two processes each owning a port and runs their bodies.
func (e *env) pair(t *testing.T, a, b func(p *simnet.Proc, port *Port)) {
	t.Helper()
	e.sim.SetDeadline(simnet.Time(10 * simnet.Second))
	pa := make(chan *Port, 1)
	pb := make(chan *Port, 1)
	e.sim.Spawn("a", 0, func(p *simnet.Proc) {
		port, err := e.net.Open(p)
		if err != nil {
			t.Error(err)
			return
		}
		pa <- port
		a(p, port)
	})
	e.sim.Spawn("b", 0, func(p *simnet.Proc) {
		port, err := e.net.Open(p)
		if err != nil {
			t.Error(err)
			return
		}
		pb <- port
		b(p, port)
	})
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPeerToPeerConnectInitiatorFirst(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	var addrB Addr
	ready := false
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			for !ready {
				p.Sleep(simnet.Microsecond)
			}
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, addrB, 7); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			if vi.State() != ViConnected {
				t.Errorf("A state = %v", vi.State())
			}
		},
		func(p *simnet.Proc, port *Port) {
			addrB = port.Addr()
			ready = true
			// B discovers the incoming request by polling, then issues its
			// own peer request — the on-demand passive path.
			for len(port.PendingPeerRequests()) == 0 {
				port.WaitActivity(WaitPoll)
			}
			req := port.PendingPeerRequests()[0]
			if req.Disc != 7 {
				t.Errorf("disc = %d, want 7", req.Disc)
			}
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, req.From, req.Disc); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
			}
		})
}

func TestPeerToPeerConnectCrossing(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	addrs := make([]Addr, 2)
	got := 0
	body := func(me, other int) func(p *simnet.Proc, port *Port) {
		return func(p *simnet.Proc, port *Port) {
			addrs[me] = port.Addr()
			p.Sleep(10 * simnet.Microsecond) // both sides have published addrs
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, addrs[other], 99); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			got++
		}
	}
	e.pair(t, body(0, 1), body(1, 0))
	if got != 2 {
		t.Fatalf("connected sides = %d, want 2", got)
	}
}

func TestClientServerConnectAndReject(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	var serverAddr Addr
	haveAddr := false
	e.pair(t,
		func(p *simnet.Proc, port *Port) { // server
			serverAddr = port.Addr()
			haveAddr = true
			req, err := port.ConnectWaitDisc(1, WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.Accept(req, vi); err != nil {
				t.Error(err)
				return
			}
			// Second request gets rejected.
			req2, err := port.ConnectWaitDisc(2, WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			port.Reject(req2)
		},
		func(p *simnet.Proc, port *Port) { // client
			for !haveAddr {
				p.Sleep(simnet.Microsecond)
			}
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectRequest(vi, serverAddr, 1, WaitPoll); err != nil {
				t.Errorf("first connect: %v", err)
				return
			}
			vi2, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectRequest(vi2, serverAddr, 2, WaitPoll); err != ErrRejected {
				t.Errorf("second connect err = %v, want ErrRejected", err)
			}
			if vi2.State() != ViIdle {
				t.Errorf("rejected VI state = %v, want idle", vi2.State())
			}
		})
}

// establishDataPair wires two processes with a connected VI pair and then
// runs the two bodies.
func establishDataPair(t *testing.T, e *env, a, b func(p *simnet.Proc, port *Port, vi *VI)) {
	t.Helper()
	addrs := make([]Addr, 2)
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			addrs[0] = port.Addr()
			p.Sleep(10 * simnet.Microsecond)
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, addrs[1], 5); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			a(p, port, vi)
		},
		func(p *simnet.Proc, port *Port) {
			addrs[1] = port.Addr()
			p.Sleep(10 * simnet.Microsecond)
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, addrs[0], 5); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			b(p, port, vi)
		})
}

func TestDataTransferIntegrity(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	msg := []byte("hello, virtual interface architecture")
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: append([]byte(nil), msg...), Len: len(msg)}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
				return
			}
			if got, err := vi.SendWait(WaitPoll, -1); err != nil || got.Status != StatusSuccess {
				t.Errorf("send completion: %v %v", got, err)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, 1024)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
				return
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if got.XferLen != len(msg) || !bytes.Equal(got.Buf[:got.XferLen], msg) {
				t.Errorf("received %q, want %q", got.Buf[:got.XferLen], msg)
			}
		})
}

func TestFragmentationLargeMessage(t *testing.T) {
	cost := ClanCost()
	cost.MTU = 1000
	e := newEnv(2, 1, cost)
	msg := make([]byte, 12345)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: msg, Len: len(msg)}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
			}
			if _, err := vi.SendWait(WaitPoll, -1); err != nil {
				t.Error(err)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, 20000)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if got.XferLen != len(msg) || !bytes.Equal(got.Buf[:len(msg)], msg) {
				t.Error("fragmented message corrupted")
			}
		})
}

func TestSenderBufferReuseAfterCompletion(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			buf := []byte("first")
			d := &Descriptor{Buf: buf, Len: 5}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
			}
			if _, err := vi.SendWait(WaitPoll, -1); err != nil {
				t.Error(err)
			}
			copy(buf, "XXXXX") // scribble after local completion, before delivery
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, 16)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if string(got.Buf[:5]) != "first" {
				t.Errorf("got %q: sender scribble visible to receiver", got.Buf[:5])
			}
		})
}

func TestZeroLengthMessage(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: nil, Len: 0}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
			}
			if _, err := vi.SendWait(WaitPoll, -1); err != nil {
				t.Error(err)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: make([]byte, 8)}
			if err := vi.PostRecv(d); err != nil {
				t.Error(err)
			}
			got, err := vi.RecvWait(WaitPoll, -1)
			if err != nil {
				t.Error(err)
				return
			}
			if got.XferLen != 0 {
				t.Errorf("XferLen = %d, want 0", got.XferLen)
			}
		})
}

func TestSendOnUnconnectedViDiscarded(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			d := &Descriptor{Buf: []byte("lost"), Len: 4}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
				return
			}
			if d.Status != StatusNotConnected {
				t.Errorf("status = %v, want not-connected", d.Status)
			}
			if got := vi.SendDone(); got != d {
				t.Error("discarded send not reaped in FIFO order")
			}
		},
		func(p *simnet.Proc, port *Port) {})
	if e.net.DiscardedSends != 1 {
		t.Fatalf("DiscardedSends = %d, want 1", e.net.DiscardedSends)
	}
}

func TestRecvWithoutDescriptorBreaksConnection(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			d := &Descriptor{Buf: []byte("boom"), Len: 4}
			if err := vi.PostSend(d); err != nil {
				t.Error(err)
			}
			p.Sleep(simnet.D(1e6)) // let it arrive
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			p.Sleep(simnet.D(1e6))
			if vi.State() != ViError {
				t.Errorf("state = %v, want error", vi.State())
			}
		})
	if e.net.DroppedNoDescriptor != 1 {
		t.Fatalf("DroppedNoDescriptor = %d, want 1", e.net.DroppedNoDescriptor)
	}
}

func TestMessageFIFOOrder(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	const n = 50
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			for i := 0; i < n; i++ {
				d := &Descriptor{Buf: []byte{byte(i)}, Len: 1}
				if err := vi.PostSend(d); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < n; i++ {
				if _, err := vi.SendWait(WaitPoll, -1); err != nil {
					t.Error(err)
					return
				}
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			for i := 0; i < n; i++ {
				if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 4)}); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < n; i++ {
				got, err := vi.RecvWait(WaitPoll, -1)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Buf[0] != byte(i) {
					t.Errorf("message %d carried %d: order violated", i, got.Buf[0])
					return
				}
			}
		})
}

func TestRdmaWrite(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	target := make([]byte, 64)
	var key uint64
	keyReady := false
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			for !keyReady {
				p.Sleep(simnet.Microsecond)
			}
			d := &Descriptor{Buf: []byte("rdma-payload"), Len: 12, RdmaKey: key, RdmaOffset: 8}
			if err := vi.PostRdmaWrite(d); err != nil {
				t.Error(err)
				return
			}
			if _, err := vi.SendWait(WaitPoll, -1); err != nil {
				t.Error(err)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			k, h, err := port.RegisterRdmaTarget(target)
			if err != nil {
				t.Error(err)
				return
			}
			key, keyReady = k, true
			p.Sleep(simnet.D(2e6))
			if string(target[8:20]) != "rdma-payload" {
				t.Errorf("target = %q", target[:24])
			}
			if err := port.ReleaseRdmaTarget(k, h); err != nil {
				t.Error(err)
			}
		})
	if e.net.ports[1].Stats().RdmaBytes != 12 {
		t.Fatalf("RdmaBytes = %d, want 12", e.net.ports[1].Stats().RdmaBytes)
	}
}

func TestCompletionQueueAcrossVIs(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	addrs := make([]Addr, 2)
	e.pair(t,
		func(p *simnet.Proc, port *Port) { // sender with two VIs
			addrs[0] = port.Addr()
			p.Sleep(10 * simnet.Microsecond)
			var vis []*VI
			for disc := uint64(0); disc < 2; disc++ {
				vi, err := port.CreateVi()
				if err != nil {
					t.Error(err)
					return
				}
				if err := port.ConnectPeerRequest(vi, addrs[1], disc); err != nil {
					t.Error(err)
					return
				}
				vis = append(vis, vi)
			}
			for _, vi := range vis {
				if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
					t.Error(err)
					return
				}
			}
			for i, vi := range vis {
				d := &Descriptor{Buf: []byte{byte(i + 10)}, Len: 1}
				if err := vi.PostSend(d); err != nil {
					t.Error(err)
					return
				}
			}
		},
		func(p *simnet.Proc, port *Port) { // receiver reaps through one CQ
			addrs[1] = port.Addr()
			cq := NewCQ(port)
			p.Sleep(10 * simnet.Microsecond)
			for {
				reqs := port.PendingPeerRequests()
				if len(reqs) == 2 {
					break
				}
				port.WaitActivity(WaitPoll)
			}
			for len(port.PendingPeerRequests()) > 0 {
				req := port.PendingPeerRequests()[0]
				vi, err := port.CreateViCQ(cq)
				if err != nil {
					t.Error(err)
					return
				}
				if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 4)}); err != nil {
					t.Error(err)
					return
				}
				if err := port.ConnectPeerRequest(vi, req.From, req.Disc); err != nil {
					t.Error(err)
					return
				}
			}
			seen := map[byte]bool{}
			for i := 0; i < 2; i++ {
				vi, d, err := cq.Wait(WaitPoll, -1)
				if err != nil || vi == nil {
					t.Errorf("cq wait: %v", err)
					return
				}
				seen[d.Buf[0]] = true
			}
			if !seen[10] || !seen[11] {
				t.Errorf("cq saw %v, want both 10 and 11", seen)
			}
		})
}

func TestMaxVIsLimit(t *testing.T) {
	cost := ClanCost()
	cost.MaxVIsPerPort = 3
	e := newEnv(2, 1, cost)
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			for i := 0; i < 3; i++ {
				if _, err := port.CreateVi(); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := port.CreateVi(); err == nil {
				t.Error("expected VI limit error")
			}
		},
		func(p *simnet.Proc, port *Port) {})
}

func TestPinnedMemoryLimit(t *testing.T) {
	m := NewMemoryRegistry(1000)
	h1, err := m.Register(600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(500); err == nil {
		t.Fatal("expected pinned limit error")
	}
	if m.Pinned() != 600 || m.PeakPinned() != 600 {
		t.Fatalf("pinned=%d peak=%d", m.Pinned(), m.PeakPinned())
	}
	if err := m.Deregister(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(900); err != nil {
		t.Fatal(err)
	}
	if m.PeakPinned() != 900 {
		t.Fatalf("peak = %d, want 900", m.PeakPinned())
	}
	if err := m.Deregister(12345); err == nil {
		t.Fatal("expected unknown-handle error")
	}
}

// pingpong measures one-way latency between two connected VIs with extraVIs
// additional idle endpoints open on each port.
func pingpongLatency(t *testing.T, cost CostModel, extraVIs int) simnet.Duration {
	t.Helper()
	e := newEnv(2, 1, cost)
	const iters = 20
	var oneWay simnet.Duration
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			for i := 0; i < extraVIs; i++ {
				if _, err := port.CreateVi(); err != nil {
					t.Error(err)
					return
				}
			}
			p.Sleep(simnet.Millisecond)
			for i := 0; i < iters+4; i++ {
				if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 8)}); err != nil {
					t.Error(err)
					return
				}
			}
			p.Sleep(simnet.Millisecond)
			start := p.Now()
			for i := 0; i < iters; i++ {
				if err := vi.PostSend(&Descriptor{Buf: []byte{1, 2, 3, 4}, Len: 4}); err != nil {
					t.Error(err)
					return
				}
				if _, err := vi.SendWait(WaitPoll, -1); err != nil {
					t.Error(err)
					return
				}
				if _, err := vi.RecvWait(WaitPoll, -1); err != nil {
					t.Error(err)
					return
				}
			}
			oneWay = p.Now().Sub(start) / (2 * iters)
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			for i := 0; i < extraVIs; i++ {
				if _, err := port.CreateVi(); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < iters+4; i++ {
				if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 8)}); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < iters; i++ {
				if _, err := vi.RecvWait(WaitPoll, -1); err != nil {
					t.Error(err)
					return
				}
				if err := vi.PostSend(&Descriptor{Buf: []byte{9, 9, 9, 9}, Len: 4}); err != nil {
					t.Error(err)
					return
				}
			}
		})
	return oneWay
}

// TestBviaLatencyGrowsWithVIs is the miniature of the paper's Figure 1: on
// Berkeley VIA, opening more (even idle) VIs raises latency; on cLAN it must
// not.
func TestBviaLatencyGrowsWithVIs(t *testing.T) {
	lowB := pingpongLatency(t, BviaCost(), 2)
	highB := pingpongLatency(t, BviaCost(), 60)
	if highB <= lowB {
		t.Errorf("BVIA latency with 60 extra VIs (%v) not above 2 extra VIs (%v)", highB, lowB)
	}
	lowC := pingpongLatency(t, ClanCost(), 2)
	highC := pingpongLatency(t, ClanCost(), 60)
	if highC != lowC {
		t.Errorf("cLAN latency changed with VI count: %v vs %v", lowC, highC)
	}
}

func TestSpinwaitWakeupPenalty(t *testing.T) {
	// Receiver waits in WaitSpin for a message that arrives long after the
	// spin budget: on cLAN it must pay the wakeup penalty.
	run := func(mode WaitMode) simnet.Duration {
		e := newEnv(2, 1, ClanCost())
		var waited simnet.Duration
		establishDataPair(t, e,
			func(p *simnet.Proc, port *Port, vi *VI) {
				p.Sleep(simnet.D(5e6)) // 5ms, far beyond the 20µs spin budget
				if err := vi.PostSend(&Descriptor{Buf: []byte{1}, Len: 1}); err != nil {
					t.Error(err)
				}
			},
			func(p *simnet.Proc, port *Port, vi *VI) {
				if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 4)}); err != nil {
					t.Error(err)
					return
				}
				start := p.Now()
				if _, err := vi.RecvWait(mode, -1); err != nil {
					t.Error(err)
					return
				}
				waited = p.Now().Sub(start)
			})
		return waited
	}
	poll := run(WaitPoll)
	spin := run(WaitSpin)
	wake := ClanCost().WaitWakeup
	if spin < poll+wake {
		t.Errorf("spinwait %v not >= polling %v + wakeup %v", spin, poll, wake)
	}
}

func TestDisconnectPropagates(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			vi.Close()
			if vi.State() != ViClosed {
				t.Errorf("local state = %v", vi.State())
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			pending := &Descriptor{Buf: make([]byte, 4)}
			if err := vi.PostRecv(pending); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(simnet.D(2e6))
			if vi.State() != ViDisconnected {
				t.Errorf("remote state = %v, want disconnected", vi.State())
			}
			if pending.Status != StatusDisconnected {
				t.Errorf("pending recv status = %v", pending.Status)
			}
		})
}

func TestOpenVIAccounting(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			v1, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err = port.CreateVi(); err != nil {
				t.Error(err)
				return
			}
			if got := e.net.OpenVIsOnNode(port.Node()); got != 2 {
				t.Errorf("open VIs = %d, want 2", got)
			}
			v1.Close()
			if got := e.net.OpenVIsOnNode(port.Node()); got != 1 {
				t.Errorf("open VIs after close = %d, want 1", got)
			}
			if port.Stats().VisCreated != 2 {
				t.Errorf("VisCreated = %d, want 2", port.Stats().VisCreated)
			}
		},
		func(p *simnet.Proc, port *Port) {})
}

func TestVisUsedCountsOnlyTraffic(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	establishDataPair(t, e,
		func(p *simnet.Proc, port *Port, vi *VI) {
			if _, err := port.CreateVi(); err != nil { // idle extra VI
				t.Error(err)
				return
			}
			if err := vi.PostSend(&Descriptor{Buf: []byte{1}, Len: 1}); err != nil {
				t.Error(err)
				return
			}
			if _, err := vi.SendWait(WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			if port.VisUsed() != 1 {
				t.Errorf("VisUsed = %d, want 1", port.VisUsed())
			}
			if port.Stats().VisCreated != 2 {
				t.Errorf("VisCreated = %d, want 2", port.Stats().VisCreated)
			}
		},
		func(p *simnet.Proc, port *Port, vi *VI) {
			if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 4)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := vi.RecvWait(WaitPoll, -1); err != nil {
				t.Error(err)
			}
		})
}

// Property: any sequence of message sizes is delivered intact and in order,
// across both cost models.
func TestPropertyMessagesIntactInOrder(t *testing.T) {
	f := func(sizes []uint16, useBvia bool) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		cost := ClanCost()
		if useBvia {
			cost = BviaCost()
		}
		cost.MTU = 2048 // force fragmentation for larger sizes
		e := newEnv(2, 1, cost)
		payloads := make([][]byte, len(sizes))
		for i, sz := range sizes {
			b := make([]byte, int(sz)%10000)
			for j := range b {
				b[j] = byte(i + j*13)
			}
			payloads[i] = b
		}
		ok := true
		establishDataPair(t, e,
			func(p *simnet.Proc, port *Port, vi *VI) {
				for _, pl := range payloads {
					if err := vi.PostSend(&Descriptor{Buf: pl, Len: len(pl)}); err != nil {
						ok = false
						return
					}
					if _, err := vi.SendWait(WaitPoll, -1); err != nil {
						ok = false
						return
					}
				}
			},
			func(p *simnet.Proc, port *Port, vi *VI) {
				for range payloads {
					if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 10010)}); err != nil {
						ok = false
						return
					}
				}
				for i := range payloads {
					d, err := vi.RecvWait(WaitPoll, -1)
					if err != nil || d.XferLen != len(payloads[i]) ||
						!bytes.Equal(d.Buf[:d.XferLen], payloads[i]) {
						ok = false
						return
					}
				}
			})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDataRacingConnectionHandshake is the regression test for the held
// pre-connection frame path: the adopting side (B) completes its handshake
// and transmits while the initiator (A) is still waiting for the ACK plus
// its own processing delay. A's VI must hold the early frames and deliver
// them in order at establishment — never drop them.
func TestDataRacingConnectionHandshake(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	var addrB Addr
	ready := false
	var got []byte
	e.pair(t,
		func(p *simnet.Proc, port *Port) { // A: initiator
			for !ready {
				p.Sleep(simnet.Microsecond)
			}
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 4; i++ {
				if err := vi.PostRecv(&Descriptor{Buf: make([]byte, 16)}); err != nil {
					t.Error(err)
					return
				}
			}
			if err := port.ConnectPeerRequest(vi, addrB, 3); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			for len(got) < 2 {
				if d, err := vi.RecvWait(WaitPoll, -1); err != nil {
					t.Error(err)
					return
				} else {
					got = append(got, d.Buf[0])
				}
			}
		},
		func(p *simnet.Proc, port *Port) { // B: adopter, sends immediately
			addrB = port.Addr()
			ready = true
			for len(port.PendingPeerRequests()) == 0 {
				port.WaitActivity(WaitPoll)
			}
			req := port.PendingPeerRequests()[0]
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerRequest(vi, req.From, req.Disc); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, -1); err != nil {
				t.Error(err)
				return
			}
			// Fire both messages the instant our side is up — before A's ACK
			// round-trip completes.
			for i := byte(1); i <= 2; i++ {
				if err := vi.PostSend(&Descriptor{Buf: []byte{i}, Len: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2] (held frames replayed in order)", got)
	}
}

func TestConnectPeerWaitTimeout(t *testing.T) {
	e := newEnv(2, 1, ClanCost())
	e.pair(t,
		func(p *simnet.Proc, port *Port) {
			vi, err := port.CreateVi()
			if err != nil {
				t.Error(err)
				return
			}
			// Request to a port that never answers.
			if err := port.ConnectPeerRequest(vi, Addr{Ep: 1}, 42); err != nil {
				t.Error(err)
				return
			}
			if err := port.ConnectPeerWait(vi, WaitPoll, simnet.D(1e6)); err != ErrTimeout {
				t.Errorf("err = %v, want timeout", err)
			}
		},
		func(p *simnet.Proc, port *Port) {
			p.Sleep(simnet.D(2e6)) // alive but silent
		})
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []fmt.Stringer{
		StatusPending, StatusSuccess, StatusNotConnected, StatusDisconnected, StatusErrorState,
		ViIdle, ViConnecting, ViConnected, ViError, ViDisconnected, ViClosed,
		WaitPoll, WaitSpin,
	} {
		if s.String() == "" {
			t.Errorf("empty String() for %#v", s)
		}
	}
}
