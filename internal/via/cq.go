package via

import "viampi/internal/simnet"

// CQ is a completion queue. VIs created with CreateViCQ deliver their receive
// completions here in arrival order, so a host can reap completions across
// many VIs with a single poll instead of scanning every VI (cf. VipCQDone /
// VipCQWait). The MPI progress engine uses one CQ per process for receives.
type CQ struct {
	port    *Port
	entries []cqEntry
}

type cqEntry struct {
	vi *VI
	d  *Descriptor
}

// NewCQ creates a completion queue on port.
func NewCQ(port *Port) *CQ { return &CQ{port: port} }

func (q *CQ) push(vi *VI, d *Descriptor) {
	q.entries = append(q.entries, cqEntry{vi, d})
}

// Len returns the number of unreaped completions.
func (q *CQ) Len() int { return len(q.entries) }

// Done polls the CQ: it returns the oldest completion, removing both the CQ
// entry and the descriptor from its VI's receive queue, or (nil, nil).
func (q *CQ) Done() (*VI, *Descriptor) {
	q.port.ChargeHost(q.port.net.cost.PollOverhead)
	if len(q.entries) == 0 {
		return nil, nil
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	// Detach the descriptor from its VI's posted queue.
	for i, d := range e.vi.recvQ {
		if d == e.d {
			e.vi.recvQ = append(e.vi.recvQ[:i], e.vi.recvQ[i+1:]...)
			break
		}
	}
	return e.vi, e.d
}

// Wait blocks until a completion is available (cf. VipCQWait). A negative
// timeout waits forever.
func (q *CQ) Wait(mode WaitMode, timeout simnet.Duration) (*VI, *Descriptor, error) {
	deadline := simnet.Time(-1)
	if timeout >= 0 {
		deadline = q.port.owner.Now().Add(timeout)
	}
	for {
		if vi, d := q.Done(); d != nil {
			return vi, d, nil
		}
		if deadline >= 0 {
			left := deadline.Sub(q.port.owner.Now())
			if left <= 0 || !q.port.WaitActivityTimeout(mode, left) {
				return nil, nil, ErrTimeout
			}
		} else {
			q.port.WaitActivity(mode)
		}
	}
}
