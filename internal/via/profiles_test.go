package via

import "testing"

// TestDevicePersonalities locks the invariants that distinguish the three
// device models — the properties every experiment's interpretation rests on.
func TestDevicePersonalities(t *testing.T) {
	clan, bvia, ib := ClanCost(), BviaCost(), IbCost()

	// Only Berkeley VIA pays per-open-VI NIC service (firmware doorbell scan).
	if clan.NicTxPerVI != 0 || clan.NicRxPerVI != 0 {
		t.Error("cLAN must have hardware doorbells (no per-VI cost)")
	}
	if ib.NicTxPerVI != 0 || ib.NicRxPerVI != 0 {
		t.Error("IB must have hardware doorbells (no per-VI cost)")
	}
	if bvia.NicTxPerVI <= 0 || bvia.NicRxPerVI <= 0 {
		t.Error("BVIA must scan doorbells per open VI")
	}

	// Only Berkeley VIA implements wait as a spin.
	if bvia.WaitIsSpin != true || clan.WaitIsSpin || ib.WaitIsSpin {
		t.Error("wait personalities wrong")
	}
	if clan.WaitWakeup <= clan.SpinBudget() {
		t.Error("cLAN wakeup penalty must exceed the spin budget (the barrier cascade)")
	}

	// Base NIC service orders the devices' latency: ib < clan < bvia.
	if !(ib.NicTxBase < clan.NicTxBase && clan.NicTxBase < bvia.NicTxBase) {
		t.Errorf("NIC base ordering broken: ib=%v clan=%v bvia=%v",
			ib.NicTxBase, clan.NicTxBase, bvia.NicTxBase)
	}

	// Fabric bandwidth ordering: ib > clan > bvia.
	cf, bf, iff := ClanFabric(2, 1), BviaFabric(2, 1), IbFabric(2, 1)
	if !(iff.BandwidthBps > cf.BandwidthBps && cf.BandwidthBps > bf.BandwidthBps) {
		t.Error("bandwidth ordering broken")
	}

	// Connection setup always involves the OS: same order of magnitude on
	// every device — the paper's point that faster fabrics don't fix it.
	for _, c := range []CostModel{clan, bvia, ib} {
		if c.ConnectLocalCost < 100*1000 { // >= 100 µs
			t.Errorf("%s: connection setup %v implausibly cheap", c.Name, c.ConnectLocalCost)
		}
		if c.MaxVIsPerPort <= 0 || c.MaxPinnedBytes <= 0 || c.MTU <= 0 {
			t.Errorf("%s: capacities must be bounded", c.Name)
		}
	}
}
