package via

import "fmt"

// MemHandle identifies a registered memory region.
type MemHandle int64

// MemoryRegistry accounts for registered (pinned) memory on one port.
//
// VIA requires every communication buffer to be registered, which pins it in
// physical memory; the paper's scalability argument rests on the pinned
// footprint of the static mechanism (120 kB of buffers per VI in MVICH).
// The registry enforces the per-process limit and tracks the peak, which the
// experiment harness reports in Table 2's resource-usage columns.
type MemoryRegistry struct {
	limit   int64
	cur     int64
	peak    int64
	next    MemHandle
	regions map[MemHandle]int64
}

// NewMemoryRegistry creates a registry with the given pinned-byte limit.
// A non-positive limit means unlimited.
func NewMemoryRegistry(limit int64) *MemoryRegistry {
	return &MemoryRegistry{limit: limit, regions: make(map[MemHandle]int64)}
}

// Register pins size bytes and returns a handle, or ErrPinnedLimit.
func (m *MemoryRegistry) Register(size int64) (MemHandle, error) {
	if size < 0 {
		return 0, fmt.Errorf("via: negative registration size %d", size)
	}
	if m.limit > 0 && m.cur+size > m.limit {
		return 0, fmt.Errorf("%w: %d pinned + %d requested > limit %d",
			ErrPinnedLimit, m.cur, size, m.limit)
	}
	m.next++
	h := m.next
	m.regions[h] = size
	m.cur += size
	if m.cur > m.peak {
		m.peak = m.cur
	}
	return h, nil
}

// Deregister unpins a region. Unknown handles are an error.
func (m *MemoryRegistry) Deregister(h MemHandle) error {
	size, ok := m.regions[h]
	if !ok {
		return fmt.Errorf("via: deregister of unknown handle %d", h)
	}
	delete(m.regions, h)
	m.cur -= size
	return nil
}

// Pinned returns currently pinned bytes.
func (m *MemoryRegistry) Pinned() int64 { return m.cur }

// PeakPinned returns the high-water mark of pinned bytes.
func (m *MemoryRegistry) PeakPinned() int64 { return m.peak }

// Limit returns the configured limit (0 = unlimited).
func (m *MemoryRegistry) Limit() int64 { return m.limit }

// Regions returns the number of live registrations.
func (m *MemoryRegistry) Regions() int { return len(m.regions) }
