// Package via emulates the Virtual Interface Architecture (VIA) over the
// simulated cluster fabric.
//
// It implements the subset of the VI Provider Library (VIPL 1.0) semantics
// that MPI implementations depend on: VIs with paired send/receive work
// queues, descriptor-based transfers with pre-posted receives, completion
// queues, registered (pinned) memory with per-process limits, RDMA writes,
// and both connection models — client-server (VipConnectWait/Request/Accept)
// and peer-to-peer (VipConnectPeer*). Sends posted to an unconnected VI are
// discarded with an error status, exactly the hazard the paper's pre-posted
// send FIFO exists to avoid. Receives arriving on a VI with no posted
// descriptor put the VI into an error state (VIA reliable-delivery
// semantics).
//
// Two device personalities are provided as cost models. The cLAN model has
// hardware doorbells (per-message cost independent of the number of open
// VIs) and an interrupt-based blocking wait. The Berkeley VIA (BVIA) model
// mimics LANai firmware that polls every open VI's doorbell in round-robin,
// so per-message NIC service time grows linearly with the number of open VIs
// on the node — the effect in the paper's Figure 1 — and its "wait" is just
// an infinite poll.
package via

import (
	"viampi/internal/fabric"
	"viampi/internal/simnet"
)

// CostModel captures the timing and capacity personality of a VIA provider.
// All durations are virtual time.
type CostModel struct {
	Name string

	// Host CPU costs (charged to the calling process, usually as debt that
	// is flushed before the process blocks).
	PostOverhead    simnet.Duration // posting one descriptor (doorbell write)
	PollOverhead    simnet.Duration // one Done() poll
	HostCopyPerByte simnet.Duration // host memcpy cost per byte (MPI-level copies)

	// NIC service costs. PerVI terms model firmware that scans every open
	// VI's doorbell per packet (Berkeley VIA); zero for hardware doorbells.
	NicTxBase  simnet.Duration
	NicTxPerVI simnet.Duration
	NicRxBase  simnet.Duration
	NicRxPerVI simnet.Duration

	// Connection management costs.
	CreateViCost     simnet.Duration // driver call to create a VI endpoint
	ConnectLocalCost simnet.Duration // OS involvement per connect/accept call
	ConnectProcCost  simnet.Duration // target-side processing before the ACK

	// Completion waiting. If WaitIsSpin, blocking waits are implemented as a
	// poll loop (BVIA) and WaitWakeup never applies. Otherwise a wait that
	// actually blocks pays WaitWakeup (interrupt + reschedule) when
	// satisfied. SpinPollCost*spincount is the budget a spinwait burns
	// before falling back to a blocking wait.
	WaitIsSpin       bool
	WaitWakeup       simnet.Duration
	SpinPollCost     simnet.Duration
	DefaultSpinCount int

	// Capacities.
	MaxVIsPerPort  int   // hard per-process VI limit (NIC/driver resource)
	MaxPinnedBytes int64 // registered-memory limit per process
	MTU            int   // max bytes per data frame; larger sends fragment

	// Fixed wire overhead added to every frame (headers/CRC).
	FrameHeaderBytes int
}

// ClanCost returns the GigaNet cLAN-like cost model (hardware doorbells,
// interrupt-based wait).
func ClanCost() CostModel {
	return CostModel{
		Name:             "clan",
		PostOverhead:     300 * simnet.Nanosecond,
		PollOverhead:     60 * simnet.Nanosecond,
		HostCopyPerByte:  simnet.Duration(1), // ~1 GB/s host copy
		NicTxBase:        2500 * simnet.Nanosecond,
		NicTxPerVI:       0,
		NicRxBase:        2500 * simnet.Nanosecond,
		NicRxPerVI:       0,
		CreateViCost:     40 * simnet.Microsecond,
		ConnectLocalCost: 180 * simnet.Microsecond,
		ConnectProcCost:  60 * simnet.Microsecond,
		WaitIsSpin:       false,
		// A blocking VipRecvWait on cLAN sleeps on an interrupt; waking
		// costs the interrupt path plus a reschedule. The wakeup penalty
		// exceeds the 100-poll spin budget, so one blocked process pushes
		// its partners' waits past their budgets too — the self-sustaining
		// effect behind the paper's "spinwait is no good for barrier
		// operation", while waits that fit the budget (small-message
		// pingpong) never pay anything.
		WaitWakeup:       32 * simnet.Microsecond,
		SpinPollCost:     200 * simnet.Nanosecond,
		DefaultSpinCount: 100,
		MaxVIsPerPort:    1024,
		MaxPinnedBytes:   512 << 20,
		MTU:              65536,
		FrameHeaderBytes: 32,
	}
}

// BviaCost returns the Berkeley VIA-on-Myrinet-like cost model (firmware
// doorbell polling: per-message cost grows with open VIs; wait is a spin).
func BviaCost() CostModel {
	return CostModel{
		Name:             "bvia",
		PostOverhead:     500 * simnet.Nanosecond,
		PollOverhead:     80 * simnet.Nanosecond,
		HostCopyPerByte:  simnet.Duration(1),
		NicTxBase:        9 * simnet.Microsecond,
		NicTxPerVI:       500 * simnet.Nanosecond,
		NicRxBase:        9 * simnet.Microsecond,
		NicRxPerVI:       500 * simnet.Nanosecond,
		CreateViCost:     60 * simnet.Microsecond,
		ConnectLocalCost: 250 * simnet.Microsecond,
		ConnectProcCost:  80 * simnet.Microsecond,
		WaitIsSpin:       true,
		WaitWakeup:       0,
		SpinPollCost:     250 * simnet.Nanosecond,
		DefaultSpinCount: 100,
		MaxVIsPerPort:    256,
		MaxPinnedBytes:   256 << 20,
		MTU:              32768,
		FrameHeaderBytes: 40,
	}
}

// IbCost returns a 2002-era InfiniBand (Mellanox InfiniHost 4x) cost model.
// The paper's conclusion argues the connection-scalability problem carries
// over to InfiniBand — queue pairs play the role of VIs, with hardware
// doorbells (no per-QP scan cost) but the same per-connection OS setup and
// per-QP pinned receive buffering. This personality exists to demonstrate
// that claim (the ext-ib experiment).
func IbCost() CostModel {
	return CostModel{
		Name:             "ib",
		PostOverhead:     150 * simnet.Nanosecond,
		PollOverhead:     40 * simnet.Nanosecond,
		HostCopyPerByte:  simnet.Duration(1) / 2,
		NicTxBase:        1500 * simnet.Nanosecond,
		NicTxPerVI:       0,
		NicRxBase:        1500 * simnet.Nanosecond,
		NicRxPerVI:       0,
		CreateViCost:     30 * simnet.Microsecond,
		ConnectLocalCost: 130 * simnet.Microsecond,
		ConnectProcCost:  45 * simnet.Microsecond,
		WaitIsSpin:       false,
		WaitWakeup:       20 * simnet.Microsecond,
		SpinPollCost:     150 * simnet.Nanosecond,
		DefaultSpinCount: 100,
		MaxVIsPerPort:    16384,
		MaxPinnedBytes:   1 << 30,
		MTU:              65536,
		FrameHeaderBytes: 48,
	}
}

// IbFabric returns the fabric configuration for the InfiniBand personality:
// 4x links (~700 MB/s effective), sub-microsecond switch hops.
func IbFabric(nodes, procsPerNode int) fabric.Config {
	return fabric.Config{
		Nodes:           nodes,
		ProcsPerNode:    procsPerNode,
		BandwidthBps:    700e6,
		WireLatency:     600 * simnet.Nanosecond,
		SwitchLatency:   200 * simnet.Nanosecond,
		SameNodeLatency: 900 * simnet.Nanosecond,
		MgmtLatency:     120 * simnet.Microsecond,
	}
}

// ClanFabric returns the fabric configuration matching the paper's cLAN
// testbed shape: cLAN5300 switch, ~110 MB/s links.
func ClanFabric(nodes, procsPerNode int) fabric.Config {
	return fabric.Config{
		Nodes:           nodes,
		ProcsPerNode:    procsPerNode,
		BandwidthBps:    113e6,
		WireLatency:     1200 * simnet.Nanosecond,
		SwitchLatency:   500 * simnet.Nanosecond,
		SameNodeLatency: 1500 * simnet.Nanosecond,
		MgmtLatency:     120 * simnet.Microsecond,
	}
}

// BviaFabric returns the fabric configuration for the Myrinet/LANai 7 side:
// fast wires, NIC-limited bandwidth.
func BviaFabric(nodes, procsPerNode int) fabric.Config {
	return fabric.Config{
		Nodes:           nodes,
		ProcsPerNode:    procsPerNode,
		BandwidthBps:    72e6,
		WireLatency:     900 * simnet.Nanosecond,
		SwitchLatency:   400 * simnet.Nanosecond,
		SameNodeLatency: 1500 * simnet.Nanosecond,
		MgmtLatency:     120 * simnet.Microsecond,
	}
}

// SpinBudget returns the virtual time a spinwait burns polling before it
// falls back to a blocking wait.
func (c CostModel) SpinBudget() simnet.Duration {
	return simnet.Duration(c.DefaultSpinCount) * c.SpinPollCost
}
