package via

import (
	"fmt"

	"viampi/internal/simnet"
)

// VI is a Virtual Interface endpoint: a bidirectional communication endpoint
// with a send work queue and a receive work queue (cf. VIPL's VIP_VI_HANDLE).
// A VI must be connected to exactly one remote VI before data can flow.
type VI struct {
	port *Port
	id   int

	state    ViState
	remoteEp int
	remoteVi int
	disc     uint64

	sendQ []*Descriptor // posted sends, FIFO; completed in order
	recvQ []*Descriptor // posted receives, FIFO; consumed in arrival order

	recvCQ *CQ

	// receive reassembly state for the in-flight message
	rxCur *Descriptor
	rxGot int

	// preConnQ holds data frames that arrived while the local side of the
	// handshake was still completing. A peer may legitimately consider the
	// connection established and transmit slightly before our own
	// transition fires; the provider holds such frames and delivers them at
	// establishment (reliable delivery, as real VIA hardware guarantees).
	preConnQ []*wireMsg

	seqOut uint64
	seqIn  uint64

	usedTx bool
	usedRx bool
}

// ID returns the VI's id, unique within its port.
func (vi *VI) ID() int { return vi.id }

// State returns the connection state.
func (vi *VI) State() ViState { return vi.state }

// RemoteAddr returns the connected peer's port address (valid once
// connected).
func (vi *VI) RemoteAddr() Addr { return Addr{Ep: vi.remoteEp} }

// Port returns the owning port.
func (vi *VI) Port() *Port { return vi.port }

// Disc returns the discriminator the connection was established under.
func (vi *VI) Disc() uint64 { return vi.disc }

// SendQueueLen returns the number of posted, unreaped send descriptors.
func (vi *VI) SendQueueLen() int { return len(vi.sendQ) }

// RecvQueueLen returns the number of posted, unreaped receive descriptors.
func (vi *VI) RecvQueueLen() int { return len(vi.recvQ) }

// PostRecv posts a receive descriptor. VIA requires receives to be posted
// before the matching message arrives; posting is legal in any pre-connected
// or connected state.
func (vi *VI) PostRecv(d *Descriptor) error {
	switch vi.state {
	case ViIdle, ViConnecting, ViConnected:
	default:
		return fmt.Errorf("%w: PostRecv in state %v", ErrBadState, vi.state)
	}
	d.vi = vi
	d.Status = StatusPending
	d.XferLen = 0
	vi.port.ChargeHost(vi.port.net.cost.PostOverhead)
	vi.recvQ = append(vi.recvQ, d)
	return nil
}

// PostSend posts a send descriptor carrying d.Buf[:d.Len]. Per the VIA
// semantics the paper leans on, a send posted to an unconnected VI is
// *discarded*: it completes immediately with StatusNotConnected and no data
// is ever transferred. This is why the on-demand design must queue
// pre-connection sends above the VIA layer.
func (vi *VI) PostSend(d *Descriptor) error {
	d.vi = vi
	d.rdma = false
	vi.port.ChargeHost(vi.port.net.cost.PostOverhead)
	if vi.state != ViConnected {
		d.Status = StatusNotConnected
		vi.port.net.DiscardedSends++
		vi.sendQ = append(vi.sendQ, d)
		return nil
	}
	d.Status = StatusPending
	vi.sendQ = append(vi.sendQ, d)
	vi.transmit(d, d.Buf[:d.Len], &wireMsg{
		kind: kindData, dstVi: vi.remoteVi, seq: vi.seqOut,
	})
	vi.seqOut++
	vi.usedTx = true
	vi.port.stats.MsgsSent++
	vi.port.stats.BytesSent += int64(d.Len)
	return nil
}

// PostRdmaWrite posts a one-sided RDMA write of d.Buf[:d.Len] to the remote
// target (d.RdmaKey, d.RdmaOffset). The remote side is not notified and no
// remote receive descriptor is consumed.
func (vi *VI) PostRdmaWrite(d *Descriptor) error {
	if vi.state != ViConnected {
		return fmt.Errorf("%w: PostRdmaWrite in state %v", ErrBadState, vi.state)
	}
	d.vi = vi
	d.rdma = true
	d.Status = StatusPending
	vi.port.ChargeHost(vi.port.net.cost.PostOverhead)
	vi.sendQ = append(vi.sendQ, d)
	vi.transmit(d, d.Buf[:d.Len], &wireMsg{
		kind: kindRdma, dstVi: vi.remoteVi, rdmaKey: d.RdmaKey, rdmaOff: d.RdmaOffset,
	})
	vi.port.stats.BytesSent += int64(d.Len)
	return nil
}

// transmit fragments data into MTU-sized frames, pushes them through NIC
// service and the fabric, and completes d when the NIC has accepted the last
// fragment. proto carries the kind-specific header fields.
func (vi *VI) transmit(d *Descriptor, data []byte, proto *wireMsg) {
	net := vi.port.net
	mtu := net.cost.MTU
	total := len(data)
	// Capture the payload at post time (hardware would DMA from the pinned
	// buffer before completion; completing before delivery means the sender
	// may reuse its buffer, so we must copy).
	snapshot := make([]byte, total)
	copy(snapshot, data)

	var lastTx simnet.Time
	off := 0
	for {
		end := off + mtu
		if end > total {
			end = total
		}
		m := &wireMsg{
			kind: proto.kind, srcEp: vi.port.ep, srcVi: vi.id, dstVi: proto.dstVi,
			seq: proto.seq, offset: off, total: total, data: snapshot[off:end],
			rdmaKey: proto.rdmaKey, rdmaOff: proto.rdmaOff,
		}
		lastTx = net.sendFrame(vi.port, vi.remoteEp, m, end-off)
		off = end
		if off >= total {
			break
		}
	}
	net.sim.At(lastTx, func() {
		if d.Status == StatusPending {
			d.Status = StatusSuccess
			d.XferLen = total
			vi.port.notifyActivity()
		}
	})
}

// handleData processes an arriving data frame (scheduler context, after NIC
// receive service).
func (vi *VI) handleData(m *wireMsg) {
	p := vi.port
	if vi.state == ViConnecting {
		// The peer completed its side of the handshake first and already
		// transmitted; hold the frame until our transition fires.
		vi.preConnQ = append(vi.preConnQ, m)
		return
	}
	if vi.state != ViConnected {
		// Data raced with teardown; reliable delivery would break the
		// connection, which it already is. Drop.
		return
	}
	if vi.rxCur == nil {
		if m.seq != vi.seqIn {
			p.net.sim.Failf("via: out-of-order message on vi %d@%d: seq %d want %d",
				vi.id, p.ep, m.seq, vi.seqIn)
			return
		}
		if m.offset != 0 {
			p.net.sim.Failf("via: fragment before message start on vi %d@%d", vi.id, p.ep)
			return
		}
		// Consume the oldest still-pending receive descriptor (completed
		// ones may linger in the queue until the host reaps them).
		var next *Descriptor
		for _, d := range vi.recvQ {
			if !d.Done() {
				next = d
				break
			}
		}
		if next == nil {
			// VIA reliable delivery: arriving data with no posted receive
			// descriptor breaks the connection.
			p.net.DroppedNoDescriptor++
			vi.enterError()
			return
		}
		if m.total > len(next.Buf) {
			p.net.DroppedNoDescriptor++
			vi.enterError()
			return
		}
		vi.rxCur = next
		vi.rxGot = 0
	}
	if m.offset != vi.rxGot {
		p.net.sim.Failf("via: fragment gap on vi %d@%d: offset %d want %d",
			vi.id, p.ep, m.offset, vi.rxGot)
		return
	}
	copy(vi.rxCur.Buf[m.offset:], m.data)
	vi.rxGot += len(m.data)
	if vi.rxGot >= m.total {
		d := vi.rxCur
		vi.rxCur = nil
		vi.rxGot = 0
		vi.seqIn++
		d.Status = StatusSuccess
		d.XferLen = m.total
		vi.usedRx = true
		p.stats.MsgsRecv++
		p.stats.BytesRecv += int64(m.total)
		if vi.recvCQ != nil {
			vi.recvCQ.push(vi, d)
		}
		p.notifyActivity()
	}
}

// deliverHeld replays frames that arrived before the connection transition
// completed, in arrival order. Called exactly once at establishment.
func (vi *VI) deliverHeld() {
	held := vi.preConnQ
	vi.preConnQ = nil
	for _, m := range held {
		vi.handleData(m)
	}
}

// enterError transitions the VI to the error state and fails all pending
// descriptors, mirroring VIA's reliable-delivery teardown.
func (vi *VI) enterError() {
	vi.state = ViError
	vi.failPending(StatusErrorState)
	vi.port.notifyActivity()
}

// failPending completes every pending descriptor on both queues with status s.
func (vi *VI) failPending(s Status) {
	for _, d := range vi.sendQ {
		if !d.Done() {
			d.Status = s
		}
	}
	for _, d := range vi.recvQ {
		if !d.Done() {
			d.Status = s
		}
	}
	vi.rxCur = nil
	vi.rxGot = 0
}

// SendDone polls the send queue: if the oldest posted send has completed it
// is removed and returned, else nil (cf. VipSendDone).
func (vi *VI) SendDone() *Descriptor {
	vi.port.ChargeHost(vi.port.net.cost.PollOverhead)
	if len(vi.sendQ) > 0 && vi.sendQ[0].Done() {
		d := vi.sendQ[0]
		vi.sendQ = vi.sendQ[1:]
		return d
	}
	return nil
}

// RecvDone polls the receive queue (cf. VipRecvDone). VIs bound to a
// completion queue must be reaped through the CQ instead.
func (vi *VI) RecvDone() *Descriptor {
	if vi.recvCQ != nil {
		vi.port.net.sim.Failf("via: RecvDone on CQ-bound vi %d@%d", vi.id, vi.port.ep)
		return nil
	}
	vi.port.ChargeHost(vi.port.net.cost.PollOverhead)
	return vi.recvDone()
}

func (vi *VI) recvDone() *Descriptor {
	if len(vi.recvQ) > 0 && vi.recvQ[0].Done() {
		d := vi.recvQ[0]
		vi.recvQ = vi.recvQ[1:]
		return d
	}
	return nil
}

// SendWait blocks until a send descriptor completes and returns it
// (cf. VipSendWait). A negative timeout waits forever.
func (vi *VI) SendWait(mode WaitMode, timeout simnet.Duration) (*Descriptor, error) {
	return vi.wait(mode, timeout, vi.SendDone)
}

// RecvWait blocks until a receive descriptor completes and returns it
// (cf. VipRecvWait).
func (vi *VI) RecvWait(mode WaitMode, timeout simnet.Duration) (*Descriptor, error) {
	if vi.recvCQ != nil {
		return nil, fmt.Errorf("%w: RecvWait on CQ-bound VI", ErrBadState)
	}
	return vi.wait(mode, timeout, func() *Descriptor {
		vi.port.ChargeHost(vi.port.net.cost.PollOverhead)
		return vi.recvDone()
	})
}

func (vi *VI) wait(mode WaitMode, timeout simnet.Duration, poll func() *Descriptor) (*Descriptor, error) {
	deadline := simnet.Time(-1)
	if timeout >= 0 {
		deadline = vi.port.owner.Now().Add(timeout)
	}
	for {
		if d := poll(); d != nil {
			return d, nil
		}
		if vi.state == ViError || vi.state == ViDisconnected || vi.state == ViClosed {
			return nil, fmt.Errorf("%w: %v", ErrBadState, vi.state)
		}
		if deadline >= 0 {
			left := deadline.Sub(vi.port.owner.Now())
			if left <= 0 || !vi.port.WaitActivityTimeout(mode, left) {
				return nil, ErrTimeout
			}
		} else {
			vi.port.WaitActivity(mode)
		}
	}
}

// resetHandshake returns a VI to the idle state, clearing every piece of
// held handshake state — remote endpoint, remote VI, discriminator, and any
// pre-connection frames from the failed attempt — so a reused VI can never
// match a stale descriptor or replay data from a connection that never
// established. Posted receive descriptors survive: the pre-posted eager
// pool must still be there when the request is re-issued.
func (vi *VI) resetHandshake() {
	vi.state = ViIdle
	vi.remoteEp = -1
	vi.remoteVi = -1
	vi.disc = 0
	vi.preConnQ = nil
}

// Close disconnects (notifying the peer) and destroys the VI, releasing its
// NIC slot. Pending descriptors complete with StatusDisconnected.
func (vi *VI) Close() {
	if vi.state == ViClosed {
		return
	}
	switch vi.state {
	case ViConnected:
		vi.port.net.sendFrame(vi.port, vi.remoteEp, &wireMsg{
			kind: kindDisc, srcEp: vi.port.ep, srcVi: vi.id, dstVi: vi.remoteVi,
		}, 32)
	case ViConnecting:
		// Abandon the outstanding request so a late ACK or crossing REQ
		// cannot resurrect a VI that no longer exists.
		delete(vi.port.outgoing, connKey{vi.remoteEp, vi.disc})
	case ViIdle, ViError, ViDisconnected, ViClosed:
		// Nothing on the wire to retract: idle never sent, error/disconnect
		// already tore the connection down, and closed returned above.
	}
	vi.failPending(StatusDisconnected)
	vi.state = ViClosed
	vi.port.net.nodes[vi.port.node].openVIs--
	// Like enterError: a waiter parked in WaitActivity must observe the
	// descriptors that just failed, or it sleeps forever.
	vi.port.notifyActivity()
}
