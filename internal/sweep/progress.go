package sweep

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ProgressFunc receives one rendered progress line per event. The runner
// calls it with lines like "figures/ext-init: 3/10 done, last
// ext-init/np=1024/on-demand, eta 12.4s" and a final "N/N done in 3.2s".
type ProgressFunc func(line string, final bool)

// Stderr returns a ProgressFunc that rewrites one line in place on
// os.Stderr, or nil — meaning no progress at all — when quiet is set or
// stderr is not a terminal (a redirected log should hold artifacts, not
// carriage returns).
func Stderr(quiet bool) ProgressFunc {
	if quiet || !IsTerminal(os.Stderr) {
		return nil
	}
	return Writer(os.Stderr)
}

// Writer returns a ProgressFunc that rewrites one line in place on w using
// carriage returns, ending with a newline on the final line.
func Writer(w io.Writer) ProgressFunc {
	var width int
	return func(line string, final bool) {
		pad := width - len(line)
		if pad < 0 {
			pad = 0
		}
		if width = len(line); final {
			fmt.Fprintf(w, "\r%s%*s\n", line, pad, "")
			return
		}
		fmt.Fprintf(w, "\r%s%*s", line, pad, "")
	}
}

// IsTerminal reports whether f is attached to a character device — the
// stdlib-only stand-in for isatty, good enough to keep progress lines out
// of redirected logs and CI output.
func IsTerminal(f *os.File) bool {
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// tracker is the runner's progress state: a done counter plus the
// wall-clock start the ETA extrapolates from. Workers bump it on every
// completion, so the bookkeeping half (advance) is registered as a
// zero-allocation hot path in the vet policy — it runs inside the timed
// region of the SweepWallClock rail and must not add GC pressure to the
// measurement — while the fmt-heavy rendering half only runs when a
// progress sink is attached.
type tracker struct {
	mu       sync.Mutex
	label    string
	total    int
	done     int
	start    time.Time
	progress ProgressFunc
}

func newTracker(label string, total int, progress ProgressFunc) *tracker {
	t := &tracker{label: label, total: total, progress: progress, start: time.Now()}
	if t.label == "" {
		t.label = "sweep"
	}
	return t
}

// advance records one finished job. Kept free of formatting (and of
// allocation — see Policy.HotPaths) so batches run with progress disabled
// pay nothing here but a counter bump under an uncontended lock.
func (t *tracker) advance() {
	t.mu.Lock()
	t.done++
	t.mu.Unlock()
}

// render emits the progress line for the just-finished job, if a sink is
// attached. The done/total/ETA snapshot is taken under the lock; the write
// itself is serialized by the same lock so concurrent completions cannot
// interleave partial lines.
func (t *tracker) render(lastID string) {
	if t.progress == nil {
		return
	}
	t.mu.Lock()
	done, total := t.done, t.total
	eta := t.etaLocked()
	t.progress(fmt.Sprintf("%s: %d/%d done, last %s, eta %.1fs",
		t.label, done, total, lastID, eta.Seconds()), false)
	t.mu.Unlock()
}

// etaLocked extrapolates remaining wall time from the completed fraction.
func (t *tracker) etaLocked() time.Duration {
	if t.done == 0 {
		return 0
	}
	elapsed := time.Since(t.start)
	return elapsed / time.Duration(t.done) * time.Duration(t.total-t.done)
}

// finish emits the deterministic final line: every count in it is a pure
// function of the job list (the elapsed time is wall clock, flagged as
// such by its position after "in").
func (t *tracker) finish() {
	if t.progress == nil {
		return
	}
	t.mu.Lock()
	t.progress(fmt.Sprintf("%s: %d/%d done in %.1fs",
		t.label, t.done, t.total, time.Since(t.start).Seconds()), true)
	t.mu.Unlock()
}
