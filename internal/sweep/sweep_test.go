package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResultsInJobOrder seeds jobs that finish in deliberately scrambled
// order (later indices sleep less) and asserts the merged results come back
// indexed exactly like the job list, for several worker counts.
func TestResultsInJobOrder(t *testing.T) {
	const n = 32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			ID: fmt.Sprintf("job%d", i),
			Run: func() (int, error) {
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 2, 8, 64} {
		rs := Run(Options{Workers: workers}, jobs)
		if len(rs) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(rs), n)
		}
		for i, r := range rs {
			if r.ID != fmt.Sprintf("job%d", i) || r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: result[%d] = {%s %d %v}, want {job%d %d nil}",
					workers, i, r.ID, r.Value, r.Err, i, i*i)
			}
		}
	}
}

// TestPanicRecoveredPerJob seeds one panicking job in the middle of the
// batch: it must come back as an error naming the job ID, and every other
// job must still run to completion.
func TestPanicRecoveredPerJob(t *testing.T) {
	const n = 9
	var ran atomic.Int32
	jobs := make([]Job[string], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[string]{
			ID: fmt.Sprintf("exp/np=%d/on-demand", 1<<i),
			Run: func() (string, error) {
				if i == 4 {
					panic("descriptor pool exhausted")
				}
				ran.Add(1)
				return "ok", nil
			},
		}
	}
	rs := Run(Options{Workers: 3}, jobs)
	if got := ran.Load(); got != n-1 {
		t.Fatalf("%d healthy jobs ran, want %d (a panic must not kill the batch)", got, n-1)
	}
	for i, r := range rs {
		if i == 4 {
			if r.Err == nil {
				t.Fatal("panicking job reported no error")
			}
			msg := r.Err.Error()
			if !strings.Contains(msg, "exp/np=16/on-demand") || !strings.Contains(msg, "descriptor pool exhausted") {
				t.Fatalf("panic error does not name the job and cause: %v", r.Err)
			}
			if !strings.Contains(msg, "sweep_test.go") {
				t.Fatalf("panic error carries no stack: %v", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != "ok" {
			t.Fatalf("healthy job %d: {%q %v}", i, r.Value, r.Err)
		}
	}

	// Values reports the panic as the first (and only) error.
	if _, err := Values(rs); err == nil || !strings.Contains(err.Error(), "exp/np=16/on-demand") {
		t.Fatalf("Values error = %v, want the tagged panic", err)
	}
}

// TestFirstErrorByIndex checks Values picks the error of the lowest job
// index, not whichever failing job completed first.
func TestFirstErrorByIndex(t *testing.T) {
	jobs := []Job[int]{
		{ID: "a", Run: func() (int, error) {
			time.Sleep(2 * time.Millisecond) // finishes after b fails
			return 0, errors.New("first by index")
		}},
		{ID: "b", Run: func() (int, error) { return 0, errors.New("first to finish") }},
		{ID: "c", Run: func() (int, error) { return 3, nil }},
	}
	_, err := Values(Run(Options{Workers: 3}, jobs))
	if err == nil || err.Error() != "first by index" {
		t.Fatalf("Values error = %v, want the job-order first error", err)
	}
}

// TestWorkerBound proves the pool never runs more than Workers jobs at
// once, and that Workers<=0 still runs everything.
func TestWorkerBound(t *testing.T) {
	const workers, n = 3, 24
	var mu sync.Mutex
	live, peak := 0, 0
	jobs := make([]Job[struct{}], n)
	for i := range jobs {
		jobs[i] = Job[struct{}]{ID: fmt.Sprint(i), Run: func() (struct{}, error) {
			mu.Lock()
			live++
			if live > peak {
				peak = live
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			live--
			mu.Unlock()
			return struct{}{}, nil
		}}
	}
	Run(Options{Workers: workers}, jobs)
	if peak > workers {
		t.Fatalf("pool peaked at %d concurrent jobs, bound is %d", peak, workers)
	}
	if rs := Run(Options{Workers: 0}, jobs); len(rs) != n {
		t.Fatalf("Workers=0 ran %d jobs, want %d", len(rs), n)
	}
	if rs := Run[struct{}](Options{}, nil); len(rs) != 0 {
		t.Fatalf("empty batch returned %d results", len(rs))
	}
}

// TestProgressLines drives the runner with a recording sink: every line
// must carry the label and a done/total count, the counts must be
// monotonic, and the final line must be the deterministic N/N summary.
func TestProgressLines(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	var finals int
	sink := func(line string, final bool) {
		mu.Lock()
		lines = append(lines, line)
		if final {
			finals++
		}
		mu.Unlock()
	}
	const n = 5
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{ID: fmt.Sprintf("cell%d", i), Run: func() (int, error) { return i, nil }}
	}
	Run(Options{Workers: 2, Progress: sink, Label: "grid"}, jobs)
	if len(lines) != n+1 {
		t.Fatalf("got %d progress lines, want %d (one per completion + final)", len(lines), n+1)
	}
	prev := 0
	for _, l := range lines[:n] {
		var done, total int
		var label string
		if _, err := fmt.Sscanf(l, "%s %d/%d done,", &label, &done, &total); err != nil {
			t.Fatalf("unparseable progress line %q: %v", l, err)
		}
		if label != "grid:" || total != n || done < prev {
			t.Fatalf("malformed progress line %q (prev done %d)", l, prev)
		}
		prev = done
	}
	if finals != 1 || !strings.HasPrefix(lines[n], fmt.Sprintf("grid: %d/%d done in ", n, n)) {
		t.Fatalf("final line %q not the N/N summary (finals=%d)", lines[n], finals)
	}
}

// TestWriterRewritesInPlace pins the carriage-return discipline: interim
// lines never emit a newline, shrinking lines are blanked out, and the
// final line ends the stream with exactly one newline.
func TestWriterRewritesInPlace(t *testing.T) {
	var buf strings.Builder
	w := Writer(&buf)
	w("a long interim line", false)
	w("short", false)
	w("done", true)
	out := buf.String()
	if strings.Count(out, "\n") != 1 || !strings.HasSuffix(out, "\n") {
		t.Fatalf("writer output %q must end with its only newline", out)
	}
	if !strings.Contains(out, "\rshort              ") {
		t.Fatalf("writer did not blank the shrinking line: %q", out)
	}
}
