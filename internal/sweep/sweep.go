// Package sweep is the deterministic batch-parallel runner for independent
// whole-simulation jobs: the figure grids, the ext-init np sweep, the fault
// matrix, the dual-run determinism harness — anything shaped like "run N
// hermetic simulations and render their results in a fixed order".
//
// The contract is strict so every artifact stays byte-identical regardless
// of worker count or host scheduling:
//
//   - Jobs are an indexed list. Each job is hermetic: a pure function of its
//     own inputs with no shared mutable state (a simulated run is a pure
//     function of its Config, so grid cells qualify by construction).
//   - Results are collected by index and returned in job order. Completion
//     order never leaks into the output.
//   - A panicking job is recovered into an error tagged with its job ID;
//     the remaining jobs run to completion.
//
// This package is the one sanctioned home for naked goroutines, sync
// primitives, and wall-clock reads outside simulated time (see
// internal/analysis/policy.go): the nondeterminism lives entirely between
// job start and result collection, and the index-ordered merge erases it.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Job is one hermetic unit of a batch: an identified computation that may
// run on any worker at any time relative to its siblings.
type Job[T any] struct {
	// ID names the job in panic errors and the progress line — for an
	// experiment cell, the experiment ID plus its grid parameters
	// ("ext-init/np=1024/on-demand").
	ID string
	// Run produces the job's result. It must not touch state shared with
	// other jobs; a panic is recovered into Result.Err.
	Run func() (T, error)
}

// Result pairs one job's output with its error, in job order.
type Result[T any] struct {
	ID    string
	Value T
	Err   error
}

// Options tunes a batch run.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0). The
	// result is identical for every value — only wall time changes.
	Workers int
	// Progress, when non-nil, receives a jobs-done/total + current-job +
	// ETA line, rewritten in place (drivers pass Stderr(quiet), which is
	// nil when stderr is not a terminal or quiet is set).
	Progress ProgressFunc
	// Label names the batch in the progress line ("figures/ext-init").
	Label string
}

// workers resolves the pool size.
func (o Options) workers(jobs int) int {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes every job over a bounded worker pool and returns the results
// indexed exactly like jobs. All jobs run even when some fail; per-job
// panics become errors. Run never returns an error itself — inspect the
// per-job errors, or use Values for first-error-by-index semantics.
func Run[T any](opt Options, jobs []Job[T]) []Result[T] {
	results := make([]Result[T], len(jobs))
	for i, j := range jobs {
		results[i].ID = j.ID
	}
	if len(jobs) == 0 {
		return results
	}
	tr := newTracker(opt.Label, len(jobs), opt.Progress)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := opt.workers(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i].Value, results[i].Err = runOne(jobs[i])
				tr.advance()
				tr.render(jobs[i].ID)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	tr.finish()
	return results
}

// runOne executes a single job, converting a panic into an error that names
// the job so one exploding grid cell cannot take down the whole figure run
// with a bare stack.
func runOne[T any](j Job[T]) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job %s: panic: %v\n%s", j.ID, r, stack())
		}
	}()
	return j.Run()
}

// stack captures the panicking goroutine's stack, trimmed to a sane size.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Values unwraps a result list into the values in job order and the first
// error in job order (not completion order, so the reported failure is
// deterministic). Plain job errors pass through as the job's Run returned
// them; panic-converted errors already carry the job ID.
func Values[T any](rs []Result[T]) ([]T, error) {
	vals := make([]T, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			return nil, r.Err
		}
		vals[i] = r.Value
	}
	return vals, nil
}
