package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refEvent mirrors what the seed implementation guaranteed: events fire in
// (at, seq) order, where seq is global scheduling order. The reference
// order is computed with a stable sort over timestamps, which is exactly
// FIFO-by-seq at equal timestamps.
type refEvent struct {
	at Time
	id int
}

// TestEventOrderGoldenFIFO schedules randomized (seeded) batches of events
// with heavy timestamp collisions — from before Run, from callbacks at the
// current instant, and from callbacks for the future — and asserts the
// firing order matches the reference: sort by timestamp, ties broken by
// scheduling order. This is the contract the heap rewrite must preserve
// across both the 4-ary heap and the same-instant ready ring.
func TestEventOrderGoldenFIFO(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := New(seed)
			var fired []int
			var ref []refEvent
			id := 0
			// Pre-Run batch: clustered timestamps over a small range.
			for i := 0; i < 200; i++ {
				at := Time(rng.Intn(17)) * 10
				me := id
				id++
				ref = append(ref, refEvent{at: at, id: me})
				s.At(at, func() { fired = append(fired, me) })
			}
			// In-flight batches: a fraction of events schedule follow-ups,
			// some at the current instant (ready-ring path), some ahead
			// (heap path). The reference must be built in the same order the
			// simulation schedules them, so follow-ups are generated from a
			// scripted second phase instead: one seeder event per decade
			// that schedules a same-instant and a future event.
			for d := 0; d < 10; d++ {
				at := Time(d) * 10
				sameID, futureID := id, id+1
				id += 2
				ref = append(ref, refEvent{at: at, id: -1}) // the seeder itself
				s.At(at, func() {
					fired = append(fired, -1)
					s.At(s.Now(), func() { fired = append(fired, sameID) })
					s.After(15, func() { fired = append(fired, futureID) })
				})
			}
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			// Build the golden order with a reference scheduler: a queue of
			// (at, insertion order) pairs processed smallest-first with a
			// stable sort, replaying the same nested scheduling script.
			golden := goldenOrder(ref)
			if len(fired) != len(golden) {
				t.Fatalf("fired %d events, golden has %d", len(fired), len(golden))
			}
			for i := range golden {
				if fired[i] != golden[i] {
					t.Fatalf("order diverges at %d: got %d, want %d\nfired:  %v\ngolden: %v",
						i, fired[i], golden[i], fired, golden)
				}
			}
		})
	}
}

// goldenOrder replays the scheduling script of TestEventOrderGoldenFIFO on
// a reference scheduler: a plain slice, stable-sorted by timestamp (which
// preserves insertion order at equal timestamps — the seed implementation's
// (at, seq) contract). Seeder events (id == -1) insert a same-instant event
// and a +15 event at the moment they fire, exactly like the simulation.
func goldenOrder(ref []refEvent) []int {
	type qe struct {
		at  Time
		ins int
		id  int
		// seeders carry the ids their firing inserts
		sameID, futureID int
		seeder           bool
	}
	var q []qe
	ins := 0
	nextID := 0
	for _, r := range ref {
		if r.id >= 0 {
			nextID = r.id + 1
		}
	}
	// Reconstruct the id assignment: the test assigns sameID/futureID
	// sequentially after the pre-Run batch, one pair per seeder in order.
	seederPair := 0
	for _, r := range ref {
		e := qe{at: r.at, ins: ins, id: r.id}
		if r.id == -1 {
			e.seeder = true
			e.sameID = nextID + 2*seederPair
			e.futureID = nextID + 2*seederPair + 1
			seederPair++
		}
		q = append(q, e)
		ins++
	}
	var out []int
	for len(q) > 0 {
		sort.SliceStable(q, func(i, j int) bool {
			if q[i].at != q[j].at {
				return q[i].at < q[j].at
			}
			return q[i].ins < q[j].ins
		})
		e := q[0]
		q = q[1:]
		out = append(out, e.id)
		if e.seeder {
			q = append(q, qe{at: e.at, ins: ins, id: e.sameID})
			ins++
			q = append(q, qe{at: e.at + 15, ins: ins, id: e.futureID})
			ins++
		}
	}
	return out
}

// TestHeapFuzzAgainstReferenceSort drives heapPush/heapPop directly with
// randomized batches and asserts pops come out in exactly (at, seq) order —
// the reference being a plain sort of the same set.
func TestHeapFuzzAgainstReferenceSort(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New(seed)
		n := 1 + rng.Intn(500)
		var ref []event
		for i := 0; i < n; i++ {
			ev := event{at: Time(rng.Intn(50)), seq: uint64(i)}
			ref = append(ref, ev)
			s.heapPush(ev)
			// Interleave pops to exercise mixed push/pop sequences.
			if rng.Intn(4) == 0 && len(s.heap) > 0 {
				got := s.heapPop()
				// Remove the minimum from ref.
				mi := 0
				for j := range ref {
					if ref[j].before(&ref[mi]) {
						mi = j
					}
				}
				want := ref[mi]
				ref = append(ref[:mi], ref[mi+1:]...)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("seed %d: interleaved pop = (%d,%d), want (%d,%d)",
						seed, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].before(&ref[j]) })
		for i := range ref {
			got := s.heapPop()
			if got.at != ref[i].at || got.seq != ref[i].seq {
				t.Fatalf("seed %d: pop %d = (%d,%d), want (%d,%d)",
					seed, i, got.at, got.seq, ref[i].at, ref[i].seq)
			}
		}
		if len(s.heap) != 0 {
			t.Fatalf("seed %d: heap not drained", seed)
		}
	}
}

// TestCondSignalReleasesWaiterSlot pins the memory-retention fix: after
// Signal pops a waiter, the backing array slot must no longer reference the
// process, so long-lived conds on evict/credit paths don't pin finished
// processes.
func TestCondSignalReleasesWaiterSlot(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), 0, func(p *Proc) { c.Wait(p) })
	}
	s.Spawn("signaler", 10, func(p *Proc) {
		c.Signal()
		if c.head != 1 {
			t.Errorf("head = %d, want 1", c.head)
		}
		if c.waiters[0] != nil {
			t.Error("popped waiter slot still references the process")
		}
		if c.Len() != 2 {
			t.Errorf("Len = %d, want 2", c.Len())
		}
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCondCompaction checks the mostly-dead backing array is compacted and
// that FIFO order survives compaction.
func TestCondCompaction(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	const n = 48
	var order []int
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), Time(i), func(p *Proc) {
			c.Wait(p)
			order = append(order, i)
		})
	}
	s.Spawn("signaler", Time(n), func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Signal()
			p.Sleep(Microsecond) // let the woken waiter run and record itself
			if c.head >= 32 {
				t.Errorf("after signal %d: head = %d, compaction never ran", i, c.head)
			}
		}
		if c.Len() != 0 {
			t.Errorf("Len = %d after signalling everyone", c.Len())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if order[i] != i {
			t.Fatalf("FIFO order broken across compaction: %v", order)
		}
	}
}
