package simnet

import (
	"testing"
)

// BenchmarkSimCore is the scheduler's steady-state cycle: a process arms a
// timer, parks, the scheduler pops the wake event and context-switches the
// process back in. One iteration = one Sleep cycle (timer push, heap pop,
// dispatch, park) — the unit every MPI call, progress poll, and device
// event in this repo is built from. The acceptance bar is 0 allocs/op; the
// events/s metric is the repo's core speed limit.
func BenchmarkSimCore(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	s.Spawn("w", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(s.EventCount)/sec, "events/s")
	}
}

// BenchmarkSimCoreParkWake measures the cross-process wake path: two
// processes ping-ponging Park/Wake at the same instant, no timers involved.
// One iteration = one full round trip (two wakes, two context switches).
func BenchmarkSimCoreParkWake(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	var a, c *Proc
	a = s.Spawn("a", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Park()
			c.Wake()
		}
	})
	c = s.Spawn("c", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Wake()
			p.Park()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(s.EventCount)/sec, "events/s")
	}
}

// BenchmarkSimCoreEventChurn measures raw heap throughput with no processes:
// a ladder of 64 pre-bound callbacks, each rescheduling itself at a distinct
// stride, keeps the heap at depth 64 while events push and pop in steady
// state. One iteration = one event dispatched.
func BenchmarkSimCoreEventChurn(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	fired := 0
	const ladder = 64
	for i := 0; i < ladder; i++ {
		stride := Duration(1 + i)
		var fn func()
		fn = func() {
			fired++
			if fired+ladder <= b.N {
				s.After(stride, fn)
			}
		}
		s.After(stride, fn)
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(s.EventCount)/sec, "events/s")
	}
}
