// Package simnet provides a deterministic discrete-event simulator with
// cooperative, goroutine-backed processes.
//
// The simulator owns a virtual clock. Exactly one goroutine — either the
// scheduler or a single simulated process — runs at any instant, so simulated
// code needs no locking and every run with the same seed is bit-identical.
// Processes advance the clock only through blocking primitives (Sleep,
// Compute, Park*); everything else executes in zero virtual time.
//
// This package is the substrate for the VIA device models: NIC and wire
// behaviour is expressed as events, while MPI ranks are processes.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"viampi/internal/obs"
)

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely from
// time.Duration for readability at call sites.
type Duration int64

// Handy duration units in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// D converts a time.Duration into a virtual Duration.
func D(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a virtual Duration back into a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return time.Duration(d).String() }

// Seconds reports the timestamp as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros reports the timestamp as floating-point microseconds since start.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add offsets a timestamp by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq), which is what makes runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a single-threaded discrete-event simulation.
// Create one with New, add processes with Spawn, then call Run.
type Sim struct {
	now      Time
	seq      uint64
	events   eventHeap
	procs    []*Proc
	yield    chan struct{} // processes hand control back to the scheduler here
	running  bool
	live     int // processes spawned and not yet finished
	failure  error
	deadline Time // 0 means none
	rng      *rand.Rand
	seed     int64
	obsBus   *obs.Bus

	// EventCount is the total number of events dispatched so far.
	EventCount uint64
}

// New creates an empty simulation whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from simulation context (process bodies or event callbacks).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetObs attaches the observability bus every layer emits into. A nil bus
// (the default) disables observability at zero cost.
func (s *Sim) SetObs(b *obs.Bus) { s.obsBus = b }

// Obs returns the attached observability bus, or nil when disabled. Callers
// emit with s.Obs().Emit(...) — Emit on a nil bus is a no-op.
func (s *Sim) Obs() *obs.Bus { return s.obsBus }

// SetDeadline aborts Run with an error if virtual time passes t.
// A zero t removes the deadline.
func (s *Sim) SetDeadline(t Time) { s.deadline = t }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; it is clamped to now to keep time monotonic.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Failf records a fatal simulation error; Run stops and returns it.
func (s *Sim) Failf(format string, args ...interface{}) {
	if s.failure == nil {
		s.failure = fmt.Errorf(format, args...)
	}
}

// Proc is a simulated process: a goroutine that runs only when the scheduler
// hands it control, and returns control whenever it blocks in virtual time.
type Proc struct {
	sim    *Sim
	id     int
	name   string
	resume chan wake

	parked   bool
	parkSeq  uint64 // increments every park; stale wake events are ignored
	finished bool

	busy  Duration // total time charged via Compute
	slept Duration // total time in Sleep
	idle  Duration // total time parked waiting for events

	userData interface{}
}

type wake struct{ timedOut bool }

// ID returns the process's index in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// SetUserData attaches an arbitrary value to the process (e.g. its MPI rank
// state); UserData retrieves it.
func (p *Proc) SetUserData(v interface{}) { p.userData = v }

// UserData returns the value set with SetUserData, or nil.
func (p *Proc) UserData() interface{} { return p.userData }

// BusyTime returns total virtual time this process spent in Compute.
func (p *Proc) BusyTime() Duration { return p.busy }

// IdleTime returns total virtual time this process spent parked.
func (p *Proc) IdleTime() Duration { return p.idle }

// Spawn creates a process that will begin executing fn at time start.
// It may be called before Run or from inside the simulation.
func (s *Sim) Spawn(name string, start Time, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan wake),
	}
	s.procs = append(s.procs, p)
	s.live++
	go func() {
		w := <-p.resume // wait for first dispatch
		_ = w
		defer func() {
			if r := recover(); r != nil {
				s.Failf("process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			s.obsBus.Emit(obs.Event{T: int64(s.now), Kind: obs.EvProcEnd,
				Rank: int32(p.id), Peer: -1, Name: p.name})
			p.finished = true
			s.live--
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	s.At(start, func() {
		s.obsBus.Emit(obs.Event{T: int64(s.now), Kind: obs.EvProcStart,
			Rank: int32(p.id), Peer: -1, Name: p.name})
		s.dispatch(p, wake{})
	})
	return p
}

// dispatch transfers control to p and blocks until p parks or finishes.
// It must be called from scheduler context (inside an event callback).
func (s *Sim) dispatch(p *Proc, w wake) {
	if p.finished {
		return
	}
	p.parked = false
	p.resume <- w
	<-s.yield
}

// park blocks the calling process until a wake event dispatches it again.
// It must be called from process context.
func (p *Proc) park() wake {
	p.parked = true
	p.parkSeq++
	start := p.sim.now
	p.sim.yield <- struct{}{}
	w := <-p.resume
	p.idle += p.sim.now.Sub(start)
	return w
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	seq := p.parkSeq + 1
	s.After(d, func() {
		if p.parked && p.parkSeq == seq {
			s.dispatch(p, wake{})
		}
	})
	start := s.now
	p.park()
	p.slept += s.now.Sub(start)
	p.idle -= s.now.Sub(start) // sleeping is not idling
}

// Compute charges d of virtual time as computation (CPU busy).
func (p *Proc) Compute(d Duration) {
	if d <= 0 {
		return
	}
	start := p.sim.now
	seq := p.parkSeq + 1
	p.sim.After(d, func() {
		if p.parked && p.parkSeq == seq {
			p.sim.dispatch(p, wake{})
		}
	})
	p.park()
	p.busy += p.sim.now.Sub(start)
	p.idle -= p.sim.now.Sub(start)
}

// Park suspends the process until another party calls Wake on it.
func (p *Proc) Park() { p.park() }

// ParkTimeout suspends the process until Wake or until d elapses.
// It reports true if the process was woken, false on timeout.
func (p *Proc) ParkTimeout(d Duration) bool {
	if d < 0 {
		d = 0
	}
	s := p.sim
	seq := p.parkSeq + 1
	s.After(d, func() {
		if p.parked && p.parkSeq == seq {
			s.dispatch(p, wake{timedOut: true})
		}
	})
	w := p.park()
	return !w.timedOut
}

// Wake schedules p to resume at the current virtual time (plus optional
// delay). It is safe to call from any simulation context; a Wake aimed at a
// process that is not parked, or that has re-parked since, is dropped.
func (p *Proc) Wake() { p.WakeAfter(0) }

// WakeAfter schedules a wake for p after d of virtual time.
func (p *Proc) WakeAfter(d Duration) {
	s := p.sim
	seq := p.parkSeq
	if !p.parked {
		seq++ // wake the *next* park if it happens before the event fires
	}
	s.After(d, func() {
		if p.parked && p.parkSeq == seq {
			s.dispatch(p, wake{})
		}
	})
}

// Yield gives other events scheduled at the current instant a chance to run
// before the process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// Run dispatches events until the queue is empty or a failure occurs.
// It returns an error if any process panicked, the deadline passed, or if
// processes remain blocked with no pending events (deadlock).
func (s *Sim) Run() error {
	if s.running {
		return fmt.Errorf("simnet: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()

	for len(s.events) > 0 && s.failure == nil {
		ev := heap.Pop(&s.events).(*event)
		if ev.at > s.now {
			s.now = ev.at
		}
		if s.deadline != 0 && s.now > s.deadline {
			return fmt.Errorf("simnet: deadline %v exceeded at t=%v", s.deadline, s.now)
		}
		s.EventCount++
		ev.fn()
	}
	if s.failure != nil {
		return s.failure
	}
	if s.live > 0 {
		var stuck []string
		for _, p := range s.procs {
			if !p.finished {
				stuck = append(stuck, p.name)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("simnet: deadlock at t=%v: %d process(es) blocked with no pending events: %v",
			s.now, len(stuck), stuck)
	}
	return nil
}

// Procs returns all processes ever spawned, in spawn order.
func (s *Sim) Procs() []*Proc { return s.procs }

// Cond is a broadcast-style condition variable for simulated processes.
// The zero value is not usable; create with NewCond.
type Cond struct {
	sim     *Sim
	waiters []*Proc
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Sim) *Cond { return &Cond{sim: s} }

// Wait parks p until Broadcast or Signal.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes one waiter (FIFO), if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.Wake()
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p.Wake()
	}
}

// Len reports the number of parked waiters.
func (c *Cond) Len() int { return len(c.waiters) }
