// Package simnet provides a deterministic discrete-event simulator with
// cooperative, goroutine-backed processes.
//
// The simulator owns a virtual clock. Exactly one goroutine — either the
// scheduler or a single simulated process — runs at any instant, so simulated
// code needs no locking and every run with the same seed is bit-identical.
// Processes advance the clock only through blocking primitives (Sleep,
// Compute, Park*); everything else executes in zero virtual time.
//
// This package is the substrate for the VIA device models: NIC and wire
// behaviour is expressed as events, while MPI ranks are processes. Every
// paper figure funnels through Sim.Run, so the scheduler hot path (event
// admission, heap maintenance, dispatch, park) is kept allocation-free in
// steady state; the viampi-vet hotalloc rule enforces it.
package simnet

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"viampi/internal/obs"
)

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely from
// time.Duration for readability at call sites.
type Duration int64

// Handy duration units in virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// D converts a time.Duration into a virtual Duration.
func D(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a virtual Duration back into a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return time.Duration(d).String() }

// Seconds reports the timestamp as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros reports the timestamp as floating-point microseconds since start.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add offsets a timestamp by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// evKind discriminates the scheduler's typed events. The common cases —
// timer wakes from Sleep/Compute/ParkTimeout/Wake and process starts — carry
// their parameters in the event value itself and are dispatched in a switch,
// so the hot path never allocates a closure. Only general At/After callbacks
// (device models) pay for a func value.
type evKind uint8

const (
	evFunc         evKind = iota // run fn (general At/After callback)
	evTimerWake                  // wake proc if still parked at parkSeq
	evTimerTimeout               // as evTimerWake, but reports a timeout
	evProcStart                  // first dispatch of proc (emits EvProcStart)
)

// event is a scheduled occurrence. Events with equal timestamps fire in
// scheduling order (seq), which is what makes runs deterministic. Events are
// plain values: the queues below hold []event, never *event, so scheduling
// does not allocate per event.
type event struct {
	at      Time
	seq     uint64
	parkSeq uint64 // evTimerWake/evTimerTimeout: park generation to match
	proc    *Proc  // evTimerWake/evTimerTimeout/evProcStart
	fn      func() // evFunc
	kind    evKind
}

// before reports whether e fires before f: earlier timestamp, or equal
// timestamp and earlier scheduling order. seq values are unique, so this is
// a strict total order.
func (e *event) before(f *event) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// eventRing is a FIFO of events scheduled at the current instant. It is the
// same-instant fast path: a wake or zero-delay callback admitted while the
// scheduler is already at its timestamp never touches the heap, and the
// ring's buffer is reused forever, so steady-state pushes do not allocate.
// The buffer length is always a power of two (see grow).
type eventRing struct {
	buf  []event
	head int
	n    int
}

func (r *eventRing) push(ev event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ev
	r.n++
}

func (r *eventRing) pop() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{} // release fn/proc for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return ev
}

// grow doubles the ring (cold path: runs O(log n) times per simulation).
func (r *eventRing) grow() {
	nb := make([]event, max(16, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// Sim is a single-threaded discrete-event simulation.
// Create one with New, add processes with Spawn, then call Run.
//
// The event loop is not pinned to a scheduler goroutine: it migrates onto
// whichever goroutine currently has control (direct handoff). When a process
// parks, its own goroutine keeps popping and executing events; if the next
// wake is its own it simply returns from park with no synchronization at
// all, and a switch to a different process costs a single buffered channel
// send. Exactly one goroutine runs at any instant either way.
type Sim struct {
	now      Time
	seq      uint64
	heap     []event   // 4-ary min-heap on (at, seq): future events
	ready    eventRing // FIFO of events at the current instant
	procs    []*Proc
	done     chan struct{} // signals Run when the loop terminates off-goroutine
	runErr   error         // Run's result, set where termination is detected
	running  bool
	live     int // processes spawned and not yet finished
	failure  error
	deadline Time // 0 means none
	rng      *rand.Rand
	seed     int64
	obsBus   *obs.Bus

	// EventCount is the total number of events dispatched so far.
	EventCount uint64
}

// New creates an empty simulation whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{
		done: make(chan struct{}, 1),
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from simulation context (process bodies or event callbacks).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetObs attaches the observability bus every layer emits into. A nil bus
// (the default) disables observability at zero cost.
func (s *Sim) SetObs(b *obs.Bus) { s.obsBus = b }

// Obs returns the attached observability bus, or nil when disabled. Callers
// emit with s.Obs().Emit(...) — Emit on a nil bus is a no-op.
func (s *Sim) Obs() *obs.Bus { return s.obsBus }

// SetDeadline aborts Run with an error if virtual time would pass t: the
// deadline fires before executing any event scheduled after t, and that
// event is left unconsumed. An event at exactly t still runs. A zero t
// removes the deadline.
func (s *Sim) SetDeadline(t Time) { s.deadline = t }

// schedule admits an event. Events at or before the current instant while
// the simulation is running go to the ready FIFO (they fire this instant, in
// seq order, without re-heapifying); future events go to the heap. Ordering
// stays total because every event already in the heap at the current
// timestamp was admitted earlier and so carries a smaller seq than anything
// the ready ring holds.
func (s *Sim) schedule(ev event) {
	if ev.at <= s.now {
		ev.at = s.now // scheduling in the past is clamped to keep time monotonic
		if s.running {
			s.ready.push(ev)
			return
		}
	}
	s.heapPush(ev)
}

// heapPush inserts ev into the 4-ary min-heap. The slice is reused across
// pushes, so steady-state inserts do not allocate (growth is amortized).
func (s *Sim) heapPush(ev event) {
	h := append(s.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if h[parent].before(&ev) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	s.heap = h
}

// heapPop removes and returns the minimum event.
func (s *Sim) heapPop() event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release fn/proc for GC
	h = h[:n]
	s.heap = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; it is clamped to now to keep time monotonic.
func (s *Sim) At(t Time, fn func()) {
	s.seq++
	s.schedule(event{at: t, seq: s.seq, kind: evFunc, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Failf records a fatal simulation error; Run stops and returns it.
func (s *Sim) Failf(format string, args ...interface{}) {
	if s.failure == nil {
		s.failure = fmt.Errorf(format, args...)
	}
}

// Proc is a simulated process: a goroutine that runs only when the scheduler
// hands it control, and returns control whenever it blocks in virtual time.
type Proc struct {
	sim    *Sim
	id     int
	name   string
	resume chan wake

	parked   bool
	parkSeq  uint64 // increments every park; stale wake events are ignored
	finished bool

	busy  Duration // total time charged via Compute
	slept Duration // total time in Sleep
	idle  Duration // total time parked waiting for events

	userData interface{}
}

type wake struct{ timedOut bool }

// ID returns the process's index in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// SetUserData attaches an arbitrary value to the process (e.g. its MPI rank
// state); UserData retrieves it.
func (p *Proc) SetUserData(v interface{}) { p.userData = v }

// UserData returns the value set with SetUserData, or nil.
func (p *Proc) UserData() interface{} { return p.userData }

// BusyTime returns total virtual time this process spent in Compute.
func (p *Proc) BusyTime() Duration { return p.busy }

// IdleTime returns total virtual time this process spent parked.
func (p *Proc) IdleTime() Duration { return p.idle }

// Spawn creates a process that will begin executing fn at time start.
// It may be called before Run or from inside the simulation.
func (s *Sim) Spawn(name string, start Time, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		id:     len(s.procs),
		name:   name,
		resume: make(chan wake, 1),
	}
	s.procs = append(s.procs, p)
	s.live++
	go func() {
		w := <-p.resume // wait for first dispatch
		_ = w
		defer func() {
			if r := recover(); r != nil {
				s.Failf("process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			s.obsBus.Emit(obs.Event{T: int64(s.now), Kind: obs.EvProcEnd,
				Rank: int32(p.id), Peer: -1, Name: p.name})
			p.finished = true
			s.live--
			// This goroutine holds the token; keep the simulation moving
			// until it hands off or terminates, then exit.
			if s.loop(nil, nil) == exitDone {
				s.done <- struct{}{}
			}
		}()
		fn(p)
	}()
	s.seq++
	s.schedule(event{at: start, seq: s.seq, kind: evProcStart, proc: p})
	return p
}

// park blocks the calling process until a wake event resumes it. It must be
// called from process context. The parking goroutine keeps running the event
// loop itself: if the next wake is its own it returns without any channel
// operation (the same-goroutine fast path), otherwise it hands the token to
// the woken process and blocks until its own turn comes back.
func (p *Proc) park() wake {
	s := p.sim
	p.parked = true
	p.parkSeq++
	start := s.now
	var w wake
	switch s.loop(p, &w) {
	case exitSelfWake:
		// w set by loop; the token never left this goroutine.
	case exitHandoff:
		w = <-p.resume
	case exitDone:
		s.done <- struct{}{}
		w = <-p.resume // Run returned; resumes only if a later Run wakes us
	}
	p.idle += s.now.Sub(start)
	return w
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.seq++
	s.schedule(event{at: s.now.Add(d), seq: s.seq, kind: evTimerWake,
		proc: p, parkSeq: p.parkSeq + 1})
	start := s.now
	p.park()
	p.slept += s.now.Sub(start)
	p.idle -= s.now.Sub(start) // sleeping is not idling
}

// Compute charges d of virtual time as computation (CPU busy).
func (p *Proc) Compute(d Duration) {
	if d <= 0 {
		return
	}
	s := p.sim
	start := s.now
	s.seq++
	s.schedule(event{at: s.now.Add(d), seq: s.seq, kind: evTimerWake,
		proc: p, parkSeq: p.parkSeq + 1})
	p.park()
	p.busy += s.now.Sub(start)
	p.idle -= s.now.Sub(start)
}

// Park suspends the process until another party calls Wake on it.
func (p *Proc) Park() { p.park() }

// ParkTimeout suspends the process until Wake or until d elapses.
// It reports true if the process was woken, false on timeout.
func (p *Proc) ParkTimeout(d Duration) bool {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.seq++
	s.schedule(event{at: s.now.Add(d), seq: s.seq, kind: evTimerTimeout,
		proc: p, parkSeq: p.parkSeq + 1})
	w := p.park()
	return !w.timedOut
}

// Wake schedules p to resume at the current virtual time (plus optional
// delay). It is safe to call from any simulation context; a Wake aimed at a
// process that is not parked, or that has re-parked since, is dropped.
func (p *Proc) Wake() { p.WakeAfter(0) }

// WakeAfter schedules a wake for p after d of virtual time.
func (p *Proc) WakeAfter(d Duration) {
	s := p.sim
	seq := p.parkSeq
	if !p.parked {
		seq++ // wake the *next* park if it happens before the event fires
	}
	s.seq++
	s.schedule(event{at: s.now.Add(d), seq: s.seq, kind: evTimerWake,
		proc: p, parkSeq: seq})
}

// Yield gives other events scheduled at the current instant a chance to run
// before the process continues. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// loopExit says why the event loop returned on this goroutine.
type loopExit uint8

const (
	exitSelfWake loopExit = iota // the caller's own wake fired; *w is set
	exitHandoff                  // the token moved to another process
	exitDone                     // the run terminated; s.runErr is set
)

// loop pops and executes events on the calling goroutine until control must
// move elsewhere. self is the process that just parked on this goroutine
// (nil when called from Run or a finished process's goroutine); when self's
// own wake comes up the loop stores the wake in *w and returns exitSelfWake
// without touching a channel. Timer wakes and process starts are dispatched
// from the event value itself; only evFunc calls through a func value.
func (s *Sim) loop(self *Proc, w *wake) loopExit {
	for s.failure == nil {
		var ev event
		switch {
		case len(s.heap) > 0 && s.heap[0].at <= s.now:
			// Due events left over from before this instant's arrivals; they
			// carry smaller seqs than anything in the ready ring.
			ev = s.heapPop()
		case s.ready.n > 0:
			ev = s.ready.pop()
		case len(s.heap) > 0:
			next := s.heap[0].at
			if s.deadline != 0 && next > s.deadline {
				s.runErr = s.deadlineError(next)
				return exitDone
			}
			s.now = next
			ev = s.heapPop()
		default:
			s.runErr = s.stopError()
			return exitDone
		}
		s.EventCount++
		switch ev.kind {
		case evFunc:
			ev.fn()
		case evTimerWake, evTimerTimeout:
			p := ev.proc
			if p.parked && p.parkSeq == ev.parkSeq {
				p.parked = false
				wk := wake{timedOut: ev.kind == evTimerTimeout}
				if p == self {
					*w = wk
					return exitSelfWake
				}
				p.resume <- wk // buffered: p is blocked receiving
				return exitHandoff
			}
		case evProcStart:
			p := ev.proc
			s.obsBus.Emit(obs.Event{T: int64(s.now), Kind: obs.EvProcStart,
				Rank: int32(p.id), Peer: -1, Name: p.name})
			p.parked = false
			p.resume <- wake{}
			return exitHandoff
		}
	}
	s.runErr = s.failure
	return exitDone
}

// deadlineError reports the deadline trip (cold path, off the event loop).
func (s *Sim) deadlineError(next Time) error {
	return fmt.Errorf("simnet: deadline %v exceeded: next event at t=%v", s.deadline, next)
}

// stopError classifies an empty event queue: clean completion, a recorded
// failure, or a deadlock with live processes (cold path, off the event loop).
func (s *Sim) stopError() error {
	if s.failure != nil {
		return s.failure
	}
	if s.live > 0 {
		var stuck []string
		for _, p := range s.procs {
			if !p.finished {
				stuck = append(stuck, p.name)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("simnet: deadlock at t=%v: %d process(es) blocked with no pending events: %v",
			s.now, len(stuck), stuck)
	}
	return nil
}

// Run dispatches events until the queue is empty or a failure occurs.
// It returns an error if any process panicked, the deadline passed, or if
// processes remain blocked with no pending events (deadlock).
//
// Deadline semantics: the deadline error fires before executing any event
// scheduled after the deadline, and that event is left unconsumed; an event
// at exactly the deadline still runs.
func (s *Sim) Run() error {
	if s.running {
		return fmt.Errorf("simnet: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.runErr = nil

	if s.loop(nil, nil) == exitHandoff {
		// The token is out among the processes; whichever goroutine detects
		// termination signals done after setting runErr.
		<-s.done
	}
	return s.runErr
}

// Procs returns all processes ever spawned, in spawn order.
func (s *Sim) Procs() []*Proc { return s.procs }

// Cond is a broadcast-style condition variable for simulated processes.
// The zero value is not usable; create with NewCond.
type Cond struct {
	sim     *Sim
	waiters []*Proc
	head    int // index of the first live waiter; slots before it are nil
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Sim) *Cond { return &Cond{sim: s} }

// Wait parks p until Broadcast or Signal.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes one waiter (FIFO), if any. The popped slot is nilled so a
// long-lived cond never pins a finished process through its backing array,
// and the array is compacted once it is mostly dead slots.
func (c *Cond) Signal() {
	if c.head == len(c.waiters) {
		return
	}
	p := c.waiters[c.head]
	c.waiters[c.head] = nil
	c.head++
	switch {
	case c.head == len(c.waiters):
		c.waiters = c.waiters[:0]
		c.head = 0
	case c.head >= 32 && c.head*2 >= len(c.waiters):
		n := copy(c.waiters, c.waiters[c.head:])
		clearTail := c.waiters[n:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		c.waiters = c.waiters[:n]
		c.head = 0
	}
	p.Wake()
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters[c.head:]
	c.waiters = nil
	c.head = 0
	for _, p := range ws {
		p.Wake()
	}
}

// Len reports the number of parked waiters.
func (c *Cond) Len() int { return len(c.waiters) - c.head }
