package simnet

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New(1)
	var end Time
	s.Spawn("a", 0, func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(7 * Microsecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(12*Microsecond) {
		t.Fatalf("end = %v, want 12µs", end)
	}
}

func TestEventOrderingSameTimestamp(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("event order %v not FIFO at equal timestamps", order)
		}
	}
}

func TestSpawnStartTimes(t *testing.T) {
	s := New(1)
	var starts []Time
	for i := 0; i < 3; i++ {
		at := Time(i) * Time(Millisecond)
		s.Spawn(fmt.Sprintf("p%d", i), at, func(p *Proc) {
			starts = append(starts, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Time(Millisecond), Time(2 * Millisecond)}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

func TestParkWake(t *testing.T) {
	s := New(1)
	var a *Proc
	var wokenAt Time
	a = s.Spawn("sleeper", 0, func(p *Proc) {
		p.Park()
		wokenAt = p.Now()
	})
	s.Spawn("waker", 0, func(p *Proc) {
		p.Sleep(42 * Microsecond)
		a.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != Time(42*Microsecond) {
		t.Fatalf("wokenAt = %v, want 42µs", wokenAt)
	}
}

func TestParkTimeout(t *testing.T) {
	s := New(1)
	var got bool
	var at Time
	s.Spawn("a", 0, func(p *Proc) {
		got = p.ParkTimeout(10 * Microsecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("ParkTimeout reported wake, want timeout")
	}
	if at != Time(10*Microsecond) {
		t.Fatalf("resumed at %v, want 10µs", at)
	}
}

func TestParkTimeoutWokenEarly(t *testing.T) {
	s := New(1)
	var a *Proc
	var got bool
	var at Time
	a = s.Spawn("a", 0, func(p *Proc) {
		got = p.ParkTimeout(100 * Microsecond)
		at = p.Now()
	})
	s.Spawn("b", 0, func(p *Proc) {
		p.Sleep(3 * Microsecond)
		a.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || at != Time(3*Microsecond) {
		t.Fatalf("got=%v at=%v, want wake at 3µs", got, at)
	}
}

func TestStaleWakeIgnored(t *testing.T) {
	s := New(1)
	var a *Proc
	hits := 0
	a = s.Spawn("a", 0, func(p *Proc) {
		p.Park()
		hits++
		p.Sleep(50 * Microsecond) // a second Wake arriving during this sleep must not disturb it
		hits++
	})
	s.Spawn("b", 0, func(p *Proc) {
		p.Sleep(Microsecond)
		a.Wake()
		p.Sleep(Microsecond)
		a.Wake() // stale: a is now sleeping on its own timer
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	s.Spawn("stuck", 0, func(p *Proc) { p.Park() })
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestPanicPropagation(t *testing.T) {
	s := New(1)
	s.Spawn("boom", 0, func(p *Proc) { panic("kapow") })
	err := s.Run()
	if err == nil {
		t.Fatal("expected panic error")
	}
}

func TestDeadline(t *testing.T) {
	s := New(1)
	s.SetDeadline(Time(Millisecond))
	s.Spawn("a", 0, func(p *Proc) {
		for {
			p.Sleep(Second)
		}
	})
	if err := s.Run(); err == nil {
		t.Fatal("expected deadline error")
	}
}

// TestDeadlineBoundary pins the deadline contract: an event at exactly the
// deadline runs; the first event past it trips the error before executing,
// and the tripping event is left unconsumed.
func TestDeadlineBoundary(t *testing.T) {
	s := New(1)
	s.SetDeadline(Time(Millisecond))
	atDeadline, pastDeadline := false, false
	s.At(Time(Millisecond), func() { atDeadline = true })
	s.At(Time(Millisecond)+1, func() { pastDeadline = true })
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if !atDeadline {
		t.Fatal("event at exactly the deadline must run")
	}
	if pastDeadline {
		t.Fatal("event past the deadline must not run")
	}
	if s.Now() != Time(Millisecond) {
		t.Fatalf("clock advanced past the deadline: now=%v", s.Now())
	}
	// The tripping event is still queued: clearing the deadline and
	// re-running executes it.
	s.SetDeadline(0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !pastDeadline {
		t.Fatal("unconsumed event did not survive the deadline error")
	}
}

func TestComputeAccounting(t *testing.T) {
	s := New(1)
	var p0 *Proc
	p0 = s.Spawn("a", 0, func(p *Proc) {
		p.Compute(30 * Microsecond)
		p.Sleep(10 * Microsecond)
		p.Compute(5 * Microsecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if p0.BusyTime() != 35*Microsecond {
		t.Fatalf("busy = %v, want 35µs", p0.BusyTime())
	}
	if p0.IdleTime() != 0 {
		t.Fatalf("idle = %v, want 0", p0.IdleTime())
	}
}

func TestIdleAccounting(t *testing.T) {
	s := New(1)
	var a *Proc
	a = s.Spawn("a", 0, func(p *Proc) { p.Park() })
	s.Spawn("b", 0, func(p *Proc) {
		p.Sleep(20 * Microsecond)
		a.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a.IdleTime() != 20*Microsecond {
		t.Fatalf("idle = %v, want 20µs", a.IdleTime())
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	resumed := 0
	for i := 0; i < 5; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), 0, func(p *Proc) {
			c.Wait(p)
			resumed++
		})
	}
	s.Spawn("b", 0, func(p *Proc) {
		p.Sleep(Microsecond)
		if c.Len() != 5 {
			t.Errorf("c.Len() = %d, want 5", c.Len())
		}
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 5 {
		t.Fatalf("resumed = %d, want 5", resumed)
	}
}

func TestCondSignalFIFO(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), Time(i), func(p *Proc) {
			c.Wait(p)
			order = append(order, i)
		})
	}
	s.Spawn("b", 10, func(p *Proc) {
		for i := 0; i < 3; i++ {
			c.Signal()
			p.Sleep(Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want FIFO %v", order, want)
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	s := New(1)
	var childRan bool
	s.Spawn("parent", 0, func(p *Proc) {
		p.Sleep(Microsecond)
		s.Spawn("child", p.Now().Add(Microsecond), func(q *Proc) { childRan = true })
		p.Sleep(10 * Microsecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestYieldLetsPendingEventsRun(t *testing.T) {
	s := New(1)
	var seen bool
	s.Spawn("a", 0, func(p *Proc) {
		s.At(p.Now(), func() { seen = true })
		p.Yield()
		if !seen {
			t.Error("event at same instant did not run across Yield")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// asserts identical event traces — the core property the experiments rely on.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []string {
		s := New(seed)
		var trace []string
		procs := make([]*Proc, 8)
		for i := 0; i < 8; i++ {
			i := i
			procs[i] = s.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
				r := rand.New(rand.NewSource(seed + int64(i)))
				for step := 0; step < 50; step++ {
					p.Sleep(Duration(r.Intn(1000)) * Nanosecond)
					trace = append(trace, fmt.Sprintf("%d@%d", i, p.Now()))
					if r.Intn(3) == 0 {
						procs[(i+1)%8].Wake()
					}
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a := runOnce(42)
	b := runOnce(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// Property: for any sequence of sleep durations, the final clock equals the
// max over processes of their duration sums (processes run independently).
func TestPropertySleepSums(t *testing.T) {
	f := func(durs [][]uint16) bool {
		if len(durs) == 0 || len(durs) > 16 {
			return true
		}
		s := New(7)
		var want Time
		for i, ds := range durs {
			if len(ds) > 64 {
				ds = ds[:64]
			}
			var sum Time
			for _, d := range ds {
				sum = sum.Add(Duration(d))
			}
			if sum > want {
				want = sum
			}
			ds := ds
			s.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
				for _, d := range ds {
					p.Sleep(Duration(d))
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return s.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: events always dispatch in non-decreasing time order regardless of
// the order they were scheduled in.
func TestPropertyEventMonotonicity(t *testing.T) {
	f := func(times []uint32) bool {
		s := New(3)
		var fired []Time
		for _, at := range times {
			at := Time(at)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationConversions(t *testing.T) {
	if D(time.Microsecond) != Microsecond {
		t.Fatal("D(1µs) != Microsecond")
	}
	if (2 * Millisecond).Std() != 2*time.Millisecond {
		t.Fatal("Std round-trip failed")
	}
	if (1500 * Nanosecond).Micros() != 1.5 {
		t.Fatal("Micros conversion wrong")
	}
	if Time(3*Second).Seconds() != 3.0 {
		t.Fatal("Seconds conversion wrong")
	}
}

func TestManyProcessesStress(t *testing.T) {
	s := New(9)
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
			for k := 0; k < 20; k++ {
				p.Sleep(Duration(1+k) * Microsecond)
			}
			done++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
}
