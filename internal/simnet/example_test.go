package simnet_test

import (
	"fmt"

	"viampi/internal/simnet"
)

// Two processes coordinate through virtual time: a worker computes while a
// watcher wakes it after a deadline. The whole exchange is deterministic.
func ExampleSim() {
	sim := simnet.New(1)
	worker := sim.Spawn("worker", 0, func(p *simnet.Proc) {
		p.Compute(40 * simnet.Microsecond)
		fmt.Printf("worker computed until t=%v\n", p.Now())
		p.Park() // wait for the watcher
		fmt.Printf("worker woken at t=%v\n", p.Now())
	})
	sim.Spawn("watcher", 0, func(p *simnet.Proc) {
		p.Sleep(100 * simnet.Microsecond)
		worker.Wake()
	})
	if err := sim.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// worker computed until t=40µs
	// worker woken at t=100µs
}
