package analysis

// fsmcheck.go model-checks the two distributed protocols the connection
// manager implements, as small 2-peer product automata explored exhaustively
// by BFS. The per-peer machines are abstractions of the extracted ViState
// FSM (fsm.go validates that the transitions they rely on exist in the
// code); the in-flight messages are single-bit flags (establishment) or
// short FIFO queues (eviction), and the fault plan's drop/refuse behaviors
// are nondeterministic moves gated by a monotone fault switch — faults can
// stop happening, never start, which is exactly the "eventually the network
// behaves" fairness the liveness assertions need.
//
// Both checkers return a list of human-readable failures; empty = proved.

import (
	"fmt"
	"sort"
)

// ---------------------------------------------------------------------------
// Connection-establishment model

// Per-side establishment states.
const (
	cmIdle uint8 = iota
	cmConnecting
	cmConnected
)

// connState is one product state: two peer states, six single-bit in-flight
// message flags, and the fault switch.
type connState struct {
	s     [2]uint8
	req   [2]bool // req[i]: ConnReq from i to 1-i in flight
	ack   [2]bool // ack[i]: ConnAck from i to 1-i in flight
	nack  [2]bool // nack[i]: ConnNack from i to 1-i in flight
	fault bool
}

func (st connState) String() string {
	name := func(s uint8) string {
		return [...]string{"Idle", "Connecting", "Connected"}[s]
	}
	msgs := ""
	for i := 0; i < 2; i++ {
		if st.req[i] {
			msgs += fmt.Sprintf(" req%d%d", i, 1-i)
		}
		if st.ack[i] {
			msgs += fmt.Sprintf(" ack%d%d", i, 1-i)
		}
		if st.nack[i] {
			msgs += fmt.Sprintf(" nack%d%d", i, 1-i)
		}
	}
	if msgs == "" {
		msgs = " (no messages)"
	}
	return fmt.Sprintf("peer0=%s peer1=%s%s fault=%v", name(st.s[0]), name(st.s[1]), msgs, st.fault)
}

func (st connState) goal() bool {
	return st.s[0] == cmConnected && st.s[1] == cmConnected
}

// connMoves returns the successor states in deterministic order. With
// st.fault set, ConnReq delivery additionally offers the fault-plan
// behaviors (drop, refuse-with-NACK) plus the fault-off switch.
func connMoves(st connState, adoption bool) []connState {
	var out []connState
	for i := 0; i < 2; i++ {
		j := 1 - i

		// issue: an Idle peer opens the handshake (on-demand connect).
		if st.s[i] == cmIdle && !st.req[i] {
			n := st
			n.s[i] = cmConnecting
			n.req[i] = true
			out = append(out, n)
		}

		// deliver ConnReq from i at j.
		if st.req[i] {
			if st.fault {
				// drop: the request is lost in flight.
				n := st
				n.req[i] = false
				out = append(out, n)
				// refuse: j's manager rejects; the NACK goes back to the
				// initiator i — refusal resets i, never j.
				n = st
				n.req[i] = false
				n.nack[j] = true
				out = append(out, n)
			}
			n := st
			n.req[i] = false
			switch st.s[j] {
			case cmIdle:
				// passive accept
				n.s[j] = cmConnected
				n.ack[j] = true
			case cmConnecting:
				if adoption {
					// crossing-request adoption (the PR 3 rule): the peer
					// already trying to connect treats the incoming request
					// as the match.
					n.s[j] = cmConnected
					n.ack[j] = true
				} else {
					// without adoption a busy peer refuses the crossing
					// request — NACK back to the initiator.
					n.nack[j] = true
				}
			case cmConnected:
				// duplicate/late request on an established pair: re-ack, so
				// an initiator whose first ack was lost can still finish.
				n.ack[j] = true
			}
			out = append(out, n)
		}

		// deliver ConnAck from i at j.
		if st.ack[i] {
			n := st
			n.ack[i] = false
			if n.s[j] == cmConnecting {
				n.s[j] = cmConnected
			}
			out = append(out, n)
		}

		// deliver ConnNack from i at j.
		if st.nack[i] {
			n := st
			n.nack[i] = false
			if n.s[j] == cmConnecting {
				n.s[j] = cmIdle
			}
			out = append(out, n)
		}

		// timeout-retry: a Connecting peer with nothing in flight in either
		// direction of its handshake gives up and resets.
		if st.s[i] == cmConnecting && !st.req[i] && !st.ack[j] && !st.nack[j] {
			n := st
			n.s[i] = cmIdle
			out = append(out, n)
		}
	}
	// The fault plan is finite: faults may stop at any point, and never
	// restart (monotone switch — the fairness the liveness checks rest on).
	if st.fault {
		n := st
		n.fault = false
		out = append(out, n)
	}
	return out
}

// CheckConnectionModel exhaustively explores the 2-peer establishment
// automaton under message drop/refusal/reordering and returns the list of
// contract violations (empty = proved):
//
//   - deadlock freedom: every stuck state is the goal (both Connected);
//   - liveness: from every reachable state, once faults stop, the goal is
//     reachable;
//   - livelock freedom: with faults off, no reachable cycle avoids the goal.
//
// With adoption=false the crossing-NACK livelock is expected: both peers
// issue, each refuses the other's crossing request, both reset, repeat.
func CheckConnectionModel(adoption bool) []string {
	var fails []string

	// Forward BFS over the full graph (faults start on).
	start := connState{fault: true}
	reach := map[connState]bool{start: true}
	frontier := []connState{start}
	for len(frontier) > 0 {
		st := frontier[0]
		frontier = frontier[1:]
		succs := connMoves(st, adoption)
		if len(succs) == 0 && !st.goal() {
			fails = append(fails, "deadlock in non-goal state: "+st.String())
		}
		for _, n := range succs {
			if !reach[n] {
				reach[n] = true
				frontier = append(frontier, n)
			}
		}
	}

	// canReachGoal over the fault-off graph, by reverse saturation: seed
	// with goal states, repeatedly add any fault-off state with a successor
	// already in the set.
	var offStates []connState
	for st := range reach {
		st.fault = false
		if !containsState(offStates, st) {
			offStates = append(offStates, st)
		}
	}
	sortStates(offStates)
	canReach := map[connState]bool{}
	for _, st := range offStates {
		if st.goal() {
			canReach[st] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, st := range offStates {
			if canReach[st] {
				continue
			}
			for _, n := range connMoves(st, adoption) {
				if canReach[n] {
					canReach[st] = true
					changed = true
					break
				}
			}
		}
	}
	reported := 0
	for _, st := range offStates {
		if !canReach[st] && reported < 3 {
			fails = append(fails, "goal unreachable after faults stop, from: "+st.String())
			reported++
		}
	}

	// Livelock: a cycle among non-goal states in the fault-off graph.
	// Iterative three-color DFS in deterministic order.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[connState]int{}
	var cycleAt *connState
	var dfs func(st connState)
	dfs = func(st connState) {
		color[st] = gray
		for _, n := range connMoves(st, adoption) {
			if n.goal() {
				continue
			}
			switch color[n] {
			case white:
				dfs(n)
			case gray:
				if cycleAt == nil {
					c := n
					cycleAt = &c
				}
			}
		}
		color[st] = black
	}
	for _, st := range offStates {
		if !st.goal() && color[st] == white {
			dfs(st)
		}
	}
	if cycleAt != nil {
		fails = append(fails, "livelock: non-goal cycle with faults off, through: "+cycleAt.String())
	}
	return fails
}

func containsState(list []connState, st connState) bool {
	for _, s := range list {
		if s == st {
			return true
		}
	}
	return false
}

func sortStates(list []connState) {
	sort.Slice(list, func(a, b int) bool { return list[a].String() < list[b].String() })
}

// ---------------------------------------------------------------------------
// BYE / eviction-quiescence model

// Per-side eviction modes.
const (
	byUp       uint8 = iota
	byEvicting       // sent BYE, waiting for ACK/NACK/crossing BYE
	byDraining       // acked the peer's BYE, waiting for DISC
	byGone           // channel torn down; held packets replayed on a fresh channel
)

// Wire messages of the eviction handshake.
const (
	msgBye  = 'B'
	msgAck  = 'A'
	msgNack = 'N'
	msgDisc = 'D'
)

// byeState is one product state: per-side mode, per-side held-packet flag
// (pendingClose non-empty), and a FIFO queue per direction. Strings keep the
// struct comparable, so it is its own map key.
type byeState struct {
	m [2]uint8
	h [2]bool
	q [2]string // q[i]: messages in flight from i to 1-i, head first
}

func (st byeState) String() string {
	name := func(m uint8) string {
		return [...]string{"Up", "Evicting", "Draining", "Gone"}[m]
	}
	return fmt.Sprintf("peer0=%s held=%v q01=%q peer1=%s held=%v q10=%q",
		name(st.m[0]), st.h[0], st.q[0], name(st.m[1]), st.h[1], st.q[1])
}

const byeQueueCap = 4

// byeMoves returns successor states in deterministic order. Restricted mode
// drops the environment moves (start-evict, user-send), leaving only message
// deliveries — the graph quiescence termination is checked on.
func byeMoves(st byeState, restricted bool, overflow *bool) []byeState {
	var out []byeState
	enq := func(s *byeState, from int, msg byte) {
		if len(s.q[from]) >= byeQueueCap {
			*overflow = true
			return
		}
		s.q[from] += string(msg)
	}
	for i := 0; i < 2; i++ {
		j := 1 - i

		if !restricted {
			// start-evict: the idle-victim scan picks channel i→j.
			if st.m[i] == byUp {
				n := st
				n.m[i] = byEvicting
				enq(&n, i, msgBye)
				out = append(out, n)
			}
			// user-send during teardown: the packet is held in pendingClose
			// instead of being posted on the dying VI.
			if (st.m[i] == byEvicting || st.m[i] == byDraining) && !st.h[i] {
				n := st
				n.h[i] = true
				out = append(out, n)
			}
		}

		// deliver the head of queue i→j at j.
		if len(st.q[i]) == 0 {
			continue
		}
		msg := st.q[i][0]
		base := st
		base.q[i] = base.q[i][1:]
		switch msg {
		case msgBye:
			switch st.m[j] {
			case byUp:
				// quiescent: accept the eviction and drain.
				n := base
				n.m[j] = byDraining
				enq(&n, j, msgAck)
				out = append(out, n)
				// busy: refuse; the evictor backs off and replays holds.
				n = base
				enq(&n, j, msgNack)
				out = append(out, n)
			case byEvicting:
				// crossing BYEs: both sides are evicting the same channel;
				// the BYE itself is the acknowledgement.
				n := base
				n.m[j] = byGone
				n.h[j] = false // holds replayed on the fresh channel
				enq(&n, j, msgDisc)
				out = append(out, n)
			default: // Draining, Gone: stale BYE on a dying channel
				out = append(out, base)
			}
		case msgAck:
			n := base
			if st.m[j] == byEvicting {
				n.m[j] = byGone
				n.h[j] = false
				enq(&n, j, msgDisc)
			}
			out = append(out, n)
		case msgNack:
			n := base
			if st.m[j] == byEvicting {
				n.m[j] = byUp
				n.h[j] = false // holds replayed on the still-live channel
			}
			out = append(out, n)
		case msgDisc:
			n := base
			if st.m[j] == byDraining {
				n.m[j] = byGone
				n.h[j] = false
			}
			out = append(out, n)
		}
	}
	return out
}

// CheckByeModel exhaustively explores the eviction-handshake automaton and
// returns the contract violations (empty = proved):
//
//   - no stuck pendingClose: in every reachable state with no messages in
//     flight, both sides are Up or Gone and no packet is still held;
//   - quiescence terminates: delivery alone (no new evictions or sends)
//     always drains to such a legal quiescent state;
//   - holds are bounded to teardown: a held packet implies the holder is
//     mid-eviction (Evicting or Draining).
func CheckByeModel() []string {
	var fails []string
	overflow := false

	start := byeState{}
	reach := map[byeState]bool{start: true}
	frontier := []byeState{start}
	var all []byeState
	for len(frontier) > 0 {
		st := frontier[0]
		frontier = frontier[1:]
		all = append(all, st)
		for _, n := range byeMoves(st, false, &overflow) {
			if !reach[n] {
				reach[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	if overflow {
		fails = append(fails, fmt.Sprintf("message queue exceeded %d entries: the handshake generates unbounded traffic", byeQueueCap))
	}

	quiesced := 0
	heldBad := 0
	for _, st := range all {
		if st.h[0] && st.m[0] != byEvicting && st.m[0] != byDraining ||
			st.h[1] && st.m[1] != byEvicting && st.m[1] != byDraining {
			if heldBad < 3 {
				fails = append(fails, "held packet outside teardown: "+st.String())
			}
			heldBad++
		}
		if len(st.q[0]) != 0 || len(st.q[1]) != 0 {
			continue
		}
		// Quiescent state: nothing in flight. Every such state must be
		// legal — a side stuck in Evicting/Draining here is a wedged
		// pendingClose the progress loop can never drain.
		legal := (st.m[0] == byUp || st.m[0] == byGone) &&
			(st.m[1] == byUp || st.m[1] == byGone) &&
			!st.h[0] && !st.h[1]
		if !legal {
			if quiesced < 3 {
				fails = append(fails, "illegal quiescent state (stuck pendingClose): "+st.String())
			}
			quiesced++
		}
	}

	// Termination of quiescence: the delivery-only graph must always reach
	// an empty-queue state. Delivery strictly shrinks the BYE population and
	// every reply chain is finite, so a cycle here means the handshake can
	// spin forever; detect by bounding the closure.
	for _, st := range all {
		seen := map[byeState]bool{st: true}
		fr := []byeState{st}
		drained := len(st.q[0]) == 0 && len(st.q[1]) == 0
		for len(fr) > 0 && !drained {
			s := fr[0]
			fr = fr[1:]
			for _, n := range byeMoves(s, true, &overflow) {
				if len(n.q[0]) == 0 && len(n.q[1]) == 0 {
					drained = true
					break
				}
				if !seen[n] {
					seen[n] = true
					fr = append(fr, n)
				}
			}
		}
		if !drained {
			fails = append(fails, "quiescence does not terminate from: "+st.String())
			break
		}
	}
	return fails
}
