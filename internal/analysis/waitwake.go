package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// waitwake abstract states (bit indices into the dataflow bitset): whether
// an un-woken transition is pending, and whether a deferred waker is armed
// (a deferred waker runs at return, after every later transition, so it
// clears pending at the exit no matter what follows it textually).
const (
	wwPending  = 1 << 0
	wwDeferred = 1 << 1
	wwStates   = 4
)

// WaitWakeAnalyzer enforces the wait/wake pairing on the VIA state machine:
// any function that moves a VI or descriptor into a state a blocked waiter
// can observe (success, error, disconnect, close) must call a policy-listed
// waker (Port.notifyActivity) on every CFG path to return.
func WaitWakeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "waitwake",
		Doc:  "waiter-visible state transitions must wake parked waiters on every path",
		Explain: `docs/ARCHITECTURE.md, "Enforced invariants": the paper's on-demand design
blocks inside VipRecvWait/WaitActivity until "something observable happened
on the port" — the waiting process is parked in virtual time and runs again
only when a completion or state change wakes it. That makes every transition
into a waiter-visible state (StatusSuccess, StatusDisconnected, ViError,
ViClosed, ...) half of a contract: the other half is a notifyActivity call on
the same path, or the waiter sleeps forever and the simulation deadlocks with
virtual time unable to advance. PR 3 hit exactly this: VI.Close failed
descriptors but forgot the wake, hanging a parked RecvWait. This rule walks
every CFG path of every function in the waitwake scope: assigning a
non-pending value to a via.ViState or via.Status location marks the path
"owes a wake"; a call to a Policy.WaitWakeWakers function (inline, or
deferred) discharges it; reaching return still owing is the bug. The check
is per-function: helpers whose callers own the wake are excused in
Policy.WaitWakeAllow with the argument for why every caller wakes.`,
		Run: runWaitWake,
	}
}

func runWaitWake(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil || !p.WaitWakeScope[pkg.Rel] {
			continue
		}
		for _, file := range pkg.Files {
			for _, u := range funcUnits(pkg, file) {
				if _, allowed := p.WaitWakeAllow[u.name]; allowed {
					continue
				}
				ds = append(ds, checkWaitWake(m, p, pkg, u)...)
			}
		}
	}
	return ds
}

func checkWaitWake(m *Module, p *Policy, pkg *Package, u funcUnit) []Diagnostic {
	// Cheap pre-pass: no transition anywhere in the unit means no contract.
	trigs := wwTriggers(m, p, pkg, u.body, true)
	if len(trigs) == 0 {
		return nil
	}
	firstTrigger := trigs[0]

	g := buildCFG(u.body)
	transfer := func(blk *cfgBlock, in uint64) uint64 {
		for _, node := range blk.nodes {
			in = wwTransferNode(m, p, pkg, node, in)
		}
		return in
	}
	in := blockStates(g, 1<<0, transfer) // entry: nothing pending, no defer

	exitState := in[g.exit]
	for s := 0; s < wwStates; s++ {
		if exitState&(1<<s) == 0 {
			continue
		}
		if s&wwPending != 0 && s&wwDeferred == 0 {
			return []Diagnostic{{
				Pos:  m.Position(firstTrigger.Pos()),
				Rule: "waitwake",
				Message: fmt.Sprintf("%s moves state a blocked waiter observes, but some path returns without a waker call (notifyActivity); a process parked in WaitActivity would sleep forever — wake on every path, or justify the owner in Policy.WaitWakeAllow",
					u.name),
			}}
		}
	}
	return nil
}

// wwTransferNode folds one CFG node into the state set.
func wwTransferNode(m *Module, p *Policy, pkg *Package, node ast.Node, in uint64) uint64 {
	// A deferred waker (direct call or a literal containing one) arms the
	// deferred bit: it will run at return, after any later transition.
	if def, ok := node.(*ast.DeferStmt); ok {
		if wwIsWakerCall(m, p, pkg, def.Call) || wwLitContainsWaker(m, p, pkg, def.Call) {
			return wwApply(in, func(s int) int { return s | wwDeferred })
		}
		return in
	}
	out := in
	// Order matters inside a statement only in theory (no statement here
	// both transitions and wakes); apply triggers, then inline wakers.
	if len(wwTriggers(m, p, pkg, node, true)) > 0 {
		out = wwApply(out, func(s int) int { return s | wwPending })
	}
	waker := false
	inspectSkipLits(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && wwIsWakerCall(m, p, pkg, call) {
			waker = true
		}
		return true
	})
	if waker {
		out = wwApply(out, func(s int) int { return s &^ wwPending })
	}
	return out
}

func wwApply(set uint64, f func(int) int) uint64 {
	var out uint64
	for s := 0; s < wwStates; s++ {
		if set&(1<<s) != 0 {
			out |= 1 << f(s)
		}
	}
	return out
}

// wwTriggers returns the waiter-visible state assignments inside node (not
// descending into literals — those are separate units). An assignment
// counts when the LHS is a selector of a Policy.WaitWakeStates type and the
// RHS is not one of the type's listed non-observable constants; an RHS the
// analysis cannot resolve to a constant counts (conservative: failPending's
// parameterized status is a trigger, and is justified in the allowlist).
func wwTriggers(m *Module, p *Policy, pkg *Package, node ast.Node, all bool) []ast.Node {
	var triggers []ast.Node
	inspectSkipLits(node, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			se, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			t := pkg.Info.TypeOf(se)
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				continue
			}
			qual := relQualified(m.Path, named.Obj().Pkg().Path()) + "." + named.Obj().Name()
			nonObservable, watched := p.WaitWakeStates[qual]
			if !watched {
				continue
			}
			if len(as.Lhs) == len(as.Rhs) && wwIsNonObservableConst(pkg, as.Rhs[i], nonObservable) {
				continue
			}
			triggers = append(triggers, as)
			if !all {
				return false
			}
		}
		return true
	})
	return triggers
}

func wwIsNonObservableConst(pkg *Package, rhs ast.Expr, nonObservable []string) bool {
	var obj types.Object
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[e.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	for _, name := range nonObservable {
		if c.Name() == name {
			return true
		}
	}
	return false
}

func wwIsWakerCall(m *Module, p *Policy, pkg *Package, call *ast.CallExpr) bool {
	obj := calleeObject(pkg.Info, call)
	if obj == nil {
		return false
	}
	return p.WaitWakeWakers[relQualified(m.Path, objectQualifiedName(obj))]
}

// wwLitContainsWaker reports whether a deferred `func() { ... }()` literal
// contains a waker call anywhere in its body.
func wwLitContainsWaker(m *Module, p *Policy, pkg *Package, call *ast.CallExpr) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && wwIsWakerCall(m, p, pkg, c) {
			found = true
		}
		return !found
	})
	return found
}
