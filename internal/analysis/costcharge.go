package analysis

import (
	"fmt"
	"go/ast"
)

// CostChargeAnalyzer verifies that via/core code invoking the fabric/simnet
// entry points that model hardware doing work (frame transmission, endpoint
// attach) charges host CPU cost in the same function, or is explicitly
// excused in policy.go.
func CostChargeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "costcharge",
		Doc:  "fabric entry points reached from via/core must charge CPU cost",
		Explain: `docs/ARCHITECTURE.md, invariant 2 ("Costs are charged where the
hardware pays them"): host CPU costs are charged to the calling process,
NIC service runs on per-node busy-until timelines, wire time lives in the
fabric. The fabric entry points in policy.ChargeRequired (Cluster.Send,
SendMgmt, Attach, AttachNode) model a NIC or switch doing real work; if a
via/core function reaches one of them without also charging a cost
(Port.ChargeHost, Network.serviceTx/serviceRx, Proc.Compute/Sleep — the
policy.ChargeFuncs set), that work becomes free in virtual time and every
latency figure built on top quietly understates the device. Exceptions —
the out-of-band bootstrap network, boot-time attach — are declared with
justifications in policy.ChargeExempt.`,
		Run: runCostCharge,
	}
}

// costChargeScope is the set of packages whose calls into fabric/simnet are
// audited (module-relative paths).
var costChargeScope = map[string]bool{
	"internal/via":  true,
	"internal/core": true,
}

func runCostCharge(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if !costChargeScope[pkg.Rel] || pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ds = append(ds, checkCostCharge(m, p, pkg, file, fd)...)
			}
		}
	}
	return ds
}

func checkCostCharge(m *Module, p *Policy, pkg *Package, file *ast.File, fd *ast.FuncDecl) []Diagnostic {
	qual := enclosingFuncName(pkg, file, fd.Name.Pos())
	if _, exempt := p.ChargeExempt[qual]; exempt {
		return nil
	}

	var required []*ast.CallExpr // calls that demand a charge
	charges := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pkg.Info, call)
		if obj == nil {
			return true
		}
		name := relQualified(m.Path, objectQualifiedName(obj))
		if p.ChargeRequired[name] {
			required = append(required, call)
		}
		if p.ChargeFuncs[name] {
			charges = true
		}
		return true
	})
	if charges || len(required) == 0 {
		return nil
	}
	var ds []Diagnostic
	for _, call := range required {
		obj := calleeObject(pkg.Info, call)
		ds = append(ds, Diagnostic{
			Pos:  m.Position(call.Pos()),
			Rule: "costcharge",
			Message: fmt.Sprintf("%s calls %s without charging host CPU cost; add a ChargeHost/Compute (or book NIC service), or declare the exemption in policy.go",
				qual, relQualified(m.Path, objectQualifiedName(obj))),
		})
	}
	return ds
}
