package analysis

import (
	"fmt"
	"go/ast"
	"sort"
)

// ChargeFlowAnalyzer is the interprocedural replacement for the syntactic
// costcharge rule: instead of demanding that a function calling a fabric
// entry point charges cost in the same body, it verifies that every CFG
// path from an MPI entry point to a fabric transmit passes a CPU-cost
// charge somewhere along the call chain — charges made inside helpers
// count, and transmits buried inside helpers are found.
func ChargeFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "chargeflow",
		Doc:  "every path from an MPI entry point to a fabric transmit must charge CPU cost",
		Explain: `docs/ARCHITECTURE.md, invariant 2 ("Costs are charged where the hardware
pays them"): a fabric transmit (Policy.ChargeRequired: Cluster.Send,
SendMgmt, Attach, AttachNode) models a NIC or switch doing real work, so
any route the software takes to one must book cost against virtual time
(Policy.ChargeFuncs: ChargeHost, serviceTx/serviceRx/sendFrame,
Compute/Sleep) or the paper's latency curves quietly understate the
device. The costcharge rule checks this per-body, which both misses
uncharged paths assembled across functions and cannot credit a charge
made inside a helper. This rule computes, over the shared call graph, two
summaries to fixpoint: alwaysCharges(F) — every path through F charges
before returning — and uncharged(F) — some path from F's entry reaches a
transmit (a ChargeRequired call, or a call into an uncharged callee) with
no prior charge (a ChargeFuncs call, or a call into an alwaysCharges
callee). A diagnostic fires for every exported function of a
Policy.ChargeRootPkgs package — the MPI entry points — that is uncharged,
citing the first witness site. Reviewed exceptions (the out-of-band
bootstrap network, boot-time attach) live in Policy.ChargeFlowExempt.`,
		Run: runChargeFlow,
	}
}

// cfSite is one precomputed call site relevant to the uncharged fixpoint:
// a transmit, or a call whose callee may itself be uncharged.
type cfSite struct {
	node            ast.Node
	beforeUncharged bool // some path reaches this site with no charge yet
	direct          bool // a ChargeRequired call
	callees         []string
	desc            string // what the site calls, for the message
}

func runChargeFlow(m *Module, p *Policy) []Diagnostic {
	ip := m.Interproc()

	chargeCall := func(pkg *Package, call *ast.CallExpr) (qual string, charges, transmits bool) {
		obj := calleeObject(pkg.Info, call)
		if obj == nil {
			return "", false, false
		}
		qual = relQualified(m.Path, objectQualifiedName(obj))
		return qual, p.ChargeFuncs[qual], p.ChargeRequired[qual]
	}

	// alwaysCharges: greatest fixpoint — start optimistic, strike functions
	// with a charge-free path to return. ChargeFuncs members are charges by
	// definition.
	always := map[string]bool{}
	for _, key := range ip.Keys {
		always[key] = true
	}
	ip.fixpoint(func(key string) bool {
		if !always[key] || p.ChargeFuncs[key] {
			return false
		}
		f := ip.Funcs[key]
		var body *ast.BlockStmt
		for _, u := range f.Units {
			if u.lit == nil {
				body = u.body
				break
			}
		}
		if body == nil {
			return false
		}
		// Bit 0: no charge yet on some path. A charge on a path moves it to
		// bit 1. Charges inside literals run in a later activation and do
		// not count for the calling path.
		exit := exitMayState(body, 1<<0, func(node ast.Node, in uint64) uint64 {
			charged := false
			inspectSkipLits(node, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, c, _ := chargeCall(f.Pkg, call); c {
						charged = true
					} else if obj := calleeObject(f.Pkg.Info, call); obj != nil {
						if q := relQualified(m.Path, objectQualifiedName(obj)); always[q] && ip.Funcs[q] != nil {
							charged = true
						}
					}
				}
				return true
			})
			if charged {
				return lkApply(in, func(s int) int { return 1 })
			}
			return in
		})
		if exit&(1<<0) != 0 {
			always[key] = false
			return true
		}
		return false
	})

	// Precompute, per function, the sites the uncharged fixpoint inspects,
	// each with its "may be uncharged here" entry state. The dataflow only
	// depends on `always` (now fixed), so this runs once.
	sites := map[string][]cfSite{}
	skip := func(key string) bool {
		if p.ChargeFuncs[key] {
			return true
		}
		if _, exempt := p.ChargeFlowExempt[key]; exempt {
			return true
		}
		return false
	}
	transfer := func(pkg *Package, node ast.Node, in uint64) uint64 {
		charged := false
		inspectSkipLits(node, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if q, c, _ := chargeCall(pkg, call); c || (always[q] && ip.Funcs[q] != nil) {
					charged = true
				}
			}
			return true
		})
		if charged {
			return lkApply(in, func(s int) int { return 1 })
		}
		return in
	}
	for _, key := range ip.Keys {
		if skip(key) {
			continue
		}
		f := ip.Funcs[key]
		for _, u := range f.Units {
			// A literal runs in its own activation (a scheduled callback),
			// where nothing charged by the enclosing body is still "on the
			// path" — it starts uncharged.
			states := nodeMayStates(u.body, 1<<0, func(node ast.Node, in uint64) uint64 {
				return transfer(f.Pkg, node, in)
			})
			inspectSkipLits(u.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				qual, _, transmits := chargeCall(f.Pkg, call)
				callees := resolveSiteCallees(ip, key, call)
				if !transmits && len(callees) == 0 {
					return true
				}
				in, reached := loStateAt(states, u.body, n)
				if !reached {
					return true
				}
				sites[key] = append(sites[key], cfSite{
					node:            call,
					beforeUncharged: in&(1<<0) != 0,
					direct:          transmits,
					callees:         callees,
					desc:            qual,
				})
				return true
			})
		}
	}

	// uncharged: least fixpoint over the precomputed sites.
	uncharged := map[string]bool{}
	witness := map[string]cfSite{}
	ip.fixpoint(func(key string) bool {
		if uncharged[key] || skip(key) {
			return false
		}
		for _, s := range sites[key] {
			if !s.beforeUncharged {
				continue
			}
			hit := s.direct
			if !hit {
				for _, callee := range s.callees {
					if uncharged[callee] {
						hit = true
						break
					}
				}
			}
			if hit {
				uncharged[key] = true
				witness[key] = s
				return true
			}
		}
		return false
	})

	// Report the MPI entry points: exported functions of the root packages.
	var ds []Diagnostic
	var roots []string
	for _, key := range ip.Keys {
		f := ip.Funcs[key]
		if f.Exported && p.ChargeRootPkgs[f.Pkg.Rel] && uncharged[key] {
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)
	for _, key := range roots {
		w := witness[key]
		what := "a fabric transmit"
		if !w.direct {
			what = fmt.Sprintf("an uncharged path in %s", firstUnchargedCallee(w, uncharged))
		} else if w.desc != "" {
			what = w.desc
		}
		ds = append(ds, Diagnostic{
			Pos:  m.Position(w.node.Pos()),
			Rule: "chargeflow",
			Message: fmt.Sprintf("MPI entry point %s reaches %s without charging CPU cost on some path; the transmit becomes free in virtual time — charge (ChargeHost/Compute) before it, or justify in Policy.ChargeFlowExempt",
				key, what),
		})
	}
	return ds
}

// firstUnchargedCallee names the callee the witness path descends into.
func firstUnchargedCallee(s cfSite, uncharged map[string]bool) string {
	for _, callee := range s.callees {
		if uncharged[callee] {
			return callee
		}
	}
	return "a callee"
}
