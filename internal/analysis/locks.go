package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// locks abstract states (bit indices): whether this mutex may be held, and
// whether a deferred Unlock is armed.
const (
	lkHeld     = 1 << 0
	lkDeferred = 1 << 1
	lkStates   = 4
)

// LocksAnalyzer enforces the leaf-lock discipline on the one place viampi
// tolerates a mutex (the tcpvia metrics leaf) and on any other lock the code
// grows: every Lock is paired with an Unlock or defer-Unlock on all CFG
// paths, no Lock while the same mutex may already be held, and — for
// policy-declared leaf locks — no call into a layered simulation package
// while the leaf is held.
func LocksAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "locks",
		Doc:  "every Lock pairs with an Unlock on all paths; leaf locks never held across layered calls",
		Explain: `docs/ARCHITECTURE.md, "Enforced invariants": the simulated world is
single-threaded by construction (the determinism rule bans sync there), so
the only mutexes in the tree live in internal/tcpvia, the real-socket twin
that talks to actual kernel threads. Its metrics mutex is documented as a
*leaf* lock: acquired last, released before calling anything that could
take another lock. That contract is what makes the lock hierarchy trivially
deadlock-free — the moment a leaf-held thread re-enters a layered package
(via, fabric, mpi...), it can reach code that parks, takes node locks, or
calls back into metrics, and the hierarchy is gone. This rule checks, per
CFG path: a Lock is always discharged by an Unlock or defer-Unlock before
return (a leaked lock hangs the next reader the way a missed wake hangs a
waiter); a Lock never re-acquires a mutex that may already be held
(self-deadlock); and while a Policy.LeafLocks mutex may be held, no call
resolves into a package with a layer assignment in the DAG.`,
		Run: runLocks,
	}
}

// lockOp classifies one mutex call site.
type lockOp struct {
	call  *ast.CallExpr
	key   string // textual receiver ("n.mu"): one dataflow domain per key
	field string // qualified field ("internal/tcpvia.(Manager).metricsMu") or ""
	lock  bool   // Lock/RLock vs Unlock/RUnlock
	read  bool   // RLock/RUnlock (shared: re-acquiring is not self-deadlock)
}

func runLocks(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, u := range funcUnits(pkg, file) {
				if _, exempt := p.LockExempt[u.name]; exempt {
					continue
				}
				ds = append(ds, checkLocks(m, p, pkg, u)...)
			}
		}
	}
	return ds
}

func checkLocks(m *Module, p *Policy, pkg *Package, u funcUnit) []Diagnostic {
	// Collect the mutex keys this unit touches; no keys, no CFG needed.
	keys := map[string]bool{}
	var order []string
	inspectSkipLits(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := classifyLockOp(m, pkg, call); op != nil && !keys[op.key] {
			keys[op.key] = true
			order = append(order, op.key)
		}
		return true
	})
	if len(order) == 0 {
		return nil
	}

	g := buildCFG(u.body)
	var ds []Diagnostic
	for _, key := range order {
		ds = append(ds, checkLockKey(m, p, pkg, u, g, key)...)
	}
	return ds
}

// checkLockKey runs the held-state dataflow for one mutex key: a fixpoint
// pass to compute block in-states, then one deterministic reporting pass.
func checkLockKey(m *Module, p *Policy, pkg *Package, u funcUnit, g *cfg, key string) []Diagnostic {
	transfer := func(report func(Diagnostic)) func(blk *cfgBlock, in uint64) uint64 {
		return func(blk *cfgBlock, in uint64) uint64 {
			for _, node := range blk.nodes {
				in = lkTransferNode(m, p, pkg, u, key, node, in, report)
			}
			return in
		}
	}
	in := blockStates(g, 1<<0, transfer(nil)) // entry: not held, no defer

	// Reporting pass: revisit reached blocks in construction order with the
	// final in-states, so diagnostics are emitted deterministically and
	// exactly once per site.
	var ds []Diagnostic
	report := transfer(func(d Diagnostic) { ds = append(ds, d) })
	for _, blk := range g.blocks {
		if s, reached := in[blk]; reached {
			report(blk, s)
		}
	}
	var firstLock *ast.CallExpr
	inspectSkipLits(u.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && firstLock == nil {
			if op := classifyLockOp(m, pkg, call); op != nil && op.key == key && op.lock {
				firstLock = call
			}
		}
		return firstLock == nil
	})

	exit := in[g.exit]
	for s := 0; s < lkStates; s++ {
		if exit&(1<<s) == 0 {
			continue
		}
		if s&lkHeld != 0 && s&lkDeferred == 0 && firstLock != nil {
			ds = append(ds, Diagnostic{
				Pos:  m.Position(firstLock.Pos()),
				Rule: "locks",
				Message: fmt.Sprintf("%s: %s.Lock has no Unlock on some path to return; a leaked lock hangs the next acquirer — add defer %s.Unlock() or unlock on every path",
					u.name, key, key),
			})
		}
	}
	return ds
}

// lkTransferNode folds one CFG node into the held-state set for key,
// reporting per-site violations when report is non-nil.
func lkTransferNode(m *Module, p *Policy, pkg *Package, u funcUnit, key string, node ast.Node, in uint64, report func(Diagnostic)) uint64 {
	// defer mu.Unlock() (direct or inside a deferred literal) arms the
	// deferred bit; it discharges the lock at return on every later path.
	if def, ok := node.(*ast.DeferStmt); ok {
		if lkDeferredUnlocks(m, pkg, def, key) {
			return lkApply(in, func(s int) int { return s | lkDeferred })
		}
		return in
	}

	out := in
	inspectSkipLits(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op := classifyLockOp(m, pkg, call)
		switch {
		case op != nil && op.key == key && op.lock:
			if !op.read && lkAnyHeld(out) && report != nil {
				report(Diagnostic{
					Pos:  m.Position(call.Pos()),
					Rule: "locks",
					Message: fmt.Sprintf("%s: %s.Lock while %s may already be held (self-deadlock)",
						u.name, key, key),
				})
			}
			out = lkApply(out, func(s int) int { return s | lkHeld })
		case op != nil && op.key == key && !op.lock:
			if !lkAnyHeld(out) && report != nil {
				report(Diagnostic{
					Pos:     m.Position(call.Pos()),
					Rule:    "locks",
					Message: fmt.Sprintf("%s: %s.Unlock while %s cannot be held on any path here", u.name, key, key),
				})
			}
			out = lkApply(out, func(s int) int { return s &^ lkHeld })
		case op == nil:
			// Ordinary call: the leaf-lock re-entry check.
			leaf := lkLeafFor(m, p, pkg, u, key)
			if leaf == "" || !lkAnyHeld(out) {
				return true
			}
			if rel, layered := lkLayeredCallee(m, p, pkg, call); layered && report != nil {
				report(Diagnostic{
					Pos:  m.Position(call.Pos()),
					Rule: "locks",
					Message: fmt.Sprintf("%s: call into layered package %s while leaf lock %s may be held; the leaf contract (%s) is acquire-last/release-first — release before re-entering the stack",
						u.name, rel, key, leaf),
				})
			}
		}
		return true
	})
	return out
}

// lkAnyHeld reports whether any reachable state holds the lock.
func lkAnyHeld(set uint64) bool {
	return set&(1<<lkHeld) != 0 || set&(1<<(lkHeld|lkDeferred)) != 0
}

func lkApply(set uint64, f func(int) int) uint64 {
	var out uint64
	for s := 0; s < lkStates; s++ {
		if set&(1<<s) != 0 {
			out |= 1 << f(s)
		}
	}
	return out
}

// lkLeafFor returns the LeafLocks justification when key names a declared
// leaf mutex in this unit (matched via the qualified field of any lock op
// with this key), else "".
func lkLeafFor(m *Module, p *Policy, pkg *Package, u funcUnit, key string) string {
	why := ""
	inspectSkipLits(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := classifyLockOp(m, pkg, call); op != nil && op.key == key && op.field != "" {
			if j, isLeaf := p.LeafLocks[op.field]; isLeaf {
				why = j
				return false
			}
		}
		return true
	})
	return why
}

// lkLayeredCallee reports whether call resolves into a package with a layer
// assignment (the simulated stack); shared leaves (obs, trace) and the
// standard library are fine under a leaf lock.
func lkLayeredCallee(m *Module, p *Policy, pkg *Package, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	rel, inModule := lkRelPath(m, obj.Pkg().Path())
	if !inModule {
		return "", false
	}
	_, layered := p.Layers[rel]
	return rel, layered
}

func lkRelPath(m *Module, pkgPath string) (string, bool) {
	if pkgPath == m.Path {
		return "", true
	}
	if rel, ok := cutPrefix(pkgPath, m.Path+"/"); ok {
		return rel, true
	}
	return "", false
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// lkDeferredUnlocks reports whether def discharges key: `defer mu.Unlock()`
// or a deferred literal whose body unlocks it.
func lkDeferredUnlocks(m *Module, pkg *Package, def *ast.DeferStmt, key string) bool {
	if op := classifyLockOp(m, pkg, def.Call); op != nil && op.key == key && !op.lock {
		return true
	}
	lit, ok := def.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := classifyLockOp(m, pkg, call); op != nil && op.key == key && !op.lock {
				found = true
			}
		}
		return !found
	})
	return found
}

// classifyLockOp recognizes mutex method calls: <expr>.Lock/Unlock/RLock/
// RUnlock where <expr> has type sync.Mutex or sync.RWMutex (possibly
// through a pointer).
func classifyLockOp(m *Module, pkg *Package, call *ast.CallExpr) *lockOp {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var lock, read bool
	switch se.Sel.Name {
	case "Lock":
		lock = true
	case "RLock":
		lock, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return nil
	}
	t := pkg.Info.TypeOf(se.X)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil
	}
	op := &lockOp{call: call, key: exprText(se.X), lock: lock, read: read}
	if rse, ok := ast.Unparen(se.X).(*ast.SelectorExpr); ok {
		op.field = fieldQualified(m, pkg, rse)
	}
	return op
}

// exprText renders the receiver expression as the dataflow key. Same
// spelling ⇒ same mutex within one function body, which holds for the
// receiver chains this codebase uses (n.mu, m.metricsMu).
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
