package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags `range` over a map whose body does anything
// order-sensitive — sends, posts, schedules, appends, or calls into other
// code — unless the keys are sorted first (the collect-keys-then-sort idiom
// is recognized, as is pure commutative accumulation).
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "no order-sensitive work inside an unsorted map iteration",
		Explain: `docs/ARCHITECTURE.md, invariant 1: a run is a pure function of its
Config. Go randomizes map iteration order on purpose, so a loop over a map
that posts descriptors, schedules events, appends to an ordered slice or
calls into any other layer produces a different event interleaving — and
therefore different virtual timestamps and figures — on every execution,
even with identical Configs. Purely commutative bodies (counting, summing,
writing into another map) are safe and allowed. The fix is the sorted-keys
idiom: collect the keys into a slice, sort it, then range over the slice;
the analyzer recognizes both halves of that idiom.

Packages listed in policy MapOrderStrict are held to a stricter bar: every
map iteration there must be the sorted-keys idiom, commutative or not.
Those are the emission packages whose output is compared byte-for-byte, so
an "order-insensitive" loop is one edit away from leaking map order into a
golden file.`,
		Run: runMapOrder,
	}
}

// mapOrderPureCalls are builtins with no observable ordering effect.
var mapOrderPureCalls = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"delete": true, "make": true, "new": true,
}

func runMapOrder(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if _, exempt := p.DeterminismExempt[pkg.Rel]; exempt {
			continue
		}
		if pkg.Info == nil {
			continue
		}
		_, strict := p.MapOrderStrict[pkg.Rel]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				qual := enclosingFuncName(pkg, file, fd.Name.Pos())
				if _, allowed := p.MapOrderAllow[qual]; allowed {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok || !isMapRange(pkg.Info, rs) {
						return true
					}
					if d, bad := checkMapRange(m, pkg, fd, rs, qual, strict); bad {
						ds = append(ds, d)
					}
					return true
				})
			}
		}
	}
	return ds
}

// isMapRange reports whether rs iterates a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange classifies one map-range body. It returns a diagnostic for
// order-sensitive bodies that are neither pure accumulation nor the
// key-collection half of the sorted-keys idiom.
func checkMapRange(m *Module, pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, qual string, strict bool) (Diagnostic, bool) {
	keyObj := rangeKeyObject(pkg.Info, rs)

	var reason string
	var appendTargets []types.Object // distinct slices appended to
	keyOnlyAppends := true

	note := func(n ast.Node, what string) {
		if reason == "" {
			pos := m.Position(n.Pos())
			reason = fmt.Sprintf("%s (line %d)", what, pos.Line)
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt:
			note(node, "sends on a channel")
		case *ast.GoStmt:
			note(node, "spawns a goroutine")
		case *ast.FuncLit:
			return false // deferred work; analyzed where it is called
		case *ast.CallExpr:
			fun := ast.Unparen(node.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if mapOrderPureCalls[id.Name] {
					return true
				}
				if id.Name == "append" {
					tgt, keyOnly := classifyAppend(pkg.Info, node, keyObj)
					if tgt != nil {
						appendTargets = appendDistinct(appendTargets, tgt)
					}
					if !keyOnly {
						keyOnlyAppends = false
						note(node, "appends a non-key value to a slice (ordered output)")
					}
					return true
				}
			}
			if isConversion(pkg.Info, node) {
				return true
			}
			note(node, fmt.Sprintf("calls %s", callLabel(node)))
		}
		return true
	})

	// Pure commutative body: nothing ordered touched. Accepted everywhere
	// except strict packages, where only the sorted-keys idiom passes.
	if reason == "" && len(appendTargets) == 0 {
		if !strict {
			return Diagnostic{}, false
		}
		return Diagnostic{
			Pos:  m.Position(rs.Pos()),
			Rule: "maporder",
			Message: fmt.Sprintf("strict maporder package: iteration over map %s must use the collect-keys-then-sort idiom even with a commutative body (or allowlist %s in policy.go)",
				exprLabel(rs.X), qual),
		}, true
	}

	// Key-collection idiom: the only ordered effect is appending the range
	// key to one slice that is sorted before further use.
	if reason == "" && keyOnlyAppends && len(appendTargets) == 1 {
		if sortedAfter(pkg.Info, fd.Body, rs, appendTargets[0]) {
			return Diagnostic{}, false
		}
		return Diagnostic{
			Pos:  m.Position(rs.Pos()),
			Rule: "maporder",
			Message: fmt.Sprintf("map keys collected into %s but never sorted before use; sort the slice to make iteration order deterministic",
				appendTargets[0].Name()),
		}, true
	}

	if reason == "" { // e.g. the key appended to several slices
		reason = "appends to a slice (ordered output)"
	}
	return Diagnostic{
		Pos:  m.Position(rs.Pos()),
		Rule: "maporder",
		Message: fmt.Sprintf("iteration over map %s has an order-sensitive body: %s; sort the keys first (or allowlist %s in policy.go)",
			exprLabel(rs.X), reason, qual),
	}, true
}

// rangeKeyObject resolves the object of the range key variable, or nil.
func rangeKeyObject(info *types.Info, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// classifyAppend inspects `s = append(s, args...)`: it returns the object
// of the target slice (nil if unresolvable) and whether every appended
// value is exactly the range key variable.
func classifyAppend(info *types.Info, call *ast.CallExpr, keyObj types.Object) (types.Object, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	var tgt types.Object
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		tgt = info.Uses[id]
		if tgt == nil {
			tgt = info.Defs[id]
		}
	}
	keyOnly := keyObj != nil
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || info.Uses[id] != keyObj {
			keyOnly = false
		}
	}
	return tgt, keyOnly
}

// appendDistinct adds obj to objs if not present.
func appendDistinct(objs []types.Object, obj types.Object) []types.Object {
	for _, o := range objs {
		if o == obj {
			return objs
		}
	}
	return append(objs, obj)
}

// sortedAfter reports whether, somewhere after rs in the enclosing function
// body, the slice obj is passed to a sort.* / slices.Sort* call.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee := info.Uses[sel.Sel]
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			sorted := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
			if sorted {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// callLabel renders a short name for the called function.
func callLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "a function value"
}

// exprLabel renders a short source-ish label for an expression.
func exprLabel(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprLabel(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprLabel(x.X) + "[...]"
	case *ast.CallExpr:
		return callLabel(x) + "()"
	}
	return "expression"
}
