package analysis

// The capture pipeline's contract, observed end to end: every artifact a
// live run renders (Perfetto trace, metrics in all three formats, the phase
// table) must be byte-identical when re-rendered offline from the run's
// capture bundle. This is what makes a bundle a faithful flight record —
// ship the .bin, regenerate everything else.

import (
	"bytes"
	"fmt"
	"testing"

	"viampi/internal/apps"
	"viampi/internal/mpi"
	"viampi/internal/obs"
	"viampi/internal/obs/capture"
	"viampi/internal/simnet"
)

// artifacts are the rendered outputs under comparison.
type artifacts struct {
	perfetto, metricsText, metricsCSV, metricsJSON, phaseTable string
}

func renderFrom(t *testing.T, rec *obs.Recorder, reg *obs.Registry, rows []obs.PhaseRow) artifacts {
	t.Helper()
	var tr, mt, mc, mj, ph bytes.Buffer
	if err := rec.WritePerfetto(&tr); err != nil {
		t.Fatalf("perfetto: %v", err)
	}
	reg.WriteText(&mt)
	reg.WriteCSV(&mc)
	reg.WriteJSON(&mj)
	obs.WritePhaseTable(&ph, rows)
	return artifacts{tr.String(), mt.String(), mc.String(), mj.String(), ph.String()}
}

// liveRun executes the CG replay with the full consumer stack plus a capture
// writer, returning the live artifacts and the sealed bundle bytes.
func liveRun(t *testing.T, cfg mpi.Config, rounds, msgBytes int) (artifacts, []byte) {
	t.Helper()
	bus := obs.NewBus()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	reg := obs.NewRegistry()
	obs.NewCollector(reg).Attach(bus)
	cfg.Obs = bus
	cfg.Deadline = 30 * simnet.Second
	cw, bundle, err := attachCapture(&cfg, rounds, msgBytes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := apps.Replay(apps.CG(), cfg, rounds, msgBytes)
	if err != nil {
		t.Fatalf("replay (%s, %d procs): %v", cfg.Policy, cfg.Procs, err)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("sealing bundle: %v", err)
	}

	// Live phase rows come from the World, exactly as mpi.World.WritePhases
	// builds them.
	var rows []obs.PhaseRow
	for _, rs := range w.Ranks {
		if rs.Phases != nil {
			rows = append(rows, obs.PhaseRow{Rank: rs.Rank, Elapsed: int64(w.Elapsed), P: rs.Phases})
		}
	}
	if len(rows) != cfg.Procs {
		t.Fatalf("%d phase rows for %d ranks", len(rows), cfg.Procs)
	}
	return renderFrom(t, rec, reg, rows), bundle.Bytes()
}

// replayBundle decodes the bundle and re-renders every artifact through
// fresh consumers.
func replayBundle(t *testing.T, raw []byte) artifacts {
	t.Helper()
	b, err := capture.ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding bundle: %v", err)
	}
	bus := obs.NewBus()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	reg := obs.NewRegistry()
	obs.NewCollector(reg).Attach(bus)
	b.EmitAll(bus)
	return renderFrom(t, rec, reg, b.PhaseRows())
}

func compareArtifacts(t *testing.T, live, replayed artifacts) {
	t.Helper()
	check := func(name, a, b string) {
		if a == b {
			return
		}
		// Find the first differing line for an actionable failure.
		la, lb := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Errorf("%s differs at line %d:\n  live:   %s\n  replay: %s", name, i+1, la[i], lb[i])
				return
			}
		}
		t.Errorf("%s differs in length: live %d bytes, replay %d bytes", name, len(a), len(b))
	}
	check("perfetto trace", live.perfetto, replayed.perfetto)
	check("metrics text", live.metricsText, replayed.metricsText)
	check("metrics CSV", live.metricsCSV, replayed.metricsCSV)
	check("metrics JSON", live.metricsJSON, replayed.metricsJSON)
	check("phase table", live.phaseTable, replayed.phaseTable)
}

// TestReplayReproducesLiveArtifacts is the record→replay identity matrix:
// 8 and 16 ranks under both connection-policy families.
func TestReplayReproducesLiveArtifacts(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, policy := range []string{"static-p2p", "ondemand"} {
		for _, procs := range []int{8, 16} {
			t.Run(fmt.Sprintf("%s/p%d", policy, procs), func(t *testing.T) {
				cfg := mpi.Config{Procs: procs, Policy: policy, Seed: 42}
				live, bundle := liveRun(t, cfg, rounds, msgBytes)
				replayed := replayBundle(t, bundle)
				compareArtifacts(t, live, replayed)
				if live.perfetto == "" || live.metricsJSON == "" || live.phaseTable == "" {
					t.Fatal("live artifacts empty; the identity check would be vacuous")
				}
			})
		}
	}
}
