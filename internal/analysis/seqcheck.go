package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SeqCheckAnalyzer is the use-after-close sequencing rule: once a variable
// has been through a closing function (Policy.SeqCheckClose), no send entry
// point (Policy.SeqCheckSend) may be rooted at it until the variable is
// rebound — which is exactly what the reconnect path does (a fresh channel
// from Rank.channel).
func SeqCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "seqcheck",
		Doc:  "no send on an evicted or closed channel without an interposed reconnect",
		Explain: `docs/ARCHITECTURE.md, the eviction/reconnect lifecycle: teardownChannel
dismantles a channel (closes the VI, deregisters eager-pool memory,
forgets the peer), so any send posted afterwards on the same variable
rides a dead endpoint — the descriptor is silently lost, which the PR 3
quiescence handshake exists to prevent. The reconnect path never has this
problem because it rebinds: Rank.channel returns a fresh chanState and the
held pendingClose packet is re-posted on that. This rule runs a per-
function may-analysis: a call to a Policy.SeqCheckClose function marks the
channel-typed variables it roots at as closed; reassigning the variable
clears the mark; a Policy.SeqCheckSend call rooted at a still-marked
variable is diagnosed. The closing functions' own bodies are exempt (they
drain and re-post holds by design), and reviewed exceptions live in
Policy.SeqCheckAllow.`,
		Run: runSeqCheck,
	}
}

func runSeqCheck(m *Module, p *Policy) []Diagnostic {
	if len(p.SeqCheckClose) == 0 || len(p.SeqCheckSend) == 0 {
		return nil
	}
	ip := m.Interproc()
	var ds []Diagnostic
	for _, key := range ip.Keys {
		if _, closer := p.SeqCheckClose[key]; closer {
			continue // the closer's body re-posts holds by design
		}
		if _, allowed := p.SeqCheckAllow[key]; allowed {
			continue
		}
		f := ip.Funcs[key]
		for _, u := range f.Units {
			ds = append(ds, seqCheckUnit(m, p, f, u, key)...)
		}
	}
	return ds
}

func seqCheckUnit(m *Module, p *Policy, f *IPFunc, u funcUnit, key string) []Diagnostic {
	info := f.Pkg.Info
	qualOf := func(call *ast.CallExpr) string {
		obj := calleeObject(info, call)
		if obj == nil {
			return ""
		}
		return relQualified(m.Path, objectQualifiedName(obj))
	}

	// Pass 1: the closed-variable universe — roots of close calls. A root
	// is a pointer-to-struct argument (the channel being dismantled), or
	// the receiver base when the closer is a method with no such argument.
	var vars []types.Object
	index := map[types.Object]int{}
	addRoot := func(obj types.Object) {
		if obj == nil {
			return
		}
		if _, seen := index[obj]; !seen && len(vars) < 64 {
			index[obj] = len(vars)
			vars = append(vars, obj)
		}
	}
	rootsOf := func(call *ast.CallExpr) []types.Object {
		var roots []types.Object
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
				roots = append(roots, obj)
			}
		}
		if len(roots) == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := seqBaseIdent(sel.X); ok {
					roots = append(roots, info.Uses[id])
				}
			}
		}
		return roots
	}
	inspectSkipLits(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, closes := p.SeqCheckClose[qualOf(call)]; closes {
			for _, r := range rootsOf(call) {
				addRoot(r)
			}
		}
		return true
	})
	if len(vars) == 0 {
		return nil
	}

	parent := prParentMap(u.body)
	cfgNodes := prCFGNodeSet(u.body)
	cfgStmt := func(n ast.Node) ast.Node {
		for n != nil {
			if cfgNodes[n] {
				return n
			}
			n = parent[n]
		}
		return nil
	}

	// Per-node effects: bit i set = vars[i] has been closed on some path.
	type seqEffect struct{ close, rebind uint64 }
	effects := map[ast.Node]*seqEffect{}
	effectAt := func(n ast.Node) *seqEffect {
		e := effects[n]
		if e == nil {
			e = &seqEffect{}
			effects[n] = e
		}
		return e
	}
	inspectSkipLits(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, closes := p.SeqCheckClose[qualOf(n)]; closes {
				if site := cfgStmt(n); site != nil {
					for _, r := range rootsOf(n) {
						if i, ok := index[r]; ok {
							effectAt(site).close |= 1 << i
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Rebinding the variable (cs, err = r.channel(peer)) clears the
			// mark: the reconnect path hands back a fresh channel.
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if i, ok := index[obj]; ok {
						if site := cfgStmt(n); site != nil {
							effectAt(site).rebind |= 1 << i
						}
					}
				}
			}
		}
		return true
	})

	transfer := func(node ast.Node, in uint64) uint64 {
		if e, ok := effects[node]; ok {
			in = (in &^ e.rebind) | e.close
		}
		return in
	}
	states := nodeMayStates(u.body, 0, transfer)

	var ds []Diagnostic
	inspectSkipLits(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		qual := qualOf(call)
		if _, sends := p.SeqCheckSend[qual]; !sends {
			return true
		}
		site := cfgStmt(call)
		if site == nil {
			return true
		}
		in, reached := loStateAt(states, u.body, site)
		if !reached {
			return true
		}
		for _, r := range seqSendRoots(info, call) {
			i, tracked := index[r]
			if !tracked || in&(1<<i) == 0 {
				continue
			}
			ds = append(ds, Diagnostic{
				Pos:  m.Position(call.Pos()),
				Rule: "seqcheck",
				Message: fmt.Sprintf("%s in %s is rooted at %s, which a Policy.SeqCheckClose function already closed on some path — the descriptor rides a dead endpoint; rebind via the reconnect path first, or justify in Policy.SeqCheckAllow",
					qual, key, r.Name()),
			})
			break
		}
		return true
	})
	return ds
}

// seqSendRoots returns the candidate roots of a send call: the receiver
// chain's base identifier plus any plain (or selector-based) identifier
// arguments' bases.
func seqSendRoots(info *types.Info, call *ast.CallExpr) []types.Object {
	var roots []types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := seqBaseIdent(sel.X); ok {
			if obj := info.Uses[id]; obj != nil {
				roots = append(roots, obj)
			}
		}
	}
	for _, arg := range call.Args {
		if id, ok := seqBaseIdent(arg); ok {
			if obj := info.Uses[id]; obj != nil {
				roots = append(roots, obj)
			}
		}
	}
	return roots
}

// seqBaseIdent walks a selector/index chain to its base identifier.
func seqBaseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
