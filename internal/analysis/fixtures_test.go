package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads the fixture module under testdata/src/fixmod.
func loadFixture(t *testing.T) *Module {
	t.Helper()
	m, err := LoadModule(filepath.Join("testdata", "src", "fixmod"))
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return m
}

// TestFixtureDiagnostics runs every analyzer over the fixture module and
// asserts the exact diagnostic set: each rule fires on its bad case at the
// right file:line, and none fires on the good cases.
func TestFixtureDiagnostics(t *testing.T) {
	m := loadFixture(t)
	ds := RunAll(m, FixturePolicy())

	var got []string
	for _, d := range ds {
		rel, err := filepath.Rel(m.Root, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside fixture root: %v", d)
		}
		got = append(got, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(rel), d.Pos.Line, d.Rule))
	}
	want := []string{
		"internal/core/determ.go:7: determinism",      // sync import
		"internal/core/determ.go:15: determinism",     // time.Now
		"internal/core/determ.go:20: determinism",     // naked goroutine
		"internal/core/determ.go:25: determinism",     // global rand.Intn
		"internal/mpi/chargeflow.go:32: chargeflow",   // SendUncharged: bare transmit through a helper
		"internal/mpi/chargeflow.go:55: chargeflow",   // SendBranchUncharged: fast branch skips the charge
		"internal/mpi/hotalloc.go:15: hotalloc",       // make on the hot path
		"internal/mpi/hotalloc.go:17: hotalloc",       // escaping composite literal
		"internal/mpi/hotalloc.go:19: hotalloc",       // closure literal
		"internal/mpi/hotalloc.go:21: hotalloc",       // string concatenation
		"internal/mpi/hotalloc.go:23: hotalloc",       // interface boxing
		"internal/mpi/maporder.go:9: maporder",        // append of values in map order
		"internal/mpi/maporder.go:18: maporder",       // keys collected, never sorted
		"internal/mpi/maporder.go:51: maporder",       // per-entry call
		"internal/obs/maporder.go:11: maporder",       // commutative body in a MapOrderStrict package
		"internal/obs/obs.go:17: exhaustive",          // strict String misses EvC despite default
		"internal/tcpvia/lockorder.go:8: determinism", // sync import (leaf exemption stripped)
		"internal/tcpvia/lockorder.go:47: lockorder",  // PairBA closes the Node.mu/Channel.mu cycle
		"internal/tcpvia/locks.go:8: determinism",     // sync import (leaf exemption stripped)
		"internal/tcpvia/locks.go:10: layering",       // restricted leaf imports a layered package
		"internal/tcpvia/locks.go:23: locks",          // Lock with no Unlock on the skip path
		"internal/tcpvia/locks.go:25: locks",          // layered call under the leaf lock
		"internal/via/enum.go:13: fsm",                // ViError is declared but no transition enters it
		"internal/via/enum.go:19: exhaustive",         // ViState switch misses ViClosed
		"internal/via/enum.go:71: exhaustive",         // wire-kind switch misses kindConnNack and kindDisc
		"internal/via/paired.go:31: paired",           // leakEarlyReturn: flush path returns still holding h
		"internal/via/paired.go:65: paired",           // discardHandle: result dropped, unreleasable
		"internal/via/paired.go:76: paired",           // doubleRelease: second Deregister of a dead handle
		"internal/via/paired.go:91: paired",           // storeLeak: field (holder).h has no releasing path
		"internal/via/paired.go:125: paired",          // wrapperCallerLeaks: obligation inherited from acquireWrapped
		"internal/via/protocol.go:17: protocol",       // kindDisc arm is dead: nothing sends it
		"internal/via/protocol.go:38: protocol",       // kindConnNack sent, no dispatcher arm
		"internal/via/seqcheck.go:29: seqcheck",       // sendAfterClose: post on the VI it just closed
		"internal/via/seqcheck.go:38: seqcheck",       // evictMaybe: closed on the evict branch, sent after the join
		"internal/via/via.go:6: layering",             // via imports mpi (upward)
		"internal/via/via.go:22: costcharge",          // Cluster.Send with no charge
		"internal/via/waitwake.go:35: waitwake",       // state flips closed, no waker on path
		"internal/via/waitwake.go:35: wakereach",      // CloseBad is exported and owes the wake itself
		"internal/via/wakereach.go:12: waitwake",      // failQuiet flips status, wake owed to callers
		"internal/via/wakereach.go:20: wakereach",     // AbortBad inherits the obligation, never wakes
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostic count: got %d, want %d\ngot:\n  %s", len(got), len(want), strings.Join(got, "\n  "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}

// TestFixtureMessagesCiteTheFix spot-checks that diagnostics tell the
// builder what to do, not just what is wrong.
func TestFixtureMessagesCiteTheFix(t *testing.T) {
	m := loadFixture(t)
	ds := RunAll(m, FixturePolicy())
	wantSubstrings := map[string]string{
		"determinism": "pure function of its Config",
		"maporder":    "sort the",
		"layering":    "standard library or a shared leaf",
		"costcharge":  "ChargeHost",
		"exhaustive":  "missing cases",
		"waitwake":    "notifyActivity",
		"locks":       "Unlock",
		"hotalloc":    "hot path",
		"lockorder":   "one global order",
		"protocol":    "handler arm",
		"chargeflow":  "Policy.ChargeFlowExempt",
		"wakereach":   "Policy.WakeReachAllow",
		"paired":      "Policy.PairedAllow",
		"fsm":         "wire a transition",
		"seqcheck":    "Policy.SeqCheckAllow",
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if sub, ok := wantSubstrings[d.Rule]; ok && strings.Contains(d.Message, sub) {
			seen[d.Rule] = true
		}
	}
	for rule := range wantSubstrings {
		if !seen[rule] {
			t.Errorf("no %s diagnostic mentions %q", rule, wantSubstrings[rule])
		}
	}
}

// TestExplainTextsCiteArchitecture verifies every analyzer explains itself
// against the invariant it guards (the -explain mode contract).
func TestExplainTextsCiteArchitecture(t *testing.T) {
	for _, a := range Analyzers() {
		if a.Explain == "" {
			t.Errorf("%s: empty Explain text", a.Name)
		}
		if !strings.Contains(a.Explain, "ARCHITECTURE.md") {
			t.Errorf("%s: Explain does not cite the ARCHITECTURE.md invariant it guards", a.Name)
		}
	}
	if ByName("layering") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}
