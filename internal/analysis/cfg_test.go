package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source for CFG construction.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc sentinel()\nfunc f(cond bool, xs []int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parsing test body: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd.Body
		}
	}
	t.Fatal("func f not found")
	return nil
}

// blockWithIdent finds the block whose nodes mention the given identifier.
// The tests mark interesting statements with uniquely-named calls.
func blockWithIdent(g *cfg, name string) *cfgBlock {
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	return nil
}

// mustReach asserts reachability of the block containing each named marker.
func mustReach(t *testing.T, g *cfg, want map[string]bool) {
	t.Helper()
	r := g.reachable()
	for name, reach := range want {
		b := blockWithIdent(g, name)
		if b == nil {
			t.Fatalf("marker %s not placed in any block", name)
		}
		if r[b] != reach {
			t.Errorf("marker %s: reachable=%v, want %v", name, r[b], reach)
		}
	}
}

func TestCFGLinear(t *testing.T) {
	g := buildCFG(parseBody(t, `
		a := 1
		b := a + 1
		_ = b
	`))
	if len(g.entry.nodes) != 3 {
		t.Errorf("linear body: entry has %d nodes, want 3", len(g.entry.nodes))
	}
	if !g.reachable()[g.exit] {
		t.Error("exit unreachable after straight-line body")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := buildCFG(parseBody(t, `
		if cond {
			thenMark()
			return
		}
		afterMark()
	`))
	mustReach(t, g, map[string]bool{"thenMark": true, "afterMark": true})
	if !g.reachable()[g.exit] {
		t.Error("exit unreachable: both return and fall-off should land there")
	}
}

func TestCFGUnconditionalReturn(t *testing.T) {
	g := buildCFG(parseBody(t, `
		return
		deadMark()
	`))
	mustReach(t, g, map[string]bool{"deadMark": false})
}

func TestCFGInfiniteLoopWithoutBreak(t *testing.T) {
	g := buildCFG(parseBody(t, `
		for {
			bodyMark()
		}
		afterMark()
	`))
	mustReach(t, g, map[string]bool{"bodyMark": true, "afterMark": false})
	if g.reachable()[g.exit] {
		t.Error("exit reachable through a cond-less loop with no break")
	}
}

func TestCFGLoopBreakAndContinue(t *testing.T) {
	g := buildCFG(parseBody(t, `
		for cond {
			if cond {
				continueMark()
				continue
			}
			breakMark()
			break
		}
		afterMark()
	`))
	mustReach(t, g, map[string]bool{
		"continueMark": true,
		"breakMark":    true,
		"afterMark":    true,
	})
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildCFG(parseBody(t, `
		for range xs {
			bodyMark()
		}
		afterMark()
	`))
	// A range loop can run zero times, so both the body and the join are live.
	mustReach(t, g, map[string]bool{"bodyMark": true, "afterMark": true})
}

func TestCFGSwitchNoDefault(t *testing.T) {
	g := buildCFG(parseBody(t, `
		switch {
		case cond:
			caseMark()
			return
		}
		afterMark()
	`))
	// No default: the tag can match nothing, so the join stays reachable.
	mustReach(t, g, map[string]bool{"caseMark": true, "afterMark": true})
}

func TestCFGSwitchAllReturn(t *testing.T) {
	g := buildCFG(parseBody(t, `
		switch {
		case cond:
			return
		default:
			return
		}
		afterMark()
	`))
	mustReach(t, g, map[string]bool{"afterMark": false})
}

func TestCFGFallthrough(t *testing.T) {
	g := buildCFG(parseBody(t, `
		switch {
		case cond:
			firstMark()
			fallthrough
		default:
			secondMark()
			return
		}
		afterMark()
	`))
	// Every clause returns (directly or via fallthrough), and a default
	// exists, so nothing survives the switch.
	mustReach(t, g, map[string]bool{
		"firstMark":  true,
		"secondMark": true,
		"afterMark":  false,
	})
}

func TestCFGPanicIsTerminal(t *testing.T) {
	g := buildCFG(parseBody(t, `
		if cond {
			panic("boom")
		}
		afterMark()
	`))
	mustReach(t, g, map[string]bool{"afterMark": true})

	g = buildCFG(parseBody(t, `
		panic("always")
		deadMark()
	`))
	mustReach(t, g, map[string]bool{"deadMark": false})
	if g.reachable()[g.exit] {
		t.Error("exit reachable past an unconditional panic")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := buildCFG(parseBody(t, `
		defer sentinel()
		bodyMark()
	`))
	found := false
	r := g.reachable()
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if _, ok := n.(*ast.DeferStmt); ok && r[b] {
				found = true
			}
		}
	}
	if !found {
		t.Error("defer statement not recorded in any reachable block")
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildCFG(parseBody(t, `
		goto Skip
		deadMark()
	Skip:
		afterMark()
	`))
	mustReach(t, g, map[string]bool{"deadMark": false, "afterMark": true})
}

// TestBlockStatesBranchUnion checks the may-analysis fixpoint: a bit set on
// one arm of a branch is visible (unioned) after the join, and a bit set in
// a loop body flows back to the loop head.
func TestBlockStatesBranchUnion(t *testing.T) {
	g := buildCFG(parseBody(t, `
		if cond {
			setMark()
		}
		useMark()
	`))
	const bit = uint64(1)
	states := blockStates(g, 0, func(b *cfgBlock, in uint64) uint64 {
		if blockWithIdent(g, "setMark") == b {
			return in | bit
		}
		return in
	})
	use := blockWithIdent(g, "useMark")
	if use == nil {
		t.Fatal("useMark block not found")
	}
	// In-state of the join must union the set arm with the unset arm.
	if states[use]&bit == 0 {
		t.Error("bit set on one branch arm did not reach the join in-state")
	}

	g = buildCFG(parseBody(t, `
		for cond {
			headMark()
			setMark()
		}
	`))
	states = blockStates(g, 0, func(b *cfgBlock, in uint64) uint64 {
		if blockWithIdent(g, "setMark") == b {
			return in | bit
		}
		return in
	})
	body := blockWithIdent(g, "headMark")
	if body == nil {
		t.Fatal("headMark block not found")
	}
	if states[body]&bit == 0 {
		t.Error("bit set in loop body did not flow around the back edge")
	}
}
