package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// LayeringAnalyzer enforces the ARCHITECTURE.md import DAG: every package
// imports strictly downward, the shared leaves (trace) import nothing from
// the module, and the restricted leaves (tcpvia, analysis) are reachable
// only from drivers.
func LayeringAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc:  "imports must follow the strictly-downward package DAG",
		Explain: `docs/ARCHITECTURE.md, "Layering contract": examples/cmd call the
workloads (bench, npb, apps), which sit on mpi, which plugs in core, which
drives via, which emits frames into fabric, which schedules on simnet. Each
package only imports downward. internal/obs and internal/trace are passive
observers any layer may feed, but they import nothing from the module except
each other (trace subscribes to the obs bus); internal/tcpvia is
the real-socket twin of internal/via and is reachable only from drivers.
An upward (or sideways) import collapses the layering that makes the
simulation analyzable — e.g. via reaching into mpi would let device models
observe library state that does not exist on real hardware.`,
		Run: runLayering,
	}
}

// layerOf classifies a module-relative package path. ok is false for
// packages the policy does not recognize at all.
func (p *Policy) layerOf(rel string) (layer int, ok bool) {
	if l, found := p.Layers[rel]; found {
		return l, true
	}
	if p.SharedLeaves[rel] || p.RestrictedLeaves[rel] {
		return 0, true
	}
	if rel == "" { // module root package (doc-only in viampi)
		return p.TopLayer, true
	}
	top := rel
	if i := strings.IndexByte(rel, '/'); i >= 0 {
		top = rel[:i]
	}
	if top == "cmd" || top == "examples" {
		return p.TopLayer, true
	}
	return 0, false
}

func runLayering(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if len(pkg.Files) == 0 {
			continue
		}
		fromLayer, known := p.layerOf(pkg.Rel)
		if !known {
			ds = append(ds, Diagnostic{
				Pos:  m.Position(pkgPos(pkg)),
				Rule: "layering",
				Message: fmt.Sprintf("package %s has no layer assignment; add it to the DAG in internal/analysis/policy.go",
					pkg.Path),
			})
			continue
		}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				toRel, inModule := strings.CutPrefix(path, m.Path+"/")
				if !inModule && path != m.Path {
					continue // stdlib or external; not this rule's business
				}
				if path == m.Path {
					toRel = ""
				}
				if d, bad := checkImportEdge(p, pkg, fromLayer, toRel, m.Position(imp.Pos())); bad {
					ds = append(ds, d)
				}
			}
		}
	}
	return ds
}

// checkImportEdge validates one intra-module import edge against the DAG.
func checkImportEdge(p *Policy, pkg *Package, fromLayer int, toRel string, pos token.Position) (Diagnostic, bool) {
	diag := func(format string, args ...interface{}) (Diagnostic, bool) {
		return Diagnostic{Pos: pos, Rule: "layering", Message: fmt.Sprintf(format, args...)}, true
	}
	// Leaf packages import nothing from the module, except that a leaf may
	// import a *shared* leaf (trace subscribes to the obs bus): shared
	// leaves are passive by construction, so the edge cannot reach back
	// into the simulation.
	if p.SharedLeaves[pkg.Rel] || p.RestrictedLeaves[pkg.Rel] {
		if p.SharedLeaves[toRel] && toRel != pkg.Rel {
			return Diagnostic{}, false
		}
		return diag("package %s must import only the standard library or a shared leaf, not %s", pkg.Rel, toRel)
	}
	// Shared leaves (trace) are importable from anywhere.
	if p.SharedLeaves[toRel] {
		return Diagnostic{}, false
	}
	// Restricted leaves (tcpvia, analysis) only from drivers.
	if p.RestrictedLeaves[toRel] {
		if fromLayer == p.TopLayer {
			return Diagnostic{}, false
		}
		return diag("%s is reachable only from cmd/ and examples/, not from %s", toRel, pkg.Rel)
	}
	toLayer, known := p.layerOf(toRel)
	if !known {
		return diag("import of unlayered module package %s; add it to the DAG in internal/analysis/policy.go", toRel)
	}
	if fromLayer <= toLayer {
		return diag("upward import: %s (layer %d) may not import %s (layer %d); the DAG flows examples/cmd → workloads → mpi → core → via → fabric → simnet",
			pkg.Rel, fromLayer, toRel, toLayer)
	}
	return Diagnostic{}, false
}

// pkgPos returns a stable position for package-level diagnostics: the
// package clause of the first file.
func pkgPos(pkg *Package) token.Pos {
	files := pkg.Files
	if len(files) == 0 {
		files = pkg.TestFiles
	}
	var first *ast.File
	for _, f := range files {
		if first == nil || f.Package < first.Package {
			first = f
		}
	}
	if first == nil {
		return token.NoPos
	}
	return first.Package
}
