package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ExhaustiveAnalyzer flags switches over closed constant sets that fail to
// handle every member. Two kinds of set are recognized, both discovered from
// the source rather than hand-listed so newly added members automatically
// invalidate stale switches:
//
//   - enum types: a named module type with ≥ 2 package-level constants
//     declared in an iota const block (via.ViState, via.Status, obs.Kind,
//     obs.Phase, mpi.SendMode, tcpvia.ViState);
//   - tagged byte fields: a struct field the policy maps to the anchor
//     constant of its wire-code block (via.(wireMsg).kind, mpi.(hdr).kind),
//     whose member set is every constant in that block.
//
// An explicit default normally satisfies the rule; functions listed in
// Policy.ExhaustiveStrict must still name every member, because their
// default is a fallback ("unknown"), not a handler.
func ExhaustiveAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "exhaustive",
		Doc:  "switches over closed constant sets must handle every member",
		Explain: `docs/ARCHITECTURE.md, "Enforced invariants": the on-demand protocol is a
distributed state machine per VI — connection states, descriptor statuses,
wire packet kinds and observability event kinds are all closed sets, and the
code that dispatches on them is scattered across layers. PR 3 found the decay
mode in the wild: kindConnNack and StatusDisconnected were added to the wire
protocol, and switches written before them silently fell through, leaving
handshake state half-reset and teardown treated as abort. This rule discovers
each set from its const block (go/types), so adding a member flags every
switch that has not caught up; a switch is exhaustive when it names every
member or carries an explicit default — except in Policy.ExhaustiveStrict
functions (String methods, the Perfetto event mapper), where the default is
an "unknown" fallback and reaching it is silent data corruption, so every
member must be named anyway.`,
		Run: runExhaustive,
	}
}

// enumSet is one closed constant set.
type enumSet struct {
	name    string // what diagnostics call it
	members []*types.Const
}

// missingMembers returns declaration-ordered names of members whose values
// are not covered, deduplicating aliases by constant value.
func (s *enumSet) missingMembers(covered map[string]bool) []string {
	var missing []string
	seenVal := map[string]bool{}
	for _, c := range s.members {
		v := c.Val().ExactString()
		if seenVal[v] {
			continue
		}
		seenVal[v] = true
		if !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	return missing
}

func runExhaustive(m *Module, p *Policy) []Diagnostic {
	enums, blocks := discoverConstSets(m, p)
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				set := setForTag(m, p, pkg, sw.Tag, enums, blocks)
				if set == nil {
					return true
				}
				covered, hasDefault, constant := caseValues(pkg, sw)
				if !constant {
					return true // a non-constant case expr: not a closed dispatch
				}
				missing := set.missingMembers(covered)
				if len(missing) == 0 {
					return true
				}
				fname := enclosingFuncName(pkg, file, sw.Pos())
				if hasDefault {
					if _, strict := p.ExhaustiveStrict[fname]; !strict {
						return true
					}
					ds = append(ds, Diagnostic{
						Pos:  m.Position(sw.Pos()),
						Rule: "exhaustive",
						Message: fmt.Sprintf("switch over %s is missing cases %s; %s is in ExhaustiveStrict, so its default is a fallback, not a handler — name every member",
							set.name, strings.Join(missing, ", "), fname),
					})
					return true
				}
				ds = append(ds, Diagnostic{
					Pos:  m.Position(sw.Pos()),
					Rule: "exhaustive",
					Message: fmt.Sprintf("switch over %s is missing cases %s; handle every member or add an explicit default (the set is every constant in the %s block, so new members flag stale switches)",
						set.name, strings.Join(missing, ", "), set.name),
				})
				return true
			})
		}
	}
	return ds
}

// discoverConstSets scans every const block in the module once, returning
// enum sets keyed by qualified type name ("internal/via.ViState") and whole
// blocks keyed by each member's qualified name (for Policy.TagFields
// anchors).
func discoverConstSets(m *Module, p *Policy) (map[string]*enumSet, map[string][]*types.Const) {
	enums := map[string]*enumSet{}
	blocks := map[string][]*types.Const{}
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST || !usesIota(gd) {
					continue
				}
				var group []*types.Const
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, name := range vs.Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || name.Name == "_" {
							continue
						}
						qual := pkg.Rel + "." + c.Name()
						if _, excluded := p.EnumExclude[qual]; excluded {
							continue
						}
						group = append(group, c)
					}
				}
				for _, c := range group {
					blocks[pkg.Rel+"."+c.Name()] = group
				}
				registerEnumMembers(m, pkg, enums, group)
			}
		}
	}
	for name, set := range enums {
		if len(set.members) < 2 {
			delete(enums, name)
		}
	}
	return enums, blocks
}

// registerEnumMembers files constants under their named type when that type
// is declared in the same module package (the enum idiom; untyped or basic
// constants like the wire byte codes are covered via TagFields instead).
func registerEnumMembers(m *Module, pkg *Package, enums map[string]*enumSet, group []*types.Const) {
	for _, c := range group {
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != pkg.Types {
			continue
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		qual := pkg.Rel + "." + obj.Name()
		set := enums[qual]
		if set == nil {
			set = &enumSet{name: qual}
			enums[qual] = set
		}
		set.members = append(set.members, c)
	}
}

// usesIota reports whether any value expression in the const decl mentions
// iota — the enum idiom marker. It distinguishes closed sets from unit
// constants (simnet.Microsecond and friends), which share a named type but
// are not a dispatch domain.
func usesIota(gd *ast.GenDecl) bool {
	found := false
	for _, spec := range gd.Specs {
		for _, v := range spec.(*ast.ValueSpec).Values {
			ast.Inspect(v, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "iota" {
					found = true
				}
				return !found
			})
		}
	}
	return found
}

// setForTag resolves the closed set a switch tag ranges over, or nil.
func setForTag(m *Module, p *Policy, pkg *Package, tag ast.Expr, enums map[string]*enumSet, blocks map[string][]*types.Const) *enumSet {
	tag = ast.Unparen(tag)
	// Tagged byte field (policy-declared): the member set is the anchor's
	// whole const block.
	if se, ok := tag.(*ast.SelectorExpr); ok {
		if field := fieldQualified(m, pkg, se); field != "" {
			if anchor, ok := p.TagFields[field]; ok {
				if group := blocks[anchor]; len(group) > 0 {
					return &enumSet{name: field, members: group}
				}
			}
		}
	}
	// Named enum type.
	t := pkg.Info.TypeOf(tag)
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	qual := relQualified(m.Path, named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	return enums[qual]
}

// fieldQualified renders a selector that resolves to a struct field as
// "rel/pkg.(Owner).field", or "" when se is not a field access.
func fieldQualified(m *Module, pkg *Package, se *ast.SelectorExpr) string {
	sel := pkg.Info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return ""
	}
	recv := sel.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return relQualified(m.Path, named.Obj().Pkg().Path()) + ".(" + named.Obj().Name() + ")." + se.Sel.Name
}

// caseValues collects the constant values named by the switch's cases.
// constant is false when any case expression is not a compile-time constant
// (the switch is then not a closed dispatch and is skipped).
func caseValues(pkg *Package, sw *ast.SwitchStmt) (covered map[string]bool, hasDefault, constant bool) {
	covered = map[string]bool{}
	constant = true
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				constant = false
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	return
}
