package analysis

// cfg.go is a lightweight intraprocedural control-flow graph over go/ast,
// built only on the standard library like the rest of the suite. It exists
// so the path-sensitive rules (waitwake, locks) can ask "does property P
// hold on *every* path to return?" instead of "does P appear somewhere in
// the body?" — the difference between catching the PR 3 VI.Close hang and
// missing it.
//
// The model is deliberately small:
//
//   - Blocks hold statements and branch conditions in execution order; every
//     function has one entry block and one synthetic exit block that all
//     returns (and the fall-off-the-end path) feed into.
//   - Function literals are NOT part of the enclosing graph: a literal's
//     body runs in its own activation, usually at another point of virtual
//     time (a scheduled callback), so each literal is analyzed as a separate
//     unit (see funcUnits).
//   - A statement that is a call to the builtin panic (or os.Exit) is
//     terminal: no edge to the exit, so paths that die are never checked
//     against return-path invariants.
//   - break/continue/goto/fallthrough and labels are modelled precisely
//     enough for the shapes this codebase uses; an unresolvable label simply
//     drops the edge, which errs toward fewer paths (never false negatives
//     on the paths that remain).

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: nodes executed in order, then a jump to one
// of succs (or to nowhere, for terminal blocks).
type cfgBlock struct {
	index int
	nodes []ast.Node // statements and bare condition/tag expressions
	succs []*cfgBlock
}

// cfg is the graph for one function body.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic; every return edge lands here
	blocks []*cfgBlock
}

// reachable returns the set of blocks reachable from the entry.
func (g *cfg) reachable() map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{g.entry: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

type cfgBuilder struct {
	g            *cfg
	breakTargets []cfgTarget
	contTargets  []cfgTarget
	labels       map[string]*cfgBlock
	pendingGotos []pendingGoto
	pendingLabel string // label naming the next loop/switch, for break L
}

type cfgTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}, labels: map[string]*cfgBlock{}}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	end := b.stmtList(body.List, b.g.entry)
	b.edge(end, b.g.exit)
	for _, pg := range b.pendingGotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, t)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// takeLabel consumes the label set by an enclosing LabeledStmt, so labelled
// loops and switches register break/continue targets under their name.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, cfgTarget{label, brk})
	b.contTargets = append(b.contTargets, cfgTarget{label, cont})
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.contTargets = b.contTargets[:len(b.contTargets)-1]
}

func (b *cfgBuilder) pushBreak(label string, brk *cfgBlock) {
	b.breakTargets = append(b.breakTargets, cfgTarget{label, brk})
}

func (b *cfgBuilder) popBreak() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}

func findTarget(ts []cfgTarget, label string) *cfgBlock {
	for i := len(ts) - 1; i >= 0; i-- {
		if label == "" || ts[i].label == label {
			return ts[i].block
		}
	}
	return nil
}

func branchLabel(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt appends s (and its sub-structure) to the graph starting at cur and
// returns the block where execution continues afterwards.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case nil:
		return cur

	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		then := b.newBlock()
		b.edge(cur, then)
		join := b.newBlock()
		b.edge(b.stmtList(s.Body.List, then), join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			b.edge(b.stmt(s.Else, els), join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		join := b.newBlock()
		if s.Cond != nil {
			b.edge(head, join) // condition false; condition-less loops only exit via break
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushLoop(label, join, cont)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popLoop()
		if post != nil {
			b.edge(bodyEnd, post)
			b.edge(b.stmt(s.Post, post), head)
		} else {
			b.edge(bodyEnd, head)
		}
		return join

	case *ast.RangeStmt:
		label := b.takeLabel()
		if s.X != nil {
			cur.nodes = append(cur.nodes, s.X)
		}
		head := b.newBlock()
		b.edge(cur, head)
		body := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		b.edge(head, join)
		b.pushLoop(label, join, head)
		b.edge(b.stmtList(s.Body.List, body), head)
		b.popLoop()
		return join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchClauses(label, s.Body.List, cur, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchClauses(label, s.Body.List, cur, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.pushBreak(label, join)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			entry := b.newBlock()
			b.edge(cur, entry)
			if cc.Comm != nil {
				entry.nodes = append(entry.nodes, cc.Comm)
			}
			b.edge(b.stmtList(cc.Body, entry), join)
		}
		b.popBreak()
		return join

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.g.exit)
		return b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakTargets, branchLabel(s)); t != nil {
				b.edge(cur, t)
			}
			return b.newBlock()
		case token.CONTINUE:
			if t := findTarget(b.contTargets, branchLabel(s)); t != nil {
				b.edge(cur, t)
			}
			return b.newBlock()
		case token.GOTO:
			b.pendingGotos = append(b.pendingGotos, pendingGoto{cur, branchLabel(s)})
			return b.newBlock()
		default: // fallthrough: the edge is added by switchClauses
			return cur
		}

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.edge(cur, lbl)
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		return b.stmt(s.Stmt, lbl)

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isTerminalCall(s.X) {
			return b.newBlock() // panic: the path dies here, no exit edge
		}
		return cur

	default:
		// DeferStmt, GoStmt, AssignStmt, IncDecStmt, DeclStmt, SendStmt,
		// EmptyStmt: straight-line.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchClauses wires case clauses between the tag block and a join block.
// Without a default clause, the tag block flows to the join directly (the
// no-case-matched path).
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, cur *cfgBlock, allowFallthrough bool) *cfgBlock {
	join := b.newBlock()
	b.pushBreak(label, join)
	entries := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		entries[i] = b.newBlock()
		b.edge(cur, entries[i])
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			entries[i].nodes = append(entries[i].nodes, e)
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		end := b.stmtList(cc.Body, entries[i])
		if allowFallthrough && endsInFallthrough(cc.Body) && i+1 < len(clauses) {
			b.edge(end, entries[i+1])
		} else {
			b.edge(end, join)
		}
	}
	if !hasDefault {
		b.edge(cur, join)
	}
	b.popBreak()
	return join
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminalCall reports whether expr is a call that never returns. Purely
// syntactic (the CFG needs no type info): the builtin panic, and os.Exit.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Analysis units and traversal helpers

// funcUnit is one analyzable body: a declared function, or a function
// literal. A literal gets its own unit because it executes in its own
// activation — often at a later point of virtual time — so conflating its
// paths with the enclosing body's would be wrong in both directions. The
// unit keeps the *enclosing declaration's* policy-qualified name, so one
// policy entry covers a function and the callbacks it schedules.
type funcUnit struct {
	name string // policy-qualified name of the enclosing declaration
	decl *ast.FuncDecl
	lit  *ast.FuncLit // non-nil when the unit is a literal
	body *ast.BlockStmt
}

// funcUnits collects the analyzable bodies of one file in source order.
func funcUnits(pkg *Package, file *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := enclosingFuncName(pkg, file, fd.Name.Pos())
		units = append(units, funcUnit{name: name, decl: fd, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				units = append(units, funcUnit{name: name, decl: fd, lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return units
}

// inspectSkipLits walks n in preorder like ast.Inspect but does not descend
// into function literals: a literal's body is a different funcUnit.
func inspectSkipLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// blockStates runs a forward may-analysis to fixpoint: the in-state of a
// block is the union of its predecessors' out-states, states are bitsets
// (bit i set ⇔ abstract state i reachable at block entry), and transfer
// folds a block's nodes. Returns the final in-state of every reached block.
func blockStates(g *cfg, entryState uint64, transfer func(b *cfgBlock, in uint64) uint64) map[*cfgBlock]uint64 {
	in := map[*cfgBlock]uint64{g.entry: entryState}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := transfer(blk, in[blk])
		for _, s := range blk.succs {
			if prev, seen := in[s]; !seen || prev|out != prev {
				in[s] = prev | out
				work = append(work, s)
			}
		}
	}
	return in
}
