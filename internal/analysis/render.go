package analysis

// render.go is the one place diagnostics become bytes. Both viampi-vet
// output modes go through here, and rendering is a pure function of the
// (sorted) diagnostic list — so two identical runs produce byte-identical
// reports, the same determinism the suite demands of the code it audits.

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// RenderText renders diagnostics exactly as the viampi-vet text mode prints
// them: one "file:line:col: rule: message" line each. Callers sort first
// (RunAll does; the driver sorts its subset runs).
func RenderText(ds []Diagnostic) string {
	var buf bytes.Buffer
	for _, d := range ds {
		fmt.Fprintln(&buf, d)
	}
	return buf.String()
}

// RenderJSON renders diagnostics as the -json array (two-space indent,
// trailing newline).
func RenderJSON(ds []Diagnostic) ([]byte, error) {
	type jsonDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RuleSummaries returns one "name  doc" line per analyzer in registry
// order: the single source for -list output, unknown-rule errors and the
// -explain header, so driver help cannot drift from the analyzer docs.
func RuleSummaries() []string {
	var lines []string
	for _, a := range Analyzers() {
		lines = append(lines, fmt.Sprintf("%-12s %s", a.Name, a.Doc))
	}
	return lines
}
