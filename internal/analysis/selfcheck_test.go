package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/types"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The repository module is loaded once per test process: type-checking the
// standard library from source is the dominant cost and every selfcheck
// test wants the same view.
var (
	repoOnce sync.Once
	repoMod  *Module
	repoErr  error
)

func loadRepo(t *testing.T) *Module {
	t.Helper()
	repoOnce.Do(func() {
		repoMod, repoErr = LoadModule(filepath.Join("..", ".."))
	})
	if repoErr != nil {
		t.Fatalf("loading repository module: %v", repoErr)
	}
	return repoMod
}

// TestSelfCheck is the tier-1 guard: every analyzer runs against this
// repository and must report nothing. A new upward import, wall-clock
// read, naked goroutine, unsorted order-sensitive map walk, or uncharged
// fabric call anywhere in the tree fails `go test ./...` with a file:line
// diagnostic.
func TestSelfCheck(t *testing.T) {
	m := loadRepo(t)
	ds := RunAll(m, DefaultPolicy())
	for _, d := range ds {
		t.Errorf("%v", d)
	}
	if len(ds) > 0 {
		t.Logf("fix the code, or — for a reviewed exception — declare it in internal/analysis/policy.go")
	}
}

// TestPolicyNotStale fails the build when a policy entry matches nothing in
// the module: an allowlist that outlives the function it excused is a
// silent hole in the invariant, so stale entries are errors here (the
// viampi-vet driver warns about the same list on stderr).
func TestPolicyNotStale(t *testing.T) {
	m := loadRepo(t)
	for _, w := range StalePolicy(m, DefaultPolicy()) {
		t.Errorf("%s", w)
	}
}

// TestSeededStaleEntryIsCaught plants entries pointing at code that does
// not exist — a renamed allowlisted function, a deleted package, a
// lock-order edge naming a removed mutex — and requires StalePolicy to
// name each one.
func TestSeededStaleEntryIsCaught(t *testing.T) {
	m := loadRepo(t)
	p := DefaultPolicy()
	p.MapOrderAllow["internal/via.(Port).zzRenamedAway"] = "seeded: function no longer exists"
	p.DeterminismExempt["internal/zzdeleted"] = "seeded: package no longer exists"
	p.LockOrderAllow["internal/tcpvia.(Node).mu -> internal/tcpvia.(Node).zzGone"] = "seeded: mutex field no longer exists"

	got := StalePolicy(m, p)
	for _, wantSub := range []string{
		`policy.MapOrderAllow["internal/via.(Port).zzRenamedAway"]`,
		`policy.DeterminismExempt["internal/zzdeleted"]`,
		`policy.LockOrderAllow["internal/tcpvia.(Node).mu -> internal/tcpvia.(Node).zzGone"]`,
	} {
		found := false
		for _, w := range got {
			if strings.Contains(w, wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("seeded stale entry not reported: want a message containing %s\ngot: %v", wantSub, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("stale count: got %d, want exactly the 3 seeded entries: %v", len(got), got)
	}
}

// TestSelfCheckSeesTheWholeModule guards against the loader silently
// skipping the tree: the packages the layering contract names must all be
// present and type-checked.
func TestSelfCheckSeesTheWholeModule(t *testing.T) {
	m := loadRepo(t)
	for _, rel := range []string{
		"internal/simnet", "internal/fabric", "internal/via", "internal/core",
		"internal/mpi", "internal/apps", "internal/npb", "internal/bench",
		"internal/trace", "internal/obs", "internal/tcpvia", "internal/analysis",
	} {
		pkg := m.Lookup(m.Path + "/" + rel)
		if pkg == nil {
			t.Fatalf("package %s not loaded", rel)
		}
		if pkg.Types == nil {
			t.Errorf("package %s not type-checked", rel)
		}
		for _, err := range pkg.TypeErrs {
			t.Errorf("package %s: type error: %v", rel, err)
		}
	}
	// The maporder rule is only as good as its reach: the repository has
	// map iterations (e.g. internal/mpi's profile aggregation) and the
	// analyzer must be classifying them, not skipping them.
	mpiPkg := m.Lookup(m.Path + "/internal/mpi")
	count := 0
	for _, f := range mpiPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok && isMapRange(mpiPkg.Info, rs) {
				count++
			}
			return true
		})
	}
	if count == 0 {
		t.Error("no map ranges found in internal/mpi; the maporder analyzer is not seeing the code it must audit")
	}
}

// TestSeededViolationIsCaught is the acceptance check for the suite: a
// deliberate wall-clock read and naked goroutine planted (in memory) in
// internal/core must produce file:line determinism diagnostics. The tree
// on disk is never touched.
func TestSeededViolationIsCaught(t *testing.T) {
	m := loadRepo(t)
	const src = `package core

import "time"

func zzSeededViolation() int64 {
	go func() {}()
	return time.Now().UnixNano()
}
`
	name := filepath.Join(m.Root, "internal", "core", "zz_seeded_violation.go")
	file, err := parser.ParseFile(m.Fset, name, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	seeded := &Package{
		Path:  m.Path + "/internal/core__seeded",
		Rel:   "internal/core",
		Dir:   filepath.Join(m.Root, "internal", "core"),
		Name:  "core",
		Files: []*ast.File{file},
		Info: &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		},
	}
	std := importer.ForCompiler(m.Fset, "source", nil)
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if dep := m.Lookup(path); dep != nil {
			return dep.Types, nil
		}
		return std.Import(path)
	})}
	if seeded.Types, err = conf.Check(seeded.Path, m.Fset, seeded.Files, seeded.Info); err != nil {
		t.Fatalf("type-checking seeded file: %v", err)
	}

	withSeeded := &Module{Path: m.Path, Root: m.Root, Fset: m.Fset,
		Pkgs:   append(append([]*Package{}, m.Pkgs...), seeded),
		byPath: map[string]*Package{seeded.Path: seeded},
	}
	ds := DeterminismAnalyzer().Run(withSeeded, DefaultPolicy())

	var wallClock, goroutine bool
	for _, d := range ds {
		if !strings.HasSuffix(d.Pos.Filename, "zz_seeded_violation.go") {
			t.Errorf("unexpected diagnostic outside the seeded file: %v", d)
			continue
		}
		if d.Pos.Line == 7 && strings.Contains(d.Message, "time.Now") {
			wallClock = true
		}
		if d.Pos.Line == 6 && strings.Contains(d.Message, "go statement") {
			goroutine = true
		}
	}
	if !wallClock || !goroutine {
		t.Fatalf("seeded violations not all caught (wallClock=%v goroutine=%v): %v", wallClock, goroutine, ds)
	}
}
