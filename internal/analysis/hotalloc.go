package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer enforces the zero-allocation discipline on
// policy-annotated hot paths: the nil-bus obs emit path and the
// progress-poll loop. It flags the allocation idioms Go cannot keep off the
// heap — address-taken composite literals, slice/map literals, make/new,
// closures, non-constant string concatenation, and implicit interface
// boxing at call arguments. Failure-path callees in Policy.ColdCalls
// (Sim.Failf, panic) are excused from the boxing check: a path that aborts
// the run may allocate.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "policy-annotated hot paths must not allocate",
		Explain: `docs/ARCHITECTURE.md, "Observability" and "Enforced invariants": the obs
bus is wired into every layer on the premise that instrumentation can never
alter what it observes — the disabled (nil-bus) emit path is pinned at zero
allocations by benchmark so leaving tracing off costs nothing. The progress
engine makes the same promise for a different reason: MVICH's
MPID_DeviceCheck runs on every MPI call and every blocking wait, so an
allocation there scales with poll count, not message count, and its cost
(and eventual GC pauses in the real-code twin) would be charged to whichever
rank happens to poll — exactly the kind of hidden, load-dependent cost the
paper's measurements must not contain. Functions in Policy.HotPaths carry
that promise in code review; this rule keeps it honest by flagging the
constructs that defeat escape analysis or allocate by definition: &T{...},
slice/map literals, make/new, closures, non-constant string concatenation,
and concrete values passed to interface parameters (boxing). Cold
failure-path callees (Policy.ColdCalls) are exempt from boxing — a path
that kills the run may allocate on its way out.`,
		Run: runHotAlloc,
	}
}

func runHotAlloc(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := enclosingFuncName(pkg, file, fd.Name.Pos())
				why, hot := p.HotPaths[name]
				if !hot {
					continue
				}
				ds = append(ds, checkHotAlloc(m, p, pkg, fd, name, why)...)
			}
		}
	}
	return ds
}

func checkHotAlloc(m *Module, p *Policy, pkg *Package, fd *ast.FuncDecl, name, why string) []Diagnostic {
	var ds []Diagnostic
	flag := func(pos token.Pos, what string) {
		ds = append(ds, Diagnostic{
			Pos:  m.Position(pos),
			Rule: "hotalloc",
			Message: fmt.Sprintf("%s is a zero-allocation hot path (%s): %s — hoist it out of the hot path or move the work to a cold helper",
				name, why, what),
		})
	}
	var concatEnd token.Pos // suppress nested reports inside a flagged a+b+c chain
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n.Pos(), "closure literal allocates (captures escape)")
			return false // the literal body is a different activation

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flag(n.Pos(), "address-of composite literal escapes to the heap")
					return false
				}
			}

		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					flag(n.Pos(), "slice/map composite literal allocates")
				}
			}
			// Value struct literals (obs.Event{...}) stay on the stack and
			// are the idiomatic emit payload: not flagged.

		case *ast.CallExpr:
			hotAllocCheckCall(m, p, pkg, n, flag)

		case *ast.BinaryExpr:
			if n.Op != token.ADD || n.Pos() < concatEnd {
				break
			}
			t := pkg.Info.TypeOf(n)
			if t == nil {
				break
			}
			basic, ok := t.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsString == 0 {
				break
			}
			if tv, ok := pkg.Info.Types[n]; ok && tv.Value != nil {
				break // folded at compile time
			}
			concatEnd = n.End()
			flag(n.Pos(), "non-constant string concatenation allocates")
		}
		return true
	})
	return ds
}

// hotAllocCheckCall flags make/new and implicit interface boxing at call
// arguments.
func hotAllocCheckCall(m *Module, p *Policy, pkg *Package, call *ast.CallExpr, flag func(token.Pos, string)) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				flag(call.Pos(), id.Name+" allocates")
			}
			return // other builtins (append, len, copy, panic) have no boxing
		}
	}
	// Cold callees may box: the call aborts or records a failure.
	if obj := calleeObject(pkg.Info, call); obj != nil {
		if p.ColdCalls[relQualified(m.Path, objectQualifiedName(obj))] {
			return
		}
	}
	sig, ok := pkg.Info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if basic, ok := at.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		flag(arg.Pos(), fmt.Sprintf("passing concrete %s as interface argument boxes (allocates)", at.String()))
	}
}
