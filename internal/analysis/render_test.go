package analysis

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// TestRenderDeterministic is the regression test for satellite reproducibility:
// two fully independent loads of the same module must render byte-identical
// text and JSON reports, so vet output can be diffed across runs and CI.
func TestRenderDeterministic(t *testing.T) {
	var texts []string
	var jsons [][]byte
	for i := 0; i < 2; i++ {
		m := loadFixture(t)
		ds := RunAll(m, FixturePolicy())
		texts = append(texts, RenderText(ds))
		j, err := RenderJSON(ds)
		if err != nil {
			t.Fatalf("run %d: RenderJSON: %v", i, err)
		}
		jsons = append(jsons, j)
	}
	if texts[0] != texts[1] {
		t.Errorf("text reports differ between independent runs:\n--- run 0 ---\n%s\n--- run 1 ---\n%s", texts[0], texts[1])
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Errorf("JSON reports differ between independent runs:\n--- run 0 ---\n%s\n--- run 1 ---\n%s", jsons[0], jsons[1])
	}
	if texts[0] == "" || len(jsons[0]) == 0 {
		t.Fatal("fixture run produced an empty report; determinism check is vacuous")
	}
}

// TestRunAllSorted verifies RunAll's output is already in the canonical
// (file, line, col, rule) order — shuffling and re-sorting is a no-op.
func TestRunAllSorted(t *testing.T) {
	m := loadFixture(t)
	ds := RunAll(m, FixturePolicy())
	if len(ds) < 2 {
		t.Fatal("need at least two fixture diagnostics to check ordering")
	}
	resorted := append([]Diagnostic(nil), ds...)
	// Reverse, then re-sort with the canonical comparator.
	sort.SliceStable(resorted, func(i, j int) bool { return j < i })
	SortDiagnostics(resorted)
	for i := range ds {
		if ds[i] != resorted[i] {
			t.Fatalf("RunAll output not canonically sorted at index %d:\n  got  %v\n  want %v", i, ds[i], resorted[i])
		}
	}
}

// TestRegistryComplete pins the analyzer count so adding a rule forces the
// author to update docs, fixtures, and this suite together.
func TestRegistryComplete(t *testing.T) {
	as := Analyzers()
	if len(as) != 15 {
		t.Fatalf("Analyzers() returned %d rules, want 15", len(as))
	}
	wantNames := []string{
		"layering", "determinism", "maporder", "costcharge",
		"exhaustive", "waitwake", "locks", "hotalloc",
		"lockorder", "protocol", "chargeflow", "wakereach",
	}
	seen := map[string]bool{}
	for _, a := range as {
		seen[a.Name] = true
	}
	for _, n := range wantNames {
		if !seen[n] {
			t.Errorf("analyzer %q missing from registry", n)
		}
	}
}

// TestRuleSummaries checks the -rules listing is sourced from the same
// strings as the registry, so the two cannot drift.
func TestRuleSummaries(t *testing.T) {
	sums := RuleSummaries()
	as := Analyzers()
	if len(sums) != len(as) {
		t.Fatalf("RuleSummaries has %d lines, registry has %d analyzers", len(sums), len(as))
	}
	for i, a := range as {
		if !strings.Contains(sums[i], a.Name) {
			t.Errorf("summary %d does not name rule %q: %q", i, a.Name, sums[i])
		}
		if !strings.Contains(sums[i], a.Doc) {
			t.Errorf("summary %d does not carry the registry doc for %q: %q", i, a.Name, sums[i])
		}
	}
}
