package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/rules.golden from the live registry")

// ruleDoc renders the registry exactly the way the viampi-vet driver does:
// the -list / bare -rules listing first, then every rule's -explain output
// ("name — doc" header, blank line, Explain body). Pinning this byte-for-
// byte means renaming a rule, rewording a Doc line, or dropping an Explain
// paragraph shows up as a reviewable golden diff, not a silent help drift.
func ruleDoc() string {
	var b strings.Builder
	for _, line := range RuleSummaries() {
		fmt.Fprintln(&b, line)
	}
	for _, a := range Analyzers() {
		fmt.Fprintf(&b, "\n== explain %s ==\n", a.Name)
		fmt.Fprintf(&b, "%s — %s\n\n%s\n", a.Name, a.Doc, a.Explain)
	}
	return b.String()
}

// TestRuleDocGolden pins the -list, bare -rules, and per-rule -explain text
// for the full 15-analyzer registry against testdata/rules.golden.
// Regenerate deliberately with:
//
//	go test ./internal/analysis/ -run TestRuleDocGolden -update
func TestRuleDocGolden(t *testing.T) {
	const wantRules = 15
	if n := len(Analyzers()); n != wantRules {
		t.Errorf("registry size: got %d analyzers, want %d", n, wantRules)
	}

	got := ruleDoc()
	path := filepath.Join("testdata", "rules.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("rule documentation drifted from testdata/rules.golden at line %d:\n  got  %q\n  want %q\nreview the change, then regenerate with -update", i+1, g, w)
			}
		}
	}
}
