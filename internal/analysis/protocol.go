package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// ProtocolAnalyzer enforces closed send/recv conformance on the wire
// protocol: every `kind` constant the module constructs a wire message with
// must reach a handler arm in every policy-declared dispatch switch over
// that kind field, and every arm must correspond to a kind something
// actually sends. It is the whole-program complement of exhaustive: that
// rule proves a dispatch switch covers the declared constant set; this one
// proves the constant set, the senders, and the dispatchers agree.
func ProtocolAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "protocol",
		Doc:  "every wire kind sent must be dispatched, and every dispatch arm must have a sender",
		Explain: `docs/ARCHITECTURE.md, "Enforced invariants": the on-demand connection
manager is a distributed state machine driven entirely by wire kinds —
ConnReq/Ack/Nack/Disc/Data/Rdma/Oob on the VIA port, Eager/Rts/Cts/Fin/
Credit and the BYE/BYE_ACK/BYE_NACK quiescence handshake on the MPI
channel. Each PR 3 teardown bug was a conformance hole between a sender
and a dispatcher: a kind constructed on one side of the wire that the
other side's switch did not (correctly) consume. exhaustive pins each
switch against the const block; this rule closes the remaining gap by
scanning the whole module for the messages actually built (composite
literals and assignments writing a constant into a Policy.TagFields kind
field) and checking them against every dispatcher registered in
Policy.ProtocolDispatch: a sent kind with no arm is an unhandled message
(dropped or misrouted at the receiver); an arm whose kind nothing sends is
dead protocol surface that hides a missing sender. Deliberately
receive-only kinds are declared in Policy.ProtocolNeverSent with the
reason no sender exists in this module.`,
		Run: runProtocol,
	}
}

// protoSend is one site constructing a wire message with a constant kind.
type protoSend struct {
	val  string // constant value (ExactString)
	node ast.Node
	fn   string // enclosing function
}

func runProtocol(m *Module, p *Policy) []Diagnostic {
	if len(p.ProtocolDispatch) == 0 {
		return nil
	}
	_, blocks := discoverConstSets(m, p)

	watched := map[string]bool{}
	for _, fieldKey := range p.ProtocolDispatch {
		watched[fieldKey] = true
	}
	sends := collectProtoSends(m, watched)

	var ds []Diagnostic
	var dispKeys []string
	for k := range p.ProtocolDispatch {
		dispKeys = append(dispKeys, k)
	}
	sort.Strings(dispKeys)
	ip := m.Interproc()
	for _, dispKey := range dispKeys {
		fieldKey := p.ProtocolDispatch[dispKey]
		f := ip.Funcs[dispKey]
		if f == nil {
			continue // the stale-policy sweep reports the dangling entry
		}
		group := blocks[p.TagFields[fieldKey]]
		if len(group) == 0 {
			continue
		}
		covered, arms, found := dispatchArms(m, f, fieldKey)
		if !found {
			ds = append(ds, Diagnostic{
				Pos:  m.Position(f.Decl.Pos()),
				Rule: "protocol",
				Message: fmt.Sprintf("%s is registered as the dispatcher for %s in Policy.ProtocolDispatch, but contains no switch over that field",
					dispKey, fieldKey),
			})
			continue
		}

		// Sent but unhandled: the receiver drops or misroutes the message.
		reportedVals := map[string]bool{}
		for _, s := range sends[fieldKey] {
			if covered[s.val] || reportedVals[s.val] {
				continue
			}
			reportedVals[s.val] = true
			ds = append(ds, Diagnostic{
				Pos:  m.Position(s.node.Pos()),
				Rule: "protocol",
				Message: fmt.Sprintf("wire kind %s is sent by %s but has no handler arm in dispatcher %s; the receiver silently drops the message — add the arm (and its state transition) or remove the sender",
					protoKindName(m, group, s.val), s.fn, dispKey),
			})
		}

		// Handled but never sent: dead protocol arm, unless declared
		// receive-only.
		sentVals := map[string]bool{}
		for _, s := range sends[fieldKey] {
			sentVals[s.val] = true
		}
		seenVal := map[string]bool{}
		for _, c := range group {
			v := c.Val().ExactString()
			if seenVal[v] {
				continue
			}
			seenVal[v] = true
			if !covered[v] || sentVals[v] {
				continue
			}
			qual := relQualified(m.Path, c.Pkg().Path()) + "." + c.Name()
			if _, allowed := p.ProtocolNeverSent[qual]; allowed {
				continue
			}
			pos := arms[v]
			if pos == nil {
				pos = f.Decl
			}
			ds = append(ds, Diagnostic{
				Pos:  m.Position(pos.Pos()),
				Rule: "protocol",
				Message: fmt.Sprintf("dispatcher %s has an arm for %s but nothing in the module sends it; a dead arm hides a missing sender — remove it, or declare the kind receive-only in Policy.ProtocolNeverSent",
					dispKey, c.Name()),
			})
		}
	}
	return ds
}

// collectProtoSends scans the module for constant writes into the watched
// kind fields: keyed or positional composite-literal elements, and plain
// assignments. Non-constant writes (decode paths, forwarding a received
// kind) are not sends of a specific kind and are ignored.
func collectProtoSends(m *Module, watched map[string]bool) map[string][]protoSend {
	sends := map[string][]protoSend{}
	record := func(pkg *Package, file *ast.File, fieldKey string, value ast.Expr) {
		if !watched[fieldKey] {
			return
		}
		tv, ok := pkg.Info.Types[value]
		if !ok || tv.Value == nil {
			return
		}
		sends[fieldKey] = append(sends[fieldKey], protoSend{
			val:  tv.Value.ExactString(),
			node: value,
			fn:   enclosingFuncName(pkg, file, value.Pos()),
		})
	}
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					named, fields := litStruct(pkg, n)
					if named == nil {
						return true
					}
					owner := relQualified(m.Path, named.Obj().Pkg().Path()) + ".(" + named.Obj().Name() + ")."
					for i, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok {
								record(pkg, file, owner+key.Name, kv.Value)
							}
							continue
						}
						if i < fields.NumFields() {
							record(pkg, file, owner+fields.Field(i).Name(), elt)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						se, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok || len(n.Lhs) != len(n.Rhs) {
							continue
						}
						if fieldKey := fieldQualified(m, pkg, se); fieldKey != "" {
							record(pkg, file, fieldKey, n.Rhs[i])
						}
					}
				}
				return true
			})
		}
	}
	return sends
}

// litStruct resolves a composite literal to its named struct type, or nil.
func litStruct(pkg *Package, lit *ast.CompositeLit) (*types.Named, *types.Struct) {
	t := pkg.Info.TypeOf(lit)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// dispatchArms collects the case values of every switch over fieldKey in
// the dispatcher's units (union of arms, first position per value).
func dispatchArms(m *Module, f *IPFunc, fieldKey string) (covered map[string]bool, arms map[string]ast.Node, found bool) {
	covered = map[string]bool{}
	arms = map[string]ast.Node{}
	for _, u := range f.Units {
		inspectSkipLits(u.body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			se, ok := ast.Unparen(sw.Tag).(*ast.SelectorExpr)
			if !ok || fieldQualified(m, f.Pkg, se) != fieldKey {
				return true
			}
			found = true
			for _, c := range sw.Body.List {
				cc := c.(*ast.CaseClause)
				for _, e := range cc.List {
					tv, ok := f.Pkg.Info.Types[e]
					if !ok || tv.Value == nil {
						continue
					}
					v := tv.Value.ExactString()
					covered[v] = true
					if arms[v] == nil {
						arms[v] = e
					}
				}
			}
			return true
		})
	}
	return covered, arms, found
}

// protoKindName renders a constant value as its declared name when the
// value belongs to the kind block, else as the raw value.
func protoKindName(m *Module, group []*types.Const, val string) string {
	for _, c := range group {
		if c.Val().ExactString() == val {
			return c.Name()
		}
	}
	return val
}
