package analysis

// Policy is the one place legitimate exceptions to the vet rules are
// declared. Every allowlist entry carries a justification string so an
// exception is visible in code review instead of hiding in a comment next
// to the code it excuses. Paths are module-relative ("internal/mpi"), so
// the same rule set applies to the real module and to the fixture modules
// under testdata/.
type Policy struct {
	// Layers maps module-relative package paths to their height in the
	// ARCHITECTURE.md DAG. A package may import another iff its layer is
	// strictly greater (examples/cmd → workloads → mpi → core → via →
	// fabric → simnet). Packages absent from the map fall back to the
	// leaf rules below.
	Layers map[string]int
	// TopLayer is the height of drivers (cmd/*, examples/*): they may
	// import anything.
	TopLayer int
	// SharedLeaves are importable from every layer but may themselves
	// import only the standard library and other shared leaves
	// (internal/obs; internal/trace, which consumes obs events).
	SharedLeaves map[string]bool
	// RestrictedLeaves are importable only from the top layer and may
	// import no module package (internal/tcpvia: the real-socket twin;
	// internal/analysis: this tooling).
	RestrictedLeaves map[string]bool

	// DeterminismExempt lists packages outside the simulated world: code
	// there may use wall-clock time, goroutines and locks. Everything
	// else is a simulation path where those constructs break "a run is a
	// pure function of its Config".
	DeterminismExempt map[string]string
	// GoStmtAllowed lists packages that may contain `go` statements —
	// only the scheduler itself, which owns the one-runnable-goroutine
	// discipline.
	GoStmtAllowed map[string]bool
	// WallClockBanned names the time-package functions that read or wait
	// on the host clock. Type and conversion uses (time.Duration) stay
	// legal everywhere.
	WallClockBanned map[string]bool
	// RandConstructors are the math/rand package-level functions that
	// build seeded generators; every other package-level rand function
	// draws from the process-global source and is banned. Methods on a
	// threaded *rand.Rand are always fine.
	RandConstructors map[string]bool

	// MapOrderAllow exempts whole functions (policy-qualified names, see
	// enclosingFuncName) from the map-iteration-order rule, with a
	// justification for each.
	MapOrderAllow map[string]string

	// ChargeRequired lists fabric/simnet entry points that model hardware
	// doing work; a via/core function invoking one must charge host CPU
	// cost in the same body (invariant 2: costs are charged where the
	// hardware pays them).
	ChargeRequired map[string]bool
	// ChargeFuncs are the calls that count as charging (or booking NIC
	// service time for) a cost.
	ChargeFuncs map[string]bool
	// ChargeExempt lists via/core functions excused from the rule, with
	// justifications.
	ChargeExempt map[string]string
}

// DefaultPolicy returns the policy for the viampi module — the encoded form
// of the ARCHITECTURE.md layering diagram plus the reviewed exception lists.
func DefaultPolicy() *Policy {
	return &Policy{
		Layers: map[string]int{
			"internal/simnet": 1,
			"internal/fabric": 2,
			"internal/via":    3,
			"internal/core":   4,
			"internal/mpi":    5,
			"internal/apps":   6,
			"internal/npb":    6,
			"internal/bench":  7,
		},
		TopLayer: 9,
		SharedLeaves: map[string]bool{
			// Passive observers: every simulation layer may stamp events on
			// the obs bus or feed the trace recorder, and neither may reach
			// back into the simulation (obs imports nothing; trace imports
			// obs to subscribe). Keeping them leaves guarantees
			// instrumentation can never alter what it observes.
			"internal/obs":   true,
			"internal/trace": true,
		},
		RestrictedLeaves: map[string]bool{
			"internal/tcpvia":   true,
			"internal/analysis": true,
		},

		DeterminismExempt: map[string]string{
			"internal/tcpvia":   "real-socket twin of internal/via; wall-clock deadlines and goroutines are its job",
			"examples/tcpring":  "drives internal/tcpvia over real TCP; measures wall time by design",
			"internal/analysis": "static-analysis tooling; never on a simulation path",
		},
		GoStmtAllowed: map[string]bool{
			"internal/simnet": true,
		},
		WallClockBanned: map[string]bool{
			"Now": true, "Since": true, "Until": true, "Sleep": true,
			"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
			"AfterFunc": true,
		},
		RandConstructors: map[string]bool{
			"New": true, "NewSource": true, "NewZipf": true,
		},

		MapOrderAllow: map[string]string{},

		ChargeRequired: map[string]bool{
			"internal/fabric.(Cluster).Send":       true,
			"internal/fabric.(Cluster).SendMgmt":   true,
			"internal/fabric.(Cluster).Attach":     true,
			"internal/fabric.(Cluster).AttachNode": true,
		},
		ChargeFuncs: map[string]bool{
			"internal/via.(Port).ChargeHost":   true,
			"internal/via.(Network).serviceTx": true,
			"internal/via.(Network).serviceRx": true,
			"internal/via.(Network).sendFrame": true,
			"internal/simnet.(Proc).Compute":   true,
			"internal/simnet.(Proc).Sleep":     true,
		},
		ChargeExempt: map[string]string{
			"internal/via.(Network).open": "boot-time endpoint attach; MPI_Init cost is charged by the connection managers, not port creation",
			"internal/via.(Port).SendOob": "out-of-band management network (Ethernet/TCP bootstrap); bypasses the NIC by design, §ARCHITECTURE 'never for MPI traffic'",
		},
	}
}

// FixturePolicy derives a policy for a fixture module under testdata/: same
// rule set, empty exception lists, so fixtures exercise the rules raw.
func FixturePolicy() *Policy {
	p := DefaultPolicy()
	p.DeterminismExempt = map[string]string{}
	p.MapOrderAllow = map[string]string{}
	p.ChargeExempt = map[string]string{}
	return p
}
