package analysis

// Policy is the one place legitimate exceptions to the vet rules are
// declared. Every allowlist entry carries a justification string so an
// exception is visible in code review instead of hiding in a comment next
// to the code it excuses. Paths are module-relative ("internal/mpi"), so
// the same rule set applies to the real module and to the fixture modules
// under testdata/.
type Policy struct {
	// Layers maps module-relative package paths to their height in the
	// ARCHITECTURE.md DAG. A package may import another iff its layer is
	// strictly greater (examples/cmd → workloads → mpi → core → via →
	// fabric → simnet). Packages absent from the map fall back to the
	// leaf rules below.
	Layers map[string]int
	// TopLayer is the height of drivers (cmd/*, examples/*): they may
	// import anything.
	TopLayer int
	// SharedLeaves are importable from every layer but may themselves
	// import only the standard library and other shared leaves
	// (internal/obs; internal/trace, which consumes obs events).
	SharedLeaves map[string]bool
	// RestrictedLeaves are importable only from the top layer and may
	// import no module package (internal/tcpvia: the real-socket twin;
	// internal/analysis: this tooling).
	RestrictedLeaves map[string]bool

	// DeterminismExempt lists packages outside the simulated world: code
	// there may use wall-clock time, goroutines and locks. Everything
	// else is a simulation path where those constructs break "a run is a
	// pure function of its Config".
	DeterminismExempt map[string]string
	// GoStmtAllowed lists packages that may contain `go` statements —
	// only the scheduler itself, which owns the one-runnable-goroutine
	// discipline.
	GoStmtAllowed map[string]bool
	// WallClockBanned names the time-package functions that read or wait
	// on the host clock. Type and conversion uses (time.Duration) stay
	// legal everywhere.
	WallClockBanned map[string]bool
	// RandConstructors are the math/rand package-level functions that
	// build seeded generators; every other package-level rand function
	// draws from the process-global source and is banned. Methods on a
	// threaded *rand.Rand are always fine.
	RandConstructors map[string]bool

	// MapOrderAllow exempts whole functions (policy-qualified names, see
	// enclosingFuncName) from the map-iteration-order rule, with a
	// justification for each.
	MapOrderAllow map[string]string
	// MapOrderStrict lists packages where the maporder rule runs in strict
	// mode: every map iteration must use the collect-keys-then-sort idiom,
	// even bodies the relaxed rule accepts as commutative. These are the
	// emission packages — code whose output is compared byte-for-byte
	// (metrics text/CSV/JSON, capture bundles), where "commutative today"
	// quietly becomes "ordered tomorrow" when someone adds a print. The
	// value is the reason the package is held to the stricter bar.
	MapOrderStrict map[string]string

	// ChargeRequired lists fabric/simnet entry points that model hardware
	// doing work; a via/core function invoking one must charge host CPU
	// cost in the same body (invariant 2: costs are charged where the
	// hardware pays them).
	ChargeRequired map[string]bool
	// ChargeFuncs are the calls that count as charging (or booking NIC
	// service time for) a cost.
	ChargeFuncs map[string]bool
	// ChargeExempt lists via/core functions excused from the rule, with
	// justifications.
	ChargeExempt map[string]string
	// ChargeRootPkgs lists the packages whose exported functions are the
	// entry points the interprocedural chargeflow rule audits: every path
	// from one of them to a ChargeRequired transmit must pass a charge.
	ChargeRootPkgs map[string]bool
	// ChargeFlowExempt excuses functions from the chargeflow rule, with
	// justifications — the interprocedural counterpart of ChargeExempt.
	ChargeFlowExempt map[string]string

	// ExhaustiveStrict lists policy-qualified functions whose switches must
	// name every enum member even when they carry a default: the default is
	// a fallback ("unknown"), not a handler, so a new member reaching it is
	// silent data loss. The value is the reason.
	ExhaustiveStrict map[string]string
	// EnumExclude removes sentinel constants (counts, limits) from a
	// discovered member set, with justifications.
	EnumExclude map[string]string
	// TagFields maps a qualified struct field ("internal/via.(wireMsg).kind")
	// to the anchor constant of its wire-code const block; a switch over the
	// field must cover every constant declared in that block.
	TagFields map[string]string

	// ProtocolDispatch maps each wire dispatcher (policy-qualified function)
	// to the TagFields kind field it switches over. The protocol rule checks
	// every kind the module sends against the dispatcher's arms, and every
	// arm against the senders.
	ProtocolDispatch map[string]string
	// ProtocolNeverSent declares kinds (qualified constant names) that are
	// deliberately receive-only in this module, with the reason no sender
	// exists here.
	ProtocolNeverSent map[string]string

	// WaitWakeScope lists packages whose state machines have parked waiters
	// (the VIA provider).
	WaitWakeScope map[string]bool
	// WaitWakeStates maps qualified state types to the constants a blocked
	// waiter can NOT observe; assigning any other value is a transition that
	// owes a wake.
	WaitWakeStates map[string][]string
	// WaitWakeWakers are the calls that discharge the wake obligation.
	WaitWakeWakers map[string]bool
	// WaitWakeAllow exempts functions whose callers own the wake, with the
	// argument for why every caller wakes.
	WaitWakeAllow map[string]string
	// WakeReachAllow exempts functions from the interprocedural wakereach
	// rule — owner-thread entry points whose caller is by definition not
	// parked, so the escaped obligation is vacuous. Unlike WaitWakeAllow,
	// entries here are NOT trusted for helpers: a helper's obligation is
	// verified against its actual callers.
	WakeReachAllow map[string]string

	// LeafLocks maps qualified mutex fields to the leaf contract they carry:
	// while one is held, no call may re-enter a layered simulation package.
	LeafLocks map[string]string
	// LockExempt excuses functions from the lock-discipline rule entirely,
	// with justifications.
	LockExempt map[string]string
	// LockOrderAllow excuses edges ("A -> B", both qualified mutex fields)
	// from the global lock-order cycle check, with the argument for why the
	// two acquisition orders can never be live concurrently.
	LockOrderAllow map[string]string

	// HotPaths maps policy-qualified functions to the reason they are hot;
	// their bodies must stay allocation-free (see hotalloc).
	HotPaths map[string]string
	// ColdCalls are failure-path callees whose arguments may box: the call
	// records a failure or aborts the run.
	ColdCalls map[string]bool

	// PairedSpecs declares the acquire/release obligations the paired rule
	// enforces: every call to an Acquires function creates an obligation
	// that must be discharged — by a Releases call, an escape into a struct
	// field that some function releases, or an ownership-transferring
	// return — on every CFG path out of the acquiring function.
	PairedSpecs []PairedSpec
	// PairedAllow exempts whole functions (policy-qualified names) from the
	// paired rule, with the argument for why their handles do not leak —
	// typically run-scoped resources reaped wholesale at teardown.
	PairedAllow map[string]string

	// FSMStates maps a connection-state enum type (qualified type name) to
	// the struct field that holds it; the fsm rule extracts the transition
	// graph from every assignment to that field, flags states that are
	// never entered, and renders the machine as DOT (-fsm-dot).
	FSMStates map[string]string
	// FSMModelCheck enables exhaustive model checking of the 2-peer
	// connection and eviction product automata against the extracted
	// machine. Off for fixture modules, whose toy machines are not the
	// protocol the models encode.
	FSMModelCheck bool

	// SeqCheckClose lists the functions that close or evict a channel; the
	// value records what each dismantles. After one of these runs on a
	// variable, the seqcheck rule forbids sends rooted at the same variable
	// until it is rebound (the reconnect path returns a fresh channel).
	SeqCheckClose map[string]string
	// SeqCheckSend lists the send entry points the rule guards.
	SeqCheckSend map[string]string
	// SeqCheckAllow exempts functions from the sequencing rule, with
	// justifications.
	SeqCheckAllow map[string]string
}

// PairedSpec is one acquire/release resource pair the paired rule tracks.
type PairedSpec struct {
	Resource string   // what the handle pins, for messages
	Acquires []string // policy-qualified functions returning an owned handle
	Releases []string // policy-qualified functions that discharge it
}

// DefaultPolicy returns the policy for the viampi module — the encoded form
// of the ARCHITECTURE.md layering diagram plus the reviewed exception lists.
func DefaultPolicy() *Policy {
	return &Policy{
		Layers: map[string]int{
			"internal/simnet": 1,
			"internal/fabric": 2,
			"internal/via":    3,
			"internal/core":   4,
			"internal/mpi":    5,
			"internal/apps":   6,
			"internal/npb":    6,
			"internal/bench":  7,
		},
		TopLayer: 9,
		SharedLeaves: map[string]bool{
			// Passive observers: every simulation layer may stamp events on
			// the obs bus or feed the trace recorder, and neither may reach
			// back into the simulation (obs imports nothing; trace imports
			// obs to subscribe). Keeping them leaves guarantees
			// instrumentation can never alter what it observes.
			"internal/obs":         true,
			"internal/obs/capture": true,
			"internal/trace":       true,
			// The batch runner: every layer may fan hermetic jobs over it
			// (bench grids, the fault matrix, cmd drivers), and it imports
			// only the standard library, so the edge can never reach back
			// into the simulation.
			"internal/sweep": true,
		},
		RestrictedLeaves: map[string]bool{
			"internal/tcpvia":   true,
			"internal/analysis": true,
		},

		DeterminismExempt: map[string]string{
			"internal/tcpvia":   "real-socket twin of internal/via; wall-clock deadlines and goroutines are its job",
			"examples/tcpring":  "drives internal/tcpvia over real TCP; measures wall time by design",
			"internal/analysis": "static-analysis tooling; never on a simulation path",
			"cmd/benchsnap":     "wall-clock rail for BENCH_simcore.json; the virtual-time snapshot it also emits is pinned byte-stable by make check",
			"cmd/viampi-vet":    "analysis driver; the -json timing line measures host load/analyze wall time and goes to stderr, never near a simulation path",
			"internal/sweep":    "the one sanctioned home for naked goroutines, sync primitives, and wall-clock reads outside simulated time: jobs are hermetic whole simulations, and the index-ordered merge erases completion order, so host scheduling never reaches an artifact",
		},
		GoStmtAllowed: map[string]bool{
			"internal/simnet": true,
		},
		WallClockBanned: map[string]bool{
			"Now": true, "Since": true, "Until": true, "Sleep": true,
			"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
			"AfterFunc": true,
		},
		RandConstructors: map[string]bool{
			"New": true, "NewSource": true, "NewZipf": true,
		},

		MapOrderAllow: map[string]string{},
		MapOrderStrict: map[string]string{
			"internal/obs":         "metrics/trace emission: output is golden-tested byte-for-byte, so every map walk must go through sorted keys",
			"internal/obs/capture": "bundle encoding: record and replay must produce identical bytes, so no map walk may touch the stream",
		},

		ChargeRequired: map[string]bool{
			"internal/fabric.(Cluster).Send":       true,
			"internal/fabric.(Cluster).SendMgmt":   true,
			"internal/fabric.(Cluster).Attach":     true,
			"internal/fabric.(Cluster).AttachNode": true,
		},
		ChargeFuncs: map[string]bool{
			"internal/via.(Port).ChargeHost":   true,
			"internal/via.(Network).serviceTx": true,
			"internal/via.(Network).serviceRx": true,
			"internal/via.(Network).sendFrame": true,
			"internal/simnet.(Proc).Compute":   true,
			"internal/simnet.(Proc).Sleep":     true,
		},
		ChargeExempt: map[string]string{
			"internal/via.(Network).open": "boot-time endpoint attach; MPI_Init cost is charged by the connection managers, not port creation",
			"internal/via.(Port).SendOob": "out-of-band management network (Ethernet/TCP bootstrap); bypasses the NIC by design, §ARCHITECTURE 'never for MPI traffic'",
		},
		ChargeRootPkgs: map[string]bool{
			"internal/mpi": true,
		},
		ChargeFlowExempt: map[string]string{
			// The same two reviewed exceptions as ChargeExempt, restated for
			// the interprocedural rule so exported MPI surface reaching them
			// (bootstrap barriers over SendOob, MPI_Init attach) stays clean.
			"internal/via.(Network).open": "boot-time endpoint attach; MPI_Init cost is charged by the connection managers, not port creation",
			"internal/via.(Port).SendOob": "out-of-band management network (Ethernet/TCP bootstrap); bypasses the NIC by design, §ARCHITECTURE 'never for MPI traffic'",
		},

		ExhaustiveStrict: map[string]string{
			"internal/obs.(Kind).String":          "wire-stable export names: a kind falling to \"unknown\" silently corrupts every metrics key and trace label",
			"internal/obs.writeEvent":             "Perfetto mapper: an unmapped kind vanishes from the timeline without any error",
			"internal/obs.(Phase).String":         "phase table column names; a phase falling to the fallback breaks the report schema",
			"internal/via.(Status).String":        "descriptor status names appear in test failures and ErrBadState messages",
			"internal/via.(ViState).String":       "VI state names appear in test failures and ErrBadState messages",
			"internal/mpi.pktKindString":          "packet kind names appear in protocol failure messages",
			"internal/mpi.(SendMode).String":      "send mode names appear in profiles",
			"internal/tcpvia.(ViState).String":    "real-socket twin mirrors via.ViState.String",
			"internal/obs/capture.(Clock).String": "clock-source names appear in bundle summaries and diff reports; a new source falling to \"unknown\" mislabels every report",
		},
		EnumExclude: map[string]string{
			"internal/obs.NumPhases": "count sentinel for array sizing, not a phase any exporter must handle",
		},
		TagFields: map[string]string{
			"internal/via.(wireMsg).kind": "internal/via.kindConnReq",
			"internal/mpi.(hdr).kind":     "internal/mpi.pktEager",
		},

		ProtocolDispatch: map[string]string{
			"internal/via.(Port).dispatch":     "internal/via.(wireMsg).kind",
			"internal/mpi.(Rank).handlePacket": "internal/mpi.(hdr).kind",
		},
		ProtocolNeverSent: map[string]string{},

		WaitWakeScope: map[string]bool{
			"internal/via": true,
		},
		WaitWakeStates: map[string][]string{
			// ViConnecting is the in-progress marker a waiter is waiting
			// *through*, not for; StatusPending likewise marks a descriptor
			// as not-yet-observable.
			"internal/via.ViState": {"ViConnecting"},
			"internal/via.Status":  {"StatusPending"},
		},
		WaitWakeWakers: map[string]bool{
			"internal/via.(Port).notifyActivity": true,
			"internal/via.(VI).enterError":       true, // wakes internally on every path
			"internal/via.(VI).Close":            true, // wakes internally on every path
			"internal/simnet.(Proc).Wake":        true,
		},
		WaitWakeAllow: map[string]string{
			"internal/via.(VI).failPending":    "completion helper with a caller-owned wake: enterError, Close and the DISC dispatch each notify after calling it",
			"internal/via.(VI).resetHandshake": "NACK/cancel helper: the kindConnNack dispatch path notifies after it, and CancelConnect runs on the owner thread, which cannot be parked while calling it",
			"internal/via.(VI).PostSend":       "owner-thread entry point: the pre-connection discard completes synchronously for the poster, which by definition is not parked",
		},
		WakeReachAllow: map[string]string{
			// Owner-thread entry points: both obligations come from helpers
			// (resetHandshake, the pre-connection discard) whose other
			// callers are verified by this rule; on these two surfaces the
			// calling process is by definition running, not parked, so there
			// is no waiter to wake.
			"internal/via.(Port).CancelConnect": "owner-thread entry point: the canceling process is running, not parked; the kindConnNack dispatch path through resetHandshake is verified separately and wakes",
			"internal/via.(VI).PostSend":        "owner-thread entry point: the pre-connection discard completes synchronously for the poster, which by definition is not parked",
		},

		LeafLocks: map[string]string{
			"internal/tcpvia.(Manager).metricsMu": "guards the obs metrics registry only; acquired last, released before any node/channel lock or call back into the stack",
			"internal/tcpvia.(EventLog).mu":       "guards the wall-clock capture sinks (ring + stream writer) only; acquired last, never held across a call back into the stack",
		},
		LockExempt:     map[string]string{},
		LockOrderAllow: map[string]string{},

		HotPaths: map[string]string{
			"internal/obs.(Bus).Emit":               "nil-bus disabled path runs on every instrumented event; pinned at zero allocations by BenchmarkEmitDisabled",
			"internal/obs.(Phases).Add":             "called on every progress pass and blocking wait",
			"internal/obs/capture.(Writer).Consume": "bundle encoder: runs once per bus event while recording; steady-state zero-alloc is the capture-overhead contract (append into the reused buffer, warm intern table)",
			"internal/obs/capture.(Ring).Consume":   "bounded flight-recorder store: runs once per bus event in live tcpvia capture",
			"internal/mpi.(Rank).progress":          "MPID_DeviceCheck wrapper, entered on every MPI call",
			"internal/mpi.(Rank).progressStep":      "per-poll channel scan; an allocation here scales with poll count, not traffic",
			"internal/mpi.(Rank).waitProgress":      "blocking-wait loop around progress",
			"internal/mpi.(Rank).blockedPhase":      "classifier inside the blocking-wait loop",
			"internal/mpi.(Rank).obsSend":           "nil-bus emit helper on the send fast path",
			"internal/mpi.(Rank).obsRecv":           "nil-bus emit helper on the receive fast path",
			"internal/mpi.(Rank).obsGauge":          "nil-bus emit helper in the progress engine",
			"internal/mpi.(Rank).obsUnexpected":     "nil-bus emit helper on the unexpected-queue path",
			"internal/via.(Port).notifyActivity":    "runs on every completion and state change",
			"internal/via.(Port).ChargeHost":        "runs on every post/poll; the cost model itself must cost nothing",
			"internal/via.(Port).FlushDebt":         "cost-model flush on the block/charge path",
			"internal/via.(VI).SendDone":            "send-completion poll, called in a drain loop every progress pass",
			"internal/via.(VI).recvDone":            "receive-completion poll on the wait path",
			"internal/via.(CQ).Done":                "completion-queue poll, called in a drain loop every progress pass",
			// The simnet scheduler substrate: every virtual event in every
			// figure passes through these, so the zero-alloc property the
			// BenchmarkSimCore rail measures is locked in statically here.
			"internal/simnet.(Sim).loop":         "the event loop itself; pops, dispatches, and context-switches once per simulated event",
			"internal/simnet.(Sim).schedule":     "event admission: every timer, wake, and callback passes through",
			"internal/simnet.(Sim).heapPush":     "4-ary heap insert on the scheduling path",
			"internal/simnet.(Sim).heapPop":      "4-ary heap extract on the dispatch path",
			"internal/simnet.(eventRing).push":   "same-instant FIFO admission (the Wake/Yield fast path)",
			"internal/simnet.(eventRing).pop":    "same-instant FIFO extract",
			"internal/simnet.(Proc).park":        "context switch out of a process; runs on every blocking primitive",
			"internal/simnet.(Proc).Sleep":       "timer-wake arm + park; the single hottest primitive in the stack",
			"internal/simnet.(Proc).Compute":     "CPU-cost charge: timer-wake arm + park",
			"internal/simnet.(Proc).ParkTimeout": "timeout-wake arm + park on the progress-wait path",
			"internal/simnet.(Proc).WakeAfter":   "cross-process wake scheduling; runs on every completion notify",
			// The batch runner's per-completion bookkeeping: it sits inside
			// the timed region of the SweepWallClock rail, so it must not add
			// GC pressure to the measurement (rendering, the fmt-heavy half,
			// only runs when a progress sink is attached).
			"internal/sweep.(tracker).advance": "runs on every job completion inside the SweepWallClock timed region; a counter bump under an uncontended lock must stay allocation-free",
		},
		ColdCalls: map[string]bool{
			"internal/simnet.(Sim).Failf": true, // records a failure and kills the run; its fmt args may box
		},
		// The eager-pool buffer lifecycle (growPool get → teardownChannel
		// put) rides on the pinned-memory pair below: pool buffers ARE
		// registered regions, so tracking Register/Deregister through the
		// memHandles field covers it. The pendingClose enqueue/replay pair
		// is a protocol obligation, not a handle, and is proved by the fsm
		// rule's eviction model (no stuck pendingClose).
		PairedSpecs: []PairedSpec{
			{
				Resource: "pinned memory registration",
				Acquires: []string{"internal/via.(MemoryRegistry).Register"},
				Releases: []string{"internal/via.(MemoryRegistry).Deregister"},
			},
			{
				Resource: "RDMA target registration",
				Acquires: []string{"internal/via.(Port).RegisterRdmaTarget"},
				Releases: []string{"internal/via.(Port).ReleaseRdmaTarget"},
			},
			{
				Resource: "VI endpoint slot",
				Acquires: []string{"internal/via.(Port).CreateVi", "internal/via.(Port).CreateViCQ"},
				Releases: []string{"internal/via.(VI).Close"},
			},
			{
				Resource: "event-bus subscription",
				Acquires: []string{"internal/obs.(Bus).Subscribe"},
				Releases: []string{"internal/obs.(Bus).Unsubscribe"},
			},
			{
				Resource: "capture bundle writer",
				Acquires: []string{"internal/obs/capture.NewWriter"},
				Releases: []string{"internal/obs/capture.(Writer).Close"},
			},
		},
		PairedAllow: map[string]string{
			"internal/bench.Pingpong": "the idle extra VIs are Figure 1's independent variable; the whole Port dies with the run",
			"cmd/vibench.prepare":     "deliberately provisions idle VIs to measure per-VI cost; the Port dies with the process",
		},
		FSMStates: map[string]string{
			"internal/via.ViState": "internal/via.(VI).state",
		},
		FSMModelCheck: true,
		SeqCheckClose: map[string]string{
			"internal/mpi.(Rank).teardownChannel": "dismantles the channel: closes the VI, deregisters pool memory, forgets the peer",
			"internal/via.(VI).Close":             "disconnects and retires the endpoint; descriptors posted after this are lost",
		},
		SeqCheckSend: map[string]string{
			"internal/mpi.(Rank).post":        "enqueue on the channel send FIFO",
			"internal/mpi.(Rank).emit":        "control-packet send on the channel",
			"internal/via.(VI).PostSend":      "post a send descriptor on the VI work queue",
			"internal/via.(VI).PostRdmaWrite": "post an RDMA write on the VI work queue",
		},
		SeqCheckAllow: map[string]string{},
	}
}

// FixturePolicy derives a policy for a fixture module under testdata/: same
// rule set, empty exception lists, so fixtures exercise the rules raw.
// Structural configuration (strict functions, tag fields, wakers, leaf
// locks, hot paths) is kept: the fixture declares types and functions under
// the same module-relative names the real policy points at.
func FixturePolicy() *Policy {
	p := DefaultPolicy()
	p.DeterminismExempt = map[string]string{}
	p.MapOrderAllow = map[string]string{}
	p.ChargeExempt = map[string]string{}
	p.ChargeFlowExempt = map[string]string{}
	p.EnumExclude = map[string]string{}
	p.WaitWakeAllow = map[string]string{}
	p.WakeReachAllow = map[string]string{}
	p.LockExempt = map[string]string{}
	p.LockOrderAllow = map[string]string{}
	p.ProtocolNeverSent = map[string]string{}
	p.PairedAllow = map[string]string{}
	p.SeqCheckAllow = map[string]string{}
	// The fixture's toy state machine is not the connection protocol the
	// product-automaton models encode; only extraction runs on fixtures.
	p.FSMModelCheck = false
	return p
}
