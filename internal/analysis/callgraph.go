package analysis

// callgraph.go is the whole-program interprocedural layer: an index of every
// declared function in the module, a call graph over them, and the shared
// traversal helpers the summary-propagation analyzers (lockorder, protocol,
// chargeflow, wakereach) are built on.
//
// Resolution is deliberately conservative in the direction that loses paths
// rather than inventing them, with one exception that adds paths: a call
// through a module-declared interface (core.Manager is the live example —
// mpi drives the connection managers through it) fans out to *every* module
// type whose method set satisfies the interface. Calls through function
// values, stdlib interfaces, or reflection resolve to nothing and are
// reported as unknown edges; the analyzers built on the graph treat an
// unknown callee as having no effects, which can under-report but never
// fabricates a diagnostic.
//
// Function literals are folded into their enclosing declaration: a literal
// runs in its own activation (often at a later virtual time), but the code
// it executes still belongs to the declaring function for reachability
// purposes — a callback scheduled by F that transmits a frame is a transmit
// F's callers can reach. Analyzers that need activation-accurate path
// sensitivity (waitwake) keep analyzing literals as separate units; the
// graph is about *what* can run, not *when*.
//
// The graph is built once per Module and cached (Module.Interproc), so the
// four interprocedural analyzers — and the stale-policy sweep — share one
// index instead of re-deriving it per rule.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// IPFunc is one declared function in the interprocedural index.
type IPFunc struct {
	Key      string // policy-qualified name ("internal/via.(Port).dispatch")
	Pkg      *Package
	File     *ast.File
	Decl     *ast.FuncDecl
	Units    []funcUnit // the declaration body plus its function literals
	Exported bool       // exported name on an exported (or no) receiver
}

// IPCall is one resolved call site inside a function.
type IPCall struct {
	Call    *ast.CallExpr
	Callees []string // sorted keys of possible module-internal targets; empty = unknown or external
}

// Interproc is the cached whole-program view.
type Interproc struct {
	mod   *Module
	Funcs map[string]*IPFunc // by Key
	Keys  []string           // sorted, for deterministic iteration

	// Sweeps counts full module sweeps made by summary-propagation
	// fixpoints (and the paired rule's derived-acquire rounds) across all
	// analyzers this run — the -json driver reports it on stderr so CI can
	// watch convergence cost.
	Sweeps int

	calls   map[string][]IPCall // per function, source order (literals included)
	callers map[string][]string // inverse edges, sorted+deduped
}

// Interproc returns the module's interprocedural index, building it on first
// use. All analyzers in one run share the same graph.
func (m *Module) Interproc() *Interproc {
	if m.inter == nil {
		m.inter = buildInterproc(m)
	}
	return m.inter
}

// Calls returns the call sites of the named function in source order.
func (ip *Interproc) Calls(key string) []IPCall { return ip.calls[key] }

// Callers returns the sorted keys of functions with a call site that may
// target key.
func (ip *Interproc) Callers(key string) []string { return ip.callers[key] }

// buildInterproc indexes every function declaration and resolves every call
// site in the module.
func buildInterproc(m *Module) *Interproc {
	ip := &Interproc{
		mod:     m,
		Funcs:   map[string]*IPFunc{},
		calls:   map[string][]IPCall{},
		callers: map[string][]string{},
	}
	// Pass 1: the function index, and the method-set table interface
	// resolution draws from.
	var namedTypes []*types.Named
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, u := range funcUnits(pkg, file) {
				if f := ip.Funcs[u.name]; f != nil {
					// A literal of a known declaration, or a same-key decl
					// (multiple init functions share "pkg.init").
					f.Units = append(f.Units, u)
					continue
				}
				if u.lit != nil {
					continue // literal of an unindexed decl (cannot happen in source order)
				}
				ip.Funcs[u.name] = &IPFunc{
					Key:      u.name,
					Pkg:      pkg,
					File:     file,
					Decl:     u.decl,
					Units:    []funcUnit{u},
					Exported: declIsExported(u.decl),
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					if _, isIface := named.Underlying().(*types.Interface); !isIface {
						namedTypes = append(namedTypes, named)
					}
				}
			}
		}
	}
	for key := range ip.Funcs {
		ip.Keys = append(ip.Keys, key)
	}
	sort.Strings(ip.Keys)

	// Pass 2: resolve call sites.
	callerSets := map[string]map[string]bool{}
	for _, key := range ip.Keys {
		f := ip.Funcs[key]
		var sites []IPCall
		// Each declaration body contains its literals, so walking the
		// declaration units collects every call site exactly once.
		for _, u := range f.Units {
			if u.lit != nil {
				continue
			}
			ast.Inspect(u.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sites = append(sites, IPCall{
					Call:    call,
					Callees: resolveCallees(m, f.Pkg, call, namedTypes),
				})
				return true
			})
		}
		ip.calls[key] = sites
		for _, s := range sites {
			for _, callee := range s.Callees {
				set := callerSets[callee]
				if set == nil {
					set = map[string]bool{}
					callerSets[callee] = set
				}
				set[key] = true
			}
		}
	}
	for callee, set := range callerSets {
		var list []string
		for k := range set {
			list = append(list, k)
		}
		sort.Strings(list)
		ip.callers[callee] = list
	}
	return ip
}

// declIsExported reports whether fd is part of the package's exported
// surface: an exported name, with any receiver type also exported.
func declIsExported(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		base := typeBaseName(fd.Recv.List[0].Type)
		if base == "" || !ast.IsExported(base) {
			return false
		}
	}
	return true
}

// resolveCallees maps one call expression to the module functions it may
// invoke. Static calls resolve to one target; calls through a module-declared
// interface fan out to every module type implementing it; everything else
// (function values, stdlib targets, builtins) resolves to nothing.
func resolveCallees(m *Module, pkg *Package, call *ast.CallExpr, namedTypes []*types.Named) []string {
	obj := calleeObject(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			return resolveInterfaceCall(m, fn, namedTypes)
		}
	}
	key := relQualified(m.Path, objectQualifiedName(fn))
	if key == "" || !inModule(m, fn.Pkg()) {
		return nil
	}
	return []string{key}
}

// resolveInterfaceCall fans an interface-method call out to every module
// type whose method set satisfies the method's interface.
func resolveInterfaceCall(m *Module, ifaceMethod *types.Func, namedTypes []*types.Named) []string {
	recv := ifaceMethod.Type().(*types.Signature).Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	set := map[string]bool{}
	for _, named := range namedTypes {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		target, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), ifaceMethod.Name())
		tf, ok := target.(*types.Func)
		if !ok || !inModule(m, tf.Pkg()) {
			continue
		}
		if key := relQualified(m.Path, objectQualifiedName(tf)); key != "" {
			set[key] = true
		}
	}
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// inModule reports whether pkg belongs to the module under analysis.
func inModule(m *Module, pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == m.Path || strings.HasPrefix(pkg.Path(), m.Path+"/")
}

// ---------------------------------------------------------------------------
// Summary-propagation fixpoint

// fixpoint repeatedly applies step to every function (in sorted key order)
// until one full sweep changes nothing. step returns true when it changed
// the summary it maintains for key. Summaries must grow (or shrink)
// monotonically or the loop may not terminate; the analyzers here use
// monotone boolean and set domains.
func (ip *Interproc) fixpoint(step func(key string) bool) {
	for changed := true; changed; {
		changed = false
		ip.Sweeps++
		for _, key := range ip.Keys {
			if step(key) {
				changed = true
			}
		}
	}
}

// nodeMayStates runs the shared bitset dataflow over one unit body and
// returns, for every CFG node, the may-state *before* the node executes —
// the building block the interprocedural analyzers use to ask "what may be
// held / owed at this call site".
func nodeMayStates(body *ast.BlockStmt, entryState uint64, transfer func(node ast.Node, in uint64) uint64) map[ast.Node]uint64 {
	g := buildCFG(body)
	in := blockStates(g, entryState, func(b *cfgBlock, s uint64) uint64 {
		for _, node := range b.nodes {
			s = transfer(node, s)
		}
		return s
	})
	states := map[ast.Node]uint64{}
	for _, blk := range g.blocks {
		s, reached := in[blk]
		if !reached {
			continue
		}
		for _, node := range blk.nodes {
			states[node] = s
			s = transfer(node, s)
		}
	}
	return states
}

// exitMayState folds one unit body and returns the may-state at the
// function exit (after any fall-off-the-end path and every return).
func exitMayState(body *ast.BlockStmt, entryState uint64, transfer func(node ast.Node, in uint64) uint64) uint64 {
	g := buildCFG(body)
	in := blockStates(g, entryState, func(b *cfgBlock, s uint64) uint64 {
		for _, node := range b.nodes {
			s = transfer(node, s)
		}
		return s
	})
	return in[g.exit]
}
