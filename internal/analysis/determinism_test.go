package analysis

// The runtime half of the determinism story: the static analyzers forbid
// the constructs that could break "a run is a pure function of its Config";
// this harness observes the property itself, end to end. A representative
// matrix — every connection manager, an application kernel, two job sizes —
// runs twice with identical Configs, and the two runs must produce
// byte-identical trace digests: same messages, same sources, same
// destinations, same sizes, same virtual-time stamps, same per-rank
// resource statistics.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"viampi/internal/apps"
	"viampi/internal/mpi"
	"viampi/internal/obs"
	"viampi/internal/obs/capture"
	"viampi/internal/simnet"
	"viampi/internal/sweep"
	"viampi/internal/trace"
	"viampi/internal/via"
)

// attachCapture wires a capture writer onto the run's bus so a divergence
// leaves behind two diffable bundles instead of just two hashes. It returns
// errors rather than failing a testing.T because it runs on sweep workers,
// where t.Fatalf is illegal.
func attachCapture(cfg *mpi.Config, rounds, msgBytes int) (*capture.Writer, *bytes.Buffer, error) {
	var bundle bytes.Buffer
	cw, err := capture.NewWriter(&bundle, capture.Header{
		Clock:  capture.ClockVirtual,
		World:  cfg.Procs,
		Seed:   cfg.Seed,
		Device: cfg.Device,
		Policy: cfg.Policy,
		Label:  "CG.replay",
		Config: fmt.Sprintf("procs=%d policy=%s seed=%d maxvis=%d rounds=%d msgBytes=%d",
			cfg.Procs, cfg.Policy, cfg.Seed, cfg.MaxVIs, rounds, msgBytes),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("capture writer: %w", err)
	}
	cw.Attach(cfg.Obs)
	return cw, &bundle, nil
}

// reportDivergence persists both runs' capture bundles outside the test's
// temp sandbox and logs the aligned diff — turning "the digests differ"
// into "the first divergent event is this one".
func reportDivergence(t *testing.T, first, second []byte) {
	t.Helper()
	dir, err := os.MkdirTemp("", "viampi-divergence-")
	if err != nil {
		t.Logf("cannot persist divergence bundles: %v", err)
		return
	}
	p1, p2 := filepath.Join(dir, "run1.bin"), filepath.Join(dir, "run2.bin")
	if err := os.WriteFile(p1, first, 0o644); err != nil {
		t.Logf("writing %s: %v", p1, err)
	}
	if err := os.WriteFile(p2, second, 0o644); err != nil {
		t.Logf("writing %s: %v", p2, err)
	}
	a, errA := capture.ReadBundle(bytes.NewReader(first))
	b, errB := capture.ReadBundle(bytes.NewReader(second))
	if errA != nil || errB != nil {
		t.Logf("bundles saved to %s (decode errors: %v / %v)", dir, errA, errB)
		return
	}
	var out bytes.Buffer
	if err := capture.Diff(a, b).WriteText(&out); err != nil {
		t.Logf("bundles saved to %s (diff render: %v)", dir, err)
		return
	}
	t.Logf("capture bundles saved to %s (inspect with viampi-replay)\n%s", dir, out.String())
}

// runDigestErr executes one replay of the CG communication pattern under
// cfg and folds everything observable about the run — the full timestamped
// event log plus per-rank statistics — into one hash. The returned bundle
// is the run's full capture, fed to reportDivergence when digests differ.
// It returns errors instead of taking a testing.T so dual runs can execute
// on concurrent sweep workers.
func runDigestErr(cfg mpi.Config, rounds, msgBytes int) (string, []byte, error) {
	rec := trace.New(cfg.Procs, true)
	cfg.Trace = rec
	cfg.Obs = obs.NewBus()
	cfg.Deadline = 30 * simnet.Second
	cw, bundle, err := attachCapture(&cfg, rounds, msgBytes)
	if err != nil {
		return "", nil, err
	}
	w, err := apps.Replay(apps.CG(), cfg, rounds, msgBytes)
	if err != nil {
		return "", nil, fmt.Errorf("replay (%s, %d procs): %w", cfg.Policy, cfg.Procs, err)
	}
	if err := cw.Close(); err != nil {
		return "", nil, fmt.Errorf("sealing capture bundle: %w", err)
	}

	h := sha256.New()
	put := func(vs ...int64) {
		for _, v := range vs {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	put(int64(w.Elapsed))
	for _, rs := range w.Ranks {
		put(int64(rs.Rank), int64(rs.InitTime), int64(rs.AppTime),
			int64(rs.VisCreated), int64(rs.VisUsed), int64(rs.DistinctDests),
			rs.PinnedPeak, rs.MsgsSent, rs.BytesSent, rs.WaitWakeups,
			int64(rs.ComputeTime))
	}
	for _, ev := range rec.Events() {
		put(ev.TimeNs, int64(ev.Src), int64(ev.Dst), int64(ev.Bytes), int64(ev.Tag))
	}
	if len(rec.Events()) == 0 {
		return "", nil, fmt.Errorf("replay (%s, %d procs) recorded no trace events; the digest would be vacuous", cfg.Policy, cfg.Procs)
	}
	return hex.EncodeToString(h.Sum(nil)), bundle.Bytes(), nil
}

// runDigest is the sequential single-run wrapper kept for the digest-moves
// sanity test.
func runDigest(t *testing.T, cfg mpi.Config, rounds, msgBytes int) (string, []byte) {
	t.Helper()
	hash, bundle, err := runDigestErr(cfg, rounds, msgBytes)
	if err != nil {
		t.Fatal(err)
	}
	return hash, bundle
}

// dualDigest runs two same-Config replays side by side on the batch
// runner's workers — the dual-run determinism check and a live test that
// concurrent simulations stay isolated — and fails the test on divergence.
// mkCfg builds a fresh Config per run so per-run state (fault plans, buses)
// is never shared.
func dualDigest(t *testing.T, mkCfg func() mpi.Config, rounds, msgBytes int,
	digest func(cfg mpi.Config, rounds, msgBytes int) (string, []byte, error)) {
	t.Helper()
	type run struct {
		hash   string
		bundle []byte
	}
	jobs := make([]sweep.Job[run], 2)
	for i := range jobs {
		jobs[i] = sweep.Job[run]{
			ID: fmt.Sprintf("run%d", i+1),
			Run: func() (run, error) {
				h, b, err := digest(mkCfg(), rounds, msgBytes)
				return run{h, b}, err
			},
		}
	}
	res, err := sweep.Values(sweep.Run(sweep.Options{Workers: 2}, jobs))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].hash != res[1].hash {
		reportDivergence(t, res[0].bundle, res[1].bundle)
		t.Fatalf("two runs with identical Configs diverged:\n  run 1: %s\n  run 2: %s", res[0].hash, res[1].hash)
	}
}

// TestDualRunDeterminism asserts byte-identical digests for every
// connection manager at two job sizes.
func TestDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, policy := range []string{"static-cs", "static-p2p", "ondemand"} {
		for _, procs := range []int{8, 16} {
			name := fmt.Sprintf("%s/p%d", policy, procs)
			policy, procs := policy, procs
			t.Run(name, func(t *testing.T) {
				dualDigest(t, func() mpi.Config {
					return mpi.Config{Procs: procs, Policy: policy, Seed: 42}
				}, rounds, msgBytes, runDigestErr)
			})
		}
	}
}

// TestDualRunDeterminismLargeWorld extends the dual-run property past the
// seed sizes into sparse-representation territory: at 96 ranks every rank's
// channel table, sequence counters, and manager state live in the sparse
// maps/sorted scan lists, so this pins that the lazy layout introduces no
// iteration-order or allocation-order nondeterminism. The static-p2p case
// tunes credits and the eager threshold down so the dense mesh's pinned
// pools stay small; on-demand runs with defaults.
func TestDualRunDeterminismLargeWorld(t *testing.T) {
	const rounds, msgBytes = 2, 256
	for _, cfg := range []mpi.Config{
		{Procs: 96, Policy: "ondemand", Seed: 42},
		{Procs: 96, Policy: "static-p2p", Seed: 42, CreditCount: 4, EagerThreshold: 64},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s/p%d", cfg.Policy, cfg.Procs), func(t *testing.T) {
			dualDigest(t, func() mpi.Config { return cfg }, rounds, msgBytes, runDigestErr)
		})
	}
}

// TestEvictionDualRunDeterminism extends the dual-run property to capped
// on-demand runs: with MaxVIs far below N-1 the eviction/reconnect machinery
// fires constantly, and its victim selection, BYE handshakes, and parked-send
// replays must all be pure functions of the Config.
func TestEvictionDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, procs := range []int{8, 16} {
		procs := procs
		t.Run(fmt.Sprintf("p%d", procs), func(t *testing.T) {
			dualDigest(t, func() mpi.Config {
				return mpi.Config{Procs: procs, Policy: "ondemand", MaxVIs: 3, Seed: 42}
			}, rounds, msgBytes, runDigestErr)
		})
	}
}

// TestFaultDualRunDeterminism pins the fault injector's hash-seeded design:
// dropped, refused, and delayed connection requests — and every retry and
// backoff they trigger — must replay identically for the same Config.
func TestFaultDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	plan := func() *via.FaultPlan {
		return &via.FaultPlan{DropConnReq: 0.25, RefuseConnReq: 0.25,
			DelayConnReq: 0.5, ConnReqDelay: 300 * simnet.Microsecond}
	}
	for _, policy := range []string{"static-p2p", "ondemand"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			// Each run builds its own fault plan: plans carry per-run state.
			dualDigest(t, func() mpi.Config {
				return mpi.Config{Procs: 8, Policy: policy, Seed: 42, Faults: plan()}
			}, rounds, msgBytes, runDigestErr)
		})
	}
}

// obsDigest runs the CG replay with the full observability stack attached
// (flight recorder + metrics collector on one bus) and hashes the rendered
// artifacts — the Perfetto trace JSON and the metrics JSON must themselves
// be byte-identical across same-Config runs, not merely the raw events.
func obsDigest(cfg mpi.Config, rounds, msgBytes int) (string, []byte, error) {
	bus := obs.NewBus()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	reg := obs.NewRegistry()
	obs.NewCollector(reg).Attach(bus)
	cfg.Obs = bus
	cfg.Deadline = 30 * simnet.Second
	cw, bundle, err := attachCapture(&cfg, rounds, msgBytes)
	if err != nil {
		return "", nil, err
	}
	if _, err := apps.Replay(apps.CG(), cfg, rounds, msgBytes); err != nil {
		return "", nil, fmt.Errorf("replay (%s, %d procs): %w", cfg.Policy, cfg.Procs, err)
	}
	if err := cw.Close(); err != nil {
		return "", nil, fmt.Errorf("sealing capture bundle: %w", err)
	}
	if rec.Len() == 0 {
		return "", nil, fmt.Errorf("observability run recorded no events; the digest would be vacuous")
	}
	var tr, mt bytes.Buffer
	if err := rec.WritePerfetto(&tr); err != nil {
		return "", nil, err
	}
	reg.WriteJSON(&mt)
	h := sha256.New()
	h.Write(tr.Bytes())
	h.Write(mt.Bytes())
	return hex.EncodeToString(h.Sum(nil)), bundle.Bytes(), nil
}

// TestObsDualRunDeterminism asserts the exported observability artifacts
// are byte-stable: two runs with identical Configs must render identical
// Perfetto traces and metrics dumps.
func TestObsDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, policy := range []string{"static-p2p", "ondemand"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			dualDigest(t, func() mpi.Config {
				return mpi.Config{Procs: 8, Policy: policy, Seed: 42}
			}, rounds, msgBytes, obsDigest)
		})
	}
}

// TestDigestTracksTheConfig is the harness's own sanity check: change any
// Config knob (seed, policy, size) and the digest must move — otherwise
// the dual-run comparison above could pass vacuously by hashing nothing
// that matters.
func TestDigestTracksTheConfig(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	base, _ := runDigest(t, mpi.Config{Procs: 8, Policy: "ondemand", Seed: 42}, rounds, msgBytes)
	if got, _ := runDigest(t, mpi.Config{Procs: 8, Policy: "static-cs", Seed: 42}, rounds, msgBytes); got == base {
		t.Error("digest identical across connection managers; trace is not capturing connection traffic timing")
	}
	if got, _ := runDigest(t, mpi.Config{Procs: 16, Policy: "ondemand", Seed: 42}, rounds, msgBytes); got == base {
		t.Error("digest identical across job sizes")
	}
	if got, _ := runDigest(t, mpi.Config{Procs: 8, Policy: "ondemand", Seed: 42}, rounds, 2*msgBytes); got == base {
		t.Error("digest identical across message sizes")
	}
}
