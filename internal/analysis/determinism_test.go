package analysis

// The runtime half of the determinism story: the static analyzers forbid
// the constructs that could break "a run is a pure function of its Config";
// this harness observes the property itself, end to end. A representative
// matrix — every connection manager, an application kernel, two job sizes —
// runs twice with identical Configs, and the two runs must produce
// byte-identical trace digests: same messages, same sources, same
// destinations, same sizes, same virtual-time stamps, same per-rank
// resource statistics.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"testing"

	"viampi/internal/apps"
	"viampi/internal/mpi"
	"viampi/internal/obs"
	"viampi/internal/simnet"
	"viampi/internal/trace"
	"viampi/internal/via"
)

// runDigest executes one replay of the CG communication pattern under cfg
// and folds everything observable about the run — the full timestamped
// event log plus per-rank statistics — into one hash.
func runDigest(t *testing.T, cfg mpi.Config, rounds, msgBytes int) string {
	t.Helper()
	rec := trace.New(cfg.Procs, true)
	cfg.Trace = rec
	cfg.Deadline = 30 * simnet.Second
	w, err := apps.Replay(apps.CG(), cfg, rounds, msgBytes)
	if err != nil {
		t.Fatalf("replay (%s, %d procs): %v", cfg.Policy, cfg.Procs, err)
	}

	h := sha256.New()
	put := func(vs ...int64) {
		for _, v := range vs {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	put(int64(w.Elapsed))
	for _, rs := range w.Ranks {
		put(int64(rs.Rank), int64(rs.InitTime), int64(rs.AppTime),
			int64(rs.VisCreated), int64(rs.VisUsed), int64(rs.DistinctDests),
			rs.PinnedPeak, rs.MsgsSent, rs.BytesSent, rs.WaitWakeups,
			int64(rs.ComputeTime))
	}
	for _, ev := range rec.Events() {
		put(ev.TimeNs, int64(ev.Src), int64(ev.Dst), int64(ev.Bytes), int64(ev.Tag))
	}
	if len(rec.Events()) == 0 {
		t.Fatalf("replay (%s, %d procs) recorded no trace events; the digest would be vacuous", cfg.Policy, cfg.Procs)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestDualRunDeterminism asserts byte-identical digests for every
// connection manager at two job sizes.
func TestDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, policy := range []string{"static-cs", "static-p2p", "ondemand"} {
		for _, procs := range []int{8, 16} {
			name := fmt.Sprintf("%s/p%d", policy, procs)
			t.Run(name, func(t *testing.T) {
				cfg := mpi.Config{Procs: procs, Policy: policy, Seed: 42}
				first := runDigest(t, cfg, rounds, msgBytes)
				second := runDigest(t, cfg, rounds, msgBytes)
				if first != second {
					t.Fatalf("two runs with identical Configs diverged:\n  run 1: %s\n  run 2: %s", first, second)
				}
			})
		}
	}
}

// TestEvictionDualRunDeterminism extends the dual-run property to capped
// on-demand runs: with MaxVIs far below N-1 the eviction/reconnect machinery
// fires constantly, and its victim selection, BYE handshakes, and parked-send
// replays must all be pure functions of the Config.
func TestEvictionDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, procs := range []int{8, 16} {
		t.Run(fmt.Sprintf("p%d", procs), func(t *testing.T) {
			cfg := mpi.Config{Procs: procs, Policy: "ondemand", MaxVIs: 3, Seed: 42}
			first := runDigest(t, cfg, rounds, msgBytes)
			second := runDigest(t, cfg, rounds, msgBytes)
			if first != second {
				t.Fatalf("capped runs with identical Configs diverged:\n  run 1: %s\n  run 2: %s", first, second)
			}
		})
	}
}

// TestFaultDualRunDeterminism pins the fault injector's hash-seeded design:
// dropped, refused, and delayed connection requests — and every retry and
// backoff they trigger — must replay identically for the same Config.
func TestFaultDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	plan := func() *via.FaultPlan {
		return &via.FaultPlan{DropConnReq: 0.25, RefuseConnReq: 0.25,
			DelayConnReq: 0.5, ConnReqDelay: 300 * simnet.Microsecond}
	}
	for _, policy := range []string{"static-p2p", "ondemand"} {
		t.Run(policy, func(t *testing.T) {
			cfg := mpi.Config{Procs: 8, Policy: policy, Seed: 42, Faults: plan()}
			first := runDigest(t, cfg, rounds, msgBytes)
			cfg.Faults = plan()
			second := runDigest(t, cfg, rounds, msgBytes)
			if first != second {
				t.Fatalf("faulted runs with identical Configs diverged:\n  run 1: %s\n  run 2: %s", first, second)
			}
		})
	}
}

// obsDigest runs the CG replay with the full observability stack attached
// (flight recorder + metrics collector on one bus) and hashes the rendered
// artifacts — the Perfetto trace JSON and the metrics JSON must themselves
// be byte-identical across same-Config runs, not merely the raw events.
func obsDigest(t *testing.T, cfg mpi.Config, rounds, msgBytes int) string {
	t.Helper()
	bus := obs.NewBus()
	rec := obs.NewRecorder()
	rec.Attach(bus)
	reg := obs.NewRegistry()
	obs.NewCollector(reg).Attach(bus)
	cfg.Obs = bus
	cfg.Deadline = 30 * simnet.Second
	if _, err := apps.Replay(apps.CG(), cfg, rounds, msgBytes); err != nil {
		t.Fatalf("replay (%s, %d procs): %v", cfg.Policy, cfg.Procs, err)
	}
	if rec.Len() == 0 {
		t.Fatal("observability run recorded no events; the digest would be vacuous")
	}
	var tr, mt bytes.Buffer
	if err := rec.WritePerfetto(&tr); err != nil {
		t.Fatal(err)
	}
	reg.WriteJSON(&mt)
	h := sha256.New()
	h.Write(tr.Bytes())
	h.Write(mt.Bytes())
	return hex.EncodeToString(h.Sum(nil))
}

// TestObsDualRunDeterminism asserts the exported observability artifacts
// are byte-stable: two runs with identical Configs must render identical
// Perfetto traces and metrics dumps.
func TestObsDualRunDeterminism(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	for _, policy := range []string{"static-p2p", "ondemand"} {
		t.Run(policy, func(t *testing.T) {
			cfg := mpi.Config{Procs: 8, Policy: policy, Seed: 42}
			first := obsDigest(t, cfg, rounds, msgBytes)
			second := obsDigest(t, cfg, rounds, msgBytes)
			if first != second {
				t.Fatalf("observability artifacts diverged across identical runs:\n  run 1: %s\n  run 2: %s", first, second)
			}
		})
	}
}

// TestDigestTracksTheConfig is the harness's own sanity check: change any
// Config knob (seed, policy, size) and the digest must move — otherwise
// the dual-run comparison above could pass vacuously by hashing nothing
// that matters.
func TestDigestTracksTheConfig(t *testing.T) {
	const rounds, msgBytes = 2, 1024
	base := runDigest(t, mpi.Config{Procs: 8, Policy: "ondemand", Seed: 42}, rounds, msgBytes)
	if got := runDigest(t, mpi.Config{Procs: 8, Policy: "static-cs", Seed: 42}, rounds, msgBytes); got == base {
		t.Error("digest identical across connection managers; trace is not capturing connection traffic timing")
	}
	if got := runDigest(t, mpi.Config{Procs: 16, Policy: "ondemand", Seed: 42}, rounds, msgBytes); got == base {
		t.Error("digest identical across job sizes")
	}
	if got := runDigest(t, mpi.Config{Procs: 8, Policy: "ondemand", Seed: 42}, rounds, 2*msgBytes); got == base {
		t.Error("digest identical across message sizes")
	}
}
