package analysis

import (
	"fmt"
	"go/ast"
	"sort"
)

// WakeReachAnalyzer is the interprocedural extension of waitwake: a
// waiter-visible state transition made anywhere in a call chain must be
// reachable by a wake through the call graph before the obligation escapes
// the waitwake scope. Where waitwake trusts its allowlist ("the callers
// wake"), this rule propagates the obligation into those callers and
// checks that they actually do.
func WakeReachAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wakereach",
		Doc:  "a park-visible transition must be reached by a wake through the call graph",
		Explain: `docs/ARCHITECTURE.md, "Enforced invariants": a process parked in
VipRecvWait/WaitActivity runs again only when a completion or state change
wakes it, so every transition into a waiter-visible state owes a
notifyActivity before control leaves the provider. The PR 3 VI.Close hang
is the motivating case: Close failed pending descriptors (a transition
helpers made on its behalf) and returned without the wake, leaving a
parked RecvWait asleep forever in virtual time. The per-body waitwake
rule catches this shape only when transition and return share a function;
helpers like failPending are excused by allowlist with the *claim* that
every caller wakes. This rule verifies the claim: it computes, over the
shared call graph, alwaysWakes(F) — every path through F wakes — and
owesWake(F) — some path transitions (directly, or by calling an owing
helper) and returns without a wake (direct, deferred, or via an
alwaysWakes callee). The obligation may flow upward between in-scope
functions, because a caller can legitimately own the wake; the diagnostic
fires when an owing function's obligation escapes — it is exported, is
called from outside Policy.WaitWakeScope, or has no module callers at
all — so no caller inside the provider can discharge it. Owner-thread
entry points whose caller is by definition not parked are justified in
Policy.WakeReachAllow.`,
		Run: runWakeReach,
	}
}

func runWakeReach(m *Module, p *Policy) []Diagnostic {
	ip := m.Interproc()

	calleeQual := func(pkg *Package, call *ast.CallExpr) string {
		obj := calleeObject(pkg.Info, call)
		if obj == nil {
			return ""
		}
		return relQualified(m.Path, objectQualifiedName(obj))
	}

	// alwaysWakes: greatest fixpoint — every path through F wakes, directly
	// or through a callee that always wakes. Policy-listed wakers qualify by
	// definition.
	always := map[string]bool{}
	for _, key := range ip.Keys {
		always[key] = true
	}
	wakesHere := func(pkg *Package, node ast.Node) bool {
		woke := false
		inspectSkipLits(node, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if wwIsWakerCall(m, p, pkg, call) {
					woke = true
				} else if q := calleeQual(pkg, call); always[q] && ip.Funcs[q] != nil {
					woke = true
				}
			}
			return true
		})
		return woke
	}
	ip.fixpoint(func(key string) bool {
		if !always[key] || p.WaitWakeWakers[key] {
			return false
		}
		f := ip.Funcs[key]
		var body *ast.BlockStmt
		for _, u := range f.Units {
			if u.lit == nil {
				body = u.body
				break
			}
		}
		if body == nil {
			return false
		}
		// Bit 0: not yet woken on some path. A deferred waker runs at
		// return, so for exit-state purposes it wakes the paths through it.
		exit := exitMayState(body, 1<<0, func(node ast.Node, in uint64) uint64 {
			if def, ok := node.(*ast.DeferStmt); ok {
				if wwIsWakerCall(m, p, f.Pkg, def.Call) || wwLitContainsWaker(m, p, f.Pkg, def.Call) {
					return lkApply(in, func(s int) int { return 1 })
				}
				return in
			}
			if wakesHere(f.Pkg, node) {
				return lkApply(in, func(s int) int { return 1 })
			}
			return in
		})
		if exit&(1<<0) != 0 {
			always[key] = false
			return true
		}
		return false
	})

	// owesWake: least fixpoint over the in-scope functions. The transfer
	// depends on the evolving owes map (a call to an owing helper raises the
	// obligation mid-path), so each sweep re-runs the dataflow.
	owes := map[string]bool{}
	witness := map[string]ast.Node{}
	inScope := func(key string) bool {
		f := ip.Funcs[key]
		return f != nil && p.WaitWakeScope[f.Pkg.Rel]
	}
	ip.fixpoint(func(key string) bool {
		if owes[key] || !inScope(key) || p.WaitWakeWakers[key] {
			return false
		}
		f := ip.Funcs[key]
		for _, u := range f.Units {
			var firstTrigger ast.Node
			exit := exitMayState(u.body, 1<<0, func(node ast.Node, in uint64) uint64 {
				return wrTransfer(m, p, f.Pkg, ip, always, owes, node, in, &firstTrigger)
			})
			for s := 0; s < wwStates; s++ {
				if exit&(1<<s) == 0 || s&wwPending == 0 || s&wwDeferred != 0 {
					continue
				}
				owes[key] = true
				if witness[key] == nil && firstTrigger != nil {
					witness[key] = firstTrigger
				}
				return true
			}
		}
		return false
	})

	// The obligation escapes when no in-scope caller can discharge it.
	var ds []Diagnostic
	var owing []string
	for key := range owes {
		owing = append(owing, key)
	}
	sort.Strings(owing)
	for _, key := range owing {
		if _, allowed := p.WakeReachAllow[key]; allowed {
			continue
		}
		f := ip.Funcs[key]
		callers := ip.Callers(key)
		escape := ""
		switch {
		case f.Exported:
			escape = "it is exported, so callers outside the provider reach it directly"
		case len(callers) == 0:
			escape = "it has no module callers to discharge the obligation"
		default:
			for _, c := range callers {
				if !inScope(c) {
					escape = fmt.Sprintf("it is called from %s, outside the waitwake scope", c)
					break
				}
			}
		}
		if escape == "" {
			continue // every caller is in scope and inherits the obligation
		}
		pos := witness[key]
		if pos == nil {
			pos = f.Decl
		}
		ds = append(ds, Diagnostic{
			Pos:  m.Position(pos.Pos()),
			Rule: "wakereach",
			Message: fmt.Sprintf("%s moves state a blocked waiter observes (directly or via a helper) and can return without any wake reaching it: %s; a parked WaitActivity would sleep forever — wake on every path, or justify the owner-thread contract in Policy.WakeReachAllow",
				key, escape),
		})
	}
	return ds
}

// wrTransfer folds one CFG node into the wwPending/wwDeferred state set,
// extending the waitwake transfer with interprocedural effects: a call to
// an owing helper raises the obligation; a call to an alwaysWakes callee
// discharges it.
func wrTransfer(m *Module, p *Policy, pkg *Package, ip *Interproc, always, owes map[string]bool, node ast.Node, in uint64, firstTrigger *ast.Node) uint64 {
	if def, ok := node.(*ast.DeferStmt); ok {
		if wwIsWakerCall(m, p, pkg, def.Call) || wwLitContainsWaker(m, p, pkg, def.Call) {
			return wwApply(in, func(s int) int { return s | wwDeferred })
		}
		return in
	}
	out := in
	raise := len(wwTriggers(m, p, pkg, node, false)) > 0
	wake := false
	inspectSkipLits(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wwIsWakerCall(m, p, pkg, call) {
			wake = true
			return true
		}
		obj := calleeObject(pkg.Info, call)
		if obj == nil {
			return true
		}
		q := relQualified(m.Path, objectQualifiedName(obj))
		if ip.Funcs[q] == nil {
			return true
		}
		if owes[q] {
			raise = true
		} else if always[q] {
			wake = true
		}
		return true
	})
	if raise {
		if *firstTrigger == nil {
			*firstTrigger = node
		}
		out = wwApply(out, func(s int) int { return s | wwPending })
	}
	if wake {
		out = wwApply(out, func(s int) int { return s &^ wwPending })
	}
	return out
}
