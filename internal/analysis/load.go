package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded package of the module under analysis: parsed files,
// the import list, and (when type checking succeeded) full type information.
type Package struct {
	Path      string      // import path ("viampi/internal/mpi")
	Rel       string      // module-relative path ("internal/mpi")
	Dir       string      // absolute directory
	Name      string      // package name
	Files     []*ast.File // non-test files
	TestFiles []*ast.File // *_test.go files (AST only, never type-checked)
	Imports   []string    // direct imports of the non-test files, sorted

	Types    *types.Package // nil if type checking failed outright
	Info     *types.Info
	TypeErrs []error // collected type errors (analysis continues past them)
}

// Module is a parsed-and-type-checked view of one Go module, loaded with
// nothing but the standard library (go/parser + go/types with a source
// importer), so the analyzers add no dependencies to the tree they guard.
type Module struct {
	Path string // module path from go.mod
	Root string // absolute root directory
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	byPath map[string]*Package
	inter  *Interproc // lazily-built whole-program view, shared by all analyzers
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Position resolves a token.Pos against the module's file set.
func (m *Module) Position(pos token.Pos) token.Position { return m.Fset.Position(pos) }

// skipDirs are directory names never descended into during the module walk.
var skipDirs = map[string]bool{
	"testdata": true, ".git": true, "vendor": true, "out": true,
}

// LoadModule parses every package under root and type-checks them in
// dependency order. Intra-module imports resolve against the loaded set;
// standard-library imports are type-checked from source ($GOROOT/src), so
// loading works in a hermetic build with no compiled package archives.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:   modPath,
		Root:   abs,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := m.parseTree(); err != nil {
		return nil, err
	}
	if err := m.typeCheck(); err != nil {
		return nil, err
	}
	return m, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// parseTree walks the module directory and parses every package it finds.
func (m *Module) parseTree() error {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != m.Root && (skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".") || strings.HasPrefix(d.Name(), "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var goFiles []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				goFiles = append(goFiles, e.Name())
			}
		}
		if len(goFiles) == 0 {
			continue
		}
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		pkg := &Package{Dir: dir}
		if rel == "." {
			pkg.Rel, pkg.Path = "", m.Path
		} else {
			pkg.Rel, pkg.Path = rel, m.Path+"/"+rel
		}
		importSet := map[string]bool{}
		for _, name := range goFiles {
			file, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
			}
			if strings.HasSuffix(name, "_test.go") {
				pkg.TestFiles = append(pkg.TestFiles, file)
				continue
			}
			pkg.Files = append(pkg.Files, file)
			pkg.Name = file.Name.Name
			for _, imp := range file.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err == nil {
					importSet[p] = true
				}
			}
		}
		if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
			continue
		}
		for p := range importSet {
			pkg.Imports = append(pkg.Imports, p)
		}
		sort.Strings(pkg.Imports)
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[pkg.Path] = pkg
	}
	return nil
}

// typeCheck checks packages in topological import order. Intra-module
// imports must already be checked (the module layering is a DAG; a cycle is
// reported as an error); everything else goes to the source importer.
func (m *Module) typeCheck() error {
	std := importer.ForCompiler(m.Fset, "source", nil)
	order, err := m.topoOrder()
	if err != nil {
		return err
	}
	for _, pkg := range order {
		if len(pkg.Files) == 0 {
			continue // test-only directory; nothing to check
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		pkg := pkg
		conf := types.Config{
			Error: func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if dep := m.byPath[path]; dep != nil {
					if dep.Types == nil {
						return nil, fmt.Errorf("analysis: import %q not yet checked (cycle?)", path)
					}
					return dep.Types, nil
				}
				return std.Import(path)
			}),
		}
		tpkg, _ := conf.Check(pkg.Path, m.Fset, pkg.Files, pkg.Info)
		pkg.Types = tpkg
	}
	return nil
}

// topoOrder sorts packages so every intra-module import precedes its
// importer.
func (m *Module) topoOrder() ([]*Package, error) {
	const (
		white = iota // unvisited
		grey         // on stack
		black        // done
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case grey:
			return fmt.Errorf("analysis: import cycle through %s", p.Path)
		case black:
			return nil
		}
		state[p.Path] = grey
		for _, imp := range p.Imports {
			if dep := m.byPath[imp]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.Path] = black
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
