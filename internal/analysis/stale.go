package analysis

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// StalePolicy returns one message per policy entry that no longer matches
// any code in the module: an allowlisted function that was renamed or
// deleted, an excused package that no longer exists, a lock-order edge
// naming a removed mutex. A suppression that outlives its justification is
// a hole in the invariant it excuses, so the driver warns on these and the
// selfcheck test fails on them.
//
// Only module-referencing entries are checked. Name lists that refer to the
// standard library (WallClockBanned, RandConstructors) and numeric
// configuration (Layers, TopLayer) have nothing to go stale against.
func StalePolicy(m *Module, p *Policy) []string {
	ip := m.Interproc()
	var stale []string
	report := func(list, key, kind string) {
		stale = append(stale, fmt.Sprintf("policy.%s[%q] matches no %s in the module; delete the entry or fix the reference", list, key, kind))
	}

	funcExists := func(key string) bool { return ip.Funcs[key] != nil }
	pkgExists := func(rel string) bool {
		if rel == "" {
			return m.Lookup(m.Path) != nil
		}
		return m.Lookup(m.Path+"/"+rel) != nil
	}

	checkFuncs := func(list string, keys []string) {
		for _, k := range keys {
			if !funcExists(k) {
				report(list, k, "function")
			}
		}
	}
	checkFuncs("MapOrderAllow", sortedStrKeys(p.MapOrderAllow))
	checkFuncs("ChargeRequired", sortedBoolKeys(p.ChargeRequired))
	checkFuncs("ChargeFuncs", sortedBoolKeys(p.ChargeFuncs))
	checkFuncs("ChargeExempt", sortedStrKeys(p.ChargeExempt))
	checkFuncs("ChargeFlowExempt", sortedStrKeys(p.ChargeFlowExempt))
	checkFuncs("ExhaustiveStrict", sortedStrKeys(p.ExhaustiveStrict))
	checkFuncs("WaitWakeWakers", sortedBoolKeys(p.WaitWakeWakers))
	checkFuncs("WaitWakeAllow", sortedStrKeys(p.WaitWakeAllow))
	checkFuncs("WakeReachAllow", sortedStrKeys(p.WakeReachAllow))
	checkFuncs("LockExempt", sortedStrKeys(p.LockExempt))
	checkFuncs("HotPaths", sortedStrKeys(p.HotPaths))
	checkFuncs("ColdCalls", sortedBoolKeys(p.ColdCalls))
	checkFuncs("ProtocolDispatch", sortedStrKeys(p.ProtocolDispatch))
	for _, spec := range p.PairedSpecs {
		checkFuncs("PairedSpecs."+spec.Resource, spec.Acquires)
		checkFuncs("PairedSpecs."+spec.Resource, spec.Releases)
	}
	checkFuncs("PairedAllow", sortedStrKeys(p.PairedAllow))
	checkFuncs("SeqCheckClose", sortedStrKeys(p.SeqCheckClose))
	checkFuncs("SeqCheckSend", sortedStrKeys(p.SeqCheckSend))
	checkFuncs("SeqCheckAllow", sortedStrKeys(p.SeqCheckAllow))

	for _, rel := range sortedStrKeys(p.DeterminismExempt) {
		if !pkgExists(rel) {
			report("DeterminismExempt", rel, "package")
		}
	}
	for _, rel := range sortedStrKeys(p.MapOrderStrict) {
		if !pkgExists(rel) {
			report("MapOrderStrict", rel, "package")
		}
	}
	for _, rel := range sortedBoolKeys(p.WaitWakeScope) {
		if !pkgExists(rel) {
			report("WaitWakeScope", rel, "package")
		}
	}
	for _, rel := range sortedBoolKeys(p.ChargeRootPkgs) {
		if !pkgExists(rel) {
			report("ChargeRootPkgs", rel, "package")
		}
	}

	for _, key := range sortedStrKeys(p.EnumExclude) {
		if !constExists(m, key) {
			report("EnumExclude", key, "constant")
		}
	}
	for _, key := range sortedStrKeys(p.ProtocolNeverSent) {
		if !constExists(m, key) {
			report("ProtocolNeverSent", key, "constant")
		}
	}

	for _, key := range sortedStrKeys(p.TagFields) {
		if !fieldExists(m, key) {
			report("TagFields", key, "struct field")
		}
		if anchor := p.TagFields[key]; !constExists(m, anchor) {
			report("TagFields", anchor, "anchor constant")
		}
	}
	for _, key := range sortedStrKeys(p.LeafLocks) {
		if !fieldExists(m, key) {
			report("LeafLocks", key, "struct field")
		}
	}
	var stateKeys []string
	for k := range p.WaitWakeStates {
		stateKeys = append(stateKeys, k)
	}
	sort.Strings(stateKeys)
	for _, key := range stateKeys {
		if !typeExists(m, key) {
			report("WaitWakeStates", key, "type")
		}
	}
	for _, key := range sortedStrKeys(p.FSMStates) {
		if !typeExists(m, key) {
			report("FSMStates", key, "type")
		}
		if field := p.FSMStates[key]; !fieldExists(m, field) {
			report("FSMStates", field, "struct field")
		}
	}
	for _, edge := range sortedStrKeys(p.LockOrderAllow) {
		from, to, ok := strings.Cut(edge, " -> ")
		if !ok || !fieldExists(m, from) || !fieldExists(m, to) {
			report("LockOrderAllow", edge, "pair of mutex fields")
		}
	}

	sort.Strings(stale)
	return stale
}

// constExists reports whether "rel/pkg.Name" names a package-level constant.
func constExists(m *Module, key string) bool {
	obj := scopeLookup(m, key)
	_, ok := obj.(*types.Const)
	return ok
}

// typeExists reports whether "rel/pkg.Name" names a package-level type.
func typeExists(m *Module, key string) bool {
	obj := scopeLookup(m, key)
	_, ok := obj.(*types.TypeName)
	return ok
}

// scopeLookup resolves "rel/pkg.Name" in the named package's scope.
func scopeLookup(m *Module, key string) types.Object {
	dot := strings.LastIndex(key, ".")
	if dot < 0 {
		return nil
	}
	pkg := lookupRel(m, key[:dot])
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	return pkg.Types.Scope().Lookup(key[dot+1:])
}

// fieldExists reports whether "rel/pkg.(Owner).field" names a declared
// struct field.
func fieldExists(m *Module, key string) bool {
	open := strings.Index(key, ".(")
	end := strings.Index(key, ").")
	if open < 0 || end < open {
		return false
	}
	pkg := lookupRel(m, key[:open])
	owner, field := key[open+2:end], key[end+2:]
	if pkg == nil || pkg.Types == nil {
		return false
	}
	tn, ok := pkg.Types.Scope().Lookup(owner).(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return true
		}
	}
	return false
}

// lookupRel resolves a module-relative package path.
func lookupRel(m *Module, rel string) *Package {
	if rel == "" {
		return m.Lookup(m.Path)
	}
	return m.Lookup(m.Path + "/" + rel)
}

func sortedStrKeys(set map[string]string) []string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedBoolKeys(set map[string]bool) []string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
