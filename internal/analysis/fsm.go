package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FSMAnalyzer extracts the connection state machine from the code itself —
// states from the channel-state enum, transitions from every assignment to
// the state field with the guards that dominate it — then checks it: every
// declared state must be enterable, the protocol-critical edges must exist,
// and (Policy.FSMModelCheck) the 2-peer product automata for connection
// establishment and eviction must be deadlock-free under fault-plan message
// loss, refusal and reordering.
func FSMAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "fsm",
		Doc:  "the extracted connection state machine is complete, and its 2-peer product automaton model-checks",
		Explain: `docs/ARCHITECTURE.md, the VI/channel lifecycle: the connection manager is
a distributed state machine (Idle → Connecting → Connected → Disconnected/
Closed with NACK resets and BYE eviction), and every deadlock or leak the
paper's on-demand argument must exclude lives in its transitions. Instead
of trusting a hand-drawn diagram, this rule extracts the machine from the
code: states are the constants of the Policy.FSMStates enum, transitions
are the assignments to the owning struct field, and each transition's
source states are inferred from the guards dominating the assignment
(enclosing if/switch conditions over the field, and early-return guards
earlier in the body). A state no assignment ever enters is dead — wire a
transition or delete it. viampi-vet -fsm-dot renders the extraction as
DOT; docs/connection-fsm.dot is the committed artifact and make check
diffs it, so the architecture diagram cannot drift from the code. With
Policy.FSMModelCheck on, the protocol-critical edges are asserted present
and the 2-peer product automata are exhaustively explored (fsmcheck.go):
connection establishment stays deadlock-free and reaches both-connected
under ConnReq drop/refusal/reordering exactly when crossing-request
adoption is on (the PR 3 rule is the only NACK-livelock escape), and the
BYE/BYEACK/BYENACK eviction handshake always quiesces with no stuck
pendingClose.`,
		Run: runFSM,
	}
}

// fsmState is one enum constant.
type fsmState struct {
	Name  string
	Value int64
	Pos   token.Pos
}

// fsmEdge is one extracted transition.
type fsmEdge struct {
	From    map[string]bool // possible source states; all states = unguarded
	To      string
	Trigger string // dispatcher arm kind, or the assigning function
	Pos     token.Pos
}

// fsmMachine is the extraction for one FSMStates policy entry.
type fsmMachine struct {
	TypeKey  string // "internal/via.ViState"
	FieldKey string // "internal/via.(VI).state"
	States   []fsmState
	Edges    []fsmEdge
	TypePos  token.Pos
}

func runFSM(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, typeKey := range sortedStrKeys(p.FSMStates) {
		mach, err := extractFSM(m, p, typeKey, p.FSMStates[typeKey])
		if err != "" {
			ds = append(ds, Diagnostic{Pos: m.Position(token.NoPos), Rule: "fsm", Message: err})
			continue
		}
		ds = append(ds, checkFSM(m, p, mach)...)
	}
	return ds
}

// extractFSM builds the machine for one enum type + owner field.
func extractFSM(m *Module, p *Policy, typeKey, fieldKey string) (*fsmMachine, string) {
	obj := scopeLookup(m, typeKey)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, fmt.Sprintf("Policy.FSMStates[%q] names no type in the module", typeKey)
	}
	mach := &fsmMachine{TypeKey: typeKey, FieldKey: fieldKey, TypePos: tn.Pos()}

	// States: package-level constants of the enum type, by value.
	scope := tn.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		mach.States = append(mach.States, fsmState{Name: c.Name(), Value: v, Pos: c.Pos()})
	}
	sort.Slice(mach.States, func(i, j int) bool {
		if mach.States[i].Value != mach.States[j].Value {
			return mach.States[i].Value < mach.States[j].Value
		}
		return mach.States[i].Name < mach.States[j].Name
	})
	if len(mach.States) == 0 {
		return nil, fmt.Sprintf("Policy.FSMStates[%q] has no constants of the enum type", typeKey)
	}

	stateByName := map[string]bool{}
	for _, s := range mach.States {
		stateByName[s.Name] = true
	}
	fieldVar := fsmResolveField(m, fieldKey)
	if fieldVar == nil {
		return nil, fmt.Sprintf("Policy.FSMStates[%q]: field %q does not resolve", typeKey, fieldKey)
	}

	// Transitions: every assignment to the owner field, module-wide.
	ip := m.Interproc()
	for _, key := range ip.Keys {
		f := ip.Funcs[key]
		info := f.Pkg.Info
		for _, u := range f.Units {
			parent := prParentMap(u.body)
			inspectSkipLits(u.body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, l := range as.Lhs {
					sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
					if !ok || info.Uses[sel.Sel] != fieldVar {
						continue
					}
					var rhs ast.Expr
					if len(as.Rhs) == len(as.Lhs) {
						rhs = as.Rhs[i]
					} else if len(as.Rhs) == 1 {
						rhs = as.Rhs[0]
					}
					to := fsmConstName(info, rhs, stateByName)
					if to == "" {
						continue // non-constant target: outside the machine
					}
					base, _ := seqBaseIdent(sel.X)
					var baseObj types.Object
					if base != nil {
						baseObj = info.Uses[base]
					}
					from := fsmFromSet(m, p, info, u, parent, as, sel, baseObj, stateByName)
					trigger := fsmTrigger(m, p, info, u, parent, as, key)
					mach.Edges = append(mach.Edges, fsmEdge{From: from, To: to, Trigger: trigger, Pos: as.Pos()})
				}
				return true
			})
		}
	}
	sort.Slice(mach.Edges, func(i, j int) bool { return mach.Edges[i].Pos < mach.Edges[j].Pos })
	return mach, ""
}

// fsmResolveField returns the *types.Var for "rel/pkg.(Owner).field".
func fsmResolveField(m *Module, key string) *types.Var {
	open := strings.Index(key, ".(")
	end := strings.Index(key, ").")
	if open < 0 || end < open {
		return nil
	}
	pkg := lookupRel(m, key[:open])
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	owner, field := key[open+2:end], key[end+2:]
	tn, ok := pkg.Types.Scope().Lookup(owner).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i)
		}
	}
	return nil
}

// fsmConstName resolves an expression to a state-constant name.
func fsmConstName(info *types.Info, e ast.Expr, states map[string]bool) string {
	if e == nil {
		return ""
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if states[e.Name] {
			return e.Name
		}
	case *ast.SelectorExpr:
		if states[e.Sel.Name] {
			return e.Sel.Name
		}
	}
	return ""
}

// fsmFromSet infers the possible source states of one assignment from the
// guards dominating it: enclosing if conditions and switch cases over the
// same field of the same base object, and early-return guards among the
// lexically preceding statements of every enclosing block.
func fsmFromSet(m *Module, p *Policy, info *types.Info, u funcUnit, parent map[ast.Node]ast.Node, site ast.Node, fieldSel *ast.SelectorExpr, baseObj types.Object, states map[string]bool) map[string]bool {
	from := map[string]bool{}
	for s := range states {
		from[s] = true
	}
	intersect := func(only string) {
		for s := range from {
			if s != only {
				delete(from, s)
			}
		}
	}
	// sameField: a guard expression reads the same state field of the same
	// variable the assignment writes.
	sameField := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || info.Uses[sel.Sel] != info.Uses[fieldSel.Sel] {
			return false
		}
		if baseObj == nil {
			return true
		}
		base, _ := seqBaseIdent(sel.X)
		return base != nil && info.Uses[base] == baseObj
	}
	applyCompare := func(e ast.Expr, negate bool) {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		var state string
		switch {
		case sameField(be.X):
			state = fsmConstName(info, be.Y, states)
		case sameField(be.Y):
			state = fsmConstName(info, be.X, states)
		}
		if state == "" {
			return
		}
		eq := be.Op == token.EQL
		if negate {
			eq = !eq
		}
		if eq {
			intersect(state)
		} else {
			delete(from, state)
		}
	}
	// Conjuncts of an enclosing condition all hold on the then-branch.
	applyCond := func(e ast.Expr, negate bool) {
		if negate {
			applyCompare(e, true)
			return
		}
		var walk func(ast.Expr)
		walk = func(e ast.Expr) {
			if be, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && be.Op == token.LAND {
				walk(be.X)
				walk(be.Y)
				return
			}
			applyCompare(e, false)
		}
		walk(e)
	}

	// Enclosing guards: walk ancestors of the assignment.
	for n, par := site, parent[site]; par != nil; n, par = par, parent[par] {
		switch ps := par.(type) {
		case *ast.IfStmt:
			if fsmInStmt(ps.Body, n) {
				applyCond(ps.Cond, false)
			}
		case *ast.CaseClause:
			// A case of a switch over the field constrains to its constants.
			if sw, ok := parent[par].(*ast.BlockStmt); ok {
				if swStmt, ok := parent[sw].(*ast.SwitchStmt); ok && swStmt.Tag != nil && sameField(swStmt.Tag) && len(ps.List) > 0 {
					keep := map[string]bool{}
					for _, e := range ps.List {
						if s := fsmConstName(info, e, states); s != "" {
							keep[s] = true
						}
					}
					if len(keep) > 0 {
						for s := range from {
							if !keep[s] {
								delete(from, s)
							}
						}
					}
				}
			}
		}
	}

	// Early-return guards: in every enclosing block, a preceding
	// "if <field cmp Const> { return }" constrains everything after it.
	for n, par := site, parent[site]; par != nil; n, par = par, parent[par] {
		blk, ok := par.(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, st := range blk.List {
			if st == n || st.Pos() >= n.Pos() {
				break
			}
			ifs, ok := st.(*ast.IfStmt)
			if !ok || ifs.Else != nil || !fsmAlwaysExits(ifs.Body) {
				continue
			}
			applyCond(ifs.Cond, true)
		}
	}
	return from
}

// fsmInStmt reports whether n is (or is inside) s.
func fsmInStmt(s ast.Stmt, n ast.Node) bool {
	return s != nil && n != nil && s.Pos() <= n.Pos() && n.End() <= s.End()
}

// fsmAlwaysExits reports whether a guard body unconditionally leaves the
// function (return, or a terminal call).
func fsmAlwaysExits(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isTerminalCall(last.X)
	}
	return false
}

// fsmTrigger labels an edge: inside a protocol dispatcher it is the wire
// kind of the enclosing case clause, otherwise the assigning function.
func fsmTrigger(m *Module, p *Policy, info *types.Info, u funcUnit, parent map[ast.Node]ast.Node, site ast.Node, key string) string {
	if _, isDispatch := p.ProtocolDispatch[key]; isDispatch {
		for n := parent[site]; n != nil; n = parent[n] {
			cc, ok := n.(*ast.CaseClause)
			if !ok || len(cc.List) == 0 {
				continue
			}
			if id, ok := ast.Unparen(cc.List[0]).(*ast.Ident); ok {
				return id.Name
			}
			if sel, ok := ast.Unparen(cc.List[0]).(*ast.SelectorExpr); ok {
				return sel.Sel.Name
			}
		}
	}
	if dot := strings.LastIndex(key, "."); dot >= 0 {
		return key[dot+1:]
	}
	return key
}

// checkFSM reports dead states and, with FSMModelCheck, validates the
// protocol edges and runs the product-automaton models.
func checkFSM(m *Module, p *Policy, mach *fsmMachine) []Diagnostic {
	var ds []Diagnostic

	entered := map[string]bool{}
	for _, e := range mach.Edges {
		entered[e.To] = true
	}
	for _, s := range mach.States {
		if s.Value == 0 || entered[s.Name] {
			continue // the zero value is the initial state
		}
		ds = append(ds, Diagnostic{
			Pos:  m.Position(s.Pos),
			Rule: "fsm",
			Message: fmt.Sprintf("state %s of %s is never entered: no assignment to %s targets it — wire a transition or delete the state",
				s.Name, mach.TypeKey, mach.FieldKey),
		})
	}

	if !p.FSMModelCheck {
		return ds
	}

	// The protocol-critical edges the product-automaton models abstract:
	// if one is missing from the extraction, the models are checking a
	// machine the code does not implement.
	required := [][2]string{
		{"ViIdle", "ViConnecting"},        // issue / accept
		{"ViConnecting", "ViConnected"},   // handshake completes
		{"ViConnecting", "ViIdle"},        // NACK reset (resetHandshake)
		{"ViConnected", "ViDisconnected"}, // peer disconnect
		{"ViConnected", "ViClosed"},       // eviction close
	}
	hasEdge := func(fromS, toS string) bool {
		for _, e := range mach.Edges {
			if e.To == toS && e.From[fromS] {
				return true
			}
		}
		return false
	}
	for _, req := range required {
		if !hasEdge(req[0], req[1]) {
			ds = append(ds, Diagnostic{
				Pos:  m.Position(mach.TypePos),
				Rule: "fsm",
				Message: fmt.Sprintf("extracted machine for %s has no %s → %s transition, but the connection model depends on it — the code and the protocol model have diverged",
					mach.TypeKey, req[0], req[1]),
			})
		}
	}

	// With adoption on, establishment must model-check clean; with adoption
	// off, the NACK livelock must appear (otherwise the PR 3 adoption rule
	// is vestigial and the model proves nothing).
	for _, fail := range CheckConnectionModel(true) {
		ds = append(ds, Diagnostic{
			Pos:     m.Position(mach.TypePos),
			Rule:    "fsm",
			Message: fmt.Sprintf("connection model (adoption on): %s — the 2-peer product automaton violates the establishment contract", fail),
		})
	}
	if len(CheckConnectionModel(false)) == 0 {
		ds = append(ds, Diagnostic{
			Pos:     m.Position(mach.TypePos),
			Rule:    "fsm",
			Message: "connection model (adoption off) finds no NACK livelock, so crossing-request adoption is not load-bearing — the model and the PR 3 rule have diverged",
		})
	}
	for _, fail := range CheckByeModel() {
		ds = append(ds, Diagnostic{
			Pos:     m.Position(mach.TypePos),
			Rule:    "fsm",
			Message: fmt.Sprintf("eviction model: %s — the BYE handshake product automaton violates quiescence", fail),
		})
	}
	return ds
}

// FSMDot renders every extracted machine as deterministic Graphviz DOT —
// the generated replacement for a hand-drawn lifecycle diagram. Transitions
// possible from every state (or every state but the target) collapse onto
// an "any" pseudo-node.
func FSMDot(m *Module, p *Policy) string {
	var b strings.Builder
	b.WriteString("// Generated by viampi-vet -fsm-dot; do not edit.\n")
	b.WriteString("// Regenerate: go run ./cmd/viampi-vet -root . -fsm-dot > docs/connection-fsm.dot\n")
	for _, typeKey := range sortedStrKeys(p.FSMStates) {
		mach, errMsg := extractFSM(m, p, typeKey, p.FSMStates[typeKey])
		if errMsg != "" {
			fmt.Fprintf(&b, "// %s: %s\n", typeKey, errMsg)
			continue
		}
		name := typeKey
		if dot := strings.LastIndex(name, "."); dot >= 0 {
			name = name[dot+1:]
		}
		fmt.Fprintf(&b, "digraph %s {\n", name)
		b.WriteString("  rankdir=LR;\n")
		b.WriteString("  node [shape=ellipse];\n")
		for _, s := range mach.States {
			attr := ""
			if s.Value == 0 {
				attr = " [peripheries=2]" // initial state
			}
			fmt.Fprintf(&b, "  %q%s;\n", s.Name, attr)
		}
		// Collapse and dedupe: one line per (from, to, trigger).
		type dotEdge struct{ from, to, label string }
		seen := map[dotEdge]bool{}
		var edges []dotEdge
		for _, e := range mach.Edges {
			all := true
			for _, s := range mach.States {
				if !e.From[s.Name] && s.Name != e.To {
					all = false
					break
				}
			}
			var froms []string
			if all {
				froms = []string{"any"}
			} else {
				for _, s := range mach.States {
					if e.From[s.Name] {
						froms = append(froms, s.Name)
					}
				}
			}
			for _, f := range froms {
				de := dotEdge{from: f, to: e.To, label: e.Trigger}
				if !seen[de] {
					seen[de] = true
					edges = append(edges, de)
				}
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].from != edges[j].from {
				return edges[i].from < edges[j].from
			}
			if edges[i].to != edges[j].to {
				return edges[i].to < edges[j].to
			}
			return edges[i].label < edges[j].label
		})
		hasAny := false
		for _, e := range edges {
			if e.from == "any" {
				hasAny = true
			}
		}
		if hasAny {
			b.WriteString("  \"any\" [shape=plaintext];\n")
		}
		for _, e := range edges {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.from, e.to, e.label)
		}
		b.WriteString("}\n")
	}
	return b.String()
}
