package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFSMDotMatchesCommitted pins the generated connection-FSM diagram
// against the committed docs/connection-fsm.dot — the in-test twin of the
// `make fsm-dot-check` drift gate, so `go test ./...` alone catches a state
// machine edited without regenerating the diagram.
func TestFSMDotMatchesCommitted(t *testing.T) {
	m := loadRepo(t)
	got := FSMDot(m, DefaultPolicy())
	path := filepath.Join("..", "..", "docs", "connection-fsm.dot")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed diagram: %v", err)
	}
	if got != string(want) {
		t.Errorf("docs/connection-fsm.dot is stale — run 'make fsm-dot' and commit the diff\ngenerated:\n%s", got)
	}
}

// TestFSMDotExtractsTheRealMachine spot-checks the extraction against the
// transitions the connection manager is known to implement, independent of
// DOT formatting.
func TestFSMDotExtractsTheRealMachine(t *testing.T) {
	m := loadRepo(t)
	dot := FSMDot(m, DefaultPolicy())
	for _, edge := range []string{
		`"ViIdle" -> "ViConnecting" [label="ConnectPeerRequest"]`,
		`"ViIdle" -> "ViConnecting" [label="Accept"]`,
		`"ViConnecting" -> "ViConnected" [label="kindConnAck"]`,
		`"ViConnected" -> "ViDisconnected" [label="kindDisc"]`,
		`"any" -> "ViIdle" [label="resetHandshake"]`,
		`"any" -> "ViClosed" [label="Close"]`,
		`"any" -> "ViError" [label="enterError"]`,
	} {
		if !strings.Contains(dot, edge) {
			t.Errorf("extracted DOT is missing edge %s", edge)
		}
	}
}

// TestConnectionModelAdoptionOn is the establishment proof: with crossing-
// request adoption (the PR 3 rule), the 2-peer product automaton under
// request drop/refusal/reordering is deadlock-free, livelock-free, and
// always reaches both-connected once faults stop.
func TestConnectionModelAdoptionOn(t *testing.T) {
	if fails := CheckConnectionModel(true); len(fails) != 0 {
		t.Errorf("adoption-on model violates the establishment contract:\n  %s", strings.Join(fails, "\n  "))
	}
}

// TestConnectionModelAdoptionOffLivelocks proves adoption is load-bearing:
// without it, the checker must find the crossing-NACK livelock (both peers
// refuse each other's request, reset, and collide again forever). If this
// ever passes clean, the model has drifted and proves nothing.
func TestConnectionModelAdoptionOffLivelocks(t *testing.T) {
	fails := CheckConnectionModel(false)
	if len(fails) == 0 {
		t.Fatal("adoption-off model checks clean, so the model no longer demonstrates why crossing-request adoption exists")
	}
	found := false
	for _, f := range fails {
		if strings.Contains(f, "livelock") {
			found = true
		}
	}
	if !found {
		t.Errorf("adoption-off model fails, but not with the expected livelock:\n  %s", strings.Join(fails, "\n  "))
	}
}

// TestByeModelQuiesces is the eviction proof: the BYE/BYEACK/BYENACK
// handshake always drains to a legal quiescent state — no side stuck
// mid-eviction, no held pendingClose packet surviving teardown.
func TestByeModelQuiesces(t *testing.T) {
	if fails := CheckByeModel(); len(fails) != 0 {
		t.Errorf("eviction model violates quiescence:\n  %s", strings.Join(fails, "\n  "))
	}
}
