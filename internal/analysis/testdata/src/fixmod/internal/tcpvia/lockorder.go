// lockorder.go is the fixture home of the global lock-order cases: two
// mutexes acquired in opposite orders by two functions, each locally
// impeccable (paired, deferred), so only the whole-program order graph sees
// the deadlock. The sync import is a deliberate extra determinism
// violation, as in locks.go.
package tcpvia

import "sync"

// Node and Channel mirror the real tcpvia lock hierarchy shape.
type Node struct {
	mu sync.Mutex
	n  int
}

type Channel struct {
	mu sync.Mutex
	n  int
}

// lockNode acquires the Node lock (an interprocedural acquisition site).
func (n *Node) lockNode() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.n++
}

// lockChannel acquires the Channel lock.
func (c *Channel) lockChannel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// PairAB holds Node.mu while a callee acquires Channel.mu (order A→B).
func (n *Node) PairAB(c *Channel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c.lockChannel()
}

// PairBA holds Channel.mu while a callee acquires Node.mu (order B→A) —
// together with PairAB this closes the cycle; lockorder must flag it once.
func (c *Channel) PairBA(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n.lockNode()
}

// PairABAgain repeats the A→B order — consistent ordering, adds no new
// edge and must NOT widen the report.
func (n *Node) PairABAgain(c *Channel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c.lockChannel()
}
