// Package tcpvia is the fixture home of the lock-discipline cases. The
// sync and via imports are deliberate extra violations (determinism and
// layering): the fixture policy strips the restricted leaf's exemption so
// every rule sees this file raw.
package tcpvia

import (
	"sync"

	"fixmod/internal/via"
)

// Manager mirrors the real tcpvia.Manager leaf-lock shape; metricsMu is
// declared in Policy.LeafLocks.
type Manager struct {
	metricsMu sync.Mutex
	n         int
}

// CountBad leaks the lock on the early-return path and re-enters a layered
// package while holding the leaf — must flag twice.
func (m *Manager) CountBad(skip bool) int {
	m.metricsMu.Lock() // locks violation: no Unlock on the skip path
	m.n++
	via.Poke() // locks violation: layered call under the leaf lock
	if skip {
		return m.n
	}
	m.metricsMu.Unlock()
	return m.n
}

// CountGood defers the unlock and stays inside the leaf — must NOT flag.
func (m *Manager) CountGood() int {
	m.metricsMu.Lock()
	defer m.metricsMu.Unlock()
	m.n++
	return m.n
}

// CountBranches unlocks explicitly on every path — must NOT flag.
func (m *Manager) CountBranches(fast bool) int {
	m.metricsMu.Lock()
	if fast {
		n := m.n
		m.metricsMu.Unlock()
		return n
	}
	m.n++
	m.metricsMu.Unlock()
	return m.n
}
