// chargeflow.go is the fixture home of the interprocedural cost-charging
// cases: every exported function here is an MPI entry point
// (Policy.ChargeRootPkgs), and the fabric transmit is buried one call deep,
// out of reach of the per-body costcharge rule.
package mpi

import (
	"fixmod/internal/fabric"
	"fixmod/internal/simnet"
)

// Chan mirrors the channel shape that owns a fabric handle and a process.
type Chan struct {
	cl   *fabric.Cluster
	proc *simnet.Proc
}

// transmit reaches the fabric; whether that is charged depends on the
// caller's path, which only the interprocedural rule can see.
func (c *Chan) transmit() {
	c.cl.Send(32)
}

// charge pays CPU cost on every path, so a call to it counts as charging.
func (c *Chan) charge() {
	c.proc.Compute(5)
}

// SendUncharged reaches the transmit through the helper with no charge on
// the path — must flag.
func (c *Chan) SendUncharged() {
	c.transmit() // chargeflow violation: uncharged path to fabric.Send
}

// SendCharged charges inline before descending — must NOT flag.
func (c *Chan) SendCharged() {
	c.proc.Compute(10)
	c.transmit()
}

// SendChargedInHelper charges inside a helper — must NOT flag: crediting
// helper charges is exactly what the interprocedural rule adds over
// costcharge.
func (c *Chan) SendChargedInHelper() {
	c.charge()
	c.transmit()
}

// SendBranchUncharged charges one branch but not the other — must flag:
// the rule is per-path, not per-body.
func (c *Chan) SendBranchUncharged(fast bool) {
	if !fast {
		c.charge()
	}
	c.transmit() // chargeflow violation: the fast path never charged
}
