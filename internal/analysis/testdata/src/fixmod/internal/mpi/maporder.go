// Package mpi is the fixture home of the maporder rule cases.
package mpi

import "sort"

// BadAppend ranges a map and appends values — ordered output, must flag.
func BadAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // maporder violation: values in map order
	}
	return out
}

// BadCollectNoSort collects keys but never sorts them — must flag.
func BadCollectNoSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodSortedKeys is the blessed idiom — must NOT flag.
func GoodSortedKeys(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// GoodAccumulate is a commutative reduction — must NOT flag.
func GoodAccumulate(m map[int]int64) int64 {
	var total int64
	for _, n := range m {
		if n > 0 {
			total += n
		}
	}
	return total
}

// BadCall invokes another function per entry — ordering leaks, must flag.
func BadCall(m map[int]int, sink func(int)) {
	for k := range m {
		sink(k)
	}
}
