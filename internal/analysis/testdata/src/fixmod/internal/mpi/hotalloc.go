// hotalloc.go is the fixture home of the hot-path allocation cases:
// Rank.progress is annotated in Policy.HotPaths, so each allocating
// construct in it is one violation class.
package mpi

// Rank mirrors the real progress-engine owner.
type Rank struct {
	names []string
	n     int
}

func sink(v interface{}) {}

func (r *Rank) progress(tag string) {
	buf := make([]byte, 16) // hotalloc violation: make on the hot path
	_ = buf
	p := &Rank{} // hotalloc violation: escaping composite literal
	_ = p
	f := func() { r.n++ } // hotalloc violation: closure literal
	f()
	msg := "rank:" + tag // hotalloc violation: string concatenation
	_ = msg
	sink(r.n) // hotalloc violation: interface boxing
}

// Cold is not annotated: the same constructs — must NOT flag.
func Cold(tag string) string {
	b := make([]byte, 1)
	_ = b
	return "cold:" + tag
}
