// Package fabric is the fixture twin of viampi's internal/fabric: it
// exposes the entry points the costcharge rule audits.
package fabric

// Cluster mirrors the real fabric.Cluster surface the rule knows about.
type Cluster struct{}

// Send models wire transmission (ChargeRequired in the policy).
func (c *Cluster) Send(size int) {}

// Attach models endpoint attach (ChargeRequired in the policy).
func (c *Cluster) Attach() int { return 0 }
