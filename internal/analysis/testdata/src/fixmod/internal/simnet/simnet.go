// Package simnet is the fixture twin of viampi's internal/simnet: it
// exposes the charging primitive the chargeflow rule credits, reachable
// from the fixture mpi package without the import cycle a via dependency
// would create (fixture via deliberately imports fixture mpi).
package simnet

// Proc mirrors the real simnet.Proc charging surface.
type Proc struct{}

// Compute charges CPU cost (ChargeFuncs in the policy).
func (p *Proc) Compute(d int64) {}
