// Package core is the fixture home of the determinism rule cases: a
// simulation-path package touching every banned construct.
package core

import (
	"math/rand"
	"sync"
	"time"
)

var mu sync.Mutex // the sync import itself is the violation

// WallClock reads the host clock — must flag.
func WallClock() int64 {
	return time.Now().UnixNano()
}

// NakedGoroutine spawns outside the scheduler — must flag.
func NakedGoroutine() {
	go func() {}()
}

// GlobalRand draws from the process-global source — must flag.
func GlobalRand() int {
	return rand.Intn(10)
}

// SeededRand threads a generator from a seed — must NOT flag.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// VirtualDuration uses time only as a unit type — must NOT flag.
func VirtualDuration(d time.Duration) int64 { return d.Nanoseconds() }
