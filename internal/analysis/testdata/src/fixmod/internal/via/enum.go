// enum.go is the fixture home of the exhaustive rule's discovery cases: a
// named iota enum and a policy-tagged wire-code byte field.
package via

// ViState is the fixture's closed connection-state set (an iota block over
// a named module type — discovered automatically).
type ViState int

const (
	ViIdle ViState = iota
	ViConnecting
	ViConnected
	ViError
	ViClosed
)

// StateName misses ViClosed with no default — must flag.
func StateName(s ViState) string {
	switch s {
	case ViIdle:
		return "idle"
	case ViConnecting:
		return "connecting"
	case ViConnected:
		return "connected"
	case ViError:
		return "error"
	}
	return "?"
}

// StateClass handles every member across grouped cases — must NOT flag.
func StateClass(s ViState) string {
	switch s {
	case ViIdle, ViConnecting, ViConnected:
		return "live"
	case ViError, ViClosed:
		return "dead"
	}
	return "?"
}

// StateDefaulted relies on an explicit default legitimately — must NOT flag
// (not in ExhaustiveStrict).
func StateDefaulted(s ViState) bool {
	switch s {
	case ViConnected:
		return true
	default:
		return false
	}
}

// Wire-code byte block: untyped members over a basic type, keyed by
// Policy.TagFields("internal/via.(wireMsg).kind" → kindConnReq).
const (
	kindConnReq byte = iota + 1
	kindConnAck
	kindConnNack
	kindDisc
)

// wireMsg mirrors the real provider's frame header.
type wireMsg struct {
	kind byte
}

// Dispatch misses kindConnNack — must flag (the PR 3 bug class: half-reset
// handshake on NACK).
func Dispatch(m *wireMsg) int {
	switch m.kind {
	case kindConnReq:
		return 1
	case kindConnAck:
		return 2
	}
	return 0
}

// Poke exists so the locks fixture has a layered callee to re-enter.
func Poke() {}
