// paired.go is the fixture home of the resource-lifetime cases: a mirror of
// the real pinned-memory registry the paired rule's specs name, plus the
// acquire/release shapes — leak on an early return, defer discharge, double
// release, discarded handles, escape-to-field stores, and ownership returned
// through a wrapper.
package via

// MemHandle mirrors the real pinned-memory handle.
type MemHandle uint64

// MemoryRegistry mirrors the real pinned-memory registry; Register/Deregister
// are the policy-declared acquire/release pair.
type MemoryRegistry struct {
	next MemHandle
}

// Register pins buf and returns its handle (fixture acquire).
func (r *MemoryRegistry) Register(buf []byte) (MemHandle, error) {
	r.next++
	return r.next, nil
}

// Deregister unpins a handle (fixture release).
func (r *MemoryRegistry) Deregister(h MemHandle) error {
	return nil
}

// leakEarlyReturn releases on the slow path but returns early on the flush
// path with the registration still held — must flag the acquire.
func leakEarlyReturn(reg *MemoryRegistry, buf []byte, flush bool) error {
	h, err := reg.Register(buf)
	if err != nil {
		return err
	}
	if flush {
		return nil // paired violation: h is still registered here
	}
	return reg.Deregister(h)
}

// deferReleased discharges by defer, which covers every exit — must NOT
// flag.
func deferReleased(reg *MemoryRegistry, buf []byte) error {
	h, err := reg.Register(buf)
	if err != nil {
		return err
	}
	defer reg.Deregister(h)
	return nil
}

// registerSwap releases inside the final return — must NOT flag (a release
// in a return statement is a release, not an ownership transfer).
func registerSwap(reg *MemoryRegistry, buf []byte) error {
	h, err := reg.Register(buf)
	if err != nil {
		return err
	}
	return reg.Deregister(h)
}

// discardHandle drops the handle on the floor — must flag: nothing can ever
// release it.
func discardHandle(reg *MemoryRegistry, buf []byte) {
	reg.Register(buf) // paired violation: result discarded
}

// doubleRelease deregisters the same handle twice — must flag the second
// release.
func doubleRelease(reg *MemoryRegistry, buf []byte) {
	h, err := reg.Register(buf)
	if err != nil {
		return
	}
	reg.Deregister(h)
	reg.Deregister(h) // paired violation: already released on every path here
}

// holder parks a handle in a field no function ever releases through.
type holder struct {
	h MemHandle
}

// storeLeak escapes the handle into holder.h — must flag the store: the
// global field pass finds no release through (holder).h.
func storeLeak(reg *MemoryRegistry, hold *holder, buf []byte) error {
	h, err := reg.Register(buf)
	if err != nil {
		return err
	}
	hold.h = h // paired violation: no releasing path through this field
	return nil
}

// keeper parks a handle in a field its drop method releases through.
type keeper struct {
	h MemHandle
}

// storeKeep escapes the handle into keeper.h — must NOT flag: drop releases
// through the field.
func storeKeep(reg *MemoryRegistry, k *keeper, buf []byte) error {
	h, err := reg.Register(buf)
	if err != nil {
		return err
	}
	k.h = h
	return nil
}

// drop is the releasing path for keeper.h.
func (k *keeper) drop(reg *MemoryRegistry) {
	reg.Deregister(k.h)
}

// acquireWrapped returns ownership to its caller, so it becomes an acquire
// site itself — the wrapper is clean, its careless caller is not.
func acquireWrapped(reg *MemoryRegistry, buf []byte) (MemHandle, error) {
	return reg.Register(buf)
}

// wrapperCallerLeaks inherits the obligation from acquireWrapped and never
// discharges it — must flag.
func wrapperCallerLeaks(reg *MemoryRegistry, buf []byte) error {
	h, err := acquireWrapped(reg, buf)
	if err != nil {
		return err
	}
	_ = h // paired violation: the wrapped registration is never released
	return nil
}

// wrapperCallerClean releases what the wrapper acquired — must NOT flag.
func wrapperCallerClean(reg *MemoryRegistry, buf []byte) error {
	h, err := acquireWrapped(reg, buf)
	if err != nil {
		return err
	}
	return reg.Deregister(h)
}
