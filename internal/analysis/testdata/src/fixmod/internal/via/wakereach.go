// wakereach.go is the fixture home of the cross-function park/wake cases:
// the transition lives in a helper, the return-without-wake in its caller,
// so no single body shows the hang — the shape of the PR 3 VI.Close bug.
package via

// failQuiet moves queued descriptors into a waiter-visible status and
// deliberately does not wake: its callers own the obligation. (The per-body
// waitwake rule flags it here because the fixture policy strips the
// allowlist; wakereach instead verifies the callers below.)
func failQuiet(vi *VI, s Status) {
	for _, d := range vi.sendQ {
		d.Status = s
	}
}

// AbortBad inherits the helper's obligation and returns without any wake —
// wakereach must flag it: it is exported, so the escaped obligation leaves
// the provider with a waiter still parked.
func AbortBad(vi *VI) {
	failQuiet(vi, StatusDisconnected)
}

// AbortGood wakes after the helper on every path — must NOT flag.
func AbortGood(vi *VI) {
	failQuiet(vi, StatusDisconnected)
	vi.port.notifyActivity()
}

// AbortDeferred arms the wake before the helper runs — must NOT flag.
func AbortDeferred(vi *VI) {
	defer vi.port.notifyActivity()
	failQuiet(vi, StatusDisconnected)
}
