// waitwake.go is the fixture home of the wait/wake pairing cases.
package via

// Status is the fixture descriptor-completion set; StatusPending is the
// policy-listed non-observable marker.
type Status int

const (
	StatusPending Status = iota
	StatusSuccess
	StatusDisconnected
)

// Descriptor mirrors the real completion surface a waiter polls.
type Descriptor struct {
	Status Status
}

// notifyActivity is the policy-listed waker.
func (p *Port) notifyActivity() {}

// VI mirrors the state machine the waitwake rule audits.
type VI struct {
	port  *Port
	state ViState
	sendQ []*Descriptor
}

// CloseBad moves the VI into a waiter-visible state and returns without a
// wake — must flag (the PR 3 VI.Close hang).
func CloseBad(vi *VI) {
	if vi.state == ViClosed {
		return
	}
	vi.state = ViClosed // waitwake violation: no waker on this path
}

// CloseGood wakes on every transitioning path — must NOT flag.
func CloseGood(vi *VI) {
	if vi.state == ViClosed {
		return
	}
	vi.state = ViClosed
	vi.port.notifyActivity()
}

// FailDeferred arms the wake before the transitions; a deferred waker runs
// at return, after every assignment — must NOT flag.
func FailDeferred(vi *VI, s Status) {
	defer vi.port.notifyActivity()
	for _, d := range vi.sendQ {
		d.Status = s
	}
}

// PostPending only marks descriptors pending (non-observable) — must NOT
// flag.
func PostPending(vi *VI, d *Descriptor) {
	d.Status = StatusPending
	vi.sendQ = append(vi.sendQ, d)
}
