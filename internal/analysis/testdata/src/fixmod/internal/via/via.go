// Package via is the fixture home of the layering and costcharge cases.
package via

import (
	"fixmod/internal/fabric"
	"fixmod/internal/mpi" // layering violation: via may not import mpi
)

// Network mirrors the real via.Network shape.
type Network struct {
	cluster *fabric.Cluster
}

// Port mirrors the real via.Port charging surface.
type Port struct{}

// ChargeHost is the fixture charging primitive (ChargeFuncs in the policy).
func (p *Port) ChargeHost(d int64) {}

// UnchargedSend reaches the fabric without paying — must flag.
func (n *Network) UnchargedSend() {
	n.cluster.Send(64) // costcharge violation: no ChargeHost in this body
}

// ChargedSend pays host cost in the same body — must NOT flag.
func (n *Network) ChargedSend(p *Port) {
	p.ChargeHost(100)
	n.cluster.Send(64)
}

// Upward exists so the mpi import is used.
func Upward(m map[int]string) []string { return mpi.GoodSortedKeys(m) }
