// seqcheck.go is the fixture home of the send-after-close cases: VI.Close
// and VI.PostSend mirror the policy-listed closer and send entry point.
package via

// Close tears the fixture VI down (Policy.SeqCheckClose; its own body is
// exempt from the seqcheck rule by design).
func (vi *VI) Close() {
	if vi.state == ViClosed {
		return
	}
	vi.state = ViClosed
	vi.port.notifyActivity()
}

// PostSend queues a descriptor (Policy.SeqCheckSend).
func (vi *VI) PostSend(d *Descriptor) error {
	vi.sendQ = append(vi.sendQ, d)
	return nil
}

// reconnect mirrors the real reconnect path: a fresh endpoint.
func reconnect() *VI {
	return &VI{port: &Port{}}
}

// sendAfterClose posts on the endpoint it just closed — must flag.
func sendAfterClose(vi *VI, d *Descriptor) error {
	vi.Close()
	return vi.PostSend(d)
}

// evictMaybe closes on one branch and sends after the join — must flag (the
// may-analysis sees the closed path).
func evictMaybe(vi *VI, d *Descriptor, evict bool) error {
	if evict {
		vi.Close()
	}
	return vi.PostSend(d)
}

// evictReconnect rebinds through the reconnect path before sending — must
// NOT flag.
func evictReconnect(vi *VI, d *Descriptor) error {
	vi.Close()
	vi = reconnect()
	return vi.PostSend(d)
}
