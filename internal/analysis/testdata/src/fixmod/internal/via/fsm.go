// fsm.go is the fixture home of the connection-FSM extraction cases: guarded
// transitions into ViConnecting and ViConnected, so that together with the
// ViClosed writers in waitwake.go and seqcheck.go exactly one declared state
// (ViError) is never entered — the fsm rule's dead-state case.
package via

// Connect opens the fixture handshake — extracted as ViIdle → ViConnecting
// (the early-return guard narrows the source set).
func Connect(vi *VI) {
	if vi.state != ViIdle {
		return
	}
	vi.state = ViConnecting
	vi.port.notifyActivity()
}

// establish completes it — extracted as ViConnecting → ViConnected (the
// enclosing if narrows the source set).
func establish(vi *VI) {
	if vi.state == ViConnecting {
		vi.state = ViConnected
		vi.port.notifyActivity()
	}
}
