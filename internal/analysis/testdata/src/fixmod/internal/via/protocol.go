// protocol.go is the fixture home of the wire-conformance cases. The
// dispatcher carries an explicit default, so the exhaustive rule is
// satisfied — everything flagged here is what the protocol rule adds on
// top: senders and dispatcher arms must agree in both directions.
package via

// dispatch is the registered dispatcher (Policy.ProtocolDispatch maps it to
// the wireMsg.kind tag field). The default is a fallback, not a handler, so
// the missing kindConnNack arm is still a conformance hole; the kindDisc
// arm is dead because nothing in the module sends it — both must flag.
func (p *Port) dispatch(m *wireMsg) int {
	switch m.kind {
	case kindConnReq:
		return 1
	case kindConnAck:
		return 2
	case kindDisc: // protocol violation: handled but never sent
		return 3
	default:
		return 0
	}
}

// SendReq constructs a handled kind via a composite literal — must NOT
// flag.
func SendReq() wireMsg { return wireMsg{kind: kindConnReq} }

// SendAck writes a handled kind via assignment — must NOT flag.
func SendAck() wireMsg {
	var m wireMsg
	m.kind = kindConnAck
	return m
}

// SendNack constructs a kind the dispatcher has no arm for — must flag
// (the receiver would silently drop the NACK: the PR 3 bug class).
func SendNack() wireMsg {
	return wireMsg{kind: kindConnNack} // protocol violation: sent but unhandled
}
