// Fixture home of the strict maporder cases: fixture internal/obs is listed
// in MapOrderStrict, so even commutative map walks must use sorted keys.
package obs

import "sort"

// CountKinds is a commutative reduction the relaxed rule accepts — but in a
// strict package it must flag.
func CountKinds(m map[Kind]int64) int64 {
	var total int64
	for _, n := range m {
		total += n
	}
	return total
}

// SortedKinds uses the collect-keys-then-sort idiom — must NOT flag even in
// a strict package.
func SortedKinds(m map[Kind]int64) []Kind {
	keys := make([]Kind, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return int(keys[i]) < int(keys[j]) })
	return keys
}
