// Package obs is the fixture home of the strict-exhaustiveness case: a
// String method whose default is a fallback, not a handler.
package obs

// Kind is the fixture event-kind set.
type Kind uint8

const (
	EvA Kind = iota + 1
	EvB
	EvC
)

// String misses EvC; its default exists, but the policy lists
// internal/obs.(Kind).String in ExhaustiveStrict — must flag.
func (k Kind) String() string {
	switch k {
	case EvA:
		return "a"
	case EvB:
		return "b"
	default:
		return "unknown"
	}
}

// Describe relies on its default legitimately (not strict) — must NOT flag.
func Describe(k Kind) string {
	switch k {
	case EvA:
		return "first"
	default:
		return "other"
	}
}
