// Package analysis is the viampi-vet static-analysis suite: machine-checked
// enforcement of the two invariants docs/ARCHITECTURE.md rests on —
// strictly-downward package layering, and total determinism of virtual time
// (a run is a pure function of its Config).
//
// Fifteen analyzers ship (see the Analyzers registry). Four are syntactic:
// layering checks the import DAG, determinism bans
// wall-clock/global-rand/goroutines/locks in simulated code, maporder flags
// order-sensitive iteration over Go maps, and costcharge verifies that
// hardware-modelling fabric calls charge host CPU cost. Four are built on
// the intraprocedural CFG + dataflow framework in cfg.go: exhaustive
// (switches over closed constant sets handle every member), waitwake
// (waiter-visible state transitions wake parked waiters on every path),
// locks (Lock/Unlock pairing and the leaf-lock contract), and hotalloc
// (policy-annotated hot paths stay allocation-free). Four are
// interprocedural, built on the whole-program call graph and
// summary-propagation fixpoint in callgraph.go: lockorder (the global
// lock-acquisition-order graph is acyclic), protocol (wire kinds sent and
// dispatcher arms agree in both directions), chargeflow (every path from an
// MPI entry point to a fabric transmit charges CPU cost), and wakereach (a
// park-visible transition is reached by a wake through the call graph).
// Three are the v4 resource-lifetime and protocol-model rules: paired
// (every policy-declared acquire — pinned-memory registration, VI slots,
// bus subscriptions, capture writers — is released on every path, with
// escape-to-field and ownership-transfer summaries), fsm (the connection
// state machine extracted from the code has no dead states, matches the
// committed DOT diagram, and its 2-peer product automata model-check
// deadlock-free under fault-plan loss/refusal/reordering), and seqcheck (no
// send on a closed or evicted channel without an interposed rebind through
// the reconnect path).
// Legitimate exceptions live in one place, policy.go, so they are declared
// in code review rather than scattered as comments — and the stale-policy
// sweep (stale.go) fails the build when an exception no longer matches any
// code.
//
// The suite is built only on the standard library (go/ast, go/parser,
// go/token, go/types); it adds no dependency to the tree it guards. It runs
// in two ways: `go test ./internal/analysis/...` (selfcheck_test.go analyses
// the repository itself, so tier-1 CI fails on any new violation) and the
// cmd/viampi-vet driver for interactive and -json use.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at one source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string // analyzer name
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string // one-line summary
	// Explain states why the rule exists, citing the ARCHITECTURE.md
	// invariant it guards (the `viampi-vet -explain` text).
	Explain string
	Run     func(m *Module, p *Policy) []Diagnostic
}

// Analyzers is the registry, in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LayeringAnalyzer(),
		DeterminismAnalyzer(),
		MapOrderAnalyzer(),
		CostChargeAnalyzer(),
		ExhaustiveAnalyzer(),
		WaitWakeAnalyzer(),
		LocksAnalyzer(),
		HotAllocAnalyzer(),
		LockOrderAnalyzer(),
		ProtocolAnalyzer(),
		ChargeFlowAnalyzer(),
		WakeReachAnalyzer(),
		PairedAnalyzer(),
		FSMAnalyzer(),
		SeqCheckAnalyzer(),
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAll executes every analyzer against the module and returns all
// diagnostics sorted by file, line and rule.
func RunAll(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, a := range Analyzers() {
		ds = append(ds, a.Run(m, p)...)
	}
	SortDiagnostics(ds)
	return ds
}

// SortDiagnostics orders diagnostics by position then rule, so output is
// stable across runs and map-iteration order never leaks into reports.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// enclosingFuncName returns the policy-qualified name ("rel/path.Func" or
// "rel/path.(Type).Method") of the function declaration containing pos, or
// "" when pos is at file scope.
func enclosingFuncName(pkg *Package, file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = "(" + typeBaseName(fd.Recv.List[0].Type) + ")." + name
		}
		return pkg.Rel + "." + name
	}
	return ""
}

// typeBaseName extracts the bare type name from a receiver expression.
func typeBaseName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return typeBaseName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return typeBaseName(t.X)
	case *ast.IndexListExpr:
		return typeBaseName(t.X)
	}
	return "?"
}

// calleeObject resolves the object a call expression invokes, or nil for
// builtins, conversions and indirect calls.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// objectQualifiedName renders a function object as "pkgpath.Name" or
// "pkgpath.(Recv).Name" for policy lookups; "" for objects without a
// package (builtins).
func objectQualifiedName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	name := "?"
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fn.Pkg().Path() + ".(" + name + ")." + fn.Name()
}

// relQualified converts a full-path qualified name to the module-relative
// form the policy uses ("viampi/internal/via.(Port).ChargeHost" →
// "internal/via.(Port).ChargeHost").
func relQualified(modPath, qualified string) string {
	if rest, ok := strings.CutPrefix(qualified, modPath+"/"); ok {
		return rest
	}
	return qualified
}
