package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer bans the constructs that smuggle host nondeterminism
// into simulated code: wall-clock reads, the process-global math/rand
// source, goroutines outside the scheduler, and locking primitives.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "no wall clock, global rand, goroutines or locks in simulation paths",
		Explain: `docs/ARCHITECTURE.md, invariant 1 ("Single-threaded virtual time"):
exactly one goroutine runs at any instant and determinism is total — a run
is a pure function of its Config. Four host-side constructs silently break
that purity: time.Now/Sleep/Since observe or wait on the host clock, whose
values differ every run; the package-level math/rand functions draw from a
process-global source shared with any other code in the binary (only
*rand.Rand generators threaded from a Config seed are reproducible); a
naked 'go' statement creates a second runnable goroutine, so the Go
scheduler — not simnet — decides interleaving; and sync/sync-atomic
primitives both imply real concurrency and introduce scheduling-dependent
blocking. internal/simnet owns the one-runnable-goroutine discipline and is
the only package allowed 'go'; internal/tcpvia and its drivers talk to real
sockets and are exempt wholesale (see policy.go).`,
		Run: runDeterminism,
	}
}

func runDeterminism(m *Module, p *Policy) []Diagnostic {
	var ds []Diagnostic
	for _, pkg := range m.Pkgs {
		if _, exempt := p.DeterminismExempt[pkg.Rel]; exempt {
			continue
		}
		if pkg.Info == nil {
			continue // test-only directory
		}
		for _, file := range pkg.Files {
			ds = append(ds, checkDeterminismFile(m, p, pkg, file)...)
		}
	}
	return ds
}

func checkDeterminismFile(m *Module, p *Policy, pkg *Package, file *ast.File) []Diagnostic {
	var ds []Diagnostic
	report := func(n ast.Node, format string, args ...interface{}) {
		ds = append(ds, Diagnostic{
			Pos:     m.Position(n.Pos()),
			Rule:    "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}

	for _, imp := range file.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "sync", "sync/atomic":
			report(imp, "package %s imports %s: simulated code is single-threaded by invariant and never locks (thread a value through the scheduler instead)",
				pkg.Rel, strings.Trim(imp.Path.Value, `"`))
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			if !p.GoStmtAllowed[pkg.Rel] {
				report(node, "go statement outside internal/simnet: only the scheduler may create goroutines (invariant: one runnable goroutine at any instant)")
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[node]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if isPackageFunc(obj) && p.WallClockBanned[obj.Name()] {
					report(node, "time.%s reads or waits on the host clock; use virtual time (simnet.Proc.Now/Sleep) so the run stays a pure function of its Config", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if isPackageFunc(obj) && !p.RandConstructors[obj.Name()] {
					report(node, "package-level rand.%s draws from the process-global source; thread a *rand.Rand seeded from the Config instead", obj.Name())
				}
			}
		}
		return true
	})
	return ds
}

// isPackageFunc reports whether obj is a package-level function (as opposed
// to a method, type, or variable).
func isPackageFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
