package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// LockOrderAnalyzer builds the global lock-acquisition-order graph of the
// module — an edge A→B whenever some CFG path acquires mutex B while A may
// be held, directly or through any chain of calls — and reports every cycle
// as a potential deadlock. It generalizes the per-function leaf-lock rule
// (locks) to whole-program ordering, including the interprocedural self-
// deadlock the intraprocedural rule cannot see: F holds A and calls G, and
// G (or anything G reaches) locks A again.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "the whole-program lock-acquisition-order graph must be acyclic",
		Explain: `docs/ARCHITECTURE.md, "Enforced invariants": the simulated world is
single-threaded, so every mutex in the tree lives in the genuinely
concurrent real-socket twin (internal/tcpvia) — Node.mu, Manager.mu,
Channel.mu, VI.writeMu, PeerRequest.doneMu, and the metrics leaf. The locks
rule proves each function pairs and scopes its own acquisitions, but
deadlock is a *global* property: thread 1 holding A while acquiring B
deadlocks against thread 2 holding B while acquiring A even though both
functions are locally impeccable. This rule derives, from the shared call
graph, the set of locks each function may transitively acquire; runs the
held-lock dataflow over every body; adds an order edge A→B at every
acquisition (or call that can acquire) of B while A may be held; and
reports any cycle in the resulting graph with one witness site per edge.
Lock identity is the declared struct field ("internal/tcpvia.(Node).mu"),
so all instances of a field share one node — coarse, but exactly the
granularity a lock-hierarchy contract is written at. Reviewed exceptions
go in Policy.LockOrderAllow, keyed "A -> B", with the argument for why the
two acquisition orders can never be live concurrently.`,
		Run: runLockOrder,
	}
}

// loEdge is one order edge with its first witness site.
type loEdge struct {
	from, to string
	pos      ast.Node // the acquisition (or call) establishing the edge
	via      string   // function containing the witness
	callee   string   // non-empty when the edge goes through a call chain
}

func runLockOrder(m *Module, p *Policy) []Diagnostic {
	ip := m.Interproc()

	// Summary: the set of lock fields each function may transitively acquire
	// *synchronously*, via a union fixpoint over the call graph. Literal
	// bodies are excluded on both sides — a literal runs in its own
	// activation (a goroutine, a timer callback, a scheduled event), so its
	// acquisitions are not held on the calling path. The time.AfterFunc
	// wake-up in tcpvia's waitLocked is the live example: folding it in
	// would report a Node.mu self-deadlock on a path that cannot exist.
	acquires := map[string]map[string]bool{}
	declCallees := map[string][]string{}
	for _, key := range ip.Keys {
		f := ip.Funcs[key]
		acquires[key] = map[string]bool{}
		callees := map[string]bool{}
		for _, u := range f.Units {
			if u.lit != nil {
				continue
			}
			inspectSkipLits(u.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op := classifyLockOp(m, f.Pkg, call); op != nil && op.lock && op.field != "" {
					acquires[key][op.field] = true
				}
				for _, callee := range resolveSiteCallees(ip, key, call) {
					callees[callee] = true
				}
				return true
			})
		}
		declCallees[key] = sortedKeys(callees)
	}
	ip.fixpoint(func(key string) bool {
		set := acquires[key]
		before := len(set)
		for _, callee := range declCallees[key] {
			for field := range acquires[callee] {
				set[field] = true
			}
		}
		return len(set) != before
	})

	// Edges: run the held-lock dataflow per unit, per lock field present in
	// that unit, and record what is acquired while each field may be held.
	edges := map[string]*loEdge{}
	addEdge := func(from, to string, witness ast.Node, via, callee string) {
		if from == to && callee == "" {
			return // intraprocedural re-entry is the locks rule's report
		}
		id := from + " -> " + to
		if _, ok := edges[id]; !ok {
			edges[id] = &loEdge{from: from, to: to, pos: witness, via: via, callee: callee}
		}
	}
	for _, key := range ip.Keys {
		f := ip.Funcs[key]
		for _, u := range f.Units {
			fields := unitLockFields(m, f.Pkg, u)
			if len(fields) == 0 {
				continue
			}
			for _, held := range fields {
				held := held
				states := nodeMayStates(u.body, 1<<0, func(node ast.Node, in uint64) uint64 {
					return loTransfer(m, f.Pkg, held, node, in)
				})
				// Deterministic witness order: walk the body in source order.
				inspectSkipLits(u.body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					in, reached := loStateAt(states, u.body, n)
					if !reached || !lkAnyHeld(in) {
						return true
					}
					if op := classifyLockOp(m, f.Pkg, call); op != nil {
						if op.lock && op.field != "" && op.field != held {
							addEdge(held, op.field, call, key, "")
						}
						return true
					}
					for _, callee := range resolveSiteCallees(ip, key, call) {
						for _, field := range sortedKeys(acquires[callee]) {
							addEdge(held, field, call, key, callee)
						}
					}
					return true
				})
			}
		}
	}

	// Cycle detection over the order graph.
	return reportLockCycles(m, p, edges)
}

// unitLockFields returns the sorted lock fields this unit itself acquires.
func unitLockFields(m *Module, pkg *Package, u funcUnit) []string {
	set := map[string]bool{}
	inspectSkipLits(u.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := classifyLockOp(m, pkg, call); op != nil && op.lock && op.field != "" {
				set[op.field] = true
			}
		}
		return true
	})
	return sortedKeys(set)
}

// loTransfer folds one CFG node into the held-state bitset for one lock
// field (reusing the lkHeld/lkDeferred encoding from the locks rule).
func loTransfer(m *Module, pkg *Package, field string, node ast.Node, in uint64) uint64 {
	if def, ok := node.(*ast.DeferStmt); ok {
		if op := classifyLockOp(m, pkg, def.Call); op != nil && op.field == field && !op.lock {
			return lkApply(in, func(s int) int { return s | lkDeferred })
		}
		return in
	}
	out := in
	inspectSkipLits(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := classifyLockOp(m, pkg, call); op != nil && op.field == field {
			if op.lock {
				out = lkApply(out, func(s int) int { return s | lkHeld })
			} else {
				out = lkApply(out, func(s int) int { return s &^ lkHeld })
			}
		}
		return true
	})
	return out
}

// loStateAt finds the recorded may-state for the CFG node containing the
// target call. CFG nodes are statements (or bare condition expressions), so
// the lookup walks up from the call through its ancestors to the nearest
// node the dataflow recorded. An unrecorded target sits in an unreached
// block (dead code) and reports false.
func loStateAt(states map[ast.Node]uint64, body *ast.BlockStmt, target ast.Node) (uint64, bool) {
	var found uint64
	ok := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if ok {
			return false // drain without pushing; n's children are skipped
		}
		if n == target {
			if s, rec := states[n]; rec {
				found, ok = s, true
			} else {
				for i := len(stack) - 1; i >= 0; i-- {
					if s, rec := states[stack[i]]; rec {
						found, ok = s, true
						break
					}
				}
			}
			return false
		}
		stack = append(stack, n)
		return true
	})
	return found, ok
}

// resolveSiteCallees returns the resolved callees of one call expression,
// looked up in the shared per-function site list.
func resolveSiteCallees(ip *Interproc, key string, call *ast.CallExpr) []string {
	for _, site := range ip.Calls(key) {
		if site.Call == call {
			return site.Callees
		}
	}
	return nil
}

// reportLockCycles finds cycles in the order graph and renders one
// diagnostic per cycle, anchored at the lexicographically-first edge's
// witness.
func reportLockCycles(m *Module, p *Policy, edges map[string]*loEdge) []Diagnostic {
	succ := map[string][]string{}
	for _, id := range sortedEdgeIDs(edges) {
		e := edges[id]
		if _, allowed := p.LockOrderAllow[id]; allowed {
			continue
		}
		succ[e.from] = append(succ[e.from], e.to)
	}
	var ds []Diagnostic
	reported := map[string]bool{}
	var nodes []string
	for n := range succ {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, start := range nodes {
		cycle := findCycleFrom(succ, start)
		if cycle == nil {
			continue
		}
		sig := cycleSignature(cycle)
		if reported[sig] {
			continue
		}
		reported[sig] = true
		var parts []string
		for i := 0; i < len(cycle); i++ {
			e := edges[cycle[i]+" -> "+cycle[(i+1)%len(cycle)]]
			via := e.via
			if e.callee != "" {
				via += " -> " + e.callee
			}
			parts = append(parts, fmt.Sprintf("%s acquired while %s held (%s, %s:%d)",
				e.to, e.from, via, shortFile(m, e.pos), m.Position(e.pos.Pos()).Line))
		}
		first := edges[cycle[0]+" -> "+cycle[1%len(cycle)]]
		ds = append(ds, Diagnostic{
			Pos:  m.Position(first.pos.Pos()),
			Rule: "lockorder",
			Message: fmt.Sprintf("lock-order cycle (potential deadlock): %s; every thread must acquire these locks in one global order — restructure, or justify in Policy.LockOrderAllow",
				strings.Join(parts, "; ")),
		})
	}
	return ds
}

// findCycleFrom returns the node sequence of a cycle reachable from start
// that passes through start, or nil. DFS over sorted successors keeps the
// result deterministic.
func findCycleFrom(succ map[string][]string, start string) []string {
	var stack []string
	onStack := map[string]bool{}
	var dfs func(n string) []string
	dfs = func(n string) []string {
		stack = append(stack, n)
		onStack[n] = true
		next := append([]string(nil), succ[n]...)
		sort.Strings(next)
		for _, t := range next {
			if t == start {
				return append([]string(nil), stack...)
			}
			if !onStack[t] {
				if c := dfs(t); c != nil {
					return c
				}
			}
		}
		stack = stack[:len(stack)-1]
		onStack[n] = false
		return nil
	}
	return dfs(start)
}

// cycleSignature canonicalizes a cycle (rotation-invariant) so each is
// reported once.
func cycleSignature(cycle []string) string {
	best := 0
	for i := range cycle {
		if cycle[i] < cycle[best] {
			best = i
		}
	}
	var parts []string
	for i := range cycle {
		parts = append(parts, cycle[(best+i)%len(cycle)])
	}
	return strings.Join(parts, "->")
}

func sortedKeys(set map[string]bool) []string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedEdgeIDs(edges map[string]*loEdge) []string {
	var ids []string
	for id := range edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// shortFile renders a node's filename relative to the module root for
// compact messages.
func shortFile(m *Module, n ast.Node) string {
	name := m.Position(n.Pos()).Filename
	if rest, ok := strings.CutPrefix(name, m.Root+"/"); ok {
		return rest
	}
	return name
}
